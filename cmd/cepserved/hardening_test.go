package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cepshed/internal/runtime"
)

// With -admin-token set, every mutating admin route refuses requests
// without the bearer token; reads (/stats, /queries GET, /ingest) stay
// open so load balancers and producers keep working.
func TestAdminTokenGatesMutatingRoutes(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	s.adminToken = "sekrit"
	mux := s.mux()

	do := func(method, path, body, token string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		mux.ServeHTTP(rec, req)
		return rec
	}

	spec := `{"tenant":"acme","name":"xy","query":"PATTERN SEQ(X x, Y y) WHERE x.ID = y.ID WITHIN 8ms"}`
	for _, tc := range []struct {
		method, path, body string
	}{
		{"POST", "/queries", spec},
		{"DELETE", "/queries/acme/xy", ""},
		{"POST", "/queries/acme/xy/pause", ""},
		{"POST", "/queries/acme/xy/resume", ""},
		{"PUT", "/tenants", `{"name":"acme","priority":2}`},
	} {
		if rec := do(tc.method, tc.path, tc.body, ""); rec.Code != http.StatusUnauthorized {
			t.Errorf("%s %s no token: code = %d, want 401", tc.method, tc.path, rec.Code)
		} else if rec.Header().Get("WWW-Authenticate") == "" {
			t.Errorf("%s %s 401 lacks WWW-Authenticate", tc.method, tc.path)
		}
		if rec := do(tc.method, tc.path, tc.body, "wrong"); rec.Code != http.StatusUnauthorized {
			t.Errorf("%s %s bad token: code = %d, want 401", tc.method, tc.path, rec.Code)
		}
	}

	// The right token lets the work through.
	if rec := do("POST", "/queries?wait=1", spec, "sekrit"); rec.Code != http.StatusCreated {
		t.Fatalf("add with token: code = %d, want 201 (body %s)", rec.Code, rec.Body.String())
	}
	if rec := do("DELETE", "/queries/acme/xy", "", "sekrit"); rec.Code != http.StatusNoContent {
		t.Fatalf("delete with token: code = %d, want 204", rec.Code)
	}

	// Reads stay open without a token.
	for _, path := range []string{"/stats", "/queries", "/healthz", "/metrics"} {
		if rec := do("GET", path, "", ""); rec.Code != http.StatusOK {
			t.Errorf("GET %s without token: code = %d, want 200", path, rec.Code)
		}
	}
	if rec := do("POST", "/ingest", `{"type":"A","attrs":{"ID":1}}`+"\n", ""); rec.Code != http.StatusOK {
		t.Errorf("POST /ingest without token: code = %d, want 200", rec.Code)
	}
}

// Without -admin-token, admin routes remain open (single-node dev
// default) — auth is opt-in.
func TestNoTokenMeansOpenAdmin(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	mux := s.mux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("PUT", "/tenants",
		strings.NewReader(`{"name":"acme","priority":2}`)))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("PUT /tenants without configured token: code = %d, want 204", rec.Code)
	}
}

// An oversized body on a bounded admin route is a 413, not an OOM or a
// truncated-but-accepted spec.
func TestOversizedAdminBodyIs413(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	mux := s.mux()

	// Valid JSON that only overflows the cap partway through a string —
	// the decoder must hit MaxBytesError, not a syntax error.
	big := `{"name":"` + strings.Repeat("x", 1<<20) + `"}`
	for _, tc := range []struct{ method, path string }{
		{"POST", "/queries"},
		{"PUT", "/tenants"},
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(big)))
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s with %d-byte body: code = %d, want 413",
				tc.method, tc.path, len(big), rec.Code)
		}
	}

	// A normal-sized spec still works after the rejections.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("PUT", "/tenants",
		strings.NewReader(`{"name":"acme","priority":2}`)))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("normal PUT /tenants after 413s: code = %d, want 204", rec.Code)
	}
}
