package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
)

func newTestServer(t *testing.T, cfg runtime.Config) *server {
	t.Helper()
	m := nfa.MustCompile(query.Q1("8ms"))
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	rt := runtime.New(m, cfg)
	t.Cleanup(rt.Close)
	s := &server{rt: rt, started: time.Now(), tcpIdle: 30 * time.Millisecond, conns: map[net.Conn]struct{}{}}
	s.ready.Store(true) // tests exercise the post-recovery state unless they flip it back
	return s
}

func TestHealthzOKThenDraining(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthy server: code = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Errorf("body = %s", rec.Body.String())
	}

	s.closing.Store(true)
	rec = httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining server: code = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status":"draining"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestHealthzFailedWhenAllShardsDead(t *testing.T) {
	s := newTestServer(t, runtime.Config{
		Shards: 1,
		Restart: runtime.RestartPolicy{
			BackoffBase: 100 * time.Microsecond,
			BackoffMax:  time.Millisecond,
			MaxRestarts: 1,
			Window:      time.Minute,
		},
		BeforeProcess: fault.PanicIf(func(int, *event.Event) bool { return true }, "dead on arrival"),
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.rt.Snapshot().FailedShards == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard never failed")
		}
		s.rt.Offer(event.New("A", event.Time(time.Since(s.started)), map[string]event.Value{"ID": event.Int(1)}))
	}
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("all shards failed: code = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status":"failed"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestIngestQuarantinesBadLines(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	in := `{"type":"A","attrs":{"ID":1}}
garbage line
{"type":"B","attrs":{"ID":2}}
`
	accepted, rejected, overloaded := s.ingest(strings.NewReader(in))
	if accepted != 2 || rejected != 1 || overloaded != 0 {
		t.Errorf("ingest = (%d, %d, %d), want (2, 1, 0)", accepted, rejected, overloaded)
	}
	if got := s.badLine.Load(); got != 1 {
		t.Errorf("badLine = %d, want 1", got)
	}
	dls := s.rt.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dls))
	}
	if dls[0].Payload != "garbage line" {
		t.Errorf("dead letter payload = %q", dls[0].Payload)
	}
	if !strings.Contains(dls[0].Reason, "line 2") {
		t.Errorf("dead letter reason %q lacks the line number", dls[0].Reason)
	}
}

// A producer that connects, sends one event, and then goes silent must
// be disconnected by the per-read idle deadline instead of holding its
// goroutine forever.
func TestTCPIdleDeadlineClosesStalledConn(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	client, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		s.serveConn(srvConn)
		close(done)
	}()
	if _, err := client.Write([]byte(`{"type":"A","attrs":{"ID":1}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	// ...and now stall. The server must give up after tcpIdle (30ms).
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled connection still being served after 5s")
	}
	if got := s.stalled.Load(); got != 1 {
		t.Errorf("stalled = %d, want 1", got)
	}
	// The server closed its side; the client sees it on the next write.
	client.SetWriteDeadline(time.Now().Add(time.Second))
	var err error
	for i := 0; i < 100; i++ {
		if _, err = client.Write([]byte("x\n")); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("client writes still succeeding after the server hung up")
	}
}

func TestWritePrometheusExposesRobustnessSeries(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	s.ingest(strings.NewReader(`{"type":"A","attrs":{"ID":1}}` + "\nbad\n"))
	var buf bytes.Buffer
	writePrometheus(&buf, s.rt.Snapshot())
	out := buf.String()
	for _, series := range []string{
		"cepshed_events_in_total",
		"cepshed_shard_restarts_total",
		"cepshed_shard_quarantined_total",
		"cepshed_shard_failed",
		"cepshed_degradation_level",
		"cepshed_admission_rejected_total",
		"cepshed_quarantined_total 1",
		"cepshed_failed_shards",
		"cepshed_latency_seconds",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics output missing %q", series)
		}
	}
}

func TestIngestEndpointRejectsAtLoadRejection(t *testing.T) {
	// A tiny queue, a tight bound, and a slow consumer push the ladder to
	// LevelReject; the HTTP edge must answer 429 with Retry-After.
	s := newTestServer(t, runtime.Config{
		Shards:        1,
		QueueLen:      4,
		Bound:         time.Millisecond,
		BeforeProcess: fault.Delay(5*time.Millisecond, nil),
	})
	mux := s.mux()
	line := `{"type":"A","attrs":{"ID":1}}` + "\n"
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("ladder never reached load rejection")
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/ingest",
			strings.NewReader(strings.Repeat(line, 50))))
		if rec.Code == http.StatusTooManyRequests {
			if rec.Header().Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			break
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("unexpected status %d", rec.Code)
		}
		io.Copy(io.Discard, rec.Body)
	}
}
