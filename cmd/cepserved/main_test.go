package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/query"
	"cepshed/internal/registry"
	"cepshed/internal/runtime"
)

// newTestServer builds a registry-backed server with one registered
// query (Q1, so event types A/B/C route) and the given runtime knobs
// applied to every query via TuneRuntime.
func newTestServer(t *testing.T, cfg runtime.Config) *server {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	reg, err := registry.Open(registry.Config{
		Shards:       cfg.Shards,
		QueueLen:     cfg.QueueLen,
		DefaultTheta: cfg.Bound,
		Arbiter:      registry.ArbiterConfig{Disabled: true},
		TuneRuntime: func(_ registry.QuerySpec, rc *runtime.Config) {
			rc.Restart = cfg.Restart
			rc.BeforeProcess = cfg.BeforeProcess
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	in, err := reg.Add(registry.QuerySpec{
		Tenant: defaultTenant,
		Name:   defaultQueryName,
		Query:  query.Q1("8ms").Raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.WaitReady()
	s := &server{reg: reg, started: time.Now(), tcpIdle: 30 * time.Millisecond, conns: map[net.Conn]struct{}{}}
	s.ready.Store(true) // tests exercise the post-recovery state unless they flip it back
	return s
}

func TestHealthzOKThenDraining(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthy server: code = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Errorf("body = %s", rec.Body.String())
	}

	s.closing.Store(true)
	rec = httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining server: code = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status":"draining"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestHealthzFailedWhenAllShardsDead(t *testing.T) {
	s := newTestServer(t, runtime.Config{
		Shards: 1,
		Restart: runtime.RestartPolicy{
			BackoffBase: 100 * time.Microsecond,
			BackoffMax:  time.Millisecond,
			MaxRestarts: 1,
			Window:      time.Minute,
		},
		BeforeProcess: fault.PanicIf(func(int, *event.Event) bool { return true }, "dead on arrival"),
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.reg.Snapshot().FailedShards == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard never failed")
		}
		s.reg.Offer(event.New("A", event.Time(time.Since(s.started)), map[string]event.Value{"ID": event.Int(1)}))
	}
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("all shards failed: code = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"status":"failed"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestIngestQuarantinesBadLines(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	in := `{"type":"A","attrs":{"ID":1}}
garbage line
{"type":"B","attrs":{"ID":2}}
`
	accepted, rejected, overloaded, unrouted := s.ingest(strings.NewReader(in))
	if accepted != 2 || rejected != 1 || overloaded != 0 || unrouted != 0 {
		t.Errorf("ingest = (%d, %d, %d, %d), want (2, 1, 0, 0)", accepted, rejected, overloaded, unrouted)
	}
	if got := s.badLine.Load(); got != 1 {
		t.Errorf("badLine = %d, want 1", got)
	}
	dls := s.reg.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dls))
	}
	if dls[0].Payload != "garbage line" {
		t.Errorf("dead letter payload = %q", dls[0].Payload)
	}
	if !strings.Contains(dls[0].Reason, "line 2") {
		t.Errorf("dead letter reason %q lacks the line number", dls[0].Reason)
	}
	if dls[0].Tenant != "" || dls[0].Query != "" {
		t.Errorf("undecodable line attributed to %s/%s, want the registry edge", dls[0].Tenant, dls[0].Query)
	}
}

// An event whose type no registered query subscribes to is neither
// accepted nor an error — it is counted as unrouted.
func TestIngestCountsUnroutedEvents(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	accepted, rejected, overloaded, unrouted := s.ingest(strings.NewReader(
		`{"type":"Z","attrs":{"ID":1}}` + "\n" + `{"type":"A","attrs":{"ID":1}}` + "\n"))
	if accepted != 1 || rejected != 0 || overloaded != 0 || unrouted != 1 {
		t.Errorf("ingest = (%d, %d, %d, %d), want (1, 0, 0, 1)", accepted, rejected, overloaded, unrouted)
	}
}

// A producer that connects, sends one event, and then goes silent must
// be disconnected by the per-read idle deadline instead of holding its
// goroutine forever.
func TestTCPIdleDeadlineClosesStalledConn(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	client, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		s.serveConn(srvConn)
		close(done)
	}()
	if _, err := client.Write([]byte(`{"type":"A","attrs":{"ID":1}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	// ...and now stall. The server must give up after tcpIdle (30ms).
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled connection still being served after 5s")
	}
	if got := s.stalled.Load(); got != 1 {
		t.Errorf("stalled = %d, want 1", got)
	}
	// The server closed its side; the client sees it on the next write.
	client.SetWriteDeadline(time.Now().Add(time.Second))
	var err error
	for i := 0; i < 100; i++ {
		if _, err = client.Write([]byte("x\n")); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("client writes still succeeding after the server hung up")
	}
}

func TestWritePrometheusExposesRobustnessSeries(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	s.ingest(strings.NewReader(`{"type":"A","attrs":{"ID":1}}` + "\nbad\n"))
	var buf bytes.Buffer
	writePrometheus(&buf, s.reg.Snapshot(), runtime.InternTelemetry(), "")
	out := buf.String()
	for _, series := range []string{
		"cepshed_events_in_total",
		"cepshed_shard_restarts_total",
		"cepshed_shard_quarantined_total",
		"cepshed_shard_failed",
		"cepshed_degradation_level",
		"cepshed_admission_rejected_total",
		"cepshed_quarantined_total 1",
		"cepshed_failed_shards",
		"cepshed_latency_seconds",
		// Multi-query and satellite series.
		`tenant="default"`,
		`query="main"`,
		"cepshed_wal_errors_total",
		"cepshed_imposed_drops_total",
		"cepshed_unrouted_total",
		"cepshed_queries 1",
		"cepshed_ndjson_intern_inserts_total",
		"cepshed_ndjson_intern_rejects_total",
		"cepshed_ndjson_intern_high_water",
		// Shed decision path series (docs/PERFORMANCE.md).
		"cepshed_admission_ns_total",
		"cepshed_shed_plans_built_total",
		"cepshed_shed_plans_applied_total",
		"cepshed_shed_plans_stale_total",
		"cepshed_shed_plan_build_seconds",
		"cepshed_shed_plan_build_seconds_max",
		"cepshed_shed_stall_seconds_max",
		"cepshed_class_buckets",
		"cepshed_class_live_pms",
		"cepshed_class_dead_pms",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics output missing %q", series)
		}
	}
}

func TestIngestEndpointRejectsAtLoadRejection(t *testing.T) {
	// A tiny queue, a tight bound, and a slow consumer push the ladder to
	// LevelReject; the HTTP edge must answer 429 with Retry-After.
	s := newTestServer(t, runtime.Config{
		Shards:        1,
		QueueLen:      4,
		Bound:         time.Millisecond,
		BeforeProcess: fault.Delay(5*time.Millisecond, nil),
	})
	mux := s.mux()
	line := `{"type":"A","attrs":{"ID":1}}` + "\n"
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("ladder never reached load rejection")
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/ingest",
			strings.NewReader(strings.Repeat(line, 50))))
		if rec.Code == http.StatusTooManyRequests {
			if rec.Header().Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			break
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("unexpected status %d", rec.Code)
		}
		io.Copy(io.Discard, rec.Body)
	}
}

// The admin API drives the full query lifecycle over HTTP: register
// (with validation), list, pause/resume, and remove — no restart.
func TestAdminQueryLifecycle(t *testing.T) {
	s := newTestServer(t, runtime.Config{})
	mux := s.mux()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		var r io.Reader
		if body != "" {
			r = strings.NewReader(body)
		}
		mux.ServeHTTP(rec, httptest.NewRequest(method, path, r))
		return rec
	}

	// A bad query must be a clean 400 with the compile error, not a
	// half-registered instance.
	if rec := do("POST", "/queries", `{"tenant":"acme","name":"broken","query":"NOT A QUERY"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query: code = %d, want 400 (body %s)", rec.Code, rec.Body.String())
	}

	spec := `{"tenant":"acme","name":"xy","query":"PATTERN SEQ(X x, Y y) WHERE x.ID = y.ID WITHIN 8ms"}`
	if rec := do("POST", "/queries?wait=1", spec); rec.Code != http.StatusCreated {
		t.Fatalf("add: code = %d, want 201 (body %s)", rec.Code, rec.Body.String())
	}
	// Duplicate registration is a conflict, not a validation error.
	if rec := do("POST", "/queries", spec); rec.Code != http.StatusConflict {
		t.Fatalf("dup add: code = %d, want 409", rec.Code)
	}

	rec := do("GET", "/queries", "")
	var listed []registry.InstanceStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &listed); err != nil {
		t.Fatalf("list: %v (body %s)", err, rec.Body.String())
	}
	if len(listed) != 2 {
		t.Fatalf("listed %d queries, want 2", len(listed))
	}

	// X events route only once the new query serves; pausing stops them.
	if a, _, _, u := s.ingest(strings.NewReader(`{"type":"X","attrs":{"ID":1}}` + "\n")); a != 1 || u != 0 {
		t.Fatalf("X before pause: accepted=%d unrouted=%d, want 1/0", a, u)
	}
	if rec := do("POST", "/queries/acme/xy/pause", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("pause: code = %d, want 204", rec.Code)
	}
	if a, _, _, u := s.ingest(strings.NewReader(`{"type":"X","attrs":{"ID":2}}` + "\n")); a != 0 || u != 1 {
		t.Fatalf("X while paused: accepted=%d unrouted=%d, want 0/1", a, u)
	}
	if rec := do("POST", "/queries/acme/xy/resume", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("resume: code = %d, want 204", rec.Code)
	}
	if a, _, _, u := s.ingest(strings.NewReader(`{"type":"X","attrs":{"ID":3}}` + "\n")); a != 1 || u != 0 {
		t.Fatalf("X after resume: accepted=%d unrouted=%d, want 1/0", a, u)
	}

	if rec := do("PUT", "/tenants", `{"name":"acme","priority":2,"shed_budget":0.5}`); rec.Code != http.StatusNoContent {
		t.Fatalf("put tenant: code = %d, want 204 (body %s)", rec.Code, rec.Body.String())
	}
	rec = do("GET", "/tenants", "")
	var tenants []registry.Tenant
	if err := json.Unmarshal(rec.Body.Bytes(), &tenants); err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0].Priority != 2 {
		t.Fatalf("tenants = %+v, want acme with priority 2", tenants)
	}

	if rec := do("DELETE", "/queries/acme/xy", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("remove: code = %d, want 204", rec.Code)
	}
	if rec := do("DELETE", "/queries/acme/xy", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double remove: code = %d, want 404", rec.Code)
	}
	if a, _, _, u := s.ingest(strings.NewReader(`{"type":"X","attrs":{"ID":4}}` + "\n")); a != 0 || u != 1 {
		t.Fatalf("X after remove: accepted=%d unrouted=%d, want 0/1", a, u)
	}
}
