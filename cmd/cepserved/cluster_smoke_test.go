package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmoke is the end-to-end fault-tolerance drill behind
// `make cluster-smoke`: boot a 3-node cluster of real binaries on
// loopback, stream partial matches across it, perform one planned slot
// handoff, SIGKILL a node mid-stream, and require automatic failover to
// complete every match exactly once — zero duplicates, zero loss of
// flushed state. Offline-safe: all listeners bind 127.0.0.1.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a 3-node cluster of server binaries")
	}
	bin := filepath.Join(t.TempDir(), "cepserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	root := t.TempDir()
	names := []string{"n1", "n2", "n3"}
	addrs := make([]string, len(names))
	for i := range names {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	topo := map[string]any{"nodes": []map[string]string{}}
	var nodeSpecs []map[string]string
	for i, name := range names {
		nodeSpecs = append(nodeSpecs, map[string]string{
			"name": name, "addr": addrs[i], "state_dir": filepath.Join(root, name),
		})
	}
	topo["nodes"] = nodeSpecs
	topoBytes, _ := json.Marshal(topo)
	topoPath := filepath.Join(root, "topology.json")
	if err := os.WriteFile(topoPath, topoBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	const (
		qText = `PATTERN SEQ(A a, B b, C c) WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V WITHIN 8ms`
		token = "smoke-token"
		ids   = 40
	)
	procs := map[string]*serverProc{}
	for i, name := range names {
		procs[name] = startServer(t, bin, []string{
			"-listen", addrs[i],
			"-cluster", topoPath,
			"-node", name,
			"-state-dir", filepath.Join(root, name),
			"-query", qText,
			"-shards", "8",
			"-queue", "4096",
			"-strategy", "None",
			"-bound", "0",
			"-no-arbiter",
			"-wal-flush", "1",
			"-checkpoint-every", "100000",
			// Generous detection window: node startup is sequential here and
			// peers start presumed-up, so the grace must cover the slowest boot.
			"-heartbeat", "250ms",
			"-heartbeat-misses", "8",
			"-admin-token", token,
		})
	}
	defer func() {
		for _, p := range procs {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	}()

	// Everyone sees everyone: no peer down on any node.
	for _, name := range names {
		waitCluster(t, procs[name].addr, 30*time.Second, func(c clusterStatus) bool {
			up := 0
			for _, p := range c.Peers {
				if p.Up {
					up++
				}
			}
			return up == len(names)-1
		})
	}

	// Phase 1: A and B for every id — live partial matches spread across
	// all three nodes by (query, key) routing. One shared timestamp keeps
	// every partial match inside the 8ms window across the whole drill.
	var b strings.Builder
	for id := 0; id < ids; id++ {
		fmt.Fprintf(&b, `{"type":"A","time":10000000,"attrs":{"ID":%d,"V":1}}`+"\n", id)
		fmt.Fprintf(&b, `{"type":"B","time":10000000,"attrs":{"ID":%d,"V":2}}`+"\n", id)
	}
	postIngest(t, procs["n1"].addr, b.String())

	// Quiesce: every pair landed in exactly one engine, nothing in flight.
	waitTotalEventsIn(t, procs, names, 30*time.Second, 2*ids)
	waitCluster(t, procs["n1"].addr, 30*time.Second, func(c clusterStatus) bool {
		return c.InFlight == 0
	})

	// Planned handoff: move slot 0 off its owner. Only the owner answers
	// 204; target is a survivor (never n3, which dies next).
	moved := false
	for _, name := range names {
		target := "n2"
		if name == "n2" {
			target = "n1"
		}
		code := postMove(t, procs[name].addr, token,
			fmt.Sprintf("/cluster/move?tenant=default&query=main&slot=0&target=%s", target))
		if code == http.StatusNoContent {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no node accepted the planned move of slot 0")
	}

	// SIGKILL n3 — the crash the failover path exists for. Its WAL was
	// flushed per record (-wal-flush 1) and ingest has quiesced, so
	// survivors must recover ALL of its partial matches from shared state.
	if err := procs["n3"].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs["n3"].cmd.Wait()

	// Survivors detect the death and adopt n3's slots.
	for _, name := range []string{"n1", "n2"} {
		waitCluster(t, procs[name].addr, 60*time.Second, func(c clusterStatus) bool {
			for _, p := range c.Peers {
				if p.Name == "n3" && !p.Up {
					return c.Degraded
				}
			}
			return false
		})
	}
	waitTakeoversStable(t, procs, 60*time.Second)

	// Phase 2: the completing C events. Every one of the 40 matches must
	// be emitted exactly once across the survivors — including matches
	// whose A/B state lived on n3 and the slot moved by the planned
	// handoff.
	b.Reset()
	for id := 0; id < ids; id++ {
		fmt.Fprintf(&b, `{"type":"C","time":10000000,"attrs":{"ID":%d,"V":3}}`+"\n", id)
	}
	postIngest(t, procs["n1"].addr, b.String())

	deadline := time.Now().Add(60 * time.Second)
	for {
		if total := totalMatches(procs, []string{"n1", "n2"}); total >= ids {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("matches stalled at %d, want %d — failover lost state", totalMatches(procs, []string{"n1", "n2"}), ids)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Settle, then check for duplicate emissions: the count must STOP at 40.
	time.Sleep(500 * time.Millisecond)
	if total := totalMatches(procs, []string{"n1", "n2"}); total != ids {
		t.Fatalf("matches = %d across survivors, want exactly %d (more = duplicate emissions)", total, ids)
	}

	// Survivors shut down cleanly.
	for _, name := range []string{"n1", "n2"} {
		p := procs[name]
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s SIGTERM exit: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit within 30s of SIGTERM", name)
		}
	}
}

type clusterStatus struct {
	Self     string `json:"self"`
	Degraded bool   `json:"degraded"`
	Peers    []struct {
		Name string `json:"name"`
		Up   bool   `json:"up"`
	} `json:"peers"`
	Takeovers uint64 `json:"takeovers"`
	InFlight  int64  `json:"handoff_in_flight"`
}

func getCluster(addr string) (clusterStatus, error) {
	var c clusterStatus
	resp, err := http.Get(fmt.Sprintf("http://%s/cluster", addr))
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	return c, json.NewDecoder(resp.Body).Decode(&c)
}

func waitCluster(t *testing.T, addr string, timeout time.Duration, ok func(clusterStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last clusterStatus
	for time.Now().Before(deadline) {
		if c, err := getCluster(addr); err == nil {
			last = c
			if ok(c) {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("cluster condition not met within %s; last: %+v", timeout, last)
}

func postIngest(t *testing.T, addr, body string) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("http://%s/ingest", addr), "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: %s", resp.Status)
	}
}

func postMove(t *testing.T, addr, token, path string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("http://%s%s", addr, path), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

func nodeStats(addr string) (stats, error) {
	var s stats
	resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

func waitTotalEventsIn(t *testing.T, procs map[string]*serverProc, names []string, timeout time.Duration, want uint64) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last uint64
	for time.Now().Before(deadline) {
		var total uint64
		for _, name := range names {
			if s, err := nodeStats(procs[name].addr); err == nil {
				total += s.EventsIn
			}
		}
		last = total
		if total >= want {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("cluster events_in stalled at %d, want %d", last, want)
}

func totalMatches(procs map[string]*serverProc, names []string) uint64 {
	var total uint64
	for _, name := range names {
		if s, err := nodeStats(procs[name].addr); err == nil {
			total += s.Matches
		}
	}
	return total
}

// waitTakeoversStable waits until failover work settles: takeovers
// across survivors unchanged between two polls and at least one slot
// adopted (n3 owns slots under any rendezvous spread of 8 slots × 3
// nodes that isn't degenerate).
func waitTakeoversStable(t *testing.T, procs map[string]*serverProc, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var prev uint64
	for time.Now().Before(deadline) {
		var cur uint64
		for _, name := range []string{"n1", "n2"} {
			if c, err := getCluster(procs[name].addr); err == nil {
				cur += c.Takeovers
			}
		}
		if cur > 0 && cur == prev {
			return
		}
		prev = cur
		time.Sleep(300 * time.Millisecond)
	}
	t.Fatalf("takeovers never stabilized above zero (last %d)", prev)
}
