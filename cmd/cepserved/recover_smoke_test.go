package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRecoverSmoke is the end-to-end durability drill: run the real
// binary against a state directory, SIGKILL it mid-stream, restart it,
// and require the second process to come back with the first one's
// counters and partial matches instead of a cold start — then shut it
// down cleanly. This is what `make recover-smoke` runs.
func TestRecoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "cepserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	stateDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-dataset", "ds1",
		"-events", "200000",
		"-rate", "30000",
		"-strategy", "None",
		"-bound", "0",
		"-shards", "2",
		"-state-dir", stateDir,
		"-checkpoint-every", "1500",
		"-wal-flush", "1",
	}

	// ---- First incarnation: run until it has snapshotted, then SIGKILL.
	p1 := startServer(t, bin, args)
	var pre stats
	waitStats(t, p1.addr, 30*time.Second, func(s stats) bool {
		pre = s
		return s.Snapshots >= 1 && s.EventsIn > 3000
	})
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	// ---- Second incarnation: must recover, not cold-start.
	p2 := startServer(t, bin, args)
	defer func() {
		p2.cmd.Process.Kill()
		p2.cmd.Wait()
	}()
	var post stats
	waitStats(t, p2.addr, 30*time.Second, func(s stats) bool {
		post = s
		return s.EventsIn >= pre.EventsIn && s.Matches >= pre.Matches
	})
	if post.ColdStarts != 0 {
		t.Fatalf("restart cold-started %d shard(s); wanted snapshot+WAL recovery", post.ColdStarts)
	}
	waitStats(t, p2.addr, 30*time.Second, func(s stats) bool {
		// The recovered engine must be carrying live partial matches — the
		// whole point of durable state — once replay has refilled windows.
		return s.LivePMs > 0
	})

	// ---- Clean shutdown: SIGTERM drains and exits 0.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit within 30s of SIGTERM")
	}
}

type stats struct {
	EventsIn    uint64 `json:"events_in"`
	Matches     uint64 `json:"matches"`
	LivePMs     int64  `json:"live_partial_matches"`
	Snapshots   uint64 `json:"snapshots"`
	WALReplayed uint64 `json:"wal_replayed"`
	ColdStarts  uint64 `json:"cold_starts"`
}

type serverProc struct {
	cmd  *exec.Cmd
	addr string
}

// startServer launches the binary and scrapes the actual listen address
// from its "HTTP on host:port" log line (the server binds :0 in tests).
func startServer(t *testing.T, bin string, args []string) *serverProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Log(line)
			if i := strings.Index(line, "HTTP on "); i >= 0 {
				rest := line[i+len("HTTP on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &serverProc{cmd: cmd, addr: addr}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never logged its HTTP address")
		return nil
	}
}

// waitStats polls /stats until ok returns true or the deadline passes.
func waitStats(t *testing.T, addr string, timeout time.Duration, ok func(stats) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last stats
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/stats", addr))
		if err == nil {
			var s stats
			derr := json.NewDecoder(resp.Body).Decode(&s)
			resp.Body.Close()
			if derr == nil {
				last = s
				if ok(s) {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("stats condition not met within %s; last: %+v", timeout, last)
}
