package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cepshed/internal/registry"
)

// TestMultiQuerySmoke is the end-to-end multi-tenant drill behind
// `make multiquery-smoke`: start the real binary with no queries,
// register two tenants with two queries over the admin API, replay one
// mixed stream through /ingest, drive the low-priority tenant's Kleene
// query into overload, and require the arbiter to degrade only that
// tenant — the other tenant keeps full recall and sane latency — then
// drain cleanly on SIGTERM.
func TestMultiQuerySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	bin := filepath.Join(t.TempDir(), "cepserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	// Small arbiter capacity makes "overload" reachable at test scale —
	// the Kleene query saturates a core, far past 0.25 — while leaving
	// the protected tenant's entitlement (0.2 cores at 4:1 priority)
	// comfortably above anything its trivial pairs query can burn, so a
	// phase-2 ingest burst can never trip the knapsack against it. Bound
	// 0 disables the per-query latency ladder so the only shedding in
	// play is the cross-query arbiter's.
	p := startServer(t, bin, []string{
		"-listen", "127.0.0.1:0",
		"-shards", "2",
		"-bound", "0",
		"-strategy", "None",
		"-arbiter-interval", "50ms",
		"-arbiter-capacity", "0.25",
	})
	defer func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}()
	base := "http://" + p.addr

	// ---- Tenants: acme is the protected high-priority tenant, noisy the
	// low-priority one that will be driven into overload.
	httpDo(t, "PUT", base+"/tenants", `{"name":"acme","priority":4}`, http.StatusNoContent)
	httpDo(t, "PUT", base+"/tenants", `{"name":"noisy","priority":1}`, http.StatusNoContent)

	// ---- Queries: registered dynamically, no restart. acme/pairs is a
	// cheap two-step correlation; noisy/kleene accumulates runs
	// combinatorially over a handful of hot keys.
	addQuery(t, base, registry.QuerySpec{
		Tenant: "acme", Name: "pairs",
		Query: "PATTERN SEQ(X x, Y y) WHERE x.ID = y.ID WITHIN 100ms",
	})
	addQuery(t, base, registry.QuerySpec{
		Tenant: "noisy", Name: "kleene",
		Query: "PATTERN SEQ(N a, N+ b[], M c) WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 60ms",
	})

	// ---- Phase 1: overload the noisy tenant over one shared stream
	// until the arbiter imposes drops on it. 4 events per key per round
	// with a 60ms window and 20ms round step keeps ~12 same-key events in
	// window: ~4k Kleene runs per key — hot, but bounded.
	var logical uint64 = 1_000_000_000
	deadline := time.Now().Add(45 * time.Second)
	var noisyImposed uint64
	for noisyImposed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("arbiter never imposed drops on the noisy tenant")
		}
		var b bytes.Buffer
		for rep := 0; rep < 4; rep++ {
			for id := 0; id < 8; id++ {
				fmt.Fprintf(&b, `{"type":"N","time":%d,"attrs":{"ID":%d}}`+"\n",
					logical+uint64(rep)*1_000_000, id)
			}
		}
		postStream(t, base, &b)
		logical += 20_000_000
		snap := scrapeStats(t, base)
		noisyImposed = findQuery(t, snap, "noisy", "kleene").ImposedDrops
		time.Sleep(5 * time.Millisecond)
	}

	// ---- Phase 2: the protected tenant's traffic rides the same stream
	// while the noisy tenant is being shed. Distinct IDs per pair make
	// the expected match count exact.
	const pairs = 200
	preAcme := findQuery(t, scrapeStats(t, base), "acme", "pairs").Runtime
	var b bytes.Buffer
	for k := 0; k < pairs; k++ {
		id := 10_000 + k
		fmt.Fprintf(&b, `{"type":"X","time":%d,"attrs":{"ID":%d}}`+"\n", logical, id)
		fmt.Fprintf(&b, `{"type":"Y","time":%d,"attrs":{"ID":%d}}`+"\n", logical+1_000_000, id)
		logical += 2_000_000
	}
	postStream(t, base, &b)

	var acme registry.InstanceStatus
	ok := pollUntil(30*time.Second, func() bool {
		acme = findQuery(t, scrapeStats(t, base), "acme", "pairs")
		return acme.Runtime.Matches >= preAcme.Matches+pairs
	})
	if !ok {
		t.Fatalf("acme recall broken: matches %d, want %d (events_in %d, shed %d, imposed %d)",
			acme.Runtime.Matches, preAcme.Matches+pairs,
			acme.Runtime.EventsIn, acme.Runtime.EventsShed, acme.ImposedDrops)
	}

	// ---- Isolation: the overloaded tenant degraded itself, not acme.
	snap := scrapeStats(t, base)
	acme = findQuery(t, snap, "acme", "pairs")
	noisy := findQuery(t, snap, "noisy", "kleene")
	if acme.Runtime.EventsShed != 0 || acme.ImposedDrops != 0 {
		t.Errorf("protected tenant was shed: events_shed=%d imposed_drops=%d",
			acme.Runtime.EventsShed, acme.ImposedDrops)
	}
	if got := acme.Runtime.EventsIn - preAcme.EventsIn; got != 2*pairs {
		t.Errorf("protected tenant events_in grew %d, want %d", got, 2*pairs)
	}
	// Generous wall-clock bound: the point is "not starved by the
	// neighbor", not an absolute latency SLO on shared CI hardware.
	if acme.Runtime.P99 > 250*time.Millisecond {
		t.Errorf("protected tenant p99 = %v, want < 250ms while neighbor overloads", acme.Runtime.P99)
	}
	if noisy.ImposedDrops == 0 {
		t.Error("noisy tenant has no imposed drops after overload")
	}
	var tl *registry.TenantLoad
	for i := range snap.Arbiter.Tenants {
		if snap.Arbiter.Tenants[i].Tenant == "noisy" {
			tl = &snap.Arbiter.Tenants[i]
		}
	}
	if tl == nil {
		t.Error("arbiter snapshot missing the noisy tenant")
	}

	// ---- Clean drain: SIGTERM exits 0.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit within 30s of SIGTERM")
	}
}

func httpDo(t *testing.T, method, url, body string, want int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d: %s", method, url, resp.StatusCode, want, out)
	}
	return out
}

func addQuery(t *testing.T, base string, spec registry.QuerySpec) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	httpDo(t, "POST", base+"/queries?wait=1", string(body), http.StatusCreated)
}

func postStream(t *testing.T, base string, body io.Reader) {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", body)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: status %d", resp.StatusCode)
	}
}

func scrapeStats(t *testing.T, base string) registry.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var snap registry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return snap
}

func findQuery(t *testing.T, snap registry.Snapshot, tenant, name string) registry.InstanceStatus {
	t.Helper()
	for _, q := range snap.Queries {
		if q.Spec.Tenant == tenant && q.Spec.Name == name {
			return q
		}
	}
	t.Fatalf("query %s/%s not in /stats snapshot", tenant, name)
	return registry.InstanceStatus{}
}

func pollUntil(timeout time.Duration, ok func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}
