// Command cepserved runs the sharded wall-clock CEP runtime as a server:
// it ingests NDJSON events over HTTP and/or raw TCP, optionally replays
// one of the built-in dataset generators at a configurable rate for load
// testing, and exposes live statistics.
//
// Endpoints (on -listen):
//
//	POST /ingest   NDJSON event lines (see docs/RUNTIME.md for the format)
//	GET  /stats    JSON runtime snapshot
//	GET  /metrics  Prometheus text exposition
//	GET  /healthz  liveness probe
//
// Examples:
//
//	cepserved -dataset ds1 -events 200000 -rate 50000 -shards 4 \
//	  -strategy Hybrid -bound 2ms
//
//	cepserved -tcp :9999 -shards 8 -strategy RI -bound 5ms \
//	  -query 'PATTERN SEQ(A a, B b, C c) WHERE a.ID=b.ID AND a.ID=c.ID WITHIN 8ms'
//
// On SIGINT/SIGTERM the server stops ingesting, drains every shard queue
// (emitting the final matches those events complete), and prints the
// final snapshot to stdout.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cepshed/internal/baseline"
	"cepshed/internal/citibike"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address (/ingest, /stats, /metrics, /healthz)")
		tcpAddr  = flag.String("tcp", "", "optional raw TCP NDJSON listen address")
		shards   = flag.Int("shards", 4, "number of engine shards")
		queueLen = flag.Int("queue", 1024, "per-shard bounded queue capacity")
		dataset  = flag.String("dataset", "", "replay dataset: ds1, ds2, citibike, gcluster (empty: ingest only)")
		events   = flag.Int("events", 100000, "replay stream length (trips/tasks for the case studies)")
		rate     = flag.Float64("rate", 20000, "replay rate in events/sec (0: as fast as backpressure allows)")
		loop     = flag.Bool("loop", false, "repeat the replay until terminated")
		querySrc = flag.String("query", "", "query text (default: the paper query for the dataset)")
		strategy = flag.String("strategy", "Hybrid", "None, RI, SI, PI, RS, SS, Hybrid, HyI, HyS")
		bound    = flag.Duration("bound", 2*time.Millisecond, "wall-clock latency bound θ for the shedding controller")
		seed     = flag.Int64("seed", 1, "generator seed")
		emit     = flag.Bool("print-matches", false, "write detected matches as NDJSON to stdout")
	)
	flag.Parse()

	if *dataset == "" && *querySrc == "" {
		log.Fatal("cepserved: need -query (ingest mode) or -dataset (replay mode)")
	}

	var train, work event.Stream
	src := *querySrc
	if *dataset != "" {
		var defQuery string
		train, work, defQuery = streams(*dataset, *events, *seed)
		if src == "" {
			src = defQuery
		}
	}
	q, err := query.Parse(src)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}
	m, err := nfa.Compile(q)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}

	boundNs := event.Time(bound.Nanoseconds())
	factory, err := strategyFactory(*strategy, m, train, boundNs, *seed)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}

	cfg := runtime.Config{
		Shards:      *shards,
		QueueLen:    *queueLen,
		NewStrategy: factory,
	}
	var emitMu sync.Mutex
	if *emit {
		out := bufio.NewWriter(os.Stdout)
		cfg.OnMatch = func(shard int, match engine.Match) {
			emitMu.Lock()
			out.Write(runtime.EncodeMatch(shard, match))
			out.WriteByte('\n')
			out.Flush()
			emitMu.Unlock()
		}
	}
	// Hybrid strategies train a cost model per shard inside runtime.New,
	// which can take several seconds on large training streams — say so,
	// or the silence before the listener comes up looks like a hang.
	if len(train) > 0 {
		log.Printf("cepserved: starting %d shards (strategy %s may train on %d events per shard)",
			*shards, *strategy, len(train))
	}
	rt := runtime.New(m, cfg)
	srv := &server{rt: rt, started: time.Now()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *listen, Handler: srv.mux()}
	go func() {
		log.Printf("cepserved: HTTP on %s (query: %s, shards=%d, strategy=%s, bound=%s)",
			*listen, q, *shards, *strategy, bound)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("cepserved: http: %v", err)
		}
	}()

	var tcpLn net.Listener
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatalf("cepserved: tcp: %v", err)
		}
		log.Printf("cepserved: NDJSON TCP on %s", *tcpAddr)
		go srv.serveTCP(ctx, tcpLn)
	}

	var producers sync.WaitGroup
	if len(work) > 0 {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for {
				n := srv.replay(ctx, work, *rate)
				log.Printf("cepserved: replay pass done (%d events offered)", n)
				if !*loop || ctx.Err() != nil {
					return
				}
			}
		}()
	}

	<-ctx.Done()
	log.Print("cepserved: draining shard queues")
	srv.closing.Store(true)
	if tcpLn != nil {
		tcpLn.Close()
	}
	// Stop the replay producer before closing so the final snapshot
	// accounts for every event it offered. (Offer itself is safe against
	// a concurrent Close — late TCP/HTTP ingest is simply rejected.)
	producers.Wait()
	rt.Close() // graceful drain: queued events finish, engines flush
	shut, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shut)

	final := rt.Snapshot()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(final)
	log.Printf("cepserved: final: %s", final)
}

// server wires the runtime into the network frontends.
type server struct {
	rt      *runtime.Runtime
	started time.Time
	seq     atomic.Uint64
	lastT   atomic.Int64 // monotone floor for assigned arrival times
	closing atomic.Bool
	badLine atomic.Uint64
}

// submit finalizes an ingested event (arrival time, sequence number) and
// offers it to the runtime with backpressure.
func (s *server) submit(e *event.Event, hasTime bool) {
	if !hasTime {
		e.Time = event.Time(time.Since(s.started).Nanoseconds())
	}
	// Per-shard time must be non-decreasing; concurrent producers race
	// between stamping and enqueueing, so clamp to a global floor.
	for {
		last := s.lastT.Load()
		if int64(e.Time) >= last {
			if s.lastT.CompareAndSwap(last, int64(e.Time)) {
				break
			}
			continue
		}
		e.Time = event.Time(last)
		break
	}
	e.Seq = s.seq.Add(1) - 1
	s.rt.Offer(e)
}

// replay feeds a generated stream at the target rate (events/second),
// blocking on backpressure when the shards cannot keep up.
func (s *server) replay(ctx context.Context, work event.Stream, rate float64) int {
	start := time.Now()
	n := 0
	for i, e := range work {
		if ctx.Err() != nil {
			return n
		}
		if rate > 0 {
			due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return n
				}
			}
		}
		// Replayed events keep their generated virtual timestamps: window
		// semantics stay deterministic regardless of the wall replay rate.
		s.rt.Offer(e)
		n++
	}
	return n
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := s.rt.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			runtime.Snapshot
			UptimeSeconds float64 `json:"uptime_seconds"`
			BadLines      uint64  `json:"bad_lines"`
		}{snap, time.Since(s.started).Seconds(), s.badLine.Load()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writePrometheus(w, s.rt.Snapshot())
	})
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		if s.closing.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		accepted, rejected := s.ingestLines(bufio.NewScanner(r.Body))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d,"rejected":%d}`+"\n", accepted, rejected)
	})
	return mux
}

// ingestLines parses NDJSON lines from the scanner, submitting valid
// events and counting bad lines.
func (s *server) ingestLines(sc *bufio.Scanner) (accepted, rejected int) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, hasTime, err := runtime.ParseEvent(line)
		if err != nil {
			rejected++
			s.badLine.Add(1)
			continue
		}
		s.submit(e, hasTime)
		accepted++
	}
	return accepted, rejected
}

func (s *server) serveTCP(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.closing.Load() {
				return
			}
			log.Printf("cepserved: tcp accept: %v", err)
			return
		}
		go func() {
			defer conn.Close()
			s.ingestLines(bufio.NewScanner(conn))
		}()
	}
}

// writePrometheus renders the snapshot in Prometheus text exposition
// format, with per-shard labelled series plus aggregate quantiles.
func writePrometheus(w http.ResponseWriter, snap runtime.Snapshot) {
	counter := func(name, help string, val func(runtime.ShardSnapshot) uint64) {
		fmt.Fprintf(w, "# HELP cepshed_%s %s\n# TYPE cepshed_%s counter\n", name, help, name)
		for _, ss := range snap.Shards {
			fmt.Fprintf(w, "cepshed_%s{shard=\"%d\"} %d\n", name, ss.Shard, val(ss))
		}
	}
	gauge := func(name, help string, val func(runtime.ShardSnapshot) float64) {
		fmt.Fprintf(w, "# HELP cepshed_%s %s\n# TYPE cepshed_%s gauge\n", name, help, name)
		for _, ss := range snap.Shards {
			fmt.Fprintf(w, "cepshed_%s{shard=\"%d\"} %g\n", name, ss.Shard, val(ss))
		}
	}
	counter("events_in_total", "Events offered to the shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsIn })
	counter("events_shed_total", "Events discarded by input-based shedding (rho_I).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsShed })
	counter("events_processed_total", "Events processed by the engine.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsProcessed })
	counter("overflow_dropped_total", "Events dropped on full queue by TryOffer.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Overflow })
	counter("matches_total", "Complete matches detected.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Matches })
	counter("partial_matches_created_total", "Partial matches created.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.CreatedPMs })
	counter("partial_matches_dropped_total", "Partial matches removed by state-based shedding (rho_S).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.DroppedPMs })
	gauge("queue_depth", "Events waiting in the shard queue.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.QueueDepth) })
	gauge("live_partial_matches", "Live partial matches in the shard engine.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.LivePMs) })
	gauge("smoothed_latency_seconds", "EWMA-smoothed wall-clock latency driving the shedder.",
		func(ss runtime.ShardSnapshot) float64 { return ss.SmoothedLatency.Seconds() })

	fmt.Fprintf(w, "# HELP cepshed_input_shed_ratio Realized rho_I across all shards.\n# TYPE cepshed_input_shed_ratio gauge\ncepshed_input_shed_ratio %g\n", snap.InputShedRatio)
	fmt.Fprintf(w, "# HELP cepshed_pm_shed_ratio Realized rho_S across all shards.\n# TYPE cepshed_pm_shed_ratio gauge\ncepshed_pm_shed_ratio %g\n", snap.PMShedRatio)
	fmt.Fprintf(w, "# HELP cepshed_latency_seconds Wall-clock event latency quantiles across all shards.\n# TYPE cepshed_latency_seconds summary\n")
	fmt.Fprintf(w, "cepshed_latency_seconds{quantile=\"0.5\"} %g\n", snap.P50.Seconds())
	fmt.Fprintf(w, "cepshed_latency_seconds{quantile=\"0.95\"} %g\n", snap.P95.Seconds())
	fmt.Fprintf(w, "cepshed_latency_seconds{quantile=\"0.99\"} %g\n", snap.P99.Seconds())
	fmt.Fprintf(w, "cepshed_latency_seconds_count %d\n", snap.EventsIn)
}

// strategyFactory builds the per-shard strategy constructor. Every shard
// gets its own instance (strategies are stateful); model-based
// strategies train per shard so online adaptation never shares state.
func strategyFactory(name string, m *nfa.Machine, train event.Stream, bound event.Time, seed int64) (func(int) shed.Strategy, error) {
	needTrain := func() error {
		if len(train) == 0 {
			return fmt.Errorf("strategy %s needs training data: run with -dataset", name)
		}
		return nil
	}
	switch name {
	case "None":
		return nil, nil
	case "RI":
		return func(i int) shed.Strategy { return baseline.NewRandomInput(bound, seed+int64(i)) }, nil
	case "RS":
		return func(i int) shed.Strategy { return baseline.NewRandomState(bound, seed+int64(i)) }, nil
	case "SI":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewSelectivityInput(baseline.EstimateSelectivity(m, train), bound, seed+int64(i))
		}, nil
	case "SS":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewSelectivityState(baseline.EstimateSelectivity(m, train), bound, seed+int64(i))
		}, nil
	case "PI":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewPositionInput(baseline.EstimatePositionUtility(m, train), bound, seed+int64(i))
		}, nil
	case "Hybrid", "HyI", "HyS":
		if err := needTrain(); err != nil {
			return nil, err
		}
		mode := core.ModeHybrid
		if name == "HyI" {
			mode = core.ModeInputOnly
		} else if name == "HyS" {
			mode = core.ModeStateOnly
		}
		return func(i int) shed.Strategy {
			model := core.MustTrain(m, train, core.TrainConfig{Slices: 4, Seed: 1})
			return core.NewHybrid(model, core.Config{Bound: bound, Mode: mode, Adapt: true})
		}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// streams returns training and workload streams plus the default query
// for a dataset (the same shapes ceprun uses).
func streams(dataset string, events int, seed int64) (train, work event.Stream, defQuery string) {
	switch dataset {
	case "ds1":
		train = gen.DS1(gen.DS1Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS1(gen.DS1Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q1("8ms").Raw
	case "ds2":
		train = gen.DS2(gen.DS2Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS2(gen.DS2Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q3("8ms").Raw
	case "citibike":
		train = citibike.Generate(citibike.Config{Trips: events / 2, Seed: seed + 1000})
		work = citibike.Generate(citibike.Config{Trips: events, Seed: seed})
		defQuery = query.HotPaths("5 min", 2, 5).Raw
	case "gcluster":
		cfg := gcluster.Config{Tasks: events / 4, MeanGap: 120 * event.Millisecond, StepGap: 400 * event.Millisecond}
		cfg.Seed = seed + 1000
		train = gcluster.Generate(cfg)
		cfg.Seed = seed
		work = gcluster.Generate(cfg)
		defQuery = query.ClusterTasks("1 min").Raw
	default:
		log.Fatalf("cepserved: unknown dataset %q", dataset)
	}
	return train, work, defQuery
}
