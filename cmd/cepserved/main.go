// Command cepserved runs the sharded wall-clock CEP runtime as a server:
// it ingests NDJSON events over HTTP and/or raw TCP, optionally replays
// one of the built-in dataset generators at a configurable rate for load
// testing, and exposes live statistics.
//
// Endpoints (on -listen):
//
//	POST /ingest      NDJSON event lines (see docs/RUNTIME.md for the format)
//	GET  /stats       JSON runtime snapshot
//	GET  /metrics     Prometheus text exposition
//	GET  /healthz     health/readiness probe (503 while draining or load-rejecting)
//	GET  /deadletters recent quarantined inputs (see docs/ROBUSTNESS.md)
//
// Examples:
//
//	cepserved -dataset ds1 -events 200000 -rate 50000 -shards 4 \
//	  -strategy Hybrid -bound 2ms
//
//	cepserved -tcp :9999 -shards 8 -strategy RI -bound 5ms \
//	  -query 'PATTERN SEQ(A a, B b, C c) WHERE a.ID=b.ID AND a.ID=c.ID WITHIN 8ms'
//
// On SIGINT/SIGTERM the server stops ingesting, closes live TCP ingest
// connections, drains every shard queue (emitting the final matches
// those events complete), and prints the final snapshot to stdout.
//
// With -state-dir the runtime checkpoints every shard's state (live
// partial matches, counters, strategy state) and write-ahead-logs the
// events in between, so a crash or restart resumes from the last good
// snapshot plus the WAL tail instead of losing every open window; a
// graceful SIGTERM drain ends with a final snapshot, so a clean restart
// replays nothing. During boot recovery /healthz reports "recovering"
// and /ingest answers 503. See docs/DURABILITY.md.
//
// The server is hardened against misbehaving clients: HTTP requests are
// bounded by header/read/idle timeouts, TCP ingest connections carry a
// per-read idle deadline so a stalled producer cannot hold a goroutine
// forever, undecodable NDJSON lines are quarantined to the runtime's
// dead-letter queue with their line number and payload, and when the
// runtime's degradation ladder reaches load rejection the HTTP path
// answers 429 and the TCP path emits NACK lines (docs/ROBUSTNESS.md).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cepshed/internal/baseline"
	"cepshed/internal/checkpoint"
	"cepshed/internal/citibike"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address (/ingest, /stats, /metrics, /healthz, /deadletters)")
		tcpAddr   = flag.String("tcp", "", "optional raw TCP NDJSON listen address")
		tcpIdle   = flag.Duration("tcp-idle", time.Minute, "TCP ingest read deadline; a connection idle longer is closed")
		httpRead  = flag.Duration("http-read-timeout", 5*time.Minute, "HTTP read timeout (bounds one /ingest request body)")
		shards    = flag.Int("shards", 4, "number of engine shards")
		queueLen  = flag.Int("queue", 1024, "per-shard bounded queue capacity")
		dataset   = flag.String("dataset", "", "replay dataset: ds1, ds2, citibike, gcluster (empty: ingest only)")
		events    = flag.Int("events", 100000, "replay stream length (trips/tasks for the case studies)")
		rate      = flag.Float64("rate", 20000, "replay rate in events/sec (0: as fast as backpressure allows)")
		loop      = flag.Bool("loop", false, "repeat the replay until terminated")
		querySrc  = flag.String("query", "", "query text (default: the paper query for the dataset)")
		strategy  = flag.String("strategy", "Hybrid", "None, RI, SI, PI, RS, SS, Hybrid, HyI, HyS")
		bound     = flag.Duration("bound", 2*time.Millisecond, "wall-clock latency bound θ for the shedding controller and degradation ladder")
		seed      = flag.Int64("seed", 1, "generator seed")
		emit      = flag.Bool("print-matches", false, "write detected matches as NDJSON to stdout")
		noRecover = flag.Bool("no-recover", false, "disable the shard supervisor (panics crash the process; for debugging)")
		stateDir  = flag.String("state-dir", "", "directory for per-shard checkpoints and WALs (empty: no durability; see docs/DURABILITY.md)")
		ckptEvery = flag.Int("checkpoint-every", 32768, "events between per-shard snapshots (bounds replay time after a crash, not data loss)")
		walFlush  = flag.Int("wal-flush", 1024, "max WAL records per flush group; 1 flushes every record (group commit: a crash loses at most one unflushed group)")
		walFlushB = flag.Int("wal-flush-bytes", 48<<10, "max buffered WAL bytes per flush group")
		walFlushT = flag.Duration("wal-flush-interval", 2*time.Millisecond, "max age of a buffered WAL record before the group flushes")
		walFsync  = flag.Bool("wal-fsync", false, "fsync WAL flushes and snapshots (survives machine crashes, not just process crashes)")
	)
	flag.Parse()

	if *dataset == "" && *querySrc == "" {
		log.Fatal("cepserved: need -query (ingest mode) or -dataset (replay mode)")
	}

	var train, work event.Stream
	src := *querySrc
	if *dataset != "" {
		var defQuery string
		train, work, defQuery = streams(*dataset, *events, *seed)
		if src == "" {
			src = defQuery
		}
	}
	q, err := query.Parse(src)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}
	m, err := nfa.Compile(q)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}

	boundNs := event.Time(bound.Nanoseconds())
	factory, err := strategyFactory(*strategy, m, train, boundNs, *seed)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}

	cfg := runtime.Config{
		Shards:          *shards,
		QueueLen:        *queueLen,
		NewStrategy:     factory,
		Bound:           *bound,
		DisableRecovery: *noRecover,
		Logf:            log.Printf,
	}
	if *stateDir != "" {
		cfg.Durability = &checkpoint.Config{
			Dir:         *stateDir,
			EveryEvents:   *ckptEvery,
			FlushEvery:    *walFlush,
			FlushBytes:    *walFlushB,
			FlushInterval: *walFlushT,
			Fsync:         *walFsync,
		}
	}
	var emitMu sync.Mutex
	if *emit {
		out := bufio.NewWriter(os.Stdout)
		cfg.OnMatch = func(shard int, match engine.Match) {
			emitMu.Lock()
			out.Write(runtime.EncodeMatch(shard, match))
			out.WriteByte('\n')
			out.Flush()
			emitMu.Unlock()
		}
	}
	// Hybrid strategies train a cost model per shard inside runtime.New,
	// which can take several seconds on large training streams — say so,
	// or the silence before the listener comes up looks like a hang.
	if len(train) > 0 {
		log.Printf("cepserved: starting %d shards (strategy %s may train on %d events per shard)",
			*shards, *strategy, len(train))
	}
	rt := runtime.New(m, cfg)
	srv := &server{rt: rt, started: time.Now(), tcpIdle: *tcpIdle, conns: map[net.Conn]struct{}{}}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// A slow or malicious HTTP client must not hold a connection open
	// indefinitely: headers get a short deadline, a whole request body a
	// longer one, and keep-alive connections an idle cap. The listener is
	// opened explicitly so ":0" works and the log line carries the real
	// address (the smoke test depends on both).
	httpSrv := &http.Server{
		Handler:           srv.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *httpRead,
		IdleTimeout:       2 * time.Minute,
	}
	httpLn, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cepserved: http listen: %v", err)
	}
	log.Printf("cepserved: HTTP on %s (query: %s, shards=%d, strategy=%s, bound=%s)",
		httpLn.Addr(), q, *shards, *strategy, bound)
	go func() {
		if err := httpSrv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
			log.Fatalf("cepserved: http: %v", err)
		}
	}()

	// Recovery gate: the HTTP endpoints are already up (so /healthz says
	// "recovering" and /ingest answers 503), but no new input flows until
	// every shard has restored its snapshot and replayed its WAL tail.
	rt.WaitRecovered()
	if cfg.Durability != nil {
		info := rt.RecoveryInfo()
		// Gate on Restored, not MaxSeq > 0: sequence numbers start at 0, so
		// a store whose only durable event is seq 0 would otherwise hand out
		// seq 0 again.
		if info.Restored {
			// Resume numbering and time above everything already durable, and
			// make dataset replay skip the prefix the store already has.
			srv.seq.Store(info.MaxSeq + 1)
			srv.lastT.Store(info.MaxTime)
			srv.replayFloor.Store(info.MaxSeq + 1)
			log.Printf("cepserved: recovered state up to seq=%d (wal_replayed=%d cold_starts=%d)",
				info.MaxSeq, info.WALReplayed, info.ColdStarts)
		}
	}
	srv.ready.Store(true)

	var tcpLn net.Listener
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatalf("cepserved: tcp: %v", err)
		}
		log.Printf("cepserved: NDJSON TCP on %s (idle timeout %s)", *tcpAddr, *tcpIdle)
		go srv.serveTCP(ctx, tcpLn)
	}

	var producers sync.WaitGroup
	if len(work) > 0 {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for {
				n := srv.replay(ctx, work, *rate)
				log.Printf("cepserved: replay pass done (%d events offered)", n)
				if !*loop || ctx.Err() != nil {
					return
				}
			}
		}()
	}

	<-ctx.Done()
	log.Print("cepserved: draining shard queues")
	srv.closing.Store(true)
	if tcpLn != nil {
		tcpLn.Close()
	}
	srv.closeConns() // stalled producers must not delay the drain
	// Stop the replay producer before closing so the final snapshot
	// accounts for every event it offered. (Offer itself is safe against
	// a concurrent Close — late TCP/HTTP ingest is simply rejected.)
	producers.Wait()
	rt.Close() // graceful drain: queued events finish, engines flush
	shut, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shut)

	final := rt.Snapshot()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(final)
	log.Printf("cepserved: final: %s", final)
}

// server wires the runtime into the network frontends.
type server struct {
	rt      *runtime.Runtime
	started time.Time
	tcpIdle time.Duration
	seq     atomic.Uint64
	lastT   atomic.Int64 // monotone floor for assigned arrival times
	closing atomic.Bool
	badLine atomic.Uint64
	stalled atomic.Uint64 // TCP connections closed by the idle deadline

	// ready flips once boot recovery finishes; until then /ingest answers
	// 503 and /healthz reports "recovering". replayFloor is the first
	// sequence number dataset replay still owes — everything below it was
	// recovered from the checkpoint store.
	ready       atomic.Bool
	replayFloor atomic.Uint64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// stamp finalizes an ingested event's arrival time and sequence number.
func (s *server) stamp(e *event.Event, hasTime bool) {
	if !hasTime {
		e.Time = event.Time(time.Since(s.started).Nanoseconds())
	}
	// Per-shard time must be non-decreasing; concurrent producers race
	// between stamping and enqueueing, so clamp to a global floor.
	for {
		last := s.lastT.Load()
		if int64(e.Time) >= last {
			if s.lastT.CompareAndSwap(last, int64(e.Time)) {
				break
			}
			continue
		}
		e.Time = event.Time(last)
		break
	}
	e.Seq = s.seq.Add(1) - 1
}

// submit finalizes an ingested event and offers it to the runtime with
// backpressure. It reports whether the runtime accepted the event —
// false means the degradation ladder (or shutdown) rejected it at the
// door.
func (s *server) submit(e *event.Event, hasTime bool) bool {
	s.stamp(e, hasTime)
	return s.rt.Offer(e)
}

// ingestBatchSize bounds how many decoded events accumulate before one
// OfferBatch call: one runtime-lock acquisition and one ladder check
// cover the whole group instead of every line paying both. Only paths
// that already hold a complete input (an HTTP request body, a
// full-throttle replay) batch; streaming TCP stays per-event because a
// connection may idle indefinitely mid-batch.
const ingestBatchSize = 256

// replay feeds a generated stream at the target rate (events/second),
// blocking on backpressure when the shards cannot keep up.
func (s *server) replay(ctx context.Context, work event.Stream, rate float64) int {
	start := time.Now()
	floor := s.replayFloor.Swap(0) // resume floor applies to one pass only
	n := 0
	// Full-throttle replay (rate <= 0) feeds the runtime in batches so
	// the per-offer lock and ladder work amortize across the group.
	batch := make([]*event.Event, 0, ingestBatchSize)
	flush := func() {
		if len(batch) > 0 {
			s.rt.OfferBatch(batch)
			batch = batch[:0]
		}
	}
	for _, e := range work {
		if ctx.Err() != nil {
			flush()
			return n
		}
		if e.Seq < floor {
			// Already recovered from the checkpoint store; re-offering it
			// would double-process the prefix the WAL replay just rebuilt.
			continue
		}
		// Replayed events keep their generated virtual timestamps: window
		// semantics stay deterministic regardless of the wall replay rate.
		if rate <= 0 {
			batch = append(batch, e)
			n++
			if len(batch) == ingestBatchSize {
				flush()
			}
			continue
		}
		// Pace by offered count, not stream index, so a resumed pass
		// does not burst through the skipped prefix's time budget.
		due := start.Add(time.Duration(float64(n) / rate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return n
			}
		}
		s.rt.Offer(e)
		n++
	}
	flush()
	return n
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := s.rt.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			runtime.Snapshot
			UptimeSeconds float64 `json:"uptime_seconds"`
			BadLines      uint64  `json:"bad_lines"`
			StalledConns  uint64  `json:"stalled_conns"`
		}{snap, time.Since(s.started).Seconds(), s.badLine.Load(), s.stalled.Load()})
	})
	mux.HandleFunc("GET /deadletters", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.rt.DeadLetters())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writePrometheus(w, s.rt.Snapshot())
	})
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		if s.closing.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		// Load rejection (ladder level 3) maps to 429: the client should
		// back off and retry, which is exactly what Retry-After says.
		if s.rt.DegradationLevel() >= runtime.LevelReject {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: load rejection active", http.StatusTooManyRequests)
			return
		}
		accepted, rejected, overloaded := s.ingest(r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d,"rejected":%d,"overloaded":%d}`+"\n", accepted, rejected, overloaded)
	})
	return mux
}

// handleHealthz is the health/readiness probe: 200 while the server can
// accept work, 503 while draining, while the degradation ladder is at
// load rejection, or when every shard has failed. The body always
// carries the detail a human (or a smarter prober) wants.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.rt.Snapshot()
	status := "ok"
	code := http.StatusOK
	switch {
	case s.closing.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case !s.ready.Load() || snap.Recovering:
		status, code = "recovering", http.StatusServiceUnavailable
	case snap.FailedShards >= len(snap.Shards):
		status, code = "failed", http.StatusServiceUnavailable
	case snap.DegradationLevel >= runtime.LevelReject:
		status, code = "overloaded", http.StatusServiceUnavailable
	case snap.DegradationLevel > runtime.LevelNormal || snap.FailedShards > 0:
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"status":%q,"degradation_level":%d,"failed_shards":%d,"restarts":%d,"quarantined":%d}`+"\n",
		status, snap.DegradationLevel, snap.FailedShards, snap.Restarts, snap.Quarantined)
}

// ingest decodes NDJSON from r, submitting valid events. Undecodable
// lines are quarantined to the dead-letter queue with their line number
// and a truncated payload; events the ladder rejects at the door are
// counted as overloaded.
func (s *server) ingest(r io.Reader) (accepted, rejected, overloaded int) {
	dec := runtime.NewLineDecoder(r, 1<<20)
	batch := make([]*event.Event, 0, ingestBatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		n := s.rt.OfferBatch(batch)
		accepted += n
		overloaded += len(batch) - n
		batch = batch[:0]
	}
	for {
		e, hasTime, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				rejected++
				s.badLine.Add(1)
				s.rt.Quarantine(lerr.Error(), lerr.Payload)
				continue
			}
			flush()
			return accepted, rejected, overloaded // EOF or read failure
		}
		s.stamp(e, hasTime)
		batch = append(batch, e)
		if len(batch) == ingestBatchSize {
			flush()
		}
	}
}

// deadlineConn re-arms a read deadline before every read, so the
// connection dies tcpIdle after the producer stops sending rather than
// holding a goroutine forever.
type deadlineConn struct {
	net.Conn
	idle time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (s *server) trackConn(c net.Conn) {
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
}

func (s *server) untrackConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// closeConns force-closes every live TCP ingest connection; called at
// drain time so stalled producers cannot delay shutdown.
func (s *server) closeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

func (s *server) serveTCP(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.closing.Load() {
				return
			}
			log.Printf("cepserved: tcp accept: %v", err)
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn ingests one TCP NDJSON connection under the idle deadline.
// When the ladder rejects events it best-effort NACKs once per rejection
// burst so a well-behaved producer can back off; the write carries its
// own short deadline so a consumer that has also stalled its read side
// cannot block us.
func (s *server) serveConn(conn net.Conn) {
	s.trackConn(conn)
	defer func() {
		s.untrackConn(conn)
		conn.Close()
	}()
	dec := runtime.NewLineDecoder(deadlineConn{Conn: conn, idle: s.tcpIdle}, 1<<20)
	nacked := false
	for {
		e, hasTime, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				s.badLine.Add(1)
				s.rt.Quarantine(lerr.Error(), lerr.Payload)
				continue
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.stalled.Add(1)
				log.Printf("cepserved: tcp %s stalled for %s; closing", conn.RemoteAddr(), s.tcpIdle)
			}
			return
		}
		if s.submit(e, hasTime) {
			nacked = false
			continue
		}
		if !nacked {
			nacked = true
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			fmt.Fprintf(conn, `{"nack":"overloaded","degradation_level":%d}`+"\n", s.rt.DegradationLevel())
		}
	}
}

// writePrometheus renders the snapshot in Prometheus text exposition
// format, with per-shard labelled series plus aggregate quantiles.
func writePrometheus(w io.Writer, snap runtime.Snapshot) {
	p := metrics.NewPromWriter(w)
	counter := func(name, help string, val func(runtime.ShardSnapshot) uint64) {
		p.Counter("cepshed_"+name, help)
		for _, ss := range snap.Shards {
			p.SampleUint("cepshed_"+name, val(ss), "shard", fmt.Sprint(ss.Shard))
		}
	}
	gauge := func(name, help string, val func(runtime.ShardSnapshot) float64) {
		p.Gauge("cepshed_"+name, help)
		for _, ss := range snap.Shards {
			p.Sample("cepshed_"+name, val(ss), "shard", fmt.Sprint(ss.Shard))
		}
	}
	counter("events_in_total", "Events offered to the shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsIn })
	counter("events_shed_total", "Events discarded by input-based shedding (rho_I).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsShed })
	counter("events_processed_total", "Events processed by the engine.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsProcessed })
	counter("overflow_dropped_total", "Events dropped on full queue by TryOffer.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Overflow })
	counter("matches_total", "Complete matches detected.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Matches })
	counter("partial_matches_created_total", "Partial matches created.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.CreatedPMs })
	counter("partial_matches_dropped_total", "Partial matches removed by state-based shedding (rho_S).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.DroppedPMs })
	counter("shard_restarts_total", "Supervisor restarts after a worker panic.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Restarts })
	counter("shard_quarantined_total", "Events quarantined to the dead-letter queue by this shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Quarantined })
	counter("snapshots_total", "Checkpoint snapshots taken by the shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Snapshots })
	counter("wal_replayed_total", "Events replayed from the WAL during recovery.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.WALReplayed })
	counter("recovery_cold_starts_total", "Recoveries that fell back to an empty engine.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.ColdStarts })
	counter("wal_errors_total", "WAL append/flush failures; the first disables the shard's durability.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.WALErrors })
	gauge("snapshot_bytes", "Size of the shard's last checkpoint snapshot.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.SnapshotBytes) })
	gauge("queue_depth", "Events waiting in the shard queue.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.QueueDepth) })
	gauge("live_partial_matches", "Live partial matches in the shard engine.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.LivePMs) })
	gauge("smoothed_latency_seconds", "EWMA-smoothed wall-clock latency driving the shedder.",
		func(ss runtime.ShardSnapshot) float64 { return ss.SmoothedLatency.Seconds() })
	gauge("shard_failed", "1 when the circuit breaker marked the shard permanently failed.",
		func(ss runtime.ShardSnapshot) float64 {
			if ss.Failed {
				return 1
			}
			return 0
		})

	p.Gauge("cepshed_degradation_level", "Graceful-degradation ladder level (0 normal .. 3 load rejection).")
	p.Sample("cepshed_degradation_level", float64(snap.DegradationLevel))
	p.Counter("cepshed_admission_rejected_total", "Offers rejected at the door by the degradation ladder.")
	p.SampleUint("cepshed_admission_rejected_total", snap.AdmissionRejected)
	p.Counter("cepshed_quarantined_total", "Dead letters recorded (shard panics plus rejected inputs).")
	p.SampleUint("cepshed_quarantined_total", snap.Quarantined)
	p.Gauge("cepshed_failed_shards", "Shards marked permanently failed by the circuit breaker.")
	p.Sample("cepshed_failed_shards", float64(snap.FailedShards))

	p.Gauge("cepshed_recovering", "1 while any shard is restoring a snapshot or replaying its WAL.")
	if snap.Recovering {
		p.Sample("cepshed_recovering", 1)
	} else {
		p.Sample("cepshed_recovering", 0)
	}
	p.Gauge("cepshed_snapshot_age_seconds", "Age of the stalest shard checkpoint (0 until every durable shard has snapshotted).")
	age := 0.0
	if snap.OldestSnapshotUnixNs > 0 {
		age = time.Since(time.Unix(0, snap.OldestSnapshotUnixNs)).Seconds()
	}
	p.Sample("cepshed_snapshot_age_seconds", age)

	p.Gauge("cepshed_input_shed_ratio", "Realized rho_I across all shards.")
	p.Sample("cepshed_input_shed_ratio", snap.InputShedRatio)
	p.Gauge("cepshed_pm_shed_ratio", "Realized rho_S across all shards.")
	p.Sample("cepshed_pm_shed_ratio", snap.PMShedRatio)
	p.Summary("cepshed_latency_seconds", "Wall-clock event latency quantiles across all shards.")
	p.Sample("cepshed_latency_seconds", snap.P50.Seconds(), "quantile", "0.5")
	p.Sample("cepshed_latency_seconds", snap.P95.Seconds(), "quantile", "0.95")
	p.Sample("cepshed_latency_seconds", snap.P99.Seconds(), "quantile", "0.99")
	p.SampleUint("cepshed_latency_seconds_count", snap.EventsIn)
}

// strategyFactory builds the per-shard strategy constructor. Every shard
// gets its own instance (strategies are stateful); model-based
// strategies train per shard so online adaptation never shares state.
func strategyFactory(name string, m *nfa.Machine, train event.Stream, bound event.Time, seed int64) (func(int) shed.Strategy, error) {
	needTrain := func() error {
		if len(train) == 0 {
			return fmt.Errorf("strategy %s needs training data: run with -dataset", name)
		}
		return nil
	}
	switch name {
	case "None":
		return nil, nil
	case "RI":
		return func(i int) shed.Strategy { return baseline.NewRandomInput(bound, seed+int64(i)) }, nil
	case "RS":
		return func(i int) shed.Strategy { return baseline.NewRandomState(bound, seed+int64(i)) }, nil
	case "SI":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewSelectivityInput(baseline.EstimateSelectivity(m, train), bound, seed+int64(i))
		}, nil
	case "SS":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewSelectivityState(baseline.EstimateSelectivity(m, train), bound, seed+int64(i))
		}, nil
	case "PI":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewPositionInput(baseline.EstimatePositionUtility(m, train), bound, seed+int64(i))
		}, nil
	case "Hybrid", "HyI", "HyS":
		if err := needTrain(); err != nil {
			return nil, err
		}
		mode := core.ModeHybrid
		if name == "HyI" {
			mode = core.ModeInputOnly
		} else if name == "HyS" {
			mode = core.ModeStateOnly
		}
		return func(i int) shed.Strategy {
			model := core.MustTrain(m, train, core.TrainConfig{Slices: 4, Seed: 1})
			return core.NewHybrid(model, core.Config{Bound: bound, Mode: mode, Adapt: true})
		}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// streams returns training and workload streams plus the default query
// for a dataset (the same shapes ceprun uses).
func streams(dataset string, events int, seed int64) (train, work event.Stream, defQuery string) {
	switch dataset {
	case "ds1":
		train = gen.DS1(gen.DS1Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS1(gen.DS1Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q1("8ms").Raw
	case "ds2":
		train = gen.DS2(gen.DS2Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS2(gen.DS2Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q3("8ms").Raw
	case "citibike":
		train = citibike.Generate(citibike.Config{Trips: events / 2, Seed: seed + 1000})
		work = citibike.Generate(citibike.Config{Trips: events, Seed: seed})
		defQuery = query.HotPaths("5 min", 2, 5).Raw
	case "gcluster":
		cfg := gcluster.Config{Tasks: events / 4, MeanGap: 120 * event.Millisecond, StepGap: 400 * event.Millisecond}
		cfg.Seed = seed + 1000
		train = gcluster.Generate(cfg)
		cfg.Seed = seed
		work = gcluster.Generate(cfg)
		defQuery = query.ClusterTasks("1 min").Raw
	default:
		log.Fatalf("cepserved: unknown dataset %q", dataset)
	}
	return train, work, defQuery
}
