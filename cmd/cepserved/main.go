// Command cepserved runs the sharded wall-clock CEP runtime as a
// multi-query, multi-tenant server: a query registry holds N compiled
// queries (each with its own shards, degradation ladder, and durable
// state), one decoded NDJSON stream fans out to every subscribed query,
// and a cross-query arbiter keeps one tenant's overload from degrading
// its neighbors. Events arrive over HTTP and/or raw TCP; the built-in
// dataset generators can replay a stream at a configurable rate for
// load testing.
//
// Endpoints (on -listen):
//
//	POST   /ingest                           NDJSON event lines (docs/RUNTIME.md)
//	GET    /stats                            JSON registry snapshot (per query + totals)
//	GET    /metrics                          Prometheus text exposition (tenant/query labels)
//	GET    /healthz                          health/readiness probe
//	GET    /deadletters                      recent quarantined inputs (docs/ROBUSTNESS.md)
//	GET    /queries                          registered queries with live status
//	POST   /queries                          register a query (JSON QuerySpec; ?wait=1 blocks
//	                                         until it is recovered and serving)
//	DELETE /queries/{tenant}/{name}          unregister (+ ?purge=1 deletes its state dir)
//	POST   /queries/{tenant}/{name}/pause    stop routing to a query, keep it registered
//	POST   /queries/{tenant}/{name}/resume   undo pause
//	GET    /tenants                          registered tenants
//	PUT    /tenants                          register/update a tenant (JSON Tenant)
//
// With -cluster topology.json -node <name>, additional /cluster routes
// serve the multi-node layer (docs/CLUSTER.md): GET /cluster (node
// status), /cluster/health (heartbeat), /cluster/peerview (death-
// confirmation votes), /cluster/placement, /cluster/stats (cluster-wide
// rollup), /cluster/audit (conservation auditor), and POST
// /cluster/forward, /cluster/handoff, /cluster/move (planned shard
// migration), /cluster/reload (re-read the topology file; SIGHUP does
// the same). Mutating admin and cluster routes accept an optional
// shared bearer token (-admin-token) and are body- and time-bounded.
//
// Queries are added and removed at runtime — no restart: POST /queries
// compiles and validates the query text (and its shedding strategy)
// before anything is activated, so a bad spec is a clean 400. See
// docs/MULTIQUERY.md.
//
// Examples:
//
//	cepserved -dataset ds1 -events 200000 -rate 50000 -shards 4 \
//	  -strategy Hybrid -bound 2ms
//
//	cepserved -tcp :9999 -shards 8 -strategy RI -bound 5ms \
//	  -query 'PATTERN SEQ(A a, B b, C c) WHERE a.ID=b.ID AND a.ID=c.ID WITHIN 8ms'
//
// On SIGINT/SIGTERM the server stops ingesting, closes live TCP ingest
// connections, drains every query's shard queues (emitting the final
// matches those events complete), and prints the final snapshot.
//
// With -state-dir every query checkpoints into its own fingerprinted
// directory and the registry records its membership in a manifest, so a
// crash or restart re-registers every query — including ones added
// mid-stream over the admin API — and resumes each from its last good
// snapshot plus WAL tail. During boot recovery /healthz reports
// "recovering" and /ingest answers 503. See docs/DURABILITY.md.
//
// The server is hardened against misbehaving clients: HTTP requests are
// bounded by header/read/idle timeouts, TCP ingest connections carry a
// per-read idle deadline, undecodable NDJSON lines are quarantined to
// the dead-letter queue with their line number and payload, and when
// EVERY serving query's degradation ladder reaches load rejection the
// HTTP path answers 429 and the TCP path emits NACK lines
// (docs/ROBUSTNESS.md).
package main

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	goruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cepshed/internal/baseline"
	"cepshed/internal/checkpoint"
	"cepshed/internal/citibike"
	"cepshed/internal/cluster"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/registry"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

// defaultTenant/defaultQueryName identify the query built from the
// -query/-dataset flags; admin-added queries pick their own names.
const (
	defaultTenant    = "default"
	defaultQueryName = "main"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address (/ingest, /stats, /metrics, /healthz, /deadletters, /queries, /tenants)")
		tcpAddr   = flag.String("tcp", "", "optional raw TCP NDJSON listen address")
		tcpIdle   = flag.Duration("tcp-idle", time.Minute, "TCP ingest read deadline; a connection idle longer is closed")
		httpRead  = flag.Duration("http-read-timeout", 5*time.Minute, "HTTP read timeout (bounds one /ingest request body)")
		shards    = flag.Int("shards", 4, "engine shards (state partitions) per query; 0 = auto (GOMAXPROCS)")
		workers   = flag.Int("workers", 0, "worker goroutines servicing each query's shards; 0 = one per shard")
		queueLen  = flag.Int("queue", 1024, "per-shard bounded queue capacity")
		dataset   = flag.String("dataset", "", "replay dataset: ds1, ds2, citibike, gcluster (empty: ingest only)")
		events    = flag.Int("events", 100000, "replay stream length (trips/tasks for the case studies)")
		rate      = flag.Float64("rate", 20000, "replay rate in events/sec (0: as fast as backpressure allows)")
		loop      = flag.Bool("loop", false, "repeat the replay until terminated")
		querySrc  = flag.String("query", "", "initial query text (default: the paper query for the dataset; empty with no dataset: start with no queries and register over POST /queries)")
		strategy  = flag.String("strategy", "Hybrid", "default shedding strategy: None, RI, SI, PI, RS, SS, Hybrid, HyI, HyS (per-query override via QuerySpec.Strategy)")
		bound     = flag.Duration("bound", 2*time.Millisecond, "default wall-clock latency bound θ (per-tenant/per-query overrides via the admin API)")
		seed      = flag.Int64("seed", 1, "generator seed")
		emit      = flag.Bool("print-matches", false, "write detected matches as NDJSON to stdout")
		noRecover = flag.Bool("no-recover", false, "disable the shard supervisor (panics crash the process; for debugging)")
		stateDir  = flag.String("state-dir", "", "directory for per-query checkpoints, WALs, and the registry manifest (empty: no durability; see docs/DURABILITY.md)")
		ckptEvery = flag.Int("checkpoint-every", 32768, "events between per-shard snapshots (bounds replay time after a crash, not data loss)")
		walFlush  = flag.Int("wal-flush", 1024, "max WAL records per flush group; 1 flushes every record (group commit: a crash loses at most one unflushed group)")
		walFlushB = flag.Int("wal-flush-bytes", 48<<10, "max buffered WAL bytes per flush group")
		walFlushT = flag.Duration("wal-flush-interval", 2*time.Millisecond, "max age of a buffered WAL record before the group flushes")
		walFsync  = flag.Bool("wal-fsync", false, "fsync WAL flushes and snapshots (survives machine crashes, not just process crashes)")
		arbEvery  = flag.Duration("arbiter-interval", 250*time.Millisecond, "cross-query arbiter control period")
		arbCap    = flag.Float64("arbiter-capacity", 0, "arbiter utilization target in CPU-seconds/sec (0: 0.8 x GOMAXPROCS)")
		noArbiter = flag.Bool("no-arbiter", false, "disable the cross-query shedding arbiter (per-query ladders still run)")

		clusterCfg = flag.String("cluster", "", "cluster topology file (JSON; see docs/CLUSTER.md); requires -node")
		nodeName   = flag.String("node", "", "this node's name in the -cluster topology")
		hbEvery    = flag.Duration("heartbeat", 100*time.Millisecond, "cluster heartbeat interval")
		hbMisses   = flag.Int("heartbeat-misses", 3, "consecutive missed heartbeats before a peer is declared dead")
		adminToken = flag.String("admin-token", "", "bearer token required on mutating admin and cluster endpoints (empty: no auth)")
		adminTO    = flag.Duration("admin-timeout", 10*time.Second, "per-request timeout on admin endpoints")
	)
	flag.Parse()

	if *shards == 0 {
		// Auto-sharding keys partitioning to schedulable parallelism: one
		// shard per schedulable CPU gives the worker pool one home shard
		// each, and work stealing absorbs key skew between them.
		*shards = goruntime.GOMAXPROCS(0)
		log.Printf("cepserved: -shards 0: auto-sharding to GOMAXPROCS=%d", *shards)
	}

	// Durability knobs without -state-dir used to silently do nothing —
	// an operator who set -wal-fsync believed they had durability and
	// did not. Fail fast instead.
	durabilityFlags := map[string]bool{
		"checkpoint-every": true, "wal-flush": true, "wal-flush-bytes": true,
		"wal-flush-interval": true, "wal-fsync": true,
	}
	if *stateDir == "" {
		var orphaned []string
		flag.Visit(func(f *flag.Flag) {
			if durabilityFlags[f.Name] {
				orphaned = append(orphaned, "-"+f.Name)
			}
		})
		if len(orphaned) > 0 {
			log.Fatalf("cepserved: %s without -state-dir: durability flags have no effect unless a state directory is set",
				strings.Join(orphaned, ", "))
		}
	}

	var topo cluster.Topology
	if *clusterCfg != "" {
		if *nodeName == "" {
			log.Fatal("cepserved: -cluster requires -node")
		}
		if *dataset != "" {
			// Replay events carry generator-assigned sequence numbers that
			// would interleave with the node's own counter; clustered load
			// comes in over /ingest or TCP.
			log.Fatal("cepserved: -dataset replay is single-node load generation; it does not compose with -cluster")
		}
		var err error
		topo, err = cluster.LoadTopology(*clusterCfg)
		if err != nil {
			log.Fatalf("cepserved: %v", err)
		}
		if _, ok := topo.Find(*nodeName); !ok {
			log.Fatalf("cepserved: -node %q not in topology %s", *nodeName, *clusterCfg)
		}
		if *stateDir == "" {
			log.Print("cepserved: cluster mode without -state-dir: failover will move slot ownership but cannot adopt a dead node's state")
		}
	}

	var train, work event.Stream
	src := *querySrc
	if *dataset != "" {
		var defQuery string
		train, work, defQuery = streams(*dataset, *events, *seed)
		if src == "" {
			src = defQuery
		}
	}
	if src == "" && *stateDir == "" {
		log.Print("cepserved: no -query, -dataset, or -state-dir: starting with no queries; register one via POST /queries")
	}

	cfg := registry.Config{
		Shards:       *shards,
		Workers:      *workers,
		QueueLen:     *queueLen,
		DefaultTheta: *bound,
		StateDir:     *stateDir,
		Arbiter: registry.ArbiterConfig{
			Interval: *arbEvery,
			Capacity: *arbCap,
			Disabled: *noArbiter,
		},
		NewStrategy: func(spec registry.QuerySpec, m *nfa.Machine, b time.Duration) (func(int) shed.Strategy, error) {
			name := spec.Strategy
			if name == "" {
				name = *strategy
			}
			return strategyFactory(name, m, train, event.Time(b.Nanoseconds()), *seed)
		},
		Logf: log.Printf,
	}
	if *noRecover {
		cfg.TuneRuntime = func(_ registry.QuerySpec, rc *runtime.Config) { rc.DisableRecovery = true }
	}
	if *stateDir != "" {
		cfg.Durability = &checkpoint.Config{
			EveryEvents:   *ckptEvery,
			FlushEvery:    *walFlush,
			FlushBytes:    *walFlushB,
			FlushInterval: *walFlushT,
			Fsync:         *walFsync,
		}
	}
	var emitMu sync.Mutex
	if *emit {
		out := bufio.NewWriter(os.Stdout)
		cfg.OnMatch = func(spec registry.QuerySpec, shard int, match engine.Match) {
			emitMu.Lock()
			fmt.Fprintf(out, `{"tenant":%q,"query":%q,"match":`, spec.Tenant, spec.Name)
			out.Write(runtime.EncodeMatch(shard, match))
			out.WriteString("}\n")
			out.Flush()
			emitMu.Unlock()
		}
	}

	// Hybrid strategies train a cost model per shard inside the runtime,
	// which can take several seconds on large training streams — say so,
	// or the silence before the listener comes up looks like a hang.
	if len(train) > 0 {
		log.Printf("cepserved: starting %d shards per query (strategy %s may train on %d events per shard)",
			*shards, *strategy, len(train))
	}
	reg, err := registry.Open(cfg)
	if err != nil {
		log.Fatalf("cepserved: %v", err)
	}
	// Register the flag-defined default query unless the durable manifest
	// already restored it (possibly with different text — the manifest,
	// being what the durable state belongs to, wins).
	if src != "" {
		if in, ok := reg.Get(defaultTenant, defaultQueryName); ok {
			if in.Spec().Query != src {
				log.Printf("cepserved: manifest already defines %s/%s; ignoring -query/-dataset default text",
					defaultTenant, defaultQueryName)
			}
		} else {
			if _, err := reg.Add(registry.QuerySpec{
				Tenant:   defaultTenant,
				Name:     defaultQueryName,
				Query:    src,
				Strategy: *strategy,
			}); err != nil {
				log.Fatalf("cepserved: %v", err)
			}
		}
	}
	srv := &server{reg: reg, started: time.Now(), tcpIdle: *tcpIdle, conns: map[net.Conn]struct{}{},
		adminToken: *adminToken, adminTO: *adminTO}

	if *clusterCfg != "" {
		cl, err := cluster.New(cluster.Config{
			Self:      *nodeName,
			Topology:  topo,
			Registry:  reg,
			StampTime: func(e *event.Event) { srv.stampTime(e, false) },
			StampSeq:  srv.stampSeq,
			BumpSeq:   srv.bumpSeq,
			Detector: cluster.DetectorConfig{
				Interval: *hbEvery,
				Misses:   *hbMisses,
			},
			AuthToken: *adminToken,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatalf("cepserved: %v", err)
		}
		srv.cl = cl
		cfgPath := *clusterCfg
		srv.loadTop = func() (cluster.Topology, error) { return cluster.LoadTopology(cfgPath) }
		// SIGHUP re-reads the topology file and applies membership
		// changes in place (POST /cluster/reload is the same path).
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				top, err := srv.loadTop()
				if err != nil {
					log.Printf("cepserved: SIGHUP topology reload: %v", err)
					continue
				}
				if err := cl.ReloadTopology(top); err != nil {
					log.Printf("cepserved: SIGHUP topology reload: %v", err)
					continue
				}
				log.Printf("cepserved: topology reloaded from %s (%d nodes)", cfgPath, len(top.Nodes))
			}
		}()
		log.Printf("cepserved: cluster node %q in %d-node topology %s", *nodeName, len(topo.Nodes), *clusterCfg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// A slow or malicious HTTP client must not hold a connection open
	// indefinitely: headers get a short deadline, a whole request body a
	// longer one, and keep-alive connections an idle cap. The listener is
	// opened explicitly so ":0" works and the log line carries the real
	// address (the smoke tests depend on both).
	httpSrv := &http.Server{
		Handler:           srv.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *httpRead,
		IdleTimeout:       2 * time.Minute,
	}
	httpLn, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cepserved: http listen: %v", err)
	}
	log.Printf("cepserved: HTTP on %s (queries=%d, shards=%d, default strategy=%s, bound=%s)",
		httpLn.Addr(), len(reg.Snapshot().Queries), *shards, *strategy, bound)
	go func() {
		if err := httpSrv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
			log.Fatalf("cepserved: http: %v", err)
		}
	}()

	// Recovery gate: the HTTP endpoints are already up (so /healthz says
	// "recovering" and /ingest answers 503), but no new input flows until
	// every registered query has restored its snapshots and replayed its
	// WAL tail.
	reg.WaitRecovered()
	if *stateDir != "" {
		info := reg.RecoveryInfo()
		if info.Restored > 0 {
			// Resume numbering and time above everything already durable.
			// Dataset replay restarts from the LOWEST recovered floor so
			// every query's gap is covered; per-query floors drop the prefix
			// an individual query already has.
			srv.seq.Store(info.MaxSeq + 1)
			srv.lastT.Store(info.MaxTime)
			srv.replayFloor.Store(info.MinFloorSeq)
			log.Printf("cepserved: recovered %d queries up to seq=%d (replay floor=%d wal_replayed=%d cold_starts=%d)",
				info.Restored, info.MaxSeq, info.MinFloorSeq, info.WALReplayed, info.ColdStarts)
		}
	}
	srv.ready.Store(true)
	if srv.cl != nil {
		// Start probing peers only after local recovery: a node busy
		// replaying its WAL must not declare the cluster degraded, and
		// imports require recovered runtimes.
		srv.cl.Start()
	}

	var tcpLn net.Listener
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatalf("cepserved: tcp: %v", err)
		}
		log.Printf("cepserved: NDJSON TCP on %s (idle timeout %s)", *tcpAddr, *tcpIdle)
		go srv.serveTCP(ctx, tcpLn)
	}

	var producers sync.WaitGroup
	if len(work) > 0 {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for {
				n := srv.replay(ctx, work, *rate)
				log.Printf("cepserved: replay pass done (%d events offered)", n)
				if !*loop || ctx.Err() != nil {
					return
				}
			}
		}()
	}

	<-ctx.Done()
	log.Print("cepserved: draining shard queues")
	srv.closing.Store(true)
	if tcpLn != nil {
		tcpLn.Close()
	}
	srv.closeConns() // stalled producers must not delay the drain
	// Stop the replay producer before closing so the final snapshot
	// accounts for every event it offered. (Offer itself is safe against
	// a concurrent Close — late TCP/HTTP ingest is simply rejected.)
	producers.Wait()
	if srv.cl != nil {
		srv.cl.Close() // stop heartbeats and drain forward queues first
	}
	reg.Close() // graceful drain: queued events finish, engines flush
	shut, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shut)

	final := reg.Snapshot()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(final)
	log.Printf("cepserved: final: queries=%d events_in=%d matches=%d shed=%d imposed=%d unrouted=%d",
		len(final.Queries), final.EventsIn, final.Matches, final.EventsShed, final.ImposedDrops, final.Unrouted)
}

// server wires the registry into the network frontends.
type server struct {
	reg        *registry.Registry
	cl         *cluster.Node // nil outside cluster mode
	loadTop    func() (cluster.Topology, error)
	adminToken string
	adminTO    time.Duration
	started    time.Time
	tcpIdle    time.Duration
	seq        atomic.Uint64
	lastT      atomic.Int64 // monotone floor for assigned arrival times
	closing    atomic.Bool
	badLine    atomic.Uint64
	stalled    atomic.Uint64 // TCP connections closed by the idle deadline

	// ready flips once boot recovery finishes; until then /ingest answers
	// 503 and /healthz reports "recovering". replayFloor is the first
	// sequence number dataset replay still owes — everything below it was
	// recovered by every query from its checkpoint store.
	ready       atomic.Bool
	replayFloor atomic.Uint64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// stamp finalizes an ingested event's arrival time and sequence number.
func (s *server) stamp(e *event.Event, hasTime bool) {
	s.stampTime(e, hasTime)
	s.stampSeq(e)
}

// stampTime assigns the arrival time (when the line carried none) and
// clamps it to the monotone floor. Separate from stampSeq because in
// cluster mode time is stamped at the INGEST edge while the sequence
// number is stamped at the slot's owner.
func (s *server) stampTime(e *event.Event, hasTime bool) {
	if !hasTime {
		e.Time = event.Time(time.Since(s.started).Nanoseconds())
	}
	// Per-shard time must be non-decreasing; concurrent producers race
	// between stamping and enqueueing, so clamp to a global floor.
	for {
		last := s.lastT.Load()
		if int64(e.Time) >= last {
			if s.lastT.CompareAndSwap(last, int64(e.Time)) {
				break
			}
			continue
		}
		e.Time = event.Time(last)
		break
	}
}

// stampSeq assigns the node-local sequence number.
func (s *server) stampSeq(e *event.Event) {
	e.Seq = s.seq.Add(1) - 1
}

// bumpSeq raises the sequence counter to at least min — after a shard
// import, new stamps must land above the imported snapshot's floor or
// the next recovery's WAL filter would drop them as already-covered.
func (s *server) bumpSeq(min uint64) {
	for {
		cur := s.seq.Load()
		if cur >= min || s.seq.CompareAndSwap(cur, min) {
			return
		}
	}
}

// submit finalizes an ingested event and fans it out with backpressure.
// It reports false only when at least one subscribed query rejected the
// event at the door and none accepted it.
func (s *server) submit(e *event.Event, hasTime bool) bool {
	if s.cl != nil {
		res := s.cl.OfferBatch([]cluster.Input{{E: e, HasTime: hasTime}})
		return res.DoorRejected == 0 || res.Deliveries > 0
	}
	s.stamp(e, hasTime)
	return s.reg.Offer(e)
}

// ingestBatchSize bounds how many decoded events accumulate before one
// OfferBatch call: one route-table load and one batched handoff per
// query cover the whole group instead of every line paying both. Only
// paths that already hold a complete input (an HTTP request body, a
// full-throttle replay) batch; streaming TCP stays per-event because a
// connection may idle indefinitely mid-batch.
const ingestBatchSize = 256

// replay feeds a generated stream at the target rate (events/second),
// blocking on backpressure when the shards cannot keep up.
func (s *server) replay(ctx context.Context, work event.Stream, rate float64) int {
	start := time.Now()
	floor := s.replayFloor.Swap(0) // resume floor applies to one pass only
	n := 0
	// Full-throttle replay (rate <= 0) feeds the registry in batches so
	// the fan-out and per-query handoff amortize across the group.
	batch := make([]*event.Event, 0, ingestBatchSize)
	flush := func() {
		if len(batch) > 0 {
			s.reg.OfferBatch(batch)
			batch = batch[:0]
		}
	}
	for _, e := range work {
		if ctx.Err() != nil {
			flush()
			return n
		}
		if e.Seq < floor {
			// Below every query's recovered floor: re-offering it would be
			// pure fan-out overhead (per-query floors would drop it anyway).
			continue
		}
		// Replayed events keep their generated virtual timestamps: window
		// semantics stay deterministic regardless of the wall replay rate.
		if rate <= 0 {
			batch = append(batch, e)
			n++
			if len(batch) == ingestBatchSize {
				flush()
			}
			continue
		}
		// Pace by offered count, not stream index, so a resumed pass
		// does not burst through the skipped prefix's time budget.
		due := start.Add(time.Duration(float64(n) / rate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return n
			}
		}
		s.reg.Offer(e)
		n++
	}
	flush()
	return n
}

// statsPayload is the GET /stats body; the cluster's rolled-up stats
// endpoint reuses it per node.
func (s *server) statsPayload() any {
	return struct {
		registry.Snapshot
		UptimeSeconds float64 `json:"uptime_seconds"`
		BadLines      uint64  `json:"bad_lines"`
		StalledConns  uint64  `json:"stalled_conns"`
	}{s.reg.Snapshot(), time.Since(s.started).Seconds(), s.badLine.Load(), s.stalled.Load()}
}

// auth gates a handler behind the shared bearer token when -admin-token
// is set (constant-time compare); without a token it passes through.
func (s *server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adminToken != "" {
			want := "Bearer " + s.adminToken
			if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte(want)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="cepserved"`)
				http.Error(w, "unauthorized", http.StatusUnauthorized)
				return
			}
		}
		h(w, r)
	}
}

// maxBody caps a request body; an overflowing read surfaces as
// *http.MaxBytesError in the handler's decoder (see bodyError).
func maxBody(n int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, n)
		h(w, r)
	}
}

// bodyError maps a body decode failure to 413 (body over the maxBody
// cap) or 400 (malformed content).
func bodyError(w http.ResponseWriter, err error, what string) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, what+": "+err.Error(), http.StatusBadRequest)
}

// withTimeout bounds one request end to end — a stalled admin client
// gets 503 instead of holding a handler goroutine. A zero duration
// means no bound (in-process tests build servers without the flag).
func withTimeout(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.TimeoutHandler(h, d, "request timed out")
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.statsPayload())
	})
	mux.HandleFunc("GET /deadletters", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.reg.DeadLetters())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		node := ""
		if s.cl != nil {
			node = s.cl.Self()
		}
		writePrometheus(w, s.reg.Snapshot(), runtime.InternTelemetry(), node)
		if s.cl != nil {
			writeClusterProm(w, node, s.cl.Status())
		}
	})
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		if s.closing.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		// 429 only when EVERY serving query is at load rejection: one
		// overloaded tenant must not make the whole server turn away
		// events its neighbors would accept.
		if lvl := s.reg.MinDegradation(); lvl >= runtime.LevelReject {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: load rejection active", http.StatusTooManyRequests)
			return
		}
		accepted, rejected, overloaded, unrouted := s.ingest(r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d,"rejected":%d,"overloaded":%d,"unrouted":%d}`+"\n",
			accepted, rejected, overloaded, unrouted)
	})

	// Admin API: query and tenant lifecycle, no restart required.
	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.reg.Snapshot().Queries)
	})
	mux.Handle("POST /queries", s.auth(maxBody(1<<20, func(w http.ResponseWriter, r *http.Request) {
		var spec registry.QuerySpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			bodyError(w, err, "bad query spec")
			return
		}
		in, err := s.reg.Add(spec)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "already registered") {
				code = http.StatusConflict
			}
			http.Error(w, err.Error(), code)
			return
		}
		if r.URL.Query().Get("wait") == "1" {
			in.WaitReady()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":%q,"fingerprint":"%016x"}`+"\n", spec.ID(), in.Fingerprint())
	})))
	mux.Handle("DELETE /queries/{tenant}/{name}", withTimeout(s.adminTO, s.auth(func(w http.ResponseWriter, r *http.Request) {
		purge := r.URL.Query().Get("purge") == "1"
		if err := s.reg.Remove(r.PathValue("tenant"), r.PathValue("name"), purge); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})))
	pauseHandler := func(paused bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			tenant, name := r.PathValue("tenant"), r.PathValue("name")
			var err error
			if paused {
				err = s.reg.Pause(tenant, name)
			} else {
				err = s.reg.Resume(tenant, name)
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}
	mux.Handle("POST /queries/{tenant}/{name}/pause", withTimeout(s.adminTO, s.auth(pauseHandler(true))))
	mux.Handle("POST /queries/{tenant}/{name}/resume", withTimeout(s.adminTO, s.auth(pauseHandler(false))))
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.reg.Tenants())
	})
	mux.Handle("PUT /tenants", withTimeout(s.adminTO, s.auth(maxBody(1<<20, func(w http.ResponseWriter, r *http.Request) {
		var t registry.Tenant
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			bodyError(w, err, "bad tenant")
			return
		}
		if err := s.reg.SetTenant(t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))))

	// Profiling (net/http/pprof) shares the admin token — profiles leak
	// query text and memory contents, so they are as sensitive as the
	// mutating admin API. Deliberately NOT wrapped in withTimeout: a CPU
	// profile or execution trace holds the request open for its whole
	// sampling window (?seconds=N), which the admin timeout would
	// truncate mid-collection. `make profile` wraps the common case.
	mux.Handle("GET /debug/pprof/", s.auth(pprof.Index))
	mux.Handle("GET /debug/pprof/cmdline", s.auth(pprof.Cmdline))
	mux.Handle("GET /debug/pprof/profile", s.auth(pprof.Profile))
	mux.Handle("GET /debug/pprof/symbol", s.auth(pprof.Symbol))
	mux.Handle("POST /debug/pprof/symbol", s.auth(pprof.Symbol))
	mux.Handle("GET /debug/pprof/trace", s.auth(pprof.Trace))

	// Cluster control and data plane (docs/CLUSTER.md). Mutating routes
	// share the admin token; the handoff cap tracks the checkpoint
	// decoder's own snapshot-body bound.
	if s.cl != nil {
		mux.HandleFunc("GET /cluster", s.cl.HandleStatus)
		mux.HandleFunc("GET /cluster/health", s.cl.HandleHealth)
		mux.HandleFunc("GET /cluster/stats", s.cl.HandleClusterStats(s.statsPayload))
		mux.HandleFunc("GET /cluster/placement", s.cl.HandlePlacement)
		mux.Handle("POST /cluster/placement", withTimeout(s.adminTO, s.auth(maxBody(4<<20, s.cl.HandlePlacement))))
		mux.Handle("POST /cluster/forward", s.auth(maxBody(64<<20, s.cl.HandleForward)))
		mux.Handle("POST /cluster/handoff", withTimeout(2*time.Minute, s.auth(maxBody(1<<28+1<<20, s.cl.HandleHandoff))))
		mux.Handle("POST /cluster/move", withTimeout(2*time.Minute, s.auth(s.cl.HandleMove)))
		mux.HandleFunc("GET /cluster/peerview", s.cl.HandlePeerView)
		mux.HandleFunc("GET /cluster/audit", s.cl.HandleAudit)
		if s.loadTop != nil {
			mux.Handle("POST /cluster/reload", withTimeout(s.adminTO, s.auth(s.cl.HandleReload(s.loadTop))))
		}
	}
	return mux
}

// writeClusterProm appends the cluster-layer series to /metrics; the
// node label is already applied via the writer's common labels in
// writePrometheus, so it is set again here on a fresh writer.
func writeClusterProm(w io.Writer, node string, st cluster.Status) {
	p := metrics.NewPromWriter(w)
	p.Common("node", node)
	p.Gauge("cepshed_cluster_degraded", "1 while any peer is considered down or quarantined.")
	if st.Degraded {
		p.Sample("cepshed_cluster_degraded", 1)
	} else {
		p.Sample("cepshed_cluster_degraded", 0)
	}
	p.Gauge("cepshed_cluster_peer_up", "1 while the peer answers heartbeats.")
	for _, ps := range st.Peers {
		v := 0.0
		if ps.Up {
			v = 1
		}
		p.Sample("cepshed_cluster_peer_up", v, "peer", ps.Name)
	}
	p.Counter("cepshed_cluster_forwarded_out_total", "Event pairs forwarded to a peer owner.")
	p.SampleUint("cepshed_cluster_forwarded_out_total", st.ForwardedOut)
	p.Counter("cepshed_cluster_forwarded_in_total", "Event pairs received from peer routers.")
	p.SampleUint("cepshed_cluster_forwarded_in_total", st.ForwardedIn)
	p.Counter("cepshed_cluster_forward_dropped_total", "Event pairs dropped at the router: queue full, owner down, retries exhausted.")
	p.SampleUint("cepshed_cluster_forward_dropped_total", st.ForwardDrop)
	p.Counter("cepshed_cluster_router_dropped_total", "Event pairs dropped on one peer link (queue overflow or failed delivery).")
	for _, pf := range st.PeerForwards {
		p.SampleUint("cepshed_cluster_router_dropped_total", pf.Dropped, "peer", pf.Name)
	}
	p.Counter("cepshed_cluster_forward_retries_total", "Forward batch re-sends after ambiguous network failures.")
	p.SampleUint("cepshed_cluster_forward_retries_total", st.Retries)
	p.Counter("cepshed_cluster_forward_redirects_total", "Forward batches re-routed after an ownership NACK.")
	p.SampleUint("cepshed_cluster_forward_redirects_total", st.Redirects)
	p.Counter("cepshed_cluster_dup_batches_total", "Retried forward batches refused by the receiver's dedup window.")
	p.SampleUint("cepshed_cluster_dup_batches_total", st.DupBatches)
	p.Counter("cepshed_cluster_router_shed_total", "Event pairs refused by degraded-mode router admission.")
	p.SampleUint("cepshed_cluster_router_shed_total", st.RouterShed)
	p.Counter("cepshed_cluster_handoffs_out_total", "Planned handoffs shipped successfully.")
	p.SampleUint("cepshed_cluster_handoffs_out_total", st.HandoffsOut)
	p.Counter("cepshed_cluster_handoffs_in_total", "Shard handoffs imported.")
	p.SampleUint("cepshed_cluster_handoffs_in_total", st.HandoffsIn)
	p.Counter("cepshed_cluster_takeovers_total", "Slots adopted from dead peers by failover.")
	p.SampleUint("cepshed_cluster_takeovers_total", st.Takeovers)
	p.Gauge("cepshed_cluster_handoff_in_flight", "Events queued for forwarding plus handoff frames awaiting an ack.")
	p.Sample("cepshed_cluster_handoff_in_flight", float64(st.InFlight))
}

// handleHealthz is the health/readiness probe: 200 while the server can
// accept work, 503 while draining, while EVERY serving query is at load
// rejection, or when every shard of every query has failed. The body
// always carries the detail a human (or a smarter prober) wants.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	totalShards := 0
	for _, q := range snap.Queries {
		totalShards += len(q.Runtime.Shards)
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case s.closing.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case !s.ready.Load() || snap.Recovering:
		status, code = "recovering", http.StatusServiceUnavailable
	case totalShards > 0 && snap.FailedShards >= totalShards:
		status, code = "failed", http.StatusServiceUnavailable
	case len(snap.Queries) > 0 && snap.MinDegradation >= runtime.LevelReject:
		status, code = "overloaded", http.StatusServiceUnavailable
	case snap.MaxDegradation > runtime.LevelNormal || snap.FailedShards > 0:
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"status":%q,"queries":%d,"degradation_level":%d,"failed_shards":%d,"restarts":%d,"quarantined":%d}`+"\n",
		status, len(snap.Queries), snap.MaxDegradation, snap.FailedShards, snap.Restarts, snap.Quarantined)
}

// ingest decodes NDJSON from r, fanning valid events out to every
// subscribed query. Undecodable lines are quarantined to the registry's
// edge dead-letter queue with their line number and a truncated
// payload; (event, query) pairs a ladder rejects at the door count as
// overloaded; events no query subscribes to count as unrouted.
func (s *server) ingest(r io.Reader) (accepted, rejected, overloaded, unrouted int) {
	dec := runtime.NewLineDecoder(r, 1<<20)
	batch := make([]*event.Event, 0, ingestBatchSize)
	cbatch := make([]cluster.Input, 0, ingestBatchSize) // cluster mode: events routed unstamped
	flush := func() {
		if s.cl != nil {
			if len(cbatch) == 0 {
				return
			}
			res := s.cl.OfferBatch(cbatch)
			accepted += res.Deliveries + res.ForwardedPairs
			overloaded += res.DoorRejected + res.DroppedPairs + res.ShedPairs
			unrouted += res.Unrouted
			cbatch = cbatch[:0]
			return
		}
		if len(batch) == 0 {
			return
		}
		res := s.reg.OfferBatch(batch)
		accepted += res.Deliveries
		overloaded += res.DoorRejected
		unrouted += res.Unrouted
		batch = batch[:0]
	}
	for {
		e, hasTime, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				rejected++
				s.badLine.Add(1)
				s.reg.Quarantine(lerr.Error(), lerr.Payload)
				continue
			}
			flush()
			return accepted, rejected, overloaded, unrouted // EOF or read failure
		}
		if s.cl != nil {
			cbatch = append(cbatch, cluster.Input{E: e, HasTime: hasTime})
			if len(cbatch) == ingestBatchSize {
				flush()
			}
			continue
		}
		s.stamp(e, hasTime)
		batch = append(batch, e)
		if len(batch) == ingestBatchSize {
			flush()
		}
	}
}

// deadlineConn re-arms a read deadline before every read, so the
// connection dies tcpIdle after the producer stops sending rather than
// holding a goroutine forever.
type deadlineConn struct {
	net.Conn
	idle time.Duration
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (s *server) trackConn(c net.Conn) {
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
}

func (s *server) untrackConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// closeConns force-closes every live TCP ingest connection; called at
// drain time so stalled producers cannot delay shutdown.
func (s *server) closeConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

func (s *server) serveTCP(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.closing.Load() {
				return
			}
			log.Printf("cepserved: tcp accept: %v", err)
			return
		}
		go s.serveConn(conn)
	}
}

// serveConn ingests one TCP NDJSON connection under the idle deadline.
// When every subscribed query rejects an event it best-effort NACKs
// once per rejection burst so a well-behaved producer can back off; the
// write carries its own short deadline so a consumer that has also
// stalled its read side cannot block us.
func (s *server) serveConn(conn net.Conn) {
	s.trackConn(conn)
	defer func() {
		s.untrackConn(conn)
		conn.Close()
	}()
	dec := runtime.NewLineDecoder(deadlineConn{Conn: conn, idle: s.tcpIdle}, 1<<20)
	nacked := false
	for {
		e, hasTime, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				s.badLine.Add(1)
				s.reg.Quarantine(lerr.Error(), lerr.Payload)
				continue
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.stalled.Add(1)
				log.Printf("cepserved: tcp %s stalled for %s; closing", conn.RemoteAddr(), s.tcpIdle)
			}
			return
		}
		if s.submit(e, hasTime) {
			nacked = false
			continue
		}
		if !nacked {
			nacked = true
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			fmt.Fprintf(conn, `{"nack":"overloaded","degradation_level":%d}`+"\n", s.reg.MinDegradation())
		}
	}
}

// writePrometheus renders the registry snapshot in Prometheus text
// exposition format: per-shard series labelled {tenant, query, shard},
// per-query and per-tenant series, and the unlabeled server aggregates
// the pre-registry dashboards already scrape.
func writePrometheus(w io.Writer, snap registry.Snapshot, intern runtime.InternStats, node string) {
	p := metrics.NewPromWriter(w)
	if node != "" {
		p.Common("node", node)
	}
	counter := func(name, help string, val func(runtime.ShardSnapshot) uint64) {
		p.Counter("cepshed_"+name, help)
		for _, q := range snap.Queries {
			for _, ss := range q.Runtime.Shards {
				p.SampleUint("cepshed_"+name, val(ss),
					"tenant", q.Spec.Tenant, "query", q.Spec.Name, "shard", fmt.Sprint(ss.Shard))
			}
		}
	}
	gauge := func(name, help string, val func(runtime.ShardSnapshot) float64) {
		p.Gauge("cepshed_"+name, help)
		for _, q := range snap.Queries {
			for _, ss := range q.Runtime.Shards {
				p.Sample("cepshed_"+name, val(ss),
					"tenant", q.Spec.Tenant, "query", q.Spec.Name, "shard", fmt.Sprint(ss.Shard))
			}
		}
	}
	counter("events_in_total", "Events offered to the shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsIn })
	counter("events_shed_total", "Events discarded by input-based shedding (rho_I).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsShed })
	counter("events_processed_total", "Events processed by the engine.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.EventsProcessed })
	counter("overflow_dropped_total", "Events dropped on full queue by TryOffer.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Overflow })
	counter("matches_total", "Complete matches detected.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Matches })
	counter("partial_matches_created_total", "Partial matches created.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.CreatedPMs })
	counter("partial_matches_dropped_total", "Partial matches removed by state-based shedding (rho_S).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.DroppedPMs })
	counter("shard_restarts_total", "Supervisor restarts after a worker panic.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Restarts })
	counter("shard_quarantined_total", "Events quarantined to the dead-letter queue by this shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Quarantined })
	counter("snapshots_total", "Checkpoint snapshots taken by the shard.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.Snapshots })
	counter("wal_replayed_total", "Events replayed from the WAL during recovery.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.WALReplayed })
	counter("recovery_cold_starts_total", "Recoveries that fell back to an empty engine.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.ColdStarts })
	counter("wal_errors_total", "WAL append/flush failures; the first disables the shard's durability.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.WALErrors })
	// Unlabeled aggregate under the same header: the alert an operator
	// actually pages on ("any WAL error anywhere?") without a sum().
	p.SampleUint("cepshed_wal_errors_total", snap.WALErrors)
	gauge("snapshot_bytes", "Size of the shard's last checkpoint snapshot.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.SnapshotBytes) })
	gauge("queue_depth", "Events waiting in the shard queue.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.QueueDepth) })
	gauge("live_partial_matches", "Live partial matches in the shard engine.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.LivePMs) })
	gauge("smoothed_latency_seconds", "EWMA-smoothed wall-clock latency driving the shedder.",
		func(ss runtime.ShardSnapshot) float64 { return ss.SmoothedLatency.Seconds() })
	gauge("shard_failed", "1 when the circuit breaker marked the shard permanently failed.",
		func(ss runtime.ShardSnapshot) float64 {
			if ss.Failed {
				return 1
			}
			return 0
		})

	// Shed decision path (docs/PERFORMANCE.md): admission cost, planner
	// throughput, and class-bucket index occupancy.
	counter("admission_ns_total", "Sampled wall-clock nanoseconds spent in AdmitEvent (extrapolated from every 64th event).",
		func(ss runtime.ShardSnapshot) uint64 { return uint64(ss.AdmissionNs) })
	counter("shed_plans_built_total", "Shedding plans built by the async planner goroutine.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.PlansBuilt })
	counter("shed_plans_applied_total", "Planner plans applied by the worker.",
		func(ss runtime.ShardSnapshot) uint64 { return ss.PlansApplied })
	counter("shed_plans_stale_total", "Planner plans discarded by the drop-epoch fence (population retired before apply).",
		func(ss runtime.ShardSnapshot) uint64 { return ss.PlansStale })
	gauge("shed_plan_build_seconds", "Wall-clock duration of the planner's most recent off-worker plan build.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.PlanBuildNsLast) / 1e9 })
	gauge("shed_plan_build_seconds_max", "Longest off-worker plan build observed.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.PlanBuildNsMax) / 1e9 })
	gauge("shed_stall_seconds_max", "Worst worker pause a shedding trigger caused (snapshot chunk, plan apply, or drop chunk).",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.ShedStallMaxNs) / 1e9 })
	gauge("class_buckets", "Live (state, class) buckets in the engine's partial-match index.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.ClassBuckets) })
	gauge("class_live_pms", "Live partial matches tracked by the class-bucket index.",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.ClassLivePMs) })
	gauge("class_dead_pms", "Dead entries awaiting bucket compaction (lazy-retirement debt).",
		func(ss runtime.ShardSnapshot) float64 { return float64(ss.ClassDeadPMs) })

	// Per-query series: ladder level, arbiter imposition, recovery floor
	// skips, latency quantiles.
	p.Gauge("cepshed_degradation_level", "Graceful-degradation ladder level (0 normal .. 3 load rejection); unlabeled: worst across queries.")
	for _, q := range snap.Queries {
		p.Sample("cepshed_degradation_level", float64(q.Runtime.DegradationLevel),
			"tenant", q.Spec.Tenant, "query", q.Spec.Name)
	}
	p.Sample("cepshed_degradation_level", float64(snap.MaxDegradation))
	p.Counter("cepshed_imposed_drops_total", "Events dropped by the cross-query arbiter's gates.")
	for _, q := range snap.Queries {
		p.SampleUint("cepshed_imposed_drops_total", q.ImposedDrops,
			"tenant", q.Spec.Tenant, "query", q.Spec.Name)
	}
	p.SampleUint("cepshed_imposed_drops_total", snap.ImposedDrops)
	p.Counter("cepshed_floor_skips_total", "Events below a recovered query's sequence floor, dropped for exactly-once replay.")
	for _, q := range snap.Queries {
		p.SampleUint("cepshed_floor_skips_total", q.FloorSkips,
			"tenant", q.Spec.Tenant, "query", q.Spec.Name)
	}
	p.Gauge("cepshed_imposed_drop_probability", "Current arbiter drop probability per (query, event type) class.")
	for _, q := range snap.Queries {
		for typ, prob := range q.Imposed {
			p.Sample("cepshed_imposed_drop_probability", prob,
				"tenant", q.Spec.Tenant, "query", q.Spec.Name, "type", typ)
		}
	}
	p.Summary("cepshed_latency_seconds", "Wall-clock event latency quantiles per query.")
	for _, q := range snap.Queries {
		labels := []string{"tenant", q.Spec.Tenant, "query", q.Spec.Name}
		p.Sample("cepshed_latency_seconds", q.Runtime.P50.Seconds(), append(labels, "quantile", "0.5")...)
		p.Sample("cepshed_latency_seconds", q.Runtime.P95.Seconds(), append(labels, "quantile", "0.95")...)
		p.Sample("cepshed_latency_seconds", q.Runtime.P99.Seconds(), append(labels, "quantile", "0.99")...)
	}
	p.SampleUint("cepshed_latency_seconds_count", snap.EventsIn)

	// Per-tenant arbiter series: the isolation story in three gauges.
	p.Gauge("cepshed_tenant_utilization", "Smoothed CPU-seconds/second the tenant's queries cost.")
	for _, tl := range snap.Arbiter.Tenants {
		p.Sample("cepshed_tenant_utilization", tl.Utilization, "tenant", tl.Tenant)
	}
	p.Gauge("cepshed_tenant_share", "The tenant's current fair-share entitlement.")
	for _, tl := range snap.Arbiter.Tenants {
		p.Sample("cepshed_tenant_share", tl.Share, "tenant", tl.Tenant)
	}
	p.Gauge("cepshed_tenant_imposed_drop", "Largest drop probability currently imposed on the tenant (0: untouched).")
	for _, tl := range snap.Arbiter.Tenants {
		p.Sample("cepshed_tenant_imposed_drop", tl.ImposedDrop, "tenant", tl.Tenant)
	}
	p.Gauge("cepshed_arbiter_utilization", "Total measured utilization across all queries.")
	p.Sample("cepshed_arbiter_utilization", snap.Arbiter.Utilization)
	p.Gauge("cepshed_arbiter_capacity", "The arbiter's utilization target.")
	p.Sample("cepshed_arbiter_capacity", snap.Arbiter.Capacity)
	p.Gauge("cepshed_arbiter_overloaded", "1 while total utilization exceeds the capacity target.")
	if snap.Arbiter.Overloaded {
		p.Sample("cepshed_arbiter_overloaded", 1)
	} else {
		p.Sample("cepshed_arbiter_overloaded", 0)
	}

	// Server aggregates (unlabeled, pre-registry dashboard compatible).
	p.Counter("cepshed_admission_rejected_total", "Offers rejected at the door by a degradation ladder.")
	p.SampleUint("cepshed_admission_rejected_total", snap.AdmissionRejected)
	p.Counter("cepshed_quarantined_total", "Dead letters recorded (shard panics plus rejected inputs).")
	p.SampleUint("cepshed_quarantined_total", snap.Quarantined)
	p.Counter("cepshed_unrouted_total", "Ingested events no registered query subscribes to.")
	p.SampleUint("cepshed_unrouted_total", snap.Unrouted)
	p.Gauge("cepshed_failed_shards", "Shards marked permanently failed by the circuit breaker.")
	p.Sample("cepshed_failed_shards", float64(snap.FailedShards))
	p.Gauge("cepshed_queries", "Registered queries.")
	p.Sample("cepshed_queries", float64(len(snap.Queries)))

	p.Gauge("cepshed_recovering", "1 while any shard of any query is restoring a snapshot or replaying its WAL.")
	if snap.Recovering {
		p.Sample("cepshed_recovering", 1)
	} else {
		p.Sample("cepshed_recovering", 0)
	}
	p.Gauge("cepshed_snapshot_age_seconds", "Age of the stalest shard checkpoint (0 until every durable shard has snapshotted).")
	age := 0.0
	oldest := int64(0)
	for _, q := range snap.Queries {
		if ns := q.Runtime.OldestSnapshotUnixNs; ns > 0 && (oldest == 0 || ns < oldest) {
			oldest = ns
		}
	}
	if oldest > 0 {
		age = time.Since(time.Unix(0, oldest)).Seconds()
	}
	p.Sample("cepshed_snapshot_age_seconds", age)

	p.Gauge("cepshed_input_shed_ratio", "Realized rho_I across all queries.")
	shedRatio := 0.0
	if snap.EventsIn > 0 {
		shedRatio = float64(snap.EventsShed) / float64(snap.EventsIn)
	}
	p.Sample("cepshed_input_shed_ratio", shedRatio)
	p.Gauge("cepshed_pm_shed_ratio", "Realized rho_S across all queries.")
	var createdPMs, droppedPMs uint64
	for _, q := range snap.Queries {
		for _, ss := range q.Runtime.Shards {
			createdPMs += ss.CreatedPMs
			droppedPMs += ss.DroppedPMs
		}
	}
	pmRatio := 0.0
	if createdPMs > 0 {
		pmRatio = float64(droppedPMs) / float64(createdPMs)
	}
	p.Sample("cepshed_pm_shed_ratio", pmRatio)

	// NDJSON decoder intern-table telemetry (process-wide): occupancy
	// near capacity or nonzero rejects means high-cardinality inputs are
	// defeating the zero-allocation fast path.
	p.Counter("cepshed_ndjson_intern_inserts_total", "Strings admitted to the NDJSON decoder intern tables.")
	p.SampleUint("cepshed_ndjson_intern_inserts_total", intern.Inserts)
	p.Counter("cepshed_ndjson_intern_rejects_total", "Strings refused by a full intern table (each decoded as a fresh allocation).")
	p.SampleUint("cepshed_ndjson_intern_rejects_total", intern.Rejects)
	p.Gauge("cepshed_ndjson_intern_high_water", "Largest occupancy any single intern table reached.")
	p.SampleUint("cepshed_ndjson_intern_high_water", intern.HighWater)
}

// strategyFactory builds the per-shard strategy constructor. Every shard
// gets its own instance (strategies are stateful); model-based
// strategies train per shard so online adaptation never shares state.
func strategyFactory(name string, m *nfa.Machine, train event.Stream, bound event.Time, seed int64) (func(int) shed.Strategy, error) {
	needTrain := func() error {
		if len(train) == 0 {
			return fmt.Errorf("strategy %s needs training data: run with -dataset", name)
		}
		return nil
	}
	switch name {
	case "None":
		return nil, nil
	case "RI":
		return func(i int) shed.Strategy { return baseline.NewRandomInput(bound, seed+int64(i)) }, nil
	case "RS":
		return func(i int) shed.Strategy { return baseline.NewRandomState(bound, seed+int64(i)) }, nil
	case "SI":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewSelectivityInput(baseline.EstimateSelectivity(m, train), bound, seed+int64(i))
		}, nil
	case "SS":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewSelectivityState(baseline.EstimateSelectivity(m, train), bound, seed+int64(i))
		}, nil
	case "PI":
		if err := needTrain(); err != nil {
			return nil, err
		}
		return func(i int) shed.Strategy {
			return baseline.NewPositionInput(baseline.EstimatePositionUtility(m, train), bound, seed+int64(i))
		}, nil
	case "Hybrid", "HyI", "HyS":
		if err := needTrain(); err != nil {
			return nil, err
		}
		mode := core.ModeHybrid
		if name == "HyI" {
			mode = core.ModeInputOnly
		} else if name == "HyS" {
			mode = core.ModeStateOnly
		}
		return func(i int) shed.Strategy {
			model := core.MustTrain(m, train, core.TrainConfig{Slices: 4, Seed: 1})
			return core.NewHybrid(model, core.Config{Bound: bound, Mode: mode, Adapt: true, AsyncPlan: true})
		}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// streams returns training and workload streams plus the default query
// for a dataset (the same shapes ceprun uses).
func streams(dataset string, events int, seed int64) (train, work event.Stream, defQuery string) {
	switch dataset {
	case "ds1":
		train = gen.DS1(gen.DS1Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS1(gen.DS1Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q1("8ms").Raw
	case "ds2":
		train = gen.DS2(gen.DS2Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS2(gen.DS2Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q3("8ms").Raw
	case "citibike":
		train = citibike.Generate(citibike.Config{Trips: events / 2, Seed: seed + 1000})
		work = citibike.Generate(citibike.Config{Trips: events, Seed: seed})
		defQuery = query.HotPaths("5 min", 2, 5).Raw
	case "gcluster":
		cfg := gcluster.Config{Tasks: events / 4, MeanGap: 120 * event.Millisecond, StepGap: 400 * event.Millisecond}
		cfg.Seed = seed + 1000
		train = gcluster.Generate(cfg)
		cfg.Seed = seed
		work = gcluster.Generate(cfg)
		defQuery = query.ClusterTasks("1 min").Raw
	default:
		log.Fatalf("cepserved: unknown dataset %q", dataset)
	}
	return train, work, defQuery
}
