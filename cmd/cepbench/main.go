// Command cepbench reproduces the paper's evaluation figures.
//
// Usage:
//
//	cepbench -list              list available experiments
//	cepbench -fig fig4          run one experiment
//	cepbench -all               run every experiment
//	cepbench -quick ...         quarter-scale streams (fast smoke runs)
//	cepbench -seed 7 ...        offset all generator seeds
//
// Engine benchmark-regression harness (docs/PERFORMANCE.md):
//
//	cepbench -engine-bench                                  measure and print
//	cepbench -engine-bench -bench-out BENCH_engine.json     record a baseline
//	cepbench -engine-bench -bench-compare BENCH_engine.json gate vs baseline
//
// Runtime (serving-path) harness, same flags with -runtime-bench:
//
//	cepbench -runtime-bench -bench-out BENCH_runtime.json
//	cepbench -runtime-bench -quick                          smoke (no write/gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cepshed/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		fig   = flag.String("fig", "", "experiment id to run (e.g. fig4)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "quarter-scale streams")
		seed  = flag.Int64("seed", 0, "generator seed offset")
		csv   = flag.Bool("csv", false, "emit panels as CSV instead of tables")

		engineBench  = flag.Bool("engine-bench", false, "measure Engine.Process on the canonical workloads")
		runtimeBench = flag.Bool("runtime-bench", false, "measure the full serving path (runtime+WAL+NDJSON)")
		benchOut     = flag.String("bench-out", "", "with -engine-bench/-runtime-bench: write the result as a JSON baseline")
		benchCompare = flag.String("bench-compare", "", "with -engine-bench/-runtime-bench: gate against a JSON baseline")
		profileShed  = flag.String("profile-shed", "", "record a CPU profile of an overloaded async-planner run to this file")
	)
	flag.Parse()
	emitCSV = *csv

	if *profileShed != "" {
		os.Exit(runProfileShed(*profileShed))
	}
	if *engineBench {
		os.Exit(runEngineBench(*benchOut, *benchCompare))
	}
	if *runtimeBench {
		os.Exit(runRuntimeBench(*benchOut, *benchCompare, *quick))
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	switch {
	case *all:
		for _, e := range experiments.All() {
			runOne(e, opts)
		}
	case *fig != "":
		e, ok := experiments.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "cepbench: unknown experiment %q (try -list)\n", *fig)
			os.Exit(2)
		}
		runOne(e, opts)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

var emitCSV bool

func runOne(e experiments.Experiment, opts experiments.Options) {
	if !emitCSV {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
	}
	start := time.Now()
	tables := e.Run(opts)
	for _, t := range tables {
		if emitCSV {
			t.PrintCSV(os.Stdout)
		} else {
			t.Print(os.Stdout)
		}
	}
	if !emitCSV {
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
