package main

import (
	"fmt"
	"os"
	"runtime/pprof"

	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

// runProfileShed records a CPU profile of an overloaded async-planner
// run — the same workload shape as the shed-trigger-stall bench, driven
// long enough to accumulate samples — and writes it to out. Worker
// goroutines run under the pprof label cep_role=worker and the planner
// under cep_role=shed_planner, so `make profile-shed` can prove from the
// profile that shedding-set selection, the knapsack, and admission-table
// compilation never execute on a worker's hot stack.
func runProfileShed(out string) int {
	m := nfa.MustCompile(query.Q1("8ms"))
	training := gen.DS1(gen.DS1Config{Events: 3000, Seed: 11, InterArrival: 40 * event.Microsecond})
	model, err := core.Train(m, training, core.TrainConfig{Slices: 4, Seed: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: train: %v\n", err)
		return 1
	}
	s := gen.DS1(gen.DS1Config{Events: 30000, Seed: 3, InterArrival: 10 * event.Microsecond})

	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: %v\n", err)
		return 1
	}
	var plansApplied, dropped uint64
	for iter := 0; iter < 4; iter++ {
		rt := runtime.New(m, runtime.Config{
			Shards: 1,
			NewStrategy: func(int) shed.Strategy {
				return core.NewHybrid(model, core.Config{
					Bound:       event.Time(1),
					DelayEvents: 500,
					AsyncPlan:   true,
				})
			},
		})
		rt.WaitRecovered()
		offerAll(rt, s)
		rt.Close()
		snap := rt.Snapshot()
		plansApplied += snap.PlansApplied
		dropped += snap.DroppedPMs
	}
	pprof.StopCPUProfile()
	if plansApplied == 0 || dropped == 0 {
		fmt.Fprintf(os.Stderr, "cepbench: profile-shed run applied %d plans, dropped %d PMs; the profile does not exercise the planner\n",
			plansApplied, dropped)
		return 1
	}
	fmt.Fprintf(os.Stderr, "cepbench: shed profile written to %s (%d plans applied, %d PMs dropped)\n", out, plansApplied, dropped)
	return 0
}
