package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cepshed"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// This file is the engine benchmark-regression harness: -engine-bench
// measures the raw Engine.Process hot path on the three canonical
// workloads (sequence join, Kleene-heavy, negation), -bench-out writes
// the result as BENCH_engine.json, and -bench-compare gates the current
// build against a checked-in baseline, failing on >25% ns/event
// regression. See docs/PERFORMANCE.md for the workflow.

// regressionTolerance is the allowed ns/event slowdown before
// -bench-compare fails. Shared single-CPU hosts show uniform ±20%
// drift across every workload — including the interpreted-admission
// reference, whose code path no change touches — e.g. when the compare
// runs right after make check's race/chaos suites. A threshold below
// that noise floor flakes on noise rather than catching regressions;
// 25% matches the runtime harness's gate.
const regressionTolerance = 1.25

// BenchHost fingerprints the machine a baseline was recorded on.
// Comparisons across different hosts warn instead of failing — absolute
// ns/event is only meaningful on like hardware.
type BenchHost struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is part of the fingerprint because the worker pool's
	// throughput (and the parallel-scaling gate) depends on schedulable
	// parallelism, not just physical CPU count.
	GOMAXPROCS int `json:"gomaxprocs"`
}

func currentHost() BenchHost {
	return BenchHost{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// BenchWorkload is one measured workload.
type BenchWorkload struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	MatchesPerSec  float64 `json:"matches_per_sec"`
	Events         int     `json:"events"`
	Matches        uint64  `json:"matches"`
}

// BenchFile is the serialized form of BENCH_engine.json.
type BenchFile struct {
	Host      BenchHost                `json:"host"`
	Date      string                   `json:"date"`
	Workloads map[string]BenchWorkload `json:"workloads"`
}

type benchCase struct {
	name     string
	machine  *nfa.Machine
	stream   event.Stream
	deferred bool
}

func engineBenchCases() []benchCase {
	ds1 := gen.DS1(gen.DS1Config{Events: 5000, Seed: 1, InterArrival: 30 * event.Microsecond})
	return []benchCase{
		{name: "q1-ds1", machine: nfa.MustCompile(query.Q1("8ms")), stream: ds1},
		{
			name:    "kleene-hotpaths",
			machine: nfa.MustCompile(query.HotPaths("5 min", 2, 5)),
			stream:  cepshed.CitiBike(cepshed.CitiBikeConfig{Trips: 1500, Seed: 1}),
		},
		{name: "negation-eager", machine: nfa.MustCompile(query.Q4("8ms")), stream: ds1},
		{name: "negation-deferred", machine: nfa.MustCompile(query.Q4("8ms")), stream: ds1, deferred: true},
	}
}

func measure(c benchCase) BenchWorkload {
	var matches uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			en := engine.New(c.machine, engine.DefaultCosts())
			en.DeferredNegation = c.deferred
			for _, e := range c.stream {
				en.Process(e)
			}
			matches = en.Stats().Matches
		}
	})
	events := len(c.stream)
	nsPerEvent := float64(r.NsPerOp()) / float64(events)
	out := BenchWorkload{
		NsPerEvent:     nsPerEvent,
		AllocsPerEvent: float64(r.AllocsPerOp()) / float64(events),
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / float64(events),
		Events:         events,
		Matches:        matches,
	}
	if r.NsPerOp() > 0 {
		out.MatchesPerSec = float64(matches) / (float64(r.NsPerOp()) / 1e9)
	}
	return out
}

// admissionSpeedupFloor gates the overload-admission pair: the compiled
// admission table must decide at least this many times faster than the
// interpreted per-event class derivation it replaced. The reference
// container measures ~3.2–3.5× (≈75 ns vs ≈240 ns per decision; the
// residual compiled cost is dominated by the event's attrs map lookups,
// which both sides pay). 3× catches a return to the allocating
// per-event derivation while tolerating host noise — both sides are
// best-of-3 from the same process, so the ratio is far more stable than
// either absolute number.
const admissionSpeedupFloor = 3.0

// measureAdmission times the ρI decision alone on an overloaded engine:
// a trained Hybrid with an active shedding set classifies a probe stream
// either through the compiled admission table (the serving path) or the
// interpreted reference. The setup — training, population, knapsack
// selection — happens once outside the timed region; the measurement is
// purely decisions/second.
func measureAdmission(compiled bool) BenchWorkload {
	m := nfa.MustCompile(query.Q1("8ms"))
	training := gen.DS1(gen.DS1Config{Events: 3000, Seed: 11, InterArrival: 40 * event.Microsecond})
	model, err := core.Train(m, training, core.TrainConfig{Slices: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	h := core.NewHybrid(model, core.Config{Bound: event.Millisecond})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	live := gen.DS1(gen.DS1Config{Events: 6000, Seed: 3, InterArrival: 40 * event.Microsecond})
	for _, e := range live[:1000] {
		en.Process(e)
	}
	last := live[999]
	ss := model.SelectSheddingSet(en.PartialMatches(), last.Time, last.Seq, 0.5, 0)
	if ss == nil {
		panic("overload-admission: no shedding set selected; the workload measures nothing")
	}
	h.ImposeSet(ss)
	probe := live[1000:]
	var admitted int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			admitted = 0
			if compiled {
				for _, e := range probe {
					if h.AdmitEvent(e, e.Time) {
						admitted++
					}
				}
			} else {
				for _, e := range probe {
					if h.AdmitEventInterpreted(e) {
						admitted++
					}
				}
			}
		}
	})
	if admitted == 0 || admitted == len(probe) {
		panic(fmt.Sprintf("overload-admission(compiled=%v): %d of %d admitted; the set filters nothing", compiled, admitted, len(probe)))
	}
	events := len(probe)
	return BenchWorkload{
		NsPerEvent:     float64(r.NsPerOp()) / float64(events),
		AllocsPerEvent: float64(r.AllocsPerOp()) / float64(events),
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / float64(events),
		Events:         events,
		Matches:        uint64(admitted),
	}
}

// benchRepeats is the best-of-N sample count for gated measurements.
// On a shared host a single testing.Benchmark run can swing ±40% with
// co-tenant load; the minimum over a few repetitions estimates the
// uncontended cost on both sides of the comparison, which is what the
// regression gate is meant to compare.
const benchRepeats = 3

// bestOf runs f n times and keeps the fastest result by ns/event.
func bestOf(n int, f func() BenchWorkload) BenchWorkload {
	best := f()
	for i := 1; i < n; i++ {
		if w := f(); w.NsPerEvent < best.NsPerEvent {
			best = w
		}
	}
	return best
}

// runEngineBench measures every workload and then writes the baseline,
// compares against one, or just prints — per the flags. Returns the
// process exit code.
func runEngineBench(outPath, comparePath string) int {
	bf := BenchFile{
		Host:      currentHost(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		Workloads: map[string]BenchWorkload{},
	}
	cases := engineBenchCases()
	names := make([]string, 0, len(cases)+2)
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "cepbench: measuring %s...\n", c.name)
		c := c
		bf.Workloads[c.name] = bestOf(benchRepeats, func() BenchWorkload { return measure(c) })
		names = append(names, c.name)
	}
	for _, a := range []struct {
		name     string
		compiled bool
	}{
		{name: "overload-admission", compiled: true},
		{name: "overload-admission-interp", compiled: false},
	} {
		fmt.Fprintf(os.Stderr, "cepbench: measuring %s (ρI decision only)...\n", a.name)
		a := a
		bf.Workloads[a.name] = bestOf(benchRepeats, func() BenchWorkload { return measureAdmission(a.compiled) })
		names = append(names, a.name)
	}

	fmt.Printf("%-26s %12s %12s %12s %14s\n", "workload", "ns/event", "allocs/event", "B/event", "matches/sec")
	for _, name := range names {
		w := bf.Workloads[name]
		fmt.Printf("%-26s %12.1f %12.2f %12.1f %14.0f\n",
			name, w.NsPerEvent, w.AllocsPerEvent, w.BytesPerEvent, w.MatchesPerSec)
	}

	// Self-contained overload-admission gates: both sides are measured in
	// this run, so no baseline (or host match) is needed to enforce them.
	comp, interp := bf.Workloads["overload-admission"], bf.Workloads["overload-admission-interp"]
	if comp.NsPerEvent > 0 {
		ratio := interp.NsPerEvent / comp.NsPerEvent
		fmt.Printf("admission: interpreted %.1f ns/event, compiled %.1f ns/event — %.1fx speedup\n",
			interp.NsPerEvent, comp.NsPerEvent, ratio)
		if ratio < admissionSpeedupFloor {
			fmt.Fprintf(os.Stderr, "cepbench: compiled admission is only %.1fx the interpreted path (floor %.0fx); the table compiler has regressed\n",
				ratio, admissionSpeedupFloor)
			return 1
		}
		if comp.AllocsPerEvent != 0 {
			fmt.Fprintf(os.Stderr, "cepbench: compiled admission allocates %.2f/event; the decision path must stay zero-alloc\n",
				comp.AllocsPerEvent)
			return 1
		}
	}

	if outPath != "" {
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "cepbench: baseline written to %s\n", outPath)
	}

	if comparePath != "" {
		return compareBaseline(bf, comparePath)
	}
	return 0
}

// compareBaseline gates the measured run against a stored baseline.
func compareBaseline(cur BenchFile, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: no baseline to compare against (%v); run make bench-baseline first\n", err)
		return 1
	}
	var base BenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: corrupt baseline %s: %v\n", path, err)
		return 1
	}
	hostMatch := base.Host == cur.Host
	if !hostMatch {
		fmt.Fprintf(os.Stderr, "cepbench: WARNING: baseline host %+v differs from this host %+v; "+
			"reporting deltas but skipping the hard regression gate\n", base.Host, cur.Host)
	}
	failed := false
	for name, cw := range cur.Workloads {
		bw, ok := base.Workloads[name]
		if !ok || bw.NsPerEvent <= 0 {
			fmt.Printf("%-18s new workload (no baseline)\n", name)
			continue
		}
		ratio := cw.NsPerEvent / bw.NsPerEvent
		verdict := "ok"
		if ratio > regressionTolerance {
			if hostMatch {
				verdict = "REGRESSION"
				failed = true
			} else {
				verdict = "slower (host mismatch, not gated)"
			}
		}
		fmt.Printf("%-18s baseline %8.0f ns/event, now %8.0f ns/event (%+.1f%%)  %s\n",
			name, bw.NsPerEvent, cw.NsPerEvent, (ratio-1)*100, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "cepbench: ns/event regressed more than %.0f%% against %s\n",
			(regressionTolerance-1)*100, path)
		return 1
	}
	return 0
}
