package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
)

// This file is the runtime (serving-path) benchmark harness:
// -runtime-bench measures the full ingest→shard→WAL→deliver pipeline —
// the path cepserved actually runs — across durability modes and shard
// counts, plus the NDJSON decode path in isolation. Results land in
// BENCH_runtime.json next to the engine baseline and are gated by the
// same make bench-compare target. See docs/PERFORMANCE.md.

// runtimeRegressionTolerance is looser than the engine gate: the
// serving path includes goroutine handoff and the scheduler, so
// wall-clock ns/event is noisier than the single-threaded engine loop.
const runtimeRegressionTolerance = 1.25

// RuntimeBenchEntry is one recorded measurement run.
type RuntimeBenchEntry struct {
	Host      BenchHost                `json:"host"`
	Date      string                   `json:"date"`
	Label     string                   `json:"label,omitempty"`
	Workloads map[string]BenchWorkload `json:"workloads"`
}

// RuntimeBenchFile is the serialized form of BENCH_runtime.json: the
// current measurement plus the prior entries it superseded, oldest
// last, so the perf trajectory stays in the repo.
type RuntimeBenchFile struct {
	RuntimeBenchEntry
	History []RuntimeBenchEntry `json:"history,omitempty"`
}

type runtimeBenchCase struct {
	name   string
	shards int
	dur    bool
	fsync  bool
}

func runtimeBenchCases() []runtimeBenchCase {
	return []runtimeBenchCase{
		{name: "nodur-1shard", shards: 1},
		{name: "wal-1shard", shards: 1, dur: true},
		{name: "wal-fsync-1shard", shards: 1, dur: true, fsync: true},
		{name: "nodur-4shard", shards: 4},
		{name: "wal-4shard", shards: 4, dur: true},
	}
}

// offerAll pushes a stream through the runtime the way cepserved does,
// batching the handoff where the API allows it.
func offerAll(r *runtime.Runtime, s event.Stream) {
	const chunk = 256
	for i := 0; i < len(s); i += chunk {
		end := i + chunk
		if end > len(s) {
			end = len(s)
		}
		r.OfferBatch(s[i:end])
	}
}

func measureRuntime(c runtimeBenchCase, s event.Stream) BenchWorkload {
	m := nfa.MustCompile(query.Q1("8ms"))
	var matches uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := runtime.Config{Shards: c.shards}
			var dir string
			if c.dur {
				b.StopTimer()
				var err error
				dir, err = os.MkdirTemp("", "cepbench-wal-*")
				if err != nil {
					panic(err)
				}
				cfg.Durability = &checkpoint.Config{Dir: dir, Fsync: c.fsync}
				b.StartTimer()
			}
			rt := runtime.New(m, cfg)
			rt.WaitRecovered()
			offerAll(rt, s)
			rt.Close()
			matches = rt.Snapshot().Matches
			if dir != "" {
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		}
	})
	events := len(s)
	out := BenchWorkload{
		NsPerEvent:     float64(r.NsPerOp()) / float64(events),
		AllocsPerEvent: float64(r.AllocsPerOp()) / float64(events),
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / float64(events),
		Events:         events,
		Matches:        matches,
	}
	if r.NsPerOp() > 0 {
		out.MatchesPerSec = float64(matches) / (float64(r.NsPerOp()) / 1e9)
	}
	return out
}

// measureNDJSON isolates the line-decode path: allocs/event here is the
// headline number for the zero-alloc scanner.
func measureNDJSON(s event.Stream) BenchWorkload {
	var buf bytes.Buffer
	for _, e := range s {
		buf.Write(runtime.EncodeEvent(e))
		buf.WriteByte('\n')
	}
	raw := buf.Bytes()
	var decoded uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := runtime.NewLineDecoder(bytes.NewReader(raw), 1<<20)
			decoded = 0
			for {
				_, _, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					panic(err)
				}
				decoded++
			}
		}
	})
	events := len(s)
	if decoded != uint64(events) {
		panic(fmt.Sprintf("ndjson-decode: decoded %d of %d events", decoded, events))
	}
	return BenchWorkload{
		NsPerEvent:     float64(r.NsPerOp()) / float64(events),
		AllocsPerEvent: float64(r.AllocsPerOp()) / float64(events),
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / float64(events),
		Events:         events,
		Matches:        decoded,
	}
}

// runRuntimeBench measures the serving-path workloads, prints the
// table, and then writes and/or gates per the flags. Returns the
// process exit code. With quick=true it runs a quarter-scale smoke:
// same code path, no stable numbers — never write or gate those.
func runRuntimeBench(outPath, comparePath string, quick bool) int {
	// 100µs inter-arrival keeps the 8ms window's population — and with
	// it the per-event engine cost — representative of a high-rate
	// serving workload without letting Engine.Process dominate the
	// measurement: this harness exists to watch the runtime layer
	// (handoff, WAL, delivery), and the engine has its own gate.
	events := 20000
	if quick {
		events = 4000
	}
	s := gen.DS1(gen.DS1Config{Events: events, Seed: 1, InterArrival: 100 * event.Microsecond})

	cur := RuntimeBenchEntry{
		Host:      currentHost(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		Workloads: map[string]BenchWorkload{},
	}
	// -quick is an ungated smoke run; a single sample is enough there.
	repeats := benchRepeats
	if quick {
		repeats = 1
	}
	cases := runtimeBenchCases()
	names := make([]string, 0, len(cases)+1)
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "cepbench: measuring %s...\n", c.name)
		c := c
		cur.Workloads[c.name] = bestOf(repeats, func() BenchWorkload { return measureRuntime(c, s) })
		names = append(names, c.name)
	}
	fmt.Fprintf(os.Stderr, "cepbench: measuring ndjson-decode...\n")
	cur.Workloads["ndjson-decode"] = bestOf(repeats, func() BenchWorkload { return measureNDJSON(s) })
	names = append(names, "ndjson-decode")

	fmt.Printf("%-18s %12s %12s %12s %14s\n", "workload", "ns/event", "allocs/event", "B/event", "events/sec")
	for _, name := range names {
		w := cur.Workloads[name]
		evPerSec := 0.0
		if w.NsPerEvent > 0 {
			evPerSec = 1e9 / w.NsPerEvent
		}
		fmt.Printf("%-18s %12.0f %12.2f %12.1f %14.0f\n",
			name, w.NsPerEvent, w.AllocsPerEvent, w.BytesPerEvent, evPerSec)
	}

	if quick {
		fmt.Fprintf(os.Stderr, "cepbench: quick smoke run; skipping write/compare\n")
		return 0
	}

	if outPath != "" {
		if err := writeRuntimeBench(cur, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "cepbench: baseline written to %s\n", outPath)
	}
	if comparePath != "" {
		return compareRuntimeBaseline(cur, comparePath)
	}
	return 0
}

// writeRuntimeBench records cur as the file's current entry; the entry
// it replaces (if any) is prepended to History so the trajectory is
// never overwritten, only extended.
func writeRuntimeBench(cur RuntimeBenchEntry, path string) error {
	out := RuntimeBenchFile{RuntimeBenchEntry: cur}
	if data, err := os.ReadFile(path); err == nil {
		var prev RuntimeBenchFile
		if err := json.Unmarshal(data, &prev); err == nil && len(prev.Workloads) > 0 {
			out.History = append([]RuntimeBenchEntry{prev.RuntimeBenchEntry}, prev.History...)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareRuntimeBaseline gates the measured run against the stored
// file's current entry, mirroring the engine gate but with the looser
// serving-path tolerance.
func compareRuntimeBaseline(cur RuntimeBenchEntry, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: no runtime baseline to compare against (%v); run make bench-baseline first\n", err)
		return 1
	}
	var base RuntimeBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: corrupt runtime baseline %s: %v\n", path, err)
		return 1
	}
	hostMatch := base.Host == cur.Host
	if !hostMatch {
		fmt.Fprintf(os.Stderr, "cepbench: WARNING: runtime baseline host %+v differs from this host %+v; "+
			"reporting deltas but skipping the hard regression gate\n", base.Host, cur.Host)
	}
	failed := false
	for name, cw := range cur.Workloads {
		bw, ok := base.Workloads[name]
		if !ok || bw.NsPerEvent <= 0 {
			fmt.Printf("%-18s new workload (no baseline)\n", name)
			continue
		}
		ratio := cw.NsPerEvent / bw.NsPerEvent
		verdict := "ok"
		if ratio > runtimeRegressionTolerance {
			if hostMatch {
				verdict = "REGRESSION"
				failed = true
			} else {
				verdict = "slower (host mismatch, not gated)"
			}
		}
		fmt.Printf("%-18s baseline %8.0f ns/event, now %8.0f ns/event (%+.1f%%)  %s\n",
			name, bw.NsPerEvent, cw.NsPerEvent, (ratio-1)*100, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "cepbench: runtime ns/event regressed more than %.0f%% against %s\n",
			(runtimeRegressionTolerance-1)*100, path)
		return 1
	}
	return 0
}
