package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"testing"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

// This file is the runtime (serving-path) benchmark harness:
// -runtime-bench measures the full ingest→shard→WAL→deliver pipeline —
// the path cepserved actually runs — across durability modes and shard
// counts, plus the NDJSON decode path in isolation. Results land in
// BENCH_runtime.json next to the engine baseline and are gated by the
// same make bench-compare target. See docs/PERFORMANCE.md.

// runtimeRegressionTolerance is looser than the engine gate: the
// serving path includes goroutine handoff and the scheduler, so
// wall-clock ns/event is noisier than the single-threaded engine loop.
const runtimeRegressionTolerance = 1.25

// parallelSpeedupFloor is the minimum nodur-4shard over nodur-1shard
// throughput ratio the compare gate demands on hosts with more than one
// CPU: if four shards serviced by four workers are not at least 1.5×
// one shard, the worker pool is not actually delivering parallelism.
const parallelSpeedupFloor = 1.5

// stallReductionFloor gates the snapshot-stall pair: async (off-hot-
// path) snapshots must cut the worst serving-thread pause to at most
// 1/8 of the synchronous path's. The statistic is timed at the source
// (Snapshot.SnapPauseMaxNs), so it is stable; measured reductions run
// 14–27× on the reference container, and 8× leaves headroom without
// letting the async path silently regress toward inline cost.
const stallReductionFloor = 8.0

// shedStallReductionFloor gates the shed-trigger-stall pair: with the
// async planner, the worst worker pause a shedding trigger causes
// (population snapshot + goroutine launch + bucketed plan application)
// must be at most 1/5 of the synchronous trigger's full selection +
// knapsack + drop + table compilation. Same shape as the snapshot-stall
// gate: the statistic is a source-timed max, gated on the sync/async
// ratio measured in one run.
const shedStallReductionFloor = 5.0

// medianOf runs one untimed warmup pass and then n samples of f,
// keeping the median by ns/event. The engine gate uses bestOf — there
// the minimum estimates uncontended single-thread cost — but the
// serving path crosses goroutines, so its noise is two-sided: a lucky
// scheduling run undercuts the true cost as easily as a co-tenant
// inflates it. The warmup faults in code paths, page cache, and pool
// capacity that would otherwise tax only the first sample.
func medianOf(n int, f func() BenchWorkload) BenchWorkload {
	f() // warmup, discarded
	ws := make([]BenchWorkload, n)
	for i := range ws {
		ws[i] = f()
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].NsPerEvent < ws[j].NsPerEvent })
	return ws[len(ws)/2]
}

// minOf is medianOf's tail-robust sibling for the stall workloads. The
// statistic there is a source-timed MAX pause, so a single co-tenant
// preemption landing inside any timed segment inflates a whole sample
// run — a one-sided, heavy-tailed error that the median of three still
// passes through when two of three runs get hit. The minimum across
// repeats estimates the uncontended worst pause, which is what the
// sync/async reduction gates compare (the engine gate's bestOf
// reasoning, applied to a max statistic).
func minOf(n int, f func() BenchWorkload) BenchWorkload {
	f() // warmup, discarded
	best := f()
	for i := 1; i < n; i++ {
		if w := f(); w.NsPerEvent < best.NsPerEvent {
			best = w
		}
	}
	return best
}

// RuntimeBenchEntry is one recorded measurement run.
type RuntimeBenchEntry struct {
	Host      BenchHost                `json:"host"`
	Date      string                   `json:"date"`
	Label     string                   `json:"label,omitempty"`
	Workloads map[string]BenchWorkload `json:"workloads"`
}

// RuntimeBenchFile is the serialized form of BENCH_runtime.json: the
// current measurement plus the prior entries it superseded, oldest
// last, so the perf trajectory stays in the repo.
type RuntimeBenchFile struct {
	RuntimeBenchEntry
	History []RuntimeBenchEntry `json:"history,omitempty"`
}

type runtimeBenchCase struct {
	name   string
	shards int
	dur    bool
	fsync  bool
}

func runtimeBenchCases() []runtimeBenchCase {
	return []runtimeBenchCase{
		{name: "nodur-1shard", shards: 1},
		{name: "wal-1shard", shards: 1, dur: true},
		{name: "wal-fsync-1shard", shards: 1, dur: true, fsync: true},
		{name: "nodur-4shard", shards: 4},
		{name: "wal-4shard", shards: 4, dur: true},
	}
}

// offerAll pushes a stream through the runtime the way cepserved does,
// batching the handoff where the API allows it.
func offerAll(r *runtime.Runtime, s event.Stream) {
	const chunk = 256
	for i := 0; i < len(s); i += chunk {
		end := i + chunk
		if end > len(s) {
			end = len(s)
		}
		r.OfferBatch(s[i:end])
	}
}

func measureRuntime(c runtimeBenchCase, s event.Stream) BenchWorkload {
	m := nfa.MustCompile(query.Q1("8ms"))
	var matches uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := runtime.Config{Shards: c.shards}
			var dir string
			if c.dur {
				b.StopTimer()
				var err error
				dir, err = os.MkdirTemp("", "cepbench-wal-*")
				if err != nil {
					panic(err)
				}
				cfg.Durability = &checkpoint.Config{Dir: dir, Fsync: c.fsync}
				b.StartTimer()
			}
			rt := runtime.New(m, cfg)
			rt.WaitRecovered()
			offerAll(rt, s)
			rt.Close()
			matches = rt.Snapshot().Matches
			if dir != "" {
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		}
	})
	events := len(s)
	out := BenchWorkload{
		NsPerEvent:     float64(r.NsPerOp()) / float64(events),
		AllocsPerEvent: float64(r.AllocsPerOp()) / float64(events),
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / float64(events),
		Events:         events,
		Matches:        matches,
	}
	if r.NsPerOp() > 0 {
		out.MatchesPerSec = float64(matches) / (float64(r.NsPerOp()) / 1e9)
	}
	return out
}

// measureSnapshotStall measures the worst pause periodic snapshots
// inflict on the serving thread, via the runtime's own
// Snapshot.SnapPauseMaxNs gauge: every stretch of snapshot work done
// inline on the claiming worker is timed at the source (shard.
// noteSnapPause). With SyncSave that is the whole encode+write; the
// async protocol leaves only the by-reference capture and the finalize
// (flush + WAL rotation) inline, with encoding and the file writes on a
// background goroutine. Timing at the source rather than probing
// event-to-event gaps keeps ambient noise — expiry-cascade processing
// spikes, co-tenant descheduling — out of the statistic entirely; on a
// single-CPU host the background encode additionally time-slices with
// serving in encodeYieldEvery-bounded chunks, which is throughput
// sharing, not a stall. Returned in NsPerEvent (it is a max pause, not
// a rate), which is why snapshot-stall-* workloads are excluded from
// the ns/event regression gate and gated on their sync/async ratio
// instead.
func measureSnapshotStall(sync bool, m *nfa.Machine, s event.Stream) BenchWorkload {
	dir, err := os.MkdirTemp("", "cepbench-stall-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// A GC mark assist landing inside a timed stretch would inflate it by
	// more than the async path's whole budget. The workload allocates a
	// bounded amount, so switching GC off for its duration is safe and
	// leaves exactly the snapshot-induced pause in the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	cfg := runtime.Config{
		Shards: 1,
		Durability: &checkpoint.Config{
			Dir:         dir,
			EveryEvents: 1000,
			SyncSave:    sync,
		},
	}
	rt := runtime.New(m, cfg)
	rt.WaitRecovered()
	offerAll(rt, s)
	rt.Close()
	snap := rt.Snapshot()
	if snap.Snapshots == 0 {
		panic(fmt.Sprintf("snapshot-stall(sync=%v): no snapshot taken; the workload measures nothing", sync))
	}
	return BenchWorkload{
		NsPerEvent: float64(snap.SnapPauseMaxNs),
		Events:     len(s),
		Matches:    snap.Matches,
	}
}

// measureShedStall measures the worst pause a shedding trigger inflicts
// on the serving worker, via the runtime's Snapshot.ShedStallMaxNs gauge
// (timed at the source in the strategy, like the snapshot-stall pair).
// One shard runs a pre-trained Hybrid under an unreachable latency bound
// so state shedding triggers repeatedly on a dense stream; with
// async=false the worker runs the whole partial-match walk + knapsack +
// admission-table compilation inline, with async=true it only snapshots
// class-bucket populations, launches the planner, and applies finished
// plans. Returned in NsPerEvent (a max pause, not a rate) — excluded
// from the ns/event regression gate and gated on the sync/async ratio.
func measureShedStall(async bool, m *nfa.Machine, model *core.Model, s event.Stream) BenchWorkload {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rt := runtime.New(m, runtime.Config{
		Shards: 1,
		NewStrategy: func(int) shed.Strategy {
			// 1ns bound: always violated by real queueing latency, so the
			// trigger cadence is set by DelayEvents alone. Adapt stays off —
			// the model is shared across samples and must not drift.
			return core.NewHybrid(model, core.Config{
				Bound:       event.Time(1),
				DelayEvents: 500,
				AsyncPlan:   async,
			})
		},
	})
	rt.WaitRecovered()
	offerAll(rt, s)
	rt.Close()
	snap := rt.Snapshot()
	if snap.DroppedPMs == 0 || snap.ShedStallMaxNs == 0 {
		panic(fmt.Sprintf("shed-trigger-stall(async=%v): dropped=%d stall=%dns; shedding never triggered, the workload measures nothing",
			async, snap.DroppedPMs, snap.ShedStallMaxNs))
	}
	if async && snap.PlansApplied == 0 {
		panic("shed-trigger-stall(async=true): no plan applied; the async path was not exercised")
	}
	return BenchWorkload{
		NsPerEvent: float64(snap.ShedStallMaxNs),
		Events:     len(s),
		Matches:    snap.Matches,
	}
}

// measureNDJSON isolates the line-decode path: allocs/event here is the
// headline number for the zero-alloc scanner.
func measureNDJSON(s event.Stream) BenchWorkload {
	var buf bytes.Buffer
	for _, e := range s {
		buf.Write(runtime.EncodeEvent(e))
		buf.WriteByte('\n')
	}
	raw := buf.Bytes()
	var decoded uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := runtime.NewLineDecoder(bytes.NewReader(raw), 1<<20)
			decoded = 0
			for {
				_, _, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					panic(err)
				}
				decoded++
			}
		}
	})
	events := len(s)
	if decoded != uint64(events) {
		panic(fmt.Sprintf("ndjson-decode: decoded %d of %d events", decoded, events))
	}
	return BenchWorkload{
		NsPerEvent:     float64(r.NsPerOp()) / float64(events),
		AllocsPerEvent: float64(r.AllocsPerOp()) / float64(events),
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / float64(events),
		Events:         events,
		Matches:        decoded,
	}
}

// runRuntimeBench measures the serving-path workloads, prints the
// table, and then writes and/or gates per the flags. Returns the
// process exit code. With quick=true it runs a quarter-scale smoke:
// same code path, no stable numbers — never write or gate those.
func runRuntimeBench(outPath, comparePath string, quick bool) int {
	// 100µs inter-arrival keeps the 8ms window's population — and with
	// it the per-event engine cost — representative of a high-rate
	// serving workload without letting Engine.Process dominate the
	// measurement: this harness exists to watch the runtime layer
	// (handoff, WAL, delivery), and the engine has its own gate.
	events := 20000
	if quick {
		events = 4000
	}
	s := gen.DS1(gen.DS1Config{Events: events, Seed: 1, InterArrival: 100 * event.Microsecond})

	cur := RuntimeBenchEntry{
		Host:      currentHost(),
		Date:      time.Now().UTC().Format(time.RFC3339),
		Workloads: map[string]BenchWorkload{},
	}
	// -quick is an ungated smoke run; a single sample is enough there.
	repeats := benchRepeats
	if quick {
		repeats = 1
	}
	cases := runtimeBenchCases()
	names := make([]string, 0, len(cases)+3)
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "cepbench: measuring %s...\n", c.name)
		c := c
		cur.Workloads[c.name] = medianOf(repeats, func() BenchWorkload { return measureRuntime(c, s) })
		names = append(names, c.name)
	}
	fmt.Fprintf(os.Stderr, "cepbench: measuring ndjson-decode...\n")
	cur.Workloads["ndjson-decode"] = medianOf(repeats, func() BenchWorkload { return measureNDJSON(s) })
	names = append(names, "ndjson-decode")

	// Snapshot-stall pair: a dense DS1 stream — 10µs inter-arrival packs
	// ~800 events into Q1's 8ms window, so each snapshot serializes a
	// large partial-match population — while the per-event processing
	// cost stays in the low microseconds. That contrast matters: the gap
	// probe attributes anything between two events to "pause", so a
	// workload whose ordinary processing already takes milliseconds
	// (Kleene bursts) would bury the snapshot signal under engine cost.
	stallEvents := 12000
	if quick {
		stallEvents = 3000
	}
	stallMachine := nfa.MustCompile(query.Q1("8ms"))
	stallStream := gen.DS1(gen.DS1Config{Events: stallEvents, Seed: 2, InterArrival: 10 * event.Microsecond})
	for _, sc := range []struct {
		name string
		sync bool
	}{
		{name: "snapshot-stall-sync", sync: true},
		{name: "snapshot-stall-async", sync: false},
	} {
		fmt.Fprintf(os.Stderr, "cepbench: measuring %s (ns/event column = snapshot pause)...\n", sc.name)
		sc := sc
		cur.Workloads[sc.name] = minOf(repeats, func() BenchWorkload { return measureSnapshotStall(sc.sync, stallMachine, stallStream) })
		names = append(names, sc.name)
	}

	// Shed-trigger-stall pair: same dense stream shape as the snapshot
	// pair — a large partial-match population makes the synchronous
	// selection walk + knapsack expensive — with a model trained once and
	// shared (Adapt off) so both sides shed against identical estimates.
	shedEvents := 12000
	if quick {
		shedEvents = 3000
	}
	shedMachine := nfa.MustCompile(query.Q1("8ms"))
	shedTraining := gen.DS1(gen.DS1Config{Events: 3000, Seed: 11, InterArrival: 40 * event.Microsecond})
	shedModel, err := core.Train(shedMachine, shedTraining, core.TrainConfig{Slices: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	shedStream := gen.DS1(gen.DS1Config{Events: shedEvents, Seed: 3, InterArrival: 10 * event.Microsecond})
	for _, sc := range []struct {
		name  string
		async bool
	}{
		{name: "shed-trigger-stall-sync", async: false},
		{name: "shed-trigger-stall-async", async: true},
	} {
		fmt.Fprintf(os.Stderr, "cepbench: measuring %s (ns/event column = worst trigger pause)...\n", sc.name)
		sc := sc
		cur.Workloads[sc.name] = minOf(repeats, func() BenchWorkload {
			return measureShedStall(sc.async, shedMachine, shedModel, shedStream)
		})
		names = append(names, sc.name)
	}

	fmt.Printf("%-24s %12s %12s %12s %14s\n", "workload", "ns/event", "allocs/event", "B/event", "events/sec")
	for _, name := range names {
		w := cur.Workloads[name]
		evPerSec := 0.0
		if w.NsPerEvent > 0 {
			evPerSec = 1e9 / w.NsPerEvent
		}
		fmt.Printf("%-24s %12.0f %12.2f %12.1f %14.0f\n",
			name, w.NsPerEvent, w.AllocsPerEvent, w.BytesPerEvent, evPerSec)
	}

	syncW, asyncW := cur.Workloads["snapshot-stall-sync"], cur.Workloads["snapshot-stall-async"]
	if asyncW.NsPerEvent > 0 {
		ratio := syncW.NsPerEvent / asyncW.NsPerEvent
		fmt.Printf("snapshot stall: sync max pause %.0f ns, async %.0f ns — %.1fx reduction\n",
			syncW.NsPerEvent, asyncW.NsPerEvent, ratio)
		if !quick && ratio < stallReductionFloor {
			fmt.Fprintf(os.Stderr, "cepbench: async snapshots cut the max pause only %.1fx (floor %.0fx); off-hot-path capture has regressed\n",
				ratio, stallReductionFloor)
			return 1
		}
	}

	syncS, asyncS := cur.Workloads["shed-trigger-stall-sync"], cur.Workloads["shed-trigger-stall-async"]
	if asyncS.NsPerEvent > 0 {
		ratio := syncS.NsPerEvent / asyncS.NsPerEvent
		fmt.Printf("shed-trigger stall: sync max pause %.0f ns, async %.0f ns — %.1fx reduction\n",
			syncS.NsPerEvent, asyncS.NsPerEvent, ratio)
		if !quick && ratio < shedStallReductionFloor {
			fmt.Fprintf(os.Stderr, "cepbench: async shed planning cut the worst trigger pause only %.1fx (floor %.0fx); selection work is back on the worker\n",
				ratio, shedStallReductionFloor)
			return 1
		}
	}

	if quick {
		fmt.Fprintf(os.Stderr, "cepbench: quick smoke run; skipping write/compare\n")
		return 0
	}

	if outPath != "" {
		if err := writeRuntimeBench(cur, outPath); err != nil {
			fmt.Fprintf(os.Stderr, "cepbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "cepbench: baseline written to %s\n", outPath)
	}
	if comparePath != "" {
		return compareRuntimeBaseline(cur, comparePath)
	}
	return 0
}

// writeRuntimeBench records cur as the file's current entry; the entry
// it replaces (if any) is prepended to History so the trajectory is
// never overwritten, only extended.
func writeRuntimeBench(cur RuntimeBenchEntry, path string) error {
	out := RuntimeBenchFile{RuntimeBenchEntry: cur}
	if data, err := os.ReadFile(path); err == nil {
		var prev RuntimeBenchFile
		if err := json.Unmarshal(data, &prev); err == nil && len(prev.Workloads) > 0 {
			out.History = append([]RuntimeBenchEntry{prev.RuntimeBenchEntry}, prev.History...)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareRuntimeBaseline gates the measured run against the stored
// file's current entry, mirroring the engine gate but with the looser
// serving-path tolerance.
func compareRuntimeBaseline(cur RuntimeBenchEntry, path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: no runtime baseline to compare against (%v); run make bench-baseline first\n", err)
		return 1
	}
	var base RuntimeBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "cepbench: corrupt runtime baseline %s: %v\n", path, err)
		return 1
	}
	hostMatch := base.Host == cur.Host
	if !hostMatch {
		fmt.Fprintf(os.Stderr, "cepbench: WARNING: runtime baseline host %+v differs from this host %+v; "+
			"reporting deltas but skipping the hard regression gate\n", base.Host, cur.Host)
	}
	failed := false
	for name, cw := range cur.Workloads {
		if strings.HasPrefix(name, "snapshot-stall") || strings.HasPrefix(name, "shed-trigger-stall") {
			// Their metric is a MAX pause, not a mean — far too heavy-
			// tailed for a ±25% gate. The sync/async reduction-ratio gates
			// in runRuntimeBench cover them.
			continue
		}
		bw, ok := base.Workloads[name]
		if !ok || bw.NsPerEvent <= 0 {
			fmt.Printf("%-18s new workload (no baseline)\n", name)
			continue
		}
		ratio := cw.NsPerEvent / bw.NsPerEvent
		verdict := "ok"
		if ratio > runtimeRegressionTolerance {
			if hostMatch {
				verdict = "REGRESSION"
				failed = true
			} else {
				verdict = "slower (host mismatch, not gated)"
			}
		}
		fmt.Printf("%-18s baseline %8.0f ns/event, now %8.0f ns/event (%+.1f%%)  %s\n",
			name, bw.NsPerEvent, cw.NsPerEvent, (ratio-1)*100, verdict)
	}
	// Parallel-scaling gate: with real CPUs to spread across, four shards
	// serviced by four workers must beat one shard by a wide margin, or
	// the worker pool is parallel in name only. Gated on the CURRENT run
	// (both sides measured on this host just now), so a host mismatch
	// with the baseline does not disable it.
	c1, ok1 := cur.Workloads["nodur-1shard"]
	c4, ok4 := cur.Workloads["nodur-4shard"]
	if ok1 && ok4 && c1.NsPerEvent > 0 && c4.NsPerEvent > 0 {
		if cur.Host.GOMAXPROCS <= 1 {
			fmt.Printf("parallel-scaling gate SKIPPED: GOMAXPROCS=%d — one schedulable CPU cannot show multicore speedup; run on a multi-core host to gate it\n",
				cur.Host.GOMAXPROCS)
		} else {
			speedup := c1.NsPerEvent / c4.NsPerEvent
			verdict := "ok"
			if speedup < parallelSpeedupFloor {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("parallel-scaling: nodur-4shard %.2fx nodur-1shard throughput (floor %.1fx)  %s\n",
				speedup, parallelSpeedupFloor, verdict)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "cepbench: runtime ns/event regressed more than %.0f%% against %s (or the parallel-scaling floor was missed)\n",
			(runtimeRegressionTolerance-1)*100, path)
		return 1
	}
	return 0
}
