// Command cepgen emits a generated dataset as CSV on stdout, for
// inspection or for feeding external tools. Columns: seq, time_ns, type,
// then one column per attribute of the dataset's schema.
//
//	cepgen -dataset ds1 -events 1000 > ds1.csv
//	cepgen -dataset citibike -events 5000 -seed 7 > trips.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cepshed/internal/citibike"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
)

func main() {
	var (
		dataset = flag.String("dataset", "ds1", "dataset: ds1, ds2, citibike, gcluster")
		events  = flag.Int("events", 10000, "stream length (trips/tasks for case studies)")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var stream event.Stream
	switch *dataset {
	case "ds1":
		stream = gen.DS1(gen.DS1Config{Events: *events, Seed: *seed})
	case "ds2":
		stream = gen.DS2(gen.DS2Config{Events: *events, Seed: *seed})
	case "citibike":
		stream = citibike.Generate(citibike.Config{Trips: *events, Seed: *seed})
	case "gcluster":
		stream = gcluster.Generate(gcluster.Config{Tasks: *events, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "cepgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	// Collect the attribute schema across the stream.
	attrSet := map[string]bool{}
	for _, e := range stream {
		for a := range e.Attrs {
			attrSet[a] = true
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "seq,time_ns,type,%s\n", strings.Join(attrs, ","))
	for _, e := range stream {
		fmt.Fprintf(w, "%d,%d,%s", e.Seq, int64(e.Time), e.Type)
		for _, a := range attrs {
			v, ok := e.Get(a)
			switch {
			case !ok:
				fmt.Fprint(w, ",")
			case v.Kind == event.KindString:
				fmt.Fprintf(w, ",%s", v.S)
			case v.Kind == event.KindFloat:
				fmt.Fprintf(w, ",%g", v.F)
			default:
				fmt.Fprintf(w, ",%d", v.I)
			}
		}
		fmt.Fprintln(w)
	}
}
