// Command ceprun evaluates an ad-hoc CEP query over a generated dataset
// under a chosen shedding strategy and reports recall, throughput,
// latency, and shed ratios.
//
// Examples:
//
//	ceprun -dataset ds1 -events 20000 \
//	  -query 'PATTERN SEQ(A a, B b, C c) WHERE a.ID=b.ID AND a.ID=c.ID AND a.V+b.V=c.V WITHIN 8ms' \
//	  -strategy Hybrid -bound 0.5
//
//	ceprun -dataset citibike -strategy SS -bound 0.2 -stat p99
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cepshed/internal/baseline"
	"cepshed/internal/citibike"
	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	rtime "cepshed/internal/runtime"
	"cepshed/internal/shed"
)

func main() {
	var (
		dataset  = flag.String("dataset", "ds1", "dataset: ds1, ds2, citibike, gcluster")
		events   = flag.Int("events", 20000, "stream length (trips/tasks for the case studies)")
		seed     = flag.Int64("seed", 1, "generator seed")
		querySrc = flag.String("query", "", "query text (default: the paper query for the dataset)")
		strategy = flag.String("strategy", "Hybrid", "None, RI, SI, PI, RS, SS, Hybrid, HyI, HyS")
		explain  = flag.Bool("explain", false, "print the compiled automaton plan and exit")
		bound    = flag.Float64("bound", 0.5, "latency bound as a fraction of the unshedded latency")
		stat     = flag.String("stat", "avg", "latency statistic the bound applies to: avg, p95, p99")
		useRT    = flag.Bool("runtime", false, "also run through the sharded wall-clock runtime and report both latency domains")
		shards   = flag.Int("shards", 4, "shard count for -runtime")
	)
	flag.Parse()

	train, work, defQuery := streams(*dataset, *events, *seed)
	src := *querySrc
	if src == "" {
		src = defQuery
	}
	q, err := query.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceprun:", err)
		os.Exit(2)
	}
	m, err := nfa.Compile(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceprun:", err)
		os.Exit(2)
	}
	if *explain {
		fmt.Print(m.Explain())
		return
	}

	var boundStat metrics.BoundStat
	switch *stat {
	case "p95":
		boundStat = metrics.BoundP95
	case "p99":
		boundStat = metrics.BoundP99
	default:
		boundStat = metrics.BoundMean
	}

	runner := newRunner(m, train, work, boundStat)
	truth := runner.truth()
	fmt.Printf("query: %s\n", q)
	fmt.Printf("stream: %d events over %s\n", len(work), work.Duration())
	fmt.Printf("unshedded: %d matches, %s latency %s, throughput %.0f events/s\n",
		len(truth.Matches), boundStat, boundStat.Of(truth.Latency), truth.Throughput)

	if *strategy != "None" {
		res := runner.run(*strategy, *bound, *seed)
		fmt.Printf("\nstrategy %s at %.0f%% %s-latency bound (virtual time):\n", res.Strategy, *bound*100, boundStat)
		fmt.Printf("  recall      %.1f%%\n", 100*metrics.Recall(truth.MatchSet(), res.MatchSet()))
		if q.HasNegation() {
			fmt.Printf("  precision   %.1f%%\n", 100*metrics.Precision(truth.MatchSet(), res.MatchSet()))
		}
		fmt.Printf("  throughput  %.0f events/s\n", res.Throughput)
		fmt.Printf("  latency     %s (bound %s)\n", boundStat.Of(res.Latency), runner.boundAt(*bound))
		fmt.Printf("  shed events %.1f%% (%d)\n", 100*res.ShedEventRatio(), res.ShedEvents)
		fmt.Printf("  shed PMs    %.1f%% (%d of %d)\n",
			100*res.ShedPMRatio(), res.Stats.DroppedPMs, res.Stats.CreatedPMs)
	}

	if *useRT {
		runner.runWallclock(*strategy, *bound, *seed, *shards, truth)
	}
}

// runWallclock routes the workload through the sharded wall-clock
// runtime: first an unshedded pass to calibrate the wall-clock bound at
// the same fraction the virtual run used, then the strategy pass. Both
// latency domains end up side by side in the output.
func (r *runner) runWallclock(name string, frac float64, seed int64, shards int, truth *metrics.RunResult) {
	feed := func(factory func(int) shed.Strategy) (rtime.Snapshot, metrics.MatchSet, time.Duration) {
		rt := rtime.New(r.m, rtime.Config{
			Shards:           shards,
			NewStrategy:      factory,
			CollectMatches:   true,
			DeferredNegation: r.m.Query.HasNegation(),
		})
		start := time.Now()
		for _, e := range r.work {
			rt.Offer(e)
		}
		rt.Close()
		elapsed := time.Since(start)
		return rt.Snapshot(), metrics.Keys(rt.MatchKeys()), elapsed
	}

	base, baseMatches, baseElapsed := feed(nil)
	baseStat := wallStat(r.stat, base)
	fmt.Printf("\nwall-clock runtime (%d shards, key %q):\n", shards, rtime.InferPartitionKey(r.m.Query))
	fmt.Printf("  unshedded   %s %s, %d matches, %.0f events/s wall\n",
		r.stat, baseStat, base.Matches, float64(base.EventsIn)/baseElapsed.Seconds())
	fmt.Printf("  recall vs virtual truth %.1f%%\n",
		100*metrics.Recall(truth.MatchSet(), baseMatches))
	if name == "None" {
		return
	}

	wallBound := event.Time(frac * float64(baseStat.Nanoseconds()))
	factory := func(i int) shed.Strategy { return r.buildStrategy(name, wallBound, seed+int64(i), true) }
	snap, got, elapsed := feed(factory)
	fmt.Printf("\n  strategy %s at %.0f%% wall %s bound (%s):\n", name, frac*100, r.stat, time.Duration(wallBound))
	fmt.Printf("    recall      %.1f%%\n", 100*metrics.Recall(truth.MatchSet(), got))
	fmt.Printf("    wall rate   %.0f events/s\n", float64(snap.EventsIn)/elapsed.Seconds())
	fmt.Printf("    latency     p50 %s  p95 %s  p99 %s (virtual run: %s)\n",
		snap.P50, snap.P95, snap.P99, r.stat.Of(r.truth().Latency))
	fmt.Printf("    shed events %.1f%% (%d)\n", 100*snap.InputShedRatio, snap.EventsShed)
	fmt.Printf("    shed PMs    %.1f%% (%d of %d)\n",
		100*snap.PMShedRatio, snap.DroppedPMs, snap.CreatedPMs)
}

// wallStat maps the bound statistic onto a wall-clock snapshot.
func wallStat(stat metrics.BoundStat, s rtime.Snapshot) time.Duration {
	switch stat {
	case metrics.BoundP95:
		return s.P95
	case metrics.BoundP99:
		return s.P99
	default:
		return s.MeanLatency
	}
}

// runner lazily builds strategies over one configuration, mirroring the
// experiment harness.
type runner struct {
	m          *nfa.Machine
	train      event.Stream
	work       event.Stream
	stat       metrics.BoundStat
	truthCache *metrics.RunResult
	sel        *baseline.Selectivity
	model      *core.Model
}

func newRunner(m *nfa.Machine, train, work event.Stream, stat metrics.BoundStat) *runner {
	return &runner{m: m, train: train, work: work, stat: stat}
}

func (r *runner) truth() *metrics.RunResult {
	if r.truthCache == nil {
		r.truthCache = metrics.Run(r.m, r.work, metrics.RunConfig{
			BoundStat: r.stat, DeferredNegation: r.m.Query.HasNegation(),
		})
	}
	return r.truthCache
}

func (r *runner) boundAt(frac float64) event.Time {
	return event.Time(frac * float64(r.stat.Of(r.truth().Latency)))
}

func (r *runner) run(name string, frac float64, seed int64) *metrics.RunResult {
	strat := r.buildStrategy(name, r.boundAt(frac), seed, false)
	return metrics.Run(r.m, r.work, metrics.RunConfig{
		Strategy: strat, BoundStat: r.stat, DeferredNegation: r.m.Query.HasNegation(),
	})
}

// buildStrategy constructs a fresh strategy instance for the given
// latency bound — virtual time for metrics.Run, wall-clock nanoseconds
// for the sharded runtime (the unit maps 1:1). freshModel forces a
// per-call cost model: the online adapter mutates it, so concurrent
// shards must never share one instance.
func (r *runner) buildStrategy(name string, bound event.Time, seed int64, freshModel bool) shed.Strategy {
	var strat shed.Strategy
	switch name {
	case "RI":
		strat = baseline.NewRandomInput(bound, seed)
	case "SI":
		if r.sel == nil {
			r.sel = baseline.EstimateSelectivity(r.m, r.train)
		}
		strat = baseline.NewSelectivityInput(r.sel, bound, seed)
	case "PI":
		strat = baseline.NewPositionInput(
			baseline.EstimatePositionUtility(r.m, r.train), bound, seed)
	case "RS":
		strat = baseline.NewRandomState(bound, seed)
	case "SS":
		if r.sel == nil {
			r.sel = baseline.EstimateSelectivity(r.m, r.train)
		}
		strat = baseline.NewSelectivityState(r.sel, bound, seed)
	case "Hybrid", "HyI", "HyS":
		model := r.model
		if model == nil || freshModel {
			model = core.MustTrain(r.m, r.train, core.TrainConfig{
				Slices: 4, Seed: 1, DeferredNegation: r.m.Query.HasNegation(),
			})
			if !freshModel {
				r.model = model
			}
		}
		mode := core.ModeHybrid
		if name == "HyI" {
			mode = core.ModeInputOnly
		} else if name == "HyS" {
			mode = core.ModeStateOnly
		}
		strat = core.NewHybrid(model, core.Config{Bound: bound, Mode: mode, Adapt: true})
	default:
		fmt.Fprintf(os.Stderr, "ceprun: unknown strategy %q\n", name)
		os.Exit(2)
	}
	return strat
}

// streams returns training and workload streams plus the default query.
func streams(dataset string, events int, seed int64) (train, work event.Stream, defQuery string) {
	switch dataset {
	case "ds1":
		train = gen.DS1(gen.DS1Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS1(gen.DS1Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q1("8ms").Raw
	case "ds2":
		train = gen.DS2(gen.DS2Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS2(gen.DS2Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q3("8ms").Raw
	case "citibike":
		train = citibike.Generate(citibike.Config{Trips: events / 2, Seed: seed + 1000})
		work = citibike.Generate(citibike.Config{Trips: events, Seed: seed})
		defQuery = query.HotPaths("5 min", 2, 5).Raw
	case "gcluster":
		cfg := gcluster.Config{Tasks: events / 4, MeanGap: 120 * event.Millisecond, StepGap: 400 * event.Millisecond}
		cfg.Seed = seed + 1000
		train = gcluster.Generate(cfg)
		cfg.Seed = seed
		work = gcluster.Generate(cfg)
		defQuery = query.ClusterTasks("1 min").Raw
	default:
		fmt.Fprintf(os.Stderr, "ceprun: unknown dataset %q\n", dataset)
		os.Exit(2)
	}
	return train, work, defQuery
}
