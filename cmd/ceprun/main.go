// Command ceprun evaluates an ad-hoc CEP query over a generated dataset
// under a chosen shedding strategy and reports recall, throughput,
// latency, and shed ratios.
//
// Examples:
//
//	ceprun -dataset ds1 -events 20000 \
//	  -query 'PATTERN SEQ(A a, B b, C c) WHERE a.ID=b.ID AND a.ID=c.ID AND a.V+b.V=c.V WITHIN 8ms' \
//	  -strategy Hybrid -bound 0.5
//
//	ceprun -dataset citibike -strategy SS -bound 0.2 -stat p99
package main

import (
	"flag"
	"fmt"
	"os"

	"cepshed/internal/baseline"
	"cepshed/internal/citibike"
	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

func main() {
	var (
		dataset  = flag.String("dataset", "ds1", "dataset: ds1, ds2, citibike, gcluster")
		events   = flag.Int("events", 20000, "stream length (trips/tasks for the case studies)")
		seed     = flag.Int64("seed", 1, "generator seed")
		querySrc = flag.String("query", "", "query text (default: the paper query for the dataset)")
		strategy = flag.String("strategy", "Hybrid", "None, RI, SI, PI, RS, SS, Hybrid, HyI, HyS")
		explain  = flag.Bool("explain", false, "print the compiled automaton plan and exit")
		bound    = flag.Float64("bound", 0.5, "latency bound as a fraction of the unshedded latency")
		stat     = flag.String("stat", "avg", "latency statistic the bound applies to: avg, p95, p99")
	)
	flag.Parse()

	train, work, defQuery := streams(*dataset, *events, *seed)
	src := *querySrc
	if src == "" {
		src = defQuery
	}
	q, err := query.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceprun:", err)
		os.Exit(2)
	}
	m, err := nfa.Compile(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceprun:", err)
		os.Exit(2)
	}
	if *explain {
		fmt.Print(m.Explain())
		return
	}

	var boundStat metrics.BoundStat
	switch *stat {
	case "p95":
		boundStat = metrics.BoundP95
	case "p99":
		boundStat = metrics.BoundP99
	default:
		boundStat = metrics.BoundMean
	}

	runner := newRunner(m, train, work, boundStat)
	truth := runner.truth()
	fmt.Printf("query: %s\n", q)
	fmt.Printf("stream: %d events over %s\n", len(work), work.Duration())
	fmt.Printf("unshedded: %d matches, %s latency %s, throughput %.0f events/s\n",
		len(truth.Matches), boundStat, boundStat.Of(truth.Latency), truth.Throughput)

	if *strategy == "None" {
		return
	}
	res := runner.run(*strategy, *bound, *seed)
	fmt.Printf("\nstrategy %s at %.0f%% %s-latency bound:\n", res.Strategy, *bound*100, boundStat)
	fmt.Printf("  recall      %.1f%%\n", 100*metrics.Recall(truth.MatchSet(), res.MatchSet()))
	if q.HasNegation() {
		fmt.Printf("  precision   %.1f%%\n", 100*metrics.Precision(truth.MatchSet(), res.MatchSet()))
	}
	fmt.Printf("  throughput  %.0f events/s\n", res.Throughput)
	fmt.Printf("  latency     %s (bound %s)\n", boundStat.Of(res.Latency), runner.boundAt(*bound))
	fmt.Printf("  shed events %.1f%% (%d)\n", 100*res.ShedEventRatio(), res.ShedEvents)
	fmt.Printf("  shed PMs    %.1f%% (%d of %d)\n",
		100*res.ShedPMRatio(), res.Stats.DroppedPMs, res.Stats.CreatedPMs)
}

// runner lazily builds strategies over one configuration, mirroring the
// experiment harness.
type runner struct {
	m          *nfa.Machine
	train      event.Stream
	work       event.Stream
	stat       metrics.BoundStat
	truthCache *metrics.RunResult
	sel        *baseline.Selectivity
	model      *core.Model
}

func newRunner(m *nfa.Machine, train, work event.Stream, stat metrics.BoundStat) *runner {
	return &runner{m: m, train: train, work: work, stat: stat}
}

func (r *runner) truth() *metrics.RunResult {
	if r.truthCache == nil {
		r.truthCache = metrics.Run(r.m, r.work, metrics.RunConfig{
			BoundStat: r.stat, DeferredNegation: r.m.Query.HasNegation(),
		})
	}
	return r.truthCache
}

func (r *runner) boundAt(frac float64) event.Time {
	return event.Time(frac * float64(r.stat.Of(r.truth().Latency)))
}

func (r *runner) run(name string, frac float64, seed int64) *metrics.RunResult {
	bound := r.boundAt(frac)
	var strat shed.Strategy
	switch name {
	case "RI":
		strat = baseline.NewRandomInput(bound, seed)
	case "SI":
		if r.sel == nil {
			r.sel = baseline.EstimateSelectivity(r.m, r.train)
		}
		strat = baseline.NewSelectivityInput(r.sel, bound, seed)
	case "PI":
		strat = baseline.NewPositionInput(
			baseline.EstimatePositionUtility(r.m, r.train), bound, seed)
	case "RS":
		strat = baseline.NewRandomState(bound, seed)
	case "SS":
		if r.sel == nil {
			r.sel = baseline.EstimateSelectivity(r.m, r.train)
		}
		strat = baseline.NewSelectivityState(r.sel, bound, seed)
	case "Hybrid", "HyI", "HyS":
		if r.model == nil {
			r.model = core.MustTrain(r.m, r.train, core.TrainConfig{
				Slices: 4, Seed: 1, DeferredNegation: r.m.Query.HasNegation(),
			})
		}
		mode := core.ModeHybrid
		if name == "HyI" {
			mode = core.ModeInputOnly
		} else if name == "HyS" {
			mode = core.ModeStateOnly
		}
		strat = core.NewHybrid(r.model, core.Config{Bound: bound, Mode: mode, Adapt: true})
	default:
		fmt.Fprintf(os.Stderr, "ceprun: unknown strategy %q\n", name)
		os.Exit(2)
	}
	return metrics.Run(r.m, r.work, metrics.RunConfig{
		Strategy: strat, BoundStat: r.stat, DeferredNegation: r.m.Query.HasNegation(),
	})
}

// streams returns training and workload streams plus the default query.
func streams(dataset string, events int, seed int64) (train, work event.Stream, defQuery string) {
	switch dataset {
	case "ds1":
		train = gen.DS1(gen.DS1Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS1(gen.DS1Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q1("8ms").Raw
	case "ds2":
		train = gen.DS2(gen.DS2Config{Events: events / 2, Seed: seed + 1000, InterArrival: 15 * event.Microsecond})
		work = gen.DS2(gen.DS2Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
		defQuery = query.Q3("8ms").Raw
	case "citibike":
		train = citibike.Generate(citibike.Config{Trips: events / 2, Seed: seed + 1000})
		work = citibike.Generate(citibike.Config{Trips: events, Seed: seed})
		defQuery = query.HotPaths("5 min", 2, 5).Raw
	case "gcluster":
		cfg := gcluster.Config{Tasks: events / 4, MeanGap: 120 * event.Millisecond, StepGap: 400 * event.Millisecond}
		cfg.Seed = seed + 1000
		train = gcluster.Generate(cfg)
		cfg.Seed = seed
		work = gcluster.Generate(cfg)
		defQuery = query.ClusterTasks("1 min").Raw
	default:
		fmt.Fprintf(os.Stderr, "ceprun: unknown dataset %q\n", dataset)
		os.Exit(2)
	}
	return train, work, defQuery
}
