// Cluster monitoring: detect tasks that are scheduled and evicted on two
// machines and then fail on a third (Listing 3 of the paper) over a
// simulated scheduler trace with an eviction storm, comparing all
// shedding strategies at one latency bound.
package main

import (
	"fmt"

	"cepshed"
)

func main() {
	q := cepshed.ClusterTasks("1 min")
	sys := cepshed.MustCompile(q)

	cfg := cepshed.ClusterTraceConfig{
		Tasks:   5000,
		MeanGap: 120 * cepshed.Millisecond,
		StepGap: 400 * cepshed.Millisecond,
	}
	cfg.Seed = 61
	training := cepshed.ClusterTrace(cfg)
	cfg.Seed = 62
	work := cepshed.ClusterTrace(cfg)

	truth := sys.Run(work, cepshed.RunOptions{})
	fmt.Printf("task-failure chains without shedding: %d matches, mean latency %v\n",
		len(truth.Matches), truth.Latency.Mean())

	bound := cepshed.Time(0.3 * float64(truth.Latency.Mean()))
	model := sys.MustTrain(training, cepshed.TrainConfig{})
	sel := sys.EstimateSelectivity(training)

	strategies := []cepshed.Strategy{
		cepshed.NewRandomInput(bound, 7),
		cepshed.NewSelectivityInput(sel, bound, 7),
		cepshed.NewRandomState(bound, 7),
		cepshed.NewSelectivityState(sel, bound, 7),
		sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, Adapt: true}),
	}
	fmt.Printf("\nat a %v mean-latency bound:\n", bound)
	for _, s := range strategies {
		res := sys.Run(work, cepshed.RunOptions{Strategy: s})
		status := "meets bound"
		if res.Latency.Mean() > bound {
			status = "VIOLATES bound"
		}
		fmt.Printf("  %-7s recall %5.1f%%  throughput %8.0f ev/s  latency %-8v %s\n",
			res.Strategy,
			100*cepshed.Recall(truth.MatchSet(), res.MatchSet()),
			res.Throughput, res.Latency.Mean(), status)
	}
}
