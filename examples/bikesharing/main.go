// Bike sharing: detect "hot paths" — chains of trips of the same bike
// ending at popular stations (Listing 1 of the paper) — on a bursty trip
// stream, keeping the 99th-percentile detection latency bounded by
// shedding load during the burst.
package main

import (
	"fmt"

	"cepshed"
)

func main() {
	// Chains of 2-4 connected trips of one bike, followed by a trip of
	// that bike ending at stations 7-9.
	q := cepshed.HotPaths("3 min", 2, 4)
	sys := cepshed.MustCompile(q)

	// The simulator produces a mid-stream burst: 6x the trip rate with
	// destinations skewed toward the hot stations — the partial-match
	// spike of the paper's Fig 1.
	training := cepshed.CitiBike(cepshed.CitiBikeConfig{Trips: 6000, Seed: 51})
	work := cepshed.CitiBike(cepshed.CitiBikeConfig{Trips: 10000, Seed: 52})

	truth := sys.Run(work, cepshed.RunOptions{
		BoundStat:      cepshed.BoundP99,
		SamplePMsEvery: len(work) / 10,
	})
	fmt.Printf("hot paths without shedding: %d matches, p99 latency %v\n",
		len(truth.Matches), truth.Latency.Percentile(99))
	fmt.Println("live partial matches over time (note the burst):")
	for _, s := range truth.PMSamples {
		fmt.Printf("  t=%-8v %6d PMs\n", s.Time, s.Count)
	}

	// Bound the mean latency to half the unshedded value: the mean is
	// dominated by the burst, so this forces shedding exactly when the
	// partial-match spike hits. (The paper's Fig 15 bounds the p99; run
	// `cepbench -fig fig15` for that comparison across all strategies.)
	model := sys.MustTrain(training, cepshed.TrainConfig{})
	bound := truth.Latency.Mean() / 2
	hybrid := sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, Adapt: true})
	res := sys.Run(work, cepshed.RunOptions{Strategy: hybrid})

	fmt.Printf("\nhybrid @ mean bound %v: recall %.1f%%, mean latency %v (p99 %v)\n",
		bound,
		100*cepshed.Recall(truth.MatchSet(), res.MatchSet()),
		res.Latency.Mean(), res.Latency.Percentile(99))
	fmt.Printf("  shed %.1f%% of trips and %.1f%% of partial matches\n",
		100*res.ShedEventRatio(), 100*res.ShedPMRatio())
}
