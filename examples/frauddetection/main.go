// Fraud detection: the introduction's motivating scenario — card
// transactions must be cleared or flagged within a tight latency bound,
// and during sudden overload (a data breach being exploited) the system
// must keep detecting as many suspicious patterns as possible rather than
// stall or deny everything.
//
// The query flags a card used in three different cities within a short
// window with rising amounts — a classic travel-fraud signature.
package main

import (
	"fmt"
	"math/rand"

	"cepshed"
)

func main() {
	// The bounded Kleene keeps exhaustive skip-till-any-match tractable:
	// every event is a Txn, so unbounded closure would branch
	// exponentially during the attack burst.
	q := cepshed.MustParseQuery(`
		PATTERN SEQ(Txn t1, Txn+ t2[]{1,2}, Txn t3)
		WHERE t2[i].card = t1.card
		AND t2[i+1].city != t2[i].city
		AND t3.card = t1.card AND t3.city != t1.city
		AND t3.amount >= t1.amount
		WITHIN 10ms`)
	sys := cepshed.MustCompile(q)

	training := txnStream(10000, 1, 0.002)
	// The attack window more than doubles the transaction rate.
	work := txnStream(20000, 2, 0.01)

	truth := sys.Run(work, cepshed.RunOptions{})
	fmt.Printf("without shedding: %d suspicious patterns, mean latency %v\n",
		len(truth.Matches), truth.Latency.Mean())

	// Fraud decisions are worthless when late: bound the mean latency.
	bound := truth.Latency.Mean() / 2
	model := sys.MustTrain(training, cepshed.TrainConfig{})
	hybrid := sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, Adapt: true})
	res := sys.Run(work, cepshed.RunOptions{Strategy: hybrid})
	fmt.Printf("hybrid @ %v bound: recall %.1f%%, mean latency %v, throughput %.0f txn/s\n",
		bound,
		100*cepshed.Recall(truth.MatchSet(), res.MatchSet()),
		res.Latency.Mean(), res.Throughput)

	// Denying everything (shedding all input) keeps latency trivially low
	// but detects nothing — the failure mode the paper's fraud scenario
	// rules out.
	fmt.Printf("matches found under pressure: %d of %d\n", len(res.Matches), len(truth.Matches))
}

// txnStream generates card transactions; fraudFrac of the cards hop
// between cities with rising amounts.
func txnStream(n int, seed int64, fraudFrac float64) cepshed.Stream {
	rng := rand.New(rand.NewSource(seed))
	var b cepshed.StreamBuilder
	t := cepshed.Time(0)
	cards := 400
	fraudCards := map[int64]bool{}
	for c := int64(0); c < int64(cards); c++ {
		if rng.Float64() < fraudFrac*20 {
			fraudCards[c] = true
		}
	}
	for i := 0; i < n; i++ {
		gap := 12 * cepshed.Microsecond
		if i > n/3 && i < 2*n/3 {
			gap = 5 * cepshed.Microsecond // attack burst
		}
		t += cepshed.Time(float64(gap) * (0.5 + rng.Float64()))
		card := int64(rng.Intn(cards))
		city := int64(rng.Intn(3))
		amount := 10 + rng.Float64()*90
		if fraudCards[card] && rng.Float64() < 0.5 {
			city = int64(rng.Intn(20))
			amount = 100 + rng.Float64()*900
		}
		b.Append(cepshed.NewEvent("Txn", t, map[string]cepshed.Value{
			"card":   cepshed.Int(card),
			"city":   cepshed.Int(city),
			"amount": cepshed.Float(amount),
		}))
	}
	return b.Finish()
}
