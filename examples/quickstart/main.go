// Quickstart: parse a pattern query, generate a synthetic stream, run it
// without shedding to get the ground truth, then run it again overloaded
// under the hybrid load shedder and compare result quality.
package main

import (
	"fmt"

	"cepshed"
)

func main() {
	// A three-step correlation query: an A, then a B with the same ID,
	// then a C whose V is the sum of the first two, all within 8ms.
	q := cepshed.MustParseQuery(`
		PATTERN SEQ(A a, B b, C c)
		WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V
		WITHIN 8ms`)
	sys := cepshed.MustCompile(q)

	// A dense DS1 stream: at a 15us mean inter-arrival the engine cannot
	// keep up with the partial-match load, so latency grows without
	// shedding.
	training := cepshed.DS1(cepshed.DS1Config{Events: 10000, Seed: 41, InterArrival: 15 * cepshed.Microsecond})
	work := cepshed.DS1(cepshed.DS1Config{Events: 20000, Seed: 42, InterArrival: 15 * cepshed.Microsecond})

	// Ground truth: no shedding, unbounded latency.
	truth := sys.Run(work, cepshed.RunOptions{})
	fmt.Printf("without shedding: %d matches, mean latency %v, throughput %.0f events/s\n",
		len(truth.Matches), truth.Latency.Mean(), truth.Throughput)

	// Train the cost model on historic data, then bound the average
	// latency to half of the unshedded value.
	model := sys.MustTrain(training, cepshed.TrainConfig{})
	bound := truth.Latency.Mean() / 2
	hybrid := sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, Adapt: true})

	res := sys.Run(work, cepshed.RunOptions{Strategy: hybrid})
	fmt.Printf("hybrid @ %v bound: recall %.1f%%, mean latency %v, throughput %.0f events/s\n",
		bound,
		100*cepshed.Recall(truth.MatchSet(), res.MatchSet()),
		res.Latency.Mean(), res.Throughput)
	fmt.Printf("  shed %.1f%% of events and %.1f%% of partial matches\n",
		100*res.ShedEventRatio(), 100*res.ShedPMRatio())

	// Compare against random input shedding at the same bound.
	ri := cepshed.NewRandomInput(bound, 1)
	res2 := sys.Run(work, cepshed.RunOptions{Strategy: ri})
	fmt.Printf("random input shedding: recall %.1f%%, mean latency %v\n",
		100*cepshed.Recall(truth.MatchSet(), res2.MatchSet()), res2.Latency.Mean())
}
