package cepshed_test

import (
	"testing"

	"cepshed"
)

// The facade test exercises the public API end to end the way a
// downstream user would: parse, compile, generate, train, shed, measure.
func TestPublicAPIEndToEnd(t *testing.T) {
	q := cepshed.Q1("8ms")
	sys := cepshed.MustCompile(q)

	training := cepshed.DS1(cepshed.DS1Config{
		Events: 3000, Seed: 1, InterArrival: 30 * cepshed.Microsecond,
	})
	work := cepshed.DS1(cepshed.DS1Config{
		Events: 5000, Seed: 2, InterArrival: 15 * cepshed.Microsecond,
	})

	truth := sys.Run(work, cepshed.RunOptions{})
	if len(truth.Matches) == 0 {
		t.Fatal("no ground-truth matches")
	}

	model := sys.MustTrain(training, cepshed.TrainConfig{})
	bound := truth.Latency.Mean() / 2
	hybrid := sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, Adapt: true})
	res := sys.Run(work, cepshed.RunOptions{Strategy: hybrid})

	recall := cepshed.Recall(truth.MatchSet(), res.MatchSet())
	if recall <= 0.5 {
		t.Errorf("hybrid recall = %.3f, suspiciously low", recall)
	}
	if res.Latency.Mean() >= truth.Latency.Mean() {
		t.Errorf("shedding did not reduce latency: %v >= %v",
			res.Latency.Mean(), truth.Latency.Mean())
	}
	if res.Throughput <= truth.Throughput {
		t.Error("shedding did not raise throughput")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	sys := cepshed.MustCompile(cepshed.Q1("8ms"))
	training := cepshed.DS1(cepshed.DS1Config{
		Events: 2000, Seed: 3, InterArrival: 30 * cepshed.Microsecond,
	})
	work := cepshed.DS1(cepshed.DS1Config{
		Events: 2000, Seed: 4, InterArrival: 30 * cepshed.Microsecond,
	})
	sel := sys.EstimateSelectivity(training)
	pos := sys.EstimatePositionUtility(training)
	model := sys.MustTrain(training, cepshed.TrainConfig{})
	bound := 10 * cepshed.Microsecond
	strategies := []cepshed.Strategy{
		cepshed.NoShedding(),
		cepshed.NewPositionInput(pos, bound, 1),
		cepshed.NewRandomInput(bound, 1),
		cepshed.NewSelectivityInput(sel, bound, 1),
		cepshed.NewRandomState(bound, 1),
		cepshed.NewSelectivityState(sel, bound, 1),
		sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound}),
		sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, InputOnly: true}),
		sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, StateOnly: true, Greedy: true}),
		sys.NewFixedRatioHybrid(model, 0.2, true, 1),
	}
	for _, s := range strategies {
		res := sys.Run(work, cepshed.RunOptions{Strategy: s})
		if res.Events != len(work) {
			t.Errorf("%s: events = %d", s.Name(), res.Events)
		}
	}
}

func TestPublicAPIQueriesAndGenerators(t *testing.T) {
	for _, q := range []*cepshed.Query{
		cepshed.Q1("8ms"), cepshed.Q2("1ms", 1, 2), cepshed.Q3("8ms"),
		cepshed.Q4("8ms"), cepshed.HotPaths("5 min", 2, 5), cepshed.ClusterTasks("1 min"),
	} {
		if _, err := cepshed.Compile(q); err != nil {
			t.Errorf("compile %s: %v", q, err)
		}
	}
	if len(cepshed.DS2(cepshed.DS2Config{Events: 100, Seed: 1})) != 100 {
		t.Error("DS2 length")
	}
	if len(cepshed.CitiBike(cepshed.CitiBikeConfig{Trips: 100, Seed: 1})) != 100 {
		t.Error("CitiBike length")
	}
	if len(cepshed.ClusterTrace(cepshed.ClusterTraceConfig{Tasks: 50, Seed: 1})) == 0 {
		t.Error("ClusterTrace empty")
	}
	if _, err := cepshed.ParseQuery("garbage"); err == nil {
		t.Error("ParseQuery must reject garbage")
	}
}

func TestPublicAPINegationPrecision(t *testing.T) {
	sys := cepshed.MustCompile(cepshed.Q4("8ms"))
	work := cepshed.DS1(cepshed.DS1Config{
		Events: 3000, Seed: 5, InterArrival: 30 * cepshed.Microsecond, BProb: 0.3,
	})
	training := cepshed.DS1(cepshed.DS1Config{
		Events: 3000, Seed: 6, InterArrival: 30 * cepshed.Microsecond, BProb: 0.3,
	})
	truth := sys.Run(work, cepshed.RunOptions{DeferredNegation: true})
	model := sys.MustTrain(training, cepshed.TrainConfig{DeferredNegation: true})
	strat := sys.NewFixedRatioHybrid(model, 0.3, false, 1)
	res := sys.Run(work, cepshed.RunOptions{Strategy: strat, DeferredNegation: true})
	prec := cepshed.Precision(truth.MatchSet(), res.MatchSet())
	rec := cepshed.Recall(truth.MatchSet(), res.MatchSet())
	t.Logf("negation under shedding: precision=%.3f recall=%.3f", prec, rec)
	if rec < 0.5 {
		t.Errorf("recall = %.3f collapsed", rec)
	}
}
