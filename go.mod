module cepshed

go 1.22
