package cepshed_test

import (
	"fmt"

	"cepshed"
)

// ExampleParseQuery shows parsing and inspecting a pattern query.
func ExampleParseQuery() {
	q, err := cepshed.ParseQuery(`
		PATTERN SEQ(A a, B b)
		WHERE a.ID = b.ID
		WITHIN 4ms`)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(q.Pattern), "components, window", q.Window.Duration)
	// Output: 2 components, window 4ms
}

// ExampleSystem_Run processes a hand-built stream and prints the matches.
func ExampleSystem_Run() {
	sys := cepshed.MustCompile(cepshed.MustParseQuery(`
		PATTERN SEQ(Order o, Ship s)
		WHERE o.id = s.id
		WITHIN 10ms`))

	var b cepshed.StreamBuilder
	b.Add(cepshed.NewEvent("Order", 1*cepshed.Millisecond,
		map[string]cepshed.Value{"id": cepshed.Int(7)}))
	b.Add(cepshed.NewEvent("Ship", 3*cepshed.Millisecond,
		map[string]cepshed.Value{"id": cepshed.Int(7)}))
	res := sys.Run(b.Finish(), cepshed.RunOptions{})

	fmt.Println("matches:", len(res.Matches))
	// Output: matches: 1
}

// ExampleSystem_NewHybrid trains the cost model and sheds under a bound.
func ExampleSystem_NewHybrid() {
	sys := cepshed.MustCompile(cepshed.Q1("8ms"))
	training := cepshed.DS1(cepshed.DS1Config{
		Events: 2000, Seed: 1, InterArrival: 30 * cepshed.Microsecond})
	work := cepshed.DS1(cepshed.DS1Config{
		Events: 3000, Seed: 2, InterArrival: 15 * cepshed.Microsecond})

	truth := sys.Run(work, cepshed.RunOptions{})
	model := sys.MustTrain(training, cepshed.TrainConfig{})
	hybrid := sys.NewHybrid(model, cepshed.HybridConfig{
		Bound: truth.Latency.Mean() / 2, Adapt: true})
	res := sys.Run(work, cepshed.RunOptions{Strategy: hybrid})

	fmt.Println("latency reduced:", res.Latency.Mean() < truth.Latency.Mean())
	// Output: latency reduced: true
}
