// Package vclock implements the deterministic virtual-time latency model.
//
// The CEP engine reports per-event work in abstract cost units (one unit is
// one virtual nanosecond). A single-server queue turns arrival times and
// work into completion times and latencies:
//
//	start(k) = max(arrival(k), done(k-1))
//	done(k)  = start(k) + work(k)
//	lat(k)   = done(k) - arrival(k)
//
// This reproduces the overload dynamics of the paper's wall-clock setup —
// a spike in partial matches inflates work, the queue backs up, latency
// rises — while remaining fully reproducible. Latency is smoothed as a
// sliding average over a fixed interval, as the paper prescribes (§III-A),
// and window percentiles (95th/99th) are available for figures that bound
// tail latency.
package vclock

import (
	"sort"

	"cepshed/internal/event"
)

// Cost is an amount of virtual work, in virtual nanoseconds.
type Cost int64

// Server simulates a single-server FIFO queue in virtual time.
// The zero Server is ready to use.
type Server struct {
	done event.Time // completion time of the last processed event
	busy event.Time // accumulated service (busy) time
	n    uint64     // events processed
}

// Process services one event that arrived at the given time and required
// the given work, returning its latency (completion minus arrival).
func (s *Server) Process(arrival event.Time, work Cost) event.Time {
	start := arrival
	if s.done > start {
		start = s.done
	}
	s.done = start + event.Time(work)
	s.busy += event.Time(work)
	s.n++
	return s.done - arrival
}

// AddWork charges extra service time (e.g. shedding-decision overhead)
// without counting an event: it delays everything queued behind it.
func (s *Server) AddWork(work Cost) {
	s.done += event.Time(work)
	s.busy += event.Time(work)
}

// Done returns the completion time of the most recently processed event.
func (s *Server) Done() event.Time { return s.done }

// BusyTime returns the total virtual service time accumulated so far.
func (s *Server) BusyTime() event.Time { return s.busy }

// Processed returns the number of events processed so far.
func (s *Server) Processed() uint64 { return s.n }

// Throughput returns processed events per virtual second of busy time.
// It reports 0 before any work has been recorded.
func (s *Server) Throughput() float64 {
	if s.busy == 0 {
		return 0
	}
	return float64(s.n) / (float64(s.busy) / float64(event.Second))
}

// SlidingStats tracks latency samples over a fixed-size sliding window and
// exposes the smoothed mean and window percentiles. Percentiles are
// recomputed lazily at most every refresh insertions, amortizing the sort.
type SlidingStats struct {
	window  []float64
	next    int
	filled  bool
	sum     float64
	refresh int
	since   int
	sorted  []float64
	dirty   bool
}

// NewSlidingStats returns stats over the given window size (samples).
// The paper smooths over 1,000 measurements; that is the recommended size.
func NewSlidingStats(size int) *SlidingStats {
	if size <= 0 {
		size = 1
	}
	refresh := size / 16
	if refresh < 1 {
		refresh = 1
	}
	return &SlidingStats{
		window:  make([]float64, size),
		refresh: refresh,
		sorted:  make([]float64, 0, size),
		dirty:   true,
	}
}

// Add records one latency sample.
func (st *SlidingStats) Add(lat event.Time) {
	v := float64(lat)
	if st.filled {
		st.sum -= st.window[st.next]
	}
	st.window[st.next] = v
	st.sum += v
	st.next++
	if st.next == len(st.window) {
		st.next = 0
		st.filled = true
	}
	st.since++
	if st.since >= st.refresh {
		st.dirty = true
	}
}

// Count returns the number of live samples in the window.
func (st *SlidingStats) Count() int {
	if st.filled {
		return len(st.window)
	}
	return st.next
}

// Mean returns the sliding average latency, 0 with no samples.
func (st *SlidingStats) Mean() event.Time {
	n := st.Count()
	if n == 0 {
		return 0
	}
	return event.Time(st.sum / float64(n))
}

// Percentile returns the p-th percentile (0 < p <= 100) of the window,
// refreshed lazily. Returns 0 with no samples.
func (st *SlidingStats) Percentile(p float64) event.Time {
	n := st.Count()
	if n == 0 {
		return 0
	}
	if st.dirty {
		st.sorted = st.sorted[:0]
		if st.filled {
			st.sorted = append(st.sorted, st.window...)
		} else {
			st.sorted = append(st.sorted, st.window[:st.next]...)
		}
		sort.Float64s(st.sorted)
		st.dirty = false
		st.since = 0
	}
	if p <= 0 {
		return event.Time(st.sorted[0])
	}
	idx := int(p/100*float64(len(st.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(st.sorted) {
		idx = len(st.sorted) - 1
	}
	return event.Time(st.sorted[idx])
}

// Reset clears all samples.
func (st *SlidingStats) Reset() {
	st.next = 0
	st.filled = false
	st.sum = 0
	st.since = 0
	st.dirty = true
}
