package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cepshed/internal/event"
)

func TestServerIdleArrival(t *testing.T) {
	var s Server
	// First event arrives at t=100, needs 10 units: latency is the work.
	if lat := s.Process(100, 10); lat != 10 {
		t.Errorf("latency = %d, want 10", lat)
	}
	if s.Done() != 110 {
		t.Errorf("done = %d, want 110", s.Done())
	}
}

func TestServerQueueing(t *testing.T) {
	var s Server
	s.Process(0, 100)
	// Second event arrives at t=10 but the server is busy until 100.
	if lat := s.Process(10, 5); lat != 95 {
		t.Errorf("queued latency = %d, want 95", lat)
	}
}

func TestServerThroughputAndBusy(t *testing.T) {
	var s Server
	s.Process(0, Cost(event.Second/2))
	s.Process(0, Cost(event.Second/2))
	if s.BusyTime() != event.Second {
		t.Errorf("busy = %v", s.BusyTime())
	}
	if got := s.Throughput(); got != 2 {
		t.Errorf("throughput = %v events/s, want 2", got)
	}
	if s.Processed() != 2 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestServerZeroWork(t *testing.T) {
	var s Server
	if s.Throughput() != 0 {
		t.Error("throughput before any work must be 0")
	}
	if lat := s.Process(50, 0); lat != 0 {
		t.Errorf("zero-work latency = %d", lat)
	}
}

// Property: latency is never negative and completion times never decrease.
func TestServerMonotoneCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Server
		var arrival event.Time
		prevDone := event.Time(0)
		for i := 0; i < 100; i++ {
			arrival += event.Time(rng.Int63n(50))
			lat := s.Process(arrival, Cost(rng.Int63n(100)))
			if lat < 0 || s.Done() < prevDone {
				return false
			}
			prevDone = s.Done()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlidingStatsMean(t *testing.T) {
	st := NewSlidingStats(4)
	for _, v := range []event.Time{10, 20, 30, 40} {
		st.Add(v)
	}
	if st.Mean() != 25 {
		t.Errorf("mean = %d, want 25", st.Mean())
	}
	// Window slides: 10 drops out, 50 enters -> mean of {20,30,40,50} = 35.
	st.Add(50)
	if st.Mean() != 35 {
		t.Errorf("sliding mean = %d, want 35", st.Mean())
	}
	if st.Count() != 4 {
		t.Errorf("count = %d", st.Count())
	}
}

func TestSlidingStatsPartialWindow(t *testing.T) {
	st := NewSlidingStats(100)
	st.Add(10)
	st.Add(30)
	if st.Count() != 2 {
		t.Errorf("count = %d", st.Count())
	}
	if st.Mean() != 20 {
		t.Errorf("mean = %d", st.Mean())
	}
}

func TestSlidingStatsPercentile(t *testing.T) {
	st := NewSlidingStats(100)
	for i := 1; i <= 100; i++ {
		st.Add(event.Time(i))
	}
	if p := st.Percentile(95); p != 95 {
		t.Errorf("p95 = %d, want 95", p)
	}
	if p := st.Percentile(50); p != 50 {
		t.Errorf("p50 = %d, want 50", p)
	}
	if p := st.Percentile(100); p != 100 {
		t.Errorf("p100 = %d, want 100", p)
	}
	if p := st.Percentile(0); p != 1 {
		t.Errorf("p0 = %d, want 1", p)
	}
}

func TestSlidingStatsEmptyAndReset(t *testing.T) {
	st := NewSlidingStats(10)
	if st.Mean() != 0 || st.Percentile(95) != 0 {
		t.Error("empty stats must report 0")
	}
	st.Add(5)
	st.Reset()
	if st.Count() != 0 || st.Mean() != 0 {
		t.Error("reset did not clear stats")
	}
}

// Property: percentile never exceeds the max nor undershoots the min of
// the live window.
func TestSlidingStatsPercentileBounds(t *testing.T) {
	f := func(seed int64, p8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := float64(p8 % 101)
		st := NewSlidingStats(32)
		lo, hi := event.Time(1<<62), event.Time(-1)
		var vals []event.Time
		for i := 0; i < 64; i++ {
			v := event.Time(rng.Int63n(1000))
			st.Add(v)
			vals = append(vals, v)
		}
		for _, v := range vals[len(vals)-32:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		got := st.Percentile(p)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSlidingStatsClampsSize(t *testing.T) {
	st := NewSlidingStats(0)
	st.Add(7)
	if st.Mean() != 7 {
		t.Error("size-0 window must clamp to 1")
	}
}
