package gen

import (
	"math/rand"

	"cepshed/internal/event"
)

// DS2Config parameterizes the DS2 generator (Table II): events whose
// numeric payloads are drawn from partially overlapping ranges, giving
// partial matches widely varying resource costs (§VI-E).
type DS2Config struct {
	// Events is the stream length.
	Events int
	// InterArrival is the mean virtual inter-arrival time. Default 10us.
	InterArrival event.Time
	// IDRange is the ID domain size (Table II: U(1,10)).
	IDRange int
	// Seed drives the generator.
	Seed int64
}

func (c DS2Config) withDefaults() DS2Config {
	if c.Events <= 0 {
		c.Events = 10000
	}
	if c.InterArrival <= 0 {
		c.InterArrival = 10 * event.Microsecond
	}
	if c.IDRange <= 0 {
		c.IDRange = 10
	}
	return c
}

// DS2 generates a DS2 stream following Table II:
//
//	A.x, A.y, B.x, B.y:  P(0 < X <= 2) = 33%,  P(2 < X <= 4) = 67%
//	B.v:                 P(X = 2) = 33%,        P(X = 5) = 67%
//	C.v:                 P(X = 3) = 33%,        P(X = 5) = 67%
//	D.v:                 P(X = 5) = 33%,        P(X = 2) = 67%
func DS2(cfg DS2Config) event.Stream {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	types := []string{"A", "B", "C", "D"}
	var b event.Builder
	t := event.Time(0)
	for i := 0; i < cfg.Events; i++ {
		t += jitter(rng, cfg.InterArrival)
		typ := types[rng.Intn(len(types))]
		attrs := map[string]event.Value{
			"ID": event.Int(int64(uniformInt(rng, 1, cfg.IDRange))),
		}
		switch typ {
		case "A":
			attrs["x"] = event.Float(skewedRange(rng))
			attrs["y"] = event.Float(skewedRange(rng))
		case "B":
			attrs["x"] = event.Float(skewedRange(rng))
			attrs["y"] = event.Float(skewedRange(rng))
			attrs["v"] = event.Float(twoPoint(rng, 2, 5))
		case "C":
			attrs["v"] = event.Float(twoPoint(rng, 3, 5))
		case "D":
			attrs["v"] = event.Float(twoPoint(rng, 5, 2))
		}
		b.Add(event.New(typ, t, attrs))
	}
	return b.Finish()
}

// skewedRange draws from (0,2] with probability 1/3 and (2,4] with 2/3.
func skewedRange(rng *rand.Rand) float64 {
	if rng.Float64() < 1.0/3 {
		return rng.Float64() * 2
	}
	return 2 + rng.Float64()*2
}

// twoPoint returns first with probability 1/3 and second with 2/3.
func twoPoint(rng *rand.Rand, first, second float64) float64 {
	if rng.Float64() < 1.0/3 {
		return first
	}
	return second
}
