package gen

import (
	"math"
	"testing"

	"cepshed/internal/event"
)

func TestDS1MatchesTableII(t *testing.T) {
	s := DS1(DS1Config{Events: 8000, Seed: 1})
	if len(s) != 8000 {
		t.Fatalf("len = %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Types roughly uniform over {A,B,C,D}.
	counts := map[string]int{}
	idSeen := map[int64]bool{}
	vMin, vMax := int64(99), int64(-99)
	for _, e := range s {
		counts[e.Type]++
		idSeen[e.Int("ID")] = true
		v := e.Int("V")
		if v < vMin {
			vMin = v
		}
		if v > vMax {
			vMax = v
		}
	}
	for _, typ := range []string{"A", "B", "C", "D"} {
		frac := float64(counts[typ]) / float64(len(s))
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("type %s fraction = %.3f", typ, frac)
		}
	}
	if len(idSeen) != 10 {
		t.Errorf("distinct IDs = %d, want 10", len(idSeen))
	}
	if vMin != 1 || vMax != 10 {
		t.Errorf("V range = [%d,%d], want [1,10]", vMin, vMax)
	}
}

func TestDS1ControlledCV(t *testing.T) {
	s := DS1(DS1Config{Events: 4000, Seed: 2, CVMin: 2, CVMax: 4})
	for _, e := range s {
		if e.Type != "C" {
			continue
		}
		if v := e.Int("V"); v < 2 || v > 4 {
			t.Fatalf("C.V = %d outside [2,4]", v)
		}
	}
}

func TestDS1Shift(t *testing.T) {
	s := DS1(DS1Config{
		Events: 4000, Seed: 3,
		CVMin: 2, CVMax: 10,
		ShiftAt: 2000, ShiftMin: 12, ShiftMax: 20,
	})
	for i, e := range s {
		if e.Type != "C" {
			continue
		}
		v := e.Int("V")
		if i < 2000 && (v < 2 || v > 10) {
			t.Fatalf("pre-shift C.V = %d", v)
		}
		if i >= 2000 && (v < 12 || v > 20) {
			t.Fatalf("post-shift C.V = %d at %d", v, i)
		}
	}
}

func TestDS1Deterministic(t *testing.T) {
	a := DS1(DS1Config{Events: 500, Seed: 42})
	b := DS1(DS1Config{Events: 500, Seed: 42})
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Time != b[i].Time || a[i].Int("V") != b[i].Int("V") {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := DS1(DS1Config{Events: 500, Seed: 43})
	same := true
	for i := range a {
		if a[i].Type != c[i].Type || a[i].Int("V") != c[i].Int("V") {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestDS1InterArrival(t *testing.T) {
	ia := 20 * event.Microsecond
	s := DS1(DS1Config{Events: 5000, Seed: 4, InterArrival: ia})
	mean := float64(s.Duration()) / float64(len(s)-1)
	if math.Abs(mean-float64(ia)) > 0.1*float64(ia) {
		t.Errorf("mean gap = %.0f, want ~%d", mean, ia)
	}
}

func TestDS2MatchesTableII(t *testing.T) {
	s := DS2(DS2Config{Events: 12000, Seed: 5})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var aLow, aTotal int
	bv := map[float64]int{}
	cv := map[float64]int{}
	dv := map[float64]int{}
	for _, e := range s {
		switch e.Type {
		case "A":
			x := e.Float("x")
			if x <= 0 || x > 4 {
				t.Fatalf("A.x = %v outside (0,4]", x)
			}
			aTotal++
			if x <= 2 {
				aLow++
			}
		case "B":
			bv[e.Float("v")]++
		case "C":
			cv[e.Float("v")]++
		case "D":
			dv[e.Float("v")]++
		}
	}
	lowFrac := float64(aLow) / float64(aTotal)
	if math.Abs(lowFrac-1.0/3) > 0.04 {
		t.Errorf("P(A.x <= 2) = %.3f, want ~0.33", lowFrac)
	}
	checkTwoPoint := func(name string, m map[float64]int, oneThird, twoThirds float64) {
		t.Helper()
		total := 0
		for _, n := range m {
			total += n
		}
		if got := float64(m[oneThird]) / float64(total); math.Abs(got-1.0/3) > 0.05 {
			t.Errorf("%s: P(%v) = %.3f, want ~0.33", name, oneThird, got)
		}
		if got := float64(m[twoThirds]) / float64(total); math.Abs(got-2.0/3) > 0.05 {
			t.Errorf("%s: P(%v) = %.3f, want ~0.67", name, twoThirds, got)
		}
	}
	checkTwoPoint("B.v", bv, 2, 5)
	checkTwoPoint("C.v", cv, 3, 5)
	checkTwoPoint("D.v", dv, 5, 2)
}

func TestConfigDefaults(t *testing.T) {
	s := DS1(DS1Config{Seed: 1})
	if len(s) != 10000 {
		t.Errorf("default events = %d", len(s))
	}
	s2 := DS2(DS2Config{Seed: 1})
	if len(s2) != 10000 {
		t.Errorf("default DS2 events = %d", len(s2))
	}
}
