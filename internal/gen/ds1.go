// Package gen generates the paper's synthetic datasets (Table II): DS1
// with uniformly distributed three-valued payloads and DS2 with skewed,
// partially overlapping numeric ranges. It also implements the controlled
// variations the sensitivity experiments use: the variance of C.V (Fig 7)
// and a mid-stream distribution shift (Fig 12).
package gen

import (
	"math/rand"

	"cepshed/internal/event"
)

// DS1Config parameterizes the DS1 generator.
type DS1Config struct {
	// Events is the stream length.
	Events int
	// InterArrival is the mean virtual inter-arrival time; actual gaps
	// are uniform in [0.5, 1.5] times the mean. Default 10us.
	InterArrival event.Time
	// IDRange is the ID domain size (Table II: U(1,10)).
	IDRange int
	// VMin/VMax bound the default V distribution (Table II: U(1,10)).
	VMin, VMax int
	// CVMin/CVMax, when CVMax > 0, control the distribution of V for C
	// events separately (Fig 7 varies U(2,x); Fig 12 shifts it).
	CVMin, CVMax int
	// ShiftAt, when > 0, is the event index at which the C.V distribution
	// switches to U(ShiftMin, ShiftMax) — the Fig 12 drift scenario.
	ShiftAt            int
	ShiftMin, ShiftMax int
	// BProb, when > 0, sets the occurrence probability of type B; the
	// remaining types split the rest evenly (§VI-H varies the negated
	// type's probability from 5% to 50%).
	BProb float64
	// Seed drives the generator.
	Seed int64
}

func (c DS1Config) withDefaults() DS1Config {
	if c.Events <= 0 {
		c.Events = 10000
	}
	if c.InterArrival <= 0 {
		c.InterArrival = 10 * event.Microsecond
	}
	if c.IDRange <= 0 {
		c.IDRange = 10
	}
	if c.VMin <= 0 {
		c.VMin = 1
	}
	if c.VMax <= 0 {
		c.VMax = 10
	}
	return c
}

// DS1 generates a DS1 stream: types uniform over {A,B,C,D}, ID uniform
// over [1,IDRange], V uniform over [VMin,VMax] (C events optionally
// controlled).
func DS1(cfg DS1Config) event.Stream {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	types := []string{"A", "B", "C", "D"}
	var b event.Builder
	t := event.Time(0)
	for i := 0; i < cfg.Events; i++ {
		t += jitter(rng, cfg.InterArrival)
		var typ string
		if cfg.BProb > 0 {
			if rng.Float64() < cfg.BProb {
				typ = "B"
			} else {
				others := []string{"A", "C", "D"}
				typ = others[rng.Intn(len(others))]
			}
		} else {
			typ = types[rng.Intn(len(types))]
		}
		v := uniformInt(rng, cfg.VMin, cfg.VMax)
		if typ == "C" {
			lo, hi := cfg.CVMin, cfg.CVMax
			if cfg.ShiftAt > 0 && i >= cfg.ShiftAt {
				lo, hi = cfg.ShiftMin, cfg.ShiftMax
			}
			if hi > 0 {
				v = uniformInt(rng, lo, hi)
			}
		}
		e := event.New(typ, t, map[string]event.Value{
			"ID": event.Int(int64(uniformInt(rng, 1, cfg.IDRange))),
			"V":  event.Int(int64(v)),
		})
		b.Add(e)
	}
	return b.Finish()
}

// jitter draws an inter-arrival gap uniform in [0.5, 1.5] of the mean.
func jitter(rng *rand.Rand, mean event.Time) event.Time {
	g := event.Time(float64(mean) * (0.5 + rng.Float64()))
	if g < 1 {
		g = 1
	}
	return g
}

func uniformInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}
