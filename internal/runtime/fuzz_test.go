package runtime

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeNDJSON drives arbitrary bytes through the streaming decoder
// and the single-line parser. Invariants: neither ever panics; the
// decoder always terminates with io.EOF; every recoverable failure is a
// *LineError with a positive line number and a bounded, valid-UTF-8-safe
// payload sample; and every event that does decode re-encodes to a line
// that parses back to the same type and time.
//
// Seeds live in testdata/fuzz/FuzzDecodeNDJSON; `make check` replays
// them (plus any minimized crashers checked in later) as a regression
// suite, and `make fuzz` explores new inputs.
func FuzzDecodeNDJSON(f *testing.F) {
	f.Add([]byte(`{"type":"A","time":123,"attrs":{"ID":5,"V":3.5,"user":"u1"}}`))
	f.Add([]byte("{\"type\":\"A\",\"time\":1,\"attrs\":{}}\n{\"type\":\"B\",\"attrs\":{\"ID\":2}}\n"))
	f.Add([]byte("not json\n\n{\"type\":\"C\",\"time\":9,\"attrs\":{\"x\":\"\xff\"}}\r\n"))
	f.Add([]byte(`{"type":"A","attrs":{"x":true}}`))
	f.Add([]byte(`{"type":"A","attrs":{"n":18446744073709551615}}`))
	f.Add(bytes.Repeat([]byte("x"), 300))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Small maxLine so the fuzzer reaches the overlong-line path
		// without needing megabyte inputs.
		d := NewLineDecoder(bytes.NewReader(data), 256)
		for i := 0; i < 10000; i++ {
			e, hasTime, err := d.Next()
			if err == nil {
				line := EncodeEvent(e)
				e2, _, perr := ParseEvent(line)
				if perr != nil {
					t.Fatalf("re-encoded event does not parse: %v (line %q)", perr, line)
				}
				if e2.Type != e.Type || (hasTime && e2.Time != e.Time) {
					t.Fatalf("round trip changed identity: %v vs %v", e, e2)
				}
				continue
			}
			var lerr *LineError
			if errors.As(err, &lerr) {
				if lerr.Line <= 0 {
					t.Fatalf("LineError with non-positive line %d", lerr.Line)
				}
				if len(lerr.Payload) > maxPayloadSample+len("...") {
					t.Fatalf("payload sample %d bytes exceeds bound", len(lerr.Payload))
				}
				continue
			}
			if err == io.EOF {
				return
			}
			t.Fatalf("unexpected terminal error: %v", err)
		}
		t.Fatal("decoder did not terminate within 10000 iterations")
	})
}
