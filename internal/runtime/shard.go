package runtime

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
)

// item is one queued event plus its enqueue instant; the difference
// between dequeue-plus-service completion and enq is the wall-clock
// latency sample fed to the shedding control loop.
type item struct {
	e   *event.Event
	enq time.Time
}

// shard owns one engine instance and one strategy instance. The engine
// and strategy are touched ONLY by the shard's worker goroutine; every
// field read by Snapshot from other goroutines is atomic. On a panic the
// supervisor (supervisor.go) rebuilds the engine and strategy in place —
// both are worker-owned, so the rebuild needs no locking.
type shard struct {
	id    int
	ch    chan item
	m     *nfa.Machine // kept for supervisor rebuilds
	en    *engine.Engine
	strat shed.Strategy
	cfg   Config

	hist      *metrics.Histogram // per-shard latency
	global    *metrics.Histogram // runtime-wide latency (shared)
	ewma      atomic.Uint64      // math.Float64bits of the smoothed latency
	lastNs    atomic.Int64       // wall instant of the last latency sample
	stratName atomic.Value       // string; s.strat itself is worker-owned

	eventsIn    atomic.Uint64
	eventsShed  atomic.Uint64
	processed   atomic.Uint64
	overflow    atomic.Uint64
	matched     atomic.Uint64
	livePMs     atomic.Int64
	createdPMs  atomic.Uint64
	droppedPMs  atomic.Uint64
	restarts    atomic.Uint64
	quarantined atomic.Uint64
	failed      atomic.Bool

	// Engine stats reset when the supervisor rebuilds the engine; these
	// worker-only offsets keep the exported counters monotone across
	// restarts.
	pmCreatedBase uint64
	pmDroppedBase uint64

	matches []engine.Match // collected matches (worker-only until Close)

	// Durability (nil ckpt: the shard runs without checkpointing). All
	// non-atomic fields below are worker-owned.
	ckpt     *checkpoint.ShardStore
	killed   *atomic.Bool // Runtime.killed: drain-and-discard on Kill
	lastSeq  uint64       // seq/time of the last event appended to the WAL
	lastTime int64
	sinceSnap int // events since the last snapshot

	// needRecover is consumed at the top of the worker loop: true at boot
	// (restore snapshot + replay WAL) and after every supervisor rebuild
	// (recoverAfterPanic distinguishes the two counter-composition paths).
	needRecover       bool
	recoverAfterPanic bool
	recoverDone       func() // Runtime.recoverWG.Done, via recoveredOnce
	recoveredOnce     sync.Once
	saveDLQ           func() // checkpoint the runtime dead-letter queue

	recovering   atomic.Bool
	snapshots    atomic.Uint64
	snapBytes    atomic.Int64
	snapUnixNs   atomic.Int64
	walReplayed  atomic.Uint64
	coldStarts   atomic.Uint64
	restoredSeq  atomic.Uint64
	restoredTime atomic.Int64
}

func newShard(id int, m *nfa.Machine, cfg Config, strat shed.Strategy, global *metrics.Histogram) *shard {
	if strat == nil {
		strat = shed.None{}
	}
	en := engine.New(m, cfg.Costs)
	en.DeferredNegation = cfg.DeferredNegation
	strat.Attach(en)
	s := &shard{
		id:     id,
		ch:     make(chan item, cfg.QueueLen),
		m:      m,
		en:     en,
		strat:  strat,
		cfg:    cfg,
		hist:   metrics.NewHistogram(),
		global: global,
	}
	s.stratName.Store(strat.Name())
	return s
}

// statsSyncBatch bounds how many drained events may share one snapshot
// sync: the engine-stats copy and atomic stores run once per batch (or
// as soon as the queue goes idle) instead of once per event.
const statsSyncBatch = 64

// run is the unsupervised worker loop (Config.DisableRecovery): it exits
// when the input channel closes, after flushing the engine's remaining
// state, and a panic propagates and kills the process. The queue is
// drained in batches: snapshot counters sync at batch boundaries and
// whenever the queue is momentarily empty, so an idle shard is always
// up to date while a saturated shard pays the sync once per
// statsSyncBatch events.
func (s *shard) run() {
	if s.needRecover {
		// Unsupervised recovery: a replay panic propagates, matching the
		// DisableRecovery contract for live processing.
		s.needRecover = false
		var cur item
		s.recoverReplay(&cur)
	}
	s.signalRecovered()
	w := s.cfg.SmoothWeight
	batched := 0
	for it := range s.ch {
		s.process(it, w)
		if batched++; batched >= statsSyncBatch || len(s.ch) == 0 {
			s.syncEngineStats()
			s.idleFlush()
			batched = 0
		}
	}
	s.finish()
}

// signalRecovered releases Runtime.WaitRecovered for this shard; safe to
// call on every loop entry (once-guarded) and from the worker's exit
// defer, so the wait can never strand on a shard that dies early.
func (s *shard) signalRecovered() {
	if s.recoverDone != nil {
		s.recoveredOnce.Do(s.recoverDone)
	}
}

// idleFlush pushes the buffered WAL tail to the OS whenever the queue
// goes idle, shrinking the loss window below FlushEvery while the shard
// has nothing better to do.
func (s *shard) idleFlush() {
	if s.ckpt != nil && len(s.ch) == 0 {
		s.ckpt.Flush()
	}
}

// syncEngineStats publishes the worker-owned engine counters to the
// atomics Snapshot reads.
func (s *shard) syncEngineStats() {
	st := s.en.Stats()
	s.livePMs.Store(int64(s.en.LiveCount()))
	s.createdPMs.Store(s.pmCreatedBase + st.CreatedPMs)
	s.droppedPMs.Store(s.pmDroppedBase + st.DroppedPMs)
}

// process handles one dequeued event: the WAL append, ρI admission, the
// fault hook, the engine step, match delivery, the latency sample, the
// strategy's control step, and the periodic snapshot. It is the only
// code a supervisor-caught panic can come from.
func (s *shard) process(it item, w float64) {
	if s.killed != nil && s.killed.Load() {
		// Kill(): drain-and-discard so blocked producers unblock, but no
		// event reaches the engine or the WAL — the crash already happened.
		return
	}
	e := it.e
	if s.ckpt != nil {
		// Logged BEFORE any processing, so an event whose processing
		// crashes the worker is replayable (and skippable via a Q record).
		s.ckpt.AppendEvent(e)
		s.lastSeq, s.lastTime = e.Seq, int64(e.Time)
	}
	s.eventsIn.Add(1)

	if !s.strat.AdmitEvent(e, e.Time) {
		// ρI dropped the event before any engine work; the sample
		// still enters the latency stream — a shed event was "served"
		// nearly for free, which is exactly how shedding relieves the
		// queue.
		s.eventsShed.Add(1)
		s.record(time.Since(it.enq), w)
		s.maybeSnapshot()
		return
	}

	if s.cfg.BeforeProcess != nil {
		s.cfg.BeforeProcess(s.id, e)
	}

	res := s.en.Process(e)
	s.processed.Add(1)
	s.strat.Observe(&res, e.Time)

	if len(res.Matches) > 0 {
		s.deliver(res.Matches, e.Seq, nil, false)
	}

	lat := s.record(time.Since(it.enq), w)
	s.strat.Control(e.Time, lat)
	s.maybeSnapshot()
}

// deliver emits matches: the WAL match record is flushed BEFORE the
// match reaches OnMatch, so a crash can lose an undelivered match but
// never deliver one twice. During replay, suppress holds the keys of
// matches the previous incarnation already delivered; countSuppressed
// re-counts them into the matched counter (boot restore, where the
// atomic restarted from the snapshot value) or not (post-panic restore,
// where the atomic survived the rebuild).
func (s *shard) deliver(matches []engine.Match, seq uint64, suppress map[string]bool, countSuppressed bool) {
	for i := range matches {
		m := matches[i]
		var key string
		if s.ckpt != nil || suppress != nil {
			key = m.Key()
		}
		if suppress != nil && suppress[key] {
			if countSuppressed {
				s.matched.Add(1)
			}
			continue
		}
		if s.ckpt != nil {
			s.ckpt.AppendMatchKey(seq, key)
		}
		s.matched.Add(1)
		if s.cfg.CollectMatches {
			s.matches = append(s.matches, m)
		}
		if s.cfg.OnMatch != nil {
			s.cfg.OnMatch(s.id, m)
		}
	}
}

// maybeSnapshot counts processed events toward the snapshot interval.
func (s *shard) maybeSnapshot() {
	if s.ckpt == nil {
		return
	}
	if s.sinceSnap++; s.sinceSnap >= s.ckpt.EveryEvents() {
		s.takeSnapshot()
	}
}

// takeSnapshot persists the shard's full state and rotates the WAL.
func (s *shard) takeSnapshot() {
	s.sinceSnap = 0
	st := s.buildState()
	n, err := s.ckpt.Save(st)
	if err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("runtime: shard %d: snapshot failed: %v", s.id, err)
		}
		return
	}
	s.snapshots.Add(1)
	s.snapBytes.Store(int64(n))
	s.snapUnixNs.Store(st.TakenNs)
	if s.saveDLQ != nil {
		s.saveDLQ()
	}
}

// buildState freezes everything a restart needs into a ShardState.
func (s *shard) buildState() *checkpoint.ShardState {
	st := &checkpoint.ShardState{
		Shard:    s.id,
		LastSeq:  s.lastSeq,
		LastTime: s.lastTime,
		TakenNs:  checkpoint.TakenNow(),
		Counters: checkpoint.Counters{
			EventsIn:    s.eventsIn.Load(),
			EventsShed:  s.eventsShed.Load(),
			Processed:   s.processed.Load(),
			Overflow:    s.overflow.Load(),
			Matched:     s.matched.Load(),
			Restarts:    s.restarts.Load(),
			Quarantined: s.quarantined.Load(),
			BaseCreated: s.pmCreatedBase,
			BaseDropped: s.pmDroppedBase,
		},
		StrategyName: s.strat.Name(),
		Engine:       s.en.Snapshot(),
	}
	if ds, ok := s.strat.(shed.DurableStrategy); ok {
		if blob, err := ds.MarshalState(); err == nil {
			st.Strategy = blob
		}
	}
	return st
}

// saturatingSub keeps counter compositions from wrapping when a replay
// regenerates more state than the pre-crash run had counted.
func saturatingSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// recoverReplay restores the last good snapshot and replays the WAL
// tail. Every failure degrades to a counted cold start — a corrupt file
// must never crash-loop the shard. cur is the supervisor's
// poison-tracking slot: it is set to each replayed event so a replay
// panic quarantines that event (and logs a Q record) exactly like a
// live-processing panic.
func (s *shard) recoverReplay(cur *item) {
	fromPanic := s.recoverAfterPanic
	s.recoverAfterPanic = false
	s.recovering.Store(true)
	defer s.recovering.Store(false)

	res, err := s.ckpt.Load()
	if err != nil {
		s.coldStarts.Add(1)
		if s.cfg.Logf != nil {
			s.cfg.Logf("runtime: shard %d: checkpoint load failed, cold start: %v", s.id, err)
		}
		return
	}
	if res.CorruptSnaps > 0 && s.cfg.Logf != nil {
		s.cfg.Logf("runtime: shard %d: %d corrupt snapshot generation(s), usedPrev=%v",
			s.id, res.CorruptSnaps, res.UsedPrev)
	}

	// Pre-restore exported counter values: the post-panic path must keep
	// them exactly (the atomics survived the rebuild), whatever mix of
	// snapshot stats and replay the restored engine ends up with.
	wantCreated := s.pmCreatedBase
	wantDropped := s.pmDroppedBase

	var minSeq uint64
	restored := false
	if res.State != nil {
		if rerr := s.en.Restore(res.State.Engine); rerr != nil {
			// Decodable but structurally unusable (e.g. format drift inside
			// version 1, or a machine mismatch the fingerprint missed):
			// counted cold start, full-WAL replay below.
			s.coldStarts.Add(1)
			if s.cfg.Logf != nil {
				s.cfg.Logf("runtime: shard %d: snapshot restore rejected, cold start: %v", s.id, rerr)
			}
			res.State = nil
		} else {
			restored = true
			minSeq = res.State.LastSeq
			s.lastSeq, s.lastTime = res.State.LastSeq, res.State.LastTime
		}
	} else if len(res.Records) == 0 {
		// Fresh directory: nothing to recover, not a cold-start fallback.
		return
	}

	if restored {
		st := res.State
		if !fromPanic {
			// Boot: adopt the snapshot's externally visible counters.
			c := &st.Counters
			s.eventsIn.Store(c.EventsIn)
			s.eventsShed.Store(c.EventsShed)
			s.processed.Store(c.Processed)
			s.overflow.Store(c.Overflow)
			s.matched.Store(c.Matched)
			s.restarts.Store(c.Restarts)
			s.quarantined.Store(c.Quarantined)
			s.pmCreatedBase = c.BaseCreated
			s.pmDroppedBase = c.BaseDropped
		}
		if len(st.Strategy) > 0 && st.StrategyName == s.strat.Name() {
			if ds, ok := s.strat.(shed.DurableStrategy); ok {
				if uerr := ds.UnmarshalState(st.Strategy); uerr != nil && s.cfg.Logf != nil {
					s.cfg.Logf("runtime: shard %d: strategy state rejected, keeping fresh: %v", s.id, uerr)
				}
			}
		}
	}

	// Index the WAL: Q records mark quarantined seqs replay must skip
	// (the poison-crash-loop breaker), M records the matches already
	// delivered before the crash (the duplicate-emission breaker).
	skips := make(map[uint64]bool)
	suppress := make(map[string]bool)
	for _, rec := range res.Records {
		switch rec.Kind {
		case checkpoint.RecSkip:
			if rec.Seq > minSeq {
				skips[rec.Seq] = true
			}
		case checkpoint.RecMatch:
			suppress[rec.Key] = true
		}
	}

	var replayed uint64
	for _, rec := range res.Records {
		if rec.Kind != checkpoint.RecEvent || rec.Seq <= minSeq || skips[rec.Seq] {
			continue
		}
		*cur = item{e: rec.Event}
		s.replayEvent(rec.Event, !fromPanic, suppress)
		replayed++
	}
	*cur = item{}

	if fromPanic {
		// The replayed engine re-counts creations/drops that the exported
		// atomics already include; re-base so the exported values resume
		// exactly where they stopped.
		st := s.en.Stats()
		s.pmCreatedBase = saturatingSub(wantCreated, st.CreatedPMs)
		s.pmDroppedBase = saturatingSub(wantDropped, st.DroppedPMs)
	}
	s.syncEngineStats()
	s.walReplayed.Add(replayed)
	s.restoredSeq.Store(s.lastSeq)
	s.restoredTime.Store(s.lastTime)
	if res.Torn && s.cfg.Logf != nil {
		s.cfg.Logf("runtime: shard %d: WAL tail torn (expected after a crash); replayed %d events", s.id, replayed)
	}
}

// replayEvent re-processes one WAL event during recovery. No WAL append
// (the record is already on disk), no latency sample (the enqueue
// instant is long gone — the strategy's control step sees the surviving
// EWMA), and counters only on the boot path, where they restore the
// pre-crash totals the snapshot missed.
func (s *shard) replayEvent(e *event.Event, boot bool, suppress map[string]bool) {
	if boot {
		s.eventsIn.Add(1)
	}
	s.lastSeq, s.lastTime = e.Seq, int64(e.Time)
	if !s.strat.AdmitEvent(e, e.Time) {
		if boot {
			s.eventsShed.Add(1)
		}
		return
	}
	if s.cfg.BeforeProcess != nil {
		// Fault hooks fire in replay too: a deterministic poison event
		// panics again here, gets quarantined with a Q record, and the
		// NEXT recovery skips it — the crash loop terminates.
		s.cfg.BeforeProcess(s.id, e)
	}
	res := s.en.Process(e)
	if boot {
		s.processed.Add(1)
	}
	s.strat.Observe(&res, e.Time)
	if len(res.Matches) > 0 {
		s.deliver(res.Matches, e.Seq, suppress, boot)
	}
	s.strat.Control(e.Time, event.Time(math.Float64frombits(s.ewma.Load())))
}

// finish runs when the input channel closes. A clean drain takes a final
// snapshot (so a graceful shutdown restarts with zero WAL replay) and
// closes the store; a Kill abandons the buffered WAL tail unflushed —
// that is the crash being simulated.
func (s *shard) finish() {
	if s.ckpt != nil {
		if s.killed != nil && s.killed.Load() {
			s.ckpt.Abort()
			return
		}
		s.takeSnapshot()
		s.ckpt.Close()
	}
	s.en.Flush()
	s.syncEngineStats()
}

// record adds one wall-clock latency sample to the histograms and the
// EWMA, returning the updated smoothed latency as virtual time (both are
// nanoseconds, so the unit maps 1:1).
func (s *shard) record(d time.Duration, w float64) event.Time {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s.hist.Record(event.Time(ns))
	s.global.Record(event.Time(ns))
	prev := math.Float64frombits(s.ewma.Load())
	sm := w*float64(ns) + (1-w)*prev
	s.ewma.Store(math.Float64bits(sm))
	s.lastNs.Store(time.Now().UnixNano())
	return event.Time(sm)
}

func (s *shard) snapshot() ShardSnapshot {
	return ShardSnapshot{
		Shard:      s.id,
		Strategy:   s.stratName.Load().(string),
		QueueDepth: len(s.ch),
		QueueCap:   cap(s.ch),

		EventsIn:        s.eventsIn.Load(),
		EventsShed:      s.eventsShed.Load(),
		EventsProcessed: s.processed.Load(),
		Overflow:        s.overflow.Load(),
		Matches:         s.matched.Load(),

		LivePMs:    s.livePMs.Load(),
		CreatedPMs: s.createdPMs.Load(),
		DroppedPMs: s.droppedPMs.Load(),

		Restarts:    s.restarts.Load(),
		Quarantined: s.quarantined.Load(),
		Failed:      s.failed.Load(),

		Recovering:     s.recovering.Load(),
		Snapshots:      s.snapshots.Load(),
		SnapshotBytes:  s.snapBytes.Load(),
		SnapshotUnixNs: s.snapUnixNs.Load(),
		WALReplayed:    s.walReplayed.Load(),
		ColdStarts:     s.coldStarts.Load(),

		SmoothedLatency: time.Duration(math.Float64frombits(s.ewma.Load())),
		P50:             time.Duration(s.hist.Quantile(0.50)),
		P95:             time.Duration(s.hist.Quantile(0.95)),
		P99:             time.Duration(s.hist.Quantile(0.99)),
		MeanLatency:     time.Duration(s.hist.Mean()),
		MaxLatency:      time.Duration(s.hist.Max()),
	}
}
