package runtime

import (
	"math"
	"sync/atomic"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
)

// item is one queued event plus its enqueue instant; the difference
// between dequeue-plus-service completion and enq is the wall-clock
// latency sample fed to the shedding control loop.
type item struct {
	e   *event.Event
	enq time.Time
}

// shard owns one engine instance and one strategy instance. The engine
// and strategy are touched ONLY by the shard's worker goroutine; every
// field read by Snapshot from other goroutines is atomic. On a panic the
// supervisor (supervisor.go) rebuilds the engine and strategy in place —
// both are worker-owned, so the rebuild needs no locking.
type shard struct {
	id    int
	ch    chan item
	m     *nfa.Machine // kept for supervisor rebuilds
	en    *engine.Engine
	strat shed.Strategy
	cfg   Config

	hist      *metrics.Histogram // per-shard latency
	global    *metrics.Histogram // runtime-wide latency (shared)
	ewma      atomic.Uint64      // math.Float64bits of the smoothed latency
	lastNs    atomic.Int64       // wall instant of the last latency sample
	stratName atomic.Value       // string; s.strat itself is worker-owned

	eventsIn    atomic.Uint64
	eventsShed  atomic.Uint64
	processed   atomic.Uint64
	overflow    atomic.Uint64
	matched     atomic.Uint64
	livePMs     atomic.Int64
	createdPMs  atomic.Uint64
	droppedPMs  atomic.Uint64
	restarts    atomic.Uint64
	quarantined atomic.Uint64
	failed      atomic.Bool

	// Engine stats reset when the supervisor rebuilds the engine; these
	// worker-only offsets keep the exported counters monotone across
	// restarts.
	pmCreatedBase uint64
	pmDroppedBase uint64

	matches []engine.Match // collected matches (worker-only until Close)
}

func newShard(id int, m *nfa.Machine, cfg Config, strat shed.Strategy, global *metrics.Histogram) *shard {
	if strat == nil {
		strat = shed.None{}
	}
	en := engine.New(m, cfg.Costs)
	en.DeferredNegation = cfg.DeferredNegation
	strat.Attach(en)
	s := &shard{
		id:     id,
		ch:     make(chan item, cfg.QueueLen),
		m:      m,
		en:     en,
		strat:  strat,
		cfg:    cfg,
		hist:   metrics.NewHistogram(),
		global: global,
	}
	s.stratName.Store(strat.Name())
	return s
}

// statsSyncBatch bounds how many drained events may share one snapshot
// sync: the engine-stats copy and atomic stores run once per batch (or
// as soon as the queue goes idle) instead of once per event.
const statsSyncBatch = 64

// run is the unsupervised worker loop (Config.DisableRecovery): it exits
// when the input channel closes, after flushing the engine's remaining
// state, and a panic propagates and kills the process. The queue is
// drained in batches: snapshot counters sync at batch boundaries and
// whenever the queue is momentarily empty, so an idle shard is always
// up to date while a saturated shard pays the sync once per
// statsSyncBatch events.
func (s *shard) run() {
	w := s.cfg.SmoothWeight
	batched := 0
	for it := range s.ch {
		s.process(it, w)
		if batched++; batched >= statsSyncBatch || len(s.ch) == 0 {
			s.syncEngineStats()
			batched = 0
		}
	}
	s.finish()
}

// syncEngineStats publishes the worker-owned engine counters to the
// atomics Snapshot reads.
func (s *shard) syncEngineStats() {
	st := s.en.Stats()
	s.livePMs.Store(int64(s.en.LiveCount()))
	s.createdPMs.Store(s.pmCreatedBase + st.CreatedPMs)
	s.droppedPMs.Store(s.pmDroppedBase + st.DroppedPMs)
}

// process handles one dequeued event: ρI admission, the fault hook, the
// engine step, match delivery, the latency sample, and the strategy's
// control step. It is the only code a supervisor-caught panic can come
// from.
func (s *shard) process(it item, w float64) {
	e := it.e
	s.eventsIn.Add(1)

	if !s.strat.AdmitEvent(e, e.Time) {
		// ρI dropped the event before any engine work; the sample
		// still enters the latency stream — a shed event was "served"
		// nearly for free, which is exactly how shedding relieves the
		// queue.
		s.eventsShed.Add(1)
		s.record(time.Since(it.enq), w)
		return
	}

	if s.cfg.BeforeProcess != nil {
		s.cfg.BeforeProcess(s.id, e)
	}

	res := s.en.Process(e)
	s.processed.Add(1)
	s.strat.Observe(&res, e.Time)

	if len(res.Matches) > 0 {
		s.matched.Add(uint64(len(res.Matches)))
		if s.cfg.CollectMatches {
			s.matches = append(s.matches, res.Matches...)
		}
		if s.cfg.OnMatch != nil {
			for _, m := range res.Matches {
				s.cfg.OnMatch(s.id, m)
			}
		}
	}

	lat := s.record(time.Since(it.enq), w)
	s.strat.Control(e.Time, lat)
}

// finish flushes the engine after a clean drain (input channel closed).
func (s *shard) finish() {
	s.en.Flush()
	s.syncEngineStats()
}

// record adds one wall-clock latency sample to the histograms and the
// EWMA, returning the updated smoothed latency as virtual time (both are
// nanoseconds, so the unit maps 1:1).
func (s *shard) record(d time.Duration, w float64) event.Time {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s.hist.Record(event.Time(ns))
	s.global.Record(event.Time(ns))
	prev := math.Float64frombits(s.ewma.Load())
	sm := w*float64(ns) + (1-w)*prev
	s.ewma.Store(math.Float64bits(sm))
	s.lastNs.Store(time.Now().UnixNano())
	return event.Time(sm)
}

func (s *shard) snapshot() ShardSnapshot {
	return ShardSnapshot{
		Shard:      s.id,
		Strategy:   s.stratName.Load().(string),
		QueueDepth: len(s.ch),
		QueueCap:   cap(s.ch),

		EventsIn:        s.eventsIn.Load(),
		EventsShed:      s.eventsShed.Load(),
		EventsProcessed: s.processed.Load(),
		Overflow:        s.overflow.Load(),
		Matches:         s.matched.Load(),

		LivePMs:    s.livePMs.Load(),
		CreatedPMs: s.createdPMs.Load(),
		DroppedPMs: s.droppedPMs.Load(),

		Restarts:    s.restarts.Load(),
		Quarantined: s.quarantined.Load(),
		Failed:      s.failed.Load(),

		SmoothedLatency: time.Duration(math.Float64frombits(s.ewma.Load())),
		P50:             time.Duration(s.hist.Quantile(0.50)),
		P95:             time.Duration(s.hist.Quantile(0.95)),
		P99:             time.Duration(s.hist.Quantile(0.99)),
		MeanLatency:     time.Duration(s.hist.Mean()),
		MaxLatency:      time.Duration(s.hist.Max()),
	}
}
