package runtime

import (
	"math"
	"sync/atomic"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
)

// item is one queued event plus its enqueue instant; the difference
// between dequeue-plus-service completion and enq is the wall-clock
// latency sample fed to the shedding control loop.
type item struct {
	e   *event.Event
	enq time.Time
}

// shard owns one engine instance and one strategy instance. The engine
// and strategy are touched ONLY by the shard's worker goroutine; every
// field read by Snapshot from other goroutines is atomic.
type shard struct {
	id    int
	ch    chan item
	en    *engine.Engine
	strat shed.Strategy
	cfg   Config

	hist   *metrics.Histogram // per-shard latency
	global *metrics.Histogram // runtime-wide latency (shared)
	ewma   atomic.Uint64      // math.Float64bits of the smoothed latency

	eventsIn   atomic.Uint64
	eventsShed atomic.Uint64
	processed  atomic.Uint64
	overflow   atomic.Uint64
	matched    atomic.Uint64
	livePMs    atomic.Int64
	createdPMs atomic.Uint64
	droppedPMs atomic.Uint64

	matches []engine.Match // collected matches (worker-only until Close)
}

func newShard(id int, m *nfa.Machine, cfg Config, strat shed.Strategy, global *metrics.Histogram) *shard {
	if strat == nil {
		strat = shed.None{}
	}
	en := engine.New(m, cfg.Costs)
	en.DeferredNegation = cfg.DeferredNegation
	strat.Attach(en)
	return &shard{
		id:     id,
		ch:     make(chan item, cfg.QueueLen),
		en:     en,
		strat:  strat,
		cfg:    cfg,
		hist:   metrics.NewHistogram(),
		global: global,
	}
}

// run is the shard worker loop. It exits when the input channel closes,
// after flushing the engine's remaining state.
func (s *shard) run() {
	w := s.cfg.SmoothWeight
	for it := range s.ch {
		e := it.e
		s.eventsIn.Add(1)

		if !s.strat.AdmitEvent(e, e.Time) {
			// ρI dropped the event before any engine work; the sample
			// still enters the latency stream — a shed event was "served"
			// nearly for free, which is exactly how shedding relieves the
			// queue.
			s.eventsShed.Add(1)
			s.record(time.Since(it.enq), w)
			continue
		}

		res := s.en.Process(e)
		s.processed.Add(1)
		s.strat.Observe(&res, e.Time)

		if len(res.Matches) > 0 {
			s.matched.Add(uint64(len(res.Matches)))
			if s.cfg.CollectMatches {
				s.matches = append(s.matches, res.Matches...)
			}
			if s.cfg.OnMatch != nil {
				for _, m := range res.Matches {
					s.cfg.OnMatch(s.id, m)
				}
			}
		}

		lat := s.record(time.Since(it.enq), w)
		s.strat.Control(e.Time, lat)

		st := s.en.Stats()
		s.livePMs.Store(int64(s.en.LiveCount()))
		s.createdPMs.Store(st.CreatedPMs)
		s.droppedPMs.Store(st.DroppedPMs)
	}
	s.en.Flush()
	s.livePMs.Store(0)
}

// record adds one wall-clock latency sample to the histograms and the
// EWMA, returning the updated smoothed latency as virtual time (both are
// nanoseconds, so the unit maps 1:1).
func (s *shard) record(d time.Duration, w float64) event.Time {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s.hist.Record(event.Time(ns))
	s.global.Record(event.Time(ns))
	prev := math.Float64frombits(s.ewma.Load())
	sm := w*float64(ns) + (1-w)*prev
	s.ewma.Store(math.Float64bits(sm))
	return event.Time(sm)
}

func (s *shard) snapshot() ShardSnapshot {
	return ShardSnapshot{
		Shard:      s.id,
		Strategy:   s.strat.Name(),
		QueueDepth: len(s.ch),
		QueueCap:   cap(s.ch),

		EventsIn:        s.eventsIn.Load(),
		EventsShed:      s.eventsShed.Load(),
		EventsProcessed: s.processed.Load(),
		Overflow:        s.overflow.Load(),
		Matches:         s.matched.Load(),

		LivePMs:    s.livePMs.Load(),
		CreatedPMs: s.createdPMs.Load(),
		DroppedPMs: s.droppedPMs.Load(),

		SmoothedLatency: time.Duration(math.Float64frombits(s.ewma.Load())),
		P50:             time.Duration(s.hist.Quantile(0.50)),
		P95:             time.Duration(s.hist.Quantile(0.95)),
		P99:             time.Duration(s.hist.Quantile(0.99)),
		MeanLatency:     time.Duration(s.hist.Mean()),
		MaxLatency:      time.Duration(s.hist.Max()),
	}
}
