package runtime

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
)

// item is one queued event plus its enqueue instant; the difference
// between dequeue-plus-service completion and enq is the wall-clock
// latency sample fed to the shedding control loop.
type item struct {
	e   *event.Event
	enq time.Time
}

// batch is what the shard channel carries: either a single item (items
// nil — the Offer/TryOffer fast path, no slice allocation), a slice of
// items from OfferBatch, or a control message (ctl non-nil) for the
// shard-migration path. Ownership of items transfers to the consumer,
// which returns the slice to itemSlicePool when done. Control messages
// ride the same channel so they are ordered behind every event already
// queued — an export observes a fully drained shard by construction.
type batch struct {
	one   item
	items []item
	ctl   *shardCtl
}

// itemSlicePool recycles OfferBatch's per-shard item slices between
// producers and shard workers.
var itemSlicePool = sync.Pool{New: func() any {
	s := make([]item, 0, 256)
	return &s
}}

func getItems() []item {
	return (*itemSlicePool.Get().(*[]item))[:0]
}

func putItems(items []item) {
	items = items[:0]
	itemSlicePool.Put(&items)
}

// shard owns one engine instance and one strategy instance. The engine
// and strategy are touched ONLY by the worker currently holding svc
// (workers.go); claims never overlap, so "worker-owned" below means
// owned by whichever worker holds the claim. Every field read by
// Snapshot from other goroutines is atomic. On a panic the supervisor
// (supervisor.go) rebuilds the engine and strategy in place — both are
// claim-owned, so the rebuild needs no locking.
type shard struct {
	id    int
	ch    chan batch
	depth atomic.Int64 // queued events + control messages across ch + in-flight batches
	m     *nfa.Machine // kept for supervisor rebuilds
	en    *engine.Engine
	strat shed.Strategy
	cfg   Config

	// Worker-pool state (workers.go). svc is the claim lock: at most one
	// worker services the shard at a time, which is what preserves the
	// single-writer invariant now that workers outnumber or undernumber
	// shards. booted flips after the first quantum (so trafficless shards
	// still get one boot pass for recovery and WaitRecovered); doneFlag
	// retires the shard from the pool after finish; needRecoverFlag
	// mirrors needRecover for the unlocked needsService probe; notBefore
	// is the restart-backoff deadline (unix ns) that replaced the old
	// supervisor's time.Sleep — the shard goes dormant instead of a
	// goroutine sleeping.
	svc             sync.Mutex
	booted          atomic.Bool
	doneFlag        atomic.Bool
	needRecoverFlag atomic.Bool
	notBefore       atomic.Int64
	chClosed        bool // claim-owned: input channel observed closed

	// Supervisor restart bookkeeping, claim-owned (moved from
	// runSupervised locals when the per-shard goroutine dissolved).
	recent []time.Time
	rng    *rand.Rand

	// Type-run dispatch cache, claim-owned: events arrive in runs of
	// equal types often enough (bursty sources, replayed partitions) that
	// caching the last resolution skips even the memo map lookup. A
	// TypeRes is owned by its issuing engine, so rebuild() must clear
	// these when it swaps s.en.
	lastType string
	lastRes  *engine.TypeRes

	// Async snapshot state (claim-owned except snapFinalize, which the
	// background goroutine sets to request finalization). wakeFn pokes
	// the worker pool so an idle shard finalizes promptly.
	pendingSnap  *pendingSnap
	snapFinalize atomic.Bool
	wakeFn       func()

	hist      *metrics.Histogram // per-shard latency
	global    *metrics.Histogram // runtime-wide latency (shared)
	ewma      atomic.Uint64      // math.Float64bits of the smoothed latency
	lastNs    atomic.Int64       // wall instant of the last latency sample
	stratName atomic.Value       // string; s.strat itself is worker-owned
	planRep   atomic.Value       // shed.PlanReporter, when the strategy is one

	// Shed-decision-path observability. admitNs is extrapolated wall
	// time spent in ρI admission: every admitSamplePeriod-th decision is
	// timed and charged for the whole stride (timing each one would cost
	// more than the decision itself). admitSeq is worker-owned.
	// classBuckets/classLive/classDead mirror the engine's class-bucket
	// index occupancy, published at batch boundaries like the PM stats.
	admitNs      atomic.Int64
	admitSeq     uint64
	classBuckets atomic.Int64
	classLive    atomic.Int64
	classDead    atomic.Int64

	// busyNs accumulates wall time the worker spent consuming batches
	// (engine work + WAL + delivery; queue waiting excluded). Measured at
	// batch granularity — two clock reads per drained batch — it is the
	// utilization signal the cross-query arbiter divides CPU capacity by.
	busyNs atomic.Int64

	eventsIn    atomic.Uint64
	eventsShed  atomic.Uint64
	processed   atomic.Uint64
	overflow    atomic.Uint64
	matched     atomic.Uint64
	livePMs     atomic.Int64
	createdPMs  atomic.Uint64
	droppedPMs  atomic.Uint64
	restarts    atomic.Uint64
	quarantined atomic.Uint64
	failed      atomic.Bool

	// Engine stats reset when the supervisor rebuilds the engine; these
	// worker-only offsets keep the exported counters monotone across
	// restarts.
	pmCreatedBase uint64
	pmDroppedBase uint64

	matches []engine.Match // collected matches (worker-only until Close)

	// Durability (nil ckpt: the shard runs without checkpointing; also
	// the degraded state walFailed leaves behind). All non-atomic fields
	// below are worker-owned.
	ckpt      *checkpoint.ShardStore
	killed    *atomic.Bool // Runtime.killed: drain-and-discard on Kill
	lastSeq   uint64       // seq/time of the last event appended to the WAL
	lastTime  int64
	hasSeq    bool // lastSeq/lastTime are meaningful (seq numbering starts at 0)
	sinceSnap int  // events since the last snapshot

	// pend holds matches whose M records sit in the current WAL flush
	// group: group commit defers the flush, so delivery defers with it.
	// Released, in order, the moment a flush makes the records durable —
	// on the covering policy flush, at the batch boundary, or (panic)
	// explicitly before recovery reuses the store.
	pend []engine.Match

	// curBatch/curIdx/curItem track the batch being consumed so a panic
	// can report the poison item and salvage the unprocessed remainder
	// into rem; rem is consumed as live input after the post-panic
	// recovery (those events never reached the WAL, so they come after
	// the replayed tail).
	curBatch []item
	curIdx   int
	curItem  item
	rem      []item

	// needRecover is consumed at the top of the worker loop: true at boot
	// (restore snapshot + replay WAL) and after every supervisor rebuild.
	// bootPending stays true until a BOOT recovery completes without
	// panicking, so a retry after a replay panic keeps composing counters
	// the boot way (restore snapshot values, re-count replay) instead of
	// the post-panic way (atomics survived, count nothing).
	// bootBaseApplied marks the one-shot part of that composition done.
	needRecover     bool
	bootPending     bool
	bootBaseApplied bool
	recoverDone     func() // Runtime.recoverWG.Done, via recoveredOnce
	recoveredOnce   sync.Once
	saveDLQ         func() // checkpoint the runtime dead-letter queue

	// exported marks a shard whose state was frozen and handed to
	// another node (worker-owned, like the engine it guards): the engine
	// is no longer authoritative, so stray events that still reach the
	// shard are quarantined — counted into eventsIn AND quarantined so
	// the conservation identity survives a migration — instead of
	// processed. exportedFlag mirrors it for Snapshot readers.
	exported     bool
	exportedFlag atomic.Bool

	recovering     atomic.Bool
	snapshots      atomic.Uint64
	snapBytes      atomic.Int64
	snapPauseMax   atomic.Int64 // worst serving-thread pause inside snapshot work, ns
	snapUnixNs     atomic.Int64
	walReplayed    atomic.Uint64
	coldStarts     atomic.Uint64
	walErrors      atomic.Uint64
	restoredSeq    atomic.Uint64
	restoredTime   atomic.Int64
	restoredHasSeq atomic.Bool
}

func newShard(id int, m *nfa.Machine, cfg Config, strat shed.Strategy, global *metrics.Histogram) *shard {
	if strat == nil {
		strat = shed.None{}
	}
	en := engine.New(m, cfg.Costs)
	en.DeferredNegation = cfg.DeferredNegation
	strat.Attach(en)
	s := &shard{
		id:     id,
		ch:     make(chan batch, cfg.QueueLen),
		m:      m,
		en:     en,
		strat:  strat,
		cfg:    cfg,
		hist:   metrics.NewHistogram(),
		global: global,
		rng:    rand.New(rand.NewSource(int64(id)*7919 + 1)),
	}
	s.stratName.Store(strat.Name())
	if pr, ok := strat.(shed.PlanReporter); ok {
		s.planRep.Store(pr)
	}
	return s
}

// admitSamplePeriod is the ρI timing sample stride (power of two so the
// stride test is a mask and the extrapolation a shift).
const admitSamplePeriod = 64

// batchBudget bounds how many drained events may share one batch
// boundary: the engine-stats sync, the covering WAL flush, and the
// snapshot check run once per budget (or as soon as the queue goes
// idle) instead of once per event. It generalizes the old
// statsSyncBatch constant to the whole batch drain.
const batchBudget = 64

// quantumBudget bounds how many events one shard claim may consume
// before the worker releases the shard and rescans: the fairness knob
// that keeps one deep queue from starving other shards when workers
// are outnumbered by shards.
const quantumBudget = 4 * batchBudget

// needsService reports whether a worker should claim this shard now
// (ready) or soon (waiting: pending work held off by a restart
// backoff). It reads only atomics — every worker pass probes every
// shard with it, unlocked.
func (s *shard) needsService(now int64, closed bool) (ready, waiting bool) {
	if s.doneFlag.Load() {
		return false, false
	}
	if s.depth.Load() <= 0 && s.booted.Load() && !s.snapFinalize.Load() &&
		!s.needRecoverFlag.Load() && !closed {
		return false, false
	}
	if nb := s.notBefore.Load(); nb > now {
		return false, true
	}
	return true, false
}

// quantum services one claimed shard for a bounded slice of work; the
// caller holds s.svc. Returns whether any work was done.
func (s *shard) quantum(r *Runtime) bool {
	if s.failed.Load() {
		return s.forwardQuantum(r)
	}
	if s.cfg.DisableRecovery {
		return s.quantumDirect(r)
	}
	return s.quantumSupervised(r)
}

// quantumDirect is the unsupervised quantum (Config.DisableRecovery): a
// panic propagates and kills the process, matching the old run loop's
// contract.
func (s *shard) quantumDirect(r *Runtime) bool {
	if s.needRecover {
		// Unsupervised recovery: a replay panic propagates, matching the
		// DisableRecovery contract for live processing.
		s.needRecover = false
		s.needRecoverFlag.Store(false)
		s.curItem = item{}
		s.recoverReplay(&s.curItem)
	}
	s.booted.Store(true)
	s.signalRecovered()
	s.settleSnapshot(false)
	worked, closed := s.drainQuantum(s.cfg.SmoothWeight)
	if closed {
		s.finish()
		s.markDone(r)
	}
	return worked
}

// drainQuantum is the batched consume loop: opportunistic receives
// until batchBudget events are in hand or the queue is momentarily
// empty, then one explicit endBatch; up to quantumBudget events per
// call. Never blocks — an empty queue returns to the worker, which
// sleeps on the wake channel instead of inside a shard claim. closed
// reports that the input channel closed.
func (s *shard) drainQuantum(w float64) (worked, closed bool) {
	for consumed := 0; consumed < quantumBudget && !s.chClosed; {
		n := 0
		var t0 time.Time
	fill:
		for n < batchBudget {
			select {
			case b, ok := <-s.ch:
				if !ok {
					s.chClosed = true
					break fill
				}
				if n == 0 {
					// Everything from the first receive to the batch boundary
					// is service time, charged to busyNs.
					t0 = time.Now()
				}
				n += s.consumeBatch(b, w)
			default:
				break fill
			}
		}
		if n == 0 {
			break
		}
		worked = true
		s.endBatch()
		s.busyNs.Add(time.Since(t0).Nanoseconds())
		consumed += n
	}
	return worked, s.chClosed
}

// markDone retires the shard from the worker pool: its channel closed
// and finish (or failed-shard forwarding) completed. signalRecovered
// backstops WaitRecovered against shards that die before boot recovery
// ran; wakeAll lets every worker re-check the pool exit condition.
func (s *shard) markDone(r *Runtime) {
	s.doneFlag.Store(true)
	s.signalRecovered()
	r.wakeAll()
}

// consumeBatch processes every item of one received batch, maintaining
// the poison-tracking fields for the supervisor's recover() and
// returning the slice to the pool once fully consumed.
func (s *shard) consumeBatch(b batch, w float64) int {
	if b.ctl != nil {
		// Control messages count into depth (the worker pool's "needs
		// service" signal), so decrement like an event; curItem is cleared
		// so a control-op panic doesn't mis-quarantine the previous event.
		s.curItem = item{}
		s.depth.Add(-1)
		s.handleCtl(b.ctl)
		return 1
	}
	if b.items == nil {
		s.curItem = b.one
		s.depth.Add(-1)
		s.process(b.one, w)
		return 1
	}
	items := b.items
	s.curBatch = items
	for i := range items {
		s.curIdx = i
		s.curItem = items[i]
		s.depth.Add(-1)
		s.process(items[i], w)
	}
	s.curBatch, s.curIdx = nil, 0
	putItems(items)
	return len(items)
}

// endBatch runs once per drained batch: publish engine stats, settle
// the WAL flush group, and take the periodic snapshot. The flush group
// — and with it any held-back matches — survives across batch
// boundaries while input keeps coming: it closes when the policy says
// so (FlushEvery records, FlushBytes bytes, FlushInterval age), when
// the queue goes idle, or before a snapshot rotation (Save flushes the
// writer internally, and durable-but-undelivered M records are exactly
// the state replay suppression would turn into lost matches — so the
// release MUST come first). Delivery latency under continuous load is
// therefore bounded by FlushInterval, and an idle queue delivers
// immediately.
func (s *shard) endBatch() {
	s.syncEngineStats()
	s.settleSnapshot(false)
	if s.ckpt == nil {
		return
	}
	if s.killed != nil && s.killed.Load() {
		// Kill(): the held matches' M records are unflushed by the pend
		// invariant and will be aborted with the store; dropping the
		// deliveries IS the simulated crash loss.
		s.pend = s.pend[:0]
		return
	}
	snapDue := s.sinceSnap >= s.ckpt.EveryEvents()
	if snapDue || s.depth.Load() == 0 {
		// One covering flush (one fsync when configured) makes every
		// buffered E and M record durable, then the matches those M
		// records cover are delivered.
		if err := s.ckpt.Flush(); err != nil {
			s.walFailed("flush", err)
			return
		}
		s.releasePend()
	} else {
		if err := s.ckpt.FlushIfDue(); err != nil {
			s.walFailed("flush", err)
			return
		}
		if len(s.pend) > 0 && s.ckpt.Unflushed() == 0 {
			s.releasePend()
		}
	}
	if snapDue {
		if s.ckpt.SyncSaves() {
			// Timed at this call site, not inside takeSnapshot: the other
			// callers (finish's final save, ctlImport's commit) run on
			// quiescent shards, where the save's duration stalls nobody.
			t0 := time.Now()
			s.takeSnapshot()
			s.noteSnapPause(t0)
		} else if s.pendingSnap == nil {
			// One capture in flight at a time; sinceSnap keeps accumulating
			// until the slot frees, so a slow write just stretches the
			// interval instead of dropping a snapshot.
			s.takeSnapshotAsync()
		}
	}
}

// releasePend delivers every held-back match, in order.
func (s *shard) releasePend() {
	for i := range s.pend {
		s.emit(s.pend[i])
	}
	s.pend = s.pend[:0]
}

// emit hands one match to the configured sinks and counts it.
func (s *shard) emit(m engine.Match) {
	s.matched.Add(1)
	if s.cfg.CollectMatches {
		s.matches = append(s.matches, m)
	}
	if s.cfg.OnMatch != nil {
		s.cfg.OnMatch(s.id, m)
	}
}

// signalRecovered releases Runtime.WaitRecovered for this shard; safe to
// call on every loop entry (once-guarded) and from the worker's exit
// defer, so the wait can never strand on a shard that dies early.
func (s *shard) signalRecovered() {
	if s.recoverDone != nil {
		s.recoveredOnce.Do(s.recoverDone)
	}
}

// walFailed handles a WAL append/flush failure (disk full, I/O error —
// bufio keeps the first error sticky, so every later write would fail
// too). The bounded-loss and no-duplicate contracts can no longer be
// honored, so rather than silently delivering matches with no durable
// record (which the next recovery would re-emit), the shard counts the
// failure, logs loudly, and drops to running without durability. The
// store is aborted, not closed: flushing is exactly what just failed.
// Matches held for the failed flush group are delivered on the way out
// — availability wins; the broken contract is declared, not widened.
func (s *shard) walFailed(op string, err error) {
	s.walErrors.Add(1)
	if s.cfg.Logf != nil {
		s.cfg.Logf("runtime: shard %d: WAL %s failed; durability DISABLED for this shard — state on disk is frozen at the failure point and exactly-once no longer holds across a restart: %v",
			s.id, op, err)
	}
	s.ckpt.Abort()
	s.ckpt = nil
	s.releasePend()
}

// syncEngineStats publishes the worker-owned engine counters to the
// atomics Snapshot reads.
func (s *shard) syncEngineStats() {
	st := s.en.Stats()
	s.livePMs.Store(int64(s.en.LiveCount()))
	s.createdPMs.Store(s.pmCreatedBase + st.CreatedPMs)
	s.droppedPMs.Store(s.pmDroppedBase + st.DroppedPMs)
	cs := s.en.ClassIndexStats()
	s.classBuckets.Store(int64(cs.Buckets))
	s.classLive.Store(int64(cs.Live))
	s.classDead.Store(int64(cs.Dead))
}

// process handles one dequeued event: the WAL append, ρI admission, the
// fault hook, the engine step, match delivery, the latency sample, the
// strategy's control step, and the periodic snapshot. It is the only
// code a supervisor-caught panic can come from.
func (s *shard) process(it item, w float64) {
	if s.killed != nil && s.killed.Load() {
		// Kill(): drain-and-discard so blocked producers unblock, but no
		// event reaches the engine or the WAL — the crash already happened.
		return
	}
	if s.exported {
		// The slot migrated away; there is no authoritative engine here
		// for the event, so processing it would fork the slot's state.
		// Quarantine keeps arrivals accounted for (events_in == shed +
		// processed + quarantined) until the router catches up.
		s.eventsIn.Add(1)
		s.quarantined.Add(1)
		return
	}
	e := it.e
	if s.ckpt != nil {
		// Logged BEFORE any processing, so an event whose processing
		// crashes the worker is replayable (and skippable via a Q record).
		if err := s.ckpt.AppendEvent(e); err != nil {
			s.walFailed("event append", err)
		} else {
			s.lastSeq, s.lastTime, s.hasSeq = e.Seq, int64(e.Time), true
			if len(s.pend) > 0 && s.ckpt.Unflushed() == 0 {
				// The append tripped the policy flush, which made the held
				// matches' M records durable as a side effect.
				s.releasePend()
			}
		}
	}
	s.eventsIn.Add(1)

	// Time every admitSamplePeriod-th ρI decision and charge it for the
	// whole stride: the compiled admission path is a few array compares,
	// so per-event clock reads would dominate what they measure.
	var admitT0 time.Time
	s.admitSeq++
	sampleAdmit := s.admitSeq%admitSamplePeriod == 0
	if sampleAdmit {
		admitT0 = time.Now()
	}
	admitted := s.strat.AdmitEvent(e, e.Time)
	if sampleAdmit {
		s.admitNs.Add(time.Since(admitT0).Nanoseconds() * admitSamplePeriod)
	}
	if !admitted {
		// ρI dropped the event before any engine work; the sample
		// still enters the latency stream — a shed event was "served"
		// nearly for free, which is exactly how shedding relieves the
		// queue.
		s.eventsShed.Add(1)
		s.record(it.enq, w)
		s.noteSnapshotProgress()
		return
	}

	if s.cfg.BeforeProcess != nil {
		s.cfg.BeforeProcess(s.id, e)
	}

	// Batched predicate evaluation: resolve the type's reactive bucket
	// and predicate chain once per run of equal types, not once per
	// event. ProcessResolved revalidates the bucket against indexGen, so
	// a run cached before the type's first bucket existed stays correct.
	tr := s.lastRes
	if tr == nil || e.Type != s.lastType {
		tr = s.en.ResolveType(e.Type)
		s.lastType, s.lastRes = e.Type, tr
	}
	res := s.en.ProcessResolved(e, tr)
	s.processed.Add(1)
	s.strat.Observe(&res, e.Time)

	if len(res.Matches) > 0 {
		s.deliver(res.Matches, e.Seq, nil, false)
	}

	lat := s.record(it.enq, w)
	s.strat.Control(e.Time, lat)
	s.noteSnapshotProgress()
}

// deliver emits matches under the flush-before-deliver invariant: a
// match's M record must be durable before the match reaches OnMatch, so
// a crash can lose an undelivered match but never deliver one twice.
// Under group commit the record joins the current flush group and the
// match waits in pend until a flush covers it — the policy flush an
// append trips, or the batch boundary's explicit one. During replay
// (suppress != nil) each new match still forces its own flush: replay
// is rare and the immediate delivery keeps recovery observably
// identical to the pre-group-commit store. suppress holds the keys of
// matches the previous incarnation already delivered; countSuppressed
// re-counts them into the matched counter (boot restore, where the
// atomic restarted from the snapshot value) or not (post-panic restore,
// where the atomic survived the rebuild).
func (s *shard) deliver(matches []engine.Match, seq uint64, suppress map[string]bool, countSuppressed bool) {
	for i := range matches {
		m := matches[i]
		var key string
		if s.ckpt != nil || suppress != nil {
			key = m.Key()
		}
		if suppress != nil && suppress[key] {
			if countSuppressed {
				s.matched.Add(1)
			}
			continue
		}
		if s.ckpt == nil {
			s.emit(m)
			continue
		}
		// If the append (or flush) fails, the match is still delivered
		// (availability wins) but the exactly-once contract is declared
		// broken, not silently voided — walFailed also releases any
		// earlier matches of the failed group, keeping delivery order.
		if err := s.ckpt.AppendMatchKey(seq, key); err != nil {
			s.walFailed("match append", err)
			s.emit(m)
			continue
		}
		if suppress != nil {
			if err := s.ckpt.Flush(); err != nil {
				s.walFailed("match flush", err)
			}
			s.emit(m)
			continue
		}
		if s.ckpt.Unflushed() == 0 {
			s.releasePend()
			s.emit(m)
		} else {
			s.pend = append(s.pend, m)
		}
	}
}

// noteSnapshotProgress counts processed events toward the snapshot
// interval; the snapshot itself is taken at the batch boundary
// (endBatch), after the flush group settles and held matches release,
// so snapshot counters are always delivery-consistent.
func (s *shard) noteSnapshotProgress() {
	if s.ckpt != nil {
		s.sinceSnap++
	}
}

// noteSnapPause records one stretch of snapshot work done inline on the
// claiming worker — time the shard was NOT processing events because of
// the snapshot protocol. The sync path pays the whole encode+write here;
// the async path pays only capture and the finalize (flush + WAL
// rotation). The max is exported as ShardSnapshot.SnapPauseMaxNs: it is
// both an ops gauge (worst event-latency spike durability injects) and
// the statistic the snapshot-stall benchmark compares across the two
// protocols.
func (s *shard) noteSnapPause(t0 time.Time) {
	d := time.Since(t0).Nanoseconds()
	for {
		cur := s.snapPauseMax.Load()
		if d <= cur || s.snapPauseMax.CompareAndSwap(cur, d) {
			return
		}
	}
}

// takeSnapshot persists the shard's full state and rotates the WAL,
// synchronously on the claiming worker — the shard pauses for the whole
// encode+write. Used by the sync protocol (checkpoint.Config.SyncSave /
// OnStage), the final snapshot in finish, and ctlImport's commit point;
// the periodic hot-path snapshot goes through takeSnapshotAsync.
func (s *shard) takeSnapshot() {
	s.sinceSnap = 0
	st := s.buildState()
	n, err := s.ckpt.Save(st)
	if err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("runtime: shard %d: snapshot failed: %v", s.id, err)
		}
		return
	}
	s.snapshots.Add(1)
	s.snapBytes.Store(int64(n))
	s.snapUnixNs.Store(st.TakenNs)
	if s.saveDLQ != nil {
		s.saveDLQ()
	}
}

// pendingSnap is one in-flight background snapshot: the engine capture,
// the shell state being filled in, and the completion signal. err/bytes
// are written by the background goroutine before close(done) and read
// by the shard only after it.
type pendingSnap struct {
	ref   *engine.SnapshotRef
	st    *checkpoint.ShardState
	done  chan struct{}
	bytes int
	err   error
}

// takeSnapshotAsync starts the off-hot-path snapshot protocol: pin the
// engine's live matches by reference (engine.CaptureSnapshot — a flag
// write per live match, no copying), freeze the counters and the seq
// floor, and hand encoding plus the file writes to a background
// goroutine. The shard keeps processing events meanwhile; those land in
// the current WAL above the captured floor, so whatever instant a crash
// hits, Load replays exactly the suffix the published snapshot misses
// (records between capture and rotation end up in wal.prev, which Load
// also reads). The shard finalizes — WAL rotation, counters, capture
// release — in settleSnapshot once the write signals completion.
func (s *shard) takeSnapshotAsync() {
	defer s.noteSnapPause(time.Now())
	ref := s.en.CaptureSnapshot()
	if ref == nil {
		return // capture already in flight (pendingSnap should have gated this)
	}
	s.sinceSnap = 0
	ps := &pendingSnap{ref: ref, st: s.buildStateShell(), done: make(chan struct{})}
	s.pendingSnap = ps
	ckpt, killed, wake := s.ckpt, s.killed, s.wakeFn
	go func() {
		defer close(ps.done)
		defer func() {
			if p := recover(); p != nil {
				ps.err = fmt.Errorf("snapshot encode/write panic: %v", p)
			}
			s.snapFinalize.Store(true)
			if wake != nil {
				wake()
			}
		}()
		ps.st.Engine = ref.Encode()
		if killed != nil && killed.Load() {
			// Kill() raced the write: leave the files alone — the abandoned
			// WAL tail IS the simulated crash state.
			ps.err = fmt.Errorf("runtime killed during snapshot")
			return
		}
		ps.bytes, ps.err = ckpt.WriteSnapshot(ps.st)
	}()
}

// settleSnapshot finalizes a completed background snapshot on the
// claiming worker: release the engine capture, rotate the WAL behind
// the published snapshot, publish the counters. block=true waits for an
// in-flight write — the paths that need the snapshot protocol quiescent
// (finish, export, retire, panic recovery, which reuses the store and
// rebuilds the engine); block=false finalizes only when the background
// goroutine has already signalled completion.
func (s *shard) settleSnapshot(block bool) {
	ps := s.pendingSnap
	if ps == nil {
		return
	}
	if block {
		<-ps.done
	} else {
		select {
		case <-ps.done:
		default:
			return
		}
	}
	s.pendingSnap = nil
	s.snapFinalize.Store(false)
	// Timed from here — after the wait, not including it: the blocking
	// wait only happens on quiescence paths (finish, export, retire),
	// while the serving path always arrives non-blocking with the write
	// already signalled. What remains below is the inline finalize cost.
	defer s.noteSnapPause(time.Now())
	// Release runs here — on the claiming worker, between Process calls —
	// per the SnapshotRef contract; captures that died mid-flight recycle
	// now. Harmless after a supervisor rebuild: the ref unpins matches of
	// the discarded engine.
	ps.ref.Release()
	if ps.err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("runtime: shard %d: snapshot failed: %v", s.id, ps.err)
		}
		return
	}
	if s.ckpt == nil || (s.killed != nil && s.killed.Load()) {
		return
	}
	// Settle the open flush group BEFORE rotation: closing the WAL
	// flushes it, which would make held matches' M records durable while
	// their deliveries sit in pend — exactly the lost-match state replay
	// suppression would create.
	if err := s.ckpt.Flush(); err != nil {
		s.walFailed("flush", err)
		return
	}
	s.releasePend()
	if err := s.ckpt.RotateWAL(); err != nil {
		s.walFailed("wal rotate", err)
		return
	}
	s.snapshots.Add(1)
	s.snapBytes.Store(int64(ps.bytes))
	s.snapUnixNs.Store(ps.st.TakenNs)
	if s.saveDLQ != nil {
		s.saveDLQ()
	}
}

// buildState freezes everything a restart needs into a ShardState.
func (s *shard) buildState() *checkpoint.ShardState {
	st := s.buildStateShell()
	st.Engine = s.en.Snapshot()
	return st
}

// buildStateShell freezes everything EXCEPT the engine image: counters,
// the WAL seq floor, and the strategy blob. The async path fills Engine
// in on the background goroutine from the by-reference capture.
func (s *shard) buildStateShell() *checkpoint.ShardState {
	st := &checkpoint.ShardState{
		Shard:    s.id,
		LastSeq:  s.lastSeq,
		HasSeq:   s.hasSeq,
		LastTime: s.lastTime,
		TakenNs:  checkpoint.TakenNow(),
		Counters: checkpoint.Counters{
			EventsIn:    s.eventsIn.Load(),
			EventsShed:  s.eventsShed.Load(),
			Processed:   s.processed.Load(),
			Overflow:    s.overflow.Load(),
			Matched:     s.matched.Load(),
			Restarts:    s.restarts.Load(),
			Quarantined: s.quarantined.Load(),
			BaseCreated: s.pmCreatedBase,
			BaseDropped: s.pmDroppedBase,
		},
		StrategyName: s.strat.Name(),
	}
	if ds, ok := s.strat.(shed.DurableStrategy); ok {
		if blob, err := ds.MarshalState(); err == nil {
			st.Strategy = blob
		}
	}
	return st
}

// saturatingSub keeps counter compositions from wrapping when a replay
// regenerates more state than the pre-crash run had counted.
func saturatingSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// recoverReplay restores the last good snapshot and replays the WAL
// tail. Every failure degrades to a counted cold start — a corrupt file
// must never crash-loop the shard. cur is the supervisor's
// poison-tracking slot: it is set to each replayed event so a replay
// panic quarantines that event (and logs a Q record) exactly like a
// live-processing panic.
func (s *shard) recoverReplay(cur *item) {
	// boot (vs post-panic) selects the counter-composition path. It
	// comes from bootPending, NOT from "is this the first recovery": a
	// replay panic during boot sends the retry back here, and that retry
	// must still compose counters the boot way — bootPending only clears
	// when a boot recovery runs to completion.
	boot := s.bootPending
	s.recovering.Store(true)
	defer s.recovering.Store(false)

	res, err := s.ckpt.Load()
	if err != nil {
		s.coldStarts.Add(1)
		if s.cfg.Logf != nil {
			s.cfg.Logf("runtime: shard %d: checkpoint load failed, cold start: %v", s.id, err)
		}
		s.bootPending = false
		return
	}
	if res.CorruptSnaps > 0 && s.cfg.Logf != nil {
		s.cfg.Logf("runtime: shard %d: %d corrupt snapshot generation(s), usedPrev=%v",
			s.id, res.CorruptSnaps, res.UsedPrev)
	}

	// Pre-restore exported counter values: the post-panic path must keep
	// them exactly (the atomics survived the rebuild), whatever mix of
	// snapshot stats and replay the restored engine ends up with.
	wantCreated := s.pmCreatedBase
	wantDropped := s.pmDroppedBase

	// floor is the replay low-water mark: WAL events at or below it are
	// already inside the restored snapshot. haveFloor distinguishes "no
	// floor" (no snapshot, or one taken before any event arrived) from a
	// floor of 0 — sequence numbers start at 0, so the value alone
	// cannot encode "none" and a zero sentinel would silently drop the
	// stream's first event (and any Q record for it) from every
	// snapshot-less recovery.
	var floor uint64
	haveFloor := false
	restored := false
	if res.State != nil {
		if rerr := s.en.Restore(res.State.Engine); rerr != nil {
			// Decodable but structurally unusable (e.g. format drift inside
			// one version, or a machine mismatch the fingerprint missed):
			// counted cold start, full-WAL replay below.
			s.coldStarts.Add(1)
			if s.cfg.Logf != nil {
				s.cfg.Logf("runtime: shard %d: snapshot restore rejected, cold start: %v", s.id, rerr)
			}
			res.State = nil
		} else {
			restored = true
			haveFloor = res.State.HasSeq
			floor = res.State.LastSeq
			s.lastSeq, s.lastTime, s.hasSeq = res.State.LastSeq, res.State.LastTime, res.State.HasSeq
		}
	} else if len(res.Records) == 0 {
		// Fresh directory: nothing to recover, not a cold-start fallback.
		s.bootPending = false
		return
	}

	if boot {
		// Adopt the externally visible counters: the snapshot's values, or
		// zero on a cold start. Replay-composed counters are re-stored on
		// EVERY boot attempt, so when a replay panic interrupts one attempt
		// the partial increments never double-count in the retry.
		var base checkpoint.Counters
		if restored {
			base = res.State.Counters
		}
		s.eventsIn.Store(base.EventsIn)
		s.eventsShed.Store(base.EventsShed)
		s.processed.Store(base.Processed)
		s.matched.Store(base.Matched)
		s.pmCreatedBase = base.BaseCreated
		s.pmDroppedBase = base.BaseDropped
		if !s.bootBaseApplied {
			// Applied once, not per attempt: these advance BETWEEN boot
			// attempts (the supervisor counts each replay panic's restart;
			// producers may overflow while recovery runs), so re-storing
			// would erase legitimate ground. Add keeps those increments.
			s.bootBaseApplied = true
			s.overflow.Add(base.Overflow)
			s.restarts.Add(base.Restarts)
			s.quarantined.Add(base.Quarantined)
		}
	}
	if restored {
		st := res.State
		if len(st.Strategy) > 0 && st.StrategyName == s.strat.Name() {
			if ds, ok := s.strat.(shed.DurableStrategy); ok {
				if uerr := ds.UnmarshalState(st.Strategy); uerr != nil && s.cfg.Logf != nil {
					s.cfg.Logf("runtime: shard %d: strategy state rejected, keeping fresh: %v", s.id, uerr)
				}
			}
		}
	}

	// Index the WAL: Q records mark quarantined seqs replay must skip
	// (the poison-crash-loop breaker), M records the matches already
	// delivered before the crash (the duplicate-emission breaker).
	skips := make(map[uint64]bool)
	suppress := make(map[string]bool)
	for _, rec := range res.Records {
		switch rec.Kind {
		case checkpoint.RecSkip:
			if !haveFloor || rec.Seq > floor {
				skips[rec.Seq] = true
			}
		case checkpoint.RecMatch:
			suppress[rec.Key] = true
		}
	}

	var replayed uint64
	for _, rec := range res.Records {
		if rec.Kind != checkpoint.RecEvent || (haveFloor && rec.Seq <= floor) {
			continue
		}
		if skips[rec.Seq] {
			// The quarantined event is not reprocessed, but it still
			// advances the seq high-water mark (producers must not reuse
			// its number — a fresh event under a Q-recorded seq would be
			// skipped by every later replay) and, on the boot path, still
			// owes its arrival accounting: events_in == shed + processed +
			// quarantined must survive recovery.
			s.lastSeq, s.lastTime, s.hasSeq = rec.Seq, int64(rec.Event.Time), true
			if boot {
				s.eventsIn.Add(1)
				s.quarantined.Add(1)
			}
			continue
		}
		*cur = item{e: rec.Event}
		s.replayEvent(rec.Event, boot, suppress)
		replayed++
	}
	*cur = item{}

	if !boot {
		// The replayed engine re-counts creations/drops that the exported
		// atomics already include; re-base so the exported values resume
		// exactly where they stopped.
		st := s.en.Stats()
		s.pmCreatedBase = saturatingSub(wantCreated, st.CreatedPMs)
		s.pmDroppedBase = saturatingSub(wantDropped, st.DroppedPMs)
	}
	s.syncEngineStats()
	s.walReplayed.Add(replayed)
	s.restoredSeq.Store(s.lastSeq)
	s.restoredTime.Store(s.lastTime)
	if s.hasSeq {
		s.restoredHasSeq.Store(true)
	}
	if res.Torn && s.cfg.Logf != nil {
		s.cfg.Logf("runtime: shard %d: WAL tail torn (expected after a crash); replayed %d events", s.id, replayed)
	}
	s.bootPending = false
}

// replayEvent re-processes one WAL event during recovery. No WAL append
// (the record is already on disk), no latency sample (the enqueue
// instant is long gone — the strategy's control step sees the surviving
// EWMA), and counters only on the boot path, where they restore the
// pre-crash totals the snapshot missed.
func (s *shard) replayEvent(e *event.Event, boot bool, suppress map[string]bool) {
	if boot {
		s.eventsIn.Add(1)
	}
	s.lastSeq, s.lastTime, s.hasSeq = e.Seq, int64(e.Time), true
	if !s.strat.AdmitEvent(e, e.Time) {
		if boot {
			s.eventsShed.Add(1)
		}
		return
	}
	if s.cfg.BeforeProcess != nil {
		// Fault hooks fire in replay too: a deterministic poison event
		// panics again here, gets quarantined with a Q record, and the
		// NEXT recovery skips it — the crash loop terminates.
		s.cfg.BeforeProcess(s.id, e)
	}
	res := s.en.Process(e)
	if boot {
		s.processed.Add(1)
	}
	s.strat.Observe(&res, e.Time)
	if len(res.Matches) > 0 {
		s.deliver(res.Matches, e.Seq, suppress, boot)
	}
	s.strat.Control(e.Time, event.Time(math.Float64frombits(s.ewma.Load())))
}

// finish runs when the input channel closes. A clean drain takes a final
// snapshot (so a graceful shutdown restarts with zero WAL replay) and
// closes the store; a Kill abandons the buffered WAL tail unflushed —
// that is the crash being simulated.
func (s *shard) finish() {
	s.settleSnapshot(true)
	if s.ckpt != nil {
		if s.killed != nil && s.killed.Load() {
			s.pend = s.pend[:0]
			s.ckpt.Abort()
			return
		}
		// Settle any open flush group before the final snapshot; the drain
		// normally leaves pend empty, but a direct finish must not strand a
		// held match.
		if len(s.pend) > 0 {
			if err := s.ckpt.Flush(); err != nil {
				s.walFailed("flush", err)
			} else {
				s.releasePend()
			}
		}
	}
	if s.ckpt != nil {
		if s.exported {
			// The shipped state is authoritative now; a final snapshot here
			// would advance the local files past it and a restart would
			// replay history another node owns. The WAL already holds
			// everything up to the freeze.
			s.ckpt.Close()
		} else {
			// finish runs outside the supervised quantum, so a panic in the
			// final save (an OnStage injector, an encode bug) would kill the
			// process at shutdown instead of costing one snapshot. Degrading
			// to "no final snapshot" is safe: the WAL holds everything, so
			// the next boot replays it under match suppression instead of
			// restoring warm. An abandoned tmp file is what the write-rename
			// protocol already tolerates.
			func() {
				if !s.cfg.DisableRecovery {
					defer func() {
						if p := recover(); p != nil {
							if s.cfg.Logf != nil {
								s.cfg.Logf("runtime: shard %d: final snapshot panicked: %v", s.id, p)
							}
						}
					}()
				}
				s.takeSnapshot()
			}()
			s.ckpt.Close()
		}
	}
	s.en.Flush()
	s.syncEngineStats()
}

// record adds one wall-clock latency sample (now minus the event's
// enqueue instant) to the histograms and the EWMA, returning the updated
// smoothed latency as virtual time (both are nanoseconds, so the unit
// maps 1:1). Taking enq instead of a duration lets one clock read serve
// both the sample and the lastNs staleness stamp.
func (s *shard) record(enq time.Time, w float64) event.Time {
	now := time.Now()
	ns := now.Sub(enq).Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s.hist.Record(event.Time(ns))
	s.global.Record(event.Time(ns))
	prev := math.Float64frombits(s.ewma.Load())
	sm := w*float64(ns) + (1-w)*prev
	s.ewma.Store(math.Float64bits(sm))
	s.lastNs.Store(now.UnixNano())
	return event.Time(sm)
}

func (s *shard) snapshot() ShardSnapshot {
	depth := int(s.depth.Load())
	if depth < 0 {
		depth = 0
	}
	var plan shed.PlanStats
	if pr, ok := s.planRep.Load().(shed.PlanReporter); ok {
		plan = pr.PlanStats()
	}
	return ShardSnapshot{
		Shard:      s.id,
		Strategy:   s.stratName.Load().(string),
		QueueDepth: depth,
		QueueCap:   cap(s.ch),

		EventsIn:        s.eventsIn.Load(),
		EventsShed:      s.eventsShed.Load(),
		EventsProcessed: s.processed.Load(),
		Overflow:        s.overflow.Load(),
		Matches:         s.matched.Load(),

		LivePMs:    s.livePMs.Load(),
		CreatedPMs: s.createdPMs.Load(),
		DroppedPMs: s.droppedPMs.Load(),

		Restarts:    s.restarts.Load(),
		Quarantined: s.quarantined.Load(),
		Failed:      s.failed.Load(),
		Exported:    s.exportedFlag.Load(),
		BusyNs:      s.busyNs.Load(),

		AdmissionNs:     s.admitNs.Load(),
		PlansBuilt:      plan.PlansBuilt,
		PlansApplied:    plan.PlansApplied,
		PlansStale:      plan.PlansStale,
		PlanBuildNsLast: plan.BuildNsLast,
		PlanBuildNsMax:  plan.BuildNsMax,
		ShedStallMaxNs:  plan.StallNsMax,
		ClassBuckets:    s.classBuckets.Load(),
		ClassLivePMs:    s.classLive.Load(),
		ClassDeadPMs:    s.classDead.Load(),

		Recovering:     s.recovering.Load(),
		Snapshots:      s.snapshots.Load(),
		SnapPauseMaxNs: s.snapPauseMax.Load(),
		SnapshotBytes:  s.snapBytes.Load(),
		SnapshotUnixNs: s.snapUnixNs.Load(),
		WALReplayed:    s.walReplayed.Load(),
		ColdStarts:     s.coldStarts.Load(),
		WALErrors:      s.walErrors.Load(),

		SmoothedLatency: time.Duration(math.Float64frombits(s.ewma.Load())),
		P50:             time.Duration(s.hist.Quantile(0.50)),
		P95:             time.Duration(s.hist.Quantile(0.95)),
		P99:             time.Duration(s.hist.Quantile(0.99)),
		MeanLatency:     time.Duration(s.hist.Mean()),
		MaxLatency:      time.Duration(s.hist.Max()),
	}
}
