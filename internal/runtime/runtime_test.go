package runtime

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"cepshed/internal/baseline"
	"cepshed/internal/citibike"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// sortedKeys runs the sequential reference engine and returns its match
// keys in sorted-merge order.
func sortedKeys(ms []engine.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func feedAll(r *Runtime, s event.Stream) {
	for _, e := range s {
		r.Offer(e)
	}
	r.Close()
}

// equivalence runs stream through both the sequential engine and an
// n-shard runtime and requires byte-identical sorted match sets.
func equivalence(t *testing.T, m *nfa.Machine, s event.Stream, shards int) {
	t.Helper()
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))

	r := New(m, Config{Shards: shards, CollectMatches: true})
	feedAll(r, s)
	got := r.MatchKeys()
	sort.Strings(got)

	if len(want) == 0 {
		t.Fatal("reference run found no matches; test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shards=%d: %d matches, sequential %d; sets differ", shards, len(got), len(want))
	}
}

func TestShard1EquivalenceDS1(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 7, InterArrival: 15 * event.Microsecond})
	equivalence(t, m, s, 1)
}

func TestShard1EquivalenceCitiBike(t *testing.T) {
	m := nfa.MustCompile(query.HotPaths("5 min", 2, 5))
	s := citibike.Generate(citibike.Config{Trips: 1200, Seed: 3})
	equivalence(t, m, s, 1)
}

// Q1 correlates every match on one ID, so hash-partitioning by ID is
// exact for any shard count, not just one.
func TestShardedEquivalenceDS1(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 7, InterArrival: 15 * event.Microsecond})
	for _, shards := range []int{2, 4, 8} {
		equivalence(t, m, s, shards)
	}
}

func TestShardedEquivalenceCitiBike(t *testing.T) {
	m := nfa.MustCompile(query.HotPaths("5 min", 2, 5))
	s := citibike.Generate(citibike.Config{Trips: 1200, Seed: 3})
	equivalence(t, m, s, 4)
}

func TestInferPartitionKey(t *testing.T) {
	cases := []struct {
		q    *query.Query
		want string
	}{
		{query.Q1("8ms"), "ID"},
		{query.Q3("8ms"), "ID"},
		{query.Q4("8ms"), "ID"},
		{query.HotPaths("5 min", 2, 5), "bike"},
		{query.ClusterTasks("1 min"), "task"},
	}
	for _, c := range cases {
		if got := InferPartitionKey(c.q); got != c.want {
			t.Errorf("InferPartitionKey(%s) = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestSnapshotCountersConsistent(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 2, InterArrival: 15 * event.Microsecond})
	r := New(m, Config{
		Shards: 4,
		// A bound of 1ns is violated by every wall-clock sample, so the
		// drop controller must engage and shed some events.
		NewStrategy: func(i int) shed.Strategy { return baseline.NewRandomInput(1, int64(i)+1) },
	})
	feedAll(r, s)
	snap := r.Snapshot()

	if snap.EventsIn != uint64(len(s)) {
		t.Errorf("EventsIn = %d, want %d", snap.EventsIn, len(s))
	}
	if snap.EventsShed+snap.EventsProcessed != snap.EventsIn {
		t.Errorf("shed(%d) + processed(%d) != in(%d)",
			snap.EventsShed, snap.EventsProcessed, snap.EventsIn)
	}
	if snap.EventsShed == 0 {
		t.Error("1ns bound shed nothing; controller is not engaging")
	}
	if snap.InputShedRatio <= 0 {
		t.Errorf("InputShedRatio = %v, want > 0", snap.InputShedRatio)
	}
	if snap.LivePMs != 0 {
		t.Errorf("LivePMs after Close = %d, want 0 (flush)", snap.LivePMs)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("len(Shards) = %d, want 4", len(snap.Shards))
	}
	var perShard uint64
	for _, ss := range snap.Shards {
		perShard += ss.EventsIn
		if ss.Strategy != "RI" {
			t.Errorf("shard %d strategy = %q, want RI", ss.Shard, ss.Strategy)
		}
	}
	if perShard != snap.EventsIn {
		t.Errorf("per-shard sum %d != aggregate %d", perShard, snap.EventsIn)
	}
}

// gateStrategy blocks AdmitEvent until released, letting the test fill a
// shard queue deterministically.
type gateStrategy struct {
	shed.None
	gate  chan struct{}
	once  sync.Once
	first chan struct{} // closed when the worker is inside AdmitEvent
}

func (g *gateStrategy) AdmitEvent(e *event.Event, now event.Time) bool {
	g.once.Do(func() { close(g.first) })
	<-g.gate
	return true
}

func (g *gateStrategy) Control(event.Time, event.Time) vclock.Cost { return 0 }

func TestTryOfferOverflowAndBackpressureBound(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	gs := &gateStrategy{gate: make(chan struct{}), first: make(chan struct{})}
	const queueLen = 8
	r := New(m, Config{
		Shards:      1,
		QueueLen:    queueLen,
		NewStrategy: func(int) shed.Strategy { return gs },
	})

	s := gen.DS1(gen.DS1Config{Events: 100, Seed: 1})
	// The worker parks on the first event; everything after that queues.
	r.Offer(s[0])
	<-gs.first
	accepted := 1
	for _, e := range s[1:] {
		if r.TryOffer(e) {
			accepted++
		}
	}
	if accepted > queueLen+2 {
		t.Errorf("accepted %d events with a %d-slot queue; backpressure bound is broken", accepted, queueLen)
	}
	snap := r.Snapshot()
	if snap.Overflow == 0 {
		t.Error("no overflow drops recorded while the queue was full")
	}
	close(gs.gate)
	r.Close()
	final := r.Snapshot()
	if final.EventsIn != uint64(accepted) {
		t.Errorf("EventsIn = %d, want %d accepted", final.EventsIn, accepted)
	}
}

func TestMatchesSortedMergeOrder(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 6000, Seed: 5, InterArrival: 15 * event.Microsecond})
	r := New(m, Config{Shards: 4, CollectMatches: true})
	feedAll(r, s)
	ms := r.Matches()
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Detected < ms[i-1].Detected {
			t.Fatalf("matches not sorted by detection time at %d", i)
		}
		if ms[i].Detected == ms[i-1].Detected && ms[i].Key() < ms[i-1].Key() {
			t.Fatalf("ties not broken by key at %d", i)
		}
	}
}

func TestOnMatchCallback(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 6000, Seed: 5, InterArrival: 15 * event.Microsecond})
	var mu sync.Mutex
	n := 0
	r := New(m, Config{
		Shards: 4,
		OnMatch: func(shard int, match engine.Match) {
			mu.Lock()
			n++
			mu.Unlock()
		},
	})
	feedAll(r, s)
	snap := r.Snapshot()
	mu.Lock()
	defer mu.Unlock()
	if uint64(n) != snap.Matches {
		t.Errorf("OnMatch fired %d times, snapshot says %d matches", n, snap.Matches)
	}
	if n == 0 {
		t.Error("no matches delivered")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	r := New(m, Config{Shards: 2})
	r.Close()
	r.Close()
}

// Concurrent Snapshot while feeding must be race-free (run under -race).
func TestSnapshotDuringFeed(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 9, InterArrival: 15 * event.Microsecond})
	r := New(m, Config{Shards: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
		}
	}()
	feedAll(r, s)
	<-done
}

// Producers racing Close must never panic on a closed channel: in-flight
// Offers either land (and are drained) or are rejected, and the final
// snapshot accounts for exactly the accepted ones. Regression test for
// the cepserved SIGTERM-during-replay shutdown path.
func TestOfferDuringClose(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 20000, Seed: 11, InterArrival: 15 * event.Microsecond})
	r := New(m, Config{Shards: 4})

	var accepted atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(s); i += 4 {
				if r.Offer(s[i]) {
					accepted.Add(1)
				}
			}
		}(p)
	}
	r.Close() // races the producers by design
	wg.Wait()
	r.Close() // drain is idempotent after stragglers

	if r.Offer(s[0]) {
		t.Fatal("Offer accepted an event after Close")
	}
	if got, want := r.Snapshot().EventsIn, accepted.Load(); got != want {
		t.Fatalf("EventsIn = %d, accepted Offers = %d", got, want)
	}
}
