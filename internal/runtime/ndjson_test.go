package runtime

import (
	"errors"
	"io"
	"strings"
	"testing"
	"unicode/utf8"

	"cepshed/internal/engine"
	"cepshed/internal/event"
)

func TestParseEventRoundTrip(t *testing.T) {
	e := event.New("A", 1234, map[string]event.Value{
		"ID":   event.Int(7),
		"V":    event.Float(2.5),
		"user": event.Str(`x"y`),
	})
	line := EncodeEvent(e)
	got, hasTime, err := ParseEvent(line)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTime {
		t.Error("round trip lost the timestamp")
	}
	if got.Type != "A" || got.Time != 1234 {
		t.Errorf("type/time = %s/%d", got.Type, got.Time)
	}
	if got.Int("ID") != 7 || got.Float("V") != 2.5 || got.Str("user") != `x"y` {
		t.Errorf("attrs = %v", got.Attrs)
	}
	if got.Attrs["ID"].Kind != event.KindInt {
		t.Errorf("ID kind = %v, want int", got.Attrs["ID"].Kind)
	}
	if got.Attrs["V"].Kind != event.KindFloat {
		t.Errorf("V kind = %v, want float", got.Attrs["V"].Kind)
	}
}

func TestParseEventNoTime(t *testing.T) {
	got, hasTime, err := ParseEvent([]byte(`{"type":"B","attrs":{"ID":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if hasTime {
		t.Error("hasTime = true for a line without time")
	}
	if got.Type != "B" || got.Int("ID") != 1 {
		t.Errorf("got %v", got)
	}
}

func TestParseEventErrors(t *testing.T) {
	for _, line := range []string{
		``,
		`{`,
		`{"attrs":{}}`,                    // no type
		`{"type":"A","attrs":{"x":true}}`, // boolean attr
		`{"type":"A","attrs":{"x":[1]}}`,  // nested attr
		`{"type":"A","bogus":1}`,          // unknown field
	} {
		if _, _, err := ParseEvent([]byte(line)); err == nil {
			t.Errorf("ParseEvent(%q) succeeded, want error", line)
		}
	}
}

func TestEncodeMatch(t *testing.T) {
	a := event.New("A", 10, nil)
	a.Seq = 3
	b := event.New("B", 20, nil)
	b.Seq = 5
	m := engine.Match{Events: []*event.Event{a, b}, Detected: 20}
	line := string(EncodeMatch(1, m))
	for _, want := range []string{`"shard":1`, `"detected":20`, `"key":"3,5"`, `"seq":3`, `"type":"B"`} {
		if !strings.Contains(line, want) {
			t.Errorf("EncodeMatch output %s missing %s", line, want)
		}
	}
}

func TestLineDecoderHappyPathAndBlankLines(t *testing.T) {
	in := "{\"type\":\"A\",\"time\":1,\"attrs\":{\"ID\":1}}\n" +
		"\n" + // blank line skipped
		"   \r\n" + // whitespace-only skipped, CRLF tolerated
		"{\"type\":\"B\",\"time\":2,\"attrs\":{\"ID\":2}}\r\n" +
		"{\"type\":\"C\",\"attrs\":{}}" // final line without newline
	d := NewLineDecoder(strings.NewReader(in), 0)
	var types []string
	for {
		e, hasTime, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if e.Type == "C" && hasTime {
			t.Error("hasTime = true for the timeless final line")
		}
		types = append(types, e.Type)
	}
	if strings.Join(types, "") != "ABC" {
		t.Errorf("decoded types = %v, want A B C", types)
	}
	if d.Rejected() != 0 {
		t.Errorf("Rejected = %d on a clean stream", d.Rejected())
	}
	if d.Line() != 5 {
		t.Errorf("Line = %d, want 5 (blank lines count)", d.Line())
	}
}

func TestLineDecoderReportsLineNumberAndPayload(t *testing.T) {
	in := "{\"type\":\"A\",\"time\":1,\"attrs\":{}}\n" +
		"this is not json\n" +
		"{\"type\":\"B\",\"time\":2,\"attrs\":{}}\n"
	d := NewLineDecoder(strings.NewReader(in), 0)
	if _, _, err := d.Next(); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	_, _, err := d.Next()
	var lerr *LineError
	if !errors.As(err, &lerr) {
		t.Fatalf("line 2 error = %v, want *LineError", err)
	}
	if lerr.Line != 2 {
		t.Errorf("LineError.Line = %d, want 2", lerr.Line)
	}
	if lerr.Payload != "this is not json" {
		t.Errorf("LineError.Payload = %q", lerr.Payload)
	}
	if msg := lerr.Error(); !strings.Contains(msg, "line 2") || !strings.Contains(msg, "this is not json") {
		t.Errorf("Error() = %q missing line number or payload", msg)
	}
	// The decoder must keep going after a bad line.
	e, _, err := d.Next()
	if err != nil || e.Type != "B" {
		t.Fatalf("after bad line: %v, %v", e, err)
	}
	if d.Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", d.Rejected())
	}
}

// One huge line must be consumed and rejected — with a bounded payload
// sample and bounded memory — without poisoning the lines after it.
func TestLineDecoderOverlongLineRecovery(t *testing.T) {
	huge := strings.Repeat("x", 1<<20) // 1 MiB against a 4 KiB cap
	in := huge + "\n{\"type\":\"A\",\"time\":1,\"attrs\":{}}\n"
	d := NewLineDecoder(strings.NewReader(in), 4096)
	_, _, err := d.Next()
	var lerr *LineError
	if !errors.As(err, &lerr) {
		t.Fatalf("overlong line error = %v, want *LineError", err)
	}
	if lerr.Line != 1 {
		t.Errorf("LineError.Line = %d, want 1", lerr.Line)
	}
	if len(lerr.Payload) > maxPayloadSample+len("...") {
		t.Errorf("payload sample is %d bytes, want <= %d", len(lerr.Payload), maxPayloadSample+3)
	}
	if !strings.HasSuffix(lerr.Payload, "...") {
		t.Errorf("truncated payload %q lacks ellipsis", lerr.Payload)
	}
	e, _, err := d.Next()
	if err != nil || e.Type != "A" {
		t.Fatalf("line after overlong one: %v, %v", e, err)
	}
	if _, _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestLineDecoderSanitizesInvalidUTF8(t *testing.T) {
	d := NewLineDecoder(strings.NewReader("not json \xff\xfe\n"), 0)
	_, _, err := d.Next()
	var lerr *LineError
	if !errors.As(err, &lerr) {
		t.Fatalf("error = %v, want *LineError", err)
	}
	if !utf8.ValidString(lerr.Payload) {
		t.Errorf("payload %q is not valid UTF-8", lerr.Payload)
	}
}
