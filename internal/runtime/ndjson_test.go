package runtime

import (
	"strings"
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
)

func TestParseEventRoundTrip(t *testing.T) {
	e := event.New("A", 1234, map[string]event.Value{
		"ID":   event.Int(7),
		"V":    event.Float(2.5),
		"user": event.Str(`x"y`),
	})
	line := EncodeEvent(e)
	got, hasTime, err := ParseEvent(line)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTime {
		t.Error("round trip lost the timestamp")
	}
	if got.Type != "A" || got.Time != 1234 {
		t.Errorf("type/time = %s/%d", got.Type, got.Time)
	}
	if got.Int("ID") != 7 || got.Float("V") != 2.5 || got.Str("user") != `x"y` {
		t.Errorf("attrs = %v", got.Attrs)
	}
	if got.Attrs["ID"].Kind != event.KindInt {
		t.Errorf("ID kind = %v, want int", got.Attrs["ID"].Kind)
	}
	if got.Attrs["V"].Kind != event.KindFloat {
		t.Errorf("V kind = %v, want float", got.Attrs["V"].Kind)
	}
}

func TestParseEventNoTime(t *testing.T) {
	got, hasTime, err := ParseEvent([]byte(`{"type":"B","attrs":{"ID":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if hasTime {
		t.Error("hasTime = true for a line without time")
	}
	if got.Type != "B" || got.Int("ID") != 1 {
		t.Errorf("got %v", got)
	}
}

func TestParseEventErrors(t *testing.T) {
	for _, line := range []string{
		``,
		`{`,
		`{"attrs":{}}`,                    // no type
		`{"type":"A","attrs":{"x":true}}`, // boolean attr
		`{"type":"A","attrs":{"x":[1]}}`,  // nested attr
		`{"type":"A","bogus":1}`,          // unknown field
	} {
		if _, _, err := ParseEvent([]byte(line)); err == nil {
			t.Errorf("ParseEvent(%q) succeeded, want error", line)
		}
	}
}

func TestEncodeMatch(t *testing.T) {
	a := event.New("A", 10, nil)
	a.Seq = 3
	b := event.New("B", 20, nil)
	b.Seq = 5
	m := engine.Match{Events: []*event.Event{a, b}, Detected: 20}
	line := string(EncodeMatch(1, m))
	for _, want := range []string{`"shard":1`, `"detected":20`, `"key":"3,5"`, `"seq":3`, `"type":"B"`} {
		if !strings.Contains(line, want) {
			t.Errorf("EncodeMatch output %s missing %s", line, want)
		}
	}
}
