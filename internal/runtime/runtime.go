// Package runtime is the sharded, concurrent streaming runtime: the
// bridge between the deterministic virtual-time reproduction and a
// wall-clock online system. Events are partitioned by correlation key
// across N shards; each shard owns an independent engine instance plus
// its own shedding strategy and is fed through a bounded channel, so
// queue depth is real backpressure rather than a simulated queueing
// model. Each shard measures wall-clock queueing-plus-service latency,
// smooths it with an EWMA (paper w = 0.5), and hands the smoothed value
// to the strategy's control step — the same ρI/ρS control loop the
// virtual-time runner drives, now running against the hardware clock.
//
// With Shards = 1 the runtime degenerates to the sequential engine:
// events are processed in arrival order by one goroutine and the match
// set is identical to engine.Sequential — the determinism cross-check
// the tests enforce. With more shards, any query whose matches are
// connected by an equality predicate on one attribute (a.ID = b.ID = …)
// partitions exactly: all events of one key land on one shard, so the
// merged match set is again identical. Count windows are the exception —
// they expire on global sequence distance, which partitioning stretches;
// see docs/RUNTIME.md.
package runtime

import (
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

// Config configures a Runtime.
type Config struct {
	// Shards is the number of engine shards (default 1).
	Shards int
	// QueueLen is the per-shard bounded channel capacity (default 1024).
	// When a shard's queue is full, Offer blocks: backpressure propagates
	// to the producer instead of growing an unbounded buffer.
	QueueLen int
	// Costs calibrates the engines' virtual work accounting (zero value:
	// engine.DefaultCosts()). Virtual work is still tracked per event so
	// strategies that charge shedding overhead keep functioning, but
	// latency fed to the control loop is wall-clock.
	Costs engine.Costs
	// KeyAttr is the partition attribute; events hash to shards by its
	// value. Empty: inferred from the query's equality predicates via
	// InferPartitionKey, falling back to round-robin (approximate for
	// multi-shard runs; exact for Shards = 1).
	KeyAttr string
	// KeyFunc overrides partitioning entirely when non-nil.
	KeyFunc func(*event.Event) uint64
	// NewStrategy builds the per-shard shedding strategy (nil strategy /
	// nil factory: no shedding). Each shard needs its OWN instance:
	// strategies are stateful and are only ever called from the shard's
	// goroutine.
	NewStrategy func(shard int) shed.Strategy
	// SmoothWeight is the EWMA weight w applied to new latency samples,
	// smoothed = w·sample + (1−w)·smoothed (default 0.5, the paper's
	// adaptation weight).
	SmoothWeight float64
	// DeferredNegation selects witness-based negation semantics.
	DeferredNegation bool
	// CollectMatches keeps every match in memory so Matches() can return
	// the merged set after Close. Disable for long-running servers.
	CollectMatches bool
	// OnMatch, when set, is invoked from the detecting shard's goroutine
	// for every match. It must be safe for concurrent calls from
	// different shards.
	OnMatch func(shard int, m engine.Match)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.Costs == (engine.Costs{}) {
		c.Costs = engine.DefaultCosts()
	}
	if c.SmoothWeight <= 0 || c.SmoothWeight > 1 {
		c.SmoothWeight = 0.5
	}
	return c
}

// Runtime is a running sharded CEP pipeline. Create with New, feed with
// Offer (single producer, or multiple producers that tolerate per-shard
// interleaving), and stop with Close.
type Runtime struct {
	cfg    Config
	shards []*shard
	key    func(*event.Event) uint64
	global *metrics.Histogram // merged latency across shards

	// mu excludes Offer/TryOffer sends against Close closing the shard
	// channels: producers hold the read side around a send, Close takes
	// the write side before closing. A producer blocked on a full queue
	// holds its RLock, but shard workers keep draining until the channels
	// close (which needs the write lock), so the send — and with it
	// Close — always completes.
	mu     sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
}

// New builds and starts a runtime for a compiled machine. Shard worker
// goroutines start immediately; the runtime is ready for Offer.
func New(m *nfa.Machine, cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	r := &Runtime{cfg: cfg, global: metrics.NewHistogram()}
	r.key = cfg.KeyFunc
	if r.key == nil {
		attr := cfg.KeyAttr
		if attr == "" {
			attr = InferPartitionKey(m.Query)
		}
		r.key = keyByAttr(attr)
	}
	for i := 0; i < cfg.Shards; i++ {
		var strat shed.Strategy
		if cfg.NewStrategy != nil {
			strat = cfg.NewStrategy(i)
		}
		sh := newShard(i, m, cfg, strat, r.global)
		r.shards = append(r.shards, sh)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			sh.run()
		}()
	}
	return r
}

// NumShards returns the shard count.
func (r *Runtime) NumShards() int { return len(r.shards) }

// Offer routes the event to its shard and blocks while that shard's
// queue is full — this blocking IS the backpressure signal; a
// rate-limited producer that cannot tolerate blocking should use
// TryOffer. After Close the event is rejected and Offer returns false,
// so producers may race a shutdown without coordination.
func (r *Runtime) Offer(e *event.Event) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return false
	}
	r.shardFor(e).ch <- item{e: e, enq: time.Now()}
	return true
}

// TryOffer is the non-blocking variant: it returns false (counting the
// event as an overflow drop) instead of blocking when the shard queue is
// full. Like Offer it rejects events after Close.
func (r *Runtime) TryOffer(e *event.Event) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return false
	}
	sh := r.shardFor(e)
	select {
	case sh.ch <- item{e: e, enq: time.Now()}:
		return true
	default:
		sh.overflow.Add(1)
		return false
	}
}

func (r *Runtime) shardFor(e *event.Event) *shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	return r.shards[r.key(e)%uint64(len(r.shards))]
}

// Close drains the runtime gracefully: input channels are closed, every
// shard finishes its queued events (emitting any final matches they
// complete), engines flush their remaining state, and the workers exit.
// Close is idempotent and safe to call while producers are still
// offering — their in-flight sends finish first, later ones are
// rejected.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		r.wg.Wait()
		return
	}
	r.mu.Lock()
	for _, sh := range r.shards {
		close(sh.ch)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Matches returns the merged match set, sorted by detection time then
// match key (the deterministic "sorted merge" order). Only valid after
// Close and only when Config.CollectMatches was set.
func (r *Runtime) Matches() []engine.Match {
	var out []engine.Match
	for _, sh := range r.shards {
		out = append(out, sh.matches...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Detected != out[j].Detected {
			return out[i].Detected < out[j].Detected
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// MatchKeys returns the sorted-merge match identities (engine.Match.Key)
// in the same order as Matches.
func (r *Runtime) MatchKeys() []string {
	ms := r.Matches()
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	return keys
}

// ShardSnapshot is the point-in-time state of one shard.
type ShardSnapshot struct {
	Shard      int    `json:"shard"`
	Strategy   string `json:"strategy"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`

	EventsIn        uint64 `json:"events_in"`
	EventsShed      uint64 `json:"events_shed"`
	EventsProcessed uint64 `json:"events_processed"`
	Overflow        uint64 `json:"overflow_dropped"`
	Matches         uint64 `json:"matches"`

	LivePMs    int64  `json:"live_partial_matches"`
	CreatedPMs uint64 `json:"created_partial_matches"`
	DroppedPMs uint64 `json:"dropped_partial_matches"`

	SmoothedLatency time.Duration `json:"smoothed_latency_ns"`
	P50             time.Duration `json:"p50_ns"`
	P95             time.Duration `json:"p95_ns"`
	P99             time.Duration `json:"p99_ns"`
	MeanLatency     time.Duration `json:"mean_latency_ns"`
	MaxLatency      time.Duration `json:"max_latency_ns"`
}

// Snapshot is the aggregate point-in-time state of the runtime; all
// counters are monotone except queue depths, live partial matches, and
// latency statistics.
type Snapshot struct {
	Shards []ShardSnapshot `json:"shards"`

	EventsIn        uint64 `json:"events_in"`
	EventsShed      uint64 `json:"events_shed"`
	EventsProcessed uint64 `json:"events_processed"`
	Overflow        uint64 `json:"overflow_dropped"`
	Matches         uint64 `json:"matches"`
	LivePMs         int64  `json:"live_partial_matches"`
	CreatedPMs      uint64 `json:"created_partial_matches"`
	DroppedPMs      uint64 `json:"dropped_partial_matches"`

	// InputShedRatio is shed / offered events; PMShedRatio is dropped /
	// created partial matches (the paper's ρI and ρS realized ratios).
	InputShedRatio float64 `json:"input_shed_ratio"`
	PMShedRatio    float64 `json:"pm_shed_ratio"`

	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	P99         time.Duration `json:"p99_ns"`
	MeanLatency time.Duration `json:"mean_latency_ns"`
	MaxLatency  time.Duration `json:"max_latency_ns"`
}

// Snapshot captures the current counters. Safe to call at any time from
// any goroutine.
func (r *Runtime) Snapshot() Snapshot {
	var s Snapshot
	for _, sh := range r.shards {
		ss := sh.snapshot()
		s.Shards = append(s.Shards, ss)
		s.EventsIn += ss.EventsIn
		s.EventsShed += ss.EventsShed
		s.EventsProcessed += ss.EventsProcessed
		s.Overflow += ss.Overflow
		s.Matches += ss.Matches
		s.LivePMs += ss.LivePMs
		s.CreatedPMs += ss.CreatedPMs
		s.DroppedPMs += ss.DroppedPMs
	}
	if s.EventsIn > 0 {
		s.InputShedRatio = float64(s.EventsShed) / float64(s.EventsIn)
	}
	if s.CreatedPMs > 0 {
		s.PMShedRatio = float64(s.DroppedPMs) / float64(s.CreatedPMs)
	}
	s.P50 = time.Duration(r.global.Quantile(0.50))
	s.P95 = time.Duration(r.global.Quantile(0.95))
	s.P99 = time.Duration(r.global.Quantile(0.99))
	s.MeanLatency = time.Duration(r.global.Mean())
	s.MaxLatency = time.Duration(r.global.Max())
	return s
}

// String renders a one-line summary for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("in=%d shed=%d (%.1f%%) matched=%d pms=%d dropped=%d (%.1f%%) p50=%s p99=%s",
		s.EventsIn, s.EventsShed, 100*s.InputShedRatio, s.Matches,
		s.LivePMs, s.DroppedPMs, 100*s.PMShedRatio, s.P50, s.P99)
}

// InferPartitionKey picks the partition attribute from the query: the
// attribute most often equated between two different pattern variables
// (a.ID = b.ID and a.ID = c.ID make ID the key for Q1). Matches of such
// a query are fully contained in one partition, so key-hash sharding is
// exact. Returns "" when no cross-variable equality exists — then only
// round-robin (approximate) partitioning is possible.
func InferPartitionKey(q *query.Query) string {
	votes := map[string]int{}
	for _, p := range q.Where {
		cmp, ok := p.Expr.(*query.Compare)
		if !ok || cmp.Op != query.CmpEq {
			continue
		}
		l, lok := cmp.L.(*query.FieldRef)
		rr, rok := cmp.R.(*query.FieldRef)
		if !lok || !rok || l.Attr != rr.Attr || l.Var == rr.Var {
			continue
		}
		votes[l.Attr]++
	}
	best, bestN := "", 0
	for attr, n := range votes {
		if n > bestN || (n == bestN && attr < best) {
			best, bestN = attr, n
		}
	}
	return best
}

var keySeed = maphash.MakeSeed()

// keyByAttr hashes the named attribute's value (numerics hash by their
// float64 value so Int(5) and Float(5), which compare equal, co-locate;
// strings hash their bytes). Empty attr, or an event missing the attr,
// falls back to a per-call round-robin counter.
func keyByAttr(attr string) func(*event.Event) uint64 {
	var rr atomic.Uint64
	return func(e *event.Event) uint64 {
		if attr != "" {
			if v, ok := e.Get(attr); ok {
				var h maphash.Hash
				h.SetSeed(keySeed)
				if v.IsNumeric() {
					var buf [8]byte
					bits := math.Float64bits(v.AsFloat())
					for i := range buf {
						buf[i] = byte(bits >> (8 * i))
					}
					h.Write(buf[:])
				} else {
					h.WriteString(v.S)
				}
				return h.Sum64()
			}
		}
		return rr.Add(1)
	}
}
