// Package runtime is the sharded, concurrent streaming runtime: the
// bridge between the deterministic virtual-time reproduction and a
// wall-clock online system. Events are partitioned by correlation key
// across N shards; each shard owns an independent engine instance plus
// its own shedding strategy and is fed through a bounded channel, so
// queue depth is real backpressure rather than a simulated queueing
// model. Each shard measures wall-clock queueing-plus-service latency,
// smooths it with an EWMA (paper w = 0.5), and hands the smoothed value
// to the strategy's control step — the same ρI/ρS control loop the
// virtual-time runner drives, now running against the hardware clock.
//
// With Shards = 1 the runtime degenerates to the sequential engine:
// events are processed in arrival order by one goroutine and the match
// set is identical to engine.Sequential — the determinism cross-check
// the tests enforce. With more shards, any query whose matches are
// connected by an equality predicate on one attribute (a.ID = b.ID = …)
// partitions exactly: all events of one key land on one shard, so the
// merged match set is again identical. Count windows are the exception —
// they expire on global sequence distance, which partitioning stretches;
// see docs/RUNTIME.md.
//
// Two robustness layers wrap the shards (docs/ROBUSTNESS.md): a
// supervisor that recovers worker panics, quarantines poison events to a
// dead-letter queue, and fails persistent offenders over to healthy
// shards (supervisor.go); and a graceful-degradation ladder that extends
// the paper's "degrade quality, not latency" contract from the strategy
// level (ρI/ρS) up to the admission edge — probabilistic rejection at
// the door, then outright load rejection — driven by the same smoothed
// latency signal against the bound θ.
package runtime

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

// Degradation ladder levels, escalating with overload. Transitions are
// driven by the EWMA latency signal against Config.Bound and by
// aggregate queue fill; with Bound = 0 the ladder is disabled and the
// level stays LevelNormal.
const (
	// LevelNormal: smoothed latency under θ; nothing is degraded.
	LevelNormal = iota
	// LevelShedding: latency over θ; the per-shard strategies are
	// expected to be shedding (ρI/ρS). The runtime itself changes
	// nothing — this level makes strategy-driven degradation observable.
	LevelShedding
	// LevelAdmission: queues past the high-water mark (or latency far
	// over θ); offers are rejected probabilistically at the door before
	// they cost a queue slot.
	LevelAdmission
	// LevelReject: queues near capacity (or latency an order of
	// magnitude over θ); every offer is rejected so the backlog can
	// drain. Servers surface this as 429/NACK.
	LevelReject
)

// ladderStale is how long a shard's smoothed latency stays authoritative
// for the ladder after its last sample. A shard with an empty queue and
// no samples for this long contributes zero — otherwise a high EWMA
// frozen at the moment input stopped would wedge the ladder at a high
// level with no traffic left to decay it.
const ladderStale = 500 * time.Millisecond

// maxDeadLetterPayload bounds the payload rendering retained per dead
// letter.
const maxDeadLetterPayload = 160

// Config configures a Runtime.
type Config struct {
	// Shards is the number of engine shards (default 1). A shard is the
	// unit of STATE: a single-writer engine partition with its own queue,
	// strategy, and WAL.
	Shards int
	// Workers is the number of worker goroutines servicing the shard
	// queues (default: Shards). A worker is the unit of CPU: it services
	// its home shards first, then steals whole backlogged shards from
	// busy peers — never individual events, so per-key ordering and the
	// single-writer invariant survive. Workers < Shards decouples state
	// parallelism from CPU parallelism (e.g. many shards for fine-grained
	// failure isolation on a small core count); Workers > Shards wastes
	// goroutines and is clamped down.
	Workers int
	// QueueLen is the per-shard bounded channel capacity (default 1024).
	// When a shard's queue is full, Offer blocks: backpressure propagates
	// to the producer instead of growing an unbounded buffer.
	QueueLen int
	// Costs calibrates the engines' virtual work accounting (zero value:
	// engine.DefaultCosts()). Virtual work is still tracked per event so
	// strategies that charge shedding overhead keep functioning, but
	// latency fed to the control loop is wall-clock.
	Costs engine.Costs
	// KeyAttr is the partition attribute; events hash to shards by its
	// value. Empty: inferred from the query's equality predicates via
	// InferPartitionKey, falling back to round-robin (approximate for
	// multi-shard runs; exact for Shards = 1).
	KeyAttr string
	// KeySalt perturbs the key hash, effectively rekeying shard
	// ownership from `key` to `(salt, key)`. A multi-query registry sets
	// it to the query fingerprint so the same correlation key lands on
	// different shard indices for different queries — one hot key cannot
	// pile every query's work onto the same worker. Zero (the
	// single-query default) leaves the hash untouched.
	KeySalt uint64
	// KeyFunc overrides partitioning entirely when non-nil.
	KeyFunc func(*event.Event) uint64
	// NewStrategy builds the per-shard shedding strategy (nil strategy /
	// nil factory: no shedding). Each shard needs its OWN instance:
	// strategies are stateful and are only ever called by the single
	// worker currently servicing the shard. The supervisor calls the
	// factory again when it rebuilds a shard after a panic.
	NewStrategy func(shard int) shed.Strategy
	// SmoothWeight is the EWMA weight w applied to new latency samples,
	// smoothed = w·sample + (1−w)·smoothed (default 0.5, the paper's
	// adaptation weight).
	SmoothWeight float64
	// DeferredNegation selects witness-based negation semantics.
	DeferredNegation bool
	// CollectMatches keeps every match in memory so Matches() can return
	// the merged set after Close. Disable for long-running servers.
	CollectMatches bool
	// OnMatch, when set, is invoked from the worker servicing the
	// detecting shard, for every match. It must be safe for concurrent
	// calls from different shards.
	OnMatch func(shard int, m engine.Match)

	// Bound is the wall-clock latency bound θ driving the degradation
	// ladder. Zero disables the ladder (the level stays LevelNormal and
	// admission control never engages); the per-shard strategies still
	// run whatever bound they were built with.
	Bound time.Duration
	// HighWater is the aggregate queue-fill fraction where admission
	// control (LevelAdmission) starts rejecting probabilistically
	// (default 0.75).
	HighWater float64
	// RejectWater is the fill fraction where the ladder escalates to
	// LevelReject and refuses all input (default 0.95).
	RejectWater float64
	// Restart tunes the shard supervisor's backoff and circuit breaker;
	// zero value: defaults (see RestartPolicy).
	Restart RestartPolicy
	// DeadLetterCap is how many recent dead letters are retained for
	// DeadLetters() (default 256). The total count is unbounded and
	// monotone.
	DeadLetterCap int
	// DisableRecovery turns the shard supervisor off: a worker panic
	// propagates and crashes the process. Useful when debugging engine
	// bugs that quarantining would mask.
	DisableRecovery bool
	// BeforeProcess, when set, runs on the worker servicing the shard,
	// after ρI admission and immediately before the engine processes the
	// event.
	// It exists for fault injection (internal/fault): it may panic or
	// sleep, and the supervisor treats either as it would a real fault.
	BeforeProcess func(shard int, e *event.Event)
	// Durability, when non-nil, enables per-shard checkpointing: each
	// shard snapshots its full state (live partial matches, counters,
	// strategy state) every EveryEvents events and logs the events in
	// between to a write-ahead log, so a crash or restart loses at most
	// one WAL flush interval of work instead of every open partial match.
	// See docs/DURABILITY.md. A shard whose store cannot be opened runs
	// without durability (logged), never fails to start.
	Durability *checkpoint.Config
	// Logf receives supervisor and ladder lifecycle messages (restarts,
	// breaker trips, level transitions). Nil: silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 || c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.Costs == (engine.Costs{}) {
		c.Costs = engine.DefaultCosts()
	}
	if c.SmoothWeight <= 0 || c.SmoothWeight > 1 {
		c.SmoothWeight = 0.5
	}
	if c.HighWater <= 0 || c.HighWater >= 1 {
		c.HighWater = 0.75
	}
	if c.RejectWater <= c.HighWater || c.RejectWater > 1 {
		c.RejectWater = 0.95
	}
	if c.DeadLetterCap <= 0 {
		c.DeadLetterCap = 256
	}
	c.Restart = c.Restart.withDefaults()
	return c
}

// Runtime is a running sharded CEP pipeline. Create with New, feed with
// Offer (single producer, or multiple producers that tolerate per-shard
// interleaving), and stop with Close.
type Runtime struct {
	cfg    Config
	shards []*shard
	key    func(*event.Event) uint64
	global *metrics.Histogram // merged latency across shards

	// Worker pool (workers.go): workers is the pool size, wake is the
	// buffered token channel idle workers block on, steals counts
	// quanta a worker ran on a non-home shard.
	workers int
	wake    chan struct{}
	steals  atomic.Uint64

	dlq               *deadLetters
	dlqEdgeMu         sync.Mutex // serializes Quarantine's shared-owner DLQ saves
	admit             *shed.AdmissionController
	level             atomic.Int32
	admissionRejected atomic.Uint64

	// Durability plumbing (inert without Config.Durability): fp binds
	// checkpoints to this query/sharding configuration, dur is the
	// resolved checkpoint config (nil when durability is off), recoverWG
	// releases WaitRecovered once every shard has finished (or skipped)
	// recovery, and killed switches Close into Kill's crash-simulation
	// mode.
	fp        uint64
	dur       *checkpoint.Config
	recoverWG sync.WaitGroup
	killed    atomic.Bool

	// mu excludes Offer/TryOffer sends against Close closing the shard
	// channels: producers hold the read side around a send, Close takes
	// the write side before closing. A producer blocked on a full queue
	// holds its RLock, but shard workers keep draining until the channels
	// close (which needs the write lock), so the send — and with it
	// Close — always completes. Failover forwarding (supervisor.go)
	// mirrors the producer side of this protocol.
	mu     sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
}

// New builds and starts a runtime for a compiled machine. Shard worker
// goroutines start immediately; the runtime is ready for Offer.
func New(m *nfa.Machine, cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	r := &Runtime{
		cfg:    cfg,
		global: metrics.NewHistogram(),
		dlq:    newDeadLetters(cfg.DeadLetterCap),
		admit:  shed.NewAdmissionController(cfg.HighWater, cfg.RejectWater, 0x5eed),
	}
	r.workers = cfg.Workers
	r.wake = make(chan struct{}, cfg.Workers)
	r.key = cfg.KeyFunc
	if r.key == nil {
		attr := cfg.KeyAttr
		if attr == "" {
			attr = InferPartitionKey(m.Query)
		}
		r.key = keyByAttr(attr, cfg.KeySalt)
	}
	var dur checkpoint.Config
	if cfg.Durability != nil {
		dur = cfg.Durability.WithDefaults()
		r.dur = &dur
		r.fp = checkpoint.Fingerprint(
			m.Query.String(),
			fmt.Sprintf("shards=%d", cfg.Shards),
			fmt.Sprintf("defneg=%v", cfg.DeferredNegation),
		)
		if st, err := checkpoint.LoadDeadLetters(dur.Dir); err != nil {
			r.logf("runtime: dead-letter checkpoint unreadable, starting empty: %v", err)
		} else {
			r.dlq.seed(st)
		}
		r.recoverWG.Add(cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		var strat shed.Strategy
		if cfg.NewStrategy != nil {
			strat = cfg.NewStrategy(i)
		}
		sh := newShard(i, m, cfg, strat, r.global)
		sh.killed = &r.killed
		if cfg.Durability != nil {
			store, err := checkpoint.NewShardStore(dur, i, r.fp)
			if err != nil {
				// A shard must start even when its store cannot: durability
				// degrades, availability does not.
				r.logf("runtime: shard %d: checkpoint store unavailable, running without durability: %v", i, err)
			} else {
				sh.ckpt = store
				sh.needRecover = true
				sh.needRecoverFlag.Store(true)
				// bootPending distinguishes the first (boot) recovery — which
				// composes counters from the snapshot — from post-panic
				// rebuilds; it stays true across boot-replay panics so a
				// retry resumes boot counter composition.
				sh.bootPending = true
			}
			owner := i
			sh.recoverDone = r.recoverWG.Done
			sh.saveDLQ = func() { r.saveDeadLetters(dur, owner) }
		}
		sh.wakeFn = r.wakeOne
		r.shards = append(r.shards, sh)
	}
	for w := 0; w < cfg.Workers; w++ {
		r.wg.Add(1)
		go r.worker(w)
	}
	return r
}

// WaitRecovered blocks until every shard has finished restoring its
// snapshot and replaying its WAL tail (immediately without durability).
// Servers call this before accepting traffic so recovery is not racing
// live input for the worker goroutine.
func (r *Runtime) WaitRecovered() { r.recoverWG.Wait() }

// Recovering reports whether any shard is still inside its
// restore-and-replay phase.
func (r *Runtime) Recovering() bool {
	for _, sh := range r.shards {
		if sh.recovering.Load() {
			return true
		}
	}
	return false
}

// RecoveryInfo summarises what boot recovery restored.
type RecoveryInfo struct {
	// Restored reports that at least one shard recovered a sequence floor
	// (snapshot or WAL event). Producers must gate seq resumption on this,
	// not on MaxSeq > 0 — sequence numbers start at 0, so MaxSeq == 0 is
	// ambiguous between "nothing restored" and "restored through seq 0".
	Restored bool `json:"restored"`
	// MaxSeq / MaxTime are the highest restored input sequence number and
	// event time across shards; producers resume numbering above MaxSeq
	// when Restored is true.
	MaxSeq  uint64 `json:"max_seq"`
	MaxTime int64  `json:"max_time"`
	// WALReplayed counts events replayed from WAL tails; ColdStarts counts
	// shards that fell back to an empty engine.
	WALReplayed uint64 `json:"wal_replayed"`
	ColdStarts  uint64 `json:"cold_starts"`
}

// RecoveryInfo reports the post-recovery floor; meaningful after
// WaitRecovered returns.
func (r *Runtime) RecoveryInfo() RecoveryInfo {
	var info RecoveryInfo
	for _, sh := range r.shards {
		if sh.restoredHasSeq.Load() {
			info.Restored = true
		}
		if seq := sh.restoredSeq.Load(); seq > info.MaxSeq {
			info.MaxSeq = seq
		}
		if t := sh.restoredTime.Load(); t > info.MaxTime {
			info.MaxTime = t
		}
		info.WALReplayed += sh.walReplayed.Load()
		info.ColdStarts += sh.coldStarts.Load()
	}
	return info
}

// LoadStats is the cheap load summary the cross-query arbiter polls
// every tick: monotone counters plus the instantaneous ladder signals.
// Reading it touches a handful of atomics per shard — no histogram
// quantiles, no per-shard snapshot structs.
type LoadStats struct {
	// BusyNs is cumulative worker service time across shards; the delta
	// between two polls over the wall interval is the utilization this
	// query costs the process.
	BusyNs int64
	// EventsIn/EventsShed/Processed/Matches are the aggregate monotone
	// counters (same meaning as Snapshot's).
	EventsIn   uint64
	EventsShed uint64
	Processed  uint64
	Matches    uint64
	// SmoothedLatency is the worst effective per-shard EWMA (stale shards
	// decayed, as for the degradation ladder); QueueFill the aggregate
	// queue fill in [0,1].
	SmoothedLatency time.Duration
	QueueFill       float64
}

// LoadStats gathers the arbiter's poll cheaply; safe from any goroutine.
func (r *Runtime) LoadStats() LoadStats {
	var st LoadStats
	for _, sh := range r.shards {
		st.BusyNs += sh.busyNs.Load()
		st.EventsIn += sh.eventsIn.Load()
		st.EventsShed += sh.eventsShed.Load()
		st.Processed += sh.processed.Load()
		st.Matches += sh.matched.Load()
	}
	ewma, fill := r.ladderSignals()
	st.SmoothedLatency = time.Duration(ewma)
	st.QueueFill = fill
	return st
}

// Kill simulates a crash for tests: shards stop touching the engine and
// the WAL, buffered WAL tails are abandoned unflushed, and no final
// snapshot is taken — exactly the on-disk state a SIGKILL would leave.
// The runtime still drains its channels so blocked producers unblock.
func (r *Runtime) Kill() {
	r.killed.Store(true)
	r.Close()
}

// saveDeadLetters checkpoints the runtime-wide dead-letter queue. Every
// durable shard calls it after its own snapshot (owner keeps their temp
// files from colliding); last writer wins, which is fine — the queue is
// shared state and any recent copy serves the postmortem.
func (r *Runtime) saveDeadLetters(dur checkpoint.Config, owner int) {
	if err := checkpoint.SaveDeadLetters(dur.Dir, owner, r.dlq.state(), dur.Fsync); err != nil {
		r.logf("runtime: dead-letter checkpoint failed: %v", err)
	}
}

// persistDeadLetters checkpoints the queue right away, outside the
// snapshot cadence. Quarantines are rare and each letter is exactly the
// record a postmortem needs, so the queue is made durable on write — a
// SIGKILL right after a poison event must not lose the evidence. owner
// only namespaces the temp file; callers on distinct goroutines must
// pass distinct values.
func (r *Runtime) persistDeadLetters(owner int) {
	if r.dur == nil {
		return
	}
	r.saveDeadLetters(*r.dur, owner)
}

// NumShards returns the shard count.
func (r *Runtime) NumShards() int { return len(r.shards) }

// Fingerprint returns the checkpoint fingerprint binding this runtime's
// durable state to its query text and sharding configuration; zero
// without durability.
func (r *Runtime) Fingerprint() uint64 { return r.fp }

func (r *Runtime) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Offer routes the event to its shard and blocks while that shard's
// queue is full — this blocking IS the backpressure signal; a
// rate-limited producer that cannot tolerate blocking should use
// TryOffer. After Close the event is rejected and Offer returns false,
// so producers may race a shutdown without coordination. Offer also
// returns false when the degradation ladder is rejecting at the door
// (levels 2–3) or when every shard has failed; those rejections are
// counted in Snapshot.AdmissionRejected.
func (r *Runtime) Offer(e *event.Event) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return false
	}
	if !r.admitAtDoor() {
		return false
	}
	sh := r.shardFor(e)
	if sh == nil {
		r.admissionRejected.Add(1)
		return false
	}
	sh.depth.Add(1)
	sh.ch <- batch{one: item{e: e, enq: time.Now()}}
	r.wakeOne()
	return true
}

// TryOffer is the non-blocking variant: it returns false (counting the
// event as an overflow drop) instead of blocking when the shard queue is
// full. Like Offer it rejects events after Close and while the ladder is
// rejecting at the door.
func (r *Runtime) TryOffer(e *event.Event) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return false
	}
	if !r.admitAtDoor() {
		return false
	}
	sh := r.shardFor(e)
	if sh == nil {
		r.admissionRejected.Add(1)
		return false
	}
	sh.depth.Add(1)
	select {
	case sh.ch <- batch{one: item{e: e, enq: time.Now()}}:
		r.wakeOne()
		return true
	default:
		sh.depth.Add(-1)
		sh.overflow.Add(1)
		return false
	}
}

// OfferBatch routes a slice of events to their shards in one pass: one
// lock acquisition, one clock read, and one degradation-ladder update
// cover the whole slice, and each shard receives its events as a single
// queued batch instead of one channel operation per event. Per-event
// semantics match Offer — blocking backpressure, door rejection at
// ladder levels 2–3 (per event at LevelAdmission, so the admission
// probability still applies), counted rejections — and the return value
// is how many events were accepted. Order is preserved per shard, the
// only order the runtime guarantees. One batch may briefly push a
// shard's queued-event count past QueueLen (the channel bounds batches,
// not events); the ladder's fill signal sees that surplus, which errs
// toward shedding earlier, never later.
func (r *Runtime) OfferBatch(events []*event.Event) int {
	if len(events) == 0 {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return 0
	}
	lvl, fill := LevelNormal, 0.0
	if r.cfg.Bound > 0 {
		lvl, fill = r.updateLevel()
		if lvl >= LevelReject {
			r.admissionRejected.Add(uint64(len(events)))
			return 0
		}
	}
	enq := time.Now()
	accepted := 0
	var groups [][]item
	for _, e := range events {
		if lvl == LevelAdmission && !r.admit.Admit(fill) {
			r.admissionRejected.Add(1)
			continue
		}
		sh := r.shardFor(e)
		if sh == nil {
			r.admissionRejected.Add(1)
			continue
		}
		if groups == nil {
			groups = make([][]item, len(r.shards))
		}
		if groups[sh.id] == nil {
			groups[sh.id] = getItems()
		}
		groups[sh.id] = append(groups[sh.id], item{e: e, enq: enq})
		accepted++
	}
	for id, g := range groups {
		if g == nil {
			continue
		}
		sh := r.shards[id]
		if len(g) == 1 {
			one := g[0]
			putItems(g)
			sh.depth.Add(1)
			sh.ch <- batch{one: one}
			r.wakeOne()
			continue
		}
		sh.depth.Add(int64(len(g)))
		sh.ch <- batch{items: g}
		r.wakeOne()
	}
	return accepted
}

// admitAtDoor runs the degradation ladder's door checks: at LevelReject
// everything is refused, at LevelAdmission offers are rejected with a
// probability that ramps with queue fill. Cheap at LevelNormal — with
// Bound = 0 it is a single comparison.
func (r *Runtime) admitAtDoor() bool {
	if r.cfg.Bound <= 0 {
		return true
	}
	lvl, fill := r.updateLevel()
	switch {
	case lvl >= LevelReject:
		r.admissionRejected.Add(1)
		return false
	case lvl == LevelAdmission && !r.admit.Admit(fill):
		r.admissionRejected.Add(1)
		return false
	}
	return true
}

// ladderSignals gathers the two inputs of the ladder: the worst
// effective smoothed latency across shards (stale signals of drained
// shards decay to zero, see ladderStale) and the aggregate queue fill.
func (r *Runtime) ladderSignals() (maxEwma, fill float64) {
	now := time.Now().UnixNano()
	var depth, capTot int
	for _, sh := range r.shards {
		d := int(sh.depth.Load())
		if d < 0 {
			d = 0
		}
		depth += d
		capTot += cap(sh.ch)
		ew := math.Float64frombits(sh.ewma.Load())
		if d == 0 && now-sh.lastNs.Load() > int64(ladderStale) {
			ew = 0
		}
		if ew > maxEwma {
			maxEwma = ew
		}
	}
	if capTot > 0 {
		fill = float64(depth) / float64(capTot)
	}
	return maxEwma, fill
}

// levelFor maps the signals to a ladder level. scale < 1 tightens every
// threshold, which is how updateLevel implements de-escalation
// hysteresis: leaving a level requires the signals to clear the scaled
// (easier to trip) thresholds too.
func (r *Runtime) levelFor(maxEwma, fill, scale float64) int {
	theta := float64(r.cfg.Bound.Nanoseconds()) * scale
	lvl := LevelNormal
	if maxEwma > theta {
		lvl = LevelShedding
	}
	if fill >= r.cfg.HighWater*scale || maxEwma > 4*theta {
		lvl = LevelAdmission
	}
	if fill >= r.cfg.RejectWater*scale || maxEwma > 8*theta {
		lvl = LevelReject
	}
	return lvl
}

// updateLevel recomputes the ladder level with hysteresis: escalation is
// immediate, de-escalation requires the signals to clear thresholds
// tightened by 30% so the level doesn't flap around a boundary.
func (r *Runtime) updateLevel() (int, float64) {
	maxEwma, fill := r.ladderSignals()
	raw := r.levelFor(maxEwma, fill, 1.0)
	cur := int(r.level.Load())
	next := raw
	if raw < cur {
		if hold := r.levelFor(maxEwma, fill, 0.7); hold < cur {
			next = hold
		} else {
			next = cur
		}
	}
	if next != cur && r.level.CompareAndSwap(int32(cur), int32(next)) {
		r.logf("runtime: degradation level %d -> %d (ewma=%s fill=%.2f)",
			cur, next, time.Duration(maxEwma), fill)
	}
	return next, fill
}

// DegradationLevel returns the current ladder level (refreshed from the
// live signals, so it de-escalates even when no offers arrive).
func (r *Runtime) DegradationLevel() int {
	if r.cfg.Bound <= 0 {
		return LevelNormal
	}
	lvl, _ := r.updateLevel()
	return lvl
}

// Quarantine records an input that was rejected before it became a
// runtime event — typically an undecodable NDJSON line — in the
// dead-letter queue (Shard = -1). payload should already be truncated to
// a reasonable length; it is clamped to the dead-letter bound anyway.
func (r *Runtime) Quarantine(reason, payload string) {
	r.dlq.add(DeadLetter{
		Shard:   -1,
		Reason:  reason,
		Payload: truncatePayload([]byte(payload), maxDeadLetterPayload),
	})
	// len(r.shards) as owner: an id no shard worker uses, so edge-side
	// quarantines never collide with a shard's snapshot-time save.
	r.dlqEdgeMu.Lock()
	r.persistDeadLetters(len(r.shards))
	r.dlqEdgeMu.Unlock()
}

// DeadLetters returns a copy of the retained dead letters, oldest first.
// The retention window is Config.DeadLetterCap; Snapshot.Quarantined
// counts every dead letter ever recorded.
func (r *Runtime) DeadLetters() []DeadLetter { return r.dlq.letters() }

func (r *Runtime) shardFor(e *event.Event) *shard {
	sh := r.shards[0]
	if len(r.shards) > 1 {
		sh = r.shards[r.key(e)%uint64(len(r.shards))]
	}
	if sh.failed.Load() {
		// Key range of a failed shard routes to the next healthy shard;
		// nil (every shard failed) makes Offer reject the event.
		sh = r.fallbackFor(sh.id)
	}
	return sh
}

// Close drains the runtime gracefully: input channels are closed, every
// shard finishes its queued events (emitting any final matches they
// complete), engines flush their remaining state, and the workers exit.
// Close is idempotent and safe to call while producers are still
// offering — their in-flight sends finish first, later ones are
// rejected.
func (r *Runtime) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		r.wg.Wait()
		return
	}
	r.mu.Lock()
	for _, sh := range r.shards {
		close(sh.ch)
	}
	r.mu.Unlock()
	// Wake every worker so none stays blocked on r.wake with no producer
	// left to send tokens; they observe the closed channels and exit.
	r.wakeAll()
	r.wg.Wait()
}

// Matches returns the merged match set, sorted by detection time then
// match key (the deterministic "sorted merge" order). Only valid after
// Close and only when Config.CollectMatches was set.
func (r *Runtime) Matches() []engine.Match {
	var out []engine.Match
	for _, sh := range r.shards {
		out = append(out, sh.matches...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Detected != out[j].Detected {
			return out[i].Detected < out[j].Detected
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// MatchKeys returns the sorted-merge match identities (engine.Match.Key)
// in the same order as Matches.
func (r *Runtime) MatchKeys() []string {
	ms := r.Matches()
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	return keys
}

// ShardSnapshot is the point-in-time state of one shard.
type ShardSnapshot struct {
	Shard      int    `json:"shard"`
	Strategy   string `json:"strategy"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`

	EventsIn        uint64 `json:"events_in"`
	EventsShed      uint64 `json:"events_shed"`
	EventsProcessed uint64 `json:"events_processed"`
	Overflow        uint64 `json:"overflow_dropped"`
	Matches         uint64 `json:"matches"`

	LivePMs    int64  `json:"live_partial_matches"`
	CreatedPMs uint64 `json:"created_partial_matches"`
	DroppedPMs uint64 `json:"dropped_partial_matches"`

	Restarts    uint64 `json:"restarts"`
	Quarantined uint64 `json:"quarantined"`
	Failed      bool   `json:"failed"`
	// Exported marks a slot frozen by shard migration: its state was
	// handed to another node and stray arrivals are quarantined.
	Exported bool `json:"exported,omitempty"`

	// BusyNs is cumulative wall time the worker spent servicing batches
	// (queue waiting excluded); ΔBusyNs/Δwall is the shard's utilization.
	BusyNs int64 `json:"busy_ns"`

	// Shed decision path. AdmissionNs is (sampled, extrapolated) wall
	// time spent in ρI admission decisions. The Plan* counters come from
	// the strategy's PlanReporter when it has one (the async shed
	// planner): plans built by the planner goroutine, applied by the
	// worker, or discarded on the drop-epoch fence; build times; and the
	// worst worker pause a shedding trigger caused. ClassBuckets/
	// ClassLivePMs/ClassDeadPMs are the engine's class-bucket index
	// occupancy (the structure bucketed drops and population snapshots
	// read), published at batch boundaries.
	AdmissionNs     int64  `json:"admission_ns"`
	PlansBuilt      uint64 `json:"shed_plans_built"`
	PlansApplied    uint64 `json:"shed_plans_applied"`
	PlansStale      uint64 `json:"shed_plans_stale"`
	PlanBuildNsLast int64  `json:"shed_plan_build_ns_last"`
	PlanBuildNsMax  int64  `json:"shed_plan_build_ns_max"`
	ShedStallMaxNs  int64  `json:"shed_stall_max_ns"`
	ClassBuckets    int64  `json:"class_buckets"`
	ClassLivePMs    int64  `json:"class_live_pms"`
	ClassDeadPMs    int64  `json:"class_dead_pms"`

	// Durability state; all zero when the shard runs without a
	// checkpoint store.
	Recovering bool   `json:"recovering"`
	Snapshots  uint64 `json:"snapshots"`
	// SnapPauseMaxNs is the worst pause the snapshot protocol has
	// inflicted on this shard's serving thread: the full encode+write for
	// sync saves, just capture + finalize (flush, WAL rotation) for the
	// off-hot-path async protocol. The snapshot-stall benchmark gates on
	// the sync/async ratio of this gauge.
	SnapPauseMaxNs int64 `json:"snap_pause_max_ns"`
	SnapshotBytes  int64 `json:"snapshot_bytes"`
	SnapshotUnixNs int64 `json:"snapshot_unix_ns"`
	WALReplayed    uint64 `json:"wal_replayed"`
	ColdStarts     uint64 `json:"cold_starts"`
	// WALErrors counts WAL append/flush failures; the first one disables
	// durability for the shard (loudly), so any nonzero value means the
	// exactly-once contract no longer holds across a restart.
	WALErrors uint64 `json:"wal_errors"`

	SmoothedLatency time.Duration `json:"smoothed_latency_ns"`
	P50             time.Duration `json:"p50_ns"`
	P95             time.Duration `json:"p95_ns"`
	P99             time.Duration `json:"p99_ns"`
	MeanLatency     time.Duration `json:"mean_latency_ns"`
	MaxLatency      time.Duration `json:"max_latency_ns"`
}

// Snapshot is the aggregate point-in-time state of the runtime; all
// counters are monotone except queue depths, live partial matches,
// latency statistics, and the degradation level.
type Snapshot struct {
	Shards []ShardSnapshot `json:"shards"`

	// Workers is the worker-pool size; Steals counts service quanta a
	// worker ran on a non-home shard (nonzero means work stealing is
	// actually redistributing load).
	Workers int    `json:"workers"`
	Steals  uint64 `json:"steals"`

	EventsIn        uint64 `json:"events_in"`
	EventsShed      uint64 `json:"events_shed"`
	EventsProcessed uint64 `json:"events_processed"`
	Overflow        uint64 `json:"overflow_dropped"`
	Matches         uint64 `json:"matches"`
	LivePMs         int64  `json:"live_partial_matches"`
	CreatedPMs      uint64 `json:"created_partial_matches"`
	DroppedPMs      uint64 `json:"dropped_partial_matches"`
	BusyNs          int64  `json:"busy_ns"`

	// Robustness counters. Restarts sums supervisor restarts across
	// shards; Quarantined counts every dead letter ever recorded
	// (including pre-runtime rejections fed through Quarantine, which no
	// per-shard counter covers); AdmissionRejected counts offers refused
	// at the door by the degradation ladder (levels 2–3, plus offers with
	// no healthy shard left).
	DegradationLevel  int    `json:"degradation_level"`
	Restarts          uint64 `json:"restarts"`
	Quarantined       uint64 `json:"quarantined"`
	AdmissionRejected uint64 `json:"admission_rejected"`
	FailedShards      int    `json:"failed_shards"`
	// ExportedShards counts slots frozen by shard migration (state handed
	// to another node); ShardQuarantined sums the per-shard quarantine
	// counters — unlike Quarantined (the dead-letter total, which also
	// counts pre-runtime rejections) it is the exact term of the per-node
	// conservation identity events_in == shed + processed + quarantined.
	ExportedShards   int    `json:"exported_shards,omitempty"`
	ShardQuarantined uint64 `json:"shard_quarantined"`

	// Durability aggregates (zero without Config.Durability).
	// Recovering is true while any shard is still restoring/replaying;
	// OldestSnapshotUnixNs is the stalest shard snapshot instant (0 until
	// every durable shard has snapshotted at least once), the basis of the
	// snapshot-age gauge.
	Recovering           bool   `json:"recovering"`
	Snapshots            uint64 `json:"snapshots"`
	WALReplayed          uint64 `json:"wal_replayed"`
	ColdStarts           uint64 `json:"cold_starts"`
	WALErrors            uint64 `json:"wal_errors"`
	OldestSnapshotUnixNs int64  `json:"oldest_snapshot_unix_ns"`
	SnapshotBytes        int64  `json:"snapshot_bytes"`
	// SnapPauseMaxNs is the worst per-shard ShardSnapshot.SnapPauseMaxNs.
	SnapPauseMaxNs int64 `json:"snap_pause_max_ns"`

	// Shed decision path aggregates: sums of the per-shard counters,
	// except the *Max gauges (worst shard) and PlanBuildNsLast (most
	// recent nonzero build, any shard).
	AdmissionNs     int64  `json:"admission_ns"`
	PlansBuilt      uint64 `json:"shed_plans_built"`
	PlansApplied    uint64 `json:"shed_plans_applied"`
	PlansStale      uint64 `json:"shed_plans_stale"`
	PlanBuildNsLast int64  `json:"shed_plan_build_ns_last"`
	PlanBuildNsMax  int64  `json:"shed_plan_build_ns_max"`
	ShedStallMaxNs  int64  `json:"shed_stall_max_ns"`
	ClassBuckets    int64  `json:"class_buckets"`
	ClassLivePMs    int64  `json:"class_live_pms"`
	ClassDeadPMs    int64  `json:"class_dead_pms"`

	// InputShedRatio is shed / offered events; PMShedRatio is dropped /
	// created partial matches (the paper's ρI and ρS realized ratios).
	InputShedRatio float64 `json:"input_shed_ratio"`
	PMShedRatio    float64 `json:"pm_shed_ratio"`

	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	P99         time.Duration `json:"p99_ns"`
	MeanLatency time.Duration `json:"mean_latency_ns"`
	MaxLatency  time.Duration `json:"max_latency_ns"`
}

// Snapshot captures the current counters. Safe to call at any time from
// any goroutine.
func (r *Runtime) Snapshot() Snapshot {
	var s Snapshot
	s.Workers = r.workers
	s.Steals = r.steals.Load()
	for _, sh := range r.shards {
		ss := sh.snapshot()
		s.Shards = append(s.Shards, ss)
		s.EventsIn += ss.EventsIn
		s.EventsShed += ss.EventsShed
		s.EventsProcessed += ss.EventsProcessed
		s.Overflow += ss.Overflow
		s.Matches += ss.Matches
		s.LivePMs += ss.LivePMs
		s.CreatedPMs += ss.CreatedPMs
		s.DroppedPMs += ss.DroppedPMs
		s.Restarts += ss.Restarts
		s.ShardQuarantined += ss.Quarantined
		s.BusyNs += ss.BusyNs
		if ss.Failed {
			s.FailedShards++
		}
		if ss.Exported {
			s.ExportedShards++
		}
		s.Recovering = s.Recovering || ss.Recovering
		s.Snapshots += ss.Snapshots
		s.WALReplayed += ss.WALReplayed
		s.ColdStarts += ss.ColdStarts
		s.WALErrors += ss.WALErrors
		s.SnapshotBytes += ss.SnapshotBytes
		if ss.SnapshotUnixNs > 0 && (s.OldestSnapshotUnixNs == 0 || ss.SnapshotUnixNs < s.OldestSnapshotUnixNs) {
			s.OldestSnapshotUnixNs = ss.SnapshotUnixNs
		}
		if ss.SnapPauseMaxNs > s.SnapPauseMaxNs {
			s.SnapPauseMaxNs = ss.SnapPauseMaxNs
		}
		s.AdmissionNs += ss.AdmissionNs
		s.PlansBuilt += ss.PlansBuilt
		s.PlansApplied += ss.PlansApplied
		s.PlansStale += ss.PlansStale
		if ss.PlanBuildNsLast > 0 {
			s.PlanBuildNsLast = ss.PlanBuildNsLast
		}
		if ss.PlanBuildNsMax > s.PlanBuildNsMax {
			s.PlanBuildNsMax = ss.PlanBuildNsMax
		}
		if ss.ShedStallMaxNs > s.ShedStallMaxNs {
			s.ShedStallMaxNs = ss.ShedStallMaxNs
		}
		s.ClassBuckets += ss.ClassBuckets
		s.ClassLivePMs += ss.ClassLivePMs
		s.ClassDeadPMs += ss.ClassDeadPMs
	}
	s.DegradationLevel = r.DegradationLevel()
	s.Quarantined = r.dlq.count()
	s.AdmissionRejected = r.admissionRejected.Load()
	if s.EventsIn > 0 {
		s.InputShedRatio = float64(s.EventsShed) / float64(s.EventsIn)
	}
	if s.CreatedPMs > 0 {
		s.PMShedRatio = float64(s.DroppedPMs) / float64(s.CreatedPMs)
	}
	s.P50 = time.Duration(r.global.Quantile(0.50))
	s.P95 = time.Duration(r.global.Quantile(0.95))
	s.P99 = time.Duration(r.global.Quantile(0.99))
	s.MeanLatency = time.Duration(r.global.Mean())
	s.MaxLatency = time.Duration(r.global.Max())
	return s
}

// String renders a one-line summary for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("in=%d shed=%d (%.1f%%) matched=%d pms=%d dropped=%d (%.1f%%) lvl=%d restarts=%d quarantined=%d p50=%s p99=%s",
		s.EventsIn, s.EventsShed, 100*s.InputShedRatio, s.Matches,
		s.LivePMs, s.DroppedPMs, 100*s.PMShedRatio,
		s.DegradationLevel, s.Restarts, s.Quarantined, s.P50, s.P99)
}

// InferPartitionKey picks the partition attribute from the query: the
// attribute most often equated between two different pattern variables
// (a.ID = b.ID and a.ID = c.ID make ID the key for Q1). Matches of such
// a query are fully contained in one partition, so key-hash sharding is
// exact. Returns "" when no cross-variable equality exists — then only
// round-robin (approximate) partitioning is possible.
func InferPartitionKey(q *query.Query) string {
	votes := map[string]int{}
	for _, p := range q.Where {
		cmp, ok := p.Expr.(*query.Compare)
		if !ok || cmp.Op != query.CmpEq {
			continue
		}
		l, lok := cmp.L.(*query.FieldRef)
		rr, rok := cmp.R.(*query.FieldRef)
		if !lok || !rok || l.Attr != rr.Attr || l.Var == rr.Var {
			continue
		}
		votes[l.Attr]++
	}
	best, bestN := "", 0
	for attr, n := range votes {
		if n > bestN || (n == bestN && attr < best) {
			best, bestN = attr, n
		}
	}
	return best
}

// keyByAttr hashes the named attribute's value (numerics hash by their
// float64 value so Int(5) and Float(5), which compare equal, co-locate;
// strings hash their bytes). A non-zero salt prefixes the hash input so
// distinct salts shard the same key differently. Empty attr, or an
// event missing the attr, falls back to a per-call round-robin counter.
//
// The hash is FNV-1a, NOT a per-process-seeded hash: key→shard
// placement must be stable across restarts (a restored partial match
// in shard i has to keep receiving its key's events) and identical on
// every cluster node (the ingest tier routes (query, key) to a shard
// slot before it knows which node owns it). Flood resistance comes
// from the per-query salt, which an external sender doesn't know.
func keyByAttr(attr string, salt uint64) func(*event.Event) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	var rr atomic.Uint64
	return func(e *event.Event) uint64 {
		if attr != "" {
			if v, ok := e.Get(attr); ok {
				h := uint64(fnvOffset)
				for i := 0; i < 8; i++ {
					h = (h ^ uint64(byte(salt>>(8*i)))) * fnvPrime
				}
				if v.IsNumeric() {
					bits := math.Float64bits(v.AsFloat())
					for i := 0; i < 8; i++ {
						h = (h ^ uint64(byte(bits>>(8*i)))) * fnvPrime
					}
				} else {
					for i := 0; i < len(v.S); i++ {
						h = (h ^ uint64(v.S[i])) * fnvPrime
					}
				}
				return h
			}
		}
		return rr.Add(1)
	}
}
