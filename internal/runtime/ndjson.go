package runtime

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cepshed/internal/engine"
	"cepshed/internal/event"
)

// The NDJSON wire format, one event per line:
//
//	{"type":"A","time":123456,"attrs":{"ID":5,"V":3.5,"user":"u1"}}
//
// "time" is the virtual timestamp in nanoseconds and is optional — a
// server assigns arrival time when absent. Attribute values map onto the
// event model: JSON integers become Int, other numbers Float, strings
// Str. Booleans and nested structures are rejected: the event model has
// no corresponding kinds, and silently coercing them would make
// predicates fail in confusing ways.

type wireEvent struct {
	Type  string                     `json:"type"`
	Time  *int64                     `json:"time,omitempty"`
	Attrs map[string]json.RawMessage `json:"attrs,omitempty"`
}

// ParseEvent decodes one NDJSON line into an event. hasTime reports
// whether the line carried an explicit timestamp; when false the caller
// must assign one before offering the event to a runtime.
func ParseEvent(line []byte) (e *event.Event, hasTime bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var we wireEvent
	if err := dec.Decode(&we); err != nil {
		return nil, false, fmt.Errorf("runtime: bad event line: %w", err)
	}
	if we.Type == "" {
		return nil, false, fmt.Errorf("runtime: event line missing \"type\"")
	}
	attrs := make(map[string]event.Value, len(we.Attrs))
	for name, raw := range we.Attrs {
		v, err := parseValue(raw)
		if err != nil {
			return nil, false, fmt.Errorf("runtime: attr %q: %w", name, err)
		}
		attrs[name] = v
	}
	var t event.Time
	if we.Time != nil {
		t = event.Time(*we.Time)
	}
	return event.New(we.Type, t, attrs), we.Time != nil, nil
}

func parseValue(raw json.RawMessage) (event.Value, error) {
	s := strings.TrimSpace(string(raw))
	if s == "" {
		return event.Value{}, fmt.Errorf("empty value")
	}
	if s[0] == '"' {
		var str string
		if err := json.Unmarshal(raw, &str); err != nil {
			return event.Value{}, err
		}
		return event.Str(str), nil
	}
	var num json.Number
	if err := json.Unmarshal(raw, &num); err != nil {
		return event.Value{}, fmt.Errorf("unsupported value %s (only numbers and strings)", s)
	}
	if i, err := num.Int64(); err == nil {
		return event.Int(i), nil
	}
	f, err := num.Float64()
	if err != nil {
		return event.Value{}, err
	}
	return event.Float(f), nil
}

// EncodeEvent renders an event as one NDJSON line (without the trailing
// newline).
func EncodeEvent(e *event.Event) []byte {
	var b bytes.Buffer
	t := int64(e.Time)
	b.WriteString(`{"type":`)
	writeJSONString(&b, e.Type)
	fmt.Fprintf(&b, `,"time":%d,"attrs":{`, t)
	names := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONString(&b, k)
		b.WriteByte(':')
		v := e.Attrs[k]
		switch {
		case v.Kind == event.KindString:
			writeJSONString(&b, v.S)
		case v.Kind == event.KindInt:
			fmt.Fprintf(&b, "%d", v.I)
		case v.Kind == event.KindFloat:
			fmt.Fprintf(&b, "%g", v.F)
		default:
			b.WriteString("null")
		}
	}
	b.WriteString("}}")
	return b.Bytes()
}

// EncodeMatch renders a detected match as one NDJSON line: the shard,
// detection timestamp, canonical key, and the matched events' sequence
// numbers and types.
func EncodeMatch(shard int, m engine.Match) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"shard":%d,"detected":%d,"key":`, shard, int64(m.Detected))
	writeJSONString(&b, m.Key())
	b.WriteString(`,"events":[`)
	for i, e := range m.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"seq":%d,"type":`, e.Seq)
		writeJSONString(&b, e.Type)
		b.WriteByte('}')
	}
	b.WriteString("]}")
	return b.Bytes()
}

func writeJSONString(b *bytes.Buffer, s string) {
	enc, err := json.Marshal(s)
	if err != nil {
		b.WriteString(`""`)
		return
	}
	b.Write(enc)
}
