package runtime

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"

	"cepshed/internal/engine"
	"cepshed/internal/event"
)

// The NDJSON wire format, one event per line:
//
//	{"type":"A","time":123456,"attrs":{"ID":5,"V":3.5,"user":"u1"}}
//
// "time" is the virtual timestamp in nanoseconds and is optional — a
// server assigns arrival time when absent. Attribute values map onto the
// event model: JSON integers become Int, other numbers Float, strings
// Str. Booleans and nested structures are rejected: the event model has
// no corresponding kinds, and silently coercing them would make
// predicates fail in confusing ways.

type wireEvent struct {
	Type  string                     `json:"type"`
	Time  *int64                     `json:"time,omitempty"`
	Attrs map[string]json.RawMessage `json:"attrs,omitempty"`
}

// ParseEvent decodes one NDJSON line into an event. hasTime reports
// whether the line carried an explicit timestamp; when false the caller
// must assign one before offering the event to a runtime.
func ParseEvent(line []byte) (e *event.Event, hasTime bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var we wireEvent
	if err := dec.Decode(&we); err != nil {
		return nil, false, fmt.Errorf("runtime: bad event line: %w", err)
	}
	if we.Type == "" {
		return nil, false, fmt.Errorf("runtime: event line missing \"type\"")
	}
	attrs := make(map[string]event.Value, len(we.Attrs))
	for name, raw := range we.Attrs {
		v, err := parseValue(raw)
		if err != nil {
			return nil, false, fmt.Errorf("runtime: attr %q: %w", name, err)
		}
		attrs[name] = v
	}
	var t event.Time
	if we.Time != nil {
		t = event.Time(*we.Time)
	}
	return event.New(we.Type, t, attrs), we.Time != nil, nil
}

func parseValue(raw json.RawMessage) (event.Value, error) {
	s := strings.TrimSpace(string(raw))
	if s == "" {
		return event.Value{}, fmt.Errorf("empty value")
	}
	if s[0] == '"' {
		var str string
		if err := json.Unmarshal(raw, &str); err != nil {
			return event.Value{}, err
		}
		return event.Str(str), nil
	}
	// Fast path: a literal that passes the JSON number grammar decodes
	// directly with strconv, skipping the json.Unmarshal round-trip
	// through json.Number. Semantics match the slow path exactly: an
	// integer literal too big for int64 degrades to float, the same
	// fallback json.Number.Int64 → Float64 takes.
	if isInt, ok := jsonNumber(s); ok {
		if isInt {
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return event.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return event.Value{}, err
		}
		return event.Float(f), nil
	}
	// Not a number literal (bool, null, nested, malformed): let
	// encoding/json produce the error.
	var num json.Number
	if err := json.Unmarshal(raw, &num); err != nil {
		return event.Value{}, fmt.Errorf("unsupported value %s (only numbers and strings)", s)
	}
	if i, err := num.Int64(); err == nil {
		return event.Int(i), nil
	}
	f, err := num.Float64()
	if err != nil {
		return event.Value{}, err
	}
	return event.Float(f), nil
}

// LineError reports one rejected NDJSON line with enough context to
// debug the producer: the 1-based line number in the stream and a
// truncated copy of the offending payload. A LineError is recoverable —
// a LineDecoder keeps going after returning one — and is what ingest
// paths feed to the dead-letter queue.
type LineError struct {
	// Line is the 1-based line number within the decoded stream.
	Line int
	// Payload is the offending line, truncated to a bounded length and
	// sanitized to valid UTF-8.
	Payload string
	// Err is the underlying decode failure.
	Err error
}

// Error renders the line number, cause, and truncated payload.
func (e *LineError) Error() string {
	return fmt.Sprintf("runtime: ndjson line %d: %v (payload %q)", e.Line, e.Err, e.Payload)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

// maxPayloadSample bounds the payload copied into a LineError.
const maxPayloadSample = 160

// truncatePayload clips b to max bytes for diagnostics, appending "..."
// when it clipped and replacing invalid UTF-8 so the result is safe to
// embed in JSON and logs.
func truncatePayload(b []byte, max int) string {
	clipped := false
	if len(b) > max {
		b, clipped = b[:max], true
	}
	s := string(b)
	if !utf8.ValidString(s) {
		// The 3-byte replacement rune can grow the string past max when
		// it substitutes shorter invalid sequences; re-clip on a rune
		// boundary to keep the bound hard.
		s = strings.ToValidUTF8(s, "�")
		if len(s) > max {
			cut := max
			for cut > 0 && !utf8.RuneStart(s[cut]) {
				cut--
			}
			s, clipped = s[:cut], true
		}
	}
	if clipped {
		s += "..."
	}
	return s
}

// LineDecoder reads an NDJSON stream line by line, surviving every kind
// of malformed input: bad JSON, unsupported values, and lines longer
// than the buffer (the oversized line is consumed and rejected instead
// of poisoning the reader, so one huge line cannot kill a connection).
// Decode errors are *LineError values carrying the line number and a
// truncated payload; the decoder stays usable after returning one.
type LineDecoder struct {
	r        *bufio.Reader
	maxLine  int
	line     int
	rejected uint64
	in       internTable
}

// NewLineDecoder wraps r; lines longer than maxLine bytes are rejected
// (default 1 MiB when maxLine <= 0).
func NewLineDecoder(r io.Reader, maxLine int) *LineDecoder {
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	bufSize := maxLine
	if bufSize > 64*1024 {
		bufSize = 64 * 1024
	}
	return &LineDecoder{
		r:       bufio.NewReaderSize(r, bufSize),
		maxLine: maxLine,
		in:      internTable{m: make(map[string]string, 64)},
	}
}

// Line returns the number of lines consumed so far.
func (d *LineDecoder) Line() int { return d.line }

// Rejected returns how many lines failed to decode.
func (d *LineDecoder) Rejected() uint64 { return d.rejected }

// Next returns the next event. Blank lines are skipped. At end of input
// it returns io.EOF (or the reader's error). A *LineError means one bad
// line was skipped; keep calling Next.
func (d *LineDecoder) Next() (e *event.Event, hasTime bool, err error) {
	line, err := d.readLine()
	if err != nil {
		if lerr, ok := err.(*LineError); ok {
			d.rejected++
			return nil, false, lerr
		}
		return nil, false, err
	}
	if e, hasTime, ok := parseEventFast(line, &d.in); ok {
		return e, hasTime, nil
	}
	e, hasTime, perr := ParseEvent(line)
	if perr != nil {
		d.rejected++
		return nil, false, &LineError{Line: d.line, Payload: truncatePayload(line, maxPayloadSample), Err: perr}
	}
	return e, hasTime, nil
}

// readLine returns the next non-blank line without its trailing
// newline. An overlong line is consumed to its end (retaining only a
// bounded prefix) and reported as a *LineError.
func (d *LineDecoder) readLine() ([]byte, error) {
	for {
		line, tooLong, err := d.rawLine()
		if line == nil && !tooLong {
			return nil, err // end of input or read failure
		}
		d.line++
		if tooLong {
			return nil, &LineError{Line: d.line, Payload: truncatePayload(line, maxPayloadSample),
				Err: fmt.Errorf("line exceeds %d bytes", d.maxLine)}
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(bytes.TrimSpace(line)) > 0 {
			return line, nil
		}
		if err != nil {
			return nil, err // blank final line, then EOF
		}
	}
}

// rawLine returns one raw line, keeping at most maxLine bytes; the
// remainder of an overlong line is discarded and tooLong reported. At
// end of input err is io.EOF and line may still hold a final
// unterminated line; the EOF surfaces again on the next call.
//
// The returned slice may alias the reader's internal buffer and is only
// valid until the next rawLine call — Next consumes each line fully
// before reading again, so the common case (a line that fits the buffer
// in one chunk) allocates nothing.
func (d *LineDecoder) rawLine() (line []byte, tooLong bool, err error) {
	chunk, rerr := d.r.ReadSlice('\n')
	if rerr != bufio.ErrBufferFull {
		// Whole line in one chunk: return the buffer's slice directly.
		// tooLong is impossible here — the reader's buffer never exceeds
		// maxLine, so a chunk that ends in a newline (or at EOF) fits.
		if len(chunk) == 0 {
			return nil, false, rerr
		}
		return chunk, false, rerr
	}
	// Line spans the buffer: fall back to accumulating a copy. The first
	// chunk always fits (buffer size <= maxLine).
	acc := append(make([]byte, 0, 2*len(chunk)), chunk...)
	for {
		chunk, rerr = d.r.ReadSlice('\n')
		if !tooLong {
			if len(acc)+len(chunk) <= d.maxLine {
				acc = append(acc, chunk...)
			} else {
				if keep := d.maxLine - len(acc); keep > 0 {
					acc = append(acc, chunk[:keep]...)
				}
				tooLong = true
			}
		}
		switch rerr {
		case nil: // newline found
			return acc, tooLong, nil
		case bufio.ErrBufferFull:
			continue
		default: // io.EOF or a real read error
			return acc, tooLong, rerr
		}
	}
}

// EncodeEvent renders an event as one NDJSON line (without the trailing
// newline).
func EncodeEvent(e *event.Event) []byte {
	var b bytes.Buffer
	t := int64(e.Time)
	b.WriteString(`{"type":`)
	writeJSONString(&b, e.Type)
	fmt.Fprintf(&b, `,"time":%d,"attrs":{`, t)
	names := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONString(&b, k)
		b.WriteByte(':')
		v := e.Attrs[k]
		switch {
		case v.Kind == event.KindString:
			writeJSONString(&b, v.S)
		case v.Kind == event.KindInt:
			fmt.Fprintf(&b, "%d", v.I)
		case v.Kind == event.KindFloat:
			fmt.Fprintf(&b, "%g", v.F)
		default:
			b.WriteString("null")
		}
	}
	b.WriteString("}}")
	return b.Bytes()
}

// EncodeMatch renders a detected match as one NDJSON line: the shard,
// detection timestamp, canonical key, and the matched events' sequence
// numbers and types.
func EncodeMatch(shard int, m engine.Match) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"shard":%d,"detected":%d,"key":`, shard, int64(m.Detected))
	writeJSONString(&b, m.Key())
	b.WriteString(`,"events":[`)
	for i, e := range m.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"seq":%d,"type":`, e.Seq)
		writeJSONString(&b, e.Type)
		b.WriteByte('}')
	}
	b.WriteString("]}")
	return b.Bytes()
}

func writeJSONString(b *bytes.Buffer, s string) {
	enc, err := json.Marshal(s)
	if err != nil {
		b.WriteString(`""`)
		return
	}
	b.Write(enc)
}
