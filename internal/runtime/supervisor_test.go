package runtime

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

// fastRestart keeps supervised tests quick: near-instant backoff, wide
// breaker window.
func fastRestart() RestartPolicy {
	return RestartPolicy{
		BackoffBase: 100 * time.Microsecond,
		BackoffMax:  time.Millisecond,
		MaxRestarts: 100,
		Window:      time.Minute,
	}
}

func TestSupervisorRecoversFromPanic(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 3000, Seed: 7, InterArrival: 15 * event.Microsecond})
	const poisonSeq = 1234
	r := New(m, Config{
		Shards:  2,
		Restart: fastRestart(),
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return e.Seq == poisonSeq
		}, "injected poison"),
	})
	feedAll(r, s)
	snap := r.Snapshot()

	if snap.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", snap.Restarts)
	}
	if snap.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", snap.Quarantined)
	}
	if snap.FailedShards != 0 {
		t.Errorf("FailedShards = %d, want 0 (one panic must not trip the breaker)", snap.FailedShards)
	}
	// Every offered event is accounted for: shed, processed, or
	// quarantined.
	if got := snap.EventsShed + snap.EventsProcessed + snap.Quarantined; got != snap.EventsIn {
		t.Errorf("shed+processed+quarantined = %d, want EventsIn = %d", got, snap.EventsIn)
	}
	dls := r.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("DeadLetters = %d entries, want 1", len(dls))
	}
	dl := dls[0]
	if dl.Seq != poisonSeq {
		t.Errorf("dead letter seq = %d, want %d", dl.Seq, poisonSeq)
	}
	if !strings.Contains(dl.Reason, "injected poison") {
		t.Errorf("dead letter reason %q does not name the panic", dl.Reason)
	}
	if dl.Payload == "" {
		t.Error("dead letter carries no payload")
	}
}

func TestCircuitBreakerFailsOverKeyRange(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 4000, Seed: 3, InterArrival: 15 * event.Microsecond})
	pol := fastRestart()
	pol.MaxRestarts = 3
	r := New(m, Config{
		Shards:  2,
		Restart: pol,
		// Shard 0 is terminally sick: every event it executes panics. The
		// predicate keys on the *executing* shard, so after failover the
		// same events run cleanly on shard 1.
		BeforeProcess: fault.PanicIf(func(shard int, _ *event.Event) bool {
			return shard == 0
		}, "sick shard"),
	})
	for _, e := range s {
		r.Offer(e)
	}
	// Wait for the breaker: shard 0 trips after MaxRestarts+1 panics,
	// which may lag the producer loop by a few backoff sleeps.
	deadline := time.Now().Add(5 * time.Second)
	for !r.Snapshot().Shards[0].Failed {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 did not trip the circuit breaker")
		}
		time.Sleep(time.Millisecond)
	}
	// The runtime must keep accepting events for the failed shard's keys.
	if !r.Offer(s[0]) {
		t.Error("Offer rejected an event after failover with a healthy shard remaining")
	}
	r.Close()
	snap := r.Snapshot()
	if snap.FailedShards != 1 {
		t.Errorf("FailedShards = %d, want 1", snap.FailedShards)
	}
	// Breaker policy: MaxRestarts restarts, then the next panic fails the
	// shard instead of restarting it again.
	if want := uint64(pol.MaxRestarts + 1); snap.Shards[0].Restarts != want {
		t.Errorf("shard 0 restarts = %d, want %d", snap.Shards[0].Restarts, want)
	}
	// After failover, the whole stream minus the quarantined poison
	// events must have been processed by the healthy shard.
	if got := snap.EventsShed + snap.EventsProcessed + snap.Quarantined; got != snap.EventsIn {
		t.Errorf("shed+processed+quarantined = %d, want EventsIn = %d", got, snap.EventsIn)
	}
	if snap.Shards[1].EventsProcessed == 0 {
		t.Error("healthy shard processed nothing; failover routing is broken")
	}
	if snap.Shards[1].Restarts != 0 || snap.Shards[1].Failed {
		t.Error("healthy shard restarted or failed")
	}
}

func TestAllShardsFailedRejectsOffers(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 200, Seed: 5, InterArrival: 15 * event.Microsecond})
	pol := fastRestart()
	pol.MaxRestarts = 1
	r := New(m, Config{
		Shards:        1,
		Restart:       pol,
		BeforeProcess: fault.PanicIf(func(int, *event.Event) bool { return true }, "always"),
	})
	// Feed until the breaker trips and offers start bouncing.
	deadline := time.Now().Add(5 * time.Second)
	rejected := false
	for !rejected {
		if time.Now().After(deadline) {
			t.Fatal("offers never rejected after total shard failure")
		}
		for _, e := range s {
			if !r.Offer(e) {
				rejected = true
				break
			}
		}
	}
	snap := r.Snapshot()
	if snap.FailedShards != 1 {
		t.Errorf("FailedShards = %d, want 1", snap.FailedShards)
	}
	if snap.AdmissionRejected == 0 {
		t.Error("AdmissionRejected = 0, want > 0 for offers with no healthy shard")
	}
	r.Close()
}

// The dead-letter queue must retain only the most recent DeadLetterCap
// entries while the total count keeps the full tally.
func TestDeadLetterRetentionBound(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	r := New(m, Config{Shards: 1, DeadLetterCap: 8})
	for i := 0; i < 20; i++ {
		r.Quarantine("bad line", "payload")
	}
	if got := r.Snapshot().Quarantined; got != 20 {
		t.Errorf("Quarantined = %d, want 20", got)
	}
	if got := len(r.DeadLetters()); got != 8 {
		t.Errorf("retained %d dead letters, want 8", got)
	}
	r.Close()
}

// A panicking strategy factory during rebuild must fail the shard, not
// the process.
func TestRebuildFactoryPanicFailsShard(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 500, Seed: 9, InterArrival: 15 * event.Microsecond})
	var calls atomic.Int32
	r := New(m, Config{
		Shards:  1,
		Restart: fastRestart(),
		NewStrategy: func(shard int) shed.Strategy {
			if calls.Add(1) > 1 { // first call builds, rebuild panics
				panic("factory broken")
			}
			return shed.None{}
		},
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return e.Seq == 10
		}, "poison"),
	})
	feedAll(r, s)
	snap := r.Snapshot()
	if snap.FailedShards != 1 {
		t.Errorf("FailedShards = %d, want 1 after factory panic during rebuild", snap.FailedShards)
	}
	if snap.Quarantined == 0 {
		t.Error("no quarantined events after a single-shard failure")
	}
}
