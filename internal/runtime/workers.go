package runtime

import (
	"context"
	"runtime/pprof"
	"time"
)

// This file is the worker pool: M worker goroutines servicing N shard
// queues. Shards and workers used to be the same thing (one goroutine
// per shard), which wasted cores under key skew — a zipfian hot shard
// saturated its one goroutine while the goroutines of cold shards sat
// parked. Decoupling the two keeps the shard as the unit of state
// (single-writer engine partitions, per-key ordering) and makes the
// worker the unit of CPU.
//
// Invariants:
//
//   - A shard is serviced by at most one worker at a time: workers claim
//     a shard by TryLock on its svc mutex. Everything the old per-shard
//     goroutine owned (engine, strategy, WAL, pend, rem, recovery state)
//     is now owned by "the worker holding svc", and since claims never
//     overlap, the single-writer story is unchanged.
//   - Work stealing moves WHOLE SHARDS, never individual events: an idle
//     worker claims somebody else's backlogged shard and services it in
//     place. Events of one key still pass through one queue in order.
//   - A claim is bounded (quantumBudget events) so a worker cannot camp
//     on one deep queue while other shards back up.
//
// Wakeups: producers send a token on r.wake (non-blocking, capacity =
// workers) after enqueueing; an idle worker blocks on the channel.
// Because the token is sent AFTER the channel send and the channel is
// buffered, a worker that drains the token and finds nothing will still
// see the item on its next pass — the token cannot be lost between a
// depth check and the blocking receive. Shards that are waiting rather
// than ready (restart backoff) are polled on a short timer instead.

// idlePoll is the fallback poll interval while some shard has pending
// work that cannot run yet (restart backoff, in-flight snapshot).
const idlePoll = 2 * time.Millisecond

// worker is one pool goroutine. wid's home shards are {i : i ≡ wid mod
// workers}; each pass services homes first (cache affinity, and with
// Workers == Shards the pool degenerates to the old one-goroutine-per-
// shard layout), then steals any other claimable shard.
// Workers run under the pprof label cep_role=worker so CPU profiles can
// prove what runs on the serving path: `make profile-shed` fails the
// build if shedding-set selection symbols ever appear under this label
// (they belong under cep_role=shed_planner).
func (r *Runtime) worker(wid int) {
	defer r.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("cep_role", "worker"), func(context.Context) {
		r.workerLoop(wid)
	})
}

func (r *Runtime) workerLoop(wid int) {
	n := len(r.shards)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		worked, waiting := false, false
		now := time.Now().UnixNano()
		closed := r.closed.Load()
		for i := wid; i < n; i += r.workers {
			w, wait := r.tryService(r.shards[i], now, closed)
			worked = worked || w
			waiting = waiting || wait
		}
		if !worked {
			// Steal pass: scan the remaining shards, starting just past the
			// home set so concurrent idle workers fan out instead of piling
			// onto shard 0. One successful steal sends the worker back to a
			// full pass — home shards keep priority.
			for off := 1; off < n && !worked; off++ {
				i := (wid + off) % n
				if r.workers > 0 && i%r.workers == wid {
					continue // home shard, already tried
				}
				w, wait := r.tryService(r.shards[i], now, closed)
				if w {
					worked = true
					r.steals.Add(1)
				}
				waiting = waiting || wait
			}
		}
		if worked {
			continue
		}
		if r.allDone() {
			// Re-wake siblings so no worker stays blocked on r.wake after
			// the last shard retires.
			r.wakeAll()
			return
		}
		if waiting {
			timer.Reset(idlePoll)
			select {
			case <-r.wake:
			case <-timer.C:
			}
		} else {
			<-r.wake
		}
	}
}

// tryService claims and services one shard if it both needs service and
// is unclaimed. waiting reports pending-but-backed-off work the caller
// should poll for rather than block on.
func (r *Runtime) tryService(s *shard, now int64, closed bool) (worked, waiting bool) {
	ready, wait := s.needsService(now, closed)
	if !ready {
		return false, wait
	}
	if !s.svc.TryLock() {
		// Another worker owns the shard; it will drain or go idle and the
		// shard gets rescanned. Not a waiting state.
		return false, false
	}
	worked = s.quantum(r)
	s.svc.Unlock()
	return worked, false
}

// wakeOne drops one wake token, never blocking: with the channel full,
// every sleeping worker already has a token waiting.
func (r *Runtime) wakeOne() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// wakeAll tops the token channel up to one token per worker.
func (r *Runtime) wakeAll() {
	for i := 0; i < r.workers; i++ {
		select {
		case r.wake <- struct{}{}:
		default:
			return
		}
	}
}

// allDone reports whether every shard has retired (channel closed and
// finish/forwarding complete) — the workers' exit condition.
func (r *Runtime) allDone() bool {
	for _, sh := range r.shards {
		if !sh.doneFlag.Load() {
			return false
		}
	}
	return true
}
