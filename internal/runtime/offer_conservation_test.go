package runtime

import (
	"testing"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// An OfferBatch whose events span the key range of a failed shard must
// keep the arrival accounting conserved — events_in == shed + processed
// + quarantined, per shard and in aggregate — whether an event was
// processed in place, failed over from the dead shard's queue to a
// healthy one, or quarantined as the poison that killed the worker.
func TestOfferBatchAcrossQuarantinedKeyRangeConservation(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	r := New(m, Config{
		Shards:   2,
		QueueLen: 64,
		Restart: RestartPolicy{
			BackoffBase: 100 * time.Microsecond,
			BackoffMax:  time.Millisecond,
			MaxRestarts: 1,
			Window:      time.Minute,
		},
		// Shard 0 dies on every event it processes: after MaxRestarts the
		// breaker marks it failed and its whole key range quarantines /
		// fails over. Shard 1 stays healthy throughout.
		BeforeProcess: fault.PanicIf(func(shard int, _ *event.Event) bool { return shard == 0 }, "poison range"),
	})

	types := []string{"A", "B", "C"}
	var seq uint64
	mkBatch := func(n int) []*event.Event {
		batch := make([]*event.Event, 0, n)
		for i := 0; i < n; i++ {
			e := event.New(types[int(seq)%len(types)], event.Time(seq*1000),
				map[string]event.Value{"ID": event.Int(int64(seq % 97))}) // many keys: both shards see traffic
			e.Seq = seq
			seq++
			batch = append(batch, e)
		}
		return batch
	}

	// Feed mixed-key batches until the poisoned shard's breaker trips.
	offered := 0
	deadline := time.Now().Add(10 * time.Second)
	for r.Snapshot().FailedShards == 0 {
		if time.Now().After(deadline) {
			t.Fatal("poisoned shard never failed")
		}
		offered += r.OfferBatch(mkBatch(32))
	}
	// Batches now span a quarantined key range: shard 0's keys must
	// reroute to the healthy shard instead of vanishing or wedging.
	for i := 0; i < 10; i++ {
		offered += r.OfferBatch(mkBatch(32))
	}
	r.Close()

	snap := r.Snapshot()
	if snap.FailedShards != 1 {
		t.Fatalf("FailedShards = %d, want exactly the poisoned shard", snap.FailedShards)
	}
	var inTot, shedTot, procTot, quarTot uint64
	for _, ss := range snap.Shards {
		if ss.EventsIn != ss.EventsShed+ss.EventsProcessed+ss.Quarantined {
			t.Errorf("shard %d conservation broken: in=%d shed=%d processed=%d quarantined=%d",
				ss.Shard, ss.EventsIn, ss.EventsShed, ss.EventsProcessed, ss.Quarantined)
		}
		inTot += ss.EventsIn
		shedTot += ss.EventsShed
		procTot += ss.EventsProcessed
		quarTot += ss.Quarantined
	}
	if inTot != shedTot+procTot+quarTot {
		t.Errorf("aggregate conservation broken: in=%d shed=%d processed=%d quarantined=%d",
			inTot, shedTot, procTot, quarTot)
	}
	// Every accepted offer must be accounted for once drained: nothing
	// lost in the dead shard's queue, nothing double-counted by failover.
	if inTot != uint64(offered) {
		t.Errorf("events_in = %d, want the %d accepted offers", inTot, offered)
	}
	if quarTot == 0 {
		t.Error("no events quarantined; the poison path was never exercised")
	}
	// The healthy shard must have absorbed the dead shard's key range.
	if snap.Shards[1].EventsProcessed == 0 {
		t.Error("healthy shard processed nothing; failover did not happen")
	}
	// The ring holds only the most recent dead letters; close-time drain
	// quarantines may have evicted the original panic entries, so assert
	// attribution to the poisoned shard rather than a specific reason.
	found := false
	for _, dl := range r.DeadLetters() {
		if dl.Shard == 0 && dl.Reason != "" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no dead letter attributed to the poisoned shard")
	}
}
