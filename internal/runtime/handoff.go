package runtime

import (
	"fmt"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/shed"
)

// Shard migration: the runtime-side half of the cluster layer's
// handoff protocol (internal/cluster, docs/CLUSTER.md). A shard's state
// became fully serializable in the durability work; these hooks freeze
// one shard, hand its state out, and install a shipped state into the
// matching (empty) shard of another runtime. All four operations travel
// the shard's own input channel as control messages, so they are
// ordered behind every queued event: ExportShard observes a drained
// shard by construction, with no cross-goroutine locking of the engine.
//
// Planned handoff:  ExportShard → ship → ImportShard (target) →
// RetireShard; a failed ship calls ResumeShard to unfreeze.
// Failover: the survivor loads the dead node's shard files directly
// and calls ImportShard with the snapshot plus the WAL tail.

// ctlOp selects a shard control operation.
type ctlOp int

const (
	ctlExport ctlOp = iota
	ctlImport
	ctlResume
	ctlRetire
)

// shardCtl is a control message on the shard channel; reply must be
// buffered (the worker never blocks on it).
type shardCtl struct {
	op    ctlOp
	h     *checkpoint.Handoff // ctlImport only
	reply chan ctlReply
}

type ctlReply struct {
	state  *checkpoint.ShardState // ctlExport
	maxSeq uint64                 // ctlImport: restored seq high-water mark
	hasSeq bool
	err    error
}

// handleCtl dispatches one control message on the worker goroutine. A
// panic inside an operation (a poison event in an imported WAL tail)
// still answers the caller — with the panic as an error — before
// re-panicking into the supervisor, which quarantines and rebuilds the
// shard exactly as for a live poison event.
func (s *shard) handleCtl(c *shardCtl) {
	defer func() {
		if p := recover(); p != nil {
			select {
			case c.reply <- ctlReply{err: fmt.Errorf("shard %d: control op panic: %v", s.id, p)}:
			default:
			}
			panic(p)
		}
	}()
	switch c.op {
	case ctlExport:
		c.reply <- s.ctlExport()
	case ctlImport:
		c.reply <- s.ctlImport(c.h)
	case ctlResume:
		s.exported = false
		s.exportedFlag.Store(false)
		c.reply <- ctlReply{}
	case ctlRetire:
		c.reply <- s.ctlRetire()
	default:
		c.reply <- ctlReply{err: fmt.Errorf("shard %d: unknown control op %d", s.id, c.op)}
	}
}

// ctlExport freezes the shard and returns its full serialized state.
// The control message arrived behind every queued event, so the engine
// is quiescent; the WAL flush below releases any held-back matches
// (they were accepted and detected HERE — they are this node's to
// deliver), and the returned state reflects exactly what was delivered.
func (s *shard) ctlExport() ctlReply {
	if s.exported {
		return ctlReply{err: fmt.Errorf("shard %d: already exported", s.id)}
	}
	// An in-flight async snapshot pins the engine's live matches and holds
	// deliveries pending rotation; settle it so the exported state is the
	// settled truth, not a frame mid-commit.
	s.settleSnapshot(true)
	if s.ckpt != nil {
		if err := s.ckpt.Flush(); err != nil {
			s.walFailed("export flush", err)
		} else {
			s.releasePend()
		}
	}
	s.exported = true
	s.exportedFlag.Store(true)
	return ctlReply{state: s.buildState()}
}

// ctlImport installs a shipped shard state into this (empty) shard,
// replays the accompanying WAL tail with match suppression, snapshots
// the result durably, and only then delivers matches the replay newly
// completed. Ordering is what makes a mid-import crash safe: nothing is
// emitted and no local file advances until the snapshot has committed,
// so a crash before it leaves the shard exactly as empty as before and
// the mover (or failover sweep) simply retries.
func (s *shard) ctlImport(h *checkpoint.Handoff) ctlReply {
	if s.exported {
		return ctlReply{err: fmt.Errorf("shard %d: exported; resume before import", s.id)}
	}
	if st := s.en.Stats(); st.Events != 0 || s.en.LiveCount() != 0 || s.hasSeq {
		return ctlReply{err: fmt.Errorf("shard %d: not empty (events=%d live=%d hasSeq=%v); import requires a cold shard",
			s.id, st.Events, s.en.LiveCount(), s.hasSeq)}
	}

	var floor uint64
	haveFloor := false
	if h.State != nil {
		if err := s.en.Restore(h.State.Engine); err != nil {
			return ctlReply{err: fmt.Errorf("shard %d: import restore rejected: %w", s.id, err)}
		}
		haveFloor = h.State.HasSeq
		floor = h.State.LastSeq
		s.lastSeq, s.lastTime, s.hasSeq = h.State.LastSeq, h.State.LastTime, h.State.HasSeq
		if len(h.State.Strategy) > 0 && h.State.StrategyName == s.strat.Name() {
			if ds, ok := s.strat.(shed.DurableStrategy); ok {
				if uerr := ds.UnmarshalState(h.State.Strategy); uerr != nil && s.cfg.Logf != nil {
					s.cfg.Logf("runtime: shard %d: imported strategy state rejected, keeping fresh: %v", s.id, uerr)
				}
			}
		}
	}

	// Index the tail like boot recovery does: Q records mark poison seqs
	// to skip, M records the matches the source already delivered —
	// suppressing them is what keeps emissions exactly-once across the
	// node boundary.
	skips := make(map[uint64]bool)
	suppress := make(map[string]bool)
	for _, rec := range h.Tail {
		switch rec.Kind {
		case checkpoint.RecSkip:
			if !haveFloor || rec.Seq > floor {
				skips[rec.Seq] = true
			}
		case checkpoint.RecMatch:
			suppress[rec.Key] = true
		}
	}

	var held []engine.Match
	var replayed uint64
	for _, rec := range h.Tail {
		if rec.Kind != checkpoint.RecEvent || (haveFloor && rec.Seq <= floor) {
			continue
		}
		if skips[rec.Seq] {
			s.lastSeq, s.lastTime, s.hasSeq = rec.Seq, int64(rec.Event.Time), true
			s.eventsIn.Add(1)
			s.quarantined.Add(1)
			continue
		}
		// This shard now owns the event's accounting (the source's
		// counters died with it, or stay behind on a planned move), so the
		// replay counts like live input — conservation holds per node.
		s.curItem = item{e: rec.Event}
		s.eventsIn.Add(1)
		s.lastSeq, s.lastTime, s.hasSeq = rec.Event.Seq, int64(rec.Event.Time), true
		if !s.strat.AdmitEvent(rec.Event, rec.Event.Time) {
			s.eventsShed.Add(1)
			continue
		}
		res := s.en.Process(rec.Event)
		s.processed.Add(1)
		s.strat.Observe(&res, rec.Event.Time)
		for i := range res.Matches {
			if suppress[res.Matches[i].Key()] {
				continue
			}
			held = append(held, res.Matches[i])
		}
		replayed++
	}
	s.curItem = item{}
	s.walReplayed.Add(replayed)

	// One snapshot commits the import: after it, a restart of THIS node
	// recovers the imported state from its own files, and the held
	// matches below can never re-emit (they are inside the snapshot, not
	// in any WAL).
	if s.ckpt != nil {
		s.takeSnapshot()
	}
	for i := range held {
		s.emit(held[i])
	}
	s.syncEngineStats()
	s.restoredSeq.Store(s.lastSeq)
	s.restoredTime.Store(s.lastTime)
	if s.hasSeq {
		s.restoredHasSeq.Store(true)
	}
	return ctlReply{maxSeq: s.lastSeq, hasSeq: s.hasSeq}
}

// ctlRetire closes and tombstones the exported shard's files: the
// importing node acknowledged a durable import, so replayable state
// here would only ever duplicate emissions. The shard keeps running
// (quarantining strays) — the goroutine is owned by Close.
func (s *shard) ctlRetire() ctlReply {
	if !s.exported {
		return ctlReply{err: fmt.Errorf("shard %d: not exported", s.id)}
	}
	s.settleSnapshot(true)
	if s.ckpt != nil {
		if err := s.ckpt.Retire(); err != nil {
			if s.cfg.Logf != nil {
				s.cfg.Logf("runtime: shard %d: retire failed: %v", s.id, err)
			}
			s.ckpt.Abort()
		}
		s.ckpt = nil
	}
	return ctlReply{}
}

// sendCtl delivers one control message to shard i and waits for the
// worker's answer. The send mirrors the producer protocol (RLock
// against Close); the receive happens outside the lock — if Close races
// in, the worker still drains the queued control message before
// exiting, so the reply always arrives.
func (r *Runtime) sendCtl(i int, c *shardCtl) (ctlReply, error) {
	if i < 0 || i >= len(r.shards) {
		return ctlReply{}, fmt.Errorf("runtime: shard %d out of range [0,%d)", i, len(r.shards))
	}
	r.mu.RLock()
	if r.closed.Load() {
		r.mu.RUnlock()
		return ctlReply{}, fmt.Errorf("runtime: closed")
	}
	// Control messages count toward depth so an otherwise-idle shard still
	// reads as needing service; the ctl branches decrement on consume.
	r.shards[i].depth.Add(1)
	r.shards[i].ch <- batch{ctl: c}
	r.mu.RUnlock()
	r.wakeOne()
	rep := <-c.reply
	return rep, rep.err
}

// ExportShard freezes shard i — behind everything already queued to it
// — and returns its complete serialized state. Until ResumeShard or
// RetireShard, events reaching the shard are quarantined, not
// processed.
func (r *Runtime) ExportShard(i int) (*checkpoint.ShardState, error) {
	rep, err := r.sendCtl(i, &shardCtl{op: ctlExport, reply: make(chan ctlReply, 1)})
	if err != nil {
		return nil, err
	}
	return rep.state, nil
}

// ResumeShard unfreezes an exported shard (an aborted handoff): the
// local state never left, so processing simply continues.
func (r *Runtime) ResumeShard(i int) error {
	_, err := r.sendCtl(i, &shardCtl{op: ctlResume, reply: make(chan ctlReply, 1)})
	return err
}

// RetireShard tombstones an exported shard's durable files after the
// new owner confirmed a durable import.
func (r *Runtime) RetireShard(i int) error {
	_, err := r.sendCtl(i, &shardCtl{op: ctlRetire, reply: make(chan ctlReply, 1)})
	return err
}

// ImportShard installs a handoff into the shard slot it names, which
// must be empty (a slot this node never owned, or one swept cold).
// Returns the restored seq high-water mark; the caller must bump its
// event numbering above it before routing new events to the slot, or
// the per-instance floor would drop them as replays.
func (r *Runtime) ImportShard(h *checkpoint.Handoff) (maxSeq uint64, hasSeq bool, err error) {
	if h == nil {
		return 0, false, fmt.Errorf("runtime: nil handoff")
	}
	rep, err := r.sendCtl(h.Shard, &shardCtl{op: ctlImport, h: h, reply: make(chan ctlReply, 1)})
	if err != nil {
		return 0, false, err
	}
	return rep.maxSeq, rep.hasSeq, nil
}

// ShardIndexFor exposes the partitioning decision — which shard slot an
// event belongs to — without offering the event. The cluster router
// uses it to decide which NODE owns the event: slot ownership is the
// unit of placement.
func (r *Runtime) ShardIndexFor(e *event.Event) int {
	if len(r.shards) <= 1 {
		return 0
	}
	return int(r.key(e) % uint64(len(r.shards)))
}

// OfferBatchToShard is OfferBatch with the routing decision already
// made: every event goes to slot, regardless of its key. The cluster
// router needs this because it computes the slot itself (ShardIndexFor)
// to pick the owning node — re-hashing here could disagree for queries
// on the round-robin fallback, where the key function is a counter, not
// a pure function of the event. Semantics otherwise match OfferBatch:
// blocking backpressure, door rejection at ladder levels 2–3, counted
// rejections, returns the number accepted.
func (r *Runtime) OfferBatchToShard(slot int, events []*event.Event) int {
	if len(events) == 0 {
		return 0
	}
	if slot < 0 || slot >= len(r.shards) {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return 0
	}
	lvl, fill := LevelNormal, 0.0
	if r.cfg.Bound > 0 {
		lvl, fill = r.updateLevel()
		if lvl >= LevelReject {
			r.admissionRejected.Add(uint64(len(events)))
			return 0
		}
	}
	sh := r.shards[slot]
	if sh.failed.Load() {
		sh = r.fallbackFor(sh.id)
	}
	if sh == nil {
		r.admissionRejected.Add(uint64(len(events)))
		return 0
	}
	enq := time.Now()
	var g []item
	for _, e := range events {
		if lvl == LevelAdmission && !r.admit.Admit(fill) {
			r.admissionRejected.Add(1)
			continue
		}
		if g == nil {
			g = getItems()
		}
		g = append(g, item{e: e, enq: enq})
	}
	if g == nil {
		return 0
	}
	n := len(g)
	if n == 1 {
		one := g[0]
		putItems(g)
		sh.depth.Add(1)
		sh.ch <- batch{one: one}
		r.wakeOne()
		return 1
	}
	sh.depth.Add(int64(n))
	sh.ch <- batch{items: g}
	r.wakeOne()
	return n
}

// ShardExported reports whether slot i is currently frozen/exported.
func (r *Runtime) ShardExported(i int) bool {
	if i < 0 || i >= len(r.shards) {
		return false
	}
	return r.shards[i].exportedFlag.Load()
}
