package runtime

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// Chaos invariant 1: with poison events panicking mid-stream, no match
// is lost except through quarantine — every match the sequential
// reference finds but the supervised runtime misses must be explainable
// by a shard restart (the rebuild discards that shard's partial
// matches), and the runtime must never invent matches.
func TestChaosNoMatchLostExceptByQuarantine(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 7, InterArrival: 15 * event.Microsecond})
	const shards = 4

	poison := map[uint64]bool{311: true, 1207: true, 2404: true, 3333: true, 4747: true}
	r := New(m, Config{
		Shards:         shards,
		Restart:        fastRestart(),
		CollectMatches: true,
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return poison[e.Seq]
		}, "chaos poison"),
	})
	feedAll(r, s)
	snap := r.Snapshot()

	if got, want := snap.Quarantined, uint64(len(poison)); got != want {
		t.Errorf("Quarantined = %d, want %d (each poison event exactly once)", got, want)
	}
	if snap.Restarts != snap.Quarantined {
		t.Errorf("Restarts = %d, Quarantined = %d; every panic is one restart", snap.Restarts, snap.Quarantined)
	}
	if snap.FailedShards != 0 {
		t.Errorf("FailedShards = %d, want 0 (poison is sparse, breaker must hold)", snap.FailedShards)
	}
	// The dead-letter queue names exactly the poison events.
	seen := map[uint64]bool{}
	for _, dl := range r.DeadLetters() {
		seen[dl.Seq] = true
		if !poison[dl.Seq] {
			t.Errorf("dead letter for seq %d, which was never poisoned", dl.Seq)
		}
	}
	for seq := range poison {
		if !seen[seq] {
			t.Errorf("poison seq %d missing from dead letters", seq)
		}
	}

	want := engine.Sequential(m, engine.DefaultCosts(), s, false)
	wantKeys := map[string]engine.Match{}
	for _, mt := range want {
		wantKeys[mt.Key()] = mt
	}
	got := map[string]bool{}
	for _, mt := range r.Matches() {
		k := mt.Key()
		if _, ok := wantKeys[k]; !ok {
			t.Errorf("runtime invented match %s not in the sequential reference", k)
		}
		got[k] = true
	}
	// Every missing match must route (by the runtime's own key function)
	// to a shard that restarted.
	missing := 0
	for k, mt := range wantKeys {
		if got[k] {
			continue
		}
		missing++
		sh := int(r.key(mt.Events[0]) % uint64(shards))
		if snap.Shards[sh].Restarts == 0 {
			t.Errorf("match %s lost on shard %d, which never restarted", k, sh)
		}
	}
	if missing == len(wantKeys) {
		t.Error("runtime lost every match; recovery is not preserving unaffected shards")
	}
	t.Logf("sequential=%d runtime=%d missing=%d (all on restarted shards)", len(wantKeys), len(got), missing)
}

// Chaos invariant 2: a corrupted NDJSON stream never kills the decoder.
// Every line either decodes or surfaces as a *LineError with a usable
// line number and payload sample, and the decoder reaches EOF.
func TestChaosCorruptNDJSONStream(t *testing.T) {
	s := gen.DS1(gen.DS1Config{Events: 500, Seed: 21, InterArrival: 15 * event.Microsecond})
	c := fault.NewCorrupter(0.3, 99)
	var buf bytes.Buffer
	for _, e := range s {
		buf.Write(c.Mangle(EncodeEvent(e)))
		buf.WriteByte('\n')
	}

	d := NewLineDecoder(&buf, 4096)
	accepted, rejected := 0, 0
	lastLine := 0
	for {
		_, _, err := d.Next()
		if err == nil {
			accepted++
			continue
		}
		var lerr *LineError
		if errors.As(err, &lerr) {
			rejected++
			if lerr.Line <= lastLine {
				t.Errorf("line numbers not increasing: %d after %d", lerr.Line, lastLine)
			}
			lastLine = lerr.Line
			if lerr.Payload == "" {
				t.Errorf("line %d rejected with empty payload sample", lerr.Line)
			}
			continue
		}
		if err == io.EOF {
			break
		}
		t.Fatalf("decoder died with non-recoverable error: %v", err)
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("accepted=%d rejected=%d; corruption rate 0.3 should produce both", accepted, rejected)
	}
	if got := d.Rejected(); got != uint64(rejected) {
		t.Errorf("decoder.Rejected() = %d, saw %d LineErrors", got, rejected)
	}
	t.Logf("accepted=%d rejected=%d lines=%d", accepted, rejected, d.Line())
}

// Chaos invariant 3: concurrent producers, snapshot pollers, injected
// panics, and a mid-stream Close must not race or wedge, and the
// accounting invariant (in = shed + processed + quarantined) must hold
// at the end. Run under -race via `make chaos`.
func TestChaosConcurrentProducersAndClose(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 31, InterArrival: 15 * event.Microsecond})
	r := New(m, Config{
		Shards:        4,
		QueueLen:      64,
		Bound:         50 * time.Millisecond, // ladder armed but rarely triggered
		Restart:       fastRestart(),
		BeforeProcess: fault.Chain(fault.PanicEvery(500, 4, "periodic fault")),
	})

	const producers = 4
	var prod, work, poll sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			for i, e := range s {
				if (i+p)%3 == 0 {
					r.TryOffer(e)
				} else {
					r.Offer(e)
				}
			}
		}(p)
	}
	prodDone := make(chan struct{})
	go func() { prod.Wait(); close(prodDone) }()
	// Pollers hammer the read-side API the whole time.
	for p := 0; p < 2; p++ {
		poll.Add(1)
		go func() {
			defer poll.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					_ = r.DeadLetters()
					_ = r.DegradationLevel()
				}
			}
		}()
	}
	work.Add(1)
	go func() { // Close races the producers mid-stream.
		defer work.Done()
	wait:
		for r.Snapshot().EventsIn < 3000 {
			select {
			case <-prodDone:
				// The ladder can hit LevelReject during a restart backoff
				// (full queues) and the producers then spin through their
				// whole remaining streams as door rejections — EventsIn
				// freezes below the trigger with nothing left to offer.
				// That is the ladder doing its job, not a wedge: stop
				// waiting and close what was admitted.
				break wait
			case <-time.After(time.Millisecond):
			}
		}
		r.Close()
	}()
	// Producers finish (post-Close offers return false), then stop pollers.
	done := make(chan struct{})
	go func() { prod.Wait(); work.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("chaos run wedged: producers or Close never finished: %v rejected=%d",
			r.Snapshot(), r.Snapshot().AdmissionRejected)
	}
	close(stop)
	poll.Wait()
	r.Close() // idempotent

	snap := r.Snapshot()
	if got := snap.EventsShed + snap.EventsProcessed + snap.Quarantined; got != snap.EventsIn {
		t.Errorf("shed+processed+quarantined = %d, want EventsIn = %d", got, snap.EventsIn)
	}
	if snap.Quarantined == 0 {
		t.Error("periodic fault never fired; chaos injection inert")
	}
	if snap.Restarts != snap.Quarantined {
		t.Errorf("Restarts = %d, Quarantined = %d", snap.Restarts, snap.Quarantined)
	}
}
