package runtime

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cepshed/internal/event"
)

func newInternTable() *internTable {
	return &internTable{m: make(map[string]string, 64)}
}

// checkFastAgainstStdlib runs one line through both parsers and fails if
// the fast path accepted it but disagrees with ParseEvent in any way.
// Returns whether the fast path accepted the line.
func checkFastAgainstStdlib(t *testing.T, line []byte) bool {
	t.Helper()
	fe, fht, ok := parseEventFast(line, newInternTable())
	if !ok {
		return false // bail is always allowed; the fallback handles it
	}
	se, sht, err := ParseEvent(line)
	if err != nil {
		t.Fatalf("fast path accepted a line the stdlib rejects: %q -> %v", line, err)
	}
	if fe.Type != se.Type || fe.Time != se.Time || fht != sht {
		t.Fatalf("fast path disagrees on %q: fast=(%v,%v,hasTime=%v) stdlib=(%v,%v,hasTime=%v)",
			line, fe.Type, fe.Time, fht, se.Type, se.Time, sht)
	}
	if !reflect.DeepEqual(fe.Attrs, se.Attrs) {
		t.Fatalf("fast path attrs disagree on %q: fast=%v stdlib=%v", line, fe.Attrs, se.Attrs)
	}
	return true
}

// TestParseEventFastDifferential pits the fast path against ParseEvent
// on hand-picked edge cases. Lines in mustAccept are the canonical wire
// shape — the fast path bailing on them would silently lose the whole
// optimization, so that is a failure too.
func TestParseEventFastDifferential(t *testing.T) {
	mustAccept := []string{
		`{"type":"A","time":123456,"attrs":{"ID":5,"V":3.5,"user":"u1"}}`,
		`{"type":"A","time":0,"attrs":{}}`,
		`{"type":"B","attrs":{"ID":2}}`, // no time: hasTime=false
		`{"type":"C","time":-42,"attrs":{"x":-0.5}}`,
		`{"type":"A","time":9223372036854775807,"attrs":{}}`,
		`{"attrs":{"a":1},"time":7,"type":"Z"}`, // any key order
		` { "type" : "A" , "time" : 1 , "attrs" : { "k" : "v" } } `,
		`{"type":"A","attrs":{"big":9223372036854775808}}`,       // int64 overflow -> float
		`{"type":"A","attrs":{"n":18446744073709551615}}`,        // uint64 max -> float
		`{"type":"A","attrs":{"e":1e5,"E":1E+5,"m":-1.5e-3}}`,    // exponent forms
		`{"type":"A","attrs":{"z":-0,"zz":0.0}}`,                 // signed zero
		`{"type":"A","attrs":{"dup":1,"dup":2}}`,                 // attr last-wins
		`{"type":"A","time":5,"attrs":{"k":"v"}}trailing junk`,   // Decode reads one value
		`{"type":"A"}`,                                           // no attrs at all
	}
	for _, line := range mustAccept {
		if !checkFastAgainstStdlib(t, []byte(line)) {
			t.Errorf("fast path bailed on canonical line %q", line)
		}
	}
	// Lines where bailing is expected; the check still enforces
	// agreement if the fast path ever starts accepting them.
	tricky := []string{
		``,
		`{}`,
		`{"type":""}`,                         // empty type errors in stdlib
		`{"Type":"A"}`,                        // case-folded key: stdlib accepts!
		`{"TYPE":"A","TIME":3}`,               //
		`{"type":"A","time":null}`,            // null time: stdlib hasTime=false
		`{"type":"A","attrs":null}`,           //
		`{"type":"A","type":"B"}`,             // duplicate top-level key: last wins
		`{"type":"A","attrs":{"a":1},"attrs":{"b":2}}`, // duplicate attrs MERGE
		`{"type":"A","time":1.5}`,             // float time errors
		`{"type":"A","time":1e2}`,             //
		`{"type":"A","time":9223372036854775808}`, // time overflow errors
		`{"type":"A","attrs":{"x":true}}`,     // bool attr errors
		`{"type":"A","attrs":{"x":null}}`,     //
		`{"type":"A","attrs":{"x":{"y":1}}}`,  // nested attr errors
		`{"type":"A","attrs":{"x":[1]}}`,      //
		`{"type":"A","attrs":{"x":01}}`,       // leading zero errors
		`{"type":"A","attrs":{"x":+1}}`,       // leading plus errors
		`{"type":"A","attrs":{"x":1e999}}`,    // out-of-range float errors
		`{"type":"A","attrs":{"x":.5}}`,       // bare fraction errors
		`{"type":"A","attrs":{"x":1.}}`,       //
		`{"type":"AA"}`,                  // escape: stdlib decodes it
		`{"type":"é"}`,                   //
		`{"type":"é","attrs":{"k":"ü"}}`,      // non-ASCII: stdlib accepts
		`{"type":"A","extra":1}`,              // unknown key errors (DisallowUnknownFields)
		`{"type":"A","attrs":{"k":"v"}`,       // truncated
		`{"type":"A",}`,                       // trailing comma
		`[1,2,3]`,
		`"just a string"`,
	}
	for _, line := range tricky {
		checkFastAgainstStdlib(t, []byte(line))
	}
}

// TestParseEventFastRandomized round-trips randomly generated events
// through EncodeEvent and both parsers. ASCII-only events must take the
// fast path; events with exotic strings may bail but must never
// disagree.
func TestParseEventFastRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	exotic := []string{"", "ü", "a\"b", "x\\y", "tab\there", "line\nbreak", "nul\x00"}
	accepted := 0
	for i := 0; i < 2000; i++ {
		plain := rng.Intn(4) > 0
		str := func() string {
			if plain || rng.Intn(3) > 0 {
				return fmt.Sprintf("s%d", rng.Intn(50))
			}
			return exotic[rng.Intn(len(exotic))]
		}
		attrs := map[string]event.Value{}
		for n := rng.Intn(5); n > 0; n-- {
			k := str()
			switch rng.Intn(3) {
			case 0:
				attrs[k] = event.Int(rng.Int63() - rng.Int63())
			case 1:
				attrs[k] = event.Float(math.Trunc(rng.NormFloat64()*1e6) / 1e3)
			default:
				attrs[k] = event.Str(str())
			}
		}
		typ := str()
		if typ == "" {
			typ = "T"
		}
		e := event.New(typ, event.Time(rng.Int63()-rng.Int63()), attrs)
		line := EncodeEvent(e)
		if checkFastAgainstStdlib(t, line) {
			accepted++
		} else if plain && asciiClean(line) {
			t.Fatalf("fast path bailed on plain ASCII line %q", line)
		}
	}
	if accepted == 0 {
		t.Fatal("fast path accepted nothing; generator or parser broken")
	}
	t.Logf("fast path accepted %d/2000 random round-trips", accepted)
}

func asciiClean(line []byte) bool {
	for _, c := range line {
		if c < 0x20 || c >= 0x80 || c == '\\' {
			return false
		}
	}
	return true
}

// TestParseValueNumbers pins the parseValue number fast path to the
// documented semantics: int64 range stays Int, overflow and any
// fraction/exponent form degrade to Float, malformed literals error.
func TestParseValueNumbers(t *testing.T) {
	cases := []struct {
		raw  string
		want event.Value
		err  bool
	}{
		{`9223372036854775807`, event.Int(math.MaxInt64), false},
		{`-9223372036854775808`, event.Int(math.MinInt64), false},
		{`9223372036854775808`, event.Float(9223372036854775808), false},  // int64+1 -> float
		{`-9223372036854775809`, event.Float(-9223372036854775809), false},
		{`18446744073709551615`, event.Float(18446744073709551615), false},
		{`1e5`, event.Float(100000), false},
		{`1E+5`, event.Float(100000), false},
		{`-1.5e-3`, event.Float(-0.0015), false},
		{`123.0`, event.Float(123), false}, // fraction part forces float
		{`-0`, event.Int(0), false},
		{`0.0`, event.Float(0), false},
		{`1e999`, event.Value{}, true}, // out of range
		{`01`, event.Value{}, true},    // leading zero is not JSON
		{`+1`, event.Value{}, true},
		{`.5`, event.Value{}, true},
		{`1.`, event.Value{}, true},
		{`true`, event.Value{}, true},
		{`nan`, event.Value{}, true},
	}
	for _, c := range cases {
		got, err := parseValue([]byte(c.raw))
		if c.err {
			if err == nil {
				t.Errorf("parseValue(%q) = %v, want error", c.raw, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseValue(%q) error: %v", c.raw, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseValue(%q) = %#v, want %#v", c.raw, got, c.want)
		}
	}
}

// TestInternTableBounds pins the intern table's caps: oversized strings
// and post-cap entries still decode, just without deduplication.
func TestInternTableBounds(t *testing.T) {
	in := newInternTable()
	long := strings.Repeat("x", internMaxLen+1)
	if got := in.intern([]byte(long)); got != long {
		t.Errorf("long string mangled: %q", got)
	}
	if len(in.m) != 0 {
		t.Errorf("long string was interned; table should skip it")
	}
	for i := 0; i < internMaxEntries+100; i++ {
		s := fmt.Sprintf("k%d", i)
		if got := in.intern([]byte(s)); got != s {
			t.Fatalf("intern(%q) = %q", s, got)
		}
	}
	if len(in.m) != internMaxEntries {
		t.Errorf("table size %d, want cap %d", len(in.m), internMaxEntries)
	}
	// Post-cap lookups of already-interned strings still hit.
	if got := in.intern([]byte("k0")); got != "k0" {
		t.Errorf("interned lookup broken: %q", got)
	}
}

// FuzzParseEventFast feeds arbitrary single lines to both parsers: the
// fast path must never panic and must agree with ParseEvent on every
// line it accepts.
func FuzzParseEventFast(f *testing.F) {
	f.Add([]byte(`{"type":"A","time":123,"attrs":{"ID":5,"V":3.5,"user":"u1"}}`))
	f.Add([]byte(`{"type":"A","time":null,"attrs":null}`))
	f.Add([]byte(`{"Type":"A","attrs":{"x":01,"y":1e999,"z":true}}`))
	f.Add([]byte(`{"attrs":{"dup":1,"dup":2},"type":"Z","time":-1}`))
	f.Add([]byte(`{"type":"é","attrs":{"k":"a\"b"}}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		fe, fht, ok := parseEventFast(line, newInternTable())
		if !ok {
			return
		}
		se, sht, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("fast accepted, stdlib rejects %q: %v", line, err)
		}
		if fe.Type != se.Type || fe.Time != se.Time || fht != sht || !reflect.DeepEqual(fe.Attrs, se.Attrs) {
			t.Fatalf("divergence on %q: fast=%v stdlib=%v", line, fe, se)
		}
	})
}
