package runtime

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// collector records every delivered match key across one or more runtime
// incarnations and remembers duplicates — the property the WAL's
// flush-before-deliver match records exist to guarantee.
type collector struct {
	mu   sync.Mutex
	seen map[string]int
}

func newCollector() *collector { return &collector{seen: map[string]int{}} }

func (c *collector) hook() func(int, engine.Match) {
	return func(_ int, m engine.Match) {
		c.mu.Lock()
		c.seen[m.Key()]++
		c.mu.Unlock()
	}
}

func (c *collector) dups() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for k, n := range c.seen {
		if n > 1 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (c *collector) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.seen))
	for k := range c.seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// drainTo polls until the runtime has appended (and begun processing)
// exactly want events, so a Kill afterwards cannot discard queued input
// that never reached the WAL.
func drainTo(t *testing.T, r *Runtime, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := r.Snapshot()
		if s.EventsIn == want {
			// The last event may still be mid-process; one more snapshot
			// round after queues empty is enough for its WAL records (match
			// appends flush synchronously before delivery).
			depth := 0
			for _, ss := range s.Shards {
				depth += ss.QueueDepth
			}
			if depth == 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled: EventsIn=%d, want %d", s.EventsIn, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func subsetOf(got, want []string) (missing []string, extra []string) {
	w := map[string]bool{}
	for _, k := range want {
		w[k] = true
	}
	g := map[string]bool{}
	for _, k := range got {
		g[k] = true
		if !w[k] {
			extra = append(extra, k)
		}
	}
	for _, k := range want {
		if !g[k] {
			missing = append(missing, k)
		}
	}
	return missing, extra
}

// runCrashDifferential is the acceptance backbone: run a stream with a
// SIGKILL-equivalent crash at a random cut, recover into a second
// incarnation, and require the union of delivered matches to equal the
// uninterrupted run's EXACTLY, with zero duplicate emissions. FlushEvery
// = 1 makes the WAL complete at the crash instant, so recovery owes the
// full set; larger flush intervals only shrink the owed window, never
// change the no-duplicates side.
func runCrashDifferential(t *testing.T, shards int, seed int64, events int) {
	t.Helper()
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: events, Seed: seed, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	if len(want) == 0 {
		t.Fatal("reference run found no matches; test is vacuous")
	}

	rng := rand.New(rand.NewSource(seed * 7919))
	cut := 1 + rng.Intn(len(s)-2)
	dir := t.TempDir()
	dur := &checkpoint.Config{Dir: dir, EveryEvents: 200, FlushEvery: 1}
	col := newCollector()
	cfg := Config{Shards: shards, OnMatch: col.hook(), Durability: dur}

	r1 := New(m, cfg)
	r1.WaitRecovered()
	for _, e := range s[:cut] {
		r1.Offer(e)
	}
	drainTo(t, r1, uint64(cut))
	r1.Kill()

	r2 := New(m, cfg)
	r2.WaitRecovered()
	info := r2.RecoveryInfo()
	if info.ColdStarts != 0 {
		t.Fatalf("recovery fell back to cold start %d times", info.ColdStarts)
	}
	if info.MaxSeq != uint64(cut-1) && shards == 1 {
		t.Fatalf("restored MaxSeq = %d, want %d", info.MaxSeq, cut-1)
	}
	for _, e := range s[cut:] {
		r2.Offer(e)
	}
	r2.Close()

	if d := col.dups(); len(d) != 0 {
		t.Fatalf("cut=%d: %d matches delivered more than once, e.g. %s", cut, len(d), d[0])
	}
	got := col.keys()
	missing, extra := subsetOf(got, want)
	if len(missing) != 0 || len(extra) != 0 {
		t.Fatalf("cut=%d: recovered run delivered %d matches, want %d (missing %d, extra %d)",
			cut, len(got), len(want), len(missing), len(extra))
	}
}

func TestCrashRecoveryDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		runCrashDifferential(t, 1, seed, 2500)
	}
}

func TestCrashRecoveryDifferentialSharded(t *testing.T) {
	// Q1 correlates on ID, so hash partitioning is exact and the
	// differential holds per shard too.
	runCrashDifferential(t, 3, 4, 2500)
}

// TestGracefulRestartNoReplay: Close takes a final snapshot, so a clean
// restart restores with ZERO WAL replay and the two halves still add up
// to the uninterrupted match set.
func TestGracefulRestartNoReplay(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 5, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 500, FlushEvery: 8}
	col := newCollector()
	cfg := Config{Shards: 1, OnMatch: col.hook(), Durability: dur}
	cut := len(s) / 2

	r1 := New(m, cfg)
	for _, e := range s[:cut] {
		r1.Offer(e)
	}
	r1.Close()

	r2 := New(m, cfg)
	r2.WaitRecovered()
	info := r2.RecoveryInfo()
	if info.WALReplayed != 0 {
		t.Fatalf("clean shutdown left %d WAL events to replay, want 0", info.WALReplayed)
	}
	if info.MaxSeq != uint64(cut-1) {
		t.Fatalf("restored MaxSeq = %d, want %d", info.MaxSeq, cut-1)
	}
	for _, e := range s[cut:] {
		r2.Offer(e)
	}
	r2.Close()

	if d := col.dups(); len(d) != 0 {
		t.Fatalf("%d duplicate matches across restart", len(d))
	}
	got := col.keys()
	if missing, extra := subsetOf(got, want); len(missing) != 0 || len(extra) != 0 {
		t.Fatalf("restarted run delivered %d matches, want %d", len(got), len(want))
	}
}

// TestTornWALTailRecovery chops bytes off the WAL tail after a crash —
// the on-disk state a power loss mid-write leaves. Recovery must come up
// without panicking, deliver only a subset of the reference matches in
// its own incarnation without internal duplicates, and keep processing
// new input. (Cross-incarnation duplicates are out of scope here: the
// truncation may eat match records for deliveries that DID happen, which
// a real crash cannot do — flush-before-deliver puts every delivered
// match's record on disk ahead of any bytes a crash can lose.)
func TestTornWALTailRecovery(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 9, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	dir := t.TempDir()
	dur := &checkpoint.Config{Dir: dir, EveryEvents: 400, FlushEvery: 1}
	cut := 1000

	r1 := New(m, Config{Shards: 1, Durability: dur})
	for _, e := range s[:cut] {
		r1.Offer(e)
	}
	drainTo(t, r1, uint64(cut))
	r1.Kill()

	wal := filepath.Join(dir, "shard-000.wal")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 64 {
		// Keep the header plus a ragged prefix; the final record is torn.
		if err := os.Truncate(wal, fi.Size()-fi.Size()/3); err != nil {
			t.Fatal(err)
		}
	}

	col := newCollector()
	r2 := New(m, Config{Shards: 1, OnMatch: col.hook(), Durability: dur})
	r2.WaitRecovered()
	if info := r2.RecoveryInfo(); info.ColdStarts != 0 {
		t.Fatalf("torn tail caused %d cold starts, want graceful partial replay", info.ColdStarts)
	}
	for _, e := range s[cut:] {
		r2.Offer(e)
	}
	r2.Close()

	if d := col.dups(); len(d) != 0 {
		t.Fatalf("%d matches delivered twice within the recovered incarnation", len(d))
	}
	if _, extra := subsetOf(col.keys(), want); len(extra) != 0 {
		t.Fatalf("recovered run invented %d matches outside the reference set", len(extra))
	}
}

// TestCountersMonotoneAcrossRecovery is the accounting regression test:
// the externally visible created/dropped partial-match counters must
// never decrease — not across a panic-rebuild-restore (the supervisor
// path re-bases offsets after replay) and not across a kill-and-reboot
// (the boot path adopts the snapshot counters, then replay adds the
// tail).
func TestCountersMonotoneAcrossRecovery(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 11, InterArrival: 15 * event.Microsecond})
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 300, FlushEvery: 1}
	const poisonSeq = 777
	cfg := Config{
		Shards:     1,
		Durability: dur,
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return e.Seq == poisonSeq
		}, "poison"),
		Restart: RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	}

	r1 := New(m, cfg)
	stop := make(chan struct{})
	var monoErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// Sample the exported counters concurrently with the
		// panic-rebuild-replay cycle; any dip is the regression.
		defer wg.Done()
		var lastCreated, lastDropped uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r1.Snapshot()
			if snap.CreatedPMs < lastCreated || snap.DroppedPMs < lastDropped {
				monoErr = &nonMonotone{lastCreated, snap.CreatedPMs, lastDropped, snap.DroppedPMs}
				return
			}
			lastCreated, lastDropped = snap.CreatedPMs, snap.DroppedPMs
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for _, e := range s {
		r1.Offer(e)
	}
	drainTo(t, r1, uint64(len(s)))
	close(stop)
	wg.Wait()
	if monoErr != nil {
		t.Fatalf("counters dipped during panic recovery: %v", monoErr)
	}
	pre := r1.Snapshot()
	if pre.Restarts != 1 || pre.Quarantined != 1 {
		t.Fatalf("restarts=%d quarantined=%d, want 1/1 (poison must fire exactly once)", pre.Restarts, pre.Quarantined)
	}
	r1.Kill()

	// Boot restore: counters resume at or above the pre-kill values.
	r2 := New(m, cfg)
	r2.WaitRecovered()
	post := r2.Snapshot()
	if post.CreatedPMs < pre.CreatedPMs || post.DroppedPMs < pre.DroppedPMs {
		t.Fatalf("boot restore lost counter ground: created %d->%d dropped %d->%d",
			pre.CreatedPMs, post.CreatedPMs, pre.DroppedPMs, post.DroppedPMs)
	}
	if post.EventsIn < pre.EventsIn-1 {
		t.Fatalf("boot restore lost events_in ground: %d -> %d", pre.EventsIn, post.EventsIn)
	}
	r2.Close()
}

type nonMonotone struct {
	prevCreated, curCreated, prevDropped, curDropped uint64
}

func (e *nonMonotone) Error() string {
	return "created " + itoa(e.prevCreated) + "->" + itoa(e.curCreated) +
		", dropped " + itoa(e.prevDropped) + "->" + itoa(e.curDropped)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestChaosKillDuringSnapshot crashes the worker at the exact moment the
// second snapshot's temp file has been written but not renamed. The
// half-written generation must be skipped for the previous good one: no
// cold start, exactly one supervisor restart, and the delivered matches
// stay a duplicate-free subset of the reference set (the event in flight
// at the crash is quarantined — that is the bounded cost).
func TestChaosKillDuringSnapshot(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 13, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	col := newCollector()
	dur := &checkpoint.Config{
		Dir:         t.TempDir(),
		EveryEvents: 250,
		FlushEvery:  1,
		// This test is about the SYNC crash protocol: the stage panic must
		// land on the shard thread mid-save and be supervised. The async
		// protocol's containment of the same fault is covered by
		// TestChaosStealDuringSnapshot.
		SyncSave: true,
		OnStage:  fault.FailStageOnce("tmp-written", 2),
	}
	r := New(m, Config{
		Shards:     1,
		OnMatch:    col.hook(),
		Durability: dur,
		Restart:    RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	})
	for _, e := range s {
		r.Offer(e)
	}
	drainTo(t, r, uint64(len(s)))
	snap := r.Snapshot()
	r.Close()

	if snap.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (snapshot-stage crash must be supervised once)", snap.Restarts)
	}
	if snap.ColdStarts != 0 {
		t.Fatalf("cold starts = %d; recovery must fall back to the previous good snapshot", snap.ColdStarts)
	}
	if snap.Snapshots < 2 {
		t.Fatalf("snapshots = %d; the crash point was never reached", snap.Snapshots)
	}
	if d := col.dups(); len(d) != 0 {
		t.Fatalf("%d duplicate matches across the snapshot crash", len(d))
	}
	got := col.keys()
	missing, extra := subsetOf(got, want)
	if len(extra) != 0 {
		t.Fatalf("%d matches outside the reference set", len(extra))
	}
	// The quarantined in-flight event may cost its own matches, nothing
	// more; Q1 matches are short, so the loss is a handful at most.
	if len(missing) > 25 {
		t.Fatalf("lost %d of %d matches; snapshot crash lost more than the in-flight event", len(missing), len(want))
	}
	if len(got) == 0 {
		t.Fatal("no matches delivered; test is vacuous")
	}
}

// TestDeadLetterCheckpointSurvivesCrash: a dead letter is postmortem
// evidence, so it is checkpointed the moment it is recorded rather than
// waiting for the snapshot cadence. Both sources — an edge-side
// Quarantine (bad input that never entered a shard) and a supervisor
// quarantine (a poison event that panicked a worker) — must survive a
// SIGKILL that lands before any periodic snapshot would have saved them.
func TestDeadLetterCheckpointSurvivesCrash(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 200, Seed: 17, InterArrival: 15 * event.Microsecond})
	// EveryEvents is set far past the stream length: the only DLQ saves
	// are the quarantine-time ones under test.
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 1 << 30, FlushEvery: 1}
	const poisonSeq = 42
	cfg := Config{
		Shards:     2,
		Durability: dur,
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return e.Seq == poisonSeq
		}, "poison"),
		Restart: RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	}

	r1 := New(m, cfg)
	r1.WaitRecovered()
	r1.Quarantine("decode: line 3: not json", "not-json")
	for _, e := range s {
		r1.Offer(e)
	}
	drainTo(t, r1, uint64(len(s)))
	if q := r1.Snapshot().Quarantined; q != 2 {
		t.Fatalf("quarantined = %d before the crash, want 2 (edge + poison)", q)
	}
	r1.Kill()

	r2 := New(m, cfg)
	r2.WaitRecovered()
	defer r2.Close()
	if got := r2.Snapshot().Quarantined; got != 2 {
		t.Fatalf("Quarantined after crash restart = %d, want 2", got)
	}
	letters := r2.DeadLetters()
	if len(letters) != 2 {
		t.Fatalf("dead letters after crash restart = %d, want 2: %+v", len(letters), letters)
	}
	var haveEdge, havePoison bool
	for _, l := range letters {
		if l.Shard == -1 && l.Reason == "decode: line 3: not json" {
			haveEdge = true
		}
		if l.Shard >= 0 && l.Seq == poisonSeq {
			havePoison = true
		}
	}
	if !haveEdge || !havePoison {
		t.Fatalf("restored letters missing a source (edge=%v poison=%v): %+v", haveEdge, havePoison, letters)
	}
}

// shardConservation asserts the per-shard accounting law
// events_in == shed + processed + quarantined for every shard.
func shardConservation(t *testing.T, snap Snapshot, ctx string) {
	t.Helper()
	for _, ss := range snap.Shards {
		if ss.EventsIn != ss.EventsShed+ss.EventsProcessed+ss.Quarantined {
			t.Fatalf("%s: shard %d conservation broken: in=%d shed=%d processed=%d quarantined=%d",
				ctx, ss.Shard, ss.EventsIn, ss.EventsShed, ss.EventsProcessed, ss.Quarantined)
		}
	}
}

// TestRecoveryBeforeFirstSnapshot crashes before any snapshot exists, so
// recovery has no sequence floor and must replay the WAL from the very
// first record. Sequence numbers start at 0: a zero-valued "no snapshot"
// sentinel would silently drop the stream's first event here, losing its
// matches forever.
func TestRecoveryBeforeFirstSnapshot(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 21, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	if len(want) == 0 {
		t.Fatal("reference run found no matches; test is vacuous")
	}
	// EveryEvents past the cut: the crash lands before the first snapshot.
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 1 << 30, FlushEvery: 1}
	col := newCollector()
	cfg := Config{Shards: 1, OnMatch: col.hook(), Durability: dur}
	const cut = 60

	r1 := New(m, cfg)
	r1.WaitRecovered()
	for _, e := range s[:cut] {
		r1.Offer(e)
	}
	drainTo(t, r1, cut)
	r1.Kill()

	r2 := New(m, cfg)
	r2.WaitRecovered()
	info := r2.RecoveryInfo()
	if !info.Restored {
		t.Fatal("recovery restored a WAL tail but reports Restored=false")
	}
	if info.WALReplayed != cut {
		t.Fatalf("replayed %d WAL events, want %d (seq 0 must replay without a snapshot floor)",
			info.WALReplayed, cut)
	}
	if info.MaxSeq != cut-1 {
		t.Fatalf("restored MaxSeq = %d, want %d", info.MaxSeq, cut-1)
	}
	for _, e := range s[cut:] {
		r2.Offer(e)
	}
	r2.Close()

	if d := col.dups(); len(d) != 0 {
		t.Fatalf("%d matches delivered more than once", len(d))
	}
	got := col.keys()
	if missing, extra := subsetOf(got, want); len(missing) != 0 || len(extra) != 0 {
		t.Fatalf("recovered run delivered %d matches, want %d (missing %d, extra %d)",
			len(got), len(want), len(missing), len(extra))
	}
}

// TestQuarantinedSeqZeroSkippedOnReplay: the stream's FIRST event is the
// poison. Its quarantine writes a Q record for seq 0; a reboot with no
// snapshot (so no replay floor) must honor that record — a zero-valued
// floor sentinel would discard it, and boot replay would re-panic on the
// poison event on every restart.
func TestQuarantinedSeqZeroSkippedOnReplay(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 300, Seed: 23, InterArrival: 15 * event.Microsecond})
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 1 << 30, FlushEvery: 1}
	cfg := Config{
		Shards:     1,
		Durability: dur,
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return e.Seq == 0
		}, "poison"),
		Restart: RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	}

	r1 := New(m, cfg)
	r1.WaitRecovered()
	for _, e := range s {
		r1.Offer(e)
	}
	drainTo(t, r1, uint64(len(s)))
	if pre := r1.Snapshot(); pre.Restarts != 1 {
		t.Fatalf("restarts = %d before the crash, want 1", pre.Restarts)
	}
	r1.Kill()

	r2 := New(m, cfg)
	r2.WaitRecovered()
	snap := r2.Snapshot()
	r2.Close()
	// Any restart in the second incarnation means boot replay hit the
	// poison event again: the seq-0 Q record was not honored.
	if snap.Restarts != 0 {
		t.Fatalf("boot replay restarted %d times; quarantined seq 0 was replayed", snap.Restarts)
	}
	if snap.EventsIn != uint64(len(s)) {
		t.Fatalf("events_in after recovery = %d, want %d", snap.EventsIn, len(s))
	}
	shardConservation(t, snap, "after seq-0-poison recovery")
}

// TestBootReplayPanicKeepsConservation arms a poison event that fires
// only during the SECOND incarnation's boot replay. The supervisor
// quarantines it and retries recovery; the retry must resume boot counter
// composition (snapshot base + full replay accounting), not degrade to
// the post-panic path that stops counting — that would permanently lose
// the arrival counts of every event past the poison seq.
func TestBootReplayPanicKeepsConservation(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 650, Seed: 27, InterArrival: 15 * event.Microsecond})
	// SyncSave pins snapshots to the shard thread: the test needs a
	// snapshot deterministically on disk BEFORE the kill so boot replay
	// exercises the snapshot-base counter composition path.
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 200, FlushEvery: 1, SyncSave: true}
	const poisonSeq = 620
	var armed atomic.Bool
	cfg := Config{
		Shards:     1,
		Durability: dur,
		BeforeProcess: fault.PanicIf(func(_ int, e *event.Event) bool {
			return armed.Load() && e.Seq == poisonSeq
		}, "replay-poison"),
		Restart: RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	}

	r1 := New(m, cfg)
	r1.WaitRecovered()
	for _, e := range s {
		r1.Offer(e)
	}
	drainTo(t, r1, uint64(len(s)))
	pre := r1.Snapshot()
	if pre.Snapshots == 0 {
		t.Fatal("no snapshot before the crash; boot replay would not exercise the snapshot-base path")
	}
	shardConservation(t, pre, "before crash")
	r1.Kill()

	armed.Store(true)
	r2 := New(m, cfg)
	r2.WaitRecovered()
	snap := r2.Snapshot()
	r2.Close()

	if snap.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (the armed poison must panic boot replay exactly once)", snap.Restarts)
	}
	if snap.EventsIn != pre.EventsIn {
		t.Fatalf("events_in after boot-replay panic = %d, want %d — the retry lost arrival counts",
			snap.EventsIn, pre.EventsIn)
	}
	var quarantined uint64
	for _, ss := range snap.Shards {
		quarantined += ss.Quarantined
	}
	if quarantined != 1 {
		t.Fatalf("shard quarantined = %d, want exactly 1 (no double count across the retry)", quarantined)
	}
	shardConservation(t, snap, "after boot-replay panic retry")
}

// TestWALFailureDegradesLoudly simulates a WAL write failure (the file
// descriptor dies under the store, as on a yanked disk). The shard must
// count the failure, disable its durability, and KEEP processing — the
// match stream must be unaffected even though exactly-once across a
// restart is gone.
func TestWALFailureDegradesLoudly(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 800, Seed: 31, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 200, FlushEvery: 1}
	col := newCollector()
	r := New(m, Config{Shards: 1, OnMatch: col.hook(), Durability: dur})
	r.WaitRecovered()
	// Close the WAL's file descriptor out from under the store: every
	// subsequent append flush fails. WaitRecovered ordered this write
	// after the worker's recovery-time store use; the worker's next use
	// is ordered after the first Offer's channel send.
	r.shards[0].ckpt.Abort()
	for _, e := range s {
		r.Offer(e)
	}
	drainTo(t, r, uint64(len(s)))
	snap := r.Snapshot()
	r.Close()

	if snap.WALErrors == 0 {
		t.Fatal("WAL failure was not counted")
	}
	if snap.EventsIn != uint64(len(s)) {
		t.Fatalf("events_in = %d, want %d — processing must continue without durability", snap.EventsIn, len(s))
	}
	if d := col.dups(); len(d) != 0 {
		t.Fatalf("%d duplicate matches after durability loss", len(d))
	}
	got := col.keys()
	if missing, extra := subsetOf(got, want); len(missing) != 0 || len(extra) != 0 {
		t.Fatalf("degraded run delivered %d matches, want %d", len(got), len(want))
	}
}

// TestCrashRecoveryDifferentialGroupCommit is the group-commit variant
// of the differential: with FlushEvery 64 and the byte/interval limits
// pinned huge, a Kill loses at most one unflushed flush group plus the
// queued events that never reached the WAL. Re-offering everything above
// the restored floor must reproduce the reference match set EXACTLY with
// zero duplicate deliveries — matches are parked until their covering
// flush, so a match in the lost group was never delivered and the
// post-recovery redelivery is the single delivery.
func TestCrashRecoveryDifferentialGroupCommit(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		m := nfa.MustCompile(query.Q1("8ms"))
		s := gen.DS1(gen.DS1Config{Events: 2500, Seed: seed, InterArrival: 15 * event.Microsecond})
		want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
		if len(want) == 0 {
			t.Fatal("reference run found no matches; test is vacuous")
		}
		rng := rand.New(rand.NewSource(seed * 104729))
		cut := 1 + rng.Intn(len(s)-2)
		const flushEvery = 64
		dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 300,
			FlushEvery: flushEvery, FlushBytes: 1 << 30, FlushInterval: time.Hour}
		col := newCollector()
		cfg := Config{Shards: 1, OnMatch: col.hook(), Durability: dur}

		r1 := New(m, cfg)
		r1.WaitRecovered()
		for _, e := range s[:cut] {
			r1.Offer(e)
		}
		pre := r1.Snapshot()
		r1.Kill() // SIGKILL-equivalent: queued events and the open flush group die

		r2 := New(m, cfg)
		r2.WaitRecovered()
		info := r2.RecoveryInfo()
		next := uint64(0)
		if info.Restored {
			next = info.MaxSeq + 1
		}
		// At-most-one-group loss: the durable prefix may trail what was
		// processed before the Kill by no more than one flush group (the
		// pre-Kill snapshot undercounts what was processed by Kill time,
		// so this bound is conservative).
		if info.Restored && next+flushEvery < pre.EventsProcessed {
			t.Fatalf("cut=%d: durable prefix %d events, %d processed before Kill — lost more than one flush group",
				cut, next, pre.EventsProcessed)
		}
		for _, e := range s[next:] {
			r2.Offer(e)
		}
		r2.Close()

		if d := col.dups(); len(d) != 0 {
			t.Fatalf("cut=%d: %d matches delivered more than once, e.g. %s", cut, len(d), d[0])
		}
		got := col.keys()
		missing, extra := subsetOf(got, want)
		if len(missing) != 0 || len(extra) != 0 {
			t.Fatalf("cut=%d: recovered run delivered %d matches, want %d (missing %d, extra %d)",
				cut, len(got), len(want), len(missing), len(extra))
		}
	}
}

// TestWALFailureMidGroupDeliversBufferedMatches breaks the WAL while
// matches are parked in an open flush group: walFailed must deliver the
// parked matches rather than drop them, count wal_errors exactly once,
// and leave the match stream equal to the reference.
func TestWALFailureMidGroupDeliversBufferedMatches(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 800, Seed: 31, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))
	// The first flush attempt happens at 512 buffered records (the count
	// limit; bytes and interval pinned huge, snapshots disabled). Matches
	// among the first ~400 events guarantee the failing group holds
	// parked matches — asserted so the test cannot go vacuous.
	if pre := engine.Sequential(m, engine.DefaultCosts(), s[:400], false); len(pre) == 0 {
		t.Fatal("no matches in the stream prefix; pick another seed")
	}
	dur := &checkpoint.Config{Dir: t.TempDir(), EveryEvents: 1 << 20,
		FlushEvery: 512, FlushBytes: 1 << 30, FlushInterval: time.Hour}
	col := newCollector()
	gate := make(chan struct{})
	r := New(m, Config{
		Shards: 1, QueueLen: 1024, OnMatch: col.hook(), Durability: dur,
		// Hold the worker at the first event until every offer is queued:
		// the queue stays deep, so no idle flush closes the group before
		// the 512-record policy flush hits the broken descriptor.
		BeforeProcess: func(_ int, e *event.Event) {
			if e.Seq == 0 {
				<-gate
			}
		},
	})
	r.WaitRecovered()
	// Close the WAL's file descriptor out from under the store: every
	// subsequent flush fails. WaitRecovered ordered this write after the
	// worker's recovery-time store use (same trick as
	// TestWALFailureDegradesLoudly).
	r.shards[0].ckpt.Abort()
	for _, e := range s {
		r.Offer(e)
	}
	close(gate)
	drainTo(t, r, uint64(len(s)))
	snap := r.Snapshot()
	r.Close()

	if snap.WALErrors != 1 {
		t.Fatalf("wal_errors = %d, want exactly 1", snap.WALErrors)
	}
	if d := col.dups(); len(d) != 0 {
		t.Fatalf("%d duplicate matches after mid-group durability loss", len(d))
	}
	got := col.keys()
	if missing, extra := subsetOf(got, want); len(missing) != 0 || len(extra) != 0 {
		t.Fatalf("degraded run delivered %d matches, want %d (missing %d, extra %d)",
			len(got), len(want), len(missing), len(extra))
	}
}
