package runtime

import (
	"testing"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// The full ladder round trip: a slow consumer drives the smoothed
// latency above θ and the queue past its water marks, the ladder
// escalates to admission control / rejection, and once the fault clears
// the level walks back to LevelNormal.
func TestDegradationLadderEscalatesAndRecovers(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 64, Seed: 11, InterArrival: 15 * event.Microsecond})
	slow := fault.NewSwitchable(fault.Delay(5*time.Millisecond, nil))
	r := New(m, Config{
		Shards:        1,
		QueueLen:      8,
		Bound:         time.Millisecond, // θ: 5ms service time blows through it
		BeforeProcess: slow.Hook,
	})
	defer r.Close()

	// Flood with a non-blocking producer until the ladder is visibly
	// rejecting at the door.
	deadline := time.Now().Add(10 * time.Second)
	escalated := false
	for !escalated {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never escalated: %+v", r.Snapshot())
		}
		for _, e := range s {
			r.TryOffer(e)
		}
		snap := r.Snapshot()
		escalated = snap.DegradationLevel >= LevelAdmission && snap.AdmissionRejected > 0
	}

	// Incident over: consumer is fast again, producer stops. The queue
	// drains, the stale EWMA decays out of the signal, and the ladder
	// must walk back to normal on its own.
	slow.Set(false)
	deadline = time.Now().Add(10 * time.Second)
	for r.DegradationLevel() != LevelNormal {
		if time.Now().After(deadline) {
			t.Fatalf("ladder stuck at level %d after fault cleared: %+v",
				r.DegradationLevel(), r.Snapshot())
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap := r.Snapshot()
	if snap.EventsProcessed == 0 {
		t.Error("nothing processed during the whole episode")
	}
	// New offers are admitted again at level 0.
	if !r.Offer(s[0]) {
		t.Error("Offer rejected after the ladder recovered to LevelNormal")
	}
}

// With Bound = 0 the ladder must stay disabled: no door rejections, no
// level changes, even under a slow consumer with full queues — the
// pre-ladder contract existing callers rely on.
func TestLadderDisabledWithoutBound(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 64, Seed: 13, InterArrival: 15 * event.Microsecond})
	r := New(m, Config{
		Shards:        1,
		QueueLen:      4,
		BeforeProcess: fault.Delay(500*time.Microsecond, nil),
	})
	defer r.Close()
	for i := 0; i < 20; i++ {
		for _, e := range s {
			r.TryOffer(e)
		}
	}
	snap := r.Snapshot()
	if snap.DegradationLevel != LevelNormal {
		t.Errorf("DegradationLevel = %d with Bound = 0, want %d", snap.DegradationLevel, LevelNormal)
	}
	if snap.AdmissionRejected != 0 {
		t.Errorf("AdmissionRejected = %d with Bound = 0, want 0", snap.AdmissionRejected)
	}
}
