package runtime

import (
	"strconv"
	"sync/atomic"
	"unicode/utf8"

	"cepshed/internal/event"
)

// The NDJSON fast path: a hand-rolled parser for the common event shape
// — ASCII strings free of escapes, integer or float numbers, one flat
// "attrs" object — that allocates only what outlives the call (the
// Event, its attrs map, and first-sighting copies of interned strings).
// Anything it cannot prove decodes identically under encoding/json
// (escapes, non-ASCII, case-folded or unknown keys, duplicate top-level
// keys, null/bool/nested values, out-of-range numbers) bails with
// ok=false and the caller re-parses with ParseEvent, so a bail is never
// wrong, only slower. Equivalence on accepted lines is enforced by
// TestParseEventFastDifferential and FuzzParseEventFast.

// internTable deduplicates the strings every event repeats — type names,
// attr names, and low-cardinality attr values — so steady-state decoding
// allocates no string copies. The table is capped: once full, or for
// long strings, intern degrades to a plain copy.
type internTable struct {
	m map[string]string
}

const (
	internMaxEntries = 4096
	internMaxLen     = 64
)

// Intern-table telemetry, aggregated across every LineDecoder in the
// process. The hit path (the steady state) touches none of these; the
// insert and reject paths are rare enough that an atomic add is noise.
// Rejects > 0 is the loud signal that a table filled and decoding
// degraded to one string allocation per unseen value.
var (
	internInserts   atomic.Uint64
	internRejects   atomic.Uint64
	internHighWater atomic.Uint64
)

// InternStats reports process-wide NDJSON intern-table telemetry.
type InternStats struct {
	// Inserts counts first-sighting strings admitted to any table.
	Inserts uint64 `json:"inserts"`
	// Rejects counts strings refused because their table was full —
	// each one decoded as a fresh allocation. Nonzero means at least one
	// decoder exceeded the intern capacity (high-cardinality values).
	Rejects uint64 `json:"rejects"`
	// HighWater is the largest occupancy any single table reached
	// (capacity internMaxEntries).
	HighWater uint64 `json:"high_water"`
}

// InternTelemetry returns the current counters; safe from any goroutine.
func InternTelemetry() InternStats {
	return InternStats{
		Inserts:   internInserts.Load(),
		Rejects:   internRejects.Load(),
		HighWater: internHighWater.Load(),
	}
}

func (t *internTable) intern(b []byte) string {
	if len(b) > internMaxLen {
		return string(b)
	}
	if s, ok := t.m[string(b)]; ok { // no-alloc map lookup
		return s
	}
	if t.m == nil || len(t.m) >= internMaxEntries {
		internRejects.Add(1)
		return string(b)
	}
	s := string(b)
	t.m[s] = s
	internInserts.Add(1)
	if n := uint64(len(t.m)); n > internHighWater.Load() {
		// Racy max is fine: a lost update undercounts by a few entries,
		// never over.
		internHighWater.Store(n)
	}
	return s
}

// jsonNumber validates s against the JSON number grammar and reports
// whether it is an integer (no fraction or exponent part).
func jsonNumber[T ~string | ~[]byte](s T) (isInt, ok bool) {
	i := 0
	if i < len(s) && s[i] == '-' {
		i++
	}
	switch {
	case i < len(s) && s[i] == '0':
		i++
	case i < len(s) && s[i] >= '1' && s[i] <= '9':
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	default:
		return false, false
	}
	isInt = true
	if i < len(s) && s[i] == '.' {
		i++
		isInt = false
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false, false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		isInt = false
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		if i >= len(s) || s[i] < '0' || s[i] > '9' {
			return false, false
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	return isInt, i == len(s)
}

// parseInt64 parses a grammar-validated JSON integer literal without
// going through strconv (whose string argument escapes and allocates).
// ok=false means the value exceeds int64 range.
func parseInt64(b []byte) (int64, bool) {
	neg := b[0] == '-'
	if neg {
		b = b[1:]
	}
	var n uint64
	for _, c := range b {
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true // n == 1<<63 yields MinInt64 exactly
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

type lineParser struct {
	b []byte
	i int
}

func (p *lineParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str scans a JSON string at the cursor and returns its raw contents.
// ok=false — bail to the stdlib parser — when the cursor is not at a
// string or the contents hold an escape, a control byte, or any
// non-ASCII byte (the fallback handles escapes and UTF-8 sanitizing).
func (p *lineParser) str() ([]byte, bool) {
	b, i := p.b, p.i
	if i >= len(b) || b[i] != '"' {
		return nil, false
	}
	i++
	start := i
	for i < len(b) {
		c := b[i]
		if c == '"' {
			p.i = i + 1
			return b[start:i], true
		}
		if c == '\\' || c < 0x20 || c >= utf8.RuneSelf {
			return nil, false
		}
		i++
	}
	return nil, false
}

// number scans the maximal run of number-literal bytes at the cursor and
// validates it against the JSON grammar; ok=false covers bool, null,
// nested values, and malformed numbers alike.
func (p *lineParser) number() (tok []byte, isInt, ok bool) {
	start := p.i
loop:
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E':
			p.i++
		default:
			break loop
		}
	}
	tok = p.b[start:p.i]
	isInt, ok = jsonNumber(tok)
	return tok, isInt, ok
}

func (p *lineParser) value(in *internTable) (event.Value, bool) {
	if p.i < len(p.b) && p.b[p.i] == '"' {
		s, ok := p.str()
		if !ok {
			return event.Value{}, false
		}
		return event.Str(in.intern(s)), true
	}
	tok, isInt, ok := p.number()
	if !ok {
		return event.Value{}, false
	}
	if isInt {
		if i, ok := parseInt64(tok); ok {
			return event.Int(i), true
		}
		// |value| exceeds int64: json.Number.Int64 fails there too and
		// parseValue falls back to float — do the same.
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return event.Value{}, false // e.g. 1e999 out of range: stdlib owns the error
	}
	return event.Float(f), true
}

// attrs parses a flat attrs object. Duplicate attr names overwrite —
// the same last-wins behavior as unmarshalling into a map.
func (p *lineParser) attrs(in *internTable) (map[string]event.Value, bool) {
	if !p.eat('{') { // includes "attrs":null → fallback
		return nil, false
	}
	m := make(map[string]event.Value, 4)
	p.ws()
	if p.eat('}') {
		return m, true
	}
	for {
		p.ws()
		k, kok := p.str()
		if !kok {
			return nil, false
		}
		p.ws()
		if !p.eat(':') {
			return nil, false
		}
		p.ws()
		v, vok := p.value(in)
		if !vok {
			return nil, false
		}
		m[in.intern(k)] = v
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat('}') {
			return m, true
		}
		return nil, false
	}
}

// parseEventFast decodes one NDJSON line on the fast path. See the
// package comment at the top of this file for the bail contract.
func parseEventFast(line []byte, in *internTable) (e *event.Event, hasTime bool, ok bool) {
	p := lineParser{b: line}
	p.ws()
	if !p.eat('{') {
		return nil, false, false
	}
	var (
		typ       string
		t         int64
		attrs     map[string]event.Value
		seenType  bool
		seenTime  bool
		seenAttrs bool
	)
	p.ws()
	if !p.eat('}') {
		for {
			p.ws()
			key, kok := p.str()
			if !kok {
				return nil, false, false
			}
			p.ws()
			if !p.eat(':') {
				return nil, false, false
			}
			p.ws()
			switch string(key) { // no-alloc comparison against constants
			case "type":
				// Duplicate top-level keys are last-wins in
				// encoding/json; rare enough to punt to the fallback
				// rather than mimic.
				if seenType {
					return nil, false, false
				}
				seenType = true
				v, vok := p.str()
				if !vok {
					return nil, false, false
				}
				typ = in.intern(v)
			case "time":
				if seenTime {
					return nil, false, false
				}
				seenTime = true
				tok, isInt, nok := p.number()
				if !nok || !isInt {
					return nil, false, false // null, float, or junk: stdlib decides
				}
				iv, iok := parseInt64(tok)
				if !iok {
					return nil, false, false
				}
				t = iv
			case "attrs":
				// Duplicate "attrs" objects MERGE under encoding/json
				// (unmarshal into an existing map); bail rather than
				// reproduce that.
				if seenAttrs {
					return nil, false, false
				}
				seenAttrs = true
				m, mok := p.attrs(in)
				if !mok {
					return nil, false, false
				}
				attrs = m
			default:
				// Unknown or case-folded key: DisallowUnknownFields may
				// reject it or case-insensitively accept it; either way
				// the stdlib path owns the decision.
				return nil, false, false
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				break
			}
			return nil, false, false
		}
	}
	// Trailing bytes after the object are deliberately ignored:
	// json.Decoder.Decode reads exactly one value and ParseEvent never
	// looks past it, so the fast path must not reject them either.
	if typ == "" {
		return nil, false, false // stdlib path reports the missing "type"
	}
	if attrs == nil {
		attrs = map[string]event.Value{}
	}
	return event.New(typ, event.Time(t), attrs), seenTime, true
}
