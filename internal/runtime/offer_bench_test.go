package runtime

import (
	"sync/atomic"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// offerSource hands out copies of a generated stream with virtual time
// and sequence numbers kept monotone across wraps. Reusing the raw
// stream would send time backward at every wrap, so window expiry would
// stop and the engine's partial-match state would grow without bound —
// the benchmark would measure an ever-slower engine, not the offer path.
type offerSource struct {
	s    event.Stream
	span event.Time
	next atomic.Uint64
}

func newOfferSource(n int) *offerSource {
	s := gen.DS1(gen.DS1Config{Events: n, Seed: 1, InterArrival: 100 * event.Microsecond})
	return &offerSource{s: s, span: s[len(s)-1].Time - s[0].Time + 100*event.Microsecond}
}

func (o *offerSource) event() *event.Event {
	i := o.next.Add(1) - 1
	e := *o.s[i%uint64(len(o.s))]
	e.Time += event.Time(i/uint64(len(o.s))) * o.span
	e.Seq = i
	return &e
}

// benchRuntime builds a 4-shard runtime with deep queues so the offer
// path, not consumer backpressure, dominates the measurement.
func benchRuntime(b *testing.B) (*Runtime, *offerSource) {
	b.Helper()
	m := nfa.MustCompile(query.Q1("8ms"))
	r := New(m, Config{Shards: 4, QueueLen: 8192})
	b.Cleanup(func() { r.Close() })
	return r, newOfferSource(8192)
}

// BenchmarkOffer guards the single-event offer path: batched handoff
// must not have added per-offer cost for callers that cannot batch
// (streaming TCP ingest). The event copy costs one allocation; the
// offer path itself adds none.
func BenchmarkOffer(b *testing.B) {
	r, src := benchRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Offer(src.event())
	}
}

// BenchmarkOfferParallel is the same guard under producer contention —
// the shape concurrent ingest connections create.
func BenchmarkOfferParallel(b *testing.B) {
	r, src := benchRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Offer(src.event())
		}
	})
}

// BenchmarkOfferBatch measures the batched handoff the HTTP ingest and
// replay paths use.
func BenchmarkOfferBatch(b *testing.B) {
	r, src := benchRuntime(b)
	const chunk = 256
	batch := make([]*event.Event, chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += chunk {
		n := chunk
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			batch[j] = src.event()
		}
		r.OfferBatch(batch[:n])
	}
}
