package runtime

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// zipfStream builds a Q1-shaped stream (types A/B/C/D with ID and V
// attributes) whose IDs follow a Zipf distribution, so hash partitioning
// lands most of the load on a few hot shards. That is the adversarial
// input for the worker pool: home workers of cold shards go idle and
// must steal the hot shards to keep up.
func zipfStream(events int, seed int64) event.Stream {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, 63)
	types := []string{"A", "B", "C", "D"}
	var b event.Builder
	t := event.Time(0)
	for i := 0; i < events; i++ {
		t += 15 * event.Microsecond
		e := event.New(types[rng.Intn(len(types))], t, map[string]event.Value{
			"ID": event.Int(int64(zipf.Uint64()) + 1),
			"V":  event.Int(int64(1 + rng.Intn(10))),
		})
		b.Add(e)
	}
	return b.Finish()
}

// With fewer workers than shards (2 workers, 8 shards) and a zipfian key
// distribution, shards are serviced by whichever worker claims them —
// the claim lock migrates shards between workers constantly. Two
// invariants must survive that: the conservation identity
// events_in == shed + processed + quarantined, and per-key processing
// order (each key lives on one shard, and a shard is only ever serviced
// by one claim holder at a time). Run under -race this also checks the
// claim handoff publishes engine state correctly between workers.
func TestWorkStealingZipfianConservationAndOrdering(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := zipfStream(8000, 11)

	var mu sync.Mutex
	lastSeq := map[int64]uint64{}
	violations := 0
	r := New(m, Config{
		Shards:  8,
		Workers: 2,
		BeforeProcess: func(_ int, e *event.Event) {
			id := e.Int("ID")
			mu.Lock()
			if prev, ok := lastSeq[id]; ok && e.Seq <= prev {
				violations++
			}
			lastSeq[id] = e.Seq
			mu.Unlock()
		},
	})
	snap := r.Snapshot()
	if snap.Workers != 2 {
		t.Fatalf("snapshot reports %d workers, want 2", snap.Workers)
	}

	const chunk = 128
	for i := 0; i < len(s); i += chunk {
		end := i + chunk
		if end > len(s) {
			end = len(s)
		}
		r.OfferBatch(s[i:end])
	}
	r.Close()
	snap = r.Snapshot()

	if violations != 0 {
		t.Fatalf("%d per-key ordering violations under work stealing", violations)
	}
	if got := snap.EventsShed + snap.EventsProcessed + snap.ShardQuarantined; got != snap.EventsIn {
		t.Fatalf("conservation violated: events_in=%d != shed+processed+quarantined=%d", snap.EventsIn, got)
	}
	if snap.EventsIn != uint64(len(s)) {
		t.Fatalf("events_in=%d, offered %d", snap.EventsIn, len(s))
	}
	if snap.EventsProcessed != uint64(len(s)) {
		t.Fatalf("processed=%d, want all %d (no strategy, no bound: nothing may shed)", snap.EventsProcessed, len(s))
	}
}

// TestChaosStealDuringSnapshot drives the worker pool and the async
// snapshot protocol into each other with fault injectors: a Delay on
// shard 0 pins its claim holder so the other worker must steal the
// remaining shards — including ones with a background snapshot in
// flight (capture handoff, settle on a DIFFERENT worker than the one
// that started the snapshot) — and FailStageOnce crashes one background
// snapshot write mid-protocol. The failed write must be contained (no
// shard restart — the write ran off-thread), later snapshots must
// succeed, matches must stay exactly the sequential reference set, and
// steals must actually have happened for the test to mean anything.
func TestChaosStealDuringSnapshot(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 2500, Seed: 23, InterArrival: 15 * event.Microsecond})
	want := sortedKeys(engine.Sequential(m, engine.DefaultCosts(), s, false))

	r := New(m, Config{
		Shards:         4,
		Workers:        2,
		CollectMatches: true,
		Durability: &checkpoint.Config{
			Dir:         t.TempDir(),
			EveryEvents: 150,
			FlushEvery:  1,
			OnStage:     fault.FailStageOnce("tmp-written", 2),
		},
		BeforeProcess: fault.Delay(100*time.Microsecond, func(shard int, _ *event.Event) bool {
			return shard == 0
		}),
	})
	r.WaitRecovered()
	for _, e := range s {
		r.Offer(e)
	}
	r.Close()
	snap := r.Snapshot()

	if snap.Steals == 0 {
		t.Fatal("no shard was stolen; the fault layout failed to force work stealing")
	}
	if snap.Restarts != 0 {
		t.Fatalf("restarts=%d; a background snapshot-write crash must not restart the shard", snap.Restarts)
	}
	if snap.Snapshots < 2 {
		t.Fatalf("snapshots=%d; snapshots after the injected write crash must succeed", snap.Snapshots)
	}
	if got := snap.EventsShed + snap.EventsProcessed + snap.ShardQuarantined; got != snap.EventsIn {
		t.Fatalf("conservation violated: events_in=%d != shed+processed+quarantined=%d", snap.EventsIn, got)
	}
	got := r.MatchKeys()
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("match set diverged: got %d matches, reference %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("reference run found no matches; test is vacuous")
	}
}
