package runtime

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/shed"
)

// This file is the shard supervisor: the layer that turns "a panic in
// one shard kills the process" into controlled degradation. Each shard
// worker runs its processing loop under recover(); on a panic the
// supervisor quarantines the offending event to the dead-letter queue,
// rebuilds the shard's engine and strategy (losing only that shard's
// in-flight partial matches — the bounded, accounted cost of the fault),
// sleeps a capped, jittered exponential backoff, and resumes from the
// same queue. A circuit breaker marks the shard permanently failed after
// MaxRestarts restarts inside Window; from then on the shard's key range
// routes to the next healthy shard and the dead worker lingers only as a
// forwarder so in-flight sends never strand.
//
// State machine per shard:
//
//	running ──panic──► quarantine + restart++ ──breaker ok──► backoff ──► running
//	   │                                   └──breaker trips──► failed (forwarding)
//	   └──channel closed──► drained (clean exit)

// RestartPolicy tunes the supervisor's backoff and circuit breaker.
// The zero value means "use the defaults".
type RestartPolicy struct {
	// BackoffBase is the delay before the first restart; each further
	// restart inside Window doubles it (default 10ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 2s).
	BackoffMax time.Duration
	// Jitter is the ± fraction applied to each backoff so restarting
	// shards don't thunder in lockstep (default 0.2).
	Jitter float64
	// MaxRestarts is the circuit breaker: more than this many restarts
	// inside Window marks the shard permanently failed (default 5).
	MaxRestarts int
	// Window is the sliding window the breaker counts restarts in
	// (default 1 minute).
	Window time.Duration
}

func (p RestartPolicy) withDefaults() RestartPolicy {
	if p.BackoffBase <= 0 {
		p.BackoffBase = 10 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.Jitter <= 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 5
	}
	if p.Window <= 0 {
		p.Window = time.Minute
	}
	return p
}

// backoff returns the sleep before restart number n (1-based) in the
// current window: base·2^(n−1), capped, with ±Jitter applied.
func (p RestartPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.BackoffBase
	for i := 1; i < n && d < p.BackoffMax; i++ {
		d *= 2
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	j := 1 + p.Jitter*(2*rng.Float64()-1)
	return time.Duration(float64(d) * j)
}

// Backoff is the exported form of backoff (defaults applied): the delay
// before retry number n (1-based) of a repeatedly failing operation.
// The cluster failure detector reuses it for peer probes so node-level
// retries follow the same capped, jittered curve as shard restarts.
func (p RestartPolicy) Backoff(n int, rng *rand.Rand) time.Duration {
	return p.withDefaults().backoff(n, rng)
}

// DeadLetter is one quarantined input: an event whose processing
// panicked, an event that could not be failed over, or (Shard = -1) a
// rejected raw input such as an undecodable NDJSON line.
type DeadLetter struct {
	Shard   int    `json:"shard"` // -1 for pre-runtime rejections
	Seq     uint64 `json:"seq"`
	Type    string `json:"type,omitempty"`
	Reason  string `json:"reason"`
	Payload string `json:"payload"` // truncated rendering of the input
}

// deadLetters is a bounded ring of the most recent dead letters plus a
// monotone total. Quarantining must never block or grow without bound —
// the queue exists for postmortems, not durability.
type deadLetters struct {
	mu    sync.Mutex
	buf   []DeadLetter
	next  int
	full  bool
	total uint64
}

func newDeadLetters(capacity int) *deadLetters {
	if capacity <= 0 {
		capacity = 256
	}
	return &deadLetters{buf: make([]DeadLetter, capacity)}
}

func (q *deadLetters) add(dl DeadLetter) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total++
	q.buf[q.next] = dl
	q.next++
	if q.next == len(q.buf) {
		q.next, q.full = 0, true
	}
}

// letters returns a copy, oldest first.
func (q *deadLetters) letters() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []DeadLetter
	if q.full {
		out = append(out, q.buf[q.next:]...)
	}
	out = append(out, q.buf[:q.next]...)
	return out
}

func (q *deadLetters) count() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// seed restores the queue from a checkpointed state at boot: the monotone
// total resumes and the ring refills with the retained letters (clamped
// to capacity, newest kept) WITHOUT re-counting them.
func (q *deadLetters) seed(st *checkpoint.DeadLetterState) {
	if st == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total = st.Total
	q.next, q.full = 0, false
	letters := st.Letters
	if len(letters) > len(q.buf) {
		letters = letters[len(letters)-len(q.buf):]
	}
	for _, l := range letters {
		q.buf[q.next] = DeadLetter{Shard: l.Shard, Seq: l.Seq, Type: l.Type, Reason: l.Reason, Payload: l.Payload}
		q.next++
		if q.next == len(q.buf) {
			q.next, q.full = 0, true
		}
	}
}

// state freezes the queue for checkpointing: total plus the retained
// letters, oldest first, under one lock acquisition.
func (q *deadLetters) state() *checkpoint.DeadLetterState {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := &checkpoint.DeadLetterState{Total: q.total}
	emit := func(dl DeadLetter) {
		st.Letters = append(st.Letters, checkpoint.DeadLetterRecord{
			Shard: dl.Shard, Seq: dl.Seq, Type: dl.Type, Reason: dl.Reason, Payload: dl.Payload,
		})
	}
	if q.full {
		for _, dl := range q.buf[q.next:] {
			emit(dl)
		}
	}
	for _, dl := range q.buf[:q.next] {
		emit(dl)
	}
	return st
}

// quantumSupervised is the supervised quantum: one bounded slice of the
// processing loop through recover(). A clean pass that observes the
// channel closed finishes the shard; a panic runs the full quarantine /
// restart / breaker protocol and parks the shard behind a notBefore
// backoff deadline instead of sleeping a goroutine.
func (s *shard) quantumSupervised(r *Runtime) bool {
	pv, poison, worked, closed := s.quantumOnce()
	if pv == nil {
		if closed {
			s.finish()
			s.markDone(r)
		}
		return worked
	}
	// Settle the open flush group FIRST: recovery below reuses the
	// store, and ShardStore.Load flushes the live writer — which would
	// make the held matches' M records durable while the deliveries
	// sit in pend, exactly the state replay suppression would turn
	// into silently lost matches. Flush-and-release now, before
	// anything else can flush behind our back.
	s.flushPendOnPanic()
	// Then drain the async snapshot protocol: rebuild below discards the
	// engine the in-flight capture pins, and the next recovery reads the
	// very snapshot files the background write is producing.
	s.settleSnapshot(true)
	// A panic during BOOT replay must not bump the quarantined counter
	// here: the retry re-runs recovery from the snapshot counters and
	// its skip-path counts the poisoned seq exactly once. Counting it
	// now too would double it and break the conservation law.
	s.quarantine(r, poison, fmt.Sprintf("panic: %v", pv), !s.bootPending)
	if s.ckpt != nil && poison.e != nil {
		// The Q record makes the quarantine durable: replay after the
		// NEXT crash (or restart) skips this seq, so a deterministic
		// poison event cannot re-crash recovery forever.
		if err := s.ckpt.AppendSkip(poison.e.Seq); err != nil {
			s.walFailed("skip append", err)
		}
	}
	s.restarts.Add(1)
	pol := s.cfg.Restart
	now := time.Now()
	s.recent = append(s.recent, now)
	for len(s.recent) > 0 && now.Sub(s.recent[0]) > pol.Window {
		s.recent = s.recent[1:]
	}
	if len(s.recent) > pol.MaxRestarts || !s.rebuild() {
		s.failed.Store(true)
		s.signalRecovered()
		r.logf("runtime: shard %d circuit breaker tripped after %d restarts in %s; rerouting key range",
			s.id, len(s.recent), pol.Window)
		s.forwardQuantum(r)
		return true
	}
	if s.ckpt != nil {
		// The rebuilt engine is empty; the next quantum restores the last
		// snapshot and replays the WAL tail (minus the quarantined seq),
		// so the panic costs at most the in-flight event — not every
		// partial match the shard had open. bootPending (still true if
		// THIS panic interrupted boot replay) tells recoverReplay whether
		// to resume boot counter composition or treat the retry as a
		// post-panic in-process rebuild.
		s.needRecover = true
		s.needRecoverFlag.Store(true)
	}
	d := pol.backoff(len(s.recent), s.rng)
	r.logf("runtime: shard %d recovered from panic on seq=%d (%v); restart %d in %s",
		s.id, poison.seq(), pv, len(s.recent), d)
	s.notBefore.Store(now.Add(d).UnixNano())
	return true
}

// quantumOnce runs one bounded processing slice under recover():
// pending recovery, salvaged remainder, then up to quantumBudget queued
// events. closed reports the input channel closed with the queue
// drained. On a panic pv holds the panic value and poison the item
// being processed; the batch's unprocessed tail is salvaged into s.rem
// — those events were popped from the channel but never reached the
// engine or the WAL, so the next incarnation consumes them as live
// input right after recovery.
func (s *shard) quantumOnce() (pv any, poison item, worked, closed bool) {
	defer func() {
		if p := recover(); p != nil {
			pv, poison, worked = p, s.curItem, true
			if tail := s.panicRemainder(); len(tail) > 0 {
				s.rem = append(tail, s.rem...)
			}
			s.curBatch, s.curIdx = nil, 0
			if s.cfg.Logf != nil {
				s.cfg.Logf("runtime: shard %d panic: %v\n%s", s.id, p, debug.Stack())
			}
		}
	}()
	s.curItem, s.curBatch, s.curIdx = item{}, nil, 0
	if s.needRecover {
		// Recovery runs under the same recover(): a panic while replaying
		// a WAL event quarantines that event (curItem tracks it) and the
		// next quantum retries recovery with the poison seq skipped.
		s.needRecover = false
		s.needRecoverFlag.Store(false)
		s.recoverReplay(&s.curItem)
		worked = true
	}
	s.booted.Store(true)
	s.signalRecovered()
	s.settleSnapshot(false)
	w := s.cfg.SmoothWeight
	if len(s.rem) > 0 {
		s.consumeRemainder(w)
		worked = true
	}
	dw, dc := s.drainQuantum(w)
	return nil, item{}, worked || dw, dc
}

// panicRemainder copies the unprocessed tail of the batch a panic
// interrupted (everything after the poison item).
func (s *shard) panicRemainder() []item {
	if s.curBatch == nil || s.curIdx+1 >= len(s.curBatch) {
		return nil
	}
	tail := make([]item, len(s.curBatch)-s.curIdx-1)
	copy(tail, s.curBatch[s.curIdx+1:])
	return tail
}

// consumeRemainder feeds events salvaged from a panic-interrupted batch
// back through processing. Each item is popped before it runs, so a
// second poison among them quarantines cleanly and leaves the rest in
// s.rem for the incarnation after that.
func (s *shard) consumeRemainder(w float64) {
	if len(s.rem) == 0 {
		return
	}
	t0 := time.Now()
	for len(s.rem) > 0 {
		it := s.rem[0]
		s.rem = s.rem[1:]
		s.curItem = it
		s.depth.Add(-1)
		s.process(it, w)
	}
	s.rem = nil
	s.endBatch()
	s.busyNs.Add(time.Since(t0).Nanoseconds())
}

// flushPendOnPanic settles the flush group a panic left open: flush the
// store once and deliver the held matches. Runs before quarantine and
// recovery so no other code path (AppendSkip's flush, Load's writer
// flush) can make the M records durable while the deliveries are still
// held back.
func (s *shard) flushPendOnPanic() {
	if s.ckpt == nil || len(s.pend) == 0 {
		return
	}
	if err := s.ckpt.Flush(); err != nil {
		s.walFailed("flush", err)
		return
	}
	s.releasePend()
}

func (it item) seq() uint64 {
	if it.e == nil {
		return 0
	}
	return it.e.Seq
}

// quarantine records the poison event in the dead-letter queue. The
// event is NOT reprocessed after the restart — quarantining it is what
// breaks the crash loop a deterministic poison pill would otherwise
// cause. count=false suppresses the quarantined counter for boot-replay
// panics, whose retry counts the seq through the replay skip-path.
func (s *shard) quarantine(r *Runtime, it item, reason string, count bool) {
	if it.e == nil {
		return
	}
	if count {
		s.quarantined.Add(1)
	}
	r.dlq.add(DeadLetter{
		Shard:   s.id,
		Seq:     it.e.Seq,
		Type:    it.e.Type,
		Reason:  reason,
		Payload: truncatePayload(EncodeEvent(it.e), maxDeadLetterPayload),
	})
	// Durable immediately (not just at the next snapshot): if the
	// process dies during the restart backoff, the postmortem record of
	// WHY it was crashing must already be on disk. Runs on this shard's
	// worker goroutine, so s.id cannot collide with a snapshot-time save.
	r.persistDeadLetters(s.id)
}

// rebuild replaces the engine and strategy with fresh instances. The
// old engine's partial matches are gone — that loss is the quarantine
// cost of the fault and is visible through the createdPMs/droppedPMs
// offsets staying monotone. Returns false when the strategy factory
// itself panics, which the caller treats as an immediate breaker trip.
func (s *shard) rebuild() (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			ok = false
		}
	}()
	st := s.en.Stats()
	s.pmCreatedBase += st.CreatedPMs
	s.pmDroppedBase += st.DroppedPMs
	en := engine.New(s.m, s.cfg.Costs)
	en.DeferredNegation = s.cfg.DeferredNegation
	var strat shed.Strategy = shed.None{}
	if s.cfg.NewStrategy != nil {
		if ns := s.cfg.NewStrategy(s.id); ns != nil {
			strat = ns
		}
	}
	strat.Attach(en)
	s.en, s.strat = en, strat
	s.lastType, s.lastRes = "", nil // TypeRes is owned by the old engine
	s.stratName.Store(strat.Name())
	if pr, ok := strat.(shed.PlanReporter); ok {
		s.planRep.Store(pr)
	}
	s.livePMs.Store(0)
	return true
}

// forwardQuantum services a permanently failed shard: instead of
// processing, items in its queue — including any batch tail a panic
// salvaged — are re-routed to a healthy shard, so producers blocked on
// a send never deadlock and Close still drains. Sends are NON-blocking:
// with fewer workers than shards, the same worker may own both this
// queue and the failover target, and a blocking send would deadlock it
// against itself. Items that don't fit stay in s.rem with their depth
// accounting intact; the shard stays "needs service" and a later pass
// retries after the target drains.
func (s *shard) forwardQuantum(r *Runtime) bool {
	worked := false
	for len(s.rem) > 0 {
		if !r.tryFailover(s, s.rem[0]) {
			return worked
		}
		s.rem = s.rem[1:]
		s.depth.Add(-1)
		worked = true
	}
	for consumed := 0; consumed < quantumBudget; consumed++ {
		select {
		case b, ok := <-s.ch:
			if !ok {
				s.chClosed = true
				s.markDone(r)
				return worked
			}
			worked = true
			if b.ctl != nil {
				// The engine behind this shard is dead (and possibly
				// inconsistent mid-panic), so control ops answer with an
				// error instead of touching it.
				s.depth.Add(-1)
				select {
				case b.ctl.reply <- ctlReply{err: fmt.Errorf("shard %d: failed; cannot service control op", s.id)}:
				default:
				}
				continue
			}
			if b.items == nil {
				if !r.tryFailover(s, b.one) {
					s.rem = append(s.rem, b.one)
					return true
				}
				s.depth.Add(-1)
				continue
			}
			for i, it := range b.items {
				if !r.tryFailover(s, it) {
					s.rem = append(s.rem, b.items[i:]...)
					putItems(b.items)
					return true
				}
				s.depth.Add(-1)
			}
			putItems(b.items)
		default:
			return worked
		}
	}
	return worked
}

// tryFailover re-routes one item from a failed shard to the next
// healthy one (non-blocking), or quarantines it when no healthy shard
// remains. Returns false when the target's queue is full — the caller
// keeps the item and retries on a later pass. Mirrors Offer's locking
// so the send cannot race Close closing the channels: see the
// Runtime.mu comment.
func (r *Runtime) tryFailover(from *shard, it item) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if t := r.fallbackFor(from.id); t != nil && !r.closed.Load() {
		t.depth.Add(1)
		select {
		case t.ch <- batch{one: it}:
			r.wakeOne()
			return true
		default:
			t.depth.Add(-1)
			return false
		}
	}
	// The item left the queue without reaching process(), so count its
	// arrival here: the conservation law `events_in == shed + processed +
	// quarantined` must hold even for events quarantined at the door of a
	// closing or fully failed runtime.
	if it.e != nil {
		from.eventsIn.Add(1)
	}
	from.quarantine(r, it, "no healthy shard for failover", true)
	return true
}

// fallbackFor returns the next healthy shard after id, or nil when every
// shard has failed.
func (r *Runtime) fallbackFor(id int) *shard {
	n := len(r.shards)
	for off := 1; off < n; off++ {
		if sh := r.shards[(id+off)%n]; !sh.failed.Load() {
			return sh
		}
	}
	return nil
}
