package runtime

import (
	"testing"
	"time"

	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

func trainTestModel(t *testing.T, m *nfa.Machine) *core.Model {
	t.Helper()
	training := gen.DS1(gen.DS1Config{Events: 3000, Seed: 11, InterArrival: 40 * event.Microsecond})
	model, err := core.Train(m, training, core.TrainConfig{Slices: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func checkConservation(t *testing.T, snap Snapshot) {
	t.Helper()
	var inTot, shedTot, procTot, quarTot uint64
	for _, ss := range snap.Shards {
		if ss.EventsIn != ss.EventsShed+ss.EventsProcessed+ss.Quarantined {
			t.Errorf("shard %d conservation broken: in=%d shed=%d processed=%d quarantined=%d",
				ss.Shard, ss.EventsIn, ss.EventsShed, ss.EventsProcessed, ss.Quarantined)
		}
		inTot += ss.EventsIn
		shedTot += ss.EventsShed
		procTot += ss.EventsProcessed
		quarTot += ss.Quarantined
	}
	if inTot != shedTot+procTot+quarTot {
		t.Errorf("aggregate conservation broken: in=%d shed=%d processed=%d quarantined=%d",
			inTot, shedTot, procTot, quarTot)
	}
}

// TestFixedRatioConservation runs both fixed-ratio variants through the
// concurrent runtime (run under -race in CI): the dense bucketed
// implementation must keep the arrival accounting conserved —
// events_in == shed + processed + quarantined — while actually shedding
// (events in input mode, partial matches in state mode).
func TestFixedRatioConservation(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	model := trainTestModel(t, m)
	for _, tc := range []struct {
		name  string
		input bool
	}{
		{name: "HyI-input", input: true},
		{name: "HyS-state", input: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := New(m, Config{
				Shards:   2,
				QueueLen: 256,
				NewStrategy: func(shard int) shed.Strategy {
					return core.NewFixedRatioHybrid(model, 0.4, tc.input, int64(shard)+1)
				},
			})
			s := gen.DS1(gen.DS1Config{Events: 8000, Seed: 5, InterArrival: 40 * event.Microsecond})
			for _, e := range s {
				for !r.Offer(e) {
					time.Sleep(50 * time.Microsecond)
				}
			}
			r.Close()
			snap := r.Snapshot()
			checkConservation(t, snap)
			if got := snap.EventsIn; got != uint64(len(s)) {
				t.Fatalf("EventsIn = %d, want %d", got, len(s))
			}
			if tc.input && snap.EventsShed == 0 {
				t.Error("input-mode fixed ratio shed no events")
			}
			if !tc.input && snap.DroppedPMs == 0 {
				t.Error("state-mode fixed ratio dropped no partial matches")
			}
			// The class-bucket occupancy published at batch boundaries must
			// agree with the engine's live count after the final batch.
			for _, ss := range snap.Shards {
				if ss.ClassLivePMs != ss.LivePMs {
					t.Errorf("shard %d: class index live %d != live PMs %d", ss.Shard, ss.ClassLivePMs, ss.LivePMs)
				}
				if ss.LivePMs > 0 && ss.ClassBuckets == 0 {
					t.Errorf("shard %d: live PMs but no class buckets", ss.Shard)
				}
			}
		})
	}
}

// TestAsyncPlannerThroughRuntime exercises the full wiring: a Hybrid
// strategy with AsyncPlan under a violated bound must report planner
// activity and sampled admission time through Runtime.Snapshot.
func TestAsyncPlannerThroughRuntime(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	model := trainTestModel(t, m)
	r := New(m, Config{
		Shards:   1,
		QueueLen: 1024,
		NewStrategy: func(int) shed.Strategy {
			// A nanosecond bound is always violated by real queueing
			// latency, so shedding triggers as soon as the delay allows.
			return core.NewHybrid(model, core.Config{
				Bound:       event.Time(1),
				DelayEvents: 200,
				AsyncPlan:   true,
			})
		},
	})
	s := gen.DS1(gen.DS1Config{Events: 12000, Seed: 6, InterArrival: 40 * event.Microsecond})
	for _, e := range s {
		for !r.Offer(e) {
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.Snapshot().PlansApplied+r.Snapshot().PlansStale == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Close()
	snap := r.Snapshot()
	checkConservation(t, snap)
	if snap.PlansBuilt == 0 {
		t.Error("async planner built no plans under a violated bound")
	}
	if snap.PlansApplied+snap.PlansStale != snap.PlansBuilt {
		// Close drains every queued event, so the last built plan is
		// either applied or fenced by then — except a plan finishing after
		// the final Control, which stays pending.
		if snap.PlansBuilt-snap.PlansApplied-snap.PlansStale > 1 {
			t.Errorf("plan accounting off: built=%d applied=%d stale=%d",
				snap.PlansBuilt, snap.PlansApplied, snap.PlansStale)
		}
	}
	if snap.PlansApplied > 0 && snap.PlanBuildNsMax <= 0 {
		t.Error("plans applied but no build time recorded")
	}
	if snap.AdmissionNs <= 0 {
		t.Errorf("AdmissionNs = %d, want > 0 (sampled every 64th event over %d events)", snap.AdmissionNs, len(s))
	}
	if snap.ShedStallMaxNs <= 0 {
		t.Error("no worker shed-stall recorded despite planner activity")
	}
}
