// Package gcluster simulates a cluster-scheduler task-lifecycle event
// stream in the spirit of the Google cluster-usage traces the paper's
// second case study uses (§VI-J). Tasks are submitted, scheduled onto
// machines, and then either finish, get evicted and rescheduled, or fail.
// Configurable "eviction storms" raise the eviction probability for a
// stretch of the stream, which drives the frequency of the
// submit/schedule/evict/.../fail chains that Listing 3 detects and piles
// up partial matches. The real traces are not available offline;
// DESIGN.md §4 documents the substitution.
package gcluster

import (
	"math/rand"

	"cepshed/internal/event"
)

// Storm is a period of elevated eviction probability.
type Storm struct {
	// StartFrac/EndFrac delimit the storm as fractions of the task count.
	StartFrac, EndFrac float64
	// EvictProb replaces the base eviction probability during the storm.
	EvictProb float64
}

// Config parameterizes the simulator.
type Config struct {
	// Tasks is the number of task lifecycles to generate.
	Tasks int
	// Machines is the number of machines. Default 20.
	Machines int
	// MeanGap is the mean gap between consecutive task submissions.
	// Default 500ms.
	MeanGap event.Time
	// StepGap is the mean gap between lifecycle steps of one task.
	// Default 2s.
	StepGap event.Time
	// EvictProb is the base probability that a scheduled task is evicted
	// (instead of finishing). Default 0.15.
	EvictProb float64
	// FailProb is the probability that a task's final scheduling attempt
	// fails instead of finishing. Default 0.3.
	FailProb float64
	// MaxReschedules bounds how often a task can be rescheduled after
	// evictions. Default 3.
	MaxReschedules int
	// Storms are the eviction storms. Default: one storm over the middle
	// fifth with eviction probability 0.7.
	Storms []Storm
	// Seed drives the generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Tasks <= 0 {
		c.Tasks = 4000
	}
	if c.Machines <= 0 {
		c.Machines = 20
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 500 * event.Millisecond
	}
	if c.StepGap <= 0 {
		c.StepGap = 2 * event.Second
	}
	if c.EvictProb <= 0 {
		c.EvictProb = 0.15
	}
	if c.FailProb <= 0 {
		c.FailProb = 0.3
	}
	if c.MaxReschedules <= 0 {
		c.MaxReschedules = 3
	}
	if c.Storms == nil {
		c.Storms = []Storm{{StartFrac: 0.4, EndFrac: 0.6, EvictProb: 0.7}}
	}
	return c
}

// Generate produces the lifecycle stream. Event types are Submit,
// Schedule, Evict, Fail, and Finish, each with attributes task and
// machine (Submit carries machine 0).
func Generate(cfg Config) event.Stream {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var b event.Builder
	submitAt := event.Time(0)
	for task := 0; task < cfg.Tasks; task++ {
		frac := float64(task) / float64(cfg.Tasks)
		evictProb := cfg.EvictProb
		for _, st := range cfg.Storms {
			if frac >= st.StartFrac && frac < st.EndFrac {
				evictProb = st.EvictProb
			}
		}
		submitAt += event.Time(float64(cfg.MeanGap) * (0.5 + rng.Float64()))
		t := submitAt
		id := int64(task + 1)
		emit := func(typ string, machine int64) {
			b.Add(event.New(typ, t, map[string]event.Value{
				"task":    event.Int(id),
				"machine": event.Int(machine),
			}))
		}
		step := func() {
			t += event.Time(float64(cfg.StepGap) * (0.5 + rng.Float64()))
		}

		emit("Submit", 0)
		prevMachine := int64(0)
		for attempt := 0; ; attempt++ {
			step()
			machine := int64(1 + rng.Intn(cfg.Machines))
			if machine == prevMachine {
				machine = 1 + machine%int64(cfg.Machines)
			}
			emit("Schedule", machine)
			prevMachine = machine
			step()
			if attempt < cfg.MaxReschedules && rng.Float64() < evictProb {
				emit("Evict", machine)
				continue
			}
			if rng.Float64() < cfg.FailProb {
				emit("Fail", machine)
			} else {
				emit("Finish", machine)
			}
			break
		}
	}
	return b.Finish()
}
