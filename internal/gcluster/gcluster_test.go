package gcluster

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func TestGenerateLifecycles(t *testing.T) {
	s := Generate(Config{Tasks: 800, Seed: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-task lifecycles and validate transitions.
	last := map[int64]string{}
	scheduledOn := map[int64]int64{}
	for _, e := range s {
		task := e.Int("task")
		prev := last[task]
		switch e.Type {
		case "Submit":
			if prev != "" {
				t.Fatalf("task %d submitted twice", task)
			}
		case "Schedule":
			if prev != "Submit" && prev != "Evict" {
				t.Fatalf("task %d scheduled after %q", task, prev)
			}
			scheduledOn[task] = e.Int("machine")
		case "Evict", "Fail", "Finish":
			if prev != "Schedule" {
				t.Fatalf("task %d %s after %q", task, e.Type, prev)
			}
			if e.Int("machine") != scheduledOn[task] {
				t.Fatalf("task %d %s on machine %d but scheduled on %d",
					task, e.Type, e.Int("machine"), scheduledOn[task])
			}
		default:
			t.Fatalf("unknown type %s", e.Type)
		}
		last[task] = e.Type
	}
	// Every task ends terminally.
	for task, state := range last {
		if state != "Fail" && state != "Finish" {
			t.Errorf("task %d ends in %q", task, state)
		}
	}
}

func TestRescheduleChangesMachine(t *testing.T) {
	s := Generate(Config{Tasks: 600, Seed: 2, EvictProb: 0.6})
	lastSchedule := map[int64]int64{}
	evicted := map[int64]bool{}
	for _, e := range s {
		task := e.Int("task")
		switch e.Type {
		case "Schedule":
			if evicted[task] && e.Int("machine") == lastSchedule[task] {
				t.Fatalf("task %d rescheduled onto the same machine", task)
			}
			lastSchedule[task] = e.Int("machine")
			evicted[task] = false
		case "Evict":
			evicted[task] = true
		}
	}
}

func TestStormRaisesEvictions(t *testing.T) {
	s := Generate(Config{Tasks: 3000, Seed: 3})
	evBefore, evDuring, tot := 0, 0, len(s)
	for i, e := range s {
		frac := float64(i) / float64(tot)
		if e.Type != "Evict" {
			continue
		}
		if frac < 0.35 {
			evBefore++
		} else if frac >= 0.4 && frac < 0.65 {
			evDuring++
		}
	}
	if evDuring < 2*evBefore {
		t.Errorf("storm evictions %d not >> base %d", evDuring, evBefore)
	}
}

func TestClusterQueryFindsMatches(t *testing.T) {
	s := Generate(Config{Tasks: 2500, Seed: 4})
	m := nfa.MustCompile(query.ClusterTasks("1h"))
	en := engine.New(m, engine.DefaultCosts())
	matches := 0
	for _, e := range s {
		matches += len(en.Process(e).Matches)
	}
	if matches == 0 {
		t.Fatal("Listing 3 query found no matches on the simulated trace")
	}
	t.Logf("cluster matches: %d", matches)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Tasks: 300, Seed: 7})
	b := Generate(Config{Tasks: 300, Seed: 7})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Time != b[i].Time {
			t.Fatal("streams diverge")
		}
	}
}
