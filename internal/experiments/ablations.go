package experiments

import (
	"fmt"

	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/knapsack"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// Ablations beyond the paper: each isolates one design choice DESIGN.md
// §3 calls out and quantifies its effect under the Fig 4 workload.

func init() {
	register(Experiment{
		ID:    "abl-adapt",
		Title: "Ablation: online adaptation on/off under distribution drift",
		Run:   AblationAdaptivity,
	})
	register(Experiment{
		ID:    "abl-solver",
		Title: "Ablation: exact-DP vs greedy knapsack for shedding-set selection",
		Run:   AblationSolver,
	})
	register(Experiment{
		ID:    "abl-delay",
		Title: "Ablation: re-trigger delay j between state sheds",
		Run:   AblationDelay,
	})
}

// AblationAdaptivity reruns the Fig 12 drift scenario with adaptation
// disabled: without folding in new counts, the outdated cost model keeps
// shedding the now-valuable partial matches and recall never recovers
// after the change point — adaptation is what makes Fig 12's recovery
// happen.
func AblationAdaptivity(o Options) []*Table {
	events := o.scale(24000)
	shiftAt := events / 2
	bucket := events / 12

	m := nfa.MustCompile(query.MustParse(`
		PATTERN SEQ(A a, B b, C c)
		WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V
		WITHIN 2000 EVENTS`))
	train := gen.DS1(gen.DS1Config{
		Events: o.scale(12000), Seed: o.Seed + 71, InterArrival: 15 * event.Microsecond,
		CVMin: 2, CVMax: 10,
	})
	work := gen.DS1(gen.DS1Config{
		Events: events, Seed: o.Seed + 72, InterArrival: 15 * event.Microsecond,
		CVMin: 2, CVMax: 10,
		ShiftAt: shiftAt, ShiftMin: 12, ShiftMax: 20,
	})
	s := newSetup(m, train, work, metrics.BoundMean)
	model := core.MustTrain(m, train, core.TrainConfig{Slices: 4, Seed: 1})
	bound := s.bound(0.4)

	withAdapt := s.run(core.NewHybrid(model, core.Config{Bound: bound, Adapt: true}))
	// Retrain a fresh model so the adaptive run's estimate updates do not
	// leak into the frozen run.
	frozenModel := core.MustTrain(m, train, core.TrainConfig{Slices: 4, Seed: 1})
	frozen := s.run(core.NewHybrid(frozenModel, core.Config{Bound: bound, Adapt: false}))

	adaptSeries := bucketRecall(s.truthRun().Matches, withAdapt.Matches, events, bucket)
	frozenSeries := bucketRecall(s.truthRun().Matches, frozen.Matches, events, bucket)

	t := &Table{
		ID:     "abl-adapt",
		Title:  "recall over the drifting stream, adaptation on vs off",
		Header: []string{"event_offset", "adaptive", "frozen"},
	}
	for b := 0; b < len(adaptSeries); b++ {
		row := []string{fmt.Sprintf("%d", b*bucket)}
		for _, v := range []float64{adaptSeries[b], frozenSeries[b]} {
			if v < 0 {
				row = append(row, "-")
			} else {
				row = append(row, pct(v))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}

// AblationSolver compares the exact dynamic program against the greedy
// ratio heuristic (§V-C) for shedding-set selection, on recall and
// throughput across bounds. The paper argues the greedy approximation
// suffices for large class counts; this quantifies the quality gap.
func AblationSolver(o Options) []*Table {
	s := ds1Setup(o, "8ms", metrics.BoundMean)
	t := &Table{
		ID:     "abl-solver",
		Title:  "hybrid with exact-DP vs greedy shedding-set selection",
		Header: []string{"bound", "recall_exact", "recall_greedy", "thr_exact", "thr_greedy"},
	}
	for _, frac := range []float64{0.7, 0.5, 0.3, 0.1} {
		bound := s.bound(frac)
		exact := s.run(core.NewHybrid(s.costModel(), core.Config{
			Bound: bound, Solver: knapsack.Exact, Adapt: true}))
		greedy := s.run(core.NewHybrid(s.costModel(), core.Config{
			Bound: bound, Solver: knapsack.Greedy, Adapt: true}))
		t.Rows = append(t.Rows, []string{
			fracLabel(frac),
			pct(s.recallOf(exact)), pct(s.recallOf(greedy)),
			thr(exact.Throughput), thr(greedy.Throughput),
		})
	}
	return []*Table{t}
}

// AblationDelay sweeps the re-trigger delay j (§IV-C): short delays
// re-shed against a stale smoothed latency signal and cumulatively
// over-shed; delays near the smoothing window preserve recall while
// still meeting the bound.
func AblationDelay(o Options) []*Table {
	s := ds1Setup(o, "8ms", metrics.BoundMean)
	bound := s.bound(0.5)
	t := &Table{
		ID:     "abl-delay",
		Title:  "hybrid recall / latency vs re-trigger delay (bound 50%)",
		Header: []string{"delay_events", "recall", "mean_latency", "shed_pms"},
	}
	for _, delay := range []int{100, 200, 500, 1000, 2000} {
		res := s.run(core.NewHybrid(s.costModel(), core.Config{
			Bound: bound, DelayEvents: delay, Adapt: true}))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", delay),
			pct(s.recallOf(res)),
			res.Latency.Mean().String(),
			count(res.Stats.DroppedPMs),
		})
	}
	return []*Table{t}
}
