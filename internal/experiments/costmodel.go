package experiments

import (
	"fmt"

	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Impact of temporal granularity (number of time slices)",
		Run:   Fig10TimeSlices,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Impact of explicit partial-match resource costs (Q3/DS2)",
		Run:   Fig11ResourceCosts,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Cost model estimation: recall across cluster-count grid",
		Run:   Fig13ClusterGrid,
	})
}

// Fig10TimeSlices reproduces Fig 10: the hybrid strategy with 1-6 time
// slices against the four baselines, under a tight (20%) bound on the
// 95th-percentile latency of a 2ms-window Q1. More slices refine the cost
// model (higher recall) at some throughput overhead.
func Fig10TimeSlices(o Options) []*Table {
	// A 2ms window needs a ~5us mean gap to stay overloaded (cf. Fig 8's
	// rate scaling).
	m := nfa.MustCompile(query.Q1("2ms"))
	train := gen.DS1(gen.DS1Config{
		Events: o.scale(12000), Seed: o.Seed + 27, InterArrival: 5 * event.Microsecond,
	})
	work := gen.DS1(gen.DS1Config{
		Events: o.scale(20000), Seed: o.Seed + 28, InterArrival: 5 * event.Microsecond,
	})
	s := newSetup(m, train, work, metrics.BoundP95)
	bound := s.bound(0.2)

	recall := &Table{ID: "fig10a", Title: "recall (%) per shedding approach / time slices", Header: []string{"approach", "recall"}}
	tput := &Table{ID: "fig10b", Title: "throughput (events/s) vs number of time slices (hybrid)", Header: []string{"slices", "throughput"}}

	for _, slices := range []int{1, 2, 3, 4, 5, 6} {
		model := core.MustTrain(s.machine, s.train, core.TrainConfig{
			Slices: slices, Seed: 1,
		})
		h := core.NewHybrid(model, core.Config{Bound: bound, Adapt: true})
		res := s.run(h)
		recall.Rows = append(recall.Rows, []string{
			fmt.Sprintf("Hybrid-%dTS", slices), pct(s.recallOf(res)),
		})
		tput.Rows = append(tput.Rows, []string{
			fmt.Sprintf("%d", slices), thr(res.Throughput),
		})
	}
	for _, name := range []string{"RI", "SI", "RS", "SS"} {
		res := s.run(s.strategy(name, bound, o.Seed+29))
		recall.Rows = append(recall.Rows, []string{name, pct(s.recallOf(res))})
	}
	return []*Table{recall, tput}
}

// Fig11ResourceCosts reproduces Fig 11: Q3 over DS2, where handling
// partial matches of different shapes costs very different amounts of
// work; the hybrid cost model with explicit resource costs Ω(p) is
// compared against the Ω = 1 ablation across latency bounds.
func Fig11ResourceCosts(o Options) []*Table {
	m := nfa.MustCompile(query.Q3("8ms"))
	train := gen.DS2(gen.DS2Config{
		Events: o.scale(12000), Seed: o.Seed + 31, InterArrival: 15 * event.Microsecond,
	})
	work := gen.DS2(gen.DS2Config{
		Events: o.scale(20000), Seed: o.Seed + 32, InterArrival: 15 * event.Microsecond,
	})
	s := newSetup(m, train, work, metrics.BoundMean)

	withCosts := core.MustTrain(m, train, core.TrainConfig{Slices: 4, ResourceCosts: true, Seed: 1})
	withoutCosts := core.MustTrain(m, train, core.TrainConfig{Slices: 4, ResourceCosts: false, Seed: 1})

	recall := &Table{ID: "fig11a", Title: "recall (%) with vs without PM resource costs", Header: []string{"bound", "with_cost", "without_cost"}}
	tput := &Table{ID: "fig11b", Title: "throughput (events/s) with vs without PM resource costs", Header: []string{"bound", "with_cost", "without_cost"}}
	for _, frac := range []float64{0.8, 0.6, 0.4, 0.2} {
		bound := s.bound(frac)
		resWith := s.run(core.NewHybrid(withCosts, core.Config{Bound: bound, Adapt: true}))
		resWithout := s.run(core.NewHybrid(withoutCosts, core.Config{Bound: bound, Adapt: true}))
		recall.Rows = append(recall.Rows, []string{
			fracLabel(frac), pct(s.recallOf(resWith)), pct(s.recallOf(resWithout)),
		})
		tput.Rows = append(tput.Rows, []string{
			fracLabel(frac), thr(resWith.Throughput), thr(resWithout.Throughput),
		})
	}
	return []*Table{recall, tput}
}

// Fig13ClusterGrid reproduces Fig 13: recall of the hybrid strategy when
// the number of clusters of Q1's two intermediate states is pinned to
// every combination in the grid (the paper sweeps 2-10 per state; quick
// mode samples {2,6,10}).
func Fig13ClusterGrid(o Options) []*Table {
	s := ds1Setup(o, "8ms", metrics.BoundMean)
	bound := s.bound(0.5)

	// The paper sweeps the full 2-10 grid; a 5-point grid per axis shows
	// the same saturating surface at a quarter of the 81 train+run cycles.
	grid := []int{2, 4, 6, 8, 10}
	if o.Quick {
		grid = []int{2, 6, 10}
	}
	header := []string{"state1\\state2"}
	for _, k2 := range grid {
		header = append(header, fmt.Sprintf("%d", k2))
	}
	t := &Table{ID: "fig13", Title: "hybrid recall across (clusters state 1) x (clusters state 2)", Header: header}
	for _, k1 := range grid {
		row := []string{fmt.Sprintf("%d", k1)}
		for _, k2 := range grid {
			model := core.MustTrain(s.machine, s.train, core.TrainConfig{
				Slices:        4,
				FixedClusters: map[int]int{0: k1, 1: k2},
				Seed:          1,
			})
			res := s.run(core.NewHybrid(model, core.Config{Bound: bound, Adapt: true}))
			row = append(row, fmt.Sprintf("%.2f", s.recallOf(res)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
