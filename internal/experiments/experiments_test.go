package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fmtSscan parses one float from a table cell.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig9",
		"fig15", "fig16",
		"abl-adapt", "abl-solver", "abl-delay",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("registry size = %d, want %d", len(all), len(want))
	}
	// All() sorts numerically.
	for i := 1; i < len(all); i++ {
		if figOrder(all[i-1].ID) > figOrder(all[i].ID) {
			t.Errorf("registry unsorted: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown id resolved")
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "test",
		Header: []string{"a", "bbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: test") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "333") {
		t.Errorf("missing row: %q", out)
	}
}

func TestOptionsScale(t *testing.T) {
	if (Options{}).scale(100) != 100 {
		t.Error("full scale wrong")
	}
	if (Options{Quick: true}).scale(100) != 25 {
		t.Error("quick scale wrong")
	}
}

// TestFig1Shape runs the cheapest experiment end to end and checks the
// Fig 1 property: the peak partial-match count dwarfs the median (the
// burst spike that motivates shedding).
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	tables := Fig1PartialMatches(Options{Quick: true})
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	rows := tables[0].Rows
	if len(rows) < 20 {
		t.Fatalf("samples = %d", len(rows))
	}
	var counts []float64
	for _, r := range rows {
		var v float64
		if _, err := sscan(r[2], &v); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, v)
	}
	maxV, sum := 0.0, 0.0
	for _, v := range counts {
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	mean := sum / float64(len(counts))
	if maxV < 2*mean {
		t.Errorf("PM peak %v not a spike over mean %v", maxV, mean)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

// TestFig14Trend verifies the non-monotonicity mechanism: shedding on a
// negated query compromises PRECISION (false positives appear) while
// recall stays high — the paper's qualitative finding. (The direction of
// the precision trend versus P(B) differs from the paper in our witness
// model; see EXPERIMENTS.md.)
func TestFig14Trend(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	tables := Fig14NonMonotonic(Options{Quick: true})
	rows := tables[0].Rows
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	pMin, rMin := 1.0, 1.0
	for _, r := range rows {
		var p, rec float64
		if _, err := fmtSscan(r[1], &p); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscan(r[2], &rec); err != nil {
			t.Fatal(err)
		}
		if p < pMin {
			pMin = p
		}
		if rec < rMin {
			rMin = rec
		}
	}
	if pMin > 0.95 {
		t.Errorf("precision never compromised (min %.3f); negation mechanism inert", pMin)
	}
	if rMin < 0.6 {
		t.Errorf("recall collapsed to %.3f", rMin)
	}
}
