package experiments

import (
	"cepshed/internal/baseline"
	"cepshed/internal/core"
	"cepshed/internal/metrics"
	"cepshed/internal/shed"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Selection quality at fixed shedding ratios (input- and state-based)",
		Run:   Fig6SelectionQuality,
	})
}

// Fig6SelectionQuality reproduces Fig 6(a-d): with the shedding ratio
// fixed (10-90%), how well do the strategies pick WHAT to shed? Input-
// based: RI vs SI vs HyI (cost-model-ranked events). State-based: RS vs
// SS vs HyS (cost-model-ranked partial matches).
func Fig6SelectionQuality(o Options) []*Table {
	s := ds1Setup(o, "8ms", metrics.BoundMean)
	ratios := []float64{0.1, 0.3, 0.5, 0.7, 0.9}

	inputNames := []string{"RI", "SI", "HyI"}
	stateNames := []string{"RS", "SS", "HyS"}

	recallIn := &Table{ID: "fig6a", Title: "recall (%) at fixed input-shedding ratios", Header: append([]string{"ratio"}, inputNames...)}
	tputIn := &Table{ID: "fig6b", Title: "throughput (events/s) at fixed input-shedding ratios", Header: append([]string{"ratio"}, inputNames...)}
	recallSt := &Table{ID: "fig6c", Title: "recall (%) at fixed state-shedding ratios", Header: append([]string{"ratio"}, stateNames...)}
	tputSt := &Table{ID: "fig6d", Title: "throughput (events/s) at fixed state-shedding ratios", Header: append([]string{"ratio"}, stateNames...)}

	mk := func(name string, ratio float64) shed.Strategy {
		seed := o.Seed + 17
		switch name {
		case "RI":
			return baseline.NewRandomInputRatio(ratio, seed)
		case "SI":
			return baseline.NewSelectivityInputRatio(s.selectivity(), ratio, seed)
		case "HyI":
			return core.NewFixedRatioHybrid(s.costModel(), ratio, true, seed)
		case "RS":
			return baseline.NewRandomStateRatio(ratio, seed)
		case "SS":
			return baseline.NewSelectivityStateRatio(s.selectivity(), ratio, seed)
		case "HyS":
			return core.NewFixedRatioHybrid(s.costModel(), ratio, false, seed)
		}
		panic("unknown " + name)
	}

	for _, ratio := range ratios {
		rowRI := []string{fracLabel(ratio)}
		rowTI := []string{fracLabel(ratio)}
		for _, name := range inputNames {
			res := s.run(mk(name, ratio))
			rowRI = append(rowRI, pct(s.recallOf(res)))
			rowTI = append(rowTI, thr(res.Throughput))
		}
		recallIn.Rows = append(recallIn.Rows, rowRI)
		tputIn.Rows = append(tputIn.Rows, rowTI)

		rowRS := []string{fracLabel(ratio)}
		rowTS := []string{fracLabel(ratio)}
		for _, name := range stateNames {
			res := s.run(mk(name, ratio))
			rowRS = append(rowRS, pct(s.recallOf(res)))
			rowTS = append(rowTS, thr(res.Throughput))
		}
		recallSt.Rows = append(recallSt.Rows, rowRS)
		tputSt.Rows = append(tputSt.Rows, rowTS)
	}
	return []*Table{recallIn, tputIn, recallSt, tputSt}
}
