// Package experiments reproduces every figure of the paper's evaluation
// (§VI). Each experiment runs a ground-truth (no shedding) pass to obtain
// the complete matches and the unshedded latency, derives latency bounds
// as fractions of that latency as the paper does, runs each shedding
// strategy, and reports the same series the figure plots. The experiment
// registry drives both cmd/cepbench and the root bench suite.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cepshed/internal/baseline"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks streams for fast CI/bench runs; the full scale is the
	// default for figure reproduction.
	Quick bool
	// Seed offsets all generator seeds.
	Seed int64
}

// scale returns n in full mode and a reduced count in quick mode.
func (o Options) scale(n int) int {
	if o.Quick {
		return n / 4
	}
	return n
}

// Table is one reproducible output series (a figure panel).
type Table struct {
	// ID names the panel (e.g. "fig4a").
	ID string
	// Title describes the panel.
	Title string
	// Header names the columns; the first column is the swept parameter.
	Header []string
	// Rows hold the series, one row per parameter value.
	Rows [][]string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// PrintCSV renders the panel as CSV with a leading panel column, ready
// for plotting tools.
func (t *Table) PrintCSV(w io.Writer) {
	fmt.Fprintf(w, "panel,%s\n", strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%s,%s\n", t.ID, strings.Join(row, ","))
	}
}

// Experiment is one registered figure reproduction.
type Experiment struct {
	// ID is the figure identifier (fig1, fig4, ... fig16).
	ID string
	// Title summarizes what the figure shows.
	Title string
	// Run executes the experiment.
	Run func(Options) []*Table
}

// registry of experiments, populated by the fig*.go files.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return figOrder(out[i].ID) < figOrder(out[j].ID) })
	return out
}

// figOrder sorts fig1 < fig4 < ... < fig16 numerically.
func figOrder(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// setup bundles everything one experimental configuration needs: the
// compiled query, a training stream for offline estimation, a workload
// stream, and lazily built artifacts (ground truth, selectivity, model).
type setup struct {
	machine   *nfa.Machine
	train     event.Stream
	work      event.Stream
	boundStat metrics.BoundStat
	costs     engine.Costs
	trainCfg  core.TrainConfig
	// deferredNeg switches the engine to witness-based negation
	// semantics (used by the non-monotonicity experiment).
	deferredNeg bool

	truth *metrics.RunResult
	sel   *baseline.Selectivity
	model *core.Model
}

func newSetup(m *nfa.Machine, train, work event.Stream, stat metrics.BoundStat) *setup {
	return &setup{
		machine:   m,
		train:     train,
		work:      work,
		boundStat: stat,
		costs:     engine.DefaultCosts(),
		trainCfg:  core.TrainConfig{Slices: 4, ResourceCosts: false, Seed: 1},
	}
}

// truthRun returns (and caches) the no-shedding reference run.
func (s *setup) truthRun() *metrics.RunResult {
	if s.truth == nil {
		s.truth = metrics.Run(s.machine, s.work, metrics.RunConfig{
			Costs: s.costs, BoundStat: s.boundStat, DeferredNegation: s.deferredNeg,
		})
	}
	return s.truth
}

// bound returns frac times the unshedded latency statistic.
func (s *setup) bound(frac float64) event.Time {
	base := s.boundStat.Of(s.truthRun().Latency)
	return event.Time(frac * float64(base))
}

// selectivity returns (and caches) the offline selectivity estimates.
func (s *setup) selectivity() *baseline.Selectivity {
	if s.sel == nil {
		s.sel = baseline.EstimateSelectivity(s.machine, s.train)
	}
	return s.sel
}

// costModel returns (and caches) the trained hybrid cost model.
func (s *setup) costModel() *core.Model {
	if s.model == nil {
		cfg := s.trainCfg
		cfg.DeferredNegation = s.deferredNeg
		s.model = core.MustTrain(s.machine, s.train, cfg)
	}
	return s.model
}

// strategyNames are the five latency-bound strategies of the main
// comparisons.
var strategyNames = []string{"RI", "SI", "RS", "SS", "Hybrid"}

// strategy builds a latency-bound-driven strategy by name.
func (s *setup) strategy(name string, bound event.Time, seed int64) shed.Strategy {
	switch name {
	case "RI":
		return baseline.NewRandomInput(bound, seed)
	case "SI":
		return baseline.NewSelectivityInput(s.selectivity(), bound, seed)
	case "RS":
		return baseline.NewRandomState(bound, seed)
	case "SS":
		return baseline.NewSelectivityState(s.selectivity(), bound, seed)
	case "Hybrid":
		return core.NewHybrid(s.costModel(), core.Config{Bound: bound, Adapt: true})
	case "HyS":
		return core.NewHybrid(s.costModel(), core.Config{Bound: bound, Mode: core.ModeStateOnly, Adapt: true})
	case "HyI":
		return core.NewHybrid(s.costModel(), core.Config{Bound: bound, Mode: core.ModeInputOnly, Adapt: true})
	default:
		panic("unknown strategy " + name)
	}
}

// run executes the workload under a strategy.
func (s *setup) run(strat shed.Strategy) *metrics.RunResult {
	return metrics.Run(s.machine, s.work, metrics.RunConfig{
		Costs: s.costs, Strategy: strat, BoundStat: s.boundStat,
		DeferredNegation: s.deferredNeg,
	})
}

// recallOf computes a run's recall against the cached ground truth.
func (s *setup) recallOf(r *metrics.RunResult) float64 {
	return metrics.Recall(s.truthRun().MatchSet(), r.MatchSet())
}

// precisionOf computes a run's precision against the cached ground truth.
func (s *setup) precisionOf(r *metrics.RunResult) float64 {
	return metrics.Precision(s.truthRun().MatchSet(), r.MatchSet())
}

// Formatting helpers shared by the figures.
func pct(v float64) string       { return fmt.Sprintf("%.1f", 100*v) }
func count(v uint64) string      { return fmt.Sprintf("%d", v) }
func thr(v float64) string       { return fmt.Sprintf("%.0f", v) }
func fracLabel(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }
