package experiments

import (
	"cepshed/internal/citibike"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Partial matches over time for the hot-path query on bike-trip data",
		Run:   Fig1PartialMatches,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Recall, throughput, and shed ratios under average-latency bounds (Q1/DS1)",
		Run:   Fig4LatencyBounds,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Hybrid shedding internals: #shed events and #shed PMs per bound",
		Run:   Fig5HybridDetail,
	})
}

// Fig1PartialMatches reproduces Fig 1: the number of live partial matches
// over time when evaluating the hot-path query — the spike during the
// burst period motivates load shedding.
func Fig1PartialMatches(o Options) []*Table {
	stream := citibike.Generate(citibike.Config{
		Trips: o.scale(12000),
		Seed:  o.Seed + 101,
	})
	m := nfa.MustCompile(query.HotPaths("3 min", 2, 4))
	res := metrics.Run(m, stream, metrics.RunConfig{
		SamplePMsEvery: len(stream) / 40,
	})
	t := &Table{
		ID:     "fig1",
		Title:  "live partial matches per time bucket (hot-path query)",
		Header: []string{"bucket", "virtual_time", "partial_matches"},
	}
	for i, s := range res.PMSamples {
		t.Rows = append(t.Rows, []string{
			count(uint64(i)), s.Time.String(), count(uint64(s.Count)),
		})
	}
	return []*Table{t}
}

// ds1Setup builds the standard Q1-over-DS1 overload configuration used by
// Figs 4, 5, 6, 10, and 13: the workload stream is dense enough that
// unshedded processing violates any of the tested bounds.
func ds1Setup(o Options, window string, stat metrics.BoundStat) *setup {
	m := nfa.MustCompile(query.Q1(window))
	train := gen.DS1(gen.DS1Config{
		Events: o.scale(12000), Seed: o.Seed + 7, InterArrival: 15 * event.Microsecond,
	})
	work := gen.DS1(gen.DS1Config{
		Events: o.scale(20000), Seed: o.Seed + 8, InterArrival: 15 * event.Microsecond,
	})
	return newSetup(m, train, work, stat)
}

// Fig4LatencyBounds reproduces Fig 4(a-d): recall, throughput, shed-event
// ratio, and shed-PM ratio for RI, SI, RS, SS, and Hybrid while the bound
// on the average latency tightens (the paper sweeps 900 to 100 us against
// an unshedded 1033 us; we sweep the same relative positions).
func Fig4LatencyBounds(o Options) []*Table {
	s := ds1Setup(o, "8ms", metrics.BoundMean)
	fracs := []float64{0.9, 0.7, 0.5, 0.3, 0.1}

	recall := &Table{ID: "fig4a", Title: "recall (%) vs avg-latency bound", Header: append([]string{"bound"}, strategyNames...)}
	tput := &Table{ID: "fig4b", Title: "throughput (events/s) vs avg-latency bound", Header: append([]string{"bound"}, strategyNames...)}
	shedEv := &Table{ID: "fig4c", Title: "ratio of shed events (%)", Header: append([]string{"bound"}, strategyNames...)}
	shedPM := &Table{ID: "fig4d", Title: "ratio of shed PMs (%)", Header: append([]string{"bound"}, strategyNames...)}

	for _, frac := range fracs {
		bound := s.bound(frac)
		rowR := []string{fracLabel(frac)}
		rowT := []string{fracLabel(frac)}
		rowE := []string{fracLabel(frac)}
		rowP := []string{fracLabel(frac)}
		for _, name := range strategyNames {
			res := s.run(s.strategy(name, bound, o.Seed+11))
			rowR = append(rowR, pct(s.recallOf(res)))
			rowT = append(rowT, thr(res.Throughput))
			rowE = append(rowE, pct(res.ShedEventRatio()))
			rowP = append(rowP, pct(res.ShedPMRatio()))
		}
		recall.Rows = append(recall.Rows, rowR)
		tput.Rows = append(tput.Rows, rowT)
		shedEv.Rows = append(shedEv.Rows, rowE)
		shedPM.Rows = append(shedPM.Rows, rowP)
	}
	return []*Table{recall, tput, shedEv, shedPM}
}

// Fig5HybridDetail reproduces Fig 5: the absolute numbers of shed input
// events and shed partial matches for the hybrid strategy, under bounds
// on the average latency (a) and on the 95th-percentile latency (b). The
// paper's turning point — shed PMs rising then falling as input shedding
// takes over for tight bounds — is the series to compare.
func Fig5HybridDetail(o Options) []*Table {
	fracs := []float64{0.9, 0.7, 0.5, 0.3, 0.1}
	out := make([]*Table, 0, 2)
	for _, stat := range []metrics.BoundStat{metrics.BoundMean, metrics.BoundP95} {
		s := ds1Setup(o, "8ms", stat)
		id := "fig5a"
		if stat == metrics.BoundP95 {
			id = "fig5b"
		}
		t := &Table{
			ID:     id,
			Title:  "hybrid shed counts vs " + stat.String() + "-latency bound",
			Header: []string{"bound", "shed_events", "shed_pms"},
		}
		for _, frac := range fracs {
			res := s.run(s.strategy("Hybrid", s.bound(frac), o.Seed+13))
			t.Rows = append(t.Rows, []string{
				fracLabel(frac),
				count(uint64(res.ShedEvents)),
				count(res.Stats.DroppedPMs),
			})
		}
		out = append(out, t)
	}
	return out
}
