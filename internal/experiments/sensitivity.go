package experiments

import (
	"fmt"

	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Sensitivity to the variance of query selectivity (C.V in U[2,x])",
		Run:   Fig7SelectivityVariance,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Sensitivity to the time-window size (Q1, 1-16ms)",
		Run:   Fig8WindowSize,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Sensitivity to the queried pattern length (Q2, length 4-8)",
		Run:   Fig9PatternLength,
	})
}

// sweepStrategies runs all five strategies on a setup at one bound and
// appends one recall row and one throughput row.
func sweepStrategies(o Options, s *setup, label string, frac float64, recall, tput *Table) {
	bound := s.bound(frac)
	rowR := []string{label}
	rowT := []string{label}
	for _, name := range strategyNames {
		res := s.run(s.strategy(name, bound, o.Seed+19))
		rowR = append(rowR, pct(s.recallOf(res)))
		rowT = append(rowT, thr(res.Throughput))
	}
	recall.Rows = append(recall.Rows, rowR)
	tput.Rows = append(tput.Rows, rowT)
}

// Fig7SelectivityVariance reproduces Fig 7: the V attribute of C events
// is drawn from U[2,x] with x in {2,4,6,8,10}; small x means the utility
// of input events is precisely assessable, where input-based shedding
// (and the hybrid through it) shines with far higher throughput.
func Fig7SelectivityVariance(o Options) []*Table {
	recall := &Table{ID: "fig7a", Title: "recall (%) vs variance control x (C.V in U[2,x])", Header: append([]string{"x"}, strategyNames...)}
	tput := &Table{ID: "fig7b", Title: "throughput (events/s) vs variance control x", Header: append([]string{"x"}, strategyNames...)}
	for _, x := range []int{2, 4, 6, 8, 10} {
		m := nfa.MustCompile(query.Q1("8ms"))
		train := gen.DS1(gen.DS1Config{
			Events: o.scale(12000), Seed: o.Seed + 21, InterArrival: 15 * event.Microsecond,
			CVMin: 2, CVMax: x,
		})
		work := gen.DS1(gen.DS1Config{
			Events: o.scale(20000), Seed: o.Seed + 22, InterArrival: 15 * event.Microsecond,
			CVMin: 2, CVMax: x,
		})
		s := newSetup(m, train, work, metrics.BoundP95)
		sweepStrategies(o, s, fmt.Sprintf("%d", x), 0.5, recall, tput)
	}
	return []*Table{recall, tput}
}

// Fig8WindowSize reproduces Fig 8: Q1's window grows from 1ms to 16ms.
// Deviation from the paper's setup: the paper holds the input rate steady
// and its testbed is overloaded at every window size; with our virtual
// cost calibration, a fixed rate leaves small windows idle (no shedding,
// recall 100% for everyone) while large windows explode combinatorially.
// We therefore scale the inter-arrival time with the window so every row
// operates under comparable overload (~400 events per window), which
// isolates what the figure studies — how window size affects the cost
// model's precision and the strategies' recall.
func Fig8WindowSize(o Options) []*Table {
	recall := &Table{ID: "fig8a", Title: "recall (%) vs window size", Header: append([]string{"window"}, strategyNames...)}
	tput := &Table{ID: "fig8b", Title: "throughput (events/s) vs window size", Header: append([]string{"window"}, strategyNames...)}
	for _, ms := range []int{1, 2, 4, 8, 16} {
		window := fmt.Sprintf("%dms", ms)
		ia := event.Time(ms) * event.Millisecond / 400
		if ia < 2*event.Microsecond {
			ia = 2 * event.Microsecond
		}
		m := nfa.MustCompile(query.Q1(window))
		train := gen.DS1(gen.DS1Config{
			Events: o.scale(12000), Seed: o.Seed + 23, InterArrival: ia,
		})
		work := gen.DS1(gen.DS1Config{
			Events: o.scale(16000), Seed: o.Seed + 24, InterArrival: ia,
		})
		s := newSetup(m, train, work, metrics.BoundP95)
		sweepStrategies(o, s, window, 0.5, recall, tput)
	}
	return []*Table{recall, tput}
}

// Fig9PatternLength reproduces Fig 9: Q2's Kleene closure is bounded so
// the total pattern length runs from 4 to 8; recall should hold roughly
// stable while throughput collapses with pattern complexity, hybrid
// degrading the least.
func Fig9PatternLength(o Options) []*Table {
	recall := &Table{ID: "fig9a", Title: "recall (%) vs pattern length", Header: append([]string{"length"}, strategyNames...)}
	tput := &Table{ID: "fig9b", Title: "throughput (events/s) vs pattern length", Header: append([]string{"length"}, strategyNames...)}
	for _, length := range []int{4, 5, 6, 7, 8} {
		// The paper varies the LIMIT of the Kleene closure: patterns may
		// use up to maxReps repetitions (a + b[]{1,maxReps} + c + d), so a
		// larger limit admits strictly more partial matches.
		maxReps := length - 3
		// A 2ms window at a 3us mean gap keeps the engine overloaded even
		// for the longest patterns.
		m := nfa.MustCompile(query.Q2("2ms", 1, maxReps))
		train := gen.DS1(gen.DS1Config{
			Events: o.scale(12000), Seed: o.Seed + 25, InterArrival: 3 * event.Microsecond,
		})
		work := gen.DS1(gen.DS1Config{
			Events: o.scale(16000), Seed: o.Seed + 26, InterArrival: 3 * event.Microsecond,
		})
		s := newSetup(m, train, work, metrics.BoundP95)
		sweepStrategies(o, s, fmt.Sprintf("%d", length), 0.5, recall, tput)
	}
	return []*Table{recall, tput}
}
