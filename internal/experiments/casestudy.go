package experiments

import (
	"cepshed/internal/citibike"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Case study: bike sharing (hot paths under p99-latency bounds)",
		Run:   Fig15CitiBike,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Case study: cluster monitoring (task lifecycles under latency bounds)",
		Run:   Fig16Cluster,
	})
}

// caseStudy sweeps all five strategies over latency-bound fractions.
func caseStudy(o Options, s *setup, idPrefix string, fracs []float64) []*Table {
	recall := &Table{
		ID:     idPrefix + "a",
		Title:  "recall (%) vs " + s.boundStat.String() + "-latency bound",
		Header: append([]string{"bound"}, strategyNames...),
	}
	tput := &Table{
		ID:     idPrefix + "b",
		Title:  "throughput (events/s) vs " + s.boundStat.String() + "-latency bound",
		Header: append([]string{"bound"}, strategyNames...),
	}
	for _, frac := range fracs {
		sweepStrategies(o, s, fracLabel(frac), frac, recall, tput)
	}
	return []*Table{recall, tput}
}

// Fig15CitiBike reproduces Fig 15: the hot-path query (Listing 1) on the
// bike-trip stream with bounds on the 99th-percentile latency. The burst
// period makes unshedded processing violate every bound; the paper
// reports hybrid recall up to 11.4x the baselines at the tightest bound.
func Fig15CitiBike(o Options) []*Table {
	m := nfa.MustCompile(query.HotPaths("3 min", 2, 4))
	train := citibike.Generate(citibike.Config{
		Trips: o.scale(6000), Seed: o.Seed + 61,
	})
	work := citibike.Generate(citibike.Config{
		Trips: o.scale(10000), Seed: o.Seed + 62,
	})
	s := newSetup(m, train, work, metrics.BoundP99)
	return caseStudy(o, s, "fig15", []float64{0.8, 0.6, 0.4, 0.2})
}

// Fig16Cluster reproduces Fig 16: Listing 3's submit/schedule/evict chain
// over the simulated cluster trace with an eviction storm; the paper
// reports hybrid recall up to 4x the input-based and 1.5x the state-based
// baselines.
func Fig16Cluster(o Options) []*Table {
	cfg := gcluster.Config{
		Tasks:   o.scale(6000),
		MeanGap: 120 * event.Millisecond,
		StepGap: 400 * event.Millisecond,
	}
	cfg.Seed = o.Seed + 63
	train := gcluster.Generate(cfg)
	cfg.Seed = o.Seed + 64
	work := gcluster.Generate(cfg)
	m := nfa.MustCompile(query.ClusterTasks("1 min"))
	s := newSetup(m, train, work, metrics.BoundMean)
	// A task lifecycle (~2.4s) is far shorter than the 1-minute window;
	// the shedding opportunity is the mass of STALE runs whose task
	// already terminated, so the cost model needs slices finer than a
	// lifecycle to see their zero remaining contribution.
	s.trainCfg.Slices = 24
	return caseStudy(o, s, "fig16", []float64{0.8, 0.6, 0.4, 0.2})
}
