package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Adaptivity of the cost model to a mid-stream distribution change",
		Run:   Fig12Adaptivity,
	})
}

// completionSeq extracts the sequence number of the completing event from
// a match key (the key lists event sequence numbers in pattern order).
func completionSeq(key string) uint64 {
	idx := strings.LastIndexByte(key, ',')
	n, _ := strconv.ParseUint(key[idx+1:], 10, 64)
	return n
}

// bucketRecall computes recall per completion-offset bucket.
func bucketRecall(truth, got map[string]event.Time, events, bucket int) []float64 {
	n := (events + bucket - 1) / bucket
	hit := make([]int, n)
	tot := make([]int, n)
	for key := range truth {
		b := int(completionSeq(key)) / bucket
		if b >= n {
			b = n - 1
		}
		tot[b]++
		if _, ok := got[key]; ok {
			hit[b]++
		}
	}
	out := make([]float64, n)
	for i := range out {
		if tot[i] == 0 {
			out[i] = -1 // no truth matches in this bucket
		} else {
			out[i] = float64(hit[i]) / float64(tot[i])
		}
	}
	return out
}

// Fig12Adaptivity reproduces Fig 12: the distribution of C.V flips from
// U(2,10) to U(12,20) mid-stream, inverting which partial matches are
// valuable (the worst case for a learned cost model). With online
// adaptation enabled, recall collapses at the change point and recovers;
// smaller (count-based) windows recover faster. One column per window
// size (1K-8K events), one row per completion-offset bucket.
func Fig12Adaptivity(o Options) []*Table {
	events := o.scale(24000)
	shiftAt := events / 2
	bucket := events / 24
	// The paper sweeps 1K-8K-event windows; with our pair-forming rates an
	// 8K window holds hundreds of thousands of partial matches, so the
	// sweep is scaled down 2.5x — the figure's point (smaller windows
	// recover faster after the change) is a relative statement.
	windows := []int{400, 800, 1600, 3200}

	header := []string{"event_offset"}
	for _, w := range windows {
		header = append(header, fmt.Sprintf("%dev_window", w))
	}
	t := &Table{
		ID:     "fig12",
		Title:  "hybrid recall over the stream; C.V shifts U(2,10)->U(12,20) mid-stream",
		Header: header,
	}

	series := make([][]float64, len(windows))
	for wi, w := range windows {
		m := nfa.MustCompile(query.MustParse(fmt.Sprintf(`
			PATTERN SEQ(A a, B b, C c)
			WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V
			WITHIN %d EVENTS`, w)))
		train := gen.DS1(gen.DS1Config{
			Events: o.scale(12000), Seed: o.Seed + 41, InterArrival: 15 * event.Microsecond,
			CVMin: 2, CVMax: 10,
		})
		work := gen.DS1(gen.DS1Config{
			Events: events, Seed: o.Seed + 42, InterArrival: 15 * event.Microsecond,
			CVMin: 2, CVMax: 10,
			ShiftAt: shiftAt, ShiftMin: 12, ShiftMax: 20,
		})
		s := newSetup(m, train, work, metrics.BoundMean)
		model := core.MustTrain(m, train, core.TrainConfig{Slices: 4, Seed: 1})
		res := s.run(core.NewHybrid(model, core.Config{Bound: s.bound(0.4), Adapt: true}))
		series[wi] = bucketRecall(s.truthRun().Matches, res.Matches, events, bucket)
	}
	for b := 0; b < len(series[0]); b++ {
		row := []string{fmt.Sprintf("%d", b*bucket)}
		for wi := range windows {
			v := series[wi][b]
			if v < 0 {
				row = append(row, "-")
			} else {
				row = append(row, pct(v))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}
}
