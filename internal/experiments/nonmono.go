package experiments

import (
	"fmt"

	"cepshed/internal/core"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Non-monotonic query: precision and recall vs negated-type probability",
		Run:   Fig14NonMonotonic,
	})
}

// Fig14NonMonotonic reproduces Fig 14: Q4 carries an interior negated
// event type B, and the engine runs in deferred-negation mode, where B
// events live on as zero-contribution witness state among the partial
// matches. Shedding 10% of the partial matches therefore predominantly
// discards witnesses (they are the least important state by
// contribution), which cannot reduce recall but fabricates matches a
// surviving witness would have invalidated — precision falls as B grows
// more frequent, while recall stays stable, exactly the paper's finding.
func Fig14NonMonotonic(o Options) []*Table {
	t := &Table{
		ID:     "fig14",
		Title:  "precision and recall vs probability of the negated type B (10% PMs shed)",
		Header: []string{"P(B)%", "precision", "recall"},
	}
	for _, pb := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5} {
		m := nfa.MustCompile(query.Q4("8ms"))
		train := gen.DS1(gen.DS1Config{
			Events: o.scale(8000), Seed: o.Seed + 51, InterArrival: 15 * event.Microsecond,
			BProb: pb,
		})
		work := gen.DS1(gen.DS1Config{
			Events: o.scale(12000), Seed: o.Seed + 52, InterArrival: 15 * event.Microsecond,
			BProb: pb,
		})
		s := newSetup(m, train, work, metrics.BoundMean)
		s.deferredNeg = true
		res := s.run(core.NewFixedRatioHybrid(s.costModel(), 0.10, false, o.Seed+53))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", pb*100),
			fmt.Sprintf("%.3f", s.precisionOf(res)),
			fmt.Sprintf("%.3f", s.recallOf(res)),
		})
	}
	return []*Table{t}
}
