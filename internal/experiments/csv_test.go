package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablePrintCSV(t *testing.T) {
	tab := &Table{
		ID:     "fig4a",
		Title:  "recall",
		Header: []string{"bound", "RI", "Hybrid"},
		Rows:   [][]string{{"90%", "87.3", "100.0"}, {"10%", "63.8", "86.3"}},
	}
	var buf bytes.Buffer
	tab.PrintCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "panel,bound,RI,Hybrid" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "fig4a,90%,87.3,100.0" {
		t.Errorf("row = %q", lines[1])
	}
}
