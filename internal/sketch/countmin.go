// Package sketch provides a count-min sketch for streaming counts
// (Cormode & Muthukrishnan), used by the cost model's online adaptation
// to track per-class contribution and consumption increments without
// unbounded exact counters.
package sketch

import (
	"errors"
	"hash/maphash"
	"math"
)

// CountMin is a count-min sketch over string keys with conservative
// updates disabled (plain CM, as in the paper's citation [13]).
type CountMin struct {
	depth int
	width int
	rows  [][]uint64
	seeds []maphash.Seed
}

// NewCountMin builds a sketch with error bound eps (relative overcount
// per total count) and failure probability delta.
func NewCountMin(eps, delta float64) (*CountMin, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, errors.New("sketch: eps and delta must be in (0,1)")
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMinSized(depth, width), nil
}

// NewCountMinSized builds a sketch with explicit dimensions.
func NewCountMinSized(depth, width int) *CountMin {
	if depth < 1 {
		depth = 1
	}
	if width < 1 {
		width = 1
	}
	cm := &CountMin{depth: depth, width: width}
	cm.rows = make([][]uint64, depth)
	cm.seeds = make([]maphash.Seed, depth)
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, width)
		cm.seeds[i] = maphash.MakeSeed()
	}
	return cm
}

func (cm *CountMin) index(row int, key string) int {
	var h maphash.Hash
	h.SetSeed(cm.seeds[row])
	h.WriteString(key)
	return int(h.Sum64() % uint64(cm.width))
}

// Add increments the count for key by delta.
func (cm *CountMin) Add(key string, delta uint64) {
	for r := 0; r < cm.depth; r++ {
		cm.rows[r][cm.index(r, key)] += delta
	}
}

// Count returns the (over-)estimated count for key.
func (cm *CountMin) Count(key string) uint64 {
	min := uint64(math.MaxUint64)
	for r := 0; r < cm.depth; r++ {
		if c := cm.rows[r][cm.index(r, key)]; c < min {
			min = c
		}
	}
	return min
}

// Reset zeroes all counters, keeping the hash seeds.
func (cm *CountMin) Reset() {
	for _, row := range cm.rows {
		for i := range row {
			row[i] = 0
		}
	}
}

// Depth returns the number of hash rows.
func (cm *CountMin) Depth() int { return cm.depth }

// Width returns the number of counters per row.
func (cm *CountMin) Width() int { return cm.width }
