package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCountMinValidation(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{
		{0, 0.1}, {0.1, 0}, {1, 0.1}, {0.1, 1}, {-1, 0.5},
	} {
		if _, err := NewCountMin(c.eps, c.delta); err == nil {
			t.Errorf("NewCountMin(%v, %v) should fail", c.eps, c.delta)
		}
	}
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Width() < 100 || cm.Depth() < 2 {
		t.Errorf("dimensions too small: %dx%d", cm.Depth(), cm.Width())
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMinSized(4, 64)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d", rng.Intn(200))
		cm.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.Count(k); got < want {
			t.Errorf("Count(%s) = %d undercounts true %d", k, got, want)
		}
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	cm := NewCountMinSized(4, 2048)
	cm.Add("a", 5)
	cm.Add("b", 7)
	if cm.Count("a") < 5 || cm.Count("b") < 7 {
		t.Error("undercount")
	}
	// With a wide sketch and 2 keys, collisions across all 4 rows are
	// essentially impossible, so counts should be exact.
	if cm.Count("a") != 5 || cm.Count("b") != 7 {
		t.Errorf("sparse counts inexact: a=%d b=%d", cm.Count("a"), cm.Count("b"))
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMinSized(2, 16)
	cm.Add("x", 3)
	cm.Reset()
	if cm.Count("x") != 0 {
		t.Error("reset did not zero counters")
	}
}

func TestCountMinUnseenKey(t *testing.T) {
	cm := NewCountMinSized(3, 512)
	if cm.Count("never") != 0 {
		t.Error("unseen key should count 0 in an empty sketch")
	}
}

// Property: the estimate always dominates the true count.
func TestCountMinOverestimateProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		cm := NewCountMinSized(3, 32)
		truth := map[string]uint64{}
		for _, k := range keys {
			key := fmt.Sprintf("k%d", k%16)
			cm.Add(key, 1)
			truth[key]++
		}
		for k, want := range truth {
			if cm.Count(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountMinSizedClamps(t *testing.T) {
	cm := NewCountMinSized(0, 0)
	cm.Add("a", 1)
	if cm.Count("a") != 1 {
		t.Error("1x1 sketch should still count")
	}
}
