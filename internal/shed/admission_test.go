package shed

import "testing"

func TestAdmissionDropProbabilityRamp(t *testing.T) {
	a := NewAdmissionController(0.75, 0.95, 1)
	if p := a.DropProbability(0.5); p != 0 {
		t.Errorf("below high water: p = %g, want 0", p)
	}
	if p := a.DropProbability(0.75); p != 0 {
		t.Errorf("at high water: p = %g, want 0", p)
	}
	mid := a.DropProbability(0.85)
	if mid <= 0 || mid >= a.MaxDrop {
		t.Errorf("mid-band p = %g, want in (0, %g)", mid, a.MaxDrop)
	}
	if p := a.DropProbability(0.95); p != a.MaxDrop {
		t.Errorf("at full water: p = %g, want MaxDrop %g", p, a.MaxDrop)
	}
	if p := a.DropProbability(2.0); p != a.MaxDrop {
		t.Errorf("past full water: p = %g, want capped at %g", p, a.MaxDrop)
	}
}

func TestAdmissionAlwaysAdmitsBelowHighWater(t *testing.T) {
	a := NewAdmissionController(0.75, 0.95, 7)
	for i := 0; i < 1000; i++ {
		if !a.Admit(0.6) {
			t.Fatal("rejected an offer below the high-water mark")
		}
	}
}

func TestAdmissionRejectionRateTracksProbability(t *testing.T) {
	a := NewAdmissionController(0.75, 0.95, 99)
	const n = 10000
	rejected := 0
	for i := 0; i < n; i++ {
		if !a.Admit(0.95) { // p = MaxDrop = 0.9
			rejected++
		}
	}
	if rejected < 8500 || rejected > 9500 {
		t.Errorf("rejected %d/%d at p=0.9", rejected, n)
	}
}

func TestAdmissionDegenerateBand(t *testing.T) {
	// full <= high must not divide by zero; the constructor widens it.
	a := NewAdmissionController(0.9, 0.9, 1)
	if a.Full <= a.High {
		t.Fatalf("constructor kept degenerate band high=%g full=%g", a.High, a.Full)
	}
	if p := a.DropProbability(0.95); p <= 0 || p > a.MaxDrop {
		t.Errorf("p = %g in widened band, want in (0, %g]", p, a.MaxDrop)
	}
}
