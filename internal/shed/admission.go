package shed

import (
	"math/rand"
	"sync"
)

// AdmissionController is the degradation ladder's level-2 mechanism:
// probabilistic rejection at the door, upstream of the per-shard
// strategies. Where DropController reacts to the latency bound θ,
// AdmissionController reacts to aggregate queue *fill* — the fraction of
// total queue capacity in use — and rejects offers with a probability
// that ramps linearly from 0 at the high-water mark to MaxDrop at the
// full-water mark. Above full-water the ladder escalates to level 3 and
// rejects everything, so MaxDrop < 1 keeps a trickle of admissions
// flowing for the EWMA signal to recover on.
//
// AdmissionController is safe for concurrent use: Offer runs on every
// producer goroutine.
type AdmissionController struct {
	// High is the queue-fill fraction where rejection starts.
	High float64
	// Full is the fill fraction where rejection probability reaches
	// MaxDrop (and the ladder typically moves to outright rejection).
	Full float64
	// MaxDrop caps the rejection probability at Full.
	MaxDrop float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewAdmissionController returns a controller ramping rejection between
// the high and full fill marks, with the standard 0.9 probability cap.
func NewAdmissionController(high, full float64, seed int64) *AdmissionController {
	if full <= high {
		full = high + 0.1
	}
	return &AdmissionController{
		High:    high,
		Full:    full,
		MaxDrop: 0.9,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Admit decides one offer given the current aggregate queue fill in
// [0,1]. It returns false with probability proportional to how far fill
// has penetrated the (High, Full) band.
func (a *AdmissionController) Admit(fill float64) bool {
	p := a.DropProbability(fill)
	if p <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rng.Float64() >= p
}

// DropProbability returns the rejection probability for a given fill.
func (a *AdmissionController) DropProbability(fill float64) float64 {
	if fill <= a.High {
		return 0
	}
	p := (fill - a.High) / (a.Full - a.High) * a.MaxDrop
	if p > a.MaxDrop {
		p = a.MaxDrop
	}
	return p
}
