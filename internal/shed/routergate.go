package shed

import "sync/atomic"

// RouterAdmission is the cluster ingest tier's admission door. A
// healthy cluster never consults it — routing and the per-runtime
// degradation ladder handle load. When the cluster is DEGRADED (a peer
// declared dead or quarantined), the survivors absorb the dead node's
// slots on top of their own, and waiting for each runtime's ladder to
// saturate means the extra load is already sitting in shard queues,
// inflating the latency bound θ for every tenant. RouterAdmission
// starts probabilistic rejection earlier and at the router — before a
// forwarded or local pair costs a queue slot — using the same
// fill-driven controller as the runtime's LevelAdmission door, with
// lower thresholds because degraded capacity is known, not suspected.
type RouterAdmission struct {
	ac       *AdmissionController
	degraded atomic.Bool
	dropped  atomic.Uint64
}

// Degraded-mode thresholds: begin shedding at 50% aggregate fill and
// refuse everything at 90%, versus the runtime ladder's 0.75/0.95 —
// the router sheds FIRST so survivor queues keep headroom for the
// failed-over slots' replay burst.
const (
	routerHighWater = 0.5
	routerFullWater = 0.9
)

// NewRouterAdmission builds the gate; seed fixes the deterministic
// sampling sequence (tests pass a constant).
func NewRouterAdmission(seed int64) *RouterAdmission {
	return &RouterAdmission{ac: NewAdmissionController(routerHighWater, routerFullWater, seed)}
}

// SetDegraded flips degraded mode; when false, Admit is uncondition-
// ally true.
func (ra *RouterAdmission) SetDegraded(d bool) { ra.degraded.Store(d) }

// Degraded reports the current mode.
func (ra *RouterAdmission) Degraded() bool { return ra.degraded.Load() }

// Admit decides one (event, query) pair given the local aggregate
// queue fill in [0,1]. Refusals are counted (Dropped).
func (ra *RouterAdmission) Admit(fill float64) bool {
	if !ra.degraded.Load() {
		return true
	}
	if ra.ac.Admit(fill) {
		return true
	}
	ra.dropped.Add(1)
	return false
}

// Dropped returns the total pairs refused by this gate.
func (ra *RouterAdmission) Dropped() uint64 { return ra.dropped.Load() }
