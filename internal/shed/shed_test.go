package shed

import (
	"math"
	"math/rand"
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func TestNoneStrategy(t *testing.T) {
	var s Strategy = None{}
	if s.Name() != "None" {
		t.Error("name")
	}
	m := nfa.MustCompile(query.Q1("8ms"))
	s.Attach(engine.New(m, engine.DefaultCosts()))
	if !s.AdmitEvent(event.New("A", 0, nil), 0) {
		t.Error("None must admit everything")
	}
	if s.Control(0, 1<<40) != 0 {
		t.Error("None must not charge work")
	}
}

func TestDropControllerTracksViolation(t *testing.T) {
	c := NewDropController(100)
	if c.Rate() != 0 {
		t.Fatal("initial rate must be 0")
	}
	// Sustained violation at 2x the bound drives the rate up.
	for i := 0; i < 20; i++ {
		c.Update(200)
	}
	if c.Rate() < 0.3 || c.Rate() > 0.98 {
		t.Errorf("violated rate = %v", c.Rate())
	}
	high := c.Rate()
	// Recovery decays the rate.
	for i := 0; i < 50; i++ {
		c.Update(50)
	}
	if c.Rate() >= high/2 {
		t.Errorf("rate did not decay: %v -> %v", high, c.Rate())
	}
	for i := 0; i < 200; i++ {
		c.Update(50)
	}
	if c.Rate() != 0 {
		t.Errorf("rate should bottom out at 0, got %v", c.Rate())
	}
}

func TestDropControllerCapped(t *testing.T) {
	c := NewDropController(1)
	for i := 0; i < 100; i++ {
		c.Update(1 << 40)
	}
	if c.Rate() > 0.98 {
		t.Errorf("rate = %v exceeds cap", c.Rate())
	}
}

func TestRatioTracker(t *testing.T) {
	r := RatioTracker{Target: 0.25}
	r.Seen(100)
	if d := r.Deficit(); d != 25 {
		t.Errorf("deficit = %d, want 25", d)
	}
	r.Shed(20)
	if d := r.Deficit(); d != 5 {
		t.Errorf("deficit = %d, want 5", d)
	}
	r.Shed(10)
	if d := r.Deficit(); d != 0 {
		t.Errorf("overshoot deficit = %d, want 0", d)
	}
	if a := r.Achieved(); a != 0.30 {
		t.Errorf("achieved = %v", a)
	}
	var empty RatioTracker
	if empty.Achieved() != 0 {
		t.Error("empty achieved must be 0")
	}
}

func TestUtilityThresholdHitsRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, target := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		u := NewUtilityThreshold(target, 256, 1)
		shed := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if u.ShouldShed(rng.Float64()) {
				shed++
			}
		}
		got := float64(shed) / n
		if math.Abs(got-target) > 0.05 {
			t.Errorf("target %.2f: achieved %.3f", target, got)
		}
	}
}

func TestUtilityThresholdPrefersLowUtility(t *testing.T) {
	// Bimodal utilities: half are 0, half are 1; at a 50% target the zero
	// half should absorb essentially all shedding.
	u := NewUtilityThreshold(0.5, 256, 2)
	rng := rand.New(rand.NewSource(3))
	var shedLow, shedHigh, low, high int
	for i := 0; i < 20000; i++ {
		if rng.Float64() < 0.5 {
			low++
			if u.ShouldShed(0) {
				shedLow++
			}
		} else {
			high++
			if u.ShouldShed(1) {
				shedHigh++
			}
		}
	}
	lowRate := float64(shedLow) / float64(low)
	highRate := float64(shedHigh) / float64(high)
	if lowRate < 0.85 {
		t.Errorf("low-utility shed rate = %.3f, want high", lowRate)
	}
	if highRate > 0.15 {
		t.Errorf("high-utility shed rate = %.3f, want low", highRate)
	}
}

func TestUtilityThresholdMostlyTies(t *testing.T) {
	// All utilities identical: the achieved ratio must still converge.
	u := NewUtilityThreshold(0.4, 128, 4)
	shed := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if u.ShouldShed(3.14) {
			shed++
		}
	}
	got := float64(shed) / n
	if math.Abs(got-0.4) > 0.05 {
		t.Errorf("tie-heavy achieved = %.3f, want ~0.4", got)
	}
	if math.Abs(u.Achieved()-got) > 1e-9 {
		t.Error("Achieved() disagrees with observed")
	}
}
