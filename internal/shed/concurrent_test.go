package shed

import (
	"sync"
	"testing"

	"cepshed/internal/event"
)

// TestDropControllerConcurrent hammers Update and Rate from parallel
// goroutines — the access pattern of the sharded wall-clock runtime,
// where a monitor reads the rate while a worker feeds latencies. Run
// under -race (the Makefile check target does); the assertions only
// verify the controller still converges sensibly under contention.
func TestDropControllerConcurrent(t *testing.T) {
	c := NewDropController(100)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(over bool) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if over {
					c.Update(400) // 75% violation
				} else {
					_ = c.Rate()
				}
			}
		}(g%2 == 0)
	}
	wg.Wait()
	if r := c.Rate(); r <= 0 || r > 0.98 {
		t.Errorf("rate after sustained violation = %v, want in (0, 0.98]", r)
	}
	for i := 0; i < 200; i++ {
		c.Update(10) // well under the bound: decay to zero
	}
	if r := c.Rate(); r != 0 {
		t.Errorf("rate after recovery = %v, want 0", r)
	}
}

// TestDropControllerWallClockUnits checks the controller is agnostic to
// the time domain: wall-clock nanoseconds map onto event.Time 1:1, which
// is how internal/runtime drives it.
func TestDropControllerWallClockUnits(t *testing.T) {
	c := NewDropController(event.Time(2_000_000)) // 2ms wall bound
	for i := 0; i < 100; i++ {
		c.Update(event.Time(8_000_000)) // sustained 8ms observed
	}
	if r := c.Rate(); r < 0.5 {
		t.Errorf("rate under 4x violation = %v, want >= 0.5", r)
	}
}
