// Package shed defines the load-shedding strategy interface shared by the
// hybrid approach (internal/core) and the baseline strategies
// (internal/baseline), plus the small controllers they have in common.
//
// A strategy plugs into the processing loop at two points, mirroring the
// paper's two shedding functions (§III-C): AdmitEvent is ρI, deciding per
// input event whether to process it at all, and Control runs after each
// processed event with the current smoothed latency, where ρS may remove
// partial matches through the engine.
package shed

import (
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/vclock"
)

// Strategy is a load-shedding policy.
type Strategy interface {
	// Name identifies the strategy in experiment output (RI, SI, RS, SS,
	// Hybrid, HyI, HyS, None).
	Name() string
	// Attach installs the strategy's hooks on the engine (e.g. OnCreate
	// classification). Called once before processing starts.
	Attach(en *engine.Engine)
	// AdmitEvent is the input-based shedding function ρI: returning false
	// discards the event unprocessed.
	AdmitEvent(e *event.Event, now event.Time) bool
	// Observe lets the strategy see the result of a processed event
	// (for online adaptation of cost estimates).
	Observe(res *engine.Result, now event.Time)
	// Control runs after each event with the current smoothed latency
	// μ(k); state-based shedding (ρS) happens here. It returns the
	// virtual work spent on shedding decisions.
	Control(now event.Time, lat event.Time) vclock.Cost
}

// DurableStrategy is implemented by strategies whose learned state is
// worth carrying across a restart (internal/checkpoint stores the blob
// inside shard snapshots). MarshalState renders the state opaquely;
// UnmarshalState applies a previously marshalled blob, returning an
// error — not panicking — when the blob is incompatible, in which case
// the caller keeps the freshly initialised state.
type DurableStrategy interface {
	Strategy
	MarshalState() ([]byte, error)
	UnmarshalState([]byte) error
}

// PlanStats are the shed-decision-path counters a strategy can expose:
// how shedding plans are being produced (planner goroutine or in-line)
// and how much the decision path pauses the worker. Counters are
// cumulative; *Ns fields are gauges in nanoseconds.
type PlanStats struct {
	// PlansBuilt / PlansApplied / PlansStale count planner products:
	// built by the planner goroutine, applied by the worker, and
	// discarded because the partial-match population they were built for
	// had been retired (drop-epoch fence). All zero when planning is
	// synchronous.
	PlansBuilt   uint64
	PlansApplied uint64
	PlansStale   uint64
	// BuildNsLast / BuildNsMax time the planner's selection + table
	// compilation off the hot path.
	BuildNsLast int64
	BuildNsMax  int64
	// StallNsMax is the worst worker-side pause a shedding trigger
	// caused (the whole select+drop+compile for a synchronous trigger;
	// only snapshot/launch/apply for an async one).
	StallNsMax int64
}

// PlanReporter is implemented by strategies that report shed-planner
// counters. PlanStats must be safe to call from any goroutine — the
// runtime reads it from stats/metrics threads while the worker runs.
type PlanReporter interface {
	PlanStats() PlanStats
}

// None is the no-shedding strategy used for ground-truth runs.
type None struct{}

// Name returns "None".
func (None) Name() string { return "None" }

// Attach is a no-op.
func (None) Attach(*engine.Engine) {}

// AdmitEvent admits everything.
func (None) AdmitEvent(*event.Event, event.Time) bool { return true }

// Observe is a no-op.
func (None) Observe(*engine.Result, event.Time) {}

// Control sheds nothing.
func (None) Control(event.Time, event.Time) vclock.Cost { return 0 }

var _ Strategy = None{}
