package shed

import (
	"math/rand"
	"sort"
	"sync"

	"cepshed/internal/event"
)

// DropController converts latency-bound violations into a drop
// probability for input-based strategies (RI, SI): when the smoothed
// latency exceeds the bound, the drop rate tracks the relative violation
// (μ−θ)/μ; when latency recovers, the rate decays geometrically.
//
// DropController is safe for concurrent use: in the sharded wall-clock
// runtime (internal/runtime) a monitoring goroutine may read Rate while
// a shard worker feeds Update. Bound/Gain/Decay must not be mutated
// after the controller is shared.
type DropController struct {
	// Bound is the latency bound θ.
	Bound event.Time
	// Gain scales how aggressively the rate follows the violation.
	Gain float64
	// Decay is the multiplicative cool-down applied when under the bound.
	Decay float64

	mu   sync.Mutex
	rate float64
}

// NewDropController returns a controller with the standard gains.
func NewDropController(bound event.Time) *DropController {
	return &DropController{Bound: bound, Gain: 0.6, Decay: 0.9}
}

// Update advances the controller with the latest smoothed latency.
func (c *DropController) Update(lat event.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lat > c.Bound && lat > 0 {
		v := float64(lat-c.Bound) / float64(lat)
		c.rate = c.rate + c.Gain*(v-c.rate*0.5)
		if c.rate > 0.98 {
			c.rate = 0.98
		}
		if c.rate < 0 {
			c.rate = 0
		}
	} else {
		c.rate *= c.Decay
		if c.rate < 1e-4 {
			c.rate = 0
		}
	}
}

// Rate returns the current drop probability.
func (c *DropController) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// RatioTracker drives fixed-ratio shedding (Fig 6): it tracks how many
// items were seen and shed and reports the deficit against a target
// ratio.
type RatioTracker struct {
	// Target is the desired shed fraction in [0,1].
	Target float64

	seen uint64
	shed uint64
}

// Seen records n new items.
func (r *RatioTracker) Seen(n int) { r.seen += uint64(n) }

// Shed records n shed items.
func (r *RatioTracker) Shed(n int) { r.shed += uint64(n) }

// Deficit returns how many more items must be shed to reach the target.
func (r *RatioTracker) Deficit() int {
	want := int64(r.Target * float64(r.seen))
	d := want - int64(r.shed)
	if d < 0 {
		return 0
	}
	return int(d)
}

// Achieved returns the realized shed ratio.
func (r *RatioTracker) Achieved() float64 {
	if r.seen == 0 {
		return 0
	}
	return float64(r.shed) / float64(r.seen)
}

// UtilityThreshold drops the lowest-utility fraction of a stream of
// items: it maintains a sliding reservoir of recent utilities and sheds
// an item when its utility falls below the target quantile, with
// probabilistic tie-breaking so the achieved ratio converges to the
// target even for heavily tied (e.g. mostly-zero) utility distributions.
type UtilityThreshold struct {
	// Target is the desired shed fraction.
	Target float64

	rng     *rand.Rand
	window  []float64
	next    int
	filled  bool
	sorted  []float64
	stale   int
	tracker RatioTracker
}

// NewUtilityThreshold builds a threshold shedder over a reservoir of the
// given size.
func NewUtilityThreshold(target float64, size int, seed int64) *UtilityThreshold {
	if size < 16 {
		size = 16
	}
	return &UtilityThreshold{
		Target:  target,
		rng:     rand.New(rand.NewSource(seed)),
		window:  make([]float64, size),
		sorted:  make([]float64, 0, size),
		tracker: RatioTracker{Target: target},
	}
}

// ShouldShed records the utility and decides whether to shed the item.
func (u *UtilityThreshold) ShouldShed(utility float64) bool {
	u.window[u.next] = utility
	u.next++
	if u.next == len(u.window) {
		u.next = 0
		u.filled = true
	}
	u.stale++
	u.tracker.Seen(1)

	n := len(u.window)
	if !u.filled {
		n = u.next
	}
	if n < 8 {
		// Warm-up: shed uniformly at the target rate.
		shed := u.rng.Float64() < u.Target
		if shed {
			u.tracker.Shed(1)
		}
		return shed
	}
	if u.stale >= 32 || len(u.sorted) == 0 {
		u.sorted = u.sorted[:0]
		u.sorted = append(u.sorted, u.window[:n]...)
		sort.Float64s(u.sorted)
		u.stale = 0
	}
	idx := int(u.Target * float64(len(u.sorted)))
	if idx >= len(u.sorted) {
		idx = len(u.sorted) - 1
	}
	thr := u.sorted[idx]
	var shed bool
	switch {
	case utility < thr:
		shed = true
	case utility == thr:
		// Shed ties with the probability that corrects the realized ratio
		// toward the target.
		below := sort.SearchFloat64s(u.sorted, thr)
		ties := sort.Search(len(u.sorted), func(i int) bool { return u.sorted[i] > thr }) - below
		if ties > 0 {
			need := u.Target*float64(len(u.sorted)) - float64(below)
			p := need / float64(ties)
			shed = u.rng.Float64() < p
		}
	}
	// Feedback nudge: correct drift against the long-run target.
	if ach := u.tracker.Achieved(); ach < u.Target-0.02 && utility <= thr {
		shed = true
	} else if ach := u.tracker.Achieved(); ach > u.Target+0.02 && shed && utility >= thr {
		shed = false
	}
	if shed {
		u.tracker.Shed(1)
	}
	return shed
}

// Achieved returns the realized shed ratio so far.
func (u *UtilityThreshold) Achieved() float64 { return u.tracker.Achieved() }
