package shed

import "sync/atomic"

// DropGate is a lock-free per-class drop gate: a controller publishes
// an immutable class → drop-probability table with Set, and the data
// path consults it with one atomic pointer load per event. It is the
// imposition mechanism of the cross-query arbiter — per-(query, event
// type) fractional drops — but carries no policy itself. The zero
// value admits everything at the cost of a single nil check.
type DropGate struct {
	probs atomic.Pointer[map[string]float64]
	rng   atomic.Uint64
}

// Set publishes a new table; nil or empty clears the gate back to the
// admit-everything fast path. The map must not be mutated after Set.
func (g *DropGate) Set(probs map[string]float64) {
	if len(probs) == 0 {
		g.probs.Store(nil)
		return
	}
	g.probs.Store(&probs)
}

// Probs returns the current table — shared and read-only — or nil when
// the gate is clear.
func (g *DropGate) Probs() map[string]float64 {
	if p := g.probs.Load(); p != nil {
		return *p
	}
	return nil
}

// ShouldDrop flips the gate's coin for one event of the class. Safe
// for concurrent callers; classes absent from the table never drop.
func (g *DropGate) ShouldDrop(class string) bool {
	p := g.probs.Load()
	if p == nil {
		return false
	}
	pr := (*p)[class]
	if pr <= 0 {
		return false
	}
	if pr >= 1 {
		return true
	}
	return g.rand01() < pr
}

// rand01 is a splitmix64 stream over an atomic counter: cheap, lock
// free, and statistically far better than a drop coin needs.
func (g *DropGate) rand01() float64 {
	x := g.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
