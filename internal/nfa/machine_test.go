package nfa

import (
	"testing"

	"cepshed/internal/query"
)

func TestCompileQ1(t *testing.T) {
	m := MustCompile(query.Q1("8ms"))
	if m.NumStates() != 3 {
		t.Fatalf("states = %d", m.NumStates())
	}
	// a.ID=b.ID binds at state 1; the other two at state 2.
	if len(m.States[0].Bind) != 0 || len(m.States[1].Bind) != 1 || len(m.States[2].Bind) != 2 {
		t.Errorf("bind counts = %d,%d,%d",
			len(m.States[0].Bind), len(m.States[1].Bind), len(m.States[2].Bind))
	}
	if !m.Final(2) || m.Final(1) {
		t.Error("finality wrong")
	}
	if got := m.IntermediateStates(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("intermediate states = %v", got)
	}
}

func TestCompileKleeneIncremental(t *testing.T) {
	m := MustCompile(query.HotPaths("1h", 4, 0))
	if m.NumStates() != 2 {
		t.Fatalf("states = %d", m.NumStates())
	}
	if len(m.States[0].Incremental) != 2 {
		t.Errorf("incremental preds = %d", len(m.States[0].Incremental))
	}
	if len(m.States[1].Bind) != 2 {
		t.Errorf("bind preds at b = %d", len(m.States[1].Bind))
	}
	if m.States[0].Comp.MinReps != 4 {
		t.Errorf("min reps = %d", m.States[0].Comp.MinReps)
	}
}

func TestCompileNegationGuards(t *testing.T) {
	m := MustCompile(query.Q4("8ms"))
	// Pattern: A, NOT B, C, D -> 3 states, guard attached to state 1 (C).
	if m.NumStates() != 3 {
		t.Fatalf("states = %d", m.NumStates())
	}
	if len(m.States[1].Guards) != 1 {
		t.Fatalf("guards at state 1 = %d", len(m.States[1].Guards))
	}
	g := m.States[1].Guards[0]
	if g.Comp.Type != "B" || len(g.Preds) != 1 {
		t.Errorf("guard = %+v with %d preds", g.Comp, len(g.Preds))
	}
	if len(m.States[0].Guards) != 0 || len(m.States[2].Guards) != 0 {
		t.Error("guards leaked to other states")
	}
}

func TestCompileTrailingKleeneIntermediate(t *testing.T) {
	m := MustCompile(query.MustParse(
		`PATTERN SEQ(A a, B+ b[]) WHERE a.ID = b[i].ID WITHIN 1ms`))
	got := m.IntermediateStates()
	// State 0 (waiting b) and state 1 (open trailing Kleene).
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("intermediate states = %v", got)
	}
}

func TestCompileCompletionPreds(t *testing.T) {
	m := MustCompile(query.MustParse(
		`PATTERN SEQ(A a, A+ b[], B c) WHERE a.ID = b[i].ID AND AVG(b[].V) > a.V WITHIN 1ms`))
	if len(m.Completion) != 1 {
		t.Errorf("completion preds = %d", len(m.Completion))
	}
}

func TestCompileClusterQuery(t *testing.T) {
	m := MustCompile(query.ClusterTasks("1h"))
	if m.NumStates() != 7 {
		t.Fatalf("states = %d", m.NumStates())
	}
	// Every non-initial state carries at least one bind predicate.
	for s := 1; s < m.NumStates(); s++ {
		if len(m.States[s].Bind) == 0 {
			t.Errorf("state %d has no bind predicates", s)
		}
	}
}
