package nfa

import (
	"fmt"
	"strings"
)

// Explain renders the compiled automaton as a human-readable plan: one
// block per state with its event type, Kleene bounds, the predicates
// evaluated at each moment (bind / incremental / completion), and the
// negation guards active while waiting for the state.
func (m *Machine) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", m.Query)
	w := m.Query.Window
	if w.Count > 0 {
		fmt.Fprintf(&b, "window: %d events\n", w.Count)
	} else {
		fmt.Fprintf(&b, "window: %s\n", w.Duration)
	}
	for s := range m.States {
		st := &m.States[s]
		fmt.Fprintf(&b, "state %d: %s %s", s, st.Comp.Type, st.Comp.Var)
		if st.Comp.Kleene {
			if st.Comp.MaxReps > 0 {
				fmt.Fprintf(&b, " (kleene {%d,%d})", st.Comp.MinReps, st.Comp.MaxReps)
			} else {
				fmt.Fprintf(&b, " (kleene {%d,})", st.Comp.MinReps)
			}
		}
		if m.Final(s) {
			b.WriteString(" [final]")
		}
		b.WriteByte('\n')
		for _, g := range st.Guards {
			fmt.Fprintf(&b, "  guard: NOT %s %s", g.Comp.Type, g.Comp.Var)
			if len(g.Preds) > 0 {
				b.WriteString(" when ")
				for i, p := range g.Preds {
					if i > 0 {
						b.WriteString(" AND ")
					}
					b.WriteString(p.String())
				}
			}
			b.WriteByte('\n')
		}
		for _, p := range st.Incremental {
			fmt.Fprintf(&b, "  on each repetition: %s\n", p)
		}
		for _, p := range st.Bind {
			fmt.Fprintf(&b, "  on bind: %s\n", p)
		}
	}
	for _, p := range m.Completion {
		fmt.Fprintf(&b, "on completion: %s\n", p)
	}
	return b.String()
}
