// Package nfa compiles an analyzed query into the automaton view the
// engine executes: one state per positive pattern component, with bind
// and incremental predicates attached to the state's edges and negation
// guards attached to the gaps between states (cf. Fig 2 of the paper).
package nfa

import (
	"fmt"

	"cepshed/internal/query"
)

// Machine is the compiled automaton for one query.
type Machine struct {
	// Query is the source query.
	Query *query.Query
	// States are the positive components in pattern order. A partial
	// match in "state s" has bound states 0..s-1 and waits to bind (or
	// extend) state s.
	States []State
	// Completion holds predicates checked when a full match is emitted.
	Completion []*query.Predicate
	// CompletionC is Completion compiled into closure chains.
	CompletionC []query.CompiledPredicate
	// PosState maps a pattern position (Component.Pos) to its automaton
	// state index, or -1 for negated components. It replaces the linear
	// position scan on every field-reference resolution in the hot path.
	PosState []int
}

// State is one automaton state.
type State struct {
	// Comp is the positive pattern component bound at this state.
	Comp *query.Component
	// Bind predicates run when this state binds an event (for Kleene
	// components: when the match proceeds past them, anchored here).
	Bind []*query.Predicate
	// Incremental predicates run on every Kleene take (empty for
	// non-Kleene components).
	Incremental []*query.Predicate
	// Guards are the negated components located between the previous
	// positive component and this one. A guard is active while a partial
	// match waits to bind this state; a guard-satisfying event kills the
	// match.
	Guards []Guard

	// BindC and IncrementalC are the compiled forms of Bind and
	// Incremental (built once at Compile time; the engine evaluates only
	// these).
	BindC        []query.CompiledPredicate
	IncrementalC []query.CompiledPredicate
}

// Guard is a negation guard.
type Guard struct {
	Comp  *query.Component
	Preds []*query.Predicate
	// PredsC is the compiled form of Preds.
	PredsC []query.CompiledPredicate
}

// Compile builds the machine for q.
func Compile(q *query.Query) (*Machine, error) {
	m := &Machine{Query: q, Completion: q.CompletionPredicates()}
	m.CompletionC = query.CompilePredicates(m.Completion)
	m.PosState = make([]int, len(q.Pattern))
	var pending []Guard
	for i := range q.Pattern {
		c := &q.Pattern[i]
		if c.Negated {
			m.PosState[c.Pos] = -1
			preds := q.NegationPredicates(c.Pos)
			pending = append(pending, Guard{Comp: c, Preds: preds, PredsC: query.CompilePredicates(preds)})
			continue
		}
		bind, inc := q.PredicatesAt(c.Pos)
		m.PosState[c.Pos] = len(m.States)
		m.States = append(m.States, State{
			Comp:         c,
			Bind:         bind,
			Incremental:  inc,
			Guards:       pending,
			BindC:        query.CompilePredicates(bind),
			IncrementalC: query.CompilePredicates(inc),
		})
		pending = nil
	}
	if len(pending) > 0 {
		// analyze() rejects trailing negation, so this is unreachable for
		// parsed queries; guard against hand-built ones.
		return nil, fmt.Errorf("nfa: trailing negated component %s", pending[0].Comp.Var)
	}
	if len(m.States) == 0 {
		return nil, fmt.Errorf("nfa: no positive components")
	}
	return m, nil
}

// MustCompile compiles and panics on error.
func MustCompile(q *query.Query) *Machine {
	m, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return m
}

// NumStates returns the number of automaton states.
func (m *Machine) NumStates() int { return len(m.States) }

// Final reports whether s is the last state.
func (m *Machine) Final(s int) bool { return s == len(m.States)-1 }

// IntermediateStates returns the state indices in which live partial
// matches can rest. A partial match "in state s" has bound state s as its
// highest component: states 0..n-2 always host live matches, and the
// final state n-1 does too when it is Kleene (repetitions accumulate
// there while matches keep being emitted). The cost model maintains one
// class set per intermediate state (§V-B: "one classifier per state").
func (m *Machine) IntermediateStates() []int {
	n := len(m.States)
	var out []int
	for s := 0; s < n-1; s++ {
		out = append(out, s)
	}
	if m.States[n-1].Comp.Kleene {
		out = append(out, n-1)
	}
	return out
}
