package nfa

import (
	"strings"
	"testing"

	"cepshed/internal/query"
)

func TestExplainQ1(t *testing.T) {
	out := MustCompile(query.Q1("8ms")).Explain()
	for _, frag := range []string{
		"window: 8ms",
		"state 0: A a",
		"state 1: B b",
		"state 2: C c [final]",
		"on bind: a.ID = b.ID",
		"on bind: (a.V+b.V) = c.V",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
}

func TestExplainKleeneAndGuards(t *testing.T) {
	out := MustCompile(query.HotPaths("1h", 4, 8)).Explain()
	if !strings.Contains(out, "kleene {4,8}") {
		t.Errorf("Kleene bounds missing:\n%s", out)
	}
	if !strings.Contains(out, "on each repetition:") {
		t.Errorf("incremental predicates missing:\n%s", out)
	}
	out = MustCompile(query.Q4("8ms")).Explain()
	if !strings.Contains(out, "guard: NOT B b when a.ID = b.ID") {
		t.Errorf("guard missing:\n%s", out)
	}
}

func TestExplainCompletionAndCountWindow(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE AVG(b[].V) > a.V WITHIN 500 EVENTS`)
	out := MustCompile(q).Explain()
	if !strings.Contains(out, "on completion: AVG(b[].V) > a.V") {
		t.Errorf("completion predicate missing:\n%s", out)
	}
	if !strings.Contains(out, "window: 500 events") {
		t.Errorf("count window missing:\n%s", out)
	}
	if !strings.Contains(out, "kleene {1,}") {
		t.Errorf("open kleene missing:\n%s", out)
	}
}
