package core

import (
	"testing"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
)

// feedAsync drives the strategy like the runtime does: admit, process,
// Control with the given smoothed latency.
func feedAsync(h *Hybrid, en *engine.Engine, s event.Stream, lat event.Time) {
	for _, e := range s {
		if !h.AdmitEvent(e, e.Time) {
			continue
		}
		en.Process(e)
		h.Control(e.Time, lat)
	}
}

// driveLaunch issues violated Control calls until the incremental
// population snapshot completes and the build is handed to the planner
// goroutine (one bounded chunk of the class-bucket walk per call).
func driveLaunch(t *testing.T, h *Hybrid) {
	t.Helper()
	for i := 0; i < 100; i++ {
		h.Control(h.now, event.Millisecond)
		if !h.snapping {
			return
		}
	}
	t.Fatal("snapshot accumulation did not complete")
}

// driveDrop issues Control calls until the applied plan's incremental
// state drop has retired its whole shedding set.
func driveDrop(t *testing.T, h *Hybrid) {
	t.Helper()
	for i := 0; i < 1000 && h.dropping != nil; i++ {
		h.Control(h.now, event.Millisecond)
	}
	if h.dropping != nil {
		t.Fatal("incremental drop did not complete")
	}
}

// waitPlans polls until the planner has built at least n plans.
func waitPlans(t *testing.T, h *Hybrid, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.PlanStats().PlansBuilt < n {
		if time.Now().After(deadline) {
			t.Fatalf("planner built %d plans, want >= %d", h.PlanStats().PlansBuilt, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncPlannerLifecycle drives the async loop one Control call at a
// time: a bound violation launches a planner build off the worker; the
// next Control applies the finished plan — partial matches drop, the
// compiled admission filter activates — and the counters record one
// applied, zero stale.
func TestAsyncPlannerLifecycle(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 1})
	h := NewHybrid(model, Config{Bound: event.Microsecond, DelayEvents: 10, AsyncPlan: true})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	live := gen.DS1(gen.DS1Config{Events: 2000, Seed: 21, InterArrival: testIA})

	// Build population without triggering (latency under the bound).
	feedAsync(h, en, live[:600], 0)
	if got := h.PlanStats(); got.PlansBuilt != 0 || h.InputActive() {
		t.Fatalf("planner ran under the bound: %+v inputActive=%v", got, h.InputActive())
	}

	// Violated Controls accumulate the snapshot chunk by chunk; the one
	// that completes it launches a build, and the worker keeps going.
	driveLaunch(t, h)
	waitPlans(t, h, 1)
	if got := h.PlanStats(); got.PlansApplied != 0 || got.PlansStale != 0 {
		t.Fatalf("plan consumed before any further Control ran: %+v", got)
	}

	// The next Control applies it (input filter immediately, state drop
	// in bounded chunks across further calls).
	before := en.Stats().DroppedPMs
	h.Control(h.now, event.Millisecond)
	got := h.PlanStats()
	if got.PlansApplied != 1 || got.PlansStale != 0 {
		t.Fatalf("plan not applied: %+v", got)
	}
	if !h.InputActive() || h.table.Load() == nil {
		t.Fatalf("applied plan did not activate the input filter")
	}
	driveDrop(t, h)
	if en.Stats().DroppedPMs <= before {
		t.Fatalf("applied plan dropped nothing: %d -> %d", before, en.Stats().DroppedPMs)
	}
	if got.BuildNsLast <= 0 || got.BuildNsMax < got.BuildNsLast {
		t.Fatalf("build timings not recorded: %+v", got)
	}

	// Back under the bound: input shedding deactivates.
	h.Control(h.now, 0)
	if h.InputActive() {
		t.Fatal("input shedding still active under the bound")
	}
}

// TestAsyncPlannerDiscardsStale pins the drop-epoch fence: a plan built
// for a population that was flushed before the worker could apply it
// must be discarded, not applied to the unrelated new population.
func TestAsyncPlannerDiscardsStale(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 2})
	h := NewHybrid(model, Config{Bound: event.Microsecond, DelayEvents: 10, AsyncPlan: true})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	live := gen.DS1(gen.DS1Config{Events: 2000, Seed: 22, InterArrival: testIA})

	feedAsync(h, en, live[:600], 0)
	driveLaunch(t, h)
	waitPlans(t, h, 1)

	// Retire the population the plan was built for.
	en.Flush()
	before := en.Stats().DroppedPMs

	h.Control(h.now, event.Millisecond)
	got := h.PlanStats()
	if got.PlansStale != 1 || got.PlansApplied != 0 {
		t.Fatalf("stale plan not discarded: %+v", got)
	}
	if en.Stats().DroppedPMs != before {
		t.Fatalf("stale plan dropped matches: %d -> %d", before, en.Stats().DroppedPMs)
	}
	if h.InputActive() {
		t.Fatal("stale plan activated input shedding")
	}

	// The fence clears planInFlight, so after the delay window a fresh
	// violation replans against the new population.
	feedAsync(h, en, live[600:1400], 0)
	driveLaunch(t, h)
	waitPlans(t, h, 2)
	h.Control(h.now, event.Millisecond)
	if got := h.PlanStats(); got.PlansApplied != 1 || got.PlansStale != 1 {
		t.Fatalf("replan after stale discard not applied: %+v", got)
	}
}
