package core

import (
	"fmt"

	"cepshed/internal/checkpoint"
	"cepshed/internal/shed"
)

// This file implements shed.DurableStrategy for Hybrid: the online-
// adapted (contribution, consumption) estimates of every cost-model cell
// survive a restart, so a recovered shard sheds with the knowledge it
// had accumulated instead of reverting to the offline estimates.
//
// Deliberately NOT persisted:
//   - the adapter's streaming sketches: their hash seeds are per-process
//     (maphash), so the partially accumulated epoch cannot be carried
//     over. Losing it costs at most one adaptation epoch of learning.
//   - the classifier, regions, and class frequencies: training is
//     deterministic (seeded), so the restarted shard retrains the exact
//     same structure; only the adapted estimates differ from it.
//   - the current shedding set and input-filter flag: both are derived
//     from live latency within milliseconds of resuming load.

// persistVersion guards the blob layout; bump on incompatible change.
const persistVersion = 1

// MarshalState renders the model's per-cell estimates.
func (h *Hybrid) MarshalState() ([]byte, error) {
	m := h.model
	var e checkpoint.Encoder
	e.Uvarint(persistVersion)
	e.Uvarint(uint64(len(m.states)))
	e.Uvarint(uint64(m.cfg.Slices))
	for _, sm := range m.states {
		e.Uvarint(uint64(sm.k))
		for c := 0; c < sm.k; c++ {
			for sl := 0; sl < m.cfg.Slices; sl++ {
				e.F64(sm.contrib[c][sl])
				e.F64(sm.consume[c][sl])
			}
		}
	}
	return append([]byte(nil), e.Bytes()...), nil
}

// UnmarshalState applies a previously marshalled blob. Any shape
// mismatch — different state count, slice count, or per-state class
// count, i.e. a model trained differently — returns an error and leaves
// the freshly trained estimates in place.
func (h *Hybrid) UnmarshalState(blob []byte) error {
	m := h.model
	d := checkpoint.NewDecoder(blob)
	if v := d.Uvarint(); d.Err() == nil && v != persistVersion {
		return fmt.Errorf("core: strategy state version %d, want %d", v, persistVersion)
	}
	if n := d.Uvarint(); d.Err() == nil && n != uint64(len(m.states)) {
		return fmt.Errorf("core: strategy state has %d states, model has %d", n, len(m.states))
	}
	if s := d.Uvarint(); d.Err() == nil && s != uint64(m.cfg.Slices) {
		return fmt.Errorf("core: strategy state has %d slices, model has %d", s, m.cfg.Slices)
	}
	if d.Err() != nil {
		return d.Err()
	}
	// Decode fully before mutating, so a truncated blob cannot apply half
	// its cells.
	type cell struct {
		state, class, slice int
		contrib, consume    float64
	}
	var cells []cell
	for s, sm := range m.states {
		k := d.Uvarint()
		if d.Err() != nil {
			return d.Err()
		}
		if k != uint64(sm.k) {
			return fmt.Errorf("core: strategy state %d has %d classes, model has %d", s, k, sm.k)
		}
		for c := 0; c < sm.k; c++ {
			for sl := 0; sl < m.cfg.Slices; sl++ {
				cells = append(cells, cell{s, c, sl, d.F64(), d.F64()})
			}
		}
	}
	if d.Err() != nil {
		return d.Err()
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("core: %d trailing bytes in strategy state", d.Remaining())
	}
	for _, c := range cells {
		m.setEstimate(c.state, c.class, c.slice, c.contrib, c.consume)
	}
	return nil
}

var _ shed.DurableStrategy = (*Hybrid)(nil)
