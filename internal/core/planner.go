package core

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// This file is the asynchronous shed planner. The synchronous trigger
// path runs slice/utility estimation plus the covering knapsack — and
// compiles the admission table — on the worker, exactly when the worker
// is CPU-starved. With Config.AsyncPlan the worker's half of a trigger
// shrinks to: snapshot the per-cell populations off the class buckets
// (O(cells)), hand them to a goroutine, and on a later Control call
// apply whatever plan the planner finished — a bucketed drop plus an
// atomic table swap.
//
// Thread-safety inventory: the goroutine receives value-typed plan
// cells (population counts plus estimate snapshots), so it never reads
// the model's online-adapted estimates (the worker's Adapter mutates
// those); CompileAdmitTable reads only model structure that is immutable
// after Train. Plans are fenced by the engine's drop epoch: a plan built
// for a population that has since been dropped, flushed, or restored is
// discarded as stale rather than applied.

// shedPlan is one finished planner product, ready to apply.
type shedPlan struct {
	set   *SheddingSet
	pairs [][2]int    // set.ClassPairs(), precomputed off-thread
	table *AdmitTable // nil in state-only mode
	epoch uint64      // en.DropEpoch() when the population was snapshot
	en    *engine.Engine

	// Incremental-drop state, precomputed off-thread so the per-member
	// predicate on the worker is mask arithmetic instead of a map probe:
	// masks[state*classDim+class] has bit s set iff cell (state, class,
	// slice s) is in the set. nil when a slice index exceeds 63 (then the
	// predicate falls back to the Cells map). cursor is the worker's
	// resume position in the bounded bucket walk.
	masks    []uint64
	classDim int
	cursor   engine.DropCursor
}

// buildDropMasks precomputes the per-(state, class) covered-slice
// bitmasks. Returns nil masks when any slice index does not fit.
func buildDropMasks(ss *SheddingSet) (masks []uint64, classDim int) {
	maxState, maxClass := 0, 0
	for cell := range ss.Cells {
		if cell.slice < 0 || cell.slice > 63 {
			return nil, 0
		}
		if cell.state > maxState {
			maxState = cell.state
		}
		if cell.class > maxClass {
			maxClass = cell.class
		}
	}
	classDim = maxClass + 1
	masks = make([]uint64, (maxState+1)*classDim)
	for cell := range ss.Cells {
		masks[cell.state*classDim+cell.class] |= 1 << uint(cell.slice)
	}
	return masks, classDim
}

// planCounters are the planner's cross-goroutine stats (PlanStats).
type planCounters struct {
	built   atomic.Uint64
	applied atomic.Uint64
	stale   atomic.Uint64

	buildNsLast atomic.Int64
	buildNsMax  atomic.Int64

	// stallNsMax is the worst worker-side pause any shedding trigger
	// caused: select+drop+compile for the sync path; snapshot, launch,
	// and plan application for the async path. The shed-trigger-stall
	// bench gates on the sync/async ratio of this gauge.
	stallNsMax atomic.Int64
}

// asyncDropChunk bounds how many bucket entries one Control call may
// examine while applying a plan incrementally: the chunk size is the
// worker's worst-case drop pause (~80 ns per examined entry, so 256
// entries ≈ 20 µs). A ~4k-entry store still completes within a handful
// of subsequent events; total work is unchanged, only spread thinner.
const asyncDropChunk = 256

// snapChunkEntries bounds how many bucket entries one Control call may
// examine while accumulating the planner's population snapshot — the
// same incremental treatment the drop gets, because on a large store the
// one-shot O(live) snapshot walk IS the worst trigger pause.
const snapChunkEntries = 256

// controlAsync is Control's trigger logic under AsyncPlan.
func (h *Hybrid) controlAsync(lat event.Time, work vclock.Cost) vclock.Cost {
	// Continue an in-progress incremental drop first: bounded chunks per
	// Control call, so retiring a large set never pauses the worker for
	// the whole sweep.
	if h.dropping != nil {
		t0 := time.Now()
		work += h.continueDrop()
		h.noteStall(t0)
	}
	// Then apply a finished plan (even when the bound is satisfied again:
	// the planner already paid for it, and an idle system drops nothing
	// worth keeping — the set still only covers lowest-value cells).
	if p := h.planPending.Swap(nil); p != nil {
		t0 := time.Now()
		if p.en == h.en && p.epoch == h.en.DropEpoch() {
			work += h.beginApply(p)
			h.pstats.applied.Add(1)
		} else {
			h.pstats.stale.Add(1)
			h.planInFlight.Store(false)
		}
		h.noteStall(t0)
	}
	// Advance an in-progress snapshot accumulation regardless of the
	// current latency reading: the violation that started it has been
	// acted on, and an abandoned half-snapshot is pure waste.
	if h.snapping {
		t0 := time.Now()
		h.snapChunk(lat)
		h.noteStall(t0)
		return work
	}
	if lat <= h.cfg.Bound {
		h.inputActive = false
		return work
	}
	if h.sinceShed < h.cfg.DelayEvents {
		return work
	}
	if !h.planInFlight.CompareAndSwap(false, true) {
		return work // a build, an unapplied plan, or a drop is in flight
	}
	// Start accumulating the population snapshot. Restart the delay
	// window now, not at apply: the violation signal that justified this
	// plan has been acted on.
	t0 := time.Now()
	h.snapping = true
	h.snapEpoch = h.en.DropEpoch()
	h.snapCur.Reset()
	h.snapScratch.cc = h.snapScratch.cc[:0]
	h.sinceShed = 0
	h.snapChunk(lat)
	h.noteStall(t0)
	return work
}

// snapChunk advances the planner's population snapshot by one bounded
// chunk of the class-bucket walk; when the walk completes it converts
// the accumulated cells to planCells and hands them to the planner
// goroutine. The plan is stamped with the epoch captured when the
// accumulation STARTED: drops are excluded while it runs (planInFlight
// is held), and if a flush or restore moved the epoch mid-walk the
// half-counted population is abandoned rather than handed to the
// knapsack.
func (h *Hybrid) snapChunk(lat event.Time) {
	model, now, nowSeq := h.model, h.now, h.nowSeq
	cc, done := h.en.ClassCellCountsChunk(model.cfg.Slices, func(st event.Time, sq uint64) int {
		return model.sliceOfStart(st, sq, now, nowSeq)
	}, h.snapScratch.cc, &h.snapCur, snapChunkEntries)
	h.snapScratch.cc = cc
	if !done {
		return
	}
	h.snapping = false
	if h.en.DropEpoch() != h.snapEpoch || len(cc) == 0 {
		h.planInFlight.Store(false)
		return
	}
	cells := h.snapScratch.cells[:0]
	for _, c := range cc {
		contrib, consume := model.Estimate(c.State, c.Class, c.Slice)
		cells = append(cells, planCell{
			state: c.State, class: c.Class, slice: c.Slice,
			count: c.Count, contrib: contrib, consume: consume,
		})
	}
	h.snapScratch.cells = cells
	go h.buildPlan(cells, h.violation(lat), h.snapEpoch, h.en)
}

// beginApply makes a planner-built plan effective: the compiled input
// filter swaps in immediately (one atomic store), the state drop starts
// incrementally. planInFlight stays held until the drop completes, so no
// new plan is built against a population mid-retirement.
func (h *Hybrid) beginApply(p *shedPlan) vclock.Cost {
	h.current = p.set
	h.sinceShed = 0
	h.ShedTriggers++
	work := EstimationWork(p.set.Items)
	if h.cfg.Mode != ModeStateOnly {
		h.table.Store(p.table)
		h.inputActive = true
	}
	if h.cfg.Mode != ModeInputOnly {
		h.dropping = p
		work += h.continueDrop()
	} else {
		h.planInFlight.Store(false)
	}
	return work
}

// continueDrop advances the bounded drop of the plan being applied by
// one asyncDropChunk-entry chunk, resuming at the saved cursor so
// completed buckets are never rescanned. Releases planInFlight once the
// sweep completes.
func (h *Hybrid) continueDrop() vclock.Cost {
	p := h.dropping
	var pred func(*engine.PartialMatch) bool
	if p.masks != nil {
		masks, classDim, model := p.masks, p.classDim, h.model
		now, nowSeq := h.now, h.nowSeq
		pred = func(pm *engine.PartialMatch) bool {
			class := pm.Class
			if class < 0 {
				class = 0
			}
			idx := pm.State()*classDim + class
			if idx >= len(masks) || masks[idx] == 0 {
				return false
			}
			return masks[idx]&(1<<uint(model.SliceOf(pm, now, nowSeq))) != 0
		}
	} else {
		ss := p.set
		pred = func(pm *engine.PartialMatch) bool {
			class := pm.Class
			if class < 0 {
				class = 0
			}
			return ss.Contains(pm.State(), class, h.model.SliceOf(pm, h.now, h.nowSeq))
		}
	}
	_, cost, done := h.en.DropClassesBounded(p.pairs, pred, asyncDropChunk, &p.cursor)
	if done {
		h.dropping = nil
		h.planInFlight.Store(false)
	}
	return cost
}

// buildPlan runs on the planner goroutine: knapsack selection plus
// admission-table compilation, labeled cep_role=shed_planner so profiles
// can prove the selection path never runs on a worker.
func (h *Hybrid) buildPlan(cells []planCell, violation float64, epoch uint64, en *engine.Engine) {
	start := time.Now()
	var plan *shedPlan
	pprof.Do(context.Background(), pprof.Labels("cep_role", "shed_planner"), func(context.Context) {
		ss := selectFromPlanCells(cells, violation, h.cfg.Solver)
		if ss == nil {
			return
		}
		plan = &shedPlan{set: ss, pairs: ss.ClassPairs(), epoch: epoch, en: en}
		plan.masks, plan.classDim = buildDropMasks(ss)
		if h.cfg.Mode != ModeStateOnly {
			plan.table = h.model.CompileAdmitTable(ss)
		}
	})
	if plan == nil {
		h.planInFlight.Store(false)
		return
	}
	d := time.Since(start).Nanoseconds()
	h.pstats.built.Add(1)
	h.pstats.buildNsLast.Store(d)
	casMax(&h.pstats.buildNsMax, d)
	h.planPending.Store(plan)
}

// noteStall folds the elapsed time since t0 into the worker-pause gauge.
func (h *Hybrid) noteStall(t0 time.Time) {
	casMax(&h.pstats.stallNsMax, time.Since(t0).Nanoseconds())
}

func casMax(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PlanStats reports the planner counters; safe from any goroutine.
func (h *Hybrid) PlanStats() shed.PlanStats {
	return shed.PlanStats{
		PlansBuilt:   h.pstats.built.Load(),
		PlansApplied: h.pstats.applied.Load(),
		PlansStale:   h.pstats.stale.Load(),
		BuildNsLast:  h.pstats.buildNsLast.Load(),
		BuildNsMax:   h.pstats.buildNsMax.Load(),
		StallNsMax:   h.pstats.stallNsMax.Load(),
	}
}

var _ shed.PlanReporter = (*Hybrid)(nil)
