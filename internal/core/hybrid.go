package core

import (
	"sort"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/knapsack"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// Mode selects which shedding functions the strategy applies.
type Mode uint8

const (
	// ModeHybrid applies both ρS and ρI from one shedding set (§IV-C).
	ModeHybrid Mode = iota
	// ModeStateOnly applies only state-based shedding (HyS).
	ModeStateOnly
	// ModeInputOnly applies only input-based shedding (HyI).
	ModeInputOnly
)

// Config configures the hybrid shedding strategy.
type Config struct {
	// Bound is the latency bound θ.
	Bound event.Time
	// Mode selects hybrid, state-only, or input-only operation.
	Mode Mode
	// DelayEvents is j: the minimum number of processed events between
	// consecutive state-shedding triggers, so the effect of a shed can
	// materialize in the smoothed latency before re-triggering (§IV-C).
	// Default 1000, matching the latency smoothing window; shorter delays
	// re-shed against a stale signal and cumulatively over-shed.
	DelayEvents int
	// Solver selects the knapsack algorithm (§V-C). Exact DP by default.
	Solver knapsack.Solver
	// Adapt enables online adaptation of the cost model (§V-B).
	Adapt bool
}

func (c Config) withDefaults() Config {
	if c.DelayEvents <= 0 {
		c.DelayEvents = 1000
	}
	return c
}

// Hybrid is the paper's shedding strategy: one cost model drives both
// state-based shedding (discarding partial matches from the shedding set)
// and input-based shedding (a class-predicate filter over raw events that
// stays active until the latency bound is met again).
type Hybrid struct {
	model   *Model
	cfg     Config
	adapter *Adapter
	en      *engine.Engine

	current     *SheddingSet
	inputActive bool
	sinceShed   int

	now    event.Time
	nowSeq uint64

	// Stats
	ShedTriggers  uint64
	ShedEventsCnt uint64
}

// NewHybrid builds the strategy over a trained model.
func NewHybrid(model *Model, cfg Config) *Hybrid {
	cfg = cfg.withDefaults()
	h := &Hybrid{model: model, cfg: cfg, sinceShed: cfg.DelayEvents}
	if cfg.Adapt {
		h.adapter = NewAdapter(model)
	}
	return h
}

// Name identifies the strategy variant.
func (h *Hybrid) Name() string {
	switch h.cfg.Mode {
	case ModeStateOnly:
		return "HyS"
	case ModeInputOnly:
		return "HyI"
	default:
		return "Hybrid"
	}
}

// Attach installs the classification hook: every new partial match is
// classified by its state's decision tree immediately on creation (§V-B).
func (h *Hybrid) Attach(en *engine.Engine) {
	h.en = en
	prev := en.OnCreate
	en.OnCreate = func(pm *engine.PartialMatch) {
		pm.Class = h.model.Classify(pm)
		if h.adapter != nil {
			h.adapter.OnCreate(pm, h.now, h.nowSeq)
		}
		if prev != nil {
			prev(pm)
		}
	}
}

// AdmitEvent implements ρI: while input shedding is active, an event is
// discarded when, for every state it could extend into, EVERY class
// compatible with the event's own attribute values lies in the shedding
// set — i.e. the class predicates prove the event worthless. Events of
// types the pattern does not use are never filtered here (the engine
// discards them for the base ingest cost anyway).
func (h *Hybrid) AdmitEvent(e *event.Event, now event.Time) bool {
	h.now = e.Time
	h.nowSeq = e.Seq
	if !h.inputActive || h.current == nil {
		return true
	}
	matched := false
	for s := range h.model.machine.States {
		if h.model.machine.States[s].Comp.Type != e.Type {
			continue
		}
		matched = true
		for _, class := range h.model.EventCandidateClasses(s, e) {
			if !h.current.ContainsClass(s, class) {
				return true // some use of the event survives
			}
		}
	}
	if !matched {
		return true
	}
	h.ShedEventsCnt++
	return false
}

// Observe feeds complete matches into online adaptation.
func (h *Hybrid) Observe(res *engine.Result, now event.Time) {
	if h.adapter == nil {
		return
	}
	for _, m := range res.Matches {
		h.adapter.OnMatch(m, h.now, h.nowSeq)
	}
}

// Control triggers shedding when the smoothed latency violates the bound:
// it selects a shedding set sized by the relative violation (Eq. 6),
// drops the partial matches it covers (ρS), and activates the derived
// input filter until the bound is satisfied again.
func (h *Hybrid) Control(now event.Time, lat event.Time) vclock.Cost {
	h.sinceShed++
	var work vclock.Cost
	if h.adapter != nil {
		h.adapter.MaybeFold(h.now, h.nowSeq)
	}
	if lat <= h.cfg.Bound {
		h.inputActive = false
		return work
	}
	if h.sinceShed < h.cfg.DelayEvents {
		return work
	}
	violation := float64(lat-h.cfg.Bound) / float64(lat)
	// Cap the per-trigger severity: the smoothed latency lags the queue
	// state, so a very large apparent violation would select nearly every
	// cell and blank the system; shedding in capped steps converges to
	// the bound without the overshoot.
	if violation > 0.6 {
		violation = 0.6
	}
	ss := h.model.SelectSheddingSet(h.en.PartialMatches(), h.now, h.nowSeq, violation, h.cfg.Solver)
	if ss == nil {
		return work
	}
	h.current = ss
	h.sinceShed = 0
	h.ShedTriggers++
	work += EstimationWork(ss.Items)

	if h.cfg.Mode != ModeInputOnly {
		_, dropWork := h.en.DropIf(func(pm *engine.PartialMatch) bool {
			class := pm.Class
			if class < 0 {
				class = 0
			}
			return ss.Contains(pm.State(), class, h.model.SliceOf(pm, h.now, h.nowSeq))
		})
		work += dropWork
	}
	if h.cfg.Mode != ModeStateOnly {
		h.inputActive = true
	}
	return work
}

// InputActive reports whether the input filter is currently applied.
func (h *Hybrid) InputActive() bool { return h.inputActive }

// CurrentSet returns the most recent shedding set (may be nil).
func (h *Hybrid) CurrentSet() *SheddingSet { return h.current }

var _ shed.Strategy = (*Hybrid)(nil)

// FixedRatioHybrid is the fixed-shedding-ratio variant used by the
// selection-quality experiment (Fig 6): instead of reacting to a latency
// bound, it sheds a fixed fraction of data chosen by cost-model utility.
// In input mode (HyI) it sheds the target fraction of input events with
// the lowest class utility; in state mode (HyS) it continuously sheds the
// lowest-utility partial matches to keep the dropped/created ratio at the
// target.
type FixedRatioHybrid struct {
	model *Model
	input bool
	en    *engine.Engine

	util    *shed.UtilityThreshold
	tracker shed.RatioTracker
	period  int
	sinceGC int

	now    event.Time
	nowSeq uint64
}

// NewFixedRatioHybrid builds the fixed-ratio variant. input selects HyI
// (events) versus HyS (partial matches).
func NewFixedRatioHybrid(model *Model, ratio float64, input bool, seed int64) *FixedRatioHybrid {
	return &FixedRatioHybrid{
		model:   model,
		input:   input,
		util:    shed.NewUtilityThreshold(ratio, 512, seed),
		tracker: shed.RatioTracker{Target: ratio},
		period:  32,
	}
}

// Name returns HyI or HyS.
func (f *FixedRatioHybrid) Name() string {
	if f.input {
		return "HyI"
	}
	return "HyS"
}

// Attach installs classification and creation tracking.
func (f *FixedRatioHybrid) Attach(en *engine.Engine) {
	f.en = en
	prev := en.OnCreate
	en.OnCreate = func(pm *engine.PartialMatch) {
		pm.Class = f.model.Classify(pm)
		f.tracker.Seen(1)
		if prev != nil {
			prev(pm)
		}
	}
}

// AdmitEvent sheds the lowest-utility events at the target rate (HyI).
func (f *FixedRatioHybrid) AdmitEvent(e *event.Event, now event.Time) bool {
	f.now = e.Time
	f.nowSeq = e.Seq
	if !f.input {
		return true
	}
	return !f.util.ShouldShed(f.eventUtility(e))
}

// eventUtility is the best class contribution the event could have
// across the states it could extend (optimistic over its candidate
// classes); events of irrelevant types have utility 0. An event that can
// bind the FINAL state completes matches directly; no partial matches
// ever rest there, so the trained classes carry no signal — such events
// are priced as maximally valuable rather than worthless.
func (f *FixedRatioHybrid) eventUtility(e *event.Event) float64 {
	best := 0.0
	m := f.model.machine
	for s := range m.States {
		if m.States[s].Comp.Type != e.Type {
			continue
		}
		if m.Final(s) && !m.States[s].Comp.Kleene {
			return 1e18
		}
		for _, class := range f.model.EventCandidateClasses(s, e) {
			if u := f.model.ClassContribution(s, class); u > best {
				best = u
			}
		}
	}
	return best
}

// Observe is a no-op for the fixed-ratio variant.
func (f *FixedRatioHybrid) Observe(*engine.Result, event.Time) {}

// Control keeps the dropped/created partial-match ratio at the target by
// periodically shedding the lowest-utility cost-model CELLS — shedding is
// realized per class, as §V-A prescribes, with only the marginal cell
// shed partially to land on the target ratio.
func (f *FixedRatioHybrid) Control(now event.Time, lat event.Time) vclock.Cost {
	if f.input {
		return 0
	}
	f.sinceGC++
	if f.sinceGC < f.period {
		return 0
	}
	f.sinceGC = 0
	deficit := f.tracker.Deficit()
	if deficit <= 0 {
		return 0
	}
	pms := f.en.PartialMatches()
	if len(pms) == 0 {
		return 0
	}
	// Aggregate live matches into cells and rank cells by utility.
	members := map[cellKey][]*engine.PartialMatch{}
	for _, pm := range pms {
		class := pm.Class
		if class < 0 {
			class = 0
		}
		cell := cellKey{pm.State(), class, f.model.SliceOf(pm, f.now, f.nowSeq)}
		members[cell] = append(members[cell], pm)
	}
	cells := make([]scoredCell, 0, len(members))
	for cell, ms := range members {
		// The fixed-ratio budget is a COUNT of partial matches, so cells
		// are ranked by the remaining contribution per member — the cost
		// side is irrelevant when the quota is items, not resources.
		c, _ := f.model.Estimate(cell.state, cell.class, cell.slice)
		cells = append(cells, scoredCell{cell, c, ms})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].util != cells[j].util {
			return cells[i].util < cells[j].util
		}
		return cells[i].cell.String() < cells[j].cell.String()
	})
	shedSet := make(map[uint64]bool, deficit)
	for _, sc := range cells {
		if deficit <= 0 {
			break
		}
		take := sc.members
		if len(take) > deficit {
			take = take[:deficit] // partial marginal cell
		}
		for _, pm := range take {
			shedSet[pm.ID()] = true
		}
		deficit -= len(take)
	}
	n, work := f.en.DropIf(func(pm *engine.PartialMatch) bool { return shedSet[pm.ID()] })
	f.tracker.Shed(n)
	return work + EstimationWork(len(cells))
}

// scoredCell pairs a cost-model cell with its utility and live members.
type scoredCell struct {
	cell    cellKey
	util    float64
	members []*engine.PartialMatch
}

var _ shed.Strategy = (*FixedRatioHybrid)(nil)
