package core

import (
	"sort"
	"sync/atomic"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/knapsack"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// Mode selects which shedding functions the strategy applies.
type Mode uint8

const (
	// ModeHybrid applies both ρS and ρI from one shedding set (§IV-C).
	ModeHybrid Mode = iota
	// ModeStateOnly applies only state-based shedding (HyS).
	ModeStateOnly
	// ModeInputOnly applies only input-based shedding (HyI).
	ModeInputOnly
)

// Config configures the hybrid shedding strategy.
type Config struct {
	// Bound is the latency bound θ.
	Bound event.Time
	// Mode selects hybrid, state-only, or input-only operation.
	Mode Mode
	// DelayEvents is j: the minimum number of processed events between
	// consecutive state-shedding triggers, so the effect of a shed can
	// materialize in the smoothed latency before re-triggering (§IV-C).
	// Default 1000, matching the latency smoothing window; shorter delays
	// re-shed against a stale signal and cumulatively over-shed.
	DelayEvents int
	// Solver selects the knapsack algorithm (§V-C). Exact DP by default.
	Solver knapsack.Solver
	// Adapt enables online adaptation of the cost model (§V-B).
	Adapt bool
	// AsyncPlan moves shedding-set selection and admission-table
	// compilation to a planner goroutine: on a bound violation the worker
	// snapshots per-cell populations (cheap, from the engine's class
	// buckets) and keeps processing; the planner solves the knapsack and
	// publishes a compiled plan the worker applies on a later Control
	// call, unless the partial-match population it was built for has been
	// retired (drop-epoch fence). Off (synchronous selection, effective
	// on the triggering event) by default — the paper-reproduction
	// experiments run under the virtual clock and need the trigger to
	// take effect deterministically in-line.
	AsyncPlan bool
}

func (c Config) withDefaults() Config {
	if c.DelayEvents <= 0 {
		c.DelayEvents = 1000
	}
	return c
}

// Hybrid is the paper's shedding strategy: one cost model drives both
// state-based shedding (discarding partial matches from the shedding set)
// and input-based shedding (a class-predicate filter over raw events that
// stays active until the latency bound is met again).
type Hybrid struct {
	model   *Model
	cfg     Config
	adapter *Adapter
	en      *engine.Engine

	current     *SheddingSet
	inputActive bool
	sinceShed   int

	// table is the compiled admission filter for `current` (admit.go),
	// published by atomic pointer swap so the async planner can install a
	// new one while AdmitEvent reads the old. ownBuf is the per-event
	// feature scratch that keeps the decision allocation-free.
	table  atomic.Pointer[AdmitTable]
	ownBuf []float64

	// Async-planner state (planner.go). planPending is the built-and-not-
	// yet-applied plan; planInFlight serializes to at most one build;
	// dropping is the plan whose state drop is being applied in bounded
	// chunks (worker-owned — only Control touches it).
	planPending  atomic.Pointer[shedPlan]
	planInFlight atomic.Bool
	dropping     *shedPlan
	// Incremental population-snapshot accumulation (worker-owned; active
	// while planInFlight is held): the walk cursor, the epoch the
	// accumulation started at, and the reused cell/planCell storage.
	snapping    bool
	snapEpoch   uint64
	snapCur     engine.CellCursor
	snapScratch planScratch
	pstats      planCounters

	now    event.Time
	nowSeq uint64

	// Stats
	ShedTriggers  uint64
	ShedEventsCnt uint64
}

// NewHybrid builds the strategy over a trained model.
func NewHybrid(model *Model, cfg Config) *Hybrid {
	cfg = cfg.withDefaults()
	h := &Hybrid{
		model:     model,
		cfg:       cfg,
		sinceShed: cfg.DelayEvents,
		ownBuf:    make([]float64, model.spec.maxOwnDims()),
	}
	if cfg.Adapt {
		h.adapter = NewAdapter(model)
	}
	if cfg.AsyncPlan {
		// Warm the snapshot scratch so the first trigger's launch pause
		// does not include growing these from nil.
		h.snapScratch.cc = make([]engine.CellCount, 0, 256)
		h.snapScratch.cells = make([]planCell, 0, 256)
	}
	return h
}

// Name identifies the strategy variant.
func (h *Hybrid) Name() string {
	switch h.cfg.Mode {
	case ModeStateOnly:
		return "HyS"
	case ModeInputOnly:
		return "HyI"
	default:
		return "Hybrid"
	}
}

// Attach installs the classification hook: every new partial match is
// classified by its state's decision tree immediately on creation (§V-B).
func (h *Hybrid) Attach(en *engine.Engine) {
	h.en = en
	prev := en.OnCreate
	en.OnCreate = func(pm *engine.PartialMatch) {
		pm.Class = h.model.Classify(pm)
		if h.adapter != nil {
			h.adapter.OnCreate(pm, h.now, h.nowSeq)
		}
		if prev != nil {
			prev(pm)
		}
	}
}

// AdmitEvent implements ρI: while input shedding is active, an event is
// discarded when, for every state it could extend into, EVERY class
// compatible with the event's own attribute values lies in the shedding
// set — i.e. the class predicates prove the event worthless. Events of
// types the pattern does not use are never filtered here (the engine
// discards them for the base ingest cost anyway). The decision runs on
// the compiled admission table: a type lookup plus flat region compares,
// no allocation (TestAdmitEventZeroAlloc pins that).
func (h *Hybrid) AdmitEvent(e *event.Event, now event.Time) bool {
	h.now = e.Time
	h.nowSeq = e.Seq
	if !h.inputActive {
		return true
	}
	t := h.table.Load()
	if t == nil || t.Admit(e, h.ownBuf) {
		return true
	}
	h.ShedEventsCnt++
	return false
}

// AdmitEventInterpreted is the reference ρI decision, re-deriving the
// event's candidate classes from the model per event — the pre-compiled
// hot path, kept as the oracle the differential suite (and the
// overload-admission benchmark's "before" side) checks the table
// against. It must agree with AdmitEvent bit-for-bit; it does not update
// strategy state.
func (h *Hybrid) AdmitEventInterpreted(e *event.Event) bool {
	if !h.inputActive || h.current == nil {
		return true
	}
	matched := false
	for s := range h.model.machine.States {
		if h.model.machine.States[s].Comp.Type != e.Type {
			continue
		}
		matched = true
		for _, class := range h.model.EventCandidateClasses(s, e) {
			if !h.current.ContainsClass(s, class) {
				return true // some use of the event survives
			}
		}
	}
	return !matched
}

// Observe feeds complete matches into online adaptation.
func (h *Hybrid) Observe(res *engine.Result, now event.Time) {
	if h.adapter == nil {
		return
	}
	for _, m := range res.Matches {
		h.adapter.OnMatch(m, h.now, h.nowSeq)
	}
}

// Control triggers shedding when the smoothed latency violates the bound:
// it selects a shedding set sized by the relative violation (Eq. 6),
// drops the partial matches it covers (ρS), and activates the derived
// input filter until the bound is satisfied again. With AsyncPlan the
// selection runs on the planner goroutine and the worker only snapshots
// populations and applies finished plans.
func (h *Hybrid) Control(now event.Time, lat event.Time) vclock.Cost {
	h.sinceShed++
	var work vclock.Cost
	if h.adapter != nil {
		h.adapter.MaybeFold(h.now, h.nowSeq)
	}
	if h.cfg.AsyncPlan {
		return h.controlAsync(lat, work)
	}
	if lat <= h.cfg.Bound {
		h.inputActive = false
		return work
	}
	if h.sinceShed < h.cfg.DelayEvents {
		return work
	}
	t0 := time.Now()
	ss := h.model.SelectSheddingSet(h.en.PartialMatches(), h.now, h.nowSeq, h.violation(lat), h.cfg.Solver)
	if ss == nil {
		return work
	}
	work += h.applySet(ss, ss.ClassPairs(), nil)
	h.noteStall(t0)
	return work
}

// violation is the relative bound violation (Eq. 6), capped per trigger:
// the smoothed latency lags the queue state, so a very large apparent
// violation would select nearly every cell and blank the system;
// shedding in capped steps converges to the bound without the overshoot.
func (h *Hybrid) violation(lat event.Time) float64 {
	v := float64(lat-h.cfg.Bound) / float64(lat)
	if v > 0.6 {
		v = 0.6
	}
	return v
}

// applySet makes a selected shedding set effective: ρS over exactly the
// class buckets the set covers, then the compiled input filter. table
// may be a pre-compiled table from the planner (nil compiles in-line).
func (h *Hybrid) applySet(ss *SheddingSet, pairs [][2]int, table *AdmitTable) vclock.Cost {
	h.current = ss
	h.sinceShed = 0
	h.ShedTriggers++
	work := EstimationWork(ss.Items)

	if h.cfg.Mode != ModeInputOnly {
		_, dropWork := h.en.DropClasses(pairs, func(pm *engine.PartialMatch) bool {
			class := pm.Class
			if class < 0 {
				class = 0
			}
			return ss.Contains(pm.State(), class, h.model.SliceOf(pm, h.now, h.nowSeq))
		})
		work += dropWork
	}
	if h.cfg.Mode != ModeStateOnly {
		if table == nil {
			table = h.model.CompileAdmitTable(ss)
		}
		h.table.Store(table)
		h.inputActive = true
	}
	return work
}

// InputActive reports whether the input filter is currently applied.
func (h *Hybrid) InputActive() bool { return h.inputActive }

// CurrentSet returns the most recent shedding set (may be nil).
func (h *Hybrid) CurrentSet() *SheddingSet { return h.current }

// ImposeSet activates a shedding set directly, bypassing the latency
// trigger — benches and tests use it to exercise the admission path with
// a known set. It compiles and publishes the admission table but does
// not drop partial matches.
func (h *Hybrid) ImposeSet(ss *SheddingSet) {
	h.current = ss
	if ss == nil {
		h.table.Store(nil)
		h.inputActive = false
		return
	}
	h.table.Store(h.model.CompileAdmitTable(ss))
	h.inputActive = true
}

var _ shed.Strategy = (*Hybrid)(nil)

// FixedRatioHybrid is the fixed-shedding-ratio variant used by the
// selection-quality experiment (Fig 6): instead of reacting to a latency
// bound, it sheds a fixed fraction of data chosen by cost-model utility.
// In input mode (HyI) it sheds the target fraction of input events with
// the lowest class utility; in state mode (HyS) it continuously sheds the
// lowest-utility partial matches to keep the dropped/created ratio at the
// target.
type FixedRatioHybrid struct {
	model *Model
	input bool
	en    *engine.Engine

	util    *shed.UtilityThreshold
	tracker shed.RatioTracker
	period  int
	sinceGC int

	// Reused scratch: per-event own features (ownBuf), the population
	// cells of the last trigger (cellBuf), the per-cell drop budgets and
	// the covered bucket pairs (budgets/pairBuf/pairSeen) — dense arrays
	// replacing the per-PM shedSet map of the previous implementation.
	ownBuf   []float64
	cellBuf  []engine.CellCount
	ranked   []rankedCell
	budgets  []int32
	pairBuf  [][2]int
	pairSeen []bool

	now    event.Time
	nowSeq uint64
}

// rankedCell orders population cells by remaining contribution.
type rankedCell struct {
	idx  int // into the cell snapshot
	util float64
}

// NewFixedRatioHybrid builds the fixed-ratio variant. input selects HyI
// (events) versus HyS (partial matches).
func NewFixedRatioHybrid(model *Model, ratio float64, input bool, seed int64) *FixedRatioHybrid {
	return &FixedRatioHybrid{
		model:   model,
		input:   input,
		util:    shed.NewUtilityThreshold(ratio, 512, seed),
		tracker: shed.RatioTracker{Target: ratio},
		period:  32,
		ownBuf:  make([]float64, 0, model.spec.maxOwnDims()),
	}
}

// Name returns HyI or HyS.
func (f *FixedRatioHybrid) Name() string {
	if f.input {
		return "HyI"
	}
	return "HyS"
}

// Attach installs classification and creation tracking.
func (f *FixedRatioHybrid) Attach(en *engine.Engine) {
	f.en = en
	prev := en.OnCreate
	en.OnCreate = func(pm *engine.PartialMatch) {
		pm.Class = f.model.Classify(pm)
		f.tracker.Seen(1)
		if prev != nil {
			prev(pm)
		}
	}
}

// AdmitEvent sheds the lowest-utility events at the target rate (HyI).
func (f *FixedRatioHybrid) AdmitEvent(e *event.Event, now event.Time) bool {
	f.now = e.Time
	f.nowSeq = e.Seq
	if !f.input {
		return true
	}
	return !f.util.ShouldShed(f.eventUtility(e))
}

// eventUtility is the best class contribution the event could have
// across the states it could extend (optimistic over its candidate
// classes); events of irrelevant types have utility 0. An event that can
// bind the FINAL state completes matches directly; no partial matches
// ever rest there, so the trained classes carry no signal — such events
// are priced as maximally valuable rather than worthless.
func (f *FixedRatioHybrid) eventUtility(e *event.Event) float64 {
	best := 0.0
	m := f.model.machine
	for s := range m.States {
		if m.States[s].Comp.Type != e.Type {
			continue
		}
		if m.Final(s) && !m.States[s].Comp.Kleene {
			return 1e18
		}
		if u := f.model.eventBestContribution(s, e, f.ownBuf); u > best {
			best = u
		}
	}
	return best
}

// Observe is a no-op for the fixed-ratio variant.
func (f *FixedRatioHybrid) Observe(*engine.Result, event.Time) {}

// Control keeps the dropped/created partial-match ratio at the target by
// periodically shedding the lowest-utility cost-model CELLS — shedding is
// realized per class, as §V-A prescribes, with only the marginal cell
// shed partially to land on the target ratio. Populations come from the
// engine's class buckets and the drop walks only the covered buckets,
// with per-cell count budgets in a dense array (no per-PM map probes).
func (f *FixedRatioHybrid) Control(now event.Time, lat event.Time) vclock.Cost {
	if f.input {
		return 0
	}
	f.sinceGC++
	if f.sinceGC < f.period {
		return 0
	}
	f.sinceGC = 0
	deficit := f.tracker.Deficit()
	if deficit <= 0 {
		return 0
	}
	model := f.model
	slices := model.Slices()
	cells := f.en.ClassCellCounts(slices, func(st event.Time, sq uint64) int {
		return model.sliceOfStart(st, sq, f.now, f.nowSeq)
	}, f.cellBuf[:0])
	f.cellBuf = cells
	if len(cells) == 0 {
		return 0
	}
	// Rank cells by the remaining contribution per member — the fixed-
	// ratio budget is a COUNT of partial matches, so the cost side is
	// irrelevant when the quota is items, not resources. Ties keep the
	// snapshot's (state, class, slice) order.
	ranked := f.ranked[:0]
	maxClass := 0
	for i, cc := range cells {
		c, _ := model.Estimate(cc.State, cc.Class, cc.Slice)
		ranked = append(ranked, rankedCell{idx: i, util: c})
		if cc.Class > maxClass {
			maxClass = cc.Class
		}
	}
	f.ranked = ranked
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].util < ranked[j].util })

	classDim := maxClass + 1
	nStates := len(model.machine.States)
	f.budgets = resizeInt32(f.budgets, nStates*classDim*slices)
	f.pairSeen = resizeBool(f.pairSeen, nStates*classDim)
	pairs := f.pairBuf[:0]
	remaining := deficit
	for _, rc := range ranked {
		if remaining <= 0 {
			break
		}
		cc := cells[rc.idx]
		take := cc.Count
		if take > remaining {
			take = remaining // partial marginal cell
		}
		f.budgets[(cc.State*classDim+cc.Class)*slices+cc.Slice] = int32(take)
		remaining -= take
		if pi := cc.State*classDim + cc.Class; !f.pairSeen[pi] {
			f.pairSeen[pi] = true
			pairs = append(pairs, [2]int{cc.State, cc.Class})
		}
	}
	f.pairBuf = pairs

	n, work := f.en.DropClasses(pairs, func(pm *engine.PartialMatch) bool {
		class := pm.Class
		if class < 0 {
			class = 0
		}
		sl := model.sliceOfStart(pm.StartTime(), pm.StartSeq(), f.now, f.nowSeq)
		i := (pm.State()*classDim+class)*slices + sl
		if f.budgets[i] > 0 {
			f.budgets[i]--
			return true
		}
		return false
	})
	f.tracker.Shed(n)
	for i := range f.pairSeen {
		f.pairSeen[i] = false
	}
	return work + EstimationWork(len(cells))
}

// resizeInt32 returns a zeroed slice of length n, reusing capacity.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeBool returns a zeroed slice of length n, reusing capacity.
func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

var _ shed.Strategy = (*FixedRatioHybrid)(nil)
