package core

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/knapsack"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// testIA keeps the test streams light: a 40us mean gap holds ~200 events
// per 8ms window instead of ~800, cutting partial-match counts ~16x.
const testIA = 40 * event.Microsecond

func trainDS1(t *testing.T, cfg TrainConfig) (*nfa.Machine, *Model) {
	t.Helper()
	m := nfa.MustCompile(query.Q1("8ms"))
	training := gen.DS1(gen.DS1Config{Events: 3000, Seed: 11, InterArrival: testIA})
	model, err := Train(m, training, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, model
}

func TestTrainBuildsPerStateModels(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 1})
	// Q1 has three states; state 2 is final and sees only completing
	// branches (no live matches), but states 0 and 1 must have classes.
	if model.Slices() != 4 {
		t.Errorf("slices = %d", model.Slices())
	}
	for s := 0; s < 2; s++ {
		if model.NumClasses(s) < 1 {
			t.Errorf("state %d has %d classes", s, model.NumClasses(s))
		}
	}
}

func TestTrainFixedClusters(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{
		Slices:        3,
		FixedClusters: map[int]int{0: 4, 1: 5},
		Seed:          2,
	})
	if got := model.NumClasses(0); got != 4 {
		t.Errorf("state 0 classes = %d, want 4", got)
	}
	if got := model.NumClasses(1); got != 5 {
		t.Errorf("state 1 classes = %d, want 5", got)
	}
}

func TestTrainEmptyStreamFails(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	if _, err := Train(m, nil, TrainConfig{}); err == nil {
		t.Fatal("training on an empty stream must fail")
	}
}

func TestEstimatesAreFiniteAndPositiveWeight(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 3})
	for s := 0; s < 2; s++ {
		for c := 0; c < model.NumClasses(s); c++ {
			for sl := 0; sl < model.Slices(); sl++ {
				contrib, consume := model.Estimate(s, c, sl)
				if contrib < 0 {
					t.Errorf("contrib(%d,%d,%d) = %v", s, c, sl, contrib)
				}
				if consume <= 0 {
					t.Errorf("consume(%d,%d,%d) = %v must be positive", s, c, sl, consume)
				}
			}
		}
	}
}

func TestEstimateClamping(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 2, Seed: 4})
	// Out-of-range class and slice clamp instead of panicking.
	c1, w1 := model.Estimate(0, -5, -5)
	c2, w2 := model.Estimate(0, 999, 999)
	_ = c1
	_ = c2
	if w1 <= 0 || w2 <= 0 {
		t.Error("clamped estimates must stay positive")
	}
}

func TestClassFrequenciesSumToOne(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 5})
	for s := 0; s < 2; s++ {
		var sum float64
		for c := 0; c < model.NumClasses(s); c++ {
			sum += model.ClassFreq(s, c)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("state %d class frequencies sum to %v", s, sum)
		}
	}
	if model.ClassFreq(0, -1) != 0 || model.ClassFreq(0, 999) != 0 {
		t.Error("out-of-range class frequency must be 0")
	}
}

func TestClassifyConsistentWithEventCandidates(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 6})
	// Build a state-0 PM whose only event is a given A event; the PM's
	// predicted class must be among the event's candidate classes, since
	// state 0's features come entirely from that event.
	en := engine.New(m, engine.DefaultCosts())
	e := event.New("A", event.Microsecond, map[string]event.Value{
		"ID": event.Int(3), "V": event.Int(7),
	})
	e.Seq = 0
	en.Process(e)
	pms := en.PartialMatches()
	if len(pms) != 1 {
		t.Fatalf("pms = %d", len(pms))
	}
	got := model.Classify(pms[0])
	cands := model.EventCandidateClasses(0, e)
	found := false
	for _, c := range cands {
		if c == got {
			found = true
		}
	}
	if !found {
		t.Errorf("Classify = %d not among event candidates %v", got, cands)
	}
	// A worthless A event (V=10 can never satisfy a.V+b.V=c.V with
	// b.V>=1 and c.V<=10): every candidate class should have utility 0
	// in a well-trained model. We only assert candidates are non-empty.
	dead := event.New("A", event.Microsecond, map[string]event.Value{
		"ID": event.Int(3), "V": event.Int(10),
	})
	if len(model.EventCandidateClasses(0, dead)) == 0 {
		t.Error("candidate classes must never be empty for a matching type")
	}
}

func TestSliceOfProgressesWithAge(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 7})
	en := engine.New(m, engine.DefaultCosts())
	e := event.New("A", 0, map[string]event.Value{"ID": event.Int(1), "V": event.Int(1)})
	en.Process(e)
	pm := en.PartialMatches()[0]
	window := m.Query.Window.Duration
	if got := model.SliceOf(pm, 0, 0); got != 0 {
		t.Errorf("fresh slice = %d", got)
	}
	if got := model.SliceOf(pm, window/2, 0); got != 2 {
		t.Errorf("half-life slice = %d, want 2", got)
	}
	if got := model.SliceOf(pm, window*2, 0); got != 3 {
		t.Errorf("over-age slice = %d, want clamped 3", got)
	}
}

func TestOmegaModes(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	training := gen.DS1(gen.DS1Config{Events: 3000, Seed: 11, InterArrival: testIA})
	plain := MustTrain(m, training, TrainConfig{Seed: 1})
	rich := MustTrain(m, training, TrainConfig{Seed: 1, ResourceCosts: true})
	en := engine.New(m, engine.DefaultCosts())
	en.Process(event.New("A", 0, map[string]event.Value{"ID": event.Int(1), "V": event.Int(1)}))
	pm := en.PartialMatches()[0]
	if plain.Omega(pm) != 1 {
		t.Errorf("plain omega = %v", plain.Omega(pm))
	}
	if rich.Omega(pm) <= 1 {
		t.Errorf("resource-cost omega = %v should exceed 1", rich.Omega(pm))
	}
}

func TestSelectSheddingSetCoversViolation(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 8})
	// Populate an engine with live PMs from a fresh stream.
	en := engine.New(m, engine.DefaultCosts())
	en.OnCreate = func(pm *engine.PartialMatch) { pm.Class = model.Classify(pm) }
	s := gen.DS1(gen.DS1Config{Events: 800, Seed: 21, InterArrival: testIA})
	var last *event.Event
	for _, e := range s {
		en.Process(e)
		last = e
	}
	pms := en.PartialMatches()
	if len(pms) == 0 {
		t.Fatal("no live PMs")
	}
	for _, solver := range []knapsack.Solver{knapsack.Exact, knapsack.Greedy} {
		ss := model.SelectSheddingSet(pms, last.Time, last.Seq, 0.5, solver)
		if ss == nil {
			t.Fatal("nil shedding set")
		}
		if ss.PredictedSavings < 0.5-0.01 {
			t.Errorf("solver %v: savings %.3f < violation 0.5", solver, ss.PredictedSavings)
		}
		if len(ss.Cells) == 0 {
			t.Error("empty shedding set under violation")
		}
		// Set membership helpers agree with cell contents.
		for cell := range ss.Cells {
			if !ss.Contains(cell.state, cell.class, cell.slice) {
				t.Error("Contains disagrees with Cells")
			}
			if !ss.ContainsClass(cell.state, cell.class) {
				t.Error("ContainsClass disagrees with Cells")
			}
		}
	}
}

func TestSelectSheddingSetEdgeCases(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 9})
	if model.SelectSheddingSet(nil, 0, 0, 0.5, knapsack.Exact) != nil {
		t.Error("no PMs must yield nil set")
	}
	var none *SheddingSet
	if none.Contains(0, 0, 0) || none.ContainsClass(0, 0) {
		t.Error("nil set must contain nothing")
	}
}

func TestAdapterFoldsTowardObservedContribution(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 2, Seed: 10})
	adapter := NewAdapter(model)
	en := engine.New(m, engine.DefaultCosts())
	var now event.Time
	var nowSeq uint64
	en.OnCreate = func(pm *engine.PartialMatch) {
		pm.Class = model.Classify(pm)
		adapter.OnCreate(pm, now, nowSeq)
	}
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 22, InterArrival: testIA})
	for _, e := range s {
		now, nowSeq = e.Time, e.Seq
		res := en.Process(e)
		for _, match := range res.Matches {
			adapter.OnMatch(match, now, nowSeq)
		}
		adapter.MaybeFold(now, nowSeq)
	}
	if adapter.Folds() == 0 {
		t.Fatal("adapter never folded")
	}
}

func TestAdapterMovesEstimates(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 2, Seed: 12})
	adapter := NewAdapter(model)
	before, _ := model.Estimate(0, 0, 0)
	// Manually drive one epoch with heavy contribution on cell (0,0,0).
	adapter.createdCnt.Add(classKey(0, 0), 10)
	adapter.contribCnt.Add(cellKey{0, 0, 0}.String(), 10*countScale*100) // 100 matches per PM
	adapter.fold()
	after, _ := model.Estimate(0, 0, 0)
	want := 0.5*before + 0.5*100
	if after < want*0.9 || after > want*1.1 {
		t.Errorf("estimate %v -> %v, want ~%v", before, after, want)
	}
}

func TestHybridNameAndModes(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 13})
	if NewHybrid(model, Config{Bound: 1}).Name() != "Hybrid" {
		t.Error("hybrid name")
	}
	if NewHybrid(model, Config{Bound: 1, Mode: ModeStateOnly}).Name() != "HyS" {
		t.Error("HyS name")
	}
	if NewHybrid(model, Config{Bound: 1, Mode: ModeInputOnly}).Name() != "HyI" {
		t.Error("HyI name")
	}
	if NewFixedRatioHybrid(model, 0.5, true, 1).Name() != "HyI" {
		t.Error("fixed HyI name")
	}
	if NewFixedRatioHybrid(model, 0.5, false, 1).Name() != "HyS" {
		t.Error("fixed HyS name")
	}
}

func TestHybridShedsUnderViolation(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 14})
	h := NewHybrid(model, Config{Bound: 50 * event.Microsecond, DelayEvents: 50})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 23, InterArrival: testIA})
	shedEvents := 0
	for _, e := range s {
		if !h.AdmitEvent(e, e.Time) {
			shedEvents++
			continue
		}
		res := en.Process(e)
		h.Observe(&res, e.Time)
		// Report a permanently violated latency: 4x the bound.
		h.Control(e.Time, 200*event.Microsecond)
	}
	if h.ShedTriggers == 0 {
		t.Fatal("hybrid never triggered state shedding")
	}
	if en.Stats().DroppedPMs == 0 {
		t.Error("no PMs dropped despite sustained violation")
	}
	if !h.InputActive() {
		t.Error("input shedding should remain active under violation")
	}
	if shedEvents == 0 {
		t.Error("no events shed despite active input filter")
	}
	if h.CurrentSet() == nil {
		t.Error("no shedding set recorded")
	}
}

func TestHybridRespectsBound(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 15})
	h := NewHybrid(model, Config{Bound: 50 * event.Microsecond, DelayEvents: 10})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	s := gen.DS1(gen.DS1Config{Events: 1000, Seed: 24, InterArrival: testIA})
	for _, e := range s {
		h.AdmitEvent(e, e.Time)
		res := en.Process(e)
		h.Observe(&res, e.Time)
		h.Control(e.Time, 10*event.Microsecond) // always under the bound
	}
	if h.ShedTriggers != 0 {
		t.Error("shedding triggered while under the bound")
	}
	if en.Stats().DroppedPMs != 0 {
		t.Error("PMs dropped while under the bound")
	}
}

func TestHybridStateOnlyNeverFiltersInput(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 16})
	h := NewHybrid(model, Config{Bound: 1, Mode: ModeStateOnly, DelayEvents: 10})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 25, InterArrival: testIA})
	for _, e := range s {
		if !h.AdmitEvent(e, e.Time) {
			t.Fatal("HyS must admit every event")
		}
		res := en.Process(e)
		h.Observe(&res, e.Time)
		h.Control(e.Time, 100*event.Microsecond)
	}
	if h.ShedTriggers == 0 {
		t.Error("HyS never shed state")
	}
}

func TestHybridInputOnlyNeverDropsState(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 17})
	h := NewHybrid(model, Config{Bound: 1, Mode: ModeInputOnly, DelayEvents: 10})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 26, InterArrival: testIA})
	for _, e := range s {
		if !h.AdmitEvent(e, e.Time) {
			continue
		}
		res := en.Process(e)
		h.Observe(&res, e.Time)
		h.Control(e.Time, 100*event.Microsecond)
	}
	if en.Stats().DroppedPMs != 0 {
		t.Error("HyI dropped partial matches")
	}
	if h.ShedEventsCnt == 0 {
		t.Error("HyI shed no events under sustained violation")
	}
}

func TestFixedRatioHybridStateMode(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 18})
	f := NewFixedRatioHybrid(model, 0.4, false, 7)
	en := engine.New(m, engine.DefaultCosts())
	f.Attach(en)
	s := gen.DS1(gen.DS1Config{Events: 4000, Seed: 27, InterArrival: testIA})
	for _, e := range s {
		if !f.AdmitEvent(e, e.Time) {
			t.Fatal("state-mode fixed ratio must admit all events")
		}
		en.Process(e)
		f.Control(e.Time, 0)
	}
	st := en.Stats()
	got := float64(st.DroppedPMs) / float64(st.CreatedPMs)
	if got < 0.30 || got > 0.50 {
		t.Errorf("dropped/created = %.3f, want ~0.4", got)
	}
}

func TestFixedRatioHybridInputMode(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 19})
	f := NewFixedRatioHybrid(model, 0.3, true, 8)
	en := engine.New(m, engine.DefaultCosts())
	f.Attach(en)
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 28, InterArrival: testIA})
	shed := 0
	for _, e := range s {
		if !f.AdmitEvent(e, e.Time) {
			shed++
			continue
		}
		en.Process(e)
		if w := f.Control(e.Time, 0); w != 0 {
			t.Fatal("input-mode fixed ratio must not shed state")
		}
	}
	got := float64(shed) / float64(len(s))
	if got < 0.22 || got > 0.38 {
		t.Errorf("shed event ratio = %.3f, want ~0.3", got)
	}
}
