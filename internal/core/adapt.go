package core

import (
	"fmt"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/sketch"
)

// Adapter performs online adaptation of the cost model (§V-B): it tracks
// per-class creation counts and per-(class, slice) contribution and
// consumption credits through count-min sketches and, at the end of each
// time-slice epoch, folds them into the estimates with
//
//	Γnew = (1−w)·Γold + w·Γincremented,   w = 0.5
//
// where the increment is the per-member credit rate of the class during
// the epoch. Credits walk the full ancestor chain of the originating
// partial match, mirroring the offline attribution of Eqs. 3 and 4, and
// land in the ancestor's CURRENT slice so the estimates keep describing
// remaining value. Classes that create members but earn no credits decay
// — that is how the model notices a distribution change (Fig 12).
type Adapter struct {
	model *Model
	// W is the update weight (paper: 0.5).
	W float64

	contribCnt *sketch.CountMin // per (state, class, slice)
	consumeCnt *sketch.CountMin // per (state, class, slice)
	createdCnt *sketch.CountMin // per (state, class)

	epochLen  event.Time
	nextFold  event.Time
	epochSeqs uint64
	nextSeq   uint64
	folds     uint64
}

type cellKey struct{ state, class, slice int }

func (k cellKey) String() string {
	return fmt.Sprintf("%d:%d:%d", k.state, k.class, k.slice)
}

func classKey(state, class int) string { return fmt.Sprintf("%d:%d", state, class) }

// NewAdapter builds an adapter over a trained model.
func NewAdapter(model *Model) *Adapter {
	a := &Adapter{
		model:      model,
		W:          0.5,
		contribCnt: sketch.NewCountMinSized(4, 512),
		consumeCnt: sketch.NewCountMinSized(4, 512),
		createdCnt: sketch.NewCountMinSized(4, 256),
	}
	if model.sliceLen > 0 {
		a.epochLen = model.sliceLen
	} else {
		a.epochSeqs = uint64(model.sliceEvents)
	}
	return a
}

// scale quantizes float increments into sketch counts.
const countScale = 16

// OnCreate records a new partial match: its class's creation count rises,
// and its resource cost is credited to every ancestor's cell at the
// ancestor's current slice ("the counts for the class and time slice of
// the originating partial matches are incremented", §V-B).
func (a *Adapter) OnCreate(pm *engine.PartialMatch, now event.Time, nowSeq uint64) {
	if pm.Class >= 0 {
		a.createdCnt.Add(classKey(pm.State(), pm.Class), 1)
	}
	omega := uint64(a.model.omega(pm) * countScale)
	for anc := pm.Parent(); anc != nil; anc = anc.Parent() {
		if anc.Class < 0 {
			continue
		}
		cell := cellKey{anc.State(), anc.Class, a.model.SliceOf(anc, now, nowSeq)}
		a.consumeCnt.Add(cell.String(), omega)
	}
}

// OnMatch records a complete match: every ancestor of the source run
// gains contribution in its current slice.
func (a *Adapter) OnMatch(m engine.Match, now event.Time, nowSeq uint64) {
	for anc := m.Source; anc != nil; anc = anc.Parent() {
		if anc.Class < 0 {
			continue
		}
		cell := cellKey{anc.State(), anc.Class, a.model.SliceOf(anc, now, nowSeq)}
		a.contribCnt.Add(cell.String(), countScale)
	}
}

// MaybeFold folds accumulated counts into the model at slice-epoch
// boundaries and resets the sketches.
func (a *Adapter) MaybeFold(now event.Time, nowSeq uint64) {
	if a.epochLen > 0 {
		if a.nextFold == 0 {
			a.nextFold = now + a.epochLen
			return
		}
		if now < a.nextFold {
			return
		}
		a.nextFold = now + a.epochLen
	} else {
		if a.nextSeq == 0 {
			a.nextSeq = nowSeq + a.epochSeqs
			return
		}
		if nowSeq < a.nextSeq {
			return
		}
		a.nextSeq = nowSeq + a.epochSeqs
	}
	a.fold()
}

func (a *Adapter) fold() {
	a.folds++
	for state := range a.model.states {
		for class := 0; class < a.model.NumClasses(state); class++ {
			created := a.createdCnt.Count(classKey(state, class))
			if created == 0 {
				continue // no evidence this epoch
			}
			for slice := 0; slice < a.model.cfg.Slices; slice++ {
				key := cellKey{state, class, slice}.String()
				incContrib := float64(a.contribCnt.Count(key)) / countScale / float64(created)
				incConsume := float64(a.consumeCnt.Count(key)) / countScale / float64(created)
				oldC, oldW := a.model.Estimate(state, class, slice)
				newC := (1-a.W)*oldC + a.W*incContrib
				newW := (1-a.W)*oldW + a.W*incConsume
				if !a.model.cfg.ResourceCosts {
					// Without explicit resource costs every match weighs
					// 1; adaptation only moves contribution.
					newW = oldW
				}
				a.model.setEstimate(state, class, slice, newC, newW)
			}
		}
	}
	a.contribCnt.Reset()
	a.consumeCnt.Reset()
	a.createdCnt.Reset()
}

// Folds returns how many epochs have been folded (observability).
func (a *Adapter) Folds() uint64 { return a.folds }
