package core

import (
	"math"
	"sort"

	"cepshed/internal/event"
)

// This file compiles a shedding set into a flat admission table so the
// per-event input-shedding decision (ρI) is a handful of array lookups.
// The interpreted decision re-derives the event's candidate classes from
// the decision trees on every event; the compiled form does that
// derivation once per shedding set instead: for each state whose type
// the event carries, the regions of every SURVIVING class (not in the
// set) are projected onto the state's own-attribute positions and laid
// out flat. An event is admitted iff some surviving class's projected
// region contains its attribute values — exactly the interpreted
// predicate, with the set membership tests and the per-event slice
// allocation compiled away.
//
// Tables are immutable once built and published by atomic pointer swap
// (Hybrid.table), which is what lets the async planner hand a new table
// to the worker without any locking on the admission path.

// AdmitTable is the compiled input-shedding filter for one shedding set.
// The pattern uses a handful of event types, so the per-type structures
// live in a parallel slice pair scanned linearly: comparing two or three
// type strings (usually pointer-equal literals) beats hashing the type
// on every event.
type AdmitTable struct {
	types []string
	tas   []*typeAdmit
	// scratch is the own-feature buffer length Admit needs (the widest
	// own-attribute span of any compiled state).
	scratch int
}

func (t *AdmitTable) typeAdmitFor(typ string) *typeAdmit {
	for i, s := range t.types {
		if s == typ {
			return t.tas[i]
		}
	}
	return nil
}

// typeAdmit is the decision structure for one event type. A type absent
// from the table admits unconditionally (the pattern does not use it);
// always short-circuits types where some state is guaranteed to admit
// (an uncovered class whose regions cannot exclude any value).
type typeAdmit struct {
	always bool
	states []stateAdmit
}

// stateAdmit is one state's surviving-class regions, projected onto the
// state's own attributes and flattened: region r spans
// lo[r*dims:(r+1)*dims] / hi[r*dims:(r+1)*dims].
type stateAdmit struct {
	attrs  []string // aliased from the model's feature spec (immutable)
	dims   int
	lo, hi []float64
}

// CompileAdmitTable compiles the input filter a shedding set induces.
// It reads only immutable model structure (spec, trees, regions) and the
// set itself, so it is safe to run on the planner goroutine while the
// worker keeps processing.
func (model *Model) CompileAdmitTable(ss *SheddingSet) *AdmitTable {
	t := &AdmitTable{scratch: model.spec.maxOwnDims()}
	for s := range model.machine.States {
		typ := model.machine.States[s].Comp.Type
		ta := t.typeAdmitFor(typ)
		if ta == nil {
			ta = &typeAdmit{}
			t.types = append(t.types, typ)
			t.tas = append(t.tas, ta)
		}
		if ta.always {
			continue
		}
		sm := model.states[s]
		if sm.tree == nil {
			// Untree'd states have the single class 0 as the only candidate:
			// if it survives, every event of the type admits here.
			if !ss.ContainsClass(s, 0) {
				ta.always = true
				ta.states = nil
			}
			continue
		}
		lo, hi := model.spec.ownStart[s], model.spec.ownEnd[s]
		dims := hi - lo
		sa := stateAdmit{attrs: model.spec.attrs[s], dims: dims}
		for c := 0; c < sm.k && !ta.always; c++ {
			if ss.ContainsClass(s, c) {
				continue
			}
			for _, r := range sm.regions[c] {
				if dims == 0 {
					// No own attributes: any region is compatible with any
					// event, so a surviving class with a region always admits.
					ta.always = true
					break
				}
				unbounded := true
				for d := lo; d < hi; d++ {
					sa.lo = append(sa.lo, r.Lo[d])
					sa.hi = append(sa.hi, r.Hi[d])
					if !math.IsInf(r.Lo[d], -1) || !math.IsInf(r.Hi[d], 1) {
						unbounded = false
					}
				}
				if unbounded {
					// The projection excludes nothing — admission is certain.
					ta.always = true
					break
				}
			}
		}
		if ta.always {
			ta.states = nil
			continue
		}
		if len(sa.lo) > 0 {
			if sa.dims == 1 {
				sa.mergeIntervals()
			}
			ta.states = append(ta.states, sa)
		}
		// A state with no surviving compatible regions never admits and is
		// simply not stored; if every state of the type ends up that way the
		// event is dropped, matching the interpreted fall-through.
	}
	return t
}

// mergeIntervals sorts a 1-D state's projected intervals by lower bound
// and coalesces overlapping ones, leaving a disjoint ascending list that
// Admit can binary-search instead of scanning region by region.
// Membership in the union of intervals is exactly preserved, so the
// admission decision stays bit-identical to the unsorted scan (the
// differential suite holds it to the interpreted path either way).
func (sa *stateAdmit) mergeIntervals() {
	n := len(sa.lo)
	if n < 2 {
		return
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sa.lo[order[a]] < sa.lo[order[b]] })
	lo := make([]float64, 0, n)
	hi := make([]float64, 0, n)
	for _, i := range order {
		if len(lo) > 0 && sa.lo[i] <= hi[len(hi)-1] {
			if sa.hi[i] > hi[len(hi)-1] {
				hi[len(hi)-1] = sa.hi[i]
			}
			continue
		}
		lo = append(lo, sa.lo[i])
		hi = append(hi, sa.hi[i])
	}
	sa.lo, sa.hi = lo, hi
}

// ScratchLen is the minimum length of the buffer Admit requires.
func (t *AdmitTable) ScratchLen() int { return t.scratch }

// Admit is the compiled ρI decision: true admits the event. buf is a
// caller-owned scratch of at least ScratchLen() — with it, the decision
// performs zero heap allocations (pinned by TestAdmitEventZeroAlloc).
func (t *AdmitTable) Admit(e *event.Event, buf []float64) bool {
	ta := t.typeAdmitFor(e.Type)
	if ta == nil || ta.always {
		return true
	}
	for i := range ta.states {
		sa := &ta.states[i]
		if sa.dims == 1 {
			// Merged disjoint ascending intervals: binary-search the first
			// lower bound past v, then v is inside the union iff it sits in
			// the interval before it.
			v := numericAttr(e, sa.attrs[0])
			j := sort.SearchFloat64s(sa.lo, v)
			if j < len(sa.lo) && sa.lo[j] == v {
				return true
			}
			if j > 0 && v <= sa.hi[j-1] {
				return true
			}
			continue
		}
		own := buf[:sa.dims]
		for d, a := range sa.attrs {
			own[d] = numericAttr(e, a)
		}
	regions:
		for r := 0; r < len(sa.lo); r += sa.dims {
			for d := 0; d < sa.dims; d++ {
				if v := own[d]; v < sa.lo[r+d] || v > sa.hi[r+d] {
					continue regions
				}
			}
			return true
		}
	}
	return false
}
