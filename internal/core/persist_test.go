package core

import (
	"testing"
)

func TestHybridStateRoundTrip(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 1})
	h := NewHybrid(model, Config{Bound: 1})

	// Perturb some estimates as the online adapter would.
	for s := range model.states {
		for c := 0; c < model.states[s].k; c++ {
			for sl := 0; sl < model.cfg.Slices; sl++ {
				model.setEstimate(s, c, sl, float64(s*100+c*10+sl)+0.5, float64(c+1))
			}
		}
	}
	blob, err := h.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	// A freshly trained twin (same seed => same shape) restores exactly.
	_, model2 := trainDS1(t, TrainConfig{Slices: 4, Seed: 1})
	h2 := NewHybrid(model2, Config{Bound: 1})
	if err := h2.UnmarshalState(blob); err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	for s := range model.states {
		for c := 0; c < model.states[s].k; c++ {
			for sl := 0; sl < model.cfg.Slices; sl++ {
				wc, ww := model.Estimate(s, c, sl)
				gc, gw := model2.Estimate(s, c, sl)
				if wc != gc || ww != gw {
					t.Fatalf("cell (%d,%d,%d): got (%g,%g), want (%g,%g)", s, c, sl, gc, gw, wc, ww)
				}
			}
		}
	}
}

func TestHybridStateRejectsMismatch(t *testing.T) {
	_, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 1})
	h := NewHybrid(model, Config{Bound: 1})
	blob, err := h.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	// Different slice count: shape mismatch must be rejected and leave the
	// fresh estimates untouched.
	_, model3 := trainDS1(t, TrainConfig{Slices: 2, Seed: 1})
	h3 := NewHybrid(model3, Config{Bound: 1})
	before, _ := model3.Estimate(1, 0, 0)
	if err := h3.UnmarshalState(blob); err == nil {
		t.Fatal("accepted blob with mismatched slice count")
	}
	if after, _ := model3.Estimate(1, 0, 0); after != before {
		t.Fatal("rejected blob mutated estimates")
	}

	// Truncations and garbage: error, never panic, never partial apply.
	for cut := 0; cut < len(blob); cut += 3 {
		h4 := NewHybrid(model3, Config{Bound: 1})
		if err := h4.UnmarshalState(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated blob at %d", cut)
		}
	}
	if err := h.UnmarshalState(append(blob, 0xff)); err == nil {
		t.Fatal("accepted blob with trailing bytes")
	}
}
