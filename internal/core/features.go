// Package core implements the paper's primary contribution: the hybrid
// load-shedding approach. It contains the partial-match cost model
// (contribution Γ+ and consumption Γ−, §IV-A), its offline estimation via
// clustering and per-state decision-tree classifiers (§V-B), online
// adaptation backed by streaming counts (§V-B), knapsack-based shedding-
// set selection (§IV-B, §V-C), and the hybrid/input/state shedding
// strategies built on top (§IV-C).
package core

import (
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
)

// featureSpec fixes, per automaton state, the feature layout used by the
// classifiers: the predicate attributes of EVERY bound variable up to the
// state (§V-B: "the attributes of partial matches that appear in the
// query predicates as predictor variables"), the repetition count for
// Kleene states, and a witness indicator for queries with negation. The
// per-state layout also records which feature positions belong to the
// state's own variable — input-based shedding projects class regions onto
// exactly those positions to judge raw events (§IV-C).
type featureSpec struct {
	attrs  [][]string // per state: predicate attributes of its variable
	kleene []bool     // per state: repetition-count feature present
	// negation adds a witness-indicator feature so the classifier can
	// separate negation witnesses (zero contribution by construction)
	// from real partial matches in the same state.
	negation bool
	// dims[s] is the feature dimensionality of state s.
	dims []int
	// ownStart[s]/ownEnd[s] delimit the positions of state s's own
	// attributes within its feature vector.
	ownStart, ownEnd []int
}

// maxFeatureCardinality excludes near-unique attributes (task ids, bike
// ids, card numbers) from the classifier features: a class predicate over
// an identifier memorizes training noise and never generalizes to unseen
// identifiers. Attributes with more distinct training values than this
// are dropped from the feature spec.
const maxFeatureCardinality = 100

func newFeatureSpec(m *nfa.Machine, training event.Stream) *featureSpec {
	byVar := m.Query.PredicateAttrs()
	n := len(m.States)
	spec := &featureSpec{
		attrs:    make([][]string, n),
		kleene:   make([]bool, n),
		negation: m.Query.HasNegation(),
		dims:     make([]int, n),
		ownStart: make([]int, n),
		ownEnd:   make([]int, n),
	}
	highCard := highCardinalityAttrs(training)
	for s := 0; s < n; s++ {
		comp := m.States[s].Comp
		var attrs []string
		for _, a := range byVar[comp.Var] {
			if !highCard[typeAttr{comp.Type, a}] {
				attrs = append(attrs, a)
			}
		}
		spec.attrs[s] = attrs
		spec.kleene[s] = comp.Kleene
	}
	for s := 0; s < n; s++ {
		d := 0
		for t := 0; t <= s; t++ {
			if t == s {
				spec.ownStart[s] = d
			}
			d += len(spec.attrs[t])
			if t == s {
				spec.ownEnd[s] = d
			}
			if spec.kleene[t] {
				d++ // repetition count
			}
		}
		if spec.negation {
			d++
		}
		if d == 0 {
			d = 1
		}
		spec.dims[s] = d
	}
	return spec
}

// dim returns the feature dimensionality of state s.
func (fs *featureSpec) dim(s int) int { return fs.dims[s] }

type typeAttr struct{ typ, attr string }

// highCardinalityAttrs finds (event type, attribute) pairs whose distinct
// value count in the training stream exceeds maxFeatureCardinality.
func highCardinalityAttrs(training event.Stream) map[typeAttr]bool {
	seen := map[typeAttr]map[event.Value]bool{}
	out := map[typeAttr]bool{}
	for _, e := range training {
		for a, v := range e.Attrs {
			key := typeAttr{e.Type, a}
			if out[key] {
				continue
			}
			vals := seen[key]
			if vals == nil {
				vals = map[event.Value]bool{}
				seen[key] = vals
			}
			vals[v] = true
			if len(vals) > maxFeatureCardinality {
				out[key] = true
				delete(seen, key)
			}
		}
	}
	return out
}

// pmFeatures extracts the feature vector of a partial match in state s:
// the predicate attributes of the last bound event of every bound state,
// Kleene repetition counts, and the witness flag.
func (fs *featureSpec) pmFeatures(pm *engine.PartialMatch) []float64 {
	s := pm.State()
	out := make([]float64, 0, fs.dims[s])
	for t := 0; t <= s; t++ {
		var ev *event.Event
		if reps := pm.Reps(t); len(reps) > 0 {
			ev = reps[len(reps)-1]
		} else {
			ev = pm.EventAt(t)
		}
		for _, a := range fs.attrs[t] {
			if ev == nil {
				out = append(out, -1)
			} else {
				out = append(out, numericAttr(ev, a))
			}
		}
		if fs.kleene[t] {
			out = append(out, float64(len(pm.Reps(t))))
		}
	}
	if fs.negation {
		if pm.IsWitness() {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// eventOwnFeatures extracts the values an event would contribute to the
// own-attribute positions of a state-s feature vector.
func (fs *featureSpec) eventOwnFeatures(s int, e *event.Event) []float64 {
	return fs.eventOwnFeaturesInto(s, e, make([]float64, 0, len(fs.attrs[s])))
}

// eventOwnFeaturesInto is eventOwnFeatures writing into a caller-owned
// buffer — the per-event shed-decision paths reuse one scratch buffer so
// admission never heap-allocates.
func (fs *featureSpec) eventOwnFeaturesInto(s int, e *event.Event, buf []float64) []float64 {
	buf = buf[:0]
	for _, a := range fs.attrs[s] {
		buf = append(buf, numericAttr(e, a))
	}
	return buf
}

// maxOwnDims returns the widest own-attribute span across states — the
// scratch-buffer capacity an admission decision can need.
func (fs *featureSpec) maxOwnDims() int {
	max := 1
	for s := range fs.attrs {
		if n := len(fs.attrs[s]); n > max {
			max = n
		}
	}
	return max
}

// numericAttr coerces an attribute to a float feature. String attributes
// hash to a stable small bucket so trees can split on them.
func numericAttr(e *event.Event, attr string) float64 {
	v, ok := e.Get(attr)
	if !ok {
		return -1
	}
	if v.IsNumeric() {
		return v.AsFloat()
	}
	return float64(fnv1a32(v.S) % 1024)
}

// fnv1a32 is 32-bit FNV-1a, bit-identical to hash/fnv's New32a but
// allocation-free: fnv.New32a heap-allocates its hash state, which would
// put one allocation per string attribute on the per-event admission
// path. Trained trees split on these hashed values, so the constants
// must never change.
func fnv1a32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
