package core

import (
	"sort"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/knapsack"
)

// SheddingSet is the outcome of shedding-set selection (§IV-B): the
// (state, class, slice) cells whose live partial matches are to be shed,
// plus the (state, class) pairs driving the input-based filter ρI.
type SheddingSet struct {
	// Cells are the selected cells.
	Cells map[cellKey]bool
	// Classes are the (state, class) pairs covered by the set, used to
	// derive the input filter (§IV-C).
	Classes map[[2]int]bool
	// PredictedSavings is the consumption share the set covers.
	PredictedSavings float64
	// PredictedLoss is the contribution share the set gives up.
	PredictedLoss float64
	// Items is the number of knapsack items the selection ran over.
	Items int
}

// Contains reports whether a live partial match falls into the set.
func (ss *SheddingSet) Contains(state, class, slice int) bool {
	if ss == nil {
		return false
	}
	return ss.Cells[cellKey{state, class, slice}]
}

// ContainsClass reports whether a (state, class) pair is in the set.
func (ss *SheddingSet) ContainsClass(state, class int) bool {
	if ss == nil {
		return false
	}
	return ss.Classes[[2]int{state, class}]
}

// ClassPairs returns the (state, class) pairs of the set in ascending
// order — the bucket list a DropClasses pass walks. Every cell of the
// set projects into this list, so walking only these buckets visits
// every match Contains could select.
func (ss *SheddingSet) ClassPairs() [][2]int {
	if ss == nil || len(ss.Classes) == 0 {
		return nil
	}
	pairs := make([][2]int, 0, len(ss.Classes))
	for p := range ss.Classes {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// planCell is one populated cost-model cell with the estimates captured
// at snapshot time. A []planCell is self-contained: selection (and table
// compilation) can run on the planner goroutine without touching the
// engine or the model's online-adapted estimates, which the worker
// mutates.
type planCell struct {
	state, class, slice int
	count               int
	contrib, consume    float64 // per-member estimates at snapshot time
}

// planScratch is reusable snapshot storage. The async trigger path owns
// one: planInFlight serializes plan builds, and the planner goroutine is
// finished with the cell slice before the flag is released, so reusing
// the buffers across launches never races with a reader.
type planScratch struct {
	cc    []engine.CellCount
	cells []planCell
}

// snapshotPlanCells reads the engine's class-bucket populations and the
// model's current estimates into plan cells, in ascending
// (state, class, slice) order. This is the cheap hot-path half of a shed
// trigger; everything downstream of it can run asynchronously. A nil
// scratch allocates fresh slices; a reused scratch makes the snapshot
// allocation-free after warmup.
func (model *Model) snapshotPlanCells(en *engine.Engine, now event.Time, nowSeq uint64, scratch *planScratch) []planCell {
	if scratch == nil {
		scratch = &planScratch{}
	}
	cc := en.ClassCellCounts(model.cfg.Slices, func(st event.Time, sq uint64) int {
		return model.sliceOfStart(st, sq, now, nowSeq)
	}, scratch.cc[:0])
	scratch.cc = cc
	if len(cc) == 0 {
		return nil
	}
	cells := scratch.cells[:0]
	for _, c := range cc {
		contrib, consume := model.Estimate(c.State, c.Class, c.Slice)
		cells = append(cells, planCell{
			state: c.State, class: c.Class, slice: c.Slice,
			count: c.Count, contrib: contrib, consume: consume,
		})
	}
	scratch.cells = cells
	return cells
}

// selectFromPlanCells solves the covering knapsack of Eq. 8 over
// pre-aggregated cells: minimize the shed contribution subject to the
// shed consumption covering at least the relative latency violation.
// Pure function of its inputs — safe on any goroutine.
func selectFromPlanCells(cells []planCell, violation float64, solver knapsack.Solver) *SheddingSet {
	if violation <= 0 || len(cells) == 0 {
		return nil
	}
	if violation > 1 {
		violation = 1
	}
	items := make([]knapsack.Item, 0, len(cells))
	var totalC, totalW float64
	for i, pc := range cells {
		c := pc.contrib * float64(pc.count)
		w := pc.consume * float64(pc.count)
		items = append(items, knapsack.Item{ID: i, Value: c, Weight: w})
		totalC += c
		totalW += w
	}
	if totalW <= 0 {
		return nil
	}
	// Normalize to shares so the violation is directly the cover bound.
	for i := range items {
		if totalC > 0 {
			items[i].Value /= totalC
		}
		items[i].Weight /= totalW
	}
	shedIDs := knapsack.MinCover(items, violation, solver)
	ss := &SheddingSet{
		Cells:   make(map[cellKey]bool, len(shedIDs)),
		Classes: map[[2]int]bool{},
		Items:   len(items),
	}
	for _, id := range shedIDs {
		pc := cells[id]
		ss.Cells[cellKey{pc.state, pc.class, pc.slice}] = true
		ss.Classes[[2]int{pc.state, pc.class}] = true
		ss.PredictedSavings += items[id].Weight
		ss.PredictedLoss += items[id].Value
	}
	return ss
}

// SelectSheddingSet aggregates the live partial matches into cost-model
// cells, computes per-cell relative contribution Δ+ and consumption Δ−
// (Eqs. 5 and 7), and solves the covering knapsack of Eq. 8. Cells are
// ordered by (state, class, slice) before the solve, so the selection is
// a deterministic function of the population (the previous map-iteration
// item order could flip which of two equal-score cells a solver tie
// broke toward).
func (model *Model) SelectSheddingSet(
	pms []*engine.PartialMatch,
	now event.Time, nowSeq uint64,
	violation float64,
	solver knapsack.Solver,
) *SheddingSet {
	if violation <= 0 || len(pms) == 0 {
		return nil
	}
	counts := map[cellKey]int{}
	for _, pm := range pms {
		class := pm.Class
		if class < 0 {
			class = 0
		}
		cell := cellKey{pm.State(), class, model.SliceOf(pm, now, nowSeq)}
		counts[cell]++
	}
	keys := make([]cellKey, 0, len(counts))
	for cell := range counts {
		keys = append(keys, cell)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.state != b.state {
			return a.state < b.state
		}
		if a.class != b.class {
			return a.class < b.class
		}
		return a.slice < b.slice
	})
	cells := make([]planCell, 0, len(keys))
	for _, cell := range keys {
		contrib, consume := model.Estimate(cell.state, cell.class, cell.slice)
		cells = append(cells, planCell{
			state: cell.state, class: cell.class, slice: cell.slice,
			count: counts[cell], contrib: contrib, consume: consume,
		})
	}
	return selectFromPlanCells(cells, violation, solver)
}
