package core

import (
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/knapsack"
)

// SheddingSet is the outcome of shedding-set selection (§IV-B): the
// (state, class, slice) cells whose live partial matches are to be shed,
// plus the (state, class) pairs driving the input-based filter ρI.
type SheddingSet struct {
	// Cells are the selected cells.
	Cells map[cellKey]bool
	// Classes are the (state, class) pairs covered by the set, used to
	// derive the input filter (§IV-C).
	Classes map[[2]int]bool
	// PredictedSavings is the consumption share the set covers.
	PredictedSavings float64
	// PredictedLoss is the contribution share the set gives up.
	PredictedLoss float64
	// Items is the number of knapsack items the selection ran over.
	Items int
}

// Contains reports whether a live partial match falls into the set.
func (ss *SheddingSet) Contains(state, class, slice int) bool {
	if ss == nil {
		return false
	}
	return ss.Cells[cellKey{state, class, slice}]
}

// ContainsClass reports whether a (state, class) pair is in the set.
func (ss *SheddingSet) ContainsClass(state, class int) bool {
	if ss == nil {
		return false
	}
	return ss.Classes[[2]int{state, class}]
}

// SelectSheddingSet aggregates the live partial matches into cost-model
// cells, computes per-cell relative contribution Δ+ and consumption Δ−
// (Eqs. 5 and 7), and solves the covering knapsack of Eq. 8: minimize the
// shed contribution subject to the shed consumption covering at least the
// relative latency violation.
func (model *Model) SelectSheddingSet(
	pms []*engine.PartialMatch,
	now event.Time, nowSeq uint64,
	violation float64,
	solver knapsack.Solver,
) *SheddingSet {
	if violation <= 0 || len(pms) == 0 {
		return nil
	}
	if violation > 1 {
		violation = 1
	}
	// Aggregate live matches into cells.
	counts := map[cellKey]int{}
	for _, pm := range pms {
		class := pm.Class
		if class < 0 {
			class = 0
		}
		cell := cellKey{pm.State(), class, model.SliceOf(pm, now, nowSeq)}
		counts[cell]++
	}
	cells := make([]cellKey, 0, len(counts))
	items := make([]knapsack.Item, 0, len(counts))
	var totalC, totalW float64
	for cell, n := range counts {
		c, w := model.Estimate(cell.state, cell.class, cell.slice)
		c *= float64(n)
		w *= float64(n)
		id := len(cells)
		cells = append(cells, cell)
		items = append(items, knapsack.Item{ID: id, Value: c, Weight: w})
		totalC += c
		totalW += w
	}
	if totalW <= 0 {
		return nil
	}
	// Normalize to shares so the violation is directly the cover bound.
	for i := range items {
		if totalC > 0 {
			items[i].Value /= totalC
		}
		items[i].Weight /= totalW
	}
	shedIDs := knapsack.MinCover(items, violation, solver)
	ss := &SheddingSet{
		Cells:   make(map[cellKey]bool, len(shedIDs)),
		Classes: map[[2]int]bool{},
		Items:   len(items),
	}
	for _, id := range shedIDs {
		cell := cells[id]
		ss.Cells[cell] = true
		ss.Classes[[2]int{cell.state, cell.class}] = true
		ss.PredictedSavings += items[id].Weight
		ss.PredictedLoss += items[id].Value
	}
	return ss
}
