package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/knapsack"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// TestFNV1aMatchesStdlib pins the inlined string hash to hash/fnv bit
// for bit: trained trees split on hashed feature values, so the two
// implementations diverging would silently reclassify events.
func TestFNV1aMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []string{"", "a", "station-42", "\x00\xff", "日本語"}
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(24))
		rng.Read(b)
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		h := fnv.New32a()
		h.Write([]byte(s))
		if got, want := fnv1a32(s), h.Sum32(); got != want {
			t.Fatalf("fnv1a32(%q) = %d, stdlib %d", s, got, want)
		}
	}
}

// stringifyIDs converts the ID attribute to a string value, forcing the
// admission path through the string-hash feature branch.
func stringifyIDs(s event.Stream) event.Stream {
	out := make(event.Stream, len(s))
	for i, e := range s {
		attrs := map[string]event.Value{}
		for k, v := range e.Attrs {
			if k == "ID" {
				attrs[k] = event.Str("id-" + strconv.FormatInt(v.I, 10))
			} else {
				attrs[k] = v
			}
		}
		ne := event.New(e.Type, e.Time, attrs)
		ne.Seq = e.Seq
		out[i] = ne
	}
	return out
}

// randomClassSet builds a shedding set with a random (state, class)
// cover — admission only reads Classes, so Cells can stay empty.
func randomClassSet(rng *rand.Rand, model *Model) *SheddingSet {
	ss := &SheddingSet{Cells: map[cellKey]bool{}, Classes: map[[2]int]bool{}}
	for s := range model.machine.States {
		k := model.NumClasses(s)
		if k == 0 {
			k = 1
		}
		for c := 0; c < k; c++ {
			if rng.Intn(2) == 0 {
				ss.Classes[[2]int{s, c}] = true
			}
		}
	}
	return ss
}

// TestAdmitCompiledMatchesInterpreted is the randomized differential for
// the compiled admission table: over trained models (numeric and
// string-featured), random shedding sets (both knapsack-selected and
// adversarially random), and crafted edge events, the compiled decision
// must equal the interpreted reference on every event.
func TestAdmitCompiledMatchesInterpreted(t *testing.T) {
	type variant struct {
		name    string
		q       *query.Query
		prep    func(event.Stream) event.Stream
		badAttr string
	}
	variants := []variant{
		{name: "numeric", q: query.Q1("8ms"), prep: func(s event.Stream) event.Stream { return s }},
		{name: "string-ids", q: query.MustParse(`
			PATTERN SEQ(A a, B b, C c)
			WHERE a.ID = b.ID AND a.ID = c.ID
			WITHIN 8ms`), prep: stringifyIDs},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				m := nfa.MustCompile(v.q)
				training := v.prep(gen.DS1(gen.DS1Config{Events: 3000, Seed: 11 + seed, InterArrival: testIA}))
				model, err := Train(m, training, TrainConfig{Slices: 4, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				h := NewHybrid(model, Config{Bound: event.Millisecond})
				en := engine.New(m, engine.DefaultCosts())
				h.Attach(en)
				live := v.prep(gen.DS1(gen.DS1Config{Events: 2000, Seed: 100 + seed, InterArrival: testIA}))
				for _, e := range live[:500] {
					en.Process(e)
				}
				rng := rand.New(rand.NewSource(seed * 31))
				probe := append(event.Stream{}, live[500:]...)
				// Edge events: unknown type, missing attributes.
				probe = append(probe,
					event.New("ZZZ", live[len(live)-1].Time, map[string]event.Value{"ID": event.Int(1)}),
					event.New("A", live[len(live)-1].Time, nil),
					event.New("B", live[len(live)-1].Time, map[string]event.Value{"other": event.Str("x")}),
				)
				for round := 0; round < 8; round++ {
					var ss *SheddingSet
					if round%2 == 0 {
						last := live[499]
						ss = model.SelectSheddingSet(en.PartialMatches(), last.Time, last.Seq,
							0.1+rng.Float64()*0.8, knapsack.Exact)
						if ss == nil {
							continue
						}
					} else {
						ss = randomClassSet(rng, model)
					}
					h.ImposeSet(ss)
					for i, e := range probe {
						got := h.AdmitEvent(e, e.Time)
						want := h.AdmitEventInterpreted(e)
						if got != want {
							t.Fatalf("round %d event %d (%s): compiled %v, interpreted %v (classes %v)",
								round, i, e.Type, got, want, ss.Classes)
						}
					}
				}
			}
		})
	}
}

// TestAdmitEventZeroAlloc pins the zero-allocation guarantee of the
// compiled per-event decision paths: Hybrid.AdmitEvent with an active
// set, and the fixed-ratio variant's event-utility scoring.
func TestAdmitEventZeroAlloc(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 1})
	h := NewHybrid(model, Config{Bound: event.Millisecond})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	live := gen.DS1(gen.DS1Config{Events: 1500, Seed: 9, InterArrival: testIA})
	for _, e := range live[:500] {
		en.Process(e)
	}
	last := live[499]
	ss := model.SelectSheddingSet(en.PartialMatches(), last.Time, last.Seq, 0.5, knapsack.Exact)
	if ss == nil {
		t.Fatal("no shedding set selected")
	}
	h.ImposeSet(ss)
	if !h.InputActive() {
		t.Fatal("input shedding not active")
	}
	probe := live[500:]
	i := 0
	if got := testing.AllocsPerRun(500, func() {
		e := probe[i%len(probe)]
		i++
		h.AdmitEvent(e, e.Time)
	}); got != 0 {
		t.Errorf("Hybrid.AdmitEvent allocates %.1f per event, want 0", got)
	}

	fr := NewFixedRatioHybrid(model, 0.4, true, 3)
	fr.Attach(engine.New(m, engine.DefaultCosts()))
	i = 0
	if got := testing.AllocsPerRun(500, func() {
		e := probe[i%len(probe)]
		i++
		fr.eventUtility(e)
	}); got != 0 {
		t.Errorf("FixedRatioHybrid.eventUtility allocates %.1f per event, want 0", got)
	}
}

// TestSelectSheddingSetDeterministic pins the determinism fix: the same
// population must produce the same set regardless of partial-match
// iteration order (the old map-ordered item build could flip solver tie
// breaks between identical calls).
func TestSelectSheddingSetDeterministic(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 2})
	h := NewHybrid(model, Config{Bound: event.Millisecond})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	live := gen.DS1(gen.DS1Config{Events: 1200, Seed: 4, InterArrival: testIA})
	for _, e := range live {
		en.Process(e)
	}
	last := live[len(live)-1]
	pms := append([]*engine.PartialMatch{}, en.PartialMatches()...)
	rng := rand.New(rand.NewSource(5))
	var want string
	for trial := 0; trial < 6; trial++ {
		rng.Shuffle(len(pms), func(i, j int) { pms[i], pms[j] = pms[j], pms[i] })
		ss := model.SelectSheddingSet(pms, last.Time, last.Seq, 0.4, knapsack.Exact)
		if ss == nil {
			t.Fatal("no set selected")
		}
		got := fmt.Sprintf("%v", ss.ClassPairs()) + fmt.Sprintf(" cells=%d items=%d", len(ss.Cells), ss.Items)
		if trial == 0 {
			want = got
		} else if got != want {
			t.Fatalf("selection not deterministic:\ntrial 0: %s\ntrial %d: %s", want, trial, got)
		}
	}
}

// TestPlanCellSelectionMatchesPMSelection proves the planner's bucketed
// population snapshot feeds the knapsack exactly what the full
// partial-match walk does: identical sets, predictions, and item counts.
func TestPlanCellSelectionMatchesPMSelection(t *testing.T) {
	m, model := trainDS1(t, TrainConfig{Slices: 4, Seed: 3})
	h := NewHybrid(model, Config{Bound: event.Millisecond})
	en := engine.New(m, engine.DefaultCosts())
	h.Attach(en)
	live := gen.DS1(gen.DS1Config{Events: 1500, Seed: 6, InterArrival: testIA})
	for i, e := range live {
		en.Process(e)
		if i%97 != 96 {
			continue
		}
		for _, violation := range []float64{0.15, 0.4, 0.6} {
			fromPMs := model.SelectSheddingSet(en.PartialMatches(), e.Time, e.Seq, violation, knapsack.Exact)
			cells := model.snapshotPlanCells(en, e.Time, e.Seq, nil)
			fromCells := selectFromPlanCells(cells, violation, knapsack.Exact)
			if (fromPMs == nil) != (fromCells == nil) {
				t.Fatalf("event %d v=%.2f: nil mismatch: pms=%v cells=%v", i, violation, fromPMs, fromCells)
			}
			if fromPMs == nil {
				continue
			}
			if len(fromPMs.Cells) != len(fromCells.Cells) || fromPMs.Items != fromCells.Items {
				t.Fatalf("event %d v=%.2f: shape diverged: pms %d cells/%d items, plan %d cells/%d items",
					i, violation, len(fromPMs.Cells), fromPMs.Items, len(fromCells.Cells), fromCells.Items)
			}
			for cell := range fromPMs.Cells {
				if !fromCells.Cells[cell] {
					t.Fatalf("event %d v=%.2f: cell %v selected from pms but not from plan cells", i, violation, cell)
				}
			}
			if dp, dc := fromPMs.PredictedSavings-fromCells.PredictedSavings, fromPMs.PredictedLoss-fromCells.PredictedLoss; dp > 1e-12 || dp < -1e-12 || dc > 1e-12 || dc < -1e-12 {
				t.Fatalf("event %d v=%.2f: predictions diverged: savings %v vs %v, loss %v vs %v",
					i, violation, fromPMs.PredictedSavings, fromCells.PredictedSavings,
					fromPMs.PredictedLoss, fromCells.PredictedLoss)
			}
		}
	}
}
