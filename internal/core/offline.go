package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/mlkit"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/vclock"
)

// TrainConfig configures offline cost-model estimation (§V-B).
type TrainConfig struct {
	// Slices is the number of time slices the window is split into
	// (§V-A); Fig 10 sweeps 1-6. Default 4.
	Slices int
	// MaxClusters caps the cluster count chosen by the gap statistic per
	// state. Default 10 (the paper's classifier depth bound).
	MaxClusters int
	// MinClusters floors the cluster count. Contribution and consumption
	// are strongly correlated with stream load, so dispersion-based
	// criteria tend to pick very few clusters and miss the small
	// zero-contribution corner that precise shedding depends on; the
	// paper's estimation grid (Fig 13) shows recall saturating around 8
	// clusters per state, which is the default floor.
	MinClusters int
	// FixedClusters, when non-nil, pins the cluster count per state
	// (Fig 13's grid sweep), bypassing the gap statistic.
	FixedClusters map[int]int
	// ResourceCosts enables the explicit per-match resource cost Ω(p)
	// (length plus per-event predicate load, §IV-A); when false every
	// partial match weighs 1, the ablation of Fig 11.
	ResourceCosts bool
	// Seed drives clustering determinism.
	Seed int64
	// GapRefSets is the number of reference datasets for the gap
	// statistic. Default 4.
	GapRefSets int
	// DeferredNegation trains on an engine running witness-based
	// negation semantics, so negation witnesses receive their own
	// (zero-contribution) classes.
	DeferredNegation bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Slices <= 0 {
		c.Slices = 4
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 10
	}
	if c.MinClusters <= 0 {
		c.MinClusters = 8
	}
	if c.MinClusters > c.MaxClusters {
		c.MinClusters = c.MaxClusters
	}
	if c.GapRefSets <= 0 {
		c.GapRefSets = 4
	}
	return c
}

// Model is the trained cost model: per automaton state a classifier over
// partial-match features and per (state, class, slice) the estimated
// remaining contribution and consumption.
type Model struct {
	machine *nfa.Machine
	spec    *featureSpec
	cfg     TrainConfig

	window query.Window
	// sliceLen is the virtual-time length of one slice (time windows).
	sliceLen event.Time
	// sliceEvents is the event-count length of one slice (count windows).
	sliceEvents int

	states []*stateModel
}

type stateModel struct {
	tree *mlkit.Tree
	k    int
	// contrib/consume estimates per [class][slice]: the 90th percentile
	// of the contribution/consumption a class member still generates from
	// that slice onward (updated online by the Adapter).
	contrib [][]float64
	consume [][]float64
	// freq is the fraction of training partial matches per class.
	freq []float64
	// regions are the classifier's feature-space regions per class, used
	// to project class predicates onto raw events for input shedding.
	regions [][]mlkit.Region
}

// pmRecord is one training observation: the per-slice contribution and
// consumption a partial match generated over its lifetime.
type pmRecord struct {
	state    int
	features []float64
	contrib  []float64 // per slice of the ancestor's age at credit time
	consume  []float64
}

func (r *pmRecord) total() (c, w float64) {
	for i := range r.contrib {
		c += r.contrib[i]
		w += r.consume[i]
	}
	return c, w
}

// futureFrom sums the per-slice series from slice s onward: the remaining
// value of a class member that has aged into slice s.
func futureFrom(series []float64, s int) float64 {
	var sum float64
	for i := s; i < len(series); i++ {
		sum += series[i]
	}
	return sum
}

// Train runs the query over historic data, records every partial match
// with its realized per-slice contribution and consumption, clusters them
// per state, and fits the per-state classifiers (§V-B offline estimation).
func Train(m *nfa.Machine, training event.Stream, cfg TrainConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	model := &Model{
		machine: m,
		spec:    newFeatureSpec(m, training),
		cfg:     cfg,
		window:  m.Query.Window,
	}
	if model.window.Duration > 0 {
		model.sliceLen = model.window.Duration / event.Time(cfg.Slices)
		if model.sliceLen <= 0 {
			model.sliceLen = 1
		}
	} else {
		model.sliceEvents = model.window.Count / cfg.Slices
		if model.sliceEvents <= 0 {
			model.sliceEvents = 1
		}
	}

	// Collect per-PM records by replaying the training stream. Credits
	// are attributed per slice of the ancestor's age at the moment the
	// derived match appears, so estimates reflect REMAINING value.
	type accum struct {
		rec    *pmRecord
		pm     *engine.PartialMatch
		parent *accum
	}
	byID := map[uint64]*accum{}
	var records []*pmRecord

	en := engine.New(m, engine.DefaultCosts())
	en.DeferredNegation = cfg.DeferredNegation
	var now event.Time
	var nowSeq uint64
	en.OnCreate = func(pm *engine.PartialMatch) {
		rec := &pmRecord{
			state:    pm.State(),
			features: model.spec.pmFeatures(pm),
			contrib:  make([]float64, cfg.Slices),
			consume:  make([]float64, cfg.Slices),
		}
		a := &accum{rec: rec, pm: pm}
		if p := pm.Parent(); p != nil {
			a.parent = byID[p.ID()]
		}
		byID[pm.ID()] = a
		records = append(records, rec)
		// Attribute this match's resource cost to itself and every
		// ancestor (Γ−, Eq. 4), at the ancestor's current slice.
		omega := model.omega(pm)
		for cur := a; cur != nil; cur = cur.parent {
			sl := model.sliceOfPM(cur.pm, now, nowSeq)
			cur.rec.consume[sl] += omega
		}
	}
	for _, e := range training {
		now, nowSeq = e.Time, e.Seq
		res := en.Process(e)
		for _, match := range res.Matches {
			src := match.Source
			if src == nil {
				continue
			}
			// Credit the complete match to the source run and every
			// ancestor (Γ+, Eq. 3), at the ancestor's current slice.
			for cur := byID[src.ID()]; cur != nil; cur = cur.parent {
				sl := model.sliceOfPM(cur.pm, now, nowSeq)
				cur.rec.contrib[sl]++
			}
		}
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("core: training stream produced no partial matches")
	}

	// Cluster per state and fit classifiers.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	model.states = make([]*stateModel, len(m.States))
	for s := range m.States {
		var recs []*pmRecord
		for _, r := range records {
			if r.state == s {
				recs = append(recs, r)
			}
		}
		model.states[s] = model.fitState(s, recs, rng)
	}
	return model, nil
}

// MustTrain trains and panics on error (tests and fixed experiments).
func MustTrain(m *nfa.Machine, training event.Stream, cfg TrainConfig) *Model {
	model, err := Train(m, training, cfg)
	if err != nil {
		panic(err)
	}
	return model
}

// featureGroup aggregates the training records sharing one feature
// vector. Individual partial matches have extremely noisy (Γ+, Γ−)
// realizations (they depend on which correlated events happened to share
// the window); clustering the per-group MEANS recovers the structural
// relation between attribute values and cost, which is what the class
// predicates must capture.
type featureGroup struct {
	features []float64
	recs     []*pmRecord
}

func (model *Model) fitState(s int, recs []*pmRecord, rng *rand.Rand) *stateModel {
	cfg := model.cfg
	sm := &stateModel{k: 1}
	if len(recs) == 0 {
		sm.contrib = [][]float64{constSlices(0, cfg.Slices)}
		sm.consume = [][]float64{constSlices(1, cfg.Slices)}
		sm.freq = []float64{1}
		return sm
	}
	// Group records by feature vector.
	index := map[string]*featureGroup{}
	var groups []*featureGroup
	for _, r := range recs {
		key := fmt.Sprint(r.features)
		g := index[key]
		if g == nil {
			g = &featureGroup{features: r.features}
			index[key] = g
			groups = append(groups, g)
		}
		g.recs = append(g.recs, r)
	}

	// Cluster the normalized per-group mean (Γ+, Γ−).
	points := make([][]float64, len(groups))
	maxC, maxW := 0.0, 0.0
	means := make([][2]float64, len(groups))
	for i, g := range groups {
		var c, w float64
		for _, r := range g.recs {
			rc, rw := r.total()
			c += rc
			w += rw
		}
		c /= float64(len(g.recs))
		w /= float64(len(g.recs))
		means[i] = [2]float64{c, w}
		if c > maxC {
			maxC = c
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxC == 0 {
		maxC = 1
	}
	if maxW == 0 {
		maxW = 1
	}
	for i := range groups {
		points[i] = []float64{means[i][0] / maxC, means[i][1] / maxW}
	}
	k := 0
	if cfg.FixedClusters != nil {
		k = cfg.FixedClusters[s]
	}
	if k <= 0 {
		k = mlkit.GapStatistic(points, cfg.MaxClusters, cfg.GapRefSets, rng)
		if k < cfg.MinClusters {
			k = cfg.MinClusters
		}
	}
	if k > len(groups) {
		k = len(groups)
	}
	res := mlkit.KMeans(points, k, rng)
	sm.k = len(res.Centroids)

	// Per-class, per-slice 90th percentiles of the REMAINING value from
	// that slice onward, over the member partial matches.
	sm.contrib = make([][]float64, sm.k)
	sm.consume = make([][]float64, sm.k)
	sm.freq = make([]float64, sm.k)
	perClass := make([][]*pmRecord, sm.k)
	for i, g := range groups {
		c := res.Labels[i]
		sm.freq[c] += float64(len(g.recs))
		perClass[c] = append(perClass[c], g.recs...)
	}
	for c := 0; c < sm.k; c++ {
		sm.freq[c] /= float64(len(recs))
		sm.contrib[c] = make([]float64, cfg.Slices)
		sm.consume[c] = make([]float64, cfg.Slices)
		for sl := 0; sl < cfg.Slices; sl++ {
			var cs, ws []float64
			for _, r := range perClass[c] {
				cs = append(cs, futureFrom(r.contrib, sl))
				ws = append(ws, futureFrom(r.consume, sl))
			}
			sm.contrib[c][sl] = percentile(cs, 90)
			sm.consume[c][sl] = math.Max(percentile(ws, 90), 1e-9)
		}
	}

	// Classifier: features -> class label, depth bounded by the cluster
	// count (§V-B "balanced decision trees, maximal depth = #clusters"),
	// trained on one sample per feature group.
	if sm.k > 1 {
		feats := make([][]float64, len(groups))
		labels := make([]int, len(groups))
		for i, g := range groups {
			feats[i] = g.features
			labels[i] = res.Labels[i]
		}
		sm.tree = mlkit.TrainTree(feats, labels, sm.k, 1)
	}
	// Class regions for event projection (nil tree => single class whose
	// region is the whole space).
	sm.regions = make([][]mlkit.Region, sm.k)
	if sm.tree != nil {
		for c := 0; c < sm.k; c++ {
			sm.regions[c] = sm.tree.ClassRegions(c)
		}
	}
	return sm
}

func constSlices(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// omega is the resource cost Ω(p) of a partial match: with explicit
// resource costs, its length plus the number of predicates evaluated per
// event while it is live; otherwise 1 (§IV-A, Fig 11 ablation).
func (model *Model) omega(pm *engine.PartialMatch) float64 {
	if !model.cfg.ResourceCosts {
		return 1
	}
	s := pm.State()
	preds := len(model.machine.States[s].Incremental)
	if s+1 < len(model.machine.States) {
		preds += len(model.machine.States[s+1].Bind)
		for _, g := range model.machine.States[s+1].Guards {
			preds += len(g.Preds) + 1
		}
	}
	return float64(pm.Len() + preds)
}

// Omega exposes the resource cost of a partial match under this model.
func (model *Model) Omega(pm *engine.PartialMatch) float64 { return model.omega(pm) }

// Slices returns the configured number of time slices.
func (model *Model) Slices() int { return model.cfg.Slices }

// NumClasses returns the number of classes at a state.
func (model *Model) NumClasses(state int) int { return model.states[state].k }

// Machine returns the automaton the model was trained for.
func (model *Model) Machine() *nfa.Machine { return model.machine }

// sliceOfPM maps a partial match to its current time slice given the
// current time (or sequence number for count windows): the slice indexes
// how much of the match's time-to-live has elapsed (§V-A).
func (model *Model) sliceOfPM(pm *engine.PartialMatch, now event.Time, nowSeq uint64) int {
	return model.sliceOfStart(pm.StartTime(), pm.StartSeq(), now, nowSeq)
}

// sliceOfStart is sliceOfPM on the raw window-start coordinates — the
// form the class-bucketed index walk uses, so a population snapshot bins
// matches into exactly the slices the drop predicate will see.
func (model *Model) sliceOfStart(startTime event.Time, startSeq uint64, now event.Time, nowSeq uint64) int {
	var sl int
	if model.sliceLen > 0 {
		sl = int((now - startTime) / model.sliceLen)
	} else {
		sl = int(nowSeq-startSeq) / model.sliceEvents
	}
	if sl < 0 {
		sl = 0
	}
	if sl >= model.cfg.Slices {
		sl = model.cfg.Slices - 1
	}
	return sl
}

// SliceOf returns the current time slice of a live partial match.
func (model *Model) SliceOf(pm *engine.PartialMatch, now event.Time, nowSeq uint64) int {
	return model.sliceOfPM(pm, now, nowSeq)
}

// Classify assigns a partial match to its class (§V-B online use of the
// per-state classifier). The per-match decision is O(tree depth).
func (model *Model) Classify(pm *engine.PartialMatch) int {
	sm := model.states[pm.State()]
	if sm.tree == nil {
		return 0
	}
	return sm.tree.Predict(model.spec.pmFeatures(pm))
}

// EventCandidateClasses returns the classes a raw event COULD fall into
// as the newest event of a state-s partial match: the classes whose
// decision-tree regions, projected onto the event's own attribute
// positions, contain the event's values. Input-based shedding may discard
// an event only when every candidate class is in the shedding set — the
// event-level projection of the class predicates (§IV-C, §V-A).
func (model *Model) EventCandidateClasses(state int, e *event.Event) []int {
	sm := model.states[state]
	if sm.tree == nil {
		return []int{0}
	}
	own := model.spec.eventOwnFeatures(state, e)
	lo, hi := model.spec.ownStart[state], model.spec.ownEnd[state]
	var out []int
	for c := 0; c < sm.k; c++ {
		for _, r := range sm.regions[c] {
			if regionCompatible(r, lo, hi, own) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// eventBestContribution is the highest ClassContribution among the
// event's candidate classes at a state — EventCandidateClasses folded
// with its consumer so the per-event utility path never materializes the
// class list. buf is a caller-owned scratch for the own-feature values.
func (model *Model) eventBestContribution(state int, e *event.Event, buf []float64) float64 {
	sm := model.states[state]
	if sm.tree == nil {
		return model.ClassContribution(state, 0)
	}
	own := model.spec.eventOwnFeaturesInto(state, e, buf)
	lo, hi := model.spec.ownStart[state], model.spec.ownEnd[state]
	best := 0.0
	for c := 0; c < sm.k; c++ {
		compatible := false
		for _, r := range sm.regions[c] {
			if regionCompatible(r, lo, hi, own) {
				compatible = true
				break
			}
		}
		if !compatible {
			continue
		}
		if u := model.ClassContribution(state, c); u > best {
			best = u
		}
	}
	return best
}

// regionCompatible checks the projection of a region onto feature
// positions [lo,hi) against the event's own values.
func regionCompatible(r mlkit.Region, lo, hi int, own []float64) bool {
	for i := lo; i < hi && i-lo < len(own); i++ {
		v := own[i-lo]
		if v < r.Lo[i] || v > r.Hi[i] {
			return false
		}
	}
	return true
}

// Estimate returns the current contribution and consumption estimates of
// a (state, class, slice) cell.
func (model *Model) Estimate(state, class, slice int) (contrib, consume float64) {
	sm := model.states[state]
	if class < 0 || class >= sm.k {
		class = 0
	}
	if slice < 0 {
		slice = 0
	}
	if slice >= model.cfg.Slices {
		slice = model.cfg.Slices - 1
	}
	return sm.contrib[class][slice], sm.consume[class][slice]
}

// setEstimate is used by the online Adapter.
func (model *Model) setEstimate(state, class, slice int, contrib, consume float64) {
	sm := model.states[state]
	sm.contrib[class][slice] = contrib
	sm.consume[class][slice] = math.Max(consume, 1e-9)
}

// ClassFreq returns the training frequency of a class at a state.
func (model *Model) ClassFreq(state, class int) float64 {
	sm := model.states[state]
	if class < 0 || class >= sm.k {
		return 0
	}
	return sm.freq[class]
}

// ClassUtility returns the contribution/consumption ratio of a class
// aggregated over slices — the density ordering used when the shedding
// budget is resource consumption.
func (model *Model) ClassUtility(state, class int) float64 {
	var c, w float64
	for sl := 0; sl < model.cfg.Slices; sl++ {
		cc, ww := model.Estimate(state, class, sl)
		c += cc
		w += ww
	}
	if w <= 0 {
		return c
	}
	return c / w
}

// ClassContribution returns the contribution of a class aggregated over
// slices — the value ordering used when the shedding budget is a COUNT
// of items (fixed-ratio shedding): shedding N items loses the least when
// the lowest-contribution items go first, regardless of their cost.
func (model *Model) ClassContribution(state, class int) float64 {
	var c float64
	for sl := 0; sl < model.cfg.Slices; sl++ {
		cc, _ := model.Estimate(state, class, sl)
		c += cc
	}
	return c
}

// EstimationWork is the virtual cost charged when a shedding set is
// computed over n cells (the paper reports a few nanoseconds per DP over
// tens of classes; we charge proportionally).
func EstimationWork(cells int) vclock.Cost { return vclock.Cost(20 * cells) }
