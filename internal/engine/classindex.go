package engine

import (
	"cepshed/internal/event"
	"cepshed/internal/vclock"
)

// This file implements the class-bucketed partial-match index: beside
// the type index (index.go), every live match is also linked into the
// bucket of its (state, effective class) pair. Two consumers rely on it:
//
//   - DropClasses retires a shedding set by walking only the buckets the
//     set covers — O(candidates) physical work instead of the O(live)
//     full-store scan DropIf does — while still charging the paper's
//     virtual PerScan for every live match, the same physical-vs-virtual
//     split the expiry ring and the per-event scan charge use.
//   - ClassCellCounts reads per-(state, class, slice) populations off the
//     buckets without touching the full store, which is what makes the
//     async shed planner's population snapshot cheap enough for the hot
//     path.
//
// The structure mirrors typeBucket: entries in registration order, a gen
// guard against recycled objects, lazy per-bucket compaction. Unlike the
// type index a match lives in exactly one class bucket, witnesses
// included (witnesses are shed-eligible), and the index is maintained on
// the reference scan path too — it is the source of truth for shedding,
// not a dispatch optimization.

// classEntry is one class-bucket slot; gen snapshots the match's recycle
// generation so entries pointing at a reused object are skipped.
type classEntry struct {
	pm  *PartialMatch
	gen uint32
}

// classBucket holds, in registration order, the matches of one
// (state, effective class) pair. dead counts entries whose match died.
type classBucket struct {
	entries []classEntry
	dead    int
}

// classIndex groups live matches by (state, effective class). A match's
// effective class is max(Class, 0): unclassified matches bucket under
// class 0, matching the max(Class, 0) convention every shedding
// predicate already uses. byState rows grow on demand as classes appear.
type classIndex struct {
	byState [][]*classBucket
	dead    int // dead entries across all buckets (compaction valve)
	buckets int
}

// effectiveClass is the bucket class of a match: its model class, with
// "unclassified" (negative) folded onto class 0.
func effectiveClass(pm *PartialMatch) int {
	if pm.Class > 0 {
		return pm.Class
	}
	return 0
}

// classIndexPM links a freshly registered match into its class bucket.
// Must run after OnCreate, which is what assigns pm.Class; the class is
// immutable afterwards (registered matches only ever mutate their dead
// flag), so the bucket link stays valid for the match's lifetime.
func (en *Engine) classIndexPM(pm *PartialMatch) {
	s := pm.cur
	c := effectiveClass(pm)
	row := en.classes.byState[s]
	for c >= len(row) {
		row = append(row, nil)
	}
	b := row[c]
	if b == nil {
		b = &classBucket{}
		row[c] = b
		en.classes.buckets++
	}
	en.classes.byState[s] = row
	b.entries = append(b.entries, classEntry{pm: pm, gen: pm.gen})
}

// noteDeadClass records a match's death in its class bucket (called from
// noteDead for every match, witnesses and scan engines included).
func (en *Engine) noteDeadClass(pm *PartialMatch) {
	row := en.classes.byState[pm.cur]
	c := effectiveClass(pm)
	if c < len(row) {
		if b := row[c]; b != nil {
			b.dead++
			en.classes.dead++
		}
	}
}

// compactClassBucket drops dead and stale entries in place, preserving
// registration order.
func (en *Engine) compactClassBucket(b *classBucket) {
	live := b.entries[:0]
	for _, ent := range b.entries {
		if ent.pm.gen == ent.gen && !ent.pm.dead {
			live = append(live, ent)
		}
	}
	for i := len(live); i < len(b.entries); i++ {
		b.entries[i] = classEntry{}
	}
	b.entries = live
	en.classes.dead -= b.dead
	b.dead = 0
}

// compactClassIndex sweeps every dirty bucket (safety valve, mirroring
// the type index's: buckets of classes the stream stopped producing
// would keep dead entries forever otherwise).
func (en *Engine) compactClassIndex() {
	for _, row := range en.classes.byState {
		for _, b := range row {
			if b != nil && b.dead > 0 {
				en.compactClassBucket(b)
			}
		}
	}
}

// resetClassIndex clears all buckets (Flush / Restore-onto-fresh).
func (en *Engine) resetClassIndex() {
	for _, row := range en.classes.byState {
		for _, b := range row {
			if b == nil {
				continue
			}
			for i := range b.entries {
				b.entries[i] = classEntry{}
			}
			b.entries = b.entries[:0]
			b.dead = 0
		}
	}
	en.classes.dead = 0
}

// DropEpoch counts the mutations that invalidate a previously read class
// population: shedding drops, flushes, and restores. The async shed
// planner stamps each plan with the epoch its population snapshot was
// read at and discards the plan if the epoch moved before it could be
// applied (the population the knapsack optimized no longer exists).
// Window expiry deliberately does not bump it: expiry shrinks cells the
// plan would have shed anyway, it never grows them.
func (en *Engine) DropEpoch() uint64 { return en.dropEpoch }

// DropClasses removes every live match in the given (state, class)
// buckets for which shed returns true and returns the number removed
// along with the same virtual cost DropIf charges: the paper's shedder
// inspects every live match (one PerScan each) plus one PerDrop per
// match removed. The bucketed walk only touches the covered buckets
// physically; the PerScan charge over the full live population is
// applied arithmetically, exactly like the per-event scan charge in
// ProcessResolved.
func (en *Engine) DropClasses(pairs [][2]int, shed func(*PartialMatch) bool) (int, vclock.Cost) {
	liveBefore := en.live
	var cur DropCursor
	n, _ := en.dropClassesWalk(pairs, shed, -1, &cur)
	return n, vclock.Cost(liveBefore)*en.costs.PerScan + vclock.Cost(n)*en.costs.PerDrop
}

// DropCursor is a resumable position in a bounded class-drop walk: the
// pair being swept and the next entry index inside its bucket. The zero
// value starts a fresh sweep. If the bucket compacts between calls the
// saved entry index can skip (or re-examine) a few entries; re-examining
// is idempotent — dropped members are gone — and a skipped member is
// simply left for the next plan, which re-reads the population anyway.
type DropCursor struct {
	pair, entry int
}

// DropClassesBounded is DropClasses with an examination budget: the walk
// stops after touching budget bucket entries (live or stale) and reports
// done=false, so a caller on the hot path can retire a large shedding
// set in bounded pauses across several calls (the async planner's
// incremental plan application). The budget bounds entries EXAMINED, not
// matches dropped — a covered bucket whose members rarely satisfy the
// predicate costs scan time, not drop time, and an unbounded scan is
// exactly the pause this call exists to avoid. cur carries the resume
// position across calls. Matches that enter an already-swept bucket
// between calls are deliberately not chased — they were created after
// the plan's population and are not part of what it covers. The virtual
// charge is per live entry actually examined plus PerDrop per removal,
// matching the physical work of the bounded pass rather than DropIf's
// full-scan identity (bounded application is an asynchronous-mode
// mechanism; the paper's synchronous experiments use DropClasses/DropIf,
// whose cost contract is unchanged). Store compaction is deferred to the
// next Process call, which compacts anyway (engine.go).
func (en *Engine) DropClassesBounded(pairs [][2]int, shed func(*PartialMatch) bool, budget int, cur *DropCursor) (n int, cost vclock.Cost, done bool) {
	if budget < 0 {
		liveBefore := en.live
		var full DropCursor
		n, _ := en.dropClassesWalk(pairs, shed, -1, &full)
		return n, vclock.Cost(liveBefore)*en.costs.PerScan + vclock.Cost(n)*en.costs.PerDrop, true
	}
	n, scanned := en.dropClassesWalk(pairs, shed, budget, cur)
	return n, vclock.Cost(scanned)*en.costs.PerScan + vclock.Cost(n)*en.costs.PerDrop, cur.pair >= len(pairs)
}

// dropClassesWalk is the shared bucket walk: budget < 0 means unbounded.
// Returns matches removed and live entries examined; cur is left at the
// position the walk stopped.
func (en *Engine) dropClassesWalk(pairs [][2]int, shed func(*PartialMatch) bool, budget int, cur *DropCursor) (n, scanned int) {
	examined := 0
	for cur.pair < len(pairs) {
		pr := pairs[cur.pair]
		s, c := pr[0], pr[1]
		if s < 0 || s >= len(en.classes.byState) {
			cur.pair++
			cur.entry = 0
			continue
		}
		row := en.classes.byState[s]
		if c < 0 || c >= len(row) {
			cur.pair++
			cur.entry = 0
			continue
		}
		b := row[c]
		if b == nil {
			cur.pair++
			cur.entry = 0
			continue
		}
		// Lazy compaction only at a bucket's first visit (mid-bucket it
		// would shift the entries under the cursor), charged against the
		// budget and skipped when the bucket doesn't fit in what remains:
		// the sweep touches every entry, so an unconditional inline
		// compaction of a large bucket is exactly the O(bucket) pause the
		// budget exists to forbid. Oversized dirty buckets are left to the
		// Process-side valve (compactIfDirty); the walk still skips their
		// dead entries one budget unit at a time.
		if cur.entry == 0 && b.dead > 32 && b.dead*2 > len(b.entries) &&
			(budget < 0 || len(b.entries) <= budget-examined) {
			examined += len(b.entries)
			en.compactClassBucket(b)
		}
		ents := b.entries
		for cur.entry < len(ents) {
			if budget >= 0 && examined >= budget {
				en.finishDrop(n, budget < 0)
				return n, scanned
			}
			ent := &ents[cur.entry]
			cur.entry++
			examined++
			pm := ent.pm
			if pm.gen != ent.gen || pm.dead {
				continue
			}
			scanned++
			if shed(pm) {
				pm.dead = true
				en.noteDead(pm)
				n++
			}
		}
		cur.pair++
		cur.entry = 0
	}
	en.finishDrop(n, budget < 0)
	return n, scanned
}

// finishDrop is the common epilogue of a (possibly partial) drop pass.
// Bounded passes skip the store compaction: the next Process call
// compacts anyway (engine.go), and sweeping the whole store after every
// 64-member chunk would put the O(live) cost right back into the bounded
// pause the chunking exists to avoid.
func (en *Engine) finishDrop(n int, compact bool) {
	if n > 0 {
		en.stats.DroppedPMs += uint64(n)
		en.dropEpoch++
		if compact {
			en.compactIfDirty()
		}
	}
}

// CellCount is the live population of one (state, class, slice) cell.
type CellCount struct {
	State, Class, Slice int
	Count               int
}

// CellCursor is a resumable position in a chunked ClassCellCounts walk:
// the (state, class) bucket being binned, the next entry index inside
// it, and the in-progress bucket's partial per-slice tallies. The zero
// value starts a fresh walk; Reset reuses the tally storage. If the
// bucket compacts between chunks (the engine's class-index valve can run
// from Process) the saved entry index can skip or double-count a few
// entries — tolerable for a population snapshot that is already going
// stale while the planner runs, and impossible in the one-shot walk.
type CellCursor struct {
	state, class, entry int
	counts              []int
	live                int
}

// Reset rewinds the cursor to the start of the walk.
func (cur *CellCursor) Reset() {
	cur.state, cur.class, cur.entry, cur.live = 0, 0, 0, 0
}

// ClassCellCounts bins the live matches of every class bucket into
// slices via sliceOf and appends the non-empty cells to buf, returned in
// ascending (state, class, slice) order — the deterministic item order
// shedding-set selection consumes. The walk reads two fields per live
// match and no model state. sliceOf results are clamped to [0, nSlices).
func (en *Engine) ClassCellCounts(nSlices int, sliceOf func(startTime event.Time, startSeq uint64) int, buf []CellCount) []CellCount {
	var cur CellCursor
	out, _ := en.ClassCellCountsChunk(nSlices, sliceOf, buf, &cur, -1)
	return out
}

// ClassCellCountsChunk is ClassCellCounts with an examination budget:
// it touches at most budget bucket entries (live or stale), appends the
// cells of every bucket it finished to buf, and reports done=false with
// the position saved in cur when the budget runs out. The async planner
// accumulates its population snapshot this way, one bounded chunk per
// Control call, so snapshotting a large store never pauses the worker
// for the whole O(live) walk. budget < 0 means unbounded (one-shot).
// Each bucket's first visit may lazily compact it (same valve as the
// drop walk) — a mostly-dead bucket would otherwise make every snapshot
// walk its corpses.
func (en *Engine) ClassCellCountsChunk(nSlices int, sliceOf func(startTime event.Time, startSeq uint64) int, buf []CellCount, cur *CellCursor, budget int) ([]CellCount, bool) {
	if nSlices <= 0 {
		nSlices = 1
	}
	if len(cur.counts) != nSlices {
		cur.counts = make([]int, nSlices)
	}
	examined := 0
	for cur.state < len(en.classes.byState) {
		row := en.classes.byState[cur.state]
		if cur.class >= len(row) {
			cur.state++
			cur.class, cur.entry = 0, 0
			continue
		}
		b := row[cur.class]
		if b == nil || (cur.entry == 0 && len(b.entries) == b.dead) {
			cur.class++
			cur.entry = 0
			continue
		}
		if cur.entry == 0 {
			// Same budget-charged compaction valve as the drop walk: a
			// bucket too dirty-and-large to sweep within the remaining
			// budget is binned as-is (dead entries cost one budget unit
			// each) and left for the Process-side valve.
			if b.dead > 32 && b.dead*2 > len(b.entries) &&
				(budget < 0 || len(b.entries) <= budget-examined) {
				examined += len(b.entries)
				en.compactClassBucket(b)
				if len(b.entries) == 0 {
					cur.class++
					continue
				}
			}
			for i := range cur.counts {
				cur.counts[i] = 0
			}
			cur.live = 0
		}
		ents := b.entries
		for cur.entry < len(ents) {
			if budget >= 0 && examined >= budget {
				return buf, false
			}
			ent := &ents[cur.entry]
			cur.entry++
			examined++
			pm := ent.pm
			if pm.gen != ent.gen || pm.dead {
				continue
			}
			sl := sliceOf(pm.startTime, pm.startSeq)
			if sl < 0 {
				sl = 0
			} else if sl >= nSlices {
				sl = nSlices - 1
			}
			cur.counts[sl]++
			cur.live++
		}
		if cur.live > 0 {
			for sl, cnt := range cur.counts {
				if cnt > 0 {
					buf = append(buf, CellCount{State: cur.state, Class: cur.class, Slice: sl, Count: cnt})
				}
			}
		}
		cur.class++
		cur.entry = 0
	}
	return buf, true
}

// ClassIndexStats is the occupancy of the class-bucketed index.
type ClassIndexStats struct {
	Buckets int // allocated (state, class) buckets
	Live    int // live entries across buckets
	Dead    int // dead entries awaiting compaction
}

// ClassIndexStats reports bucket-index occupancy (exported on /stats and
// /metrics; also the cheap way for tests to assert index consistency).
func (en *Engine) ClassIndexStats() ClassIndexStats {
	st := ClassIndexStats{Buckets: en.classes.buckets}
	for _, row := range en.classes.byState {
		for _, b := range row {
			if b == nil {
				continue
			}
			st.Live += len(b.entries) - b.dead
			st.Dead += b.dead
		}
	}
	return st
}
