package engine

import (
	"runtime"

	"cepshed/internal/event"
)

// This file implements by-reference snapshot capture: the O(live) walk
// that Snapshot() does on the engine thread is split into a cheap
// capture (collect live-match pointers) and an Encode that may run on a
// background goroutine while the engine keeps processing events.
//
// Why this is safe without copying: a registered partial match is
// immutable except for its dead flag and the slab lifecycle fields
// (pooled, gen, children, pinned, deferred) — extension and Kleene
// takes always branch via clonePM, repetition slices are strict
// copy-on-write, events are immutable, and the shedder annotations
// Class/Slice are written in OnCreate before registration. The encoder
// reads none of the mutable fields, so the only hazard is recycling: a
// captured match (or an ancestor on its parent chain) dying mid-encode
// must not hand its memory back to the allocator while the encoder
// reads it. tryRelease therefore parks ALL releases on ref.deferred
// while a capture is in flight, and Release replays them. Capture cost
// is one pointer append per live match — no per-match writes at all —
// which is what keeps the serving thread's snapshot pause flat as
// state grows.
type SnapshotRef struct {
	en     *Engine
	defneg bool
	stats  Stats
	nextID uint64
	// pms are the matches live at capture time; the background encoder
	// reads only their immutable fields.
	pms []*PartialMatch
	// deferred are releases parked by tryRelease while this capture was
	// in flight; Release replays them on the engine's goroutine.
	deferred []*PartialMatch
	released bool
}

// CaptureSnapshot collects the live partial-match store by reference.
// Returns nil if a capture is already in flight (overlapping captures
// would replay each other's deferred releases). Cost is one pointer
// append per live match — the encoding and serialization happen in
// SnapshotRef.Encode, off the hot path.
func (en *Engine) CaptureSnapshot() *SnapshotRef {
	if en.snapRef != nil {
		return nil
	}
	// Process compacts at the end of every call, so between calls en.pms
	// normally holds no dead entries and the capture below is a bare
	// slice copy (a memcpy of pointers). Sweep explicitly if anything
	// died since, so the copy never needs a per-match liveness deref —
	// one cache miss per live match, which is what would otherwise
	// dominate the capture pause on large stores.
	if en.deadPMs > 0 {
		en.compactIfDirty()
	}
	ref := &SnapshotRef{
		en:     en,
		defneg: en.DeferredNegation,
		stats:  en.stats,
		nextID: en.nextID,
		pms:    append(make([]*PartialMatch, 0, len(en.pms)), en.pms...),
	}
	en.snapRef = ref
	return ref
}

// encodeYieldEvery bounds how many matches the background encoder
// serializes between scheduler yields, so that on a single-CPU host a
// large encode cannot monopolize the scheduler and reintroduce the
// pause it exists to remove. 16 keeps the between-yield chunk in the
// tens of microseconds even for matches with wide Kleene windows — the
// chunk IS the max pause the serving path sees on one CPU, so this
// constant is effectively the stall budget; the Gosched overhead this
// buys is noise against serializing 16 matches.
const encodeYieldEvery = 16

// Encode builds the serializable EngineState from the capture. Safe to
// call from a background goroutine while the engine keeps processing:
// it reads only immutable match fields, immutable bindings, and the
// compiled machine, and no captured memory is recycled while the
// capture is live.
func (ref *SnapshotRef) Encode() *EngineState {
	en := ref.en
	st := &EngineState{
		DeferredNegation: ref.defneg,
		Stats:            ref.stats,
		NextID:           ref.nextID,
	}
	idx := make(map[*event.Event]int32)
	evIndex := func(e *event.Event) int32 {
		if i, ok := idx[e]; ok {
			return i
		}
		i := int32(len(st.Events))
		st.Events = append(st.Events, e)
		idx[e] = i
		return i
	}
	n := len(en.m.States)
	for i, pm := range ref.pms {
		if i%encodeYieldEvery == encodeYieldEvery-1 {
			runtime.Gosched()
		}
		ps := PMState{
			ID:           pm.id,
			State:        pm.cur,
			StartTime:    pm.startTime,
			StartSeq:     pm.startSeq,
			Class:        pm.Class,
			Slice:        pm.Slice,
			WitnessGuard: -1,
			Singles:      make([]int32, n),
			Kleene:       make([][]int32, n),
		}
		if p := pm.parent; p != nil {
			ps.ParentID = p.id
		}
		if pm.witnessOf != nil {
			for gi := range en.m.States[pm.cur].Guards {
				if &en.m.States[pm.cur].Guards[gi] == pm.witnessOf {
					ps.WitnessGuard = gi
					break
				}
			}
		}
		for s := 0; s < n; s++ {
			if ev := pm.singles[s]; ev != nil {
				ps.Singles[s] = evIndex(ev)
			} else {
				ps.Singles[s] = -1
			}
			if reps := pm.kleene[s]; len(reps) > 0 {
				rs := make([]int32, len(reps))
				for j, ev := range reps {
					rs[j] = evIndex(ev)
				}
				ps.Kleene[s] = rs
			}
		}
		st.PMs = append(st.PMs, ps)
	}
	return st
}

// Release ends the capture and hands the releases tryRelease parked
// while it was in flight to the engine's incremental recycle queue —
// replaying them inline here would be an O(parked) serving-thread pause
// rivaling the encode the async protocol just moved off the hot path.
// Must run on the engine's owning goroutine between Process calls, and
// only after Encode has finished (the shard waits on the encode
// goroutine's done channel before settling).
func (ref *SnapshotRef) Release() {
	if ref.released {
		return
	}
	ref.released = true
	en := ref.en
	if en.snapRef == ref {
		en.snapRef = nil
	}
	if len(en.pendingRecycle) == 0 {
		en.pendingRecycle = ref.deferred
	} else {
		en.pendingRecycle = append(en.pendingRecycle, ref.deferred...)
	}
	ref.deferred = nil
	ref.pms = nil
}

// recycleDrainBudget bounds how many parked releases drainRecycle
// processes per Process call. 64 cascades cost a few microseconds —
// invisible next to per-event engine work — while draining far faster
// than any realistic snapshot interval parks.
const recycleDrainBudget = 64

// drainRecycle incrementally replays releases parked by past captures.
// Skipped entirely while a capture is in flight: a parked match can be
// an ancestor of a freshly captured one, so recycling mid-encode would
// race the encoder exactly like the park existed to prevent. Stale
// entries are harmless: a cascade may have recycled (pooled) or even
// reused (alive again) a parked match before its queue entry surfaces,
// and tryRelease's dead/pooled guards make both cases no-ops.
func (en *Engine) drainRecycle() {
	q := en.pendingRecycle
	if len(q) == 0 || en.snapRef != nil {
		return
	}
	n := recycleDrainBudget
	if n > len(q) {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		pm := q[len(q)-1]
		q[len(q)-1] = nil
		q = q[:len(q)-1]
		pm.deferred = false
		en.tryRelease(pm)
	}
	en.pendingRecycle = q
	if len(q) == 0 {
		en.pendingRecycle = nil
	}
}
