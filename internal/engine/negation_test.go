package engine

import (
	"math/rand"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func runDeferred(t *testing.T, q *query.Query, s event.Stream, deferred bool) []Match {
	t.Helper()
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.DeferredNegation = deferred
	var out []Match
	for _, e := range s {
		out = append(out, en.Process(e).Matches...)
	}
	return out
}

// Without shedding, witness-based (deferred) negation must be exactly
// equivalent to eager guard kills: same match sets on random streams.
func TestDeferredNegationEquivalence(t *testing.T) {
	q := query.Q4("5ms")
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var b event.Builder
		tm := event.Time(0)
		for i := 0; i < 150; i++ {
			tm += event.Time(rng.Intn(300)+50) * event.Microsecond
			types := []string{"A", "B", "C", "D"}
			b.Add(event.New(types[rng.Intn(4)], tm, map[string]event.Value{
				"ID": event.Int(int64(rng.Intn(3) + 1)),
				"V":  event.Int(int64(rng.Intn(5) + 1)),
			}))
		}
		s := b.Finish()
		eager := map[string]bool{}
		for _, k := range keys(runDeferred(t, q, s, false)) {
			eager[k] = true
		}
		deferred := runDeferred(t, q, s, true)
		if len(deferred) != len(eager) {
			t.Fatalf("seed %d: eager %d matches, deferred %d", seed, len(eager), len(deferred))
		}
		for _, m := range deferred {
			if !eager[m.Key()] {
				t.Fatalf("seed %d: deferred-only match %s", seed, m.Key())
			}
		}
	}
}

// Shedding a witness in deferred mode fabricates exactly the match the
// witness would have invalidated.
func TestWitnessSheddingFabricatesMatch(t *testing.T) {
	q := query.Q4("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
		event.New("B", 2*event.Millisecond, attrsIV(1, 0)), // violates
		event.New("C", 3*event.Millisecond, attrsIV(1, 0)),
		event.New("D", 4*event.Millisecond, attrsIV(1, 0)),
	)
	// Without shedding: no match.
	if got := runDeferred(t, q, s, true); len(got) != 0 {
		t.Fatalf("unshed deferred matches = %d", len(got))
	}
	// Shed the witness between B's arrival and the completion.
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.DeferredNegation = true
	var got []Match
	for i, e := range s {
		got = append(got, en.Process(e).Matches...)
		if i == 1 {
			n, _ := en.DropIf(func(pm *PartialMatch) bool { return pm.IsWitness() })
			if n != 1 {
				t.Fatalf("witnesses dropped = %d", n)
			}
		}
	}
	if len(got) != 1 {
		t.Fatalf("fabricated matches = %d, want 1", len(got))
	}
}

// Witnesses are visible among the partial matches, carry their event,
// and expire with the window.
func TestWitnessLifecycle(t *testing.T) {
	q := query.Q4("8ms")
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.DeferredNegation = true
	en.Process(event.New("B", 1*event.Millisecond, attrsIV(1, 0)))
	var w *PartialMatch
	for _, pm := range en.PartialMatches() {
		if pm.IsWitness() {
			w = pm
		}
	}
	if w == nil {
		t.Fatal("no witness created")
	}
	if w.LastEvent().Type != "B" {
		t.Errorf("witness event type = %s", w.LastEvent().Type)
	}
	// Witnesses never extend.
	en.Process(event.New("C", 2*event.Millisecond, attrsIV(1, 0)))
	for _, pm := range en.PartialMatches() {
		if pm.IsWitness() && pm.Len() != 1 {
			t.Error("witness grew")
		}
	}
	// Window expiry removes it.
	en.Process(event.New("X", 20*event.Millisecond, nil))
	for _, pm := range en.PartialMatches() {
		if pm.IsWitness() {
			t.Error("witness survived the window")
		}
	}
}

// Eager mode must not create witnesses.
func TestEagerModeHasNoWitnesses(t *testing.T) {
	q := query.Q4("8ms")
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.Process(event.New("B", 1*event.Millisecond, attrsIV(1, 0)))
	for _, pm := range en.PartialMatches() {
		if pm.IsWitness() {
			t.Fatal("witness in eager mode")
		}
	}
}
