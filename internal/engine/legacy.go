package engine

import (
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/vclock"
)

// This file keeps the pre-index exhaustive-scan reaction and expiry path
// as an independently written reference implementation. The differential
// tests run randomized streams through both engines and require
// identical matches, stats, and virtual work — any divergence between
// the type index and a full scan of the partial-match set is a bug in
// the index.

// newScanEngine builds an engine that reacts by scanning every live
// partial match and expires by checking every match's window, instead of
// using the type index and expiry ring.
func newScanEngine(m *nfa.Machine, costs Costs) *Engine {
	en := New(m, costs)
	en.useScan = true
	return en
}

// expireScan marks every out-of-window match dead by checking each one.
func (en *Engine) expireScan(e *event.Event, w *vclock.Cost) {
	window := en.m.Query.Window
	for _, pm := range en.pms {
		if pm.dead {
			continue
		}
		if expiredAt(window, pm.startTime, pm.startSeq, e) {
			pm.dead = true
			en.noteDead(pm)
			en.stats.ExpiredPMs++
			*w += en.costs.PerExpiry
		}
	}
}

// scanReact walks every partial match present at event arrival and
// re-derives its possible reactions from the automaton, exactly as the
// original engine did. Branches created here are appended past the scan
// bound and not re-visited for this event.
func (en *Engine) scanReact(e *event.Event, res *Result) {
	w := &res.Work
	n := len(en.m.States)
	existing := len(en.pms)
	for i := 0; i < existing; i++ {
		pm := en.pms[i]
		if pm.dead || pm.witnessOf != nil {
			continue
		}
		next := pm.cur + 1

		// Negation guards active while waiting to bind state next
		// (eager mode kills immediately; deferred mode records
		// witnesses instead).
		if next < n && !en.DeferredNegation {
			if en.checkGuards(pm, next, e, w) {
				pm.dead = true
				en.noteDead(pm)
				en.stats.KilledByGuard++
				continue
			}
		}

		// Kleene take at the current state.
		st := &en.m.States[pm.cur]
		if st.Comp.Kleene && e.Type == st.Comp.Type {
			reps := pm.kleene[pm.cur]
			if st.Comp.MaxReps == 0 || len(reps) < st.Comp.MaxReps {
				en.b.pm, en.b.current = pm, e
				if en.evalSet(st.IncrementalC, &en.b, w) {
					branch := en.clonePM(pm)
					branch.kleene[pm.cur] = appendRep(reps, e)
					*w += en.costs.PerExtension
					en.register(branch)
					if en.m.Final(pm.cur) && len(branch.kleene[pm.cur]) >= st.Comp.MinReps {
						en.tryEmit(branch, branch, e, res)
					}
				}
			}
		}

		// Proceed: bind the next state.
		if next < n && e.Type == en.m.States[next].Comp.Type {
			if st.Comp.Kleene && len(pm.kleene[pm.cur]) < st.Comp.MinReps {
				continue // Kleene minimum not reached yet
			}
			en.tryBind(pm, next, e, res)
		}
	}
}
