package engine

import (
	"math/rand"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// Accounting invariants of the engine counters over random streams with
// interleaved shedding:
//   - live partial matches never exceed created minus removed ones;
//   - every match's events respect pattern order and the window;
//   - no dead partial match remains in the live set.
func TestEngineAccountingInvariants(t *testing.T) {
	queries := []*query.Query{
		query.Q1("4ms"),
		query.MustParse(`PATTERN SEQ(A a, A+ b[]{1,3}, B c) WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 3ms`),
		query.Q4("4ms"),
	}
	for qi, q := range queries {
		m := nfa.MustCompile(q)
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed*31 + int64(qi)))
			en := New(m, DefaultCosts())
			var tm event.Time
			var b event.Builder
			for i := 0; i < 400; i++ {
				tm += event.Time(rng.Intn(120)+20) * event.Microsecond
				types := []string{"A", "B", "C", "D"}
				b.Add(event.New(types[rng.Intn(4)], tm, map[string]event.Value{
					"ID": event.Int(int64(rng.Intn(3) + 1)),
					"V":  event.Int(int64(rng.Intn(5) + 1)),
				}))
			}
			s := b.Finish()
			window := q.Window.Duration
			for i, e := range s {
				res := en.Process(e)
				for _, match := range res.Matches {
					evs := match.Events
					for j := 1; j < len(evs); j++ {
						if evs[j].Time < evs[j-1].Time {
							t.Fatalf("q%d seed %d: match out of order", qi, seed)
						}
					}
					if span := evs[len(evs)-1].Time - evs[0].Time; span > window {
						t.Fatalf("q%d seed %d: match span %v > window %v", qi, seed, span, window)
					}
				}
				if i%37 == 17 {
					en.DropIf(func(pm *PartialMatch) bool { return rng.Float64() < 0.2 })
				}
				st := en.Stats()
				removed := st.ExpiredPMs + st.KilledByGuard + st.DroppedPMs
				if uint64(en.LiveCount()) > st.CreatedPMs-removed {
					t.Fatalf("q%d seed %d: live %d > created %d - removed %d",
						qi, seed, en.LiveCount(), st.CreatedPMs, removed)
				}
				for _, pm := range en.PartialMatches() {
					if !pm.Alive() {
						t.Fatalf("q%d seed %d: dead PM in live set", qi, seed)
					}
				}
			}
		}
	}
}

// Feeding the same stream twice yields identical stats and matches —
// the engine holds no hidden nondeterminism.
func TestEngineDeterminism(t *testing.T) {
	q := query.Q1("4ms")
	m := nfa.MustCompile(q)
	rng := rand.New(rand.NewSource(5))
	var b event.Builder
	var tm event.Time
	for i := 0; i < 500; i++ {
		tm += event.Time(rng.Intn(100)+10) * event.Microsecond
		types := []string{"A", "B", "C"}
		b.Add(event.New(types[rng.Intn(3)], tm, attrsIV(int64(rng.Intn(4)), int64(rng.Intn(6)))))
	}
	s := b.Finish()
	runOnce := func() (Stats, []string) {
		en := New(m, DefaultCosts())
		var ks []string
		for _, e := range s {
			for _, match := range en.Process(e).Matches {
				ks = append(ks, match.Key())
			}
		}
		return en.Stats(), ks
	}
	st1, k1 := runOnce()
	st2, k2 := runOnce()
	if st1 != st2 {
		t.Fatalf("stats diverge: %+v vs %+v", st1, st2)
	}
	if len(k1) != len(k2) {
		t.Fatalf("match counts diverge")
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("match order diverges at %d", i)
		}
	}
}
