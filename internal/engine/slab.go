package engine

import "cepshed/internal/event"

// This file implements slab allocation and pooling for partial matches.
// PartialMatch structs and their per-state singles/kleene backing arrays
// are carved out of batch-allocated slabs (one allocation amortized over
// slabPMs matches), and dead matches are recycled through a free list so
// the steady-state branch path allocates nothing.
//
// Recycling is only safe while nobody outside the engine can retain a
// match pointer. Two escape hatches disable or bypass it:
//
//   - OnCreate: shedding strategies and the cost model keep PartialMatch
//     pointers across events (class sets, Γ bookkeeping). The first
//     Process or register that observes OnCreate != nil permanently
//     disables recycling for the engine (slab allocation stays on).
//   - Match.Source: an emitted match escapes to the caller holding its
//     source run; the source is pinned and its ancestor chain is kept
//     alive through the children refcount, because the cost model walks
//     Parent chains of emitted matches.

const slabPMs = 64

// pmAlloc hands out PartialMatch objects backed by slabs.
type pmAlloc struct {
	n    int // automaton states per match
	free []*PartialMatch

	pmSlab     []PartialMatch
	singleSlab []*event.Event
	kleeneSlab [][]*event.Event
	seedSlab   []*event.Event
}

func (a *pmAlloc) init(n int) { a.n = n }

// get returns a zeroed match (gen preserved across recycles).
func (a *pmAlloc) get() *PartialMatch {
	if k := len(a.free) - 1; k >= 0 {
		pm := a.free[k]
		a.free[k] = nil
		a.free = a.free[:k]
		pm.pooled = false
		pm.dead = false
		pm.Class, pm.Slice = -1, -1
		return pm
	}
	if len(a.pmSlab) == 0 {
		a.pmSlab = make([]PartialMatch, slabPMs)
	}
	pm := &a.pmSlab[0]
	a.pmSlab = a.pmSlab[1:]
	n := a.n
	if len(a.singleSlab) < n {
		a.singleSlab = make([]*event.Event, n*slabPMs)
	}
	pm.singles, a.singleSlab = a.singleSlab[:n:n], a.singleSlab[n:]
	if len(a.kleeneSlab) < n {
		a.kleeneSlab = make([][]*event.Event, n*slabPMs)
	}
	pm.kleene, a.kleeneSlab = a.kleeneSlab[:n:n], a.kleeneSlab[n:]
	pm.Class, pm.Slice = -1, -1
	return pm
}

// put recycles a match. The caller guarantees no live reference remains.
func (a *pmAlloc) put(pm *PartialMatch) {
	for i := range pm.singles {
		pm.singles[i] = nil
	}
	for i := range pm.kleene {
		pm.kleene[i] = nil
	}
	pm.parent = nil
	pm.group = nil
	pm.witnessOf = nil
	pm.id = 0
	pm.cur = 0
	pm.startTime = 0
	pm.startSeq = 0
	pm.children = 0
	pm.pinned = false
	pm.deferred = false
	pm.gen++
	pm.pooled = true
	a.free = append(a.free, pm)
}

// seedRep carves a one-element repetition slice (capacity clamped to 1 so
// branch appends always reallocate — the copy-on-write invariant).
func (a *pmAlloc) seedRep(e *event.Event) []*event.Event {
	if len(a.seedSlab) == 0 {
		a.seedSlab = make([]*event.Event, 4*slabPMs)
	}
	s := a.seedSlab[:1:1]
	a.seedSlab = a.seedSlab[1:]
	s[0] = e
	return s
}

// appendRep returns reps + e in a fresh exactly-sized slice. Repetition
// slices are shared copy-on-write between branches, so extension must
// never write into the shared backing array.
func appendRep(reps []*event.Event, e *event.Event) []*event.Event {
	out := make([]*event.Event, len(reps)+1)
	copy(out, reps)
	out[len(reps)] = e
	return out[: len(reps)+1 : len(reps)+1]
}

// clonePM branches pm for skip-till-any-match extension. Kleene
// repetition slices are shared copy-on-write (capacity-clamped so any
// append by either branch reallocates).
func (en *Engine) clonePM(pm *PartialMatch) *PartialMatch {
	c := en.alloc.get()
	c.id = en.allocID()
	c.parent = pm
	pm.children++
	c.m = pm.m
	c.cur = pm.cur
	c.startTime = pm.startTime
	c.startSeq = pm.startSeq
	c.group = pm.group
	copy(c.singles, pm.singles)
	for s, reps := range pm.kleene {
		if n := len(reps); n > 0 {
			c.kleene[s] = reps[:n:n]
		}
	}
	return c
}

// freeTemp releases an unregistered temporary branch (failed start-run
// binding, or the throwaway branch built to emit a final non-Kleene
// completion).
func (en *Engine) freeTemp(pm *PartialMatch) {
	if !en.pool || pm.pinned {
		return
	}
	parent := pm.parent
	en.alloc.put(pm)
	if parent != nil {
		parent.children--
		en.tryRelease(parent)
	}
}

// tryRelease recycles a dead match once nothing references it anymore,
// cascading up the parent chain as refcounts drain. While a by-reference
// snapshot capture is in flight, recycling is parked instead: the
// background encoder may be reading any registered match (captured
// matches directly, ancestors through parent chains), so handing memory
// back to the allocator mid-encode would race it. SnapshotRef.Release
// replays the parked releases once the encoder is done; cascades to
// parents happen at replay time through this same function.
func (en *Engine) tryRelease(pm *PartialMatch) {
	if !en.pool {
		return
	}
	if ref := en.snapRef; ref != nil {
		if pm.dead && !pm.pooled && !pm.deferred && !pm.pinned && pm.children == 0 {
			pm.deferred = true
			ref.deferred = append(ref.deferred, pm)
		}
		return
	}
	for pm != nil && pm.dead && !pm.pooled && !pm.pinned && pm.children == 0 {
		parent := pm.parent
		en.alloc.put(pm)
		if parent == nil {
			return
		}
		parent.children--
		pm = parent
	}
}
