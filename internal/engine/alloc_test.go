package engine

import (
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// The steady-state no-branch path must be allocation-free: an event that
// extends no run (wrong type, or failing every predicate against the
// live matches) costs virtual work but no heap allocations.
func TestNoExtendProcessDoesNotAllocate(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	en := New(m, DefaultCosts())

	// Populate live state-0 runs (same timestamp throughout the test so
	// the expiry ring never pops).
	s := mkStream(
		event.New("A", event.Millisecond, attrsIV(1, 2)),
		event.New("A", event.Millisecond, attrsIV(2, 3)),
		event.New("A", event.Millisecond, attrsIV(3, 4)),
	)
	for _, e := range s {
		en.Process(e)
	}
	if en.LiveCount() != 3 {
		t.Fatalf("expected 3 live runs, got %d", en.LiveCount())
	}

	// An event of a type no query component mentions.
	irrelevant := event.New("X", event.Millisecond, nil)
	irrelevant.Seq = 100
	if allocs := testing.AllocsPerRun(100, func() { en.Process(irrelevant) }); allocs != 0 {
		t.Errorf("irrelevant event allocated %.1f times per Process", allocs)
	}

	// A reactive-type event that fails the bind predicates of every live
	// run (no matching ID): predicates evaluate, nothing branches.
	noBind := event.New("B", event.Millisecond, attrsIV(99, 1))
	noBind.Seq = 101
	if allocs := testing.AllocsPerRun(100, func() { en.Process(noBind) }); allocs != 0 {
		t.Errorf("no-extend event allocated %.1f times per Process", allocs)
	}
	if en.LiveCount() != 3 {
		t.Fatalf("no-extend processing changed live state: %d", en.LiveCount())
	}
}

// The batched dispatch path the shard hot loop actually runs — resolve
// the type once, then ProcessResolved for the run of equal-typed events
// — must stay allocation-free for no-extend events, same as Process.
// This is the guard for the type-run cache: if ResolveType started
// allocating per call, or ProcessResolved stopped sharing the engine's
// scratch bindings, batching would quietly cost more than it saves.
func TestBatchedNoExtendProcessResolvedDoesNotAllocate(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	en := New(m, DefaultCosts())
	for _, e := range mkStream(
		event.New("A", event.Millisecond, attrsIV(1, 2)),
		event.New("A", event.Millisecond, attrsIV(2, 3)),
		event.New("A", event.Millisecond, attrsIV(3, 4)),
	) {
		en.Process(e)
	}

	noBind := event.New("B", event.Millisecond, attrsIV(99, 1))
	noBind.Seq = 101
	tr := en.ResolveType(noBind.Type)
	if allocs := testing.AllocsPerRun(100, func() {
		en.ProcessResolved(noBind, tr)
	}); allocs != 0 {
		t.Errorf("no-extend event allocated %.1f times per ProcessResolved", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		en.ProcessResolved(noBind, en.ResolveType(noBind.Type))
	}); allocs != 0 {
		t.Errorf("ResolveType+ProcessResolved allocated %.1f times per event", allocs)
	}
	if en.LiveCount() != 3 {
		t.Fatalf("no-extend processing changed live state: %d", en.LiveCount())
	}
}
