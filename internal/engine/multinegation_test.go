package engine

import (
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// Queries with several negated components attach independent guards to
// their respective gaps.
func TestTwoNegatedComponents(t *testing.T) {
	q := query.MustParse(`
		PATTERN SEQ(A a, NOT X x, B b, NOT Y y, C c)
		WHERE a.ID = b.ID AND b.ID = c.ID
		AND x.ID = a.ID AND y.ID = b.ID
		WITHIN 8ms`)
	base := []*event.Event{
		event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
		event.New("B", 3*event.Millisecond, attrsIV(1, 0)),
		event.New("C", 5*event.Millisecond, attrsIV(1, 0)),
	}
	// Clean sequence matches.
	if ms := run(t, q, mkStream(base...)); len(ms) != 1 {
		t.Fatalf("clean matches = %d", len(ms))
	}
	// X in the A-B gap kills it.
	withX := mkStream(base[0],
		event.New("X", 2*event.Millisecond, attrsIV(1, 0)), base[1], base[2])
	if ms := run(t, q, withX); len(ms) != 0 {
		t.Fatalf("X-in-gap matches = %d", len(ms))
	}
	// Y in the B-C gap kills it.
	withY := mkStream(base[0], base[1],
		event.New("Y", 4*event.Millisecond, attrsIV(1, 0)), base[2])
	if ms := run(t, q, withY); len(ms) != 0 {
		t.Fatalf("Y-in-gap matches = %d", len(ms))
	}
	// X in the B-C gap is harmless (wrong gap), as is Y in the A-B gap.
	wrongGaps := mkStream(base[0],
		event.New("Y", 2*event.Millisecond, attrsIV(1, 0)), base[1],
		event.New("X", 4*event.Millisecond, attrsIV(1, 0)), base[2])
	if ms := run(t, q, wrongGaps); len(ms) != 1 {
		t.Fatalf("wrong-gap matches = %d, want 1", len(ms))
	}
}

// The same stream under deferred negation yields identical results
// without shedding, guard placement included.
func TestTwoNegatedComponentsDeferred(t *testing.T) {
	q := query.MustParse(`
		PATTERN SEQ(A a, NOT X x, B b, NOT Y y, C c)
		WHERE a.ID = b.ID AND b.ID = c.ID
		AND x.ID = a.ID AND y.ID = b.ID
		WITHIN 8ms`)
	streams := []event.Stream{
		mkStream(
			event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
			event.New("X", 2*event.Millisecond, attrsIV(1, 0)),
			event.New("B", 3*event.Millisecond, attrsIV(1, 0)),
			event.New("C", 5*event.Millisecond, attrsIV(1, 0)),
		),
		mkStream(
			event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
			event.New("Y", 2*event.Millisecond, attrsIV(1, 0)),
			event.New("B", 3*event.Millisecond, attrsIV(1, 0)),
			event.New("X", 4*event.Millisecond, attrsIV(1, 0)),
			event.New("C", 5*event.Millisecond, attrsIV(1, 0)),
		),
	}
	for i, s := range streams {
		eager := run(t, q, s)
		en := New(nfa.MustCompile(q), DefaultCosts())
		en.DeferredNegation = true
		var deferred []Match
		for _, e := range s {
			deferred = append(deferred, en.Process(e).Matches...)
		}
		if len(eager) != len(deferred) {
			t.Errorf("stream %d: eager %d vs deferred %d", i, len(eager), len(deferred))
		}
	}
}

// A negation guard with correlation predicates only fires when they hold.
func TestGuardPredicateSelectivity(t *testing.T) {
	q := query.Q4("8ms")
	// B with a DIFFERENT ID does not kill; with the same ID it does.
	for _, tc := range []struct {
		bID  int64
		want int
	}{{2, 1}, {1, 0}} {
		s := mkStream(
			event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
			event.New("B", 2*event.Millisecond, attrsIV(tc.bID, 0)),
			event.New("C", 3*event.Millisecond, attrsIV(1, 0)),
			event.New("D", 4*event.Millisecond, attrsIV(1, 0)),
		)
		if ms := run(t, q, s); len(ms) != tc.want {
			t.Errorf("B.ID=%d: matches = %d, want %d", tc.bID, len(ms), tc.want)
		}
	}
}
