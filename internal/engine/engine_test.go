package engine

import (
	"math/rand"
	"sort"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func run(t *testing.T, q *query.Query, s event.Stream) []Match {
	t.Helper()
	en := New(nfa.MustCompile(q), DefaultCosts())
	var out []Match
	for _, e := range s {
		out = append(out, en.Process(e).Matches...)
	}
	return out
}

func keys(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	sort.Strings(out)
	return out
}

func mkStream(evs ...*event.Event) event.Stream {
	var b event.Builder
	for _, e := range evs {
		b.Add(e)
	}
	return b.Finish()
}

func attrsIV(id, v int64) map[string]event.Value {
	return map[string]event.Value{"ID": event.Int(id), "V": event.Int(v)}
}

func TestSimpleSequenceMatch(t *testing.T) {
	q := query.Q1("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 2)),
		event.New("B", 2*event.Millisecond, attrsIV(1, 3)),
		event.New("C", 3*event.Millisecond, attrsIV(1, 5)),
	)
	ms := run(t, q, s)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Key() != "0,1,2" {
		t.Errorf("key = %s", ms[0].Key())
	}
}

func TestSkipTillAnyMatchCombinatorics(t *testing.T) {
	// Two As and two Bs, all compatible with one C: 2x2 = 4 matches.
	q := query.Q1("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 2)),
		event.New("A", 2*event.Millisecond, attrsIV(1, 2)),
		event.New("B", 3*event.Millisecond, attrsIV(1, 3)),
		event.New("B", 4*event.Millisecond, attrsIV(1, 3)),
		event.New("C", 5*event.Millisecond, attrsIV(1, 5)),
	)
	ms := run(t, q, s)
	if len(ms) != 4 {
		t.Fatalf("matches = %d, want 4: %v", len(ms), keys(ms))
	}
}

func TestPredicateFiltering(t *testing.T) {
	q := query.Q1("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 2)),
		event.New("B", 2*event.Millisecond, attrsIV(2, 3)), // wrong ID
		event.New("B", 3*event.Millisecond, attrsIV(1, 4)),
		event.New("C", 4*event.Millisecond, attrsIV(1, 6)), // 2+4=6 ok
		event.New("C", 5*event.Millisecond, attrsIV(1, 9)), // 2+4 != 9
	)
	ms := run(t, q, s)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1: %v", len(ms), keys(ms))
	}
	if ms[0].Key() != "0,2,3" {
		t.Errorf("key = %s", ms[0].Key())
	}
}

func TestSequenceOrderRespected(t *testing.T) {
	// C before B: no match.
	q := query.Q1("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 2)),
		event.New("C", 2*event.Millisecond, attrsIV(1, 5)),
		event.New("B", 3*event.Millisecond, attrsIV(1, 3)),
	)
	if ms := run(t, q, s); len(ms) != 0 {
		t.Fatalf("matches = %d, want 0", len(ms))
	}
}

func TestTimeWindowExpiry(t *testing.T) {
	q := query.Q1("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 2)),
		event.New("B", 2*event.Millisecond, attrsIV(1, 3)),
		event.New("C", 20*event.Millisecond, attrsIV(1, 5)), // outside window
	)
	if ms := run(t, q, s); len(ms) != 0 {
		t.Fatalf("matches = %d, want 0", len(ms))
	}
	en := New(nfa.MustCompile(q), DefaultCosts())
	for _, e := range s {
		en.Process(e)
	}
	if en.Stats().ExpiredPMs == 0 {
		t.Error("expired PM count should be positive")
	}
	if en.LiveCount() != 0 {
		t.Errorf("live = %d after expiry (only the C run could linger)", en.LiveCount())
	}
}

func TestCountWindow(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 3 EVENTS`)
	s := mkStream(
		event.New("A", 1, attrsIV(1, 0)),
		event.New("X", 2, nil),
		event.New("X", 3, nil),
		event.New("B", 4, attrsIV(1, 0)), // distance 3 >= 3: expired
		event.New("A", 5, attrsIV(2, 0)),
		event.New("B", 6, attrsIV(2, 0)), // distance 1 < 3: match
	)
	ms := run(t, q, s)
	if len(ms) != 1 || ms[0].Key() != "4,5" {
		t.Fatalf("matches = %v", keys(ms))
	}
}

func TestKleeneTakeAndProceed(t *testing.T) {
	// SEQ(A a, A+ b[], B c): with A1 A2 A3 B, runs a=A1 can use any
	// non-empty subsequence of {A2,A3} as b[]: {A2},{A3},{A2,A3} = 3;
	// a=A2 gives {A3} = 1. Total 4 matches.
	q := query.MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 1ms`)
	s := mkStream(
		event.New("A", 100*event.Microsecond, attrsIV(1, 0)),
		event.New("A", 200*event.Microsecond, attrsIV(1, 0)),
		event.New("A", 300*event.Microsecond, attrsIV(1, 0)),
		event.New("B", 400*event.Microsecond, attrsIV(1, 0)),
	)
	ms := run(t, q, s)
	if len(ms) != 4 {
		t.Fatalf("matches = %d, want 4: %v", len(ms), keys(ms))
	}
}

func TestKleeneMinReps(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, A+ b[]{2,}, B c) WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 1ms`)
	s := mkStream(
		event.New("A", 100*event.Microsecond, attrsIV(1, 0)),
		event.New("A", 200*event.Microsecond, attrsIV(1, 0)),
		event.New("A", 300*event.Microsecond, attrsIV(1, 0)),
		event.New("B", 400*event.Microsecond, attrsIV(1, 0)),
	)
	// Only a=A1 with b=[A2,A3] has >= 2 repetitions.
	ms := run(t, q, s)
	if len(ms) != 1 || ms[0].Key() != "0,1,2,3" {
		t.Fatalf("matches = %v, want [0,1,2,3]", keys(ms))
	}
}

func TestKleeneMaxReps(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, A+ b[]{1,1}, B c) WHERE a.ID = b[i].ID AND a.ID = c.ID WITHIN 1ms`)
	s := mkStream(
		event.New("A", 100*event.Microsecond, attrsIV(1, 0)),
		event.New("A", 200*event.Microsecond, attrsIV(1, 0)),
		event.New("A", 300*event.Microsecond, attrsIV(1, 0)),
		event.New("B", 400*event.Microsecond, attrsIV(1, 0)),
	)
	// b[] limited to exactly one repetition: (a,b) in {(A1,A2),(A1,A3),(A2,A3)}.
	ms := run(t, q, s)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3: %v", len(ms), keys(ms))
	}
}

func TestKleeneIncrementalChaining(t *testing.T) {
	q := query.HotPaths("1h", 1, 0)
	trip := func(t event.Time, bike, start, end int64) *event.Event {
		return event.New("BikeTrip", t, map[string]event.Value{
			"bike": event.Int(bike), "start": event.Int(start), "end": event.Int(end)})
	}
	s := mkStream(
		trip(1*event.Second, 1, 1, 2),
		trip(2*event.Second, 1, 2, 3),
		trip(3*event.Second, 1, 3, 7), // ends at hot station
	)
	ms := run(t, q, s)
	// b must be a trip of the same bike ending at 7-9: candidates for b are
	// trips #2 (end 3, not hot) and #3 (end 7, hot). Chains ending at #3:
	// a=[#1], a=[#2], a=[#1,#2]. All have a[last].bike = b.bike.
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3: %v", len(ms), keys(ms))
	}
	// Broken chain: trip with mismatched start.
	s = mkStream(
		trip(1*event.Second, 1, 1, 2),
		trip(2*event.Second, 1, 5, 6), // start 5 != end 2: breaks chain
		trip(3*event.Second, 1, 6, 8),
	)
	ms = run(t, q, s)
	// Chains: a=[#1] b=#3? a[last]=#1 bike ok but the proceed needs no
	// start/end continuity (only a-internal chaining), so a=[#1],b=#3 and
	// a=[#2],b=#3 are matches; a=[#1,#2] is not chained.
	if len(ms) != 2 {
		t.Fatalf("broken chain matches = %d, want 2: %v", len(ms), keys(ms))
	}
}

func TestTrailingKleeneEmitsPerTake(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, B+ b[]) WHERE a.ID = b[i].ID WITHIN 1ms`)
	s := mkStream(
		event.New("A", 100*event.Microsecond, attrsIV(1, 0)),
		event.New("B", 200*event.Microsecond, attrsIV(1, 0)),
		event.New("B", 300*event.Microsecond, attrsIV(1, 0)),
	)
	// Matches: (A,B1), (A,B2), (A,B1,B2).
	ms := run(t, q, s)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3: %v", len(ms), keys(ms))
	}
}

func TestNegationGuardKills(t *testing.T) {
	q := query.Q4("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
		event.New("B", 2*event.Millisecond, attrsIV(1, 0)), // violates
		event.New("C", 3*event.Millisecond, attrsIV(1, 0)),
		event.New("D", 4*event.Millisecond, attrsIV(1, 0)),
	)
	if ms := run(t, q, s); len(ms) != 0 {
		t.Fatalf("negated match emitted: %v", keys(ms))
	}
	// A B with a different ID does not violate.
	s = mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
		event.New("B", 2*event.Millisecond, attrsIV(9, 0)),
		event.New("C", 3*event.Millisecond, attrsIV(1, 0)),
		event.New("D", 4*event.Millisecond, attrsIV(1, 0)),
	)
	if ms := run(t, q, s); len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	// B after C does not violate (guard only active before C binds).
	s = mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
		event.New("C", 2*event.Millisecond, attrsIV(1, 0)),
		event.New("B", 3*event.Millisecond, attrsIV(1, 0)),
		event.New("D", 4*event.Millisecond, attrsIV(1, 0)),
	)
	if ms := run(t, q, s); len(ms) != 1 {
		t.Fatalf("B-after-C matches = %d, want 1", len(ms))
	}
}

func TestCompletionPredicate(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE a.ID = b[i].ID AND AVG(b[].V) > a.V WITHIN 1ms`)
	s := mkStream(
		event.New("A", 100*event.Microsecond, attrsIV(1, 5)),
		event.New("A", 200*event.Microsecond, attrsIV(1, 4)),
		event.New("A", 300*event.Microsecond, attrsIV(1, 8)),
		event.New("B", 400*event.Microsecond, attrsIV(1, 0)),
	)
	// a=A1(V5): b candidates from {A2(V4), A3(V8)} with avg > 5:
	// [A2]: 4 no; [A3]: 8 yes; [A2,A3]: 6 yes. a=A2(V4): [A3]: 8 yes.
	ms := run(t, q, s)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3: %v", len(ms), keys(ms))
	}
}

func TestDropIfRemovesState(t *testing.T) {
	q := query.Q1("8ms")
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.Process(event.New("A", 1*event.Millisecond, attrsIV(1, 2)))
	en.Process(event.New("A", 2*event.Millisecond, attrsIV(1, 2)))
	if en.LiveCount() != 2 {
		t.Fatalf("live = %d", en.LiveCount())
	}
	n, cost := en.DropIf(func(pm *PartialMatch) bool { return pm.StartTime() < 2*event.Millisecond })
	if n != 1 || cost <= 0 {
		t.Fatalf("dropped = %d cost = %d", n, cost)
	}
	if en.LiveCount() != 1 {
		t.Fatalf("live = %d after drop", en.LiveCount())
	}
	// The dropped run cannot complete anymore.
	r := en.Process(event.New("B", 3*event.Millisecond, attrsIV(1, 3)))
	_ = r
	res := en.Process(event.New("C", 4*event.Millisecond, attrsIV(1, 5)))
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(res.Matches))
	}
	if en.Stats().DroppedPMs != 1 {
		t.Error("DroppedPMs stat wrong")
	}
}

func TestOnCreateHook(t *testing.T) {
	q := query.Q1("8ms")
	en := New(nfa.MustCompile(q), DefaultCosts())
	var created []*PartialMatch
	en.OnCreate = func(pm *PartialMatch) { created = append(created, pm) }
	en.Process(event.New("A", 1*event.Millisecond, attrsIV(1, 2)))
	en.Process(event.New("B", 2*event.Millisecond, attrsIV(1, 3)))
	if len(created) != 2 {
		t.Fatalf("created = %d, want 2", len(created))
	}
	if created[0].State() != 0 || created[1].State() != 1 {
		t.Errorf("states = %d, %d", created[0].State(), created[1].State())
	}
	if created[1].Len() != 2 {
		t.Errorf("second PM len = %d", created[1].Len())
	}
}

func TestWorkAccounting(t *testing.T) {
	q := query.Q1("8ms")
	en := New(nfa.MustCompile(q), DefaultCosts())
	r1 := en.Process(event.New("X", 1*event.Millisecond, nil))
	// An irrelevant event costs only the base ingest.
	if r1.Work != DefaultCosts().PerEvent {
		t.Errorf("irrelevant event work = %d", r1.Work)
	}
	r2 := en.Process(event.New("A", 2*event.Millisecond, attrsIV(1, 2)))
	if r2.Work <= DefaultCosts().PerEvent {
		t.Errorf("run-starting event work = %d should exceed base", r2.Work)
	}
	// More partial matches means more work per event.
	for i := 0; i < 10; i++ {
		en.Process(event.New("A", event.Time(3+i)*event.Millisecond/2, attrsIV(1, 2)))
	}
	rBig := en.Process(event.New("B", 8*event.Millisecond, attrsIV(1, 3)))
	if rBig.Work <= r2.Work {
		t.Errorf("work with many PMs (%d) should exceed %d", rBig.Work, r2.Work)
	}
}

func TestFlush(t *testing.T) {
	q := query.Q1("8ms")
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.Process(event.New("A", 1*event.Millisecond, attrsIV(1, 2)))
	en.Flush()
	if en.LiveCount() != 0 {
		t.Error("flush left live PMs")
	}
}

// randomStream builds a DS1-like random stream for property tests.
func randomStream(rng *rand.Rand, n int) event.Stream {
	types := []string{"A", "B", "C", "D"}
	var b event.Builder
	t := event.Time(0)
	for i := 0; i < n; i++ {
		t += event.Time(rng.Intn(200)+50) * event.Microsecond
		b.Add(event.New(types[rng.Intn(len(types))], t, attrsIV(int64(rng.Intn(3)+1), int64(rng.Intn(5)+1))))
	}
	return b.Finish()
}

// Property (§III-A): for a monotonic query, removing input events can only
// remove complete matches, never add them.
func TestMonotonicInStream(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, B b, C c) WHERE a.ID = b.ID AND b.ID = c.ID WITHIN 5ms`)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomStream(rng, 120)
		full := map[string]bool{}
		for _, k := range keys(run(t, q, s)) {
			full[k] = true
		}
		// Remove ~30% of events.
		var reduced event.Stream
		for _, e := range s {
			if rng.Float64() > 0.3 {
				reduced = append(reduced, e) // keep original Seq for keys
			}
		}
		for _, k := range keys(run(t, q, reduced)) {
			if !full[k] {
				t.Fatalf("seed %d: shedding inputs created new match %s", seed, k)
			}
		}
	}
}

// Property (§III-A): removing partial matches can only remove complete
// matches for a monotonic query.
func TestMonotonicInState(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, B b, C c) WHERE a.ID = b.ID AND b.ID = c.ID WITHIN 5ms`)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomStream(rng, 120)
		full := map[string]bool{}
		for _, k := range keys(run(t, q, s)) {
			full[k] = true
		}
		en := New(nfa.MustCompile(q), DefaultCosts())
		var got []Match
		for i, e := range s {
			got = append(got, en.Process(e).Matches...)
			if i%10 == 5 {
				en.DropIf(func(pm *PartialMatch) bool { return rng.Float64() < 0.3 })
			}
		}
		for _, m := range got {
			if !full[m.Key()] {
				t.Fatalf("seed %d: shedding state created new match %s", seed, m.Key())
			}
		}
	}
}

// Property: a non-monotonic query CAN produce false positives under input
// shedding of the negated type — this is exactly §VI-H's premise.
func TestNegationSheddingCreatesFalsePositives(t *testing.T) {
	q := query.Q4("8ms")
	s := mkStream(
		event.New("A", 1*event.Millisecond, attrsIV(1, 0)),
		event.New("B", 2*event.Millisecond, attrsIV(1, 0)),
		event.New("C", 3*event.Millisecond, attrsIV(1, 0)),
		event.New("D", 4*event.Millisecond, attrsIV(1, 0)),
	)
	if got := run(t, q, s); len(got) != 0 {
		t.Fatal("ground truth should have no match")
	}
	// Shed the B event: a false positive appears.
	var shed event.Stream
	for _, e := range s {
		if e.Type != "B" {
			shed = append(shed, e)
		}
	}
	if got := run(t, q, shed); len(got) != 1 {
		t.Fatalf("false positives = %d, want 1", len(got))
	}
}

func TestPartialMatchAccessors(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE a.ID = b[i].ID WITHIN 1ms`)
	en := New(nfa.MustCompile(q), DefaultCosts())
	en.Process(event.New("A", 100*event.Microsecond, attrsIV(1, 7)))
	en.Process(event.New("A", 200*event.Microsecond, attrsIV(1, 8)))
	var kleenePM *PartialMatch
	for _, pm := range en.PartialMatches() {
		if pm.State() == 1 {
			kleenePM = pm
		}
	}
	if kleenePM == nil {
		t.Fatal("no state-1 PM")
	}
	if kleenePM.Len() != 2 {
		t.Errorf("len = %d", kleenePM.Len())
	}
	if got := kleenePM.EventAt(0); got == nil || got.Int("V") != 7 {
		t.Error("EventAt(0) wrong")
	}
	if reps := kleenePM.Reps(1); len(reps) != 1 || reps[0].Int("V") != 8 {
		t.Error("Reps(1) wrong")
	}
	if kleenePM.LastEvent().Int("V") != 8 {
		t.Error("LastEvent wrong")
	}
	if kleenePM.String() == "" || !kleenePM.Alive() {
		t.Error("String/Alive wrong")
	}
	if kleenePM.StartSeq() != 0 {
		t.Errorf("StartSeq = %d", kleenePM.StartSeq())
	}
}
