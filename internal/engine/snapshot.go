package engine

import (
	"errors"
	"fmt"

	"cepshed/internal/event"
)

// This file implements checkpoint support: Snapshot() captures the live
// partial-match store as a plain serializable value, and Restore() turns
// such a value back into the engine's internal representation — slab
// allocation, COW Kleene slices, parent refcounts, type-index buckets,
// and the start-ordered expiry ring included. The format deliberately
// contains no pointers: events are deduplicated into a table and every
// binding is an index into it, so a decoder (internal/checkpoint) can
// validate it without touching engine internals.
//
// Restore validates in a separate first pass and only then mutates the
// engine, so a corrupt or incompatible snapshot leaves the engine
// untouched and usable for a cold start — the property the runtime's
// crash-loop protection depends on.

// EngineState is the serializable image of a running engine. Events is a
// deduplicated table; PMState bindings reference it by index, preserving
// the sharing structure (two partial matches bound to the same event
// keep sharing it after a round trip).
type EngineState struct {
	DeferredNegation bool
	Stats            Stats
	NextID           uint64
	Events           []*event.Event
	PMs              []PMState // live entries, registration order (witnesses inline)
}

// PMState is one live partial match (or negation witness). Singles and
// Kleene are indexed per automaton state; -1 / empty mean "no binding".
type PMState struct {
	ID        uint64
	ParentID  uint64 // 0: no parent (live IDs start at 1)
	State     int
	StartTime event.Time
	StartSeq  uint64
	Class     int
	Slice     int
	// WitnessGuard is the guard index within States[State].Guards for a
	// negation witness, -1 for a real partial match.
	WitnessGuard int
	Singles      []int32   // per state, index into Events (-1 absent)
	Kleene       [][]int32 // per state, repetition indices into Events
}

// Snapshot captures the live partial-match store. The returned state
// aliases the engine's events (events are immutable) but shares no other
// structure, so it stays valid across later Process calls.
func (en *Engine) Snapshot() *EngineState {
	st := &EngineState{
		DeferredNegation: en.DeferredNegation,
		Stats:            en.stats,
		NextID:           en.nextID,
	}
	idx := make(map[*event.Event]int32)
	evIndex := func(e *event.Event) int32 {
		if i, ok := idx[e]; ok {
			return i
		}
		i := int32(len(st.Events))
		st.Events = append(st.Events, e)
		idx[e] = i
		return i
	}
	n := len(en.m.States)
	for _, pm := range en.pms {
		if pm.dead {
			continue
		}
		ps := PMState{
			ID:           pm.id,
			State:        pm.cur,
			StartTime:    pm.startTime,
			StartSeq:     pm.startSeq,
			Class:        pm.Class,
			Slice:        pm.Slice,
			WitnessGuard: -1,
			Singles:      make([]int32, n),
			Kleene:       make([][]int32, n),
		}
		if p := pm.parent; p != nil {
			ps.ParentID = p.id
		}
		if pm.witnessOf != nil {
			for gi := range en.m.States[pm.cur].Guards {
				if &en.m.States[pm.cur].Guards[gi] == pm.witnessOf {
					ps.WitnessGuard = gi
					break
				}
			}
		}
		for s := 0; s < n; s++ {
			if ev := pm.singles[s]; ev != nil {
				ps.Singles[s] = evIndex(ev)
			} else {
				ps.Singles[s] = -1
			}
			if reps := pm.kleene[s]; len(reps) > 0 {
				rs := make([]int32, len(reps))
				for j, ev := range reps {
					rs[j] = evIndex(ev)
				}
				ps.Kleene[s] = rs
			}
		}
		st.PMs = append(st.PMs, ps)
	}
	return st
}

// Restore rebuilds the partial-match store from a snapshot taken by an
// engine compiled from the same machine. It requires a fresh engine (no
// events processed) and validates the whole state before mutating
// anything: on error the engine is untouched and still usable cold.
// OnCreate is NOT invoked for restored matches and CreatedPMs is not
// re-incremented — the snapshot's Stats are adopted wholesale.
func (en *Engine) Restore(st *EngineState) error {
	if st == nil {
		return errors.New("engine: nil snapshot state")
	}
	if en.stats.Events != 0 || len(en.pms) != 0 || en.nextID != 0 {
		return errors.New("engine: Restore requires a fresh engine")
	}
	if st.DeferredNegation != en.DeferredNegation {
		return fmt.Errorf("engine: snapshot negation mode %v != engine %v",
			st.DeferredNegation, en.DeferredNegation)
	}
	n := len(en.m.States)
	nev := len(st.Events)
	for i := range st.Events {
		if st.Events[i] == nil {
			return fmt.Errorf("engine: snapshot event %d is nil", i)
		}
	}
	if err := en.validateState(st, n, nev); err != nil {
		return err
	}

	// Build pass: everything below is infallible. Expiry-ring groups must
	// be pushed in ascending stream order; groupFor only matches the back
	// group, so they are rebuilt wholesale here.
	type gkey struct {
		t   event.Time
		seq uint64
	}
	var groups map[gkey]*startGroup
	if !en.useScan {
		groups = make(map[gkey]*startGroup)
		var order []gkey
		for i := range st.PMs {
			k := gkey{st.PMs[i].StartTime, st.PMs[i].StartSeq}
			if _, ok := groups[k]; !ok {
				groups[k] = nil
				order = append(order, k)
			}
		}
		// Insertion sort by (seq, time): snapshot order is registration
		// order, which is already nearly sorted.
		less := func(a, b gkey) bool {
			if a.seq != b.seq {
				return a.seq < b.seq
			}
			return a.t < b.t
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && less(order[j], order[j-1]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, k := range order {
			g := en.newGroup()
			g.startTime, g.startSeq = k.t, k.seq
			en.ring.push(g)
			groups[k] = g
		}
	}

	ids := make(map[uint64]*PartialMatch, len(st.PMs))
	maxID := uint64(0)
	for i := range st.PMs {
		p := &st.PMs[i]
		pm := en.alloc.get()
		pm.id = p.ID
		pm.m = en.m
		pm.cur = p.State
		pm.startTime = p.StartTime
		pm.startSeq = p.StartSeq
		pm.Class, pm.Slice = p.Class, p.Slice
		for s, ei := range p.Singles {
			if ei >= 0 {
				pm.singles[s] = st.Events[ei]
			}
		}
		for s, reps := range p.Kleene {
			if len(reps) == 0 {
				continue
			}
			// Exact-size, capacity-clamped slices re-establish the COW
			// invariant: any later branch append reallocates.
			out := make([]*event.Event, len(reps))
			for j, ei := range reps {
				out[j] = st.Events[ei]
			}
			pm.kleene[s] = out[:len(reps):len(reps)]
		}
		if p.WitnessGuard >= 0 {
			pm.witnessOf = &en.m.States[p.State].Guards[p.WitnessGuard]
		}
		if par := ids[p.ParentID]; par != nil {
			// Parents precede children in registration order; an ID that
			// resolves to nothing (parent died before the snapshot) leaves
			// the restored match an orphan, which only costs ancestor
			// credit attribution in the cost model.
			pm.parent = par
			par.children++
		}
		if groups != nil {
			pm.group = groups[gkey{p.StartTime, p.StartSeq}]
			pm.group.members = append(pm.group.members, groupMember{pm: pm, gen: pm.gen})
		}
		en.pms = append(en.pms, pm)
		en.live++
		if pm.witnessOf != nil {
			en.witnesses = append(en.witnesses, pm)
		} else if !en.useScan {
			en.indexPM(pm)
		}
		en.classIndexPM(pm)
		ids[p.ID] = pm
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	en.stats = st.Stats
	en.nextID = st.NextID
	if maxID > en.nextID {
		en.nextID = maxID
	}
	// The restored population is a different one than any in-flight shed
	// plan was built for.
	en.dropEpoch++
	return nil
}

// validateState is Restore's first pass: every index in range, every
// structural invariant the build pass relies on checked up front.
func (en *Engine) validateState(st *EngineState, n, nev int) error {
	for i := range st.PMs {
		p := &st.PMs[i]
		if p.State < 0 || p.State >= n {
			return fmt.Errorf("engine: pm %d: state %d out of range", i, p.State)
		}
		if len(p.Singles) != n || len(p.Kleene) != n {
			return fmt.Errorf("engine: pm %d: binding arrays sized %d/%d, want %d",
				i, len(p.Singles), len(p.Kleene), n)
		}
		if p.ID == 0 || p.ID == p.ParentID {
			return fmt.Errorf("engine: pm %d: invalid id %d (parent %d)", i, p.ID, p.ParentID)
		}
		for s, ei := range p.Singles {
			if ei < -1 || int(ei) >= nev {
				return fmt.Errorf("engine: pm %d: single[%d] index %d out of range", i, s, ei)
			}
		}
		for s, reps := range p.Kleene {
			for _, ei := range reps {
				if ei < 0 || int(ei) >= nev {
					return fmt.Errorf("engine: pm %d: kleene[%d] index %d out of range", i, s, ei)
				}
			}
		}
		if p.WitnessGuard >= 0 {
			if !en.DeferredNegation {
				return fmt.Errorf("engine: pm %d: witness in eager-negation snapshot", i)
			}
			if p.WitnessGuard >= len(en.m.States[p.State].Guards) {
				return fmt.Errorf("engine: pm %d: witness guard %d out of range", i, p.WitnessGuard)
			}
			if p.Singles[p.State] < 0 {
				return fmt.Errorf("engine: pm %d: witness missing its event", i)
			}
			continue
		}
		if p.WitnessGuard < -1 {
			return fmt.Errorf("engine: pm %d: witness guard %d", i, p.WitnessGuard)
		}
		// A real partial match binds every state up to cur — exactly one of
		// single/kleene per state, matching the state's Kleene-ness — and
		// nothing beyond.
		for s := 0; s <= p.State; s++ {
			kleeneState := en.m.States[s].Comp.Kleene
			if kleeneState {
				if len(p.Kleene[s]) == 0 || p.Singles[s] >= 0 {
					return fmt.Errorf("engine: pm %d: bad kleene binding at state %d", i, s)
				}
			} else {
				if p.Singles[s] < 0 || len(p.Kleene[s]) > 0 {
					return fmt.Errorf("engine: pm %d: bad single binding at state %d", i, s)
				}
			}
		}
		for s := p.State + 1; s < n; s++ {
			if p.Singles[s] >= 0 || len(p.Kleene[s]) > 0 {
				return fmt.Errorf("engine: pm %d: binding beyond state %d", i, p.State)
			}
		}
	}
	return nil
}
