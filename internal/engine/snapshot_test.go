package engine

import (
	"math/rand"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// runSnapshotDifferential splits a stream at cut, runs the prefix, then
// snapshots, restores into a fresh engine, and feeds the suffix to both
// the original and the restored engine in lockstep. Everything
// observable — matches, virtual work, live counts, final PM store,
// stats — must be identical: a restored engine is indistinguishable
// from one that never stopped.
func runSnapshotDifferential(t *testing.T, q *query.Query, deferred, scan bool, s event.Stream, cut int) {
	t.Helper()
	m := nfa.MustCompile(q)
	mk := func() *Engine {
		var en *Engine
		if scan {
			en = newScanEngine(m, DefaultCosts())
		} else {
			en = New(m, DefaultCosts())
		}
		en.DeferredNegation = deferred
		return en
	}
	orig := mk()
	for _, e := range s[:cut] {
		orig.Process(e)
	}

	st := orig.Snapshot()
	restored := mk()
	if err := restored.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := pmFingerprint(restored), pmFingerprint(orig); len(got) != len(want) {
		t.Fatalf("restored PM count %d, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("restored PM %d:\ngot  %s\nwant %s", i, got[i], want[i])
			}
		}
	}
	if restored.Stats() != orig.Stats() {
		t.Fatalf("restored stats %+v, want %+v", restored.Stats(), orig.Stats())
	}

	for i, e := range s[cut:] {
		ro := orig.Process(e)
		rr := restored.Process(e)
		if ro.Work != rr.Work {
			t.Fatalf("event %d: work diverged: orig %d, restored %d", i, ro.Work, rr.Work)
		}
		ko, kr := matchKeys(ro.Matches), matchKeys(rr.Matches)
		if len(ko) != len(kr) {
			t.Fatalf("event %d: match count diverged: orig %v, restored %v", i, ko, kr)
		}
		for j := range ko {
			if ko[j] != kr[j] {
				t.Fatalf("event %d: match %d diverged: orig %s, restored %s", i, j, ko[j], kr[j])
			}
		}
		if orig.LiveCount() != restored.LiveCount() {
			t.Fatalf("event %d: live count diverged: orig %d, restored %d",
				i, orig.LiveCount(), restored.LiveCount())
		}
	}
	if orig.Stats() != restored.Stats() {
		t.Fatalf("final stats diverged:\norig     %+v\nrestored %+v", orig.Stats(), restored.Stats())
	}
	fo, fr := pmFingerprint(orig), pmFingerprint(restored)
	if len(fo) != len(fr) {
		t.Fatalf("final PM count diverged: orig %d, restored %d", len(fo), len(fr))
	}
	for i := range fo {
		if fo[i] != fr[i] {
			t.Fatalf("final PM %d diverged:\norig     %s\nrestored %s", i, fo[i], fr[i])
		}
	}
}

func TestSnapshotRestoreDifferential(t *testing.T) {
	type scenario struct {
		name     string
		q        *query.Query
		deferred bool
	}
	scenarios := []scenario{
		{name: "sequence", q: query.Q1("2ms")},
		{name: "count-window", q: query.MustParse(`
			PATTERN SEQ(A a, B b, C c)
			WHERE a.ID = b.ID AND a.ID = c.ID
			WITHIN 40 events`)},
		{name: "kleene", q: query.Q2("2ms", 1, 3)},
		{name: "negation-eager", q: query.Q4("2ms")},
		{name: "negation-deferred", q: query.Q4("2ms"), deferred: true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				s := gen.DS1(gen.DS1Config{
					Events:       900,
					Seed:         seed,
					InterArrival: 30 * event.Microsecond,
				})
				rng := rand.New(rand.NewSource(seed * 31))
				for _, cut := range []int{1, rng.Intn(len(s)-2) + 1, len(s) - 1} {
					runSnapshotDifferential(t, sc.q, sc.deferred, false, s, cut)
					runSnapshotDifferential(t, sc.q, sc.deferred, true, s, cut)
				}
			}
		})
	}
}

// TestSnapshotKleeneCOW proves a restored Kleene binding re-establishes
// copy-on-write: branching a restored run must not scribble over a
// sibling's shared repetition slice.
func TestSnapshotKleeneCOW(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := bikeStream(rng, 300)
	runSnapshotDifferential(t, query.HotPaths("4ms", 1, 0), false, false, s, 150)
}

func TestRestoreRejectsBadState(t *testing.T) {
	q := query.Q1("2ms")
	m := nfa.MustCompile(q)
	fresh := func() *Engine { return New(m, DefaultCosts()) }

	base := func() *EngineState {
		en := fresh()
		en.Process(event.New("A", event.Millisecond, attrsIV(1, 2)))
		return en.Snapshot()
	}

	cases := []struct {
		name string
		mut  func(st *EngineState)
	}{
		{"state-out-of-range", func(st *EngineState) { st.PMs[0].State = 99 }},
		{"negative-state", func(st *EngineState) { st.PMs[0].State = -1 }},
		{"zero-id", func(st *EngineState) { st.PMs[0].ID = 0 }},
		{"self-parent", func(st *EngineState) { st.PMs[0].ParentID = st.PMs[0].ID }},
		{"single-index-oob", func(st *EngineState) { st.PMs[0].Singles[0] = 99 }},
		{"missing-binding", func(st *EngineState) { st.PMs[0].Singles[0] = -1 }},
		{"short-singles", func(st *EngineState) { st.PMs[0].Singles = st.PMs[0].Singles[:1] }},
		{"witness-in-eager", func(st *EngineState) { st.PMs[0].WitnessGuard = 0 }},
		{"bad-witness-guard", func(st *EngineState) { st.PMs[0].WitnessGuard = -5 }},
		{"nil-event", func(st *EngineState) { st.Events[0] = nil }},
		{"kleene-index-oob", func(st *EngineState) {
			st.PMs[0].Kleene[0] = []int32{42}
			st.PMs[0].Singles[0] = -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base()
			if len(st.PMs) == 0 {
				t.Fatal("expected a live PM in the base snapshot")
			}
			tc.mut(st)
			en := fresh()
			if err := en.Restore(st); err == nil {
				t.Fatal("Restore accepted corrupt state")
			}
			// The failed restore must leave the engine usable cold.
			if en.LiveCount() != 0 || en.Stats().Events != 0 {
				t.Fatalf("failed Restore mutated the engine: live=%d stats=%+v",
					en.LiveCount(), en.Stats())
			}
			en.Process(event.New("A", event.Millisecond, attrsIV(1, 2)))
			if en.LiveCount() == 0 {
				t.Fatal("engine unusable after rejected restore")
			}
		})
	}

	t.Run("non-fresh-engine", func(t *testing.T) {
		st := base()
		en := fresh()
		en.Process(event.New("A", event.Millisecond, attrsIV(1, 2)))
		if err := en.Restore(st); err == nil {
			t.Fatal("Restore accepted a non-fresh engine")
		}
	})
	t.Run("negation-mode-mismatch", func(t *testing.T) {
		st := base()
		en := fresh()
		en.DeferredNegation = true
		if err := en.Restore(st); err == nil {
			t.Fatal("Restore accepted a negation-mode mismatch")
		}
	})
}
