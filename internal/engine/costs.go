package engine

import "cepshed/internal/vclock"

// Costs calibrates the virtual work charged for engine operations, in
// virtual nanoseconds. The absolute values stand in for the paper's
// wall-clock measurements; what matters for reproduction is that work
// scales with the number of partial matches touched and predicates
// evaluated, so that partial-match spikes translate into latency spikes.
type Costs struct {
	// PerEvent is the base cost of ingesting one event.
	PerEvent vclock.Cost
	// PerPredicate is the cost of one predicate evaluation.
	PerPredicate vclock.Cost
	// PerExtension is the cost of branching/creating a partial match.
	PerExtension vclock.Cost
	// PerMatchEvent is the per-bound-event cost of materializing a
	// complete match.
	PerMatchEvent vclock.Cost
	// PerExpiry is the cost of expiring one partial match.
	PerExpiry vclock.Cost
	// PerScan is the per-partial-match cost of the per-event scan (type
	// checks, window checks); it makes idle state expensive to carry,
	// which is what state-based shedding saves.
	PerScan vclock.Cost
	// PerShedEvent is the residual cost of an event discarded by
	// input-based shedding (the shedding filter itself): input shedding
	// is cheap but not free.
	PerShedEvent vclock.Cost
	// PerDrop is the cost of removing one partial match when state-based
	// shedding discards it.
	PerDrop vclock.Cost
}

// DefaultCosts returns the calibration used by all experiments.
func DefaultCosts() Costs {
	return Costs{
		PerEvent:      100,
		PerPredicate:  20,
		PerExtension:  60,
		PerMatchEvent: 10,
		PerExpiry:     10,
		PerScan:       8,
		PerShedEvent:  15,
		PerDrop:       12,
	}
}
