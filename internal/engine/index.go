package engine

import (
	"cepshed/internal/event"
	"cepshed/internal/query"
	"cepshed/internal/vclock"
)

// This file implements the type-indexed partial-match store and the
// start-ordered expiry ring. Both rest on one structural invariant of
// the engine: a registered partial match is immutable except for its
// dead flag (extension always branches), so the set of event types it
// can react to — and its window-start coordinates — are fixed at
// registration time.

// Reaction flags: what a partial match does when an event of the
// indexed type arrives.
const (
	reactGuard   uint8 = 1 << iota // eager negation guard at the next state
	reactTake                      // Kleene take at the current state
	reactProceed                   // bind the next state
)

// indexEntry is one bucket slot. gen snapshots the match's recycle
// generation so entries pointing at a reused object are skipped.
type indexEntry struct {
	pm    *PartialMatch
	gen   uint32
	flags uint8
}

// typeBucket holds, in registration order, every live match that can
// react to one event type. dead counts entries whose match has died
// (compacted lazily).
type typeBucket struct {
	entries []indexEntry
	dead    int
}

// stateReact is the per-state reaction descriptor computed at New: which
// event types a match resting in this state responds to. The dynamic
// parts (repetition count vs Min/MaxReps) are evaluated per match at
// registration.
type stateReact struct {
	takeType string // non-empty iff the state is Kleene
	minReps  int
	maxReps  int

	proceedType string   // type of the next state ("" at the final state)
	guardTypes  []string // types guarding the gap to the next state
}

// typeFlag pairs an event type with merged reaction flags.
type typeFlag struct {
	t string
	f uint8
}

// reactionsOf returns the (type, flags) pairs match pm reacts to,
// deduplicated by type. The result aliases en.reactBuf and is valid
// until the next call.
func (en *Engine) reactionsOf(pm *PartialMatch) []typeFlag {
	buf := en.reactBuf[:0]
	d := &en.reacts[pm.cur]
	if !en.DeferredNegation {
		for _, t := range d.guardTypes {
			buf = addTypeFlag(buf, t, reactGuard)
		}
	}
	if d.takeType != "" && (d.maxReps == 0 || len(pm.kleene[pm.cur]) < d.maxReps) {
		buf = addTypeFlag(buf, d.takeType, reactTake)
	}
	if d.proceedType != "" && (d.takeType == "" || len(pm.kleene[pm.cur]) >= d.minReps) {
		buf = addTypeFlag(buf, d.proceedType, reactProceed)
	}
	en.reactBuf = buf
	return buf
}

func addTypeFlag(buf []typeFlag, t string, f uint8) []typeFlag {
	for i := range buf {
		if buf[i].t == t {
			buf[i].f |= f
			return buf
		}
	}
	return append(buf, typeFlag{t: t, f: f})
}

// indexPM adds a freshly registered match to the buckets of every type
// it reacts to. Bucket order is registration order, which preserves the
// exhaustive scan's reaction (and therefore match emission) order.
func (en *Engine) indexPM(pm *PartialMatch) {
	for _, tf := range en.reactionsOf(pm) {
		b := en.index[tf.t]
		if b == nil {
			b = &typeBucket{}
			en.index[tf.t] = b
			// Invalidate cached TypeRes entries that resolved this type to
			// "no bucket" (engine.ResolveType).
			en.indexGen++
		}
		b.entries = append(b.entries, indexEntry{pm: pm, gen: pm.gen, flags: tf.f})
	}
}

// noteDead records a match's death for lazy cleanup: live counter, sweep
// counters, and the dead tallies of every bucket holding it.
func (en *Engine) noteDead(pm *PartialMatch) {
	en.live--
	en.deadPMs++
	// Before the witness/scan early returns: every match is in exactly one
	// class bucket, witnesses and scan engines included.
	en.noteDeadClass(pm)
	if pm.witnessOf != nil {
		en.deadWitnesses++
		return
	}
	if en.useScan {
		return
	}
	for _, tf := range en.reactionsOf(pm) {
		if b := en.index[tf.t]; b != nil {
			b.dead++
			en.indexDead++
		}
	}
}

// compactBucket drops dead and stale entries in place.
func (en *Engine) compactBucket(b *typeBucket) {
	live := b.entries[:0]
	for _, ent := range b.entries {
		if ent.pm.gen == ent.gen && !ent.pm.dead {
			live = append(live, ent)
		}
	}
	for i := len(live); i < len(b.entries); i++ {
		b.entries[i] = indexEntry{}
	}
	b.entries = live
	en.indexDead -= b.dead
	b.dead = 0
}

// startGroup collects every match (and witness) whose run started at one
// stream position. Window expiry — by duration or by count — is a
// monotone predicate of (startTime, startSeq), and groups are created in
// stream order, so the ring expires strictly from the front.
type startGroup struct {
	startTime event.Time
	startSeq  uint64
	members   []groupMember
}

type groupMember struct {
	pm  *PartialMatch
	gen uint32
}

// expiryRing is a deque of start groups ordered by stream position.
type expiryRing struct {
	groups []*startGroup
	head   int
}

func (r *expiryRing) front() *startGroup {
	if r.head < len(r.groups) {
		return r.groups[r.head]
	}
	return nil
}

func (r *expiryRing) back() *startGroup {
	if r.head < len(r.groups) {
		return r.groups[len(r.groups)-1]
	}
	return nil
}

func (r *expiryRing) push(g *startGroup) { r.groups = append(r.groups, g) }

func (r *expiryRing) pop() {
	r.groups[r.head] = nil
	r.head++
	if r.head > 64 && r.head*2 >= len(r.groups) {
		n := copy(r.groups, r.groups[r.head:])
		for i := n; i < len(r.groups); i++ {
			r.groups[i] = nil
		}
		r.groups = r.groups[:n]
		r.head = 0
	}
}

func (r *expiryRing) reset() {
	r.groups = r.groups[:0]
	r.head = 0
}

// groupFor returns the ring group for runs starting at e, reusing the
// back group when e is the same stream position (several witnesses and a
// run can start on one event).
func (en *Engine) groupFor(e *event.Event) *startGroup {
	if en.useScan {
		return nil
	}
	if g := en.ring.back(); g != nil && g.startSeq == e.Seq && g.startTime == e.Time {
		return g
	}
	g := en.newGroup()
	g.startTime = e.Time
	g.startSeq = e.Seq
	en.ring.push(g)
	return g
}

func (en *Engine) newGroup() *startGroup {
	if k := len(en.groupPool) - 1; k >= 0 {
		g := en.groupPool[k]
		en.groupPool[k] = nil
		en.groupPool = en.groupPool[:k]
		return g
	}
	return &startGroup{}
}

func (en *Engine) freeGroup(g *startGroup) {
	for i := range g.members {
		g.members[i] = groupMember{}
	}
	g.members = g.members[:0]
	en.groupPool = append(en.groupPool, g)
}

// expireRing pops expired start groups off the ring front, marking their
// members dead. Because expiry is monotone in ring order, the first
// non-expired group stops the walk — matches still inside their window
// are never touched.
func (en *Engine) expireRing(e *event.Event, w *vclock.Cost) {
	window := en.m.Query.Window
	for {
		g := en.ring.front()
		if g == nil || !expiredAt(window, g.startTime, g.startSeq, e) {
			return
		}
		for _, mb := range g.members {
			pm := mb.pm
			if pm.gen != mb.gen || pm.dead {
				continue
			}
			pm.dead = true
			en.noteDead(pm)
			en.stats.ExpiredPMs++
			*w += en.costs.PerExpiry
		}
		en.ring.pop()
		en.freeGroup(g)
	}
}

func expiredAt(window query.Window, startTime event.Time, startSeq uint64, e *event.Event) bool {
	if window.Duration > 0 && e.Time-startTime > window.Duration {
		return true
	}
	if window.Count > 0 && e.Seq-startSeq >= uint64(window.Count) {
		return true
	}
	return false
}
