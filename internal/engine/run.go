package engine

import (
	"cepshed/internal/event"
	"cepshed/internal/nfa"
)

// Sequential processes an entire stream through a fresh single-threaded
// engine and returns every match in emission order. It is the reference
// semantics the sharded runtime's determinism cross-check compares
// against (internal/runtime): a one-shard runtime must produce exactly
// this match set.
func Sequential(m *nfa.Machine, costs Costs, stream event.Stream, deferredNegation bool) []Match {
	en := New(m, costs)
	en.DeferredNegation = deferredNegation
	var out []Match
	for _, e := range stream {
		res := en.Process(e)
		out = append(out, res.Matches...)
	}
	en.Flush()
	return out
}
