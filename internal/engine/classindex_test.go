package engine

import (
	"math/rand"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// Differential harness for the class-bucketed index: the same stream
// runs through two identical engines; one sheds with full-scan DropIf,
// the other with bucketed DropClasses over the covered (state, class)
// pairs. Drop counts, virtual costs, live sets, and final stats must be
// identical — including across a snapshot/restore round trip, which
// rebuilds the index.

// classify assigns deterministic pseudo-classes (including -1 for
// "unclassified", which buckets under effective class 0).
func classify(pm *PartialMatch) {
	pm.Class = int(pm.ID()*7%5) - 1
}

// testSlice is a stable slice function of the window-start coordinates.
func testSlice(startSeq uint64) int { return int(startSeq % 3) }

// shedPred is the deterministic per-match predicate both engines use.
func shedPred(pm *PartialMatch) bool {
	return (pm.ID()*2654435761+uint64(testSlice(pm.StartSeq()))*131)%3 == 0
}

func effClass(pm *PartialMatch) int {
	if pm.Class > 0 {
		return pm.Class
	}
	return 0
}

// randomPairs picks a random subset of (state, class) pairs.
func randomPairs(rng *rand.Rand, nStates, nClasses int) map[[2]int]bool {
	set := map[[2]int]bool{}
	for s := 0; s < nStates; s++ {
		for c := 0; c < nClasses; c++ {
			if rng.Intn(2) == 0 {
				set[[2]int{s, c}] = true
			}
		}
	}
	return set
}

func pairsOf(set map[[2]int]bool) [][2]int {
	out := make([][2]int, 0, len(set))
	for s := 0; s < 16; s++ {
		for c := 0; c < 16; c++ {
			if set[[2]int{s, c}] {
				out = append(out, [2]int{s, c})
			}
		}
	}
	return out
}

func runClassDifferential(t *testing.T, q *query.Query, deferred bool, s event.Stream, seed int64, withRestore bool) {
	t.Helper()
	m := nfa.MustCompile(q)
	full := New(m, DefaultCosts())
	bucketed := New(m, DefaultCosts())
	full.DeferredNegation = deferred
	bucketed.DeferredNegation = deferred
	full.OnCreate = classify
	bucketed.OnCreate = classify
	rng := rand.New(rand.NewSource(seed))

	restoreAt := -1
	if withRestore {
		restoreAt = len(s) / 2
	}
	for i, e := range s {
		full.Process(e)
		bucketed.Process(e)
		if i == restoreAt {
			// Round-trip the bucketed engine through a snapshot: the class
			// index is rebuilt from scratch and must keep producing
			// identical drops.
			st := bucketed.Snapshot()
			fresh := New(m, DefaultCosts())
			fresh.DeferredNegation = deferred
			fresh.OnCreate = classify
			if err := fresh.Restore(st); err != nil {
				t.Fatalf("restore: %v", err)
			}
			bucketed = fresh
		}
		if i%7 == 6 {
			pairSet := randomPairs(rng, len(m.States), 5)
			nf, cf := full.DropIf(func(pm *PartialMatch) bool {
				return pairSet[[2]int{pm.State(), effClass(pm)}] && shedPred(pm)
			})
			nb, cb := bucketed.DropClasses(pairsOf(pairSet), shedPred)
			if nf != nb || cf != cb {
				t.Fatalf("event %d: drop diverged: full (%d, %d), bucketed (%d, %d)", i, nf, cf, nb, cb)
			}
			if full.LiveCount() != bucketed.LiveCount() {
				t.Fatalf("event %d: live diverged: full %d, bucketed %d", i, full.LiveCount(), bucketed.LiveCount())
			}
			// Bucket occupancy must agree with the store.
			cs := bucketed.ClassIndexStats()
			if cs.Live != bucketed.live {
				t.Fatalf("event %d: class index live %d != engine live %d", i, cs.Live, bucketed.live)
			}
		}
		if i%13 == 12 {
			// Population snapshot: cells ascending, counts conserve live.
			cells := bucketed.ClassCellCounts(3, func(_ event.Time, sq uint64) int { return testSlice(sq) }, nil)
			total := 0
			for j, c := range cells {
				total += c.Count
				if j > 0 {
					p := cells[j-1]
					if c.State < p.State ||
						(c.State == p.State && (c.Class < p.Class ||
							(c.Class == p.Class && c.Slice <= p.Slice))) {
						t.Fatalf("event %d: cells not strictly ascending: %+v then %+v", i, p, c)
					}
				}
			}
			if total != bucketed.LiveCount() {
				t.Fatalf("event %d: cell counts %d != live %d", i, total, bucketed.LiveCount())
			}
			// A chunked walk with a tiny budget must reproduce the one-shot
			// cells exactly when nothing mutates between chunks.
			var cur CellCursor
			var chunked []CellCount
			for {
				out, done := bucketed.ClassCellCountsChunk(3, func(_ event.Time, sq uint64) int { return testSlice(sq) }, chunked, &cur, 7)
				chunked = out
				if done {
					break
				}
			}
			if len(chunked) != len(cells) {
				t.Fatalf("event %d: chunked cell walk found %d cells, one-shot %d", i, len(chunked), len(cells))
			}
			for j := range cells {
				if chunked[j] != cells[j] {
					t.Fatalf("event %d: chunked cell %d = %+v, one-shot %+v", i, j, chunked[j], cells[j])
				}
			}
		}
	}

	ff, fb := pmFingerprint(full), pmFingerprint(bucketed)
	if len(ff) != len(fb) {
		t.Fatalf("final PM count diverged: full %d, bucketed %d", len(ff), len(fb))
	}
	for i := range ff {
		if ff[i] != fb[i] {
			t.Fatalf("final PM %d diverged:\nfull:     %s\nbucketed: %s", i, ff[i], fb[i])
		}
	}
	if fs, bs := full.Stats(), bucketed.Stats(); fs.DroppedPMs != bs.DroppedPMs || fs.ExpiredPMs != bs.ExpiredPMs {
		t.Fatalf("stats diverged:\nfull:     %+v\nbucketed: %+v", fs, bs)
	}
}

func TestDifferentialDropClassesVsDropIf(t *testing.T) {
	type scenario struct {
		name     string
		q        *query.Query
		deferred bool
	}
	scenarios := []scenario{
		{name: "sequence", q: query.Q1("2ms")},
		{name: "kleene", q: query.Q2("2ms", 1, 3)},
		{name: "negation-deferred", q: query.Q4("2ms"), deferred: true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				s := gen.DS1(gen.DS1Config{
					Events:       1200,
					Seed:         seed,
					InterArrival: 30 * event.Microsecond,
				})
				runClassDifferential(t, sc.q, sc.deferred, s, seed, false)
				runClassDifferential(t, sc.q, sc.deferred, s, seed+50, true)
			}
		})
	}
}

// TestDropClassesBoundedConverges pins the incremental drop used by
// async plan application: chunked passes must drop at most the budget
// per call, converge to done, and end with exactly the PM population a
// one-shot DropClasses leaves on a twin engine.
func TestDropClassesBoundedConverges(t *testing.T) {
	m := nfa.MustCompile(query.Q1("2ms"))
	oneShot := New(m, DefaultCosts())
	chunked := New(m, DefaultCosts())
	oneShot.OnCreate = classify
	chunked.OnCreate = classify
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 3, InterArrival: 5 * event.Microsecond})
	for _, e := range s {
		oneShot.Process(e)
		chunked.Process(e)
	}
	var pairs [][2]int
	for st := 0; st < len(m.States); st++ {
		for c := 0; c < 5; c++ {
			pairs = append(pairs, [2]int{st, c})
		}
	}
	nFull, _ := oneShot.DropIf(func(pm *PartialMatch) bool {
		for _, pr := range pairs {
			if pm.State() == pr[0] && effClass(pm) == pr[1] {
				return shedPred(pm)
			}
		}
		return false
	})
	if nFull == 0 {
		t.Fatal("one-shot drop removed nothing; the scenario tests nothing")
	}
	const chunk = 16
	total, passes := 0, 0
	var cur DropCursor
	for {
		n, _, done := chunked.DropClassesBounded(pairs, shedPred, chunk, &cur)
		if n > chunk {
			t.Fatalf("pass dropped %d > examination budget %d", n, chunk)
		}
		total += n
		passes++
		if done {
			break
		}
		if passes > 10000 {
			t.Fatal("bounded drop did not converge")
		}
	}
	if total != nFull {
		t.Fatalf("chunked dropped %d, one-shot %d", total, nFull)
	}
	if passes < 2 {
		t.Fatalf("only %d pass(es); the budget never bit (nFull=%d)", passes, nFull)
	}
	// Bounded passes defer store compaction to the next Process call;
	// run it explicitly before comparing raw store contents.
	chunked.compactIfDirty()
	fo, fc := pmFingerprint(oneShot), pmFingerprint(chunked)
	if len(fo) != len(fc) {
		t.Fatalf("final PM count diverged: one-shot %d, chunked %d", len(fo), len(fc))
	}
	for i := range fo {
		if fo[i] != fc[i] {
			t.Fatalf("final PM %d diverged:\none-shot: %s\nchunked:  %s", i, fo[i], fc[i])
		}
	}
}

// TestDropEpochAdvances pins the epoch fence: drops, flushes, and
// restores move the epoch; plain processing does not.
func TestDropEpochAdvances(t *testing.T) {
	m := nfa.MustCompile(query.Q1("2ms"))
	en := New(m, DefaultCosts())
	en.OnCreate = classify
	s := gen.DS1(gen.DS1Config{Events: 300, Seed: 1, InterArrival: 30 * event.Microsecond})
	for _, e := range s[:200] {
		en.Process(e)
	}
	e0 := en.DropEpoch()
	for _, e := range s[200:250] {
		en.Process(e)
	}
	if en.DropEpoch() != e0 {
		t.Fatalf("epoch moved on plain processing: %d -> %d", e0, en.DropEpoch())
	}
	if n, _ := en.DropClasses([][2]int{{0, 0}, {1, 0}, {1, 1}, {1, 2}}, func(*PartialMatch) bool { return true }); n == 0 {
		t.Fatalf("expected drops")
	}
	if en.DropEpoch() == e0 {
		t.Fatalf("epoch did not move on DropClasses")
	}
	e1 := en.DropEpoch()
	en.Flush()
	if en.DropEpoch() == e1 {
		t.Fatalf("epoch did not move on Flush")
	}
}
