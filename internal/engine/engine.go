// Package engine is the CEP runtime: it evaluates a compiled query over a
// stream under the exhaustive skip-till-any-match selection policy,
// maintaining the set of partial matches, enforcing the window, and
// accounting the virtual work of every operation. It exposes the partial
// matches for inspection and removal, which is the attachment point for
// state-based load shedding.
//
// The hot path is organized around two auxiliary structures (see
// docs/PERFORMANCE.md): a type index mapping each event type to the
// partial matches that can react to it, and a start-ordered expiry ring
// that pops whole expired start groups off its front. Physical work per
// event is proportional to the matches that actually react; the virtual
// cost model still charges the paper's PerScan for every live match, so
// shedding economics are unchanged.
package engine

import (
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/vclock"
)

// Engine evaluates one query.
type Engine struct {
	m     *nfa.Machine
	costs Costs

	pms       []*PartialMatch
	witnesses []*PartialMatch
	nextID    uint64

	// OnCreate, if set, is called for every newly created partial match
	// (the cost model classifies matches here, §V-B). Setting it also
	// disables partial-match recycling, because OnCreate consumers retain
	// match pointers across events.
	OnCreate func(*PartialMatch)

	// DeferredNegation switches negation handling from eager guard kills
	// to witness state: events of a negated type are stored as
	// zero-contribution witness entries among the partial matches and
	// checked only when a match completes. Witnesses are shed-eligible,
	// so state-based shedding can fabricate matches — the false-positive
	// mechanism the paper's non-monotonicity experiment measures (§VI-H).
	// Must be set before the first Process call.
	DeferredNegation bool

	stats Stats

	// useScan selects the reference exhaustive-scan path (legacy.go) used
	// by the differential tests; the type-indexed path is the default.
	useScan bool

	// live is len(pms) minus dead-but-unswept entries. deadPMs and
	// deadWitnesses gate the compaction sweeps.
	live          int
	deadPMs       int
	deadWitnesses int

	index     map[string]*typeBucket
	indexDead int // dead entries across all buckets
	ring      expiryRing
	groupPool []*startGroup

	// classes is the class-bucketed partial-match index (classindex.go):
	// shedding's view of the store, maintained on every path (witnesses
	// and the reference scan engine included). dropEpoch fences async
	// shed plans against populations that no longer exist.
	classes   classIndex
	dropEpoch uint64

	reacts       []stateReact
	reactBuf     []typeFlag
	witnessSpots map[string][]witnessSpot

	// typeRes memoizes per-event-type dispatch resolution (bucket,
	// witness spots, run-start check) for the batched hot path. indexGen
	// is bumped whenever indexPM creates a new bucket, invalidating the
	// cached nil-bucket entries; non-nil bucket pointers are stable for
	// the engine's lifetime, so only the nil→bucket transition can go
	// stale.
	typeRes  map[string]*TypeRes
	indexGen uint64

	// snapRef is the at-most-one in-flight by-reference snapshot capture
	// (snapref.go); its pms stay pinned against recycling until Release.
	snapRef *SnapshotRef

	// pendingRecycle holds the releases a finished capture parked
	// (snapref.go): a long encode window on a dense stream parks
	// thousands of matches, so Release hands them here and Process
	// drains a bounded number per call instead of replaying them all in
	// one serving-thread pause. Drained only while no capture is in
	// flight; stale entries (recycled early by a cascade, possibly even
	// reused since) are detected by the pooled/dead flags and skipped.
	pendingRecycle []*PartialMatch

	alloc pmAlloc
	pool  bool // recycling enabled (sticky-disabled once OnCreate is seen)

	// Scratch bindings reused across predicate evaluations so passing
	// them through the query.Binding interface never heap-allocates.
	b  binding
	pb provisionalBinding
}

// witnessSpot locates one negation guard for deferred-witness creation.
type witnessSpot struct {
	state int
	guard *nfa.Guard
}

// Stats aggregates engine counters.
type Stats struct {
	Events        uint64 // events processed (not shed)
	CreatedPMs    uint64
	ExpiredPMs    uint64
	KilledByGuard uint64
	DroppedPMs    uint64 // removed by state-based shedding
	Matches       uint64
	PredEvals     uint64
}

// New builds an engine for a compiled machine.
func New(m *nfa.Machine, costs Costs) *Engine {
	en := &Engine{m: m, costs: costs, pool: true}
	en.alloc.init(len(m.States))
	en.index = make(map[string]*typeBucket, 8)
	en.classes.byState = make([][]*classBucket, len(m.States))
	en.reacts = make([]stateReact, len(m.States))
	n := len(m.States)
	for s := range m.States {
		st := &m.States[s]
		d := &en.reacts[s]
		if st.Comp.Kleene {
			d.takeType = st.Comp.Type
			d.minReps = st.Comp.MinReps
			d.maxReps = st.Comp.MaxReps
		}
		if s+1 < n {
			d.proceedType = m.States[s+1].Comp.Type
			for gi := range m.States[s+1].Guards {
				d.guardTypes = append(d.guardTypes, m.States[s+1].Guards[gi].Comp.Type)
			}
		}
	}
	en.witnessSpots = make(map[string][]witnessSpot)
	for s := range m.States {
		for gi := range m.States[s].Guards {
			g := &m.States[s].Guards[gi]
			en.witnessSpots[g.Comp.Type] = append(en.witnessSpots[g.Comp.Type], witnessSpot{state: s, guard: g})
		}
	}
	return en
}

// Machine returns the compiled automaton.
func (en *Engine) Machine() *nfa.Machine { return en.m }

// Stats returns a copy of the engine counters.
func (en *Engine) Stats() Stats { return en.stats }

// LiveCount returns the number of live partial matches.
func (en *Engine) LiveCount() int { return len(en.pms) }

// PartialMatches returns the live partial matches. The slice is owned by
// the engine; callers must not retain it — or the matches it points to —
// across Process calls unless OnCreate is set (which disables match
// recycling).
func (en *Engine) PartialMatches() []*PartialMatch { return en.pms }

// Result reports the outcome of processing one event.
type Result struct {
	// Work is the virtual cost incurred.
	Work vclock.Cost
	// Matches are the complete matches detected by this event.
	Matches []Match
}

// TypeRes is a memoized dispatch resolution for one event type: the
// reactive bucket, the deferred-negation witness spots, and whether the
// type can start a new run. Obtain one from ResolveType and pass it to
// ProcessResolved; a shard processing a type-clustered batch resolves
// once per run of equal types instead of once per event. A TypeRes is
// owned by the engine that issued it and must not be used with another
// engine (in particular not across a supervisor rebuild).
type TypeRes struct {
	t       string
	gen     uint64 // indexGen when bucket was last looked up
	bucket  *typeBucket
	spots   []witnessSpot
	isStart bool
}

// ResolveType returns the memoized dispatch resolution for an event
// type, creating and caching it on first use.
func (en *Engine) ResolveType(t string) *TypeRes {
	if tr := en.typeRes[t]; tr != nil {
		return tr
	}
	if en.typeRes == nil {
		en.typeRes = make(map[string]*TypeRes, 8)
	}
	tr := &TypeRes{
		t:       t,
		gen:     en.indexGen,
		bucket:  en.index[t],
		spots:   en.witnessSpots[t],
		isStart: t == en.m.States[0].Comp.Type,
	}
	en.typeRes[t] = tr
	return tr
}

// Process evaluates the next stream event. Events must be fed in
// non-decreasing time (and sequence) order.
func (en *Engine) Process(e *event.Event) Result {
	return en.ProcessResolved(e, en.ResolveType(e.Type))
}

// ProcessResolved is Process with the per-type dispatch work hoisted
// out: tr must be ResolveType(e.Type) of this engine. The batched shard
// hot path resolves each run of same-type events once and reuses tr
// across the run.
func (en *Engine) ProcessResolved(e *event.Event, tr *TypeRes) Result {
	if en.OnCreate != nil {
		en.pool = false
	}
	en.stats.Events++
	res := Result{Work: en.costs.PerEvent}
	w := &res.Work

	// The paper's cost model charges one scan per live partial match per
	// event (the O(|PM|) term shedding exists to contain). The type index
	// avoids doing that scan physically, so the charge is applied
	// arithmetically over the matches live at event arrival.
	*w += vclock.Cost(len(en.pms)) * en.costs.PerScan

	// Window expiry first: pop expired start groups off the ring front.
	if en.useScan {
		en.expireScan(e, w)
	} else {
		en.expireRing(e, w)
	}

	// Reactions: guards, Kleene takes, and proceeds — only for matches
	// that can respond to e.Type. Branches created here are appended to
	// buckets and not re-scanned for this event.
	if en.useScan {
		en.scanReact(e, &res)
	} else {
		// Revalidate a cached miss: an earlier event in this batch may
		// have registered the first match reacting to this type, creating
		// the bucket after tr was resolved.
		if tr.bucket == nil && tr.gen != en.indexGen {
			tr.bucket = en.index[tr.t]
			tr.gen = en.indexGen
		}
		if b := tr.bucket; b != nil {
			en.reactBucket(b, e, &res)
		}
	}

	// Deferred negation: store the event as a witness for every guard of
	// its type. Witness entries join the partial-match set.
	if en.DeferredNegation {
		for _, spot := range tr.spots {
			wpm := en.alloc.get()
			wpm.id = en.allocID()
			wpm.m = en.m
			wpm.cur = spot.state
			wpm.startTime = e.Time
			wpm.startSeq = e.Seq
			wpm.witnessOf = spot.guard
			wpm.singles[spot.state] = e
			wpm.group = en.groupFor(e)
			*w += en.costs.PerExtension
			en.witnesses = append(en.witnesses, wpm)
			en.register(wpm)
		}
	}

	// Start a new run if the event can bind state 0.
	first := &en.m.States[0]
	if tr.isStart {
		n := len(en.m.States)
		pm := en.alloc.get()
		pm.id = en.allocID()
		pm.m = en.m
		pm.startTime = e.Time
		pm.startSeq = e.Seq
		ok := false
		if first.Comp.Kleene {
			// First repetition: paired incremental predicates are vacuous,
			// and bind predicates cannot anchor at a Kleene state.
			en.b.pm, en.b.current = pm, e
			ok = en.evalSet(first.IncrementalC, &en.b, w)
			if ok {
				pm.kleene[0] = en.alloc.seedRep(e)
			}
		} else {
			pm.singles[0] = e
			en.b.pm, en.b.current = pm, e
			ok = en.evalSet(first.BindC, &en.b, w)
		}
		if !ok {
			en.freeTemp(pm)
		} else {
			*w += en.costs.PerExtension
			if n == 1 && !first.Comp.Kleene {
				// Single-component pattern completes immediately.
				en.stats.CreatedPMs++
				en.tryEmit(pm, nil, e, &res)
				en.freeTemp(pm)
			} else {
				pm.group = en.groupFor(e)
				en.register(pm)
				if n == 1 && first.Comp.Kleene && 1 >= first.Comp.MinReps {
					en.tryEmit(pm, pm, e, &res)
				}
			}
		}
	}

	en.compactIfDirty()
	en.drainRecycle()
	return res
}

// reactBucket dispatches e to every partial match whose bucket entry
// says it can react, in registration order.
func (en *Engine) reactBucket(b *typeBucket, e *event.Event, res *Result) {
	if b.dead > 32 && b.dead*2 > len(b.entries) {
		en.compactBucket(b)
	}
	ents := b.entries
	for i, n := 0, len(ents); i < n; i++ {
		ent := &ents[i]
		pm := ent.pm
		if pm.gen != ent.gen || pm.dead {
			continue
		}
		en.react(pm, ent.flags, e, res)
	}
}

// react applies one match's reactions to e: eager guard kill, Kleene
// take, then proceed — the same per-match order as the exhaustive scan.
func (en *Engine) react(pm *PartialMatch, flags uint8, e *event.Event, res *Result) {
	w := &res.Work
	next := pm.cur + 1
	if flags&reactGuard != 0 && en.checkGuards(pm, next, e, w) {
		pm.dead = true
		en.noteDead(pm)
		en.stats.KilledByGuard++
		return
	}
	if flags&reactTake != 0 {
		st := &en.m.States[pm.cur]
		en.b.pm, en.b.current = pm, e
		if en.evalSet(st.IncrementalC, &en.b, w) {
			branch := en.clonePM(pm)
			branch.kleene[pm.cur] = appendRep(pm.kleene[pm.cur], e)
			*w += en.costs.PerExtension
			en.register(branch)
			if en.m.Final(pm.cur) && len(branch.kleene[pm.cur]) >= st.Comp.MinReps {
				en.tryEmit(branch, branch, e, res)
			}
		}
	}
	if flags&reactProceed != 0 {
		en.tryBind(pm, next, e, res)
	}
}

// checkGuards reports whether e violates a negation guard of state next.
func (en *Engine) checkGuards(pm *PartialMatch, next int, e *event.Event, w *vclock.Cost) bool {
	for gi := range en.m.States[next].Guards {
		g := &en.m.States[next].Guards[gi]
		if g.Comp.Type != e.Type {
			continue
		}
		en.b.pm, en.b.current = pm, e
		if en.evalSet(g.PredsC, &en.b, w) {
			return true
		}
	}
	return false
}

// tryBind attempts to bind e at state next of pm, branching on success.
func (en *Engine) tryBind(pm *PartialMatch, next int, e *event.Event, res *Result) {
	st := &en.m.States[next]
	w := &res.Work
	if st.Comp.Kleene {
		// First Kleene repetition of state next: incremental predicates
		// pairing [i+1] with [i] are vacuous, lone [i] ones see e.
		en.b.pm, en.b.current = pm, e
		if !en.evalSet(st.IncrementalC, &en.b, w) {
			return
		}
		branch := en.clonePM(pm)
		branch.cur = next
		branch.kleene[next] = en.alloc.seedRep(e)
		*w += en.costs.PerExtension
		en.register(branch)
		if en.m.Final(next) && 1 >= st.Comp.MinReps {
			en.tryEmit(branch, branch, e, res)
		}
		return
	}
	en.pb.binding.pm, en.pb.binding.current = pm, e
	en.pb.state, en.pb.cand = next, e
	if !en.evalSet(st.BindC, &en.pb, w) {
		return
	}
	if en.m.Final(next) {
		// Completing a non-Kleene final state emits without keeping a run;
		// the match derives from the extended run pm.
		branch := en.clonePM(pm)
		branch.cur = next
		branch.singles[next] = e
		en.stats.CreatedPMs++
		en.tryEmit(branch, pm, e, res)
		en.freeTemp(branch)
		return
	}
	branch := en.clonePM(pm)
	branch.cur = next
	branch.singles[next] = e
	*w += en.costs.PerExtension
	en.register(branch)
}

// tryEmit evaluates completion predicates and emits a match. source is
// the registered partial match the completion derives from (nil for
// single-event matches); emitting pins it against recycling because it
// escapes in Match.Source.
func (en *Engine) tryEmit(pm *PartialMatch, source *PartialMatch, e *event.Event, res *Result) {
	en.b.pm, en.b.current = pm, nil
	if !en.evalSet(en.m.CompletionC, &en.b, &res.Work) {
		return
	}
	if en.DeferredNegation && en.violatedByWitness(pm, &res.Work) {
		en.stats.KilledByGuard++
		return
	}
	events := pm.Events()
	res.Work += vclock.Cost(len(events)) * en.costs.PerMatchEvent
	if source != nil {
		source.pinned = true
	}
	res.Matches = append(res.Matches, Match{Events: events, Detected: e.Time, Source: source})
	en.stats.Matches++
}

// violatedByWitness checks a completing match against the live negation
// witnesses: a witness of guard g falling strictly between the binding of
// g's neighbouring positive states, and satisfying g's predicates,
// invalidates the match. Shed witnesses are gone and cannot invalidate —
// that is the false-positive path.
func (en *Engine) violatedByWitness(pm *PartialMatch, w *vclock.Cost) bool {
	for _, wit := range en.witnesses {
		if wit.dead {
			continue
		}
		*w += en.costs.PerScan
		s := wit.cur // guard attaches to state s: gap is (state s-1, state s)
		tNext := bindTimeAt(pm, s)
		var tPrev event.Time
		if s > 0 {
			tPrev = lastTimeAt(pm, s-1)
		}
		wt := wit.startTime
		if wt <= tPrev || wt >= tNext {
			continue
		}
		en.b.pm, en.b.current = pm, wit.singles[s]
		if en.evalSet(wit.witnessOf.PredsC, &en.b, w) {
			return true
		}
	}
	return false
}

// bindTimeAt returns the time the match bound state s (first Kleene
// repetition for Kleene states).
func bindTimeAt(pm *PartialMatch, s int) event.Time {
	if reps := pm.kleene[s]; len(reps) > 0 {
		return reps[0].Time
	}
	if ev := pm.singles[s]; ev != nil {
		return ev.Time
	}
	return 0
}

// lastTimeAt returns the time of the latest event bound at state s.
func lastTimeAt(pm *PartialMatch, s int) event.Time {
	if reps := pm.kleene[s]; len(reps) > 0 {
		return reps[len(reps)-1].Time
	}
	if ev := pm.singles[s]; ev != nil {
		return ev.Time
	}
	return 0
}

// evalSet evaluates a compiled predicate conjunction; vacuous
// first-repetition checks pass, any other error fails the conjunction.
func (en *Engine) evalSet(preds []query.CompiledPredicate, b query.Binding, w *vclock.Cost) bool {
	for i := range preds {
		*w += en.costs.PerPredicate
		en.stats.PredEvals++
		ok, err := preds[i].Eval(b)
		if err != nil {
			if query.IsVacuous(err) {
				continue
			}
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

func (en *Engine) allocID() uint64 {
	en.nextID++
	return en.nextID
}

func (en *Engine) register(pm *PartialMatch) {
	en.stats.CreatedPMs++
	en.pms = append(en.pms, pm)
	en.live++
	if pm.group != nil {
		pm.group.members = append(pm.group.members, groupMember{pm: pm, gen: pm.gen})
	}
	if pm.witnessOf == nil && !en.useScan {
		en.indexPM(pm)
	}
	if en.OnCreate != nil {
		en.pool = false
		en.OnCreate(pm)
	}
	// After OnCreate: the class bucket is keyed by the class OnCreate just
	// assigned.
	en.classIndexPM(pm)
}

// compactIfDirty removes dead partial matches (and witnesses) in place,
// recycling objects nothing references anymore. The sweeps are skipped
// entirely when nothing died since the last compaction.
func (en *Engine) compactIfDirty() {
	if en.deadWitnesses > 0 {
		liveW := en.witnesses[:0]
		for _, wpm := range en.witnesses {
			if !wpm.dead {
				liveW = append(liveW, wpm)
			}
		}
		for i := len(liveW); i < len(en.witnesses); i++ {
			en.witnesses[i] = nil
		}
		en.witnesses = liveW
		en.deadWitnesses = 0
	}
	if en.deadPMs > 0 {
		live := en.pms[:0]
		for _, pm := range en.pms {
			if pm.dead {
				en.tryRelease(pm)
				continue
			}
			live = append(live, pm)
		}
		for i := len(live); i < len(en.pms); i++ {
			en.pms[i] = nil
		}
		en.pms = live
		en.deadPMs = 0
	}
	// Safety valve: buckets for types the stream stopped producing keep
	// dead entries forever otherwise.
	if en.indexDead > 1024 && en.indexDead > 2*en.live {
		for _, b := range en.index {
			if b.dead > 0 {
				en.compactBucket(b)
			}
		}
	}
	if en.classes.dead > 1024 && en.classes.dead > 2*en.live {
		en.compactClassIndex()
	}
}

// DropIf removes every live partial match for which shed returns true
// (state-based shedding, ρS) and returns the number removed along with
// the virtual cost of the removal: one PerScan per live match inspected
// plus one PerDrop per match removed.
func (en *Engine) DropIf(shed func(*PartialMatch) bool) (int, vclock.Cost) {
	n, scanned := 0, 0
	for _, pm := range en.pms {
		if pm.dead {
			continue
		}
		scanned++
		if shed(pm) {
			pm.dead = true
			en.noteDead(pm)
			n++
		}
	}
	if n > 0 {
		en.stats.DroppedPMs += uint64(n)
		en.dropEpoch++
		en.compactIfDirty()
	}
	return n, vclock.Cost(scanned)*en.costs.PerScan + vclock.Cost(n)*en.costs.PerDrop
}

// Flush expires all remaining partial matches (end of stream).
func (en *Engine) Flush() {
	en.stats.ExpiredPMs += uint64(len(en.pms))
	for _, pm := range en.pms {
		if !pm.dead {
			pm.dead = true
		}
	}
	for _, pm := range en.pms {
		en.tryRelease(pm)
	}
	en.pms = nil
	en.witnesses = nil
	en.live, en.deadPMs, en.deadWitnesses = 0, 0, 0
	for _, b := range en.index {
		for i := range b.entries {
			b.entries[i] = indexEntry{}
		}
		b.entries = b.entries[:0]
		b.dead = 0
	}
	en.indexDead = 0
	en.resetClassIndex()
	en.dropEpoch++
	for en.ring.front() != nil {
		g := en.ring.front()
		en.ring.pop()
		en.freeGroup(g)
	}
	en.ring.reset()
}
