// Package engine is the CEP runtime: it evaluates a compiled query over a
// stream under the exhaustive skip-till-any-match selection policy,
// maintaining the set of partial matches, enforcing the window, and
// accounting the virtual work of every operation. It exposes the partial
// matches for inspection and removal, which is the attachment point for
// state-based load shedding.
package engine

import (
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/vclock"
)

// Engine evaluates one query.
type Engine struct {
	m     *nfa.Machine
	costs Costs

	pms       []*PartialMatch
	witnesses []*PartialMatch
	nextID    uint64

	// OnCreate, if set, is called for every newly created partial match
	// (the cost model classifies matches here, §V-B).
	OnCreate func(*PartialMatch)

	// DeferredNegation switches negation handling from eager guard kills
	// to witness state: events of a negated type are stored as
	// zero-contribution witness entries among the partial matches and
	// checked only when a match completes. Witnesses are shed-eligible,
	// so state-based shedding can fabricate matches — the false-positive
	// mechanism the paper's non-monotonicity experiment measures (§VI-H).
	DeferredNegation bool

	stats Stats
}

// Stats aggregates engine counters.
type Stats struct {
	Events        uint64 // events processed (not shed)
	CreatedPMs    uint64
	ExpiredPMs    uint64
	KilledByGuard uint64
	DroppedPMs    uint64 // removed by state-based shedding
	Matches       uint64
	PredEvals     uint64
}

// New builds an engine for a compiled machine.
func New(m *nfa.Machine, costs Costs) *Engine {
	return &Engine{m: m, costs: costs}
}

// Machine returns the compiled automaton.
func (en *Engine) Machine() *nfa.Machine { return en.m }

// Stats returns a copy of the engine counters.
func (en *Engine) Stats() Stats { return en.stats }

// LiveCount returns the number of live partial matches.
func (en *Engine) LiveCount() int { return len(en.pms) }

// PartialMatches returns the live partial matches. The slice is owned by
// the engine; callers must not retain it across Process calls.
func (en *Engine) PartialMatches() []*PartialMatch { return en.pms }

// Result reports the outcome of processing one event.
type Result struct {
	// Work is the virtual cost incurred.
	Work vclock.Cost
	// Matches are the complete matches detected by this event.
	Matches []Match
}

// Process evaluates the next stream event. Events must be fed in
// non-decreasing time order.
func (en *Engine) Process(e *event.Event) Result {
	en.stats.Events++
	res := Result{Work: en.costs.PerEvent}
	w := &res.Work

	n := len(en.m.States)
	window := en.m.Query.Window

	// Scan the pre-existing partial matches: expiry, negation guards,
	// Kleene takes, and proceeds. Branches created here are appended and
	// not re-scanned for this event.
	existing := len(en.pms)
	for i := 0; i < existing; i++ {
		pm := en.pms[i]
		if pm.dead {
			continue
		}
		*w += en.costs.PerScan
		if expired(window, pm, e) {
			pm.dead = true
			en.stats.ExpiredPMs++
			*w += en.costs.PerExpiry
			continue
		}
		if pm.witnessOf != nil {
			continue // witnesses never extend
		}
		next := pm.cur + 1

		// Negation guards active while waiting to bind state next
		// (eager mode kills immediately; deferred mode records
		// witnesses below instead).
		if next < n && !en.DeferredNegation {
			if en.checkGuards(pm, next, e, w) {
				pm.dead = true
				en.stats.KilledByGuard++
				continue
			}
		}

		// Kleene take at the current state.
		st := &en.m.States[pm.cur]
		if st.Comp.Kleene && e.Type == st.Comp.Type {
			reps := pm.kleene[pm.cur]
			if st.Comp.MaxReps == 0 || len(reps) < st.Comp.MaxReps {
				if en.evalSet(st.Incremental, binding{pm: pm, current: e}, w) {
					branch := pm.clone(en.allocID())
					branch.kleene[pm.cur] = append(branch.kleene[pm.cur], e)
					*w += en.costs.PerExtension
					en.register(branch)
					if en.m.Final(pm.cur) && len(branch.kleene[pm.cur]) >= st.Comp.MinReps {
						en.tryEmit(branch, branch, e, &res)
					}
				}
			}
		}

		// Proceed: bind the next state.
		if next < n && e.Type == en.m.States[next].Comp.Type {
			if st.Comp.Kleene && len(pm.kleene[pm.cur]) < st.Comp.MinReps {
				continue // Kleene minimum not reached yet
			}
			en.tryBind(pm, next, e, &res)
		}
	}
	en.compact()

	// Deferred negation: store the event as a witness for every guard of
	// its type. Witness entries join the partial-match set.
	if en.DeferredNegation {
		for s := range en.m.States {
			for gi := range en.m.States[s].Guards {
				g := &en.m.States[s].Guards[gi]
				if g.Comp.Type != e.Type {
					continue
				}
				wpm := &PartialMatch{
					id:        en.allocID(),
					m:         en.m,
					cur:       s,
					singles:   make([]*event.Event, n),
					kleene:    make([][]*event.Event, n),
					startTime: e.Time,
					startSeq:  e.Seq,
					Class:     -1,
					Slice:     -1,
					witnessOf: g,
				}
				wpm.singles[s] = e
				*w += en.costs.PerExtension
				en.witnesses = append(en.witnesses, wpm)
				en.register(wpm)
			}
		}
	}

	// Start a new run if the event can bind state 0.
	first := &en.m.States[0]
	if e.Type == first.Comp.Type {
		pm := &PartialMatch{
			id:        en.allocID(),
			m:         en.m,
			singles:   make([]*event.Event, n),
			kleene:    make([][]*event.Event, n),
			startTime: e.Time,
			startSeq:  e.Seq,
			Class:     -1,
			Slice:     -1,
		}
		ok := false
		if first.Comp.Kleene {
			// First repetition: paired incremental predicates are vacuous,
			// and bind predicates cannot anchor at a Kleene state.
			ok = en.evalSet(first.Incremental, binding{pm: pm, current: e}, w)
			if ok {
				pm.kleene[0] = []*event.Event{e}
			}
		} else {
			pm.singles[0] = e
			ok = en.evalSet(first.Bind, binding{pm: pm, current: e}, w)
		}
		if ok {
			*w += en.costs.PerExtension
			if n == 1 && !first.Comp.Kleene {
				// Single-component pattern completes immediately.
				en.stats.CreatedPMs++
				en.tryEmit(pm, nil, e, &res)
			} else {
				en.register(pm)
				if n == 1 && first.Comp.Kleene && 1 >= first.Comp.MinReps {
					en.tryEmit(pm, pm, e, &res)
				}
			}
		}
	}
	return res
}

// checkGuards reports whether e violates a negation guard of state next.
func (en *Engine) checkGuards(pm *PartialMatch, next int, e *event.Event, w *vclock.Cost) bool {
	for _, g := range en.m.States[next].Guards {
		if g.Comp.Type != e.Type {
			continue
		}
		if en.evalSet(g.Preds, binding{pm: pm, current: e}, w) {
			return true
		}
	}
	return false
}

// tryBind attempts to bind e at state next of pm, branching on success.
func (en *Engine) tryBind(pm *PartialMatch, next int, e *event.Event, res *Result) {
	st := &en.m.States[next]
	w := &res.Work
	if st.Comp.Kleene {
		// First Kleene repetition of state next: incremental predicates
		// pairing [i+1] with [i] are vacuous, lone [i] ones see e.
		if !en.evalSet(st.Incremental, binding{pm: pm, current: e}, w) {
			return
		}
		branch := pm.clone(en.allocID())
		branch.cur = next
		branch.kleene[next] = []*event.Event{e}
		*w += en.costs.PerExtension
		en.register(branch)
		if en.m.Final(next) && 1 >= st.Comp.MinReps {
			en.tryEmit(branch, branch, e, res)
		}
		return
	}
	if !en.evalSet(st.Bind, provisionalBinding{binding: binding{pm: pm, current: e}, state: next, cand: e}, w) {
		return
	}
	if en.m.Final(next) {
		// Completing a non-Kleene final state emits without keeping a run;
		// the match derives from the extended run pm.
		branch := pm.clone(en.allocID())
		branch.cur = next
		branch.singles[next] = e
		en.stats.CreatedPMs++
		en.tryEmit(branch, pm, e, res)
		return
	}
	branch := pm.clone(en.allocID())
	branch.cur = next
	branch.singles[next] = e
	*w += en.costs.PerExtension
	en.register(branch)
}

// tryEmit evaluates completion predicates and emits a match. source is
// the registered partial match the completion derives from (nil for
// single-event matches).
func (en *Engine) tryEmit(pm *PartialMatch, source *PartialMatch, e *event.Event, res *Result) {
	if !en.evalSet(en.m.Completion, binding{pm: pm}, &res.Work) {
		return
	}
	if en.DeferredNegation && en.violatedByWitness(pm, &res.Work) {
		en.stats.KilledByGuard++
		return
	}
	events := pm.Events()
	res.Work += vclock.Cost(len(events)) * en.costs.PerMatchEvent
	res.Matches = append(res.Matches, Match{Events: events, Detected: e.Time, Source: source})
	en.stats.Matches++
}

// violatedByWitness checks a completing match against the live negation
// witnesses: a witness of guard g falling strictly between the binding of
// g's neighbouring positive states, and satisfying g's predicates,
// invalidates the match. Shed witnesses are gone and cannot invalidate —
// that is the false-positive path.
func (en *Engine) violatedByWitness(pm *PartialMatch, w *vclock.Cost) bool {
	for _, wit := range en.witnesses {
		if wit.dead {
			continue
		}
		*w += en.costs.PerScan
		s := wit.cur // guard attaches to state s: gap is (state s-1, state s)
		tNext := bindTimeAt(pm, s)
		var tPrev event.Time
		if s > 0 {
			tPrev = lastTimeAt(pm, s-1)
		}
		wt := wit.startTime
		if wt <= tPrev || wt >= tNext {
			continue
		}
		if en.evalSet(wit.witnessOf.Preds, binding{pm: pm, current: wit.singles[s]}, w) {
			return true
		}
	}
	return false
}

// bindTimeAt returns the time the match bound state s (first Kleene
// repetition for Kleene states).
func bindTimeAt(pm *PartialMatch, s int) event.Time {
	if reps := pm.kleene[s]; len(reps) > 0 {
		return reps[0].Time
	}
	if ev := pm.singles[s]; ev != nil {
		return ev.Time
	}
	return 0
}

// lastTimeAt returns the time of the latest event bound at state s.
func lastTimeAt(pm *PartialMatch, s int) event.Time {
	if reps := pm.kleene[s]; len(reps) > 0 {
		return reps[len(reps)-1].Time
	}
	if ev := pm.singles[s]; ev != nil {
		return ev.Time
	}
	return 0
}

// evalSet evaluates a predicate conjunction; vacuous first-repetition
// checks pass, any other error fails the conjunction.
func (en *Engine) evalSet(preds []*query.Predicate, b query.Binding, w *vclock.Cost) bool {
	for _, p := range preds {
		*w += en.costs.PerPredicate
		en.stats.PredEvals++
		ok, err := query.EvalPredicate(p, b)
		if err != nil {
			if query.IsVacuous(err) {
				continue
			}
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

func expired(window query.Window, pm *PartialMatch, e *event.Event) bool {
	if window.Duration > 0 && e.Time-pm.startTime > window.Duration {
		return true
	}
	if window.Count > 0 && e.Seq-pm.startSeq >= uint64(window.Count) {
		return true
	}
	return false
}

func (en *Engine) allocID() uint64 {
	en.nextID++
	return en.nextID
}

func (en *Engine) register(pm *PartialMatch) {
	en.stats.CreatedPMs++
	en.pms = append(en.pms, pm)
	if en.OnCreate != nil {
		en.OnCreate(pm)
	}
}

// compact removes dead partial matches (and witnesses) in place.
func (en *Engine) compact() {
	live := en.pms[:0]
	for _, pm := range en.pms {
		if !pm.dead {
			live = append(live, pm)
		}
	}
	for i := len(live); i < len(en.pms); i++ {
		en.pms[i] = nil
	}
	en.pms = live
	if len(en.witnesses) > 0 {
		liveW := en.witnesses[:0]
		for _, wpm := range en.witnesses {
			if !wpm.dead {
				liveW = append(liveW, wpm)
			}
		}
		for i := len(liveW); i < len(en.witnesses); i++ {
			en.witnesses[i] = nil
		}
		en.witnesses = liveW
	}
}

// DropIf removes every live partial match for which shed returns true
// (state-based shedding, ρS) and returns the number removed along with
// the virtual cost of the removal.
func (en *Engine) DropIf(shed func(*PartialMatch) bool) (int, vclock.Cost) {
	n := 0
	for _, pm := range en.pms {
		if !pm.dead && shed(pm) {
			pm.dead = true
			n++
		}
	}
	if n > 0 {
		en.compact()
		en.stats.DroppedPMs += uint64(n)
	}
	return n, vclock.Cost(n) * en.costs.PerDrop
}

// Flush expires all remaining partial matches (end of stream).
func (en *Engine) Flush() {
	en.stats.ExpiredPMs += uint64(len(en.pms))
	en.pms = nil
	en.witnesses = nil
}
