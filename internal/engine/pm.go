package engine

import (
	"fmt"
	"strconv"
	"strings"

	"cepshed/internal/event"
	"cepshed/internal/nfa"
)

// PartialMatch is one run of the automaton: a partial binding of pattern
// components to events. Partial matches are the unit of state-based
// shedding.
type PartialMatch struct {
	id     uint64
	parent *PartialMatch // the match this one branched from (nil for runs)
	m      *nfa.Machine
	cur    int // highest state with a binding

	singles []*event.Event   // per state, non-Kleene bindings
	kleene  [][]*event.Event // per state, Kleene repetitions

	startTime event.Time
	startSeq  uint64

	// Class and Slice are cost-model annotations managed by the shedder
	// (negative while unclassified).
	Class int
	Slice int

	// witnessOf marks negation-witness state (deferred-negation mode): an
	// event of a negated type stored to invalidate completions. Witnesses
	// live in the engine's partial-match set and are shed-eligible — the
	// mechanism behind the paper's precision loss for non-monotonic
	// queries (§VI-H).
	witnessOf *nfa.Guard

	dead bool

	// Pool/slab lifecycle state (see docs/PERFORMANCE.md). gen is bumped
	// every time the object is recycled, so stale type-index and expiry-
	// ring entries referencing a reused object can be detected and
	// skipped. children counts live branches derived from this match (the
	// cost model walks Parent chains, so a parent may be reclaimed only
	// after all descendants are). pinned marks matches that escaped as
	// Match.Source and must never be recycled. pooled guards against
	// double-release.
	gen      uint32
	children int32
	pinned   bool
	pooled   bool

	// deferred marks a match parked on an in-flight by-reference
	// snapshot's deferred-release list (snapref.go): while a capture is
	// live no match is recycled — the background encoder may be reading
	// it — so tryRelease parks eligible matches here exactly once and
	// SnapshotRef.Release replays the parked releases.
	deferred bool

	// group is the expiry-ring start group this match belongs to (nil in
	// the reference scan engine).
	group *startGroup
}

// IsWitness reports whether this entry is a negation witness rather than
// a real partial match.
func (pm *PartialMatch) IsWitness() bool { return pm.witnessOf != nil }

// ID returns the unique identifier of the partial match.
func (pm *PartialMatch) ID() uint64 { return pm.id }

// Parent returns the partial match this one was derived from, or nil for
// a fresh run. The cost model walks parent chains to attribute
// contribution (Γ+) and consumption (Γ−) to ancestors.
func (pm *PartialMatch) Parent() *PartialMatch { return pm.parent }

// State returns the highest automaton state with a binding.
func (pm *PartialMatch) State() int { return pm.cur }

// StartTime returns the timestamp of the first bound event.
func (pm *PartialMatch) StartTime() event.Time { return pm.startTime }

// StartSeq returns the sequence number of the first bound event.
func (pm *PartialMatch) StartSeq() uint64 { return pm.startSeq }

// Len returns the number of bound events.
func (pm *PartialMatch) Len() int {
	n := 0
	for s := 0; s <= pm.cur && s < len(pm.singles); s++ {
		if pm.singles[s] != nil {
			n++
		}
		n += len(pm.kleene[s])
	}
	return n
}

// EventAt returns the event bound at a non-Kleene state (nil if none).
func (pm *PartialMatch) EventAt(state int) *event.Event {
	if state < 0 || state >= len(pm.singles) {
		return nil
	}
	return pm.singles[state]
}

// Reps returns the Kleene repetitions bound at a state.
func (pm *PartialMatch) Reps(state int) []*event.Event {
	if state < 0 || state >= len(pm.kleene) {
		return nil
	}
	return pm.kleene[state]
}

// LastEvent returns the most recently bound event.
func (pm *PartialMatch) LastEvent() *event.Event {
	if reps := pm.kleene[pm.cur]; len(reps) > 0 {
		return reps[len(reps)-1]
	}
	return pm.singles[pm.cur]
}

// Events returns all bound events in pattern order.
func (pm *PartialMatch) Events() []*event.Event {
	out := make([]*event.Event, 0, pm.Len())
	for s := 0; s <= pm.cur && s < len(pm.singles); s++ {
		if pm.singles[s] != nil {
			out = append(out, pm.singles[s])
		}
		out = append(out, pm.kleene[s]...)
	}
	return out
}

// Alive reports whether the partial match is still live in the engine.
func (pm *PartialMatch) Alive() bool { return !pm.dead }

func (pm *PartialMatch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pm#%d@state%d[", pm.id, pm.cur)
	for i, e := range pm.Events() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.Type)
		b.WriteByte('#')
		b.WriteString(strconv.FormatUint(e.Seq, 10))
	}
	b.WriteByte(']')
	return b.String()
}

// binding adapts a partial match (plus the candidate event under
// examination) to query.Binding. Positions are original pattern
// positions; states are positive-only indices. Methods use pointer
// receivers so the engine can pass a preallocated scratch binding
// through the query.Binding interface without a per-evaluation heap
// allocation.
type binding struct {
	pm      *PartialMatch
	current *event.Event
}

func (b *binding) Single(pos int) *event.Event {
	s := posToState(b.pm.m, pos)
	if s < 0 {
		return nil
	}
	return b.pm.singles[s]
}

func (b *binding) Kleene(pos int) []*event.Event {
	s := posToState(b.pm.m, pos)
	if s < 0 {
		return nil
	}
	return b.pm.kleene[s]
}

func (b *binding) Current() *event.Event { return b.current }

// posToState maps a pattern position to its automaton state via the
// table built at compile time (-1 for negated or unknown positions).
func posToState(m *nfa.Machine, pos int) int {
	if pos < 0 || pos >= len(m.PosState) {
		return -1
	}
	return m.PosState[pos]
}

// provisionalBinding is a binding where, additionally, the candidate
// event is provisionally visible as the binding of state s. Used to
// evaluate bind predicates before committing a branch.
type provisionalBinding struct {
	binding
	state int
	cand  *event.Event
}

func (b *provisionalBinding) Single(pos int) *event.Event {
	if s := posToState(b.pm.m, pos); s >= 0 && s == b.state {
		return b.cand
	}
	return b.binding.Single(pos)
}

func (b *provisionalBinding) Kleene(pos int) []*event.Event {
	if s := posToState(b.pm.m, pos); s >= 0 && s == b.state && !b.pm.m.States[s].Comp.Kleene {
		return nil
	}
	return b.binding.Kleene(pos)
}

// Match is a complete match.
type Match struct {
	// Events are the matched events in pattern order (Kleene repetitions
	// inlined).
	Events []*event.Event
	// Detected is the virtual arrival time of the completing event.
	Detected event.Time
	// Source is the registered partial match the completion was derived
	// from: the extended run for a final non-Kleene bind, or the emitting
	// run itself for a trailing-Kleene take. Nil for single-event matches.
	// Cost-model adaptation credits contribution to Source's class.
	Source *PartialMatch
}

// Key returns the canonical identity of the match: the sequence numbers
// of its events. Recall/precision compare matches by key.
func (m Match) Key() string {
	var b strings.Builder
	for i, e := range m.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(e.Seq, 10))
	}
	return b.String()
}
