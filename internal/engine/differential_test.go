package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// This file is the satellite differential harness for the type-indexed
// hot path: every scenario runs the same randomized stream through the
// indexed engine and the reference exhaustive-scan engine (legacy.go),
// asserting event-by-event identical matches and virtual work, identical
// DropIf outcomes, and identical final stats and partial-match state.
// make check runs it under -race.

// bikeStream generates a Kleene-heavy random stream for HotPaths: trips
// of a few bikes between ten stations, loosely chained so multi-trip
// paths occur.
func bikeStream(rng *rand.Rand, n int) event.Stream {
	var b event.Builder
	lastEnd := map[int64]int64{}
	for i := 0; i < n; i++ {
		bike := int64(rng.Intn(4))
		start := lastEnd[bike]
		if start == 0 || rng.Intn(4) == 0 {
			start = int64(rng.Intn(10) + 1)
		}
		end := int64(rng.Intn(10) + 1)
		lastEnd[bike] = end
		b.Add(event.New("BikeTrip", event.Time(i)*40*event.Microsecond, map[string]event.Value{
			"bike":  event.Int(bike),
			"start": event.Int(start),
			"end":   event.Int(end),
		}))
	}
	return b.Finish()
}

// dropPM is the deterministic shedding predicate used by both engines.
// It keys on stable match identity (IDs are allocated in creation order,
// which the differential itself proves identical), so both engines shed
// the same runs.
func dropPM(pm *PartialMatch) bool {
	h := pm.ID()*2654435761 + pm.StartSeq()*97
	return h%7 == 0
}

func matchKeys(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	return out
}

// pmFingerprint renders the live partial-match set (contents, order, and
// witness flags) for comparison.
func pmFingerprint(en *Engine) []string {
	out := make([]string, 0, len(en.pms))
	for _, pm := range en.pms {
		out = append(out, fmt.Sprintf("%s w=%v", pm.String(), pm.IsWitness()))
	}
	return out
}

func runDifferential(t *testing.T, q *query.Query, deferred bool, s event.Stream, dropEvery int) {
	t.Helper()
	m := nfa.MustCompile(q)
	indexed := New(m, DefaultCosts())
	scan := newScanEngine(m, DefaultCosts())
	indexed.DeferredNegation = deferred
	scan.DeferredNegation = deferred

	for i, e := range s {
		ri := indexed.Process(e)
		rs := scan.Process(e)
		if ri.Work != rs.Work {
			t.Fatalf("event %d (%s): work diverged: indexed %d, scan %d", i, e, ri.Work, rs.Work)
		}
		ki, ks := matchKeys(ri.Matches), matchKeys(rs.Matches)
		if len(ki) != len(ks) {
			t.Fatalf("event %d (%s): match count diverged: indexed %v, scan %v", i, e, ki, ks)
		}
		for j := range ki {
			if ki[j] != ks[j] {
				t.Fatalf("event %d: match %d diverged: indexed %s, scan %s", i, j, ki[j], ks[j])
			}
		}
		if dropEvery > 0 && i%dropEvery == dropEvery-1 {
			ni, ci := indexed.DropIf(dropPM)
			ns, cs := scan.DropIf(dropPM)
			if ni != ns || ci != cs {
				t.Fatalf("event %d: DropIf diverged: indexed (%d, %d), scan (%d, %d)", i, ni, ci, ns, cs)
			}
		}
		if indexed.LiveCount() != scan.LiveCount() {
			t.Fatalf("event %d: live count diverged: indexed %d, scan %d", i, indexed.LiveCount(), scan.LiveCount())
		}
	}

	fi, fs := pmFingerprint(indexed), pmFingerprint(scan)
	if len(fi) != len(fs) {
		t.Fatalf("final PM count diverged: indexed %d, scan %d", len(fi), len(fs))
	}
	for i := range fi {
		if fi[i] != fs[i] {
			t.Fatalf("final PM %d diverged:\nindexed: %s\nscan:    %s", i, fi[i], fs[i])
		}
	}
	if is, ss := indexed.Stats(), scan.Stats(); is != ss {
		t.Fatalf("stats diverged:\nindexed: %+v\nscan:    %+v", is, ss)
	}
	indexed.Flush()
	scan.Flush()
	if is, ss := indexed.Stats(), scan.Stats(); is != ss {
		t.Fatalf("post-flush stats diverged:\nindexed: %+v\nscan:    %+v", is, ss)
	}
}

func TestDifferentialIndexVsScan(t *testing.T) {
	type scenario struct {
		name      string
		q         *query.Query
		deferred  bool
		dropEvery int
	}
	scenarios := []scenario{
		{name: "sequence", q: query.Q1("2ms")},
		{name: "sequence-drop", q: query.Q1("2ms"), dropEvery: 13},
		{name: "sequence-count-window", q: query.MustParse(`
			PATTERN SEQ(A a, B b, C c)
			WHERE a.ID = b.ID AND a.ID = c.ID
			WITHIN 40 events`)},
		{name: "kleene", q: query.Q2("2ms", 1, 3)},
		{name: "kleene-drop", q: query.Q2("2ms", 2, 0), dropEvery: 17},
		{name: "negation-eager", q: query.Q4("2ms")},
		{name: "negation-eager-drop", q: query.Q4("2ms"), dropEvery: 11},
		{name: "negation-deferred", q: query.Q4("2ms"), deferred: true},
		{name: "negation-deferred-drop", q: query.Q4("2ms"), deferred: true, dropEvery: 9},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				s := gen.DS1(gen.DS1Config{
					Events:       1500,
					Seed:         seed,
					InterArrival: 30 * event.Microsecond,
				})
				runDifferential(t, sc.q, sc.deferred, s, sc.dropEvery)
			}
		})
	}
}

// TestDifferentialHotPaths covers unbounded trailing-Kleene emission
// (matches emitted from take reactions) on a chained-trip stream.
func TestDifferentialHotPaths(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := bikeStream(rng, 400)
		runDifferential(t, query.HotPaths("4ms", 2, 5), false, s, 0)
		rng = rand.New(rand.NewSource(seed + 100))
		runDifferential(t, query.HotPaths("4ms", 1, 0), false, bikeStream(rng, 300), 19)
	}
}
