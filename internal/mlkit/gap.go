package mlkit

import (
	"math"
	"math/rand"
)

// GapStatistic estimates the optimal number of clusters in points using
// the gap statistic of Tibshirani, Walther & Hastie (2001): compare the
// within-cluster dispersion against its expectation under B uniform
// reference datasets drawn from the bounding box, and pick the smallest k
// with Gap(k) >= Gap(k+1) - s(k+1). Returns a k in [1, maxK].
func GapStatistic(points [][]float64, maxK, refSets int, rng *rand.Rand) int {
	n := len(points)
	if n == 0 {
		return 1
	}
	if maxK < 1 {
		maxK = 1
	}
	if maxK > n {
		maxK = n
	}
	if refSets < 1 {
		refSets = 5
	}
	dim := len(points[0])
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}

	logW := make([]float64, maxK+1)
	gap := make([]float64, maxK+1)
	sk := make([]float64, maxK+1)
	for k := 1; k <= maxK; k++ {
		res := KMeans(points, k, rng)
		logW[k] = logDispersion(res.Inertia)

		refLogs := make([]float64, refSets)
		for b := 0; b < refSets; b++ {
			ref := make([][]float64, n)
			for i := range ref {
				p := make([]float64, dim)
				for d := range p {
					p[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
				}
				ref[i] = p
			}
			refLogs[b] = logDispersion(KMeans(ref, k, rng).Inertia)
		}
		var mean float64
		for _, v := range refLogs {
			mean += v
		}
		mean /= float64(refSets)
		var sd float64
		for _, v := range refLogs {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd / float64(refSets))
		gap[k] = mean - logW[k]
		sk[k] = sd * math.Sqrt(1+1/float64(refSets))
	}
	for k := 1; k < maxK; k++ {
		if gap[k] >= gap[k+1]-sk[k+1] {
			return k
		}
	}
	return maxK
}

func logDispersion(inertia float64) float64 {
	if inertia <= 0 {
		return math.Log(1e-12)
	}
	return math.Log(inertia)
}
