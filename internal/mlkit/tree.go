package mlkit

import (
	"math"
	"sort"
)

// Tree is a depth-bounded binary classification tree over numeric feature
// vectors (CART with Gini impurity). The paper uses "balanced decision
// trees, setting the maximal depths to the number of clusters for the
// respective state" (§V-B); callers pass that depth.
type Tree struct {
	root    *node
	classes int
	dim     int
}

type node struct {
	feature   int // split feature (leaf if left == nil)
	threshold float64
	left      *node // feature <= threshold
	right     *node // feature > threshold
	label     int
}

// TrainTree fits a tree on the samples with the given labels (0-based
// class indices). maxDepth bounds the tree depth; minLeaf is the minimum
// samples per leaf (clamped to >= 1). Returns nil for empty input.
func TrainTree(samples [][]float64, labels []int, maxDepth, minLeaf int) *Tree {
	if len(samples) == 0 || len(samples) != len(labels) {
		return nil
	}
	if minLeaf < 1 {
		minLeaf = 1
	}
	if maxDepth < 1 {
		maxDepth = 1
	}
	classes := 0
	for _, l := range labels {
		if l+1 > classes {
			classes = l + 1
		}
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{classes: classes, dim: len(samples[0])}
	t.root = t.build(samples, labels, idx, maxDepth, minLeaf)
	return t
}

func (t *Tree) build(samples [][]float64, labels []int, idx []int, depth, minLeaf int) *node {
	counts := make([]int, t.classes)
	for _, i := range idx {
		counts[labels[i]]++
	}
	majority, majCount := 0, -1
	pure := true
	for c, n := range counts {
		if n > majCount {
			majority, majCount = c, n
		}
		if n != 0 && n != len(idx) {
			pure = false
		}
	}
	if pure || depth == 0 || len(idx) < 2*minLeaf {
		return &node{label: majority}
	}
	feature, threshold, ok := bestSplit(samples, labels, idx, t.classes, minLeaf)
	if !ok {
		return &node{label: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if samples[i][feature] <= threshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &node{label: majority}
	}
	return &node{
		feature:   feature,
		threshold: threshold,
		left:      t.build(samples, labels, li, depth-1, minLeaf),
		right:     t.build(samples, labels, ri, depth-1, minLeaf),
		label:     majority,
	}
}

func bestSplit(samples [][]float64, labels []int, idx []int, classes, minLeaf int) (int, float64, bool) {
	bestGini := math.Inf(1)
	bestF, bestT := -1, 0.0
	dim := len(samples[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < dim; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return samples[order[a]][f] < samples[order[b]][f] })
		leftCounts := make([]int, classes)
		rightCounts := make([]int, classes)
		for _, i := range order {
			rightCounts[labels[i]]++
		}
		nLeft := 0
		nRight := len(order)
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			leftCounts[labels[i]]++
			rightCounts[labels[i]]--
			nLeft++
			nRight--
			v, vn := samples[i][f], samples[order[pos+1]][f]
			if v == vn {
				continue // cannot split between equal values
			}
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			g := weightedGini(leftCounts, nLeft, rightCounts, nRight)
			if g < bestGini {
				bestGini = g
				bestF = f
				bestT = (v + vn) / 2
			}
		}
	}
	return bestF, bestT, bestF >= 0
}

func weightedGini(lc []int, ln int, rc []int, rn int) float64 {
	return (gini(lc, ln)*float64(ln) + gini(rc, rn)*float64(rn)) / float64(ln+rn)
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// Predict classifies one feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the depth of the trained tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.left == nil {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Region is a hyperrectangle over the feature space: for each feature an
// inclusive lower bound and an exclusive upper bound (±Inf when open).
type Region struct {
	Lo []float64
	Hi []float64
}

// Contains reports whether x lies in the region.
func (r Region) Contains(x []float64) bool {
	for d := range x {
		if x[d] < r.Lo[d] || x[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// ClassRegions returns the feature-space regions whose leaves predict the
// given label. Input-based shedding derives its event filter from these
// regions: an event whose features fall into a shed class's region is
// discarded (§IV-C, §V-A).
func (t *Tree) ClassRegions(label int) []Region {
	var regions []Region
	lo := make([]float64, t.dim)
	hi := make([]float64, t.dim)
	for d := 0; d < t.dim; d++ {
		lo[d] = math.Inf(-1)
		hi[d] = math.Inf(1)
	}
	var walk func(n *node, lo, hi []float64)
	walk = func(n *node, lo, hi []float64) {
		if n.left == nil {
			if n.label == label {
				regions = append(regions, Region{Lo: clone(lo), Hi: clone(hi)})
			}
			return
		}
		oldHi := hi[n.feature]
		hi[n.feature] = math.Min(oldHi, n.threshold)
		walk(n.left, lo, hi)
		hi[n.feature] = oldHi
		oldLo := lo[n.feature]
		lo[n.feature] = math.Max(oldLo, n.threshold)
		walk(n.right, lo, hi)
		lo[n.feature] = oldLo
	}
	walk(t.root, lo, hi)
	return regions
}
