// Package mlkit contains the small machine-learning substrate the cost
// model needs: k-means clustering, the gap statistic for choosing the
// number of clusters, and depth-bounded decision trees used as per-state
// partial-match classifiers (§V-B of the paper).
package mlkit

import (
	"math"
	"math/rand"
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centroids [][]float64 // k centroids
	Labels    []int       // cluster index per input point
	Inertia   float64     // sum of squared distances to assigned centroids
}

// KMeans clusters points into k clusters using k-means++ seeding and
// Lloyd's algorithm, deterministic under the given rng. Points must share
// a dimension; k is clamped to [1, len(points)].
func KMeans(points [][]float64, k int, rng *rand.Rand) KMeansResult {
	n := len(points)
	if n == 0 {
		return KMeansResult{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, rng)
	labels := make([]int, n)
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = clone(points[rng.Intn(n)])
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[labels[i]])
	}
	return KMeansResult{Centroids: centroids, Labels: labels, Inertia: inertia}
}

func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clone(points[rng.Intn(n)]))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				if sd := sqDist(p, c); sd < d {
					d = sd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with chosen centroids; duplicate one.
			centroids = append(centroids, clone(points[rng.Intn(n)]))
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, clone(points[idx]))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(p []float64) []float64 {
	c := make([]float64, len(p))
	copy(c, p)
	return c
}
