package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoBlobs(rng *rand.Rand, n int) ([][]float64, []int) {
	pts := make([][]float64, 0, 2*n)
	labels := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		labels = append(labels, 0)
	}
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{10 + rng.NormFloat64()*0.3, 10 + rng.NormFloat64()*0.3})
		labels = append(labels, 1)
	}
	return pts, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, want := twoBlobs(rng, 50)
	res := KMeans(pts, 2, rng)
	// All points of a blob must share a label and the two blobs must differ.
	l0 := res.Labels[0]
	for i := 1; i < 50; i++ {
		if res.Labels[i] != l0 {
			t.Fatalf("blob 0 split at %d", i)
		}
	}
	l1 := res.Labels[50]
	if l1 == l0 {
		t.Fatal("blobs merged")
	}
	for i := 51; i < 100; i++ {
		if res.Labels[i] != l1 {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
	_ = want
}

func TestKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if res := KMeans(nil, 3, rng); res.Labels != nil {
		t.Error("empty input should return zero result")
	}
	pts := [][]float64{{1, 1}}
	res := KMeans(pts, 5, rng) // k clamps to n
	if len(res.Centroids) != 1 || res.Labels[0] != 0 {
		t.Error("k > n not clamped")
	}
	res = KMeans(pts, 0, rng) // k clamps to 1
	if len(res.Centroids) != 1 {
		t.Error("k < 1 not clamped")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res := KMeans(pts, 2, rng)
	if res.Inertia != 0 {
		t.Errorf("inertia = %v, want 0", res.Inertia)
	}
}

// Property: inertia never increases when k increases (on the same data/rng
// stream it can fluctuate due to seeding, so compare k=1 vs best-of-3 k=n/2).
func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := twoBlobs(rng, 30)
	one := KMeans(pts, 1, rng).Inertia
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		if in := KMeans(pts, 4, rng).Inertia; in < best {
			best = in
		}
	}
	if best >= one {
		t.Errorf("k=4 inertia %v not below k=1 inertia %v", best, one)
	}
}

func TestGapStatisticFindsTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := twoBlobs(rng, 40)
	k := GapStatistic(pts, 6, 5, rng)
	if k != 2 {
		t.Errorf("gap statistic chose k=%d, want 2", k)
	}
}

func TestGapStatisticUniformPrefersFewClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([][]float64, 120)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	k := GapStatistic(pts, 6, 5, rng)
	if k > 3 {
		t.Errorf("uniform data chose k=%d, want small", k)
	}
}

func TestGapStatisticEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if k := GapStatistic(nil, 5, 3, rng); k != 1 {
		t.Errorf("empty input: k=%d", k)
	}
	pts := [][]float64{{1}, {2}}
	if k := GapStatistic(pts, 10, 3, rng); k < 1 || k > 2 {
		t.Errorf("k=%d out of range", k)
	}
}

func TestTreeLearnsAxisSplit(t *testing.T) {
	var samples [][]float64
	var labels []int
	for i := 0; i < 50; i++ {
		samples = append(samples, []float64{float64(i), 0})
		if i < 25 {
			labels = append(labels, 0)
		} else {
			labels = append(labels, 1)
		}
	}
	tree := TrainTree(samples, labels, 3, 1)
	if tree == nil {
		t.Fatal("nil tree")
	}
	for i, s := range samples {
		if got := tree.Predict(s); got != labels[i] {
			t.Fatalf("Predict(%v) = %d, want %d", s, got, labels[i])
		}
	}
	if tree.Depth() != 1 {
		t.Errorf("depth = %d, want 1 for a single split", tree.Depth())
	}
}

func TestTreeDepthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples [][]float64
	var labels []int
	for i := 0; i < 200; i++ {
		x, y := rng.Float64(), rng.Float64()
		samples = append(samples, []float64{x, y})
		labels = append(labels, rng.Intn(4))
	}
	tree := TrainTree(samples, labels, 2, 1)
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth = %d exceeds bound 2", d)
	}
}

func TestTreeEdgeCases(t *testing.T) {
	if TrainTree(nil, nil, 3, 1) != nil {
		t.Error("empty training set should return nil")
	}
	if TrainTree([][]float64{{1}}, []int{0, 1}, 3, 1) != nil {
		t.Error("mismatched lengths should return nil")
	}
	// Single-class data yields a pure leaf.
	tree := TrainTree([][]float64{{1}, {2}, {3}}, []int{1, 1, 1}, 3, 1)
	if tree.Predict([]float64{99}) != 1 {
		t.Error("pure tree must predict the single class")
	}
	if tree.Depth() != 0 {
		t.Error("pure tree must be a leaf")
	}
}

func TestTreeClassRegions(t *testing.T) {
	var samples [][]float64
	var labels []int
	for i := 0; i < 40; i++ {
		v := float64(i)
		samples = append(samples, []float64{v})
		if v < 20 {
			labels = append(labels, 0)
		} else {
			labels = append(labels, 1)
		}
	}
	tree := TrainTree(samples, labels, 2, 1)
	r0 := tree.ClassRegions(0)
	r1 := tree.ClassRegions(1)
	if len(r0) == 0 || len(r1) == 0 {
		t.Fatal("regions missing")
	}
	if !r0[0].Contains([]float64{5}) || r0[0].Contains([]float64{30}) {
		t.Errorf("class-0 region wrong: %+v", r0[0])
	}
	if !r1[0].Contains([]float64{30}) || r1[0].Contains([]float64{5}) {
		t.Errorf("class-1 region wrong: %+v", r1[0])
	}
}

// Property: a point always lands in exactly the region set of its
// predicted class (regions partition the feature space by prediction).
func TestTreeRegionsConsistentWithPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var samples [][]float64
	var labels []int
	for i := 0; i < 150; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		samples = append(samples, []float64{x, y})
		l := 0
		if x > 5 {
			l++
		}
		if y > 5 {
			l += 2
		}
		labels = append(labels, l)
	}
	tree := TrainTree(samples, labels, 4, 1)
	regions := map[int][]Region{}
	for c := 0; c < 4; c++ {
		regions[c] = tree.ClassRegions(c)
	}
	f := func(xr, yr uint16) bool {
		p := []float64{float64(xr%1000) / 100, float64(yr%1000) / 100}
		pred := tree.Predict(p)
		found := false
		for _, r := range regions[pred] {
			if r.Contains(p) {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
