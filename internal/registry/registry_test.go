package registry

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/runtime"
)

const q1Text = `PATTERN SEQ(A a, B b, C c) WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V WITHIN 8ms`
const qxyText = `PATTERN SEQ(X x, Y y) WHERE x.ID = y.ID WITHIN 8ms`

// abcGroup appends one guaranteed Q1 match group (A,B,C sharing an ID
// with a.V+b.V=c.V) at time t.
func abcGroup(s event.Stream, id int64, t event.Time) event.Stream {
	mk := func(typ string, v int64) *event.Event {
		return event.New(typ, t, map[string]event.Value{"ID": event.Int(id), "V": event.Int(v)})
	}
	return append(s, mk("A", 1), mk("B", 2), mk("C", 3))
}

// xyGroup appends one guaranteed XY match group.
func xyGroup(s event.Stream, id int64, t event.Time) event.Stream {
	mk := func(typ string) *event.Event {
		return event.New(typ, t, map[string]event.Value{"ID": event.Int(id)})
	}
	return append(s, mk("X"), mk("Y"))
}

func stamp(s event.Stream) event.Stream {
	for i, e := range s {
		e.Seq = uint64(i)
	}
	return s
}

// collector counts delivered match keys per query across registry
// incarnations; duplicates are the exactly-once violation the
// per-query durability exists to prevent.
type collector struct {
	mu   sync.Mutex
	seen map[string]map[string]int // query id -> match key -> count
}

func newCollector() *collector { return &collector{seen: map[string]map[string]int{}} }

func (c *collector) hook() func(QuerySpec, int, engine.Match) {
	return func(spec QuerySpec, _ int, m engine.Match) {
		c.mu.Lock()
		defer c.mu.Unlock()
		byKey := c.seen[spec.ID()]
		if byKey == nil {
			byKey = map[string]int{}
			c.seen[spec.ID()] = byKey
		}
		byKey[m.Key()]++
	}
}

func (c *collector) counts(id string) (total, dups int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.seen[id] {
		total++
		if n > 1 {
			dups++
		}
	}
	return total, dups
}

func mustAdd(t *testing.T, g *Registry, spec QuerySpec) *Instance {
	t.Helper()
	in, err := g.Add(spec)
	if err != nil {
		t.Fatalf("Add(%s): %v", spec.ID(), err)
	}
	in.WaitReady()
	return in
}

// drainInst polls until the instance's runtime has ingested want events
// and its queues are empty.
func drainInst(t *testing.T, in *Instance, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s := in.Runtime().Snapshot()
		depth := 0
		for _, ss := range s.Shards {
			depth += ss.QueueDepth
		}
		if s.EventsIn == want && depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled: EventsIn=%d want %d depth=%d", s.EventsIn, want, depth)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFanOutRoutesByType(t *testing.T) {
	g, err := Open(Config{Shards: 2, Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	abc := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	xy := mustAdd(t, g, QuerySpec{Tenant: "t2", Name: "xy", Query: qxyText})

	var s event.Stream
	s = abcGroup(s, 1, 0)
	s = xyGroup(s, 1, 0)
	// An event type no query subscribes to must be counted, not offered.
	s = append(s, event.New("Z", 0, map[string]event.Value{"ID": event.Int(1)}))
	s = stamp(s)

	res := g.OfferBatch(s)
	if res.Events != 6 || res.Unrouted != 1 {
		t.Fatalf("OfferResult = %+v, want Events=6 Unrouted=1", res)
	}
	if res.Deliveries != 5 || res.DoorRejected != 0 {
		t.Fatalf("OfferResult = %+v, want Deliveries=5", res)
	}
	drainInst(t, abc, 3)
	drainInst(t, xy, 2)

	if got := abc.Runtime().Snapshot().Matches; got != 1 {
		t.Errorf("abc matches = %d, want 1", got)
	}
	if got := xy.Runtime().Snapshot().Matches; got != 1 {
		t.Errorf("xy matches = %d, want 1", got)
	}
	snap := g.Snapshot()
	if snap.Unrouted != 1 {
		t.Errorf("snapshot Unrouted = %d, want 1", snap.Unrouted)
	}
	if snap.EventsIn != 5 {
		t.Errorf("snapshot EventsIn = %d, want 5", snap.EventsIn)
	}
}

func TestKeySaltDistinguishesInstances(t *testing.T) {
	g, err := Open(Config{Shards: 4, Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	a := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "a", Query: q1Text})
	b := mustAdd(t, g, QuerySpec{Tenant: "t2", Name: "b", Query: q1Text})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("identical query text under different tenants must fingerprint differently")
	}
	if a.Runtime().Fingerprint() != 0 || b.Runtime().Fingerprint() != 0 {
		t.Fatal("non-durable runtimes should have zero checkpoint fingerprints")
	}
}

func TestLifecycleAddPauseResumeRemove(t *testing.T) {
	g, err := Open(Config{Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	in := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})

	if _, err := g.Add(QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text}); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if _, err := g.Add(QuerySpec{Tenant: "t1", Name: "bad", Query: "PATTERN ("}); err == nil {
		t.Fatal("unparsable query must fail validation")
	}
	if _, err := g.Add(QuerySpec{Tenant: "", Name: "x", Query: q1Text}); err == nil {
		t.Fatal("empty tenant must fail")
	}
	if _, err := g.Add(QuerySpec{Tenant: "a/b", Name: "x", Query: q1Text}); err == nil {
		t.Fatal("slash in tenant must fail")
	}

	if err := g.Pause("t1", "abc"); err != nil {
		t.Fatal(err)
	}
	res := g.OfferBatch(stamp(abcGroup(nil, 1, 0)))
	if res.Deliveries != 0 || res.Unrouted != 3 {
		t.Fatalf("paused query still routed: %+v", res)
	}
	if err := g.Resume("t1", "abc"); err != nil {
		t.Fatal(err)
	}
	res = g.OfferBatch(stamp(abcGroup(nil, 2, 0)))
	if res.Deliveries != 3 {
		t.Fatalf("resumed query not routed: %+v", res)
	}
	drainInst(t, in, 3)

	if err := g.Remove("t1", "abc", false); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove("t1", "abc", false); err == nil {
		t.Fatal("double Remove must fail")
	}
	res = g.OfferBatch(stamp(abcGroup(nil, 3, 0)))
	if res.Deliveries != 0 {
		t.Fatalf("removed query still routed: %+v", res)
	}
}

// TestManifestRestartRecoversAllQueries is the tentpole's durability
// criterion: a registry with several queries (different tenants) is
// closed and reopened; every query re-registers from the manifest,
// recovers its own fingerprinted state, and replaying the shared
// stream from the beginning produces zero duplicate emissions because
// each query's recovery floor drops what it already processed.
func TestManifestRestartRecoversAllQueries(t *testing.T) {
	dir := t.TempDir()
	col := newCollector()
	cfg := Config{
		Shards:   2,
		StateDir: dir,
		OnMatch:  col.hook(),
		Arbiter:  ArbiterConfig{Disabled: true},
	}

	var s event.Stream
	for i := 0; i < 40; i++ {
		s = abcGroup(s, int64(i), event.Time(i)*event.Millisecond)
		s = xyGroup(s, int64(i), event.Time(i)*event.Millisecond)
	}
	s = stamp(s)

	g, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetTenant(Tenant{Name: "t1", Theta: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	abc := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	xy := mustAdd(t, g, QuerySpec{Tenant: "t2", Name: "xy", Query: qxyText})
	g.OfferBatch(s)
	drainInst(t, abc, 120)
	drainInst(t, xy, 80)
	g.Close()

	wantABC, dups := col.counts("t1/abc")
	if wantABC != 40 || dups != 0 {
		t.Fatalf("first run: abc matches=%d dups=%d, want 40/0", wantABC, dups)
	}
	wantXY, _ := col.counts("t2/xy")
	if wantXY != 40 {
		t.Fatalf("first run: xy matches=%d, want 40", wantXY)
	}

	// Restart: the manifest must bring both queries back without Add.
	g2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	g2.WaitRecovered()
	snap := g2.Snapshot()
	if len(snap.Queries) != 2 {
		t.Fatalf("restart registered %d queries, want 2", len(snap.Queries))
	}
	info := g2.RecoveryInfo()
	if info.Restored != 2 {
		t.Fatalf("RecoveryInfo.Restored = %d, want 2", info.Restored)
	}
	if info.MaxSeq != uint64(len(s)-1) {
		t.Fatalf("RecoveryInfo.MaxSeq = %d, want %d", info.MaxSeq, len(s)-1)
	}
	if info.MinFloorSeq == 0 {
		t.Fatal("MinFloorSeq = 0: floors not established")
	}

	// Replay the whole stream: every pair must hit a recovery floor and
	// no match may be emitted twice.
	res := g2.OfferBatch(s)
	if res.Deliveries != 0 || res.FloorSkipped != 200 {
		t.Fatalf("replay result %+v, want all 200 pairs floor-skipped", res)
	}
	for _, id := range []string{"t1/abc", "t2/xy"} {
		if total, dups := col.counts(id); dups != 0 || total != 40 {
			t.Fatalf("%s after replay: matches=%d dups=%d, want 40/0", id, total, dups)
		}
	}

	// Fresh input above the floor must flow and match.
	var s2 event.Stream
	s2 = abcGroup(s2, 1000, event.Time(100)*event.Millisecond)
	for i, e := range s2 {
		e.Seq = uint64(len(s) + i)
	}
	abc2, _ := g2.Get("t1", "abc")
	// Counters compose across incarnations: EventsIn resumes from the
	// restored total.
	base := abc2.Runtime().Snapshot().EventsIn
	res = g2.OfferBatch(s2)
	if res.Deliveries != 3 {
		t.Fatalf("post-restart fresh events: %+v", res)
	}
	drainInst(t, abc2, base+3)
	if total, _ := col.counts("t1/abc"); total != 41 {
		t.Fatalf("fresh match not detected: abc total=%d, want 41", total)
	}
}

// TestCrashRecoveryExactlyOnce kills the whole registry mid-stream (no
// final snapshots, WAL tails abandoned) and verifies that reopening and
// replaying from the beginning emits every query's matches exactly
// once.
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	col := newCollector()
	cfg := Config{
		StateDir: dir,
		OnMatch:  col.hook(),
		Arbiter:  ArbiterConfig{Disabled: true},
	}

	var s event.Stream
	for i := 0; i < 60; i++ {
		s = abcGroup(s, int64(i), event.Time(i)*event.Millisecond)
	}
	s = stamp(s)

	g, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	abc := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	cut := 90 // 30 full groups
	g.OfferBatch(s[:cut])
	drainInst(t, abc, uint64(cut))
	g.Kill()

	g2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	g2.WaitRecovered()
	in2, ok := g2.Get("t1", "abc")
	if !ok {
		t.Fatal("query not re-registered after crash")
	}
	// Replay everything: the floor absorbs the prefix, the suffix
	// completes the stream. EventsIn resumes from the restored total.
	base := in2.Runtime().Snapshot().EventsIn
	res := g2.OfferBatch(s)
	if res.FloorSkipped == 0 {
		t.Fatalf("no floor skips after crash recovery: %+v", res)
	}
	drainInst(t, in2, base+uint64(res.Deliveries))
	total, dups := col.counts("t1/abc")
	if dups != 0 {
		t.Fatalf("%d duplicate matches after crash recovery", dups)
	}
	if total != 60 {
		t.Fatalf("matches after crash+replay = %d, want 60", total)
	}
}

// TestMidStreamAddCheckpointsIndependently adds a second query while
// the first is already serving, then restarts: both queries must come
// back, each from its own state directory.
func TestMidStreamAddCheckpointsIndependently(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, Arbiter: ArbiterConfig{Disabled: true}}

	g, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	abc := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	s1 := stamp(abcGroup(nil, 1, 0))
	g.OfferBatch(s1)
	drainInst(t, abc, 3)

	// Mid-stream add: the new query starts cold and sees only later
	// events.
	xy := mustAdd(t, g, QuerySpec{Tenant: "t2", Name: "xy", Query: qxyText})
	s2 := xyGroup(nil, 7, event.Millisecond)
	for i, e := range s2 {
		e.Seq = uint64(len(s1) + i)
	}
	g.OfferBatch(s2)
	drainInst(t, xy, 2)
	g.Close()

	g2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	g2.WaitRecovered()
	if len(g2.Snapshot().Queries) != 2 {
		t.Fatal("mid-stream-added query lost across restart")
	}
	info := g2.RecoveryInfo()
	if info.Restored != 2 {
		t.Fatalf("Restored = %d, want 2 (independent checkpoints)", info.Restored)
	}
	// The two queries restored different floors: abc through seq 2, xy
	// through seq 4.
	a2, _ := g2.Get("t1", "abc")
	x2, _ := g2.Get("t2", "xy")
	if fa := a2.Runtime().RecoveryInfo().MaxSeq; fa != 2 {
		t.Errorf("abc restored MaxSeq = %d, want 2", fa)
	}
	if fx := x2.Runtime().RecoveryInfo().MaxSeq; fx != 4 {
		t.Errorf("xy restored MaxSeq = %d, want 4", fx)
	}
}

func TestQuarantineEdgeLetters(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, Arbiter: ArbiterConfig{Disabled: true}}
	g, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Quarantine("decode error", "{broken json")
	letters := g.DeadLetters()
	if len(letters) != 1 || letters[0].Tenant != "" || letters[0].Reason != "decode error" {
		t.Fatalf("edge letters = %+v", letters)
	}
	if g.Snapshot().EdgeQuarantined != 1 {
		t.Fatal("edge quarantine not counted")
	}
	g.Close()

	// Edge letters survive restart.
	g2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if got := g2.Snapshot().EdgeQuarantined; got != 1 {
		t.Fatalf("edge quarantine lost across restart: %d", got)
	}
}

// TestArbiterFairShares checks the water-filling entitlement math in
// isolation: slack from under-share tenants redistributes by priority.
func TestArbiterFairShares(t *testing.T) {
	a := &arbiter{cfg: ArbiterConfig{Capacity: 1.0}.withDefaults()}
	a.cfg.Capacity = 1.0
	tenants := map[string]*TenantLoad{
		"small": {Tenant: "small", Utilization: 0.1},
		"big":   {Tenant: "big", Utilization: 2.0},
		"mid":   {Tenant: "mid", Utilization: 0.4},
	}
	specs := map[string]Tenant{
		"small": Tenant{Name: "small", Priority: 1}.withDefaults(),
		"big":   Tenant{Name: "big", Priority: 1}.withDefaults(),
		"mid":   Tenant{Name: "mid", Priority: 2}.withDefaults(),
	}
	a.entitle(tenants, specs)
	// small demands 0.1 < 1/4 entitlement: satisfied exactly.
	if got := tenants["small"].Share; got != 0.1 {
		t.Errorf("small share = %v, want 0.1", got)
	}
	// Remaining 0.9 splits 2:1 between mid and big → mid 0.6 > demand
	// 0.4 → satisfied; big gets the remaining 0.5.
	if got := tenants["mid"].Share; got != 0.4 {
		t.Errorf("mid share = %v, want 0.4", got)
	}
	if got := tenants["big"].Share; got < 0.499 || got > 0.501 {
		t.Errorf("big share = %v, want 0.5", got)
	}
}

// TestArbiterIsolation is the tentpole's isolation criterion: one
// tenant's pathologically expensive query saturates the process; the
// arbiter must impose drops on THAT tenant only, leaving the victim
// tenant's recall untouched.
func TestArbiterIsolation(t *testing.T) {
	col := newCollector()
	cfg := Config{
		Shards:   1,
		QueueLen: 4096,
		OnMatch:  col.hook(),
		Arbiter: ArbiterConfig{
			Interval: 20 * time.Millisecond,
			Capacity: 0.3,
			Smooth:   1, // no smoothing lag in the test
		},
		TuneRuntime: func(spec QuerySpec, rc *runtime.Config) {
			if spec.Tenant == "bad" {
				// Stand-in for a pathological Kleene query: every event
				// costs 1ms of worker time.
				rc.BeforeProcess = func(int, *event.Event) { time.Sleep(time.Millisecond) }
			}
		},
	}
	g, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	bad := mustAdd(t, g, QuerySpec{Tenant: "bad", Name: "abc", Query: q1Text})
	good := mustAdd(t, g, QuerySpec{Tenant: "good", Name: "xy", Query: qxyText})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var goodOffered, goodDelivered int
	wg.Add(2)
	go func() { // aggressor feed: expensive A/B/C events
		defer wg.Done()
		seq := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var s event.Stream
			s = abcGroup(s, int64(i), event.Time(i)*event.Millisecond)
			for _, e := range s {
				e.Seq = seq
				seq++
			}
			g.OfferBatch(s)
		}
	}()
	go func() { // victim feed: cheap X/Y events, modest rate
		defer wg.Done()
		seq := uint64(1 << 40)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var s event.Stream
			s = xyGroup(s, int64(i), event.Time(i)*event.Millisecond)
			for _, e := range s {
				e.Seq = seq
				seq++
			}
			res := g.OfferBatch(s)
			goodOffered += res.Events
			goodDelivered += res.Deliveries
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Wait until the arbiter has imposed drops on the aggressor.
	deadline := time.Now().Add(10 * time.Second)
	for bad.imposedDrops.Load() == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			snap := g.Snapshot()
			t.Fatalf("arbiter never engaged: %+v", snap.Arbiter)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Isolation: the victim tenant saw no imposed drops and no gate.
	if n := good.imposedDrops.Load(); n != 0 {
		t.Fatalf("victim tenant got %d imposed drops", n)
	}
	if pm := good.gate.Probs(); pm != nil {
		t.Fatalf("victim tenant has a gate: %v", pm)
	}
	if goodOffered > 0 && goodDelivered < goodOffered*9/10 {
		t.Fatalf("victim delivery ratio %d/%d under overload", goodDelivered, goodOffered)
	}
	snap := g.Snapshot()
	var badLoad, goodLoad *TenantLoad
	for i := range snap.Arbiter.Tenants {
		switch snap.Arbiter.Tenants[i].Tenant {
		case "bad":
			badLoad = &snap.Arbiter.Tenants[i]
		case "good":
			goodLoad = &snap.Arbiter.Tenants[i]
		}
	}
	if badLoad == nil || badLoad.ImposedDrop == 0 {
		t.Fatalf("aggressor not arbitrated: %+v", snap.Arbiter)
	}
	if goodLoad != nil && goodLoad.ImposedDrop != 0 {
		t.Fatalf("victim arbitrated: %+v", goodLoad)
	}
}

// TestArbiterShedBudget caps imposed drops by the tenant's budget.
func TestArbiterShedBudget(t *testing.T) {
	a := &arbiter{cfg: ArbiterConfig{}.withDefaults()}
	in := &Instance{
		spec:      QuerySpec{Tenant: "t", Name: "q"},
		typeStats: map[string]*typeStat{"A": {}},
		types:     []string{"A"},
	}
	in.arb.util = 1.0
	in.typeStats["A"].offered.Store(100)
	tl := &TenantLoad{Tenant: "t", Utilization: 1.0, Share: 0.2}
	// Budget 0.3 caps the 0.8 excess at 0.3 of utilization.
	a.impose([]*Instance{in}, tl, Tenant{Name: "t", Priority: 1, ShedBudget: 0.3}, 0.8)
	if !tl.BudgetCapped {
		t.Fatal("budget cap not reported")
	}
	pm := in.gate.Probs()
	if pm == nil {
		t.Fatal("no gate imposed")
	}
	if p := pm["A"]; p < 0.29 || p > 0.31 {
		t.Fatalf("imposed drop = %v, want ≈0.3 (budget-capped)", p)
	}
}

func TestOfferSingleEvent(t *testing.T) {
	g, err := Open(Config{Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	in := mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	e := event.New("A", 0, map[string]event.Value{"ID": event.Int(1), "V": event.Int(1)})
	if !g.Offer(e) {
		t.Fatal("Offer rejected an accepted event")
	}
	drainInst(t, in, 1)
	// Unrouted events are not failures at the edge.
	if !g.Offer(event.New("Z", 0, nil)) {
		t.Fatal("Offer of unrouted event should report success")
	}
}

func TestSnapshotDegradationBounds(t *testing.T) {
	g, err := Open(Config{Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	mustAdd(t, g, QuerySpec{Tenant: "t2", Name: "xy", Query: qxyText})
	snap := g.Snapshot()
	if snap.MaxDegradation != runtime.LevelNormal || snap.MinDegradation != runtime.LevelNormal {
		t.Fatalf("idle degradation bounds = %d/%d", snap.MinDegradation, snap.MaxDegradation)
	}
	if len(snap.Queries) != 2 {
		t.Fatalf("queries = %d", len(snap.Queries))
	}
	for _, q := range snap.Queries {
		if q.Fingerprint == fmt.Sprintf("%016x", 0) {
			t.Fatalf("zero fingerprint for %s", q.Spec.ID())
		}
	}
	sort.SliceIsSorted(snap.Queries, func(i, j int) bool {
		return snap.Queries[i].Spec.ID() < snap.Queries[j].Spec.ID()
	})
}
