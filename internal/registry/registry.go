// Package registry turns the single-query runtime into a multi-query,
// multi-tenant serving surface. A Registry holds N compiled queries —
// each wrapped in its own runtime.Runtime (own shards, queues,
// degradation ladder, supervisor, durable state directory) — and fans
// one decoded input stream out to every subscribed query by event type:
// a line is decoded once, then routed to each query whose pattern
// mentions its type, preserving the batched OfferBatch handoff per
// query. Shard ownership is effectively keyed by (query, key): every
// instance's runtime gets KeySalt = the query fingerprint, so one hot
// correlation key lands on different shard indices for different
// queries instead of piling every query's work onto one worker.
//
// Queries are added, paused, and removed at runtime (no restart): Add
// compiles and validates the query text and its strategy before
// anything is activated, and membership changes swap an immutable route
// table under an atomic pointer, so the fan-out path never takes the
// lifecycle lock. With durability enabled each query checkpoints into
// its own fingerprinted directory and the membership itself is recorded
// in a manifest (registry.json), so a restart re-registers every query
// and recovers each one's shard state independently — including queries
// that were added mid-stream.
//
// Cross-query isolation — one tenant's pathological query degrading
// itself rather than its neighbors — is the arbiter's job; see
// arbiter.go.
package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

// Tenant is the unit of isolation and accounting: every query belongs
// to exactly one tenant, and the arbiter's fair-share guarantee is
// stated per tenant, not per query.
type Tenant struct {
	Name string `json:"name"`
	// Theta is the tenant's latency bound θ, inherited by queries that
	// don't override it (zero: registry default).
	Theta time.Duration `json:"theta_ns,omitempty"`
	// Priority weights the tenant's fair share of processing capacity
	// (default 1). A priority-2 tenant is entitled to twice the share of
	// a priority-1 tenant before the arbiter imposes drops on it.
	Priority float64 `json:"priority,omitempty"`
	// ShedBudget caps the utilization fraction the arbiter may shed from
	// this tenant in one control period, in [0,1] (default 1: the
	// arbiter may shed as much as fairness requires). A tenant that pays
	// for full fidelity sets a small budget and accepts latency instead.
	ShedBudget float64 `json:"shed_budget,omitempty"`
}

func (t Tenant) withDefaults() Tenant {
	if t.Priority <= 0 {
		t.Priority = 1
	}
	if t.ShedBudget <= 0 || t.ShedBudget > 1 {
		t.ShedBudget = 1
	}
	return t
}

// QuerySpec describes one registered query. Tenant+Name identify it;
// the rest parameterizes its runtime.
type QuerySpec struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	// Query is the query text (parsed and compiled at Add time).
	Query string `json:"query"`
	// Strategy names the shedding strategy for this query's shards
	// (interpreted by Config.NewStrategy; empty = its default).
	Strategy string `json:"strategy,omitempty"`
	// Theta overrides the tenant latency bound for this query.
	Theta time.Duration `json:"theta_ns,omitempty"`
	// Priority overrides the tenant priority for arbiter value
	// accounting within the tenant (zero: tenant priority).
	Priority float64 `json:"priority,omitempty"`
	// Shards overrides the registry default shard count.
	Shards int `json:"shards,omitempty"`
	// Paused records the paused state across restarts: a paused query
	// stays registered (and durable) but receives no events.
	Paused bool `json:"paused,omitempty"`
}

// ID returns the registry key "tenant/name".
func (s QuerySpec) ID() string { return s.Tenant + "/" + s.Name }

// Config configures a Registry.
type Config struct {
	// Shards / Workers / QueueLen are per-query runtime defaults (see
	// runtime.Config). Workers <= 0 keeps the runtime default of one
	// worker per shard.
	Shards   int
	Workers  int
	QueueLen int
	// DefaultTheta is the latency bound for tenants that don't set one.
	// Zero disables the degradation ladder for such queries.
	DefaultTheta time.Duration
	// StateDir enables durability: each query checkpoints into
	// StateDir/q-<fingerprint>/ and the membership manifest is
	// StateDir/registry.json. Empty: everything is in-memory.
	StateDir string
	// Durability is the checkpoint template applied to each query
	// (Dir is overridden per query). Nil with StateDir set: defaults.
	Durability *checkpoint.Config
	// NewStrategy builds a per-shard strategy factory for a query, or
	// fails validation (e.g. unknown strategy name, strategy requiring a
	// training stream that isn't loaded). Nil: no shedding strategies.
	NewStrategy func(spec QuerySpec, m *nfa.Machine, bound time.Duration) (func(shard int) shed.Strategy, error)
	// OnMatch is invoked for every match of every query, from the
	// detecting shard's goroutine (must tolerate concurrent calls).
	OnMatch func(spec QuerySpec, shard int, m engine.Match)
	// CollectMatches retains matches in memory per query (tests).
	CollectMatches bool
	// DeferredNegation selects witness-based negation semantics.
	DeferredNegation bool
	// Arbiter configures the cross-query shedding arbiter.
	Arbiter ArbiterConfig
	// TuneRuntime, when set, may adjust each query's runtime.Config
	// after the registry has built it and before the runtime starts.
	// It exists for tests (fault injection, restart policies).
	TuneRuntime func(spec QuerySpec, rc *runtime.Config)
	// Logf receives lifecycle messages. Nil: silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// manifest is the durable membership record.
type manifest struct {
	Tenants []Tenant    `json:"tenants"`
	Queries []QuerySpec `json:"queries"`
}

// Instance is one registered query: spec + compiled machine + running
// runtime + the registry-side routing state.
type Instance struct {
	spec QuerySpec
	// fp fingerprints (tenant, name, query text): it salts the shard
	// hash, names the per-query state directory, and — combined with the
	// runtime's own query/sharding fingerprint inside that directory —
	// binds recovered state to exactly this registered query.
	fp    uint64
	dir   string
	m     *nfa.Machine
	rt    *runtime.Runtime
	types []string // pattern event types, sorted, deduplicated

	// ready flips once recovery finished and the instance joined the
	// route table; readyCh closes at the same moment (WaitReady).
	ready   atomic.Bool
	readyCh chan struct{}

	// floor is the exactly-once gate after recovery: events with
	// Seq < floor were already applied by this instance's restored state
	// and are dropped at fan-out (hasFloor distinguishes floor 0).
	hasFloor atomic.Bool
	floor    atomic.Uint64

	// gate carries the arbiter's imposed per-event-type drop
	// probabilities; clear (the fast path) when nothing is imposed.
	gate shed.DropGate

	// typeStats keys every subscribed type to its demand/utility
	// counters. The map itself is immutable after construction; the
	// counters are atomics.
	typeStats map[string]*typeStat

	// imposedDrops counts events the arbiter gate dropped for this
	// query; floorSkips counts events below the recovery floor.
	imposedDrops atomic.Uint64
	floorSkips   atomic.Uint64

	// Arbiter scratch, owned by the arbiter goroutine (see arbiter.go).
	arb arbScratch
}

// typeStat tracks one (query, event type) class: offered counts demand
// (pre-gate, so shed classes keep reporting their true weight), hits
// counts match participations (utility numerator).
type typeStat struct {
	offered atomic.Uint64
	hits    atomic.Uint64
}

// Spec returns the instance's spec (Paused reflects registration time;
// use Registry.Status for live state).
func (in *Instance) Spec() QuerySpec { return in.spec }

// Fingerprint returns the registry-level fingerprint.
func (in *Instance) Fingerprint() uint64 { return in.fp }

// Runtime exposes the wrapped runtime (tests and stats).
func (in *Instance) Runtime() *runtime.Runtime { return in.rt }

// WaitReady blocks until the instance finished recovery and joined the
// route table (or was removed first).
func (in *Instance) WaitReady() { <-in.readyCh }

// routeRef binds an instance to its dense index in the route table's
// scratch space.
type routeRef struct {
	inst *Instance
	idx  int
}

// routeTable is the immutable fan-out index: byType lists, for each
// event type, every active (ready, unpaused) instance subscribed to
// it. Membership changes build a fresh table and swap the pointer; the
// offer path only ever loads it.
type routeTable struct {
	insts  []*Instance
	byType map[string][]routeRef
}

// DeadLetter is a runtime dead letter annotated with the query it
// belongs to (empty Tenant/Query: a registry-edge letter, e.g. an
// undecodable line quarantined before routing).
type DeadLetter struct {
	Tenant string `json:"tenant,omitempty"`
	Query  string `json:"query,omitempty"`
	runtime.DeadLetter
}

// Registry is the multi-query serving core. Create with Open, feed
// with Offer/OfferBatch, manage with Add/Remove/Pause/Resume, stop
// with Close.
type Registry struct {
	cfg     Config
	arb     *arbiter
	dur     checkpoint.Config // resolved template (Dir unset), valid when durable
	durable bool

	route atomic.Pointer[routeTable]

	// mu guards lifecycle: insts/tenants maps, route rebuilds, manifest
	// saves. The offer path never takes it.
	mu      sync.Mutex
	insts   map[string]*Instance
	tenants map[string]Tenant
	closed  bool

	// Edge dead letters: inputs rejected before they were routable
	// (undecodable lines). Kept registry-side so per-query counters stay
	// meaningful; persisted into StateDir's root when durable.
	edgeMu      sync.Mutex
	edgeLetters []runtime.DeadLetter
	edgeTotal   uint64

	unrouted atomic.Uint64

	fanPool sync.Pool // [][]*event.Event scratch for OfferBatch
}

const edgeLetterCap = 256

// edgeDLQOwner namespaces the edge dead-letter checkpoint's temp file
// far away from any per-query shard owner.
const edgeDLQOwner = 1 << 20

// Open builds a registry and — when StateDir is set — re-registers
// every tenant and query recorded in its manifest, recovering each
// query's durable state. Queries that no longer compile (manifest from
// a newer/older build) are logged and skipped, never fatal: the
// registry must come up with whatever subset is servable.
func Open(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	g := &Registry{
		cfg:     cfg,
		insts:   map[string]*Instance{},
		tenants: map[string]Tenant{},
	}
	g.route.Store(&routeTable{byType: map[string][]routeRef{}})
	if cfg.StateDir != "" {
		g.durable = true
		if cfg.Durability != nil {
			g.dur = cfg.Durability.WithDefaults()
		} else {
			g.dur = checkpoint.Config{}.WithDefaults()
		}
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: state dir: %w", err)
		}
		if st, err := checkpoint.LoadDeadLetters(cfg.StateDir); err != nil {
			g.logf("registry: edge dead-letter checkpoint unreadable, starting empty: %v", err)
		} else if st != nil {
			g.seedEdgeLetters(st)
		}
		var man manifest
		ok, err := checkpoint.LoadManifest(g.manifestPath(), &man)
		if err != nil {
			// Neither manifest generation decoded. Starting empty — with the
			// damage rotated aside for the postmortem — beats refusing to
			// start: queries can be re-registered over the admin API while a
			// dead process serves nothing, and cluster failover makes a torn
			// manifest far more likely than a single node ever did.
			g.logf("registry: manifest unreadable, starting with no queries (rotated to .corrupt): %v", err)
			if rerr := os.Rename(g.manifestPath(), g.manifestPath()+".corrupt"); rerr != nil && !os.IsNotExist(rerr) {
				g.logf("registry: manifest rotate failed: %v", rerr)
			}
		}
		if ok {
			for _, t := range man.Tenants {
				g.tenants[t.Name] = t.withDefaults()
			}
			for _, spec := range man.Queries {
				if _, err := g.add(spec, false); err != nil {
					g.logf("registry: manifest query %s not restored: %v", spec.ID(), err)
				}
			}
		}
	}
	g.arb = newArbiter(g, cfg.Arbiter)
	return g, nil
}

func (g *Registry) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

func (g *Registry) manifestPath() string {
	return filepath.Join(g.cfg.StateDir, "registry.json")
}

// persistManifestLocked saves the membership manifest; callers hold mu.
func (g *Registry) persistManifestLocked() {
	if !g.durable {
		return
	}
	var man manifest
	for _, t := range g.tenants {
		man.Tenants = append(man.Tenants, t)
	}
	sort.Slice(man.Tenants, func(i, j int) bool { return man.Tenants[i].Name < man.Tenants[j].Name })
	for _, in := range g.insts {
		man.Queries = append(man.Queries, in.spec)
	}
	sort.Slice(man.Queries, func(i, j int) bool { return man.Queries[i].ID() < man.Queries[j].ID() })
	if err := checkpoint.SaveManifest(g.manifestPath(), man, g.dur.Fsync); err != nil {
		g.logf("registry: manifest save failed: %v", err)
	}
}

// SetTenant registers or updates a tenant. Updates apply to future
// queries immediately and to the arbiter's next tick; a changed Theta
// does not re-bound already-running queries (their ladders were built
// with the bound resolved at Add time).
func (g *Registry) SetTenant(t Tenant) error {
	if t.Name == "" || strings.Contains(t.Name, "/") {
		return fmt.Errorf("registry: invalid tenant name %q", t.Name)
	}
	if t.ShedBudget < 0 || t.ShedBudget > 1 {
		return fmt.Errorf("registry: tenant %s: shed budget %v outside [0,1]", t.Name, t.ShedBudget)
	}
	if t.Priority < 0 {
		return fmt.Errorf("registry: tenant %s: negative priority", t.Name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("registry: closed")
	}
	g.tenants[t.Name] = t.withDefaults()
	g.persistManifestLocked()
	return nil
}

// Tenants returns the registered tenants, sorted by name.
func (g *Registry) Tenants() []Tenant {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (g *Registry) tenant(name string) Tenant {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.tenants[name]; ok {
		return t
	}
	return Tenant{Name: name}.withDefaults()
}

// Add compiles, validates, and registers a query, then activates it
// once its durable state (if any) has recovered. The returned instance
// is registered immediately — visible in Status, checkpointing once
// active — but joins the fan-out route table only after recovery, so
// live input never races a replay. Callers that need the query serving
// use Instance.WaitReady.
func (g *Registry) Add(spec QuerySpec) (*Instance, error) {
	return g.add(spec, true)
}

func (g *Registry) add(spec QuerySpec, persist bool) (*Instance, error) {
	if spec.Tenant == "" || strings.Contains(spec.Tenant, "/") {
		return nil, fmt.Errorf("registry: invalid tenant %q", spec.Tenant)
	}
	if spec.Name == "" || strings.Contains(spec.Name, "/") {
		return nil, fmt.Errorf("registry: invalid query name %q", spec.Name)
	}
	// Compile-and-validate BEFORE any registration side effect: a bad
	// query must be a clean 4xx, not a half-registered instance.
	q, err := query.Parse(spec.Query)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: parse: %w", spec.ID(), err)
	}
	m, err := nfa.Compile(q)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: compile: %w", spec.ID(), err)
	}
	ten := g.tenant(spec.Tenant)
	bound := spec.Theta
	if bound <= 0 {
		bound = ten.Theta
	}
	if bound <= 0 {
		bound = g.cfg.DefaultTheta
	}
	var newStrat func(int) shed.Strategy
	if g.cfg.NewStrategy != nil {
		newStrat, err = g.cfg.NewStrategy(spec, m, bound)
		if err != nil {
			return nil, fmt.Errorf("registry: %s: strategy: %w", spec.ID(), err)
		}
	}

	in := &Instance{
		spec:    spec,
		fp:      checkpoint.Fingerprint("registry", spec.Tenant, spec.Name, spec.Query),
		m:       m,
		readyCh: make(chan struct{}),
		typeStats: map[string]*typeStat{},
	}
	seen := map[string]bool{}
	for i := range q.Pattern {
		typ := q.Pattern[i].Type
		if seen[typ] {
			continue
		}
		seen[typ] = true
		in.types = append(in.types, typ)
		in.typeStats[typ] = &typeStat{}
	}
	sort.Strings(in.types)

	shards := spec.Shards
	if shards <= 0 {
		shards = g.cfg.Shards
	}
	rc := runtime.Config{
		Shards:           shards,
		Workers:          g.cfg.Workers,
		QueueLen:         g.cfg.QueueLen,
		KeySalt:          in.fp,
		NewStrategy:      newStrat,
		DeferredNegation: g.cfg.DeferredNegation,
		CollectMatches:   g.cfg.CollectMatches,
		Bound:            bound,
		Logf: func(format string, args ...any) {
			g.logf("%s: "+format, append([]any{spec.ID()}, args...)...)
		},
	}
	if g.cfg.OnMatch != nil {
		onMatch := g.cfg.OnMatch
		rc.OnMatch = func(shard int, mt engine.Match) {
			in.countMatch(mt)
			onMatch(spec, shard, mt)
		}
	} else {
		rc.OnMatch = func(shard int, mt engine.Match) { in.countMatch(mt) }
	}
	if g.durable {
		dur := g.dur
		dur.Dir = filepath.Join(g.cfg.StateDir, fmt.Sprintf("q-%016x", in.fp))
		rc.Durability = &dur
		in.dir = dur.Dir
	}
	if g.cfg.TuneRuntime != nil {
		g.cfg.TuneRuntime(spec, &rc)
	}

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("registry: closed")
	}
	if _, dup := g.insts[spec.ID()]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("registry: %s already registered", spec.ID())
	}
	in.rt = runtime.New(m, rc)
	g.insts[spec.ID()] = in
	if persist {
		g.persistManifestLocked()
	}
	g.mu.Unlock()

	// Activation is asynchronous: the instance joins the route table
	// only after its shards finished restore-and-replay, so fan-out
	// input cannot interleave with WAL replay, and the recovery floor is
	// in place before the first live event is routed.
	go func() {
		in.rt.WaitRecovered()
		if info := in.rt.RecoveryInfo(); info.Restored {
			in.floor.Store(info.MaxSeq + 1)
			in.hasFloor.Store(true)
		}
		g.mu.Lock()
		if g.insts[spec.ID()] == in && !g.closed {
			in.ready.Store(true)
			g.rebuildRouteLocked()
		}
		g.mu.Unlock()
		close(in.readyCh)
	}()
	return in, nil
}

func (in *Instance) countMatch(m engine.Match) {
	for _, e := range m.Events {
		if ts, ok := in.typeStats[e.Type]; ok {
			ts.hits.Add(1)
		}
	}
}

// Remove unregisters a query and drains its runtime gracefully (final
// snapshot included when durable). purge additionally deletes its
// state directory — the difference between "stop serving this query"
// and "forget it ever existed".
func (g *Registry) Remove(tenant, name string, purge bool) error {
	id := tenant + "/" + name
	g.mu.Lock()
	in, ok := g.insts[id]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("registry: %s not registered", id)
	}
	delete(g.insts, id)
	g.rebuildRouteLocked()
	g.persistManifestLocked()
	g.mu.Unlock()
	// Close outside mu: draining can take a while and must not block
	// unrelated lifecycle operations. In-flight offers that still hold
	// the old route table land on a closing runtime, which rejects them
	// — the same race a plain runtime already tolerates.
	in.rt.Close()
	if purge && in.dir != "" {
		if err := os.RemoveAll(in.dir); err != nil {
			g.logf("registry: %s: purge: %v", id, err)
		}
	}
	return nil
}

// Pause stops routing events to a query while keeping it registered,
// warm, and durable. Resume reverses it.
func (g *Registry) Pause(tenant, name string) error { return g.setPaused(tenant, name, true) }

// Resume re-activates a paused query.
func (g *Registry) Resume(tenant, name string) error { return g.setPaused(tenant, name, false) }

func (g *Registry) setPaused(tenant, name string, paused bool) error {
	id := tenant + "/" + name
	g.mu.Lock()
	defer g.mu.Unlock()
	in, ok := g.insts[id]
	if !ok {
		return fmt.Errorf("registry: %s not registered", id)
	}
	if in.spec.Paused == paused {
		return nil
	}
	in.spec.Paused = paused
	g.rebuildRouteLocked()
	g.persistManifestLocked()
	return nil
}

// Get returns a registered instance by id.
func (g *Registry) Get(tenant, name string) (*Instance, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	in, ok := g.insts[tenant+"/"+name]
	return in, ok
}

// instances returns every registered instance, sorted by id.
func (g *Registry) instances() []*Instance {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Instance, 0, len(g.insts))
	for _, in := range g.insts {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.ID() < out[j].spec.ID() })
	return out
}

// rebuildRouteLocked recomputes the immutable route table from current
// membership; callers hold mu.
func (g *Registry) rebuildRouteLocked() {
	rt := &routeTable{byType: map[string][]routeRef{}}
	ids := make([]string, 0, len(g.insts))
	for id := range g.insts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		in := g.insts[id]
		if !in.ready.Load() || in.spec.Paused {
			continue
		}
		ref := routeRef{inst: in, idx: len(rt.insts)}
		rt.insts = append(rt.insts, in)
		for _, typ := range in.types {
			rt.byType[typ] = append(rt.byType[typ], ref)
		}
	}
	g.route.Store(rt)
}

// OfferResult accounts one OfferBatch call. Deliveries/DoorRejected/
// ArbiterShed/FloorSkipped count (event, query) pairs — one event
// fanned out to three queries contributes three pairs — while Events
// and Unrouted count input events.
type OfferResult struct {
	// Events is the input batch size.
	Events int
	// Deliveries is how many (event, query) pairs a query's runtime
	// accepted into a shard queue.
	Deliveries int
	// DoorRejected counts pairs refused by a query's degradation ladder
	// or failed shards — the overload signal.
	DoorRejected int
	// ArbiterShed counts pairs dropped by the cross-query arbiter's
	// gates (deliberate, budgeted shedding — not overload backpressure).
	ArbiterShed int
	// FloorSkipped counts pairs below a recovered query's sequence
	// floor: already durable in that query's state, dropped to keep
	// recovery exactly-once.
	FloorSkipped int
	// Unrouted counts events no registered query subscribes to.
	Unrouted int
}

// Overloaded reports whether any (event, query) pair hit backpressure.
func (r OfferResult) Overloaded() bool { return r.DoorRejected > 0 }

// MinDegradation returns the lowest degradation-ladder level across
// active (ready, unpaused) queries, or -1 when none are active. It is
// the whole-server load-rejection signal — reject new input only when
// EVERY serving query refuses it — and, unlike Snapshot, costs one
// atomic load per query.
func (g *Registry) MinDegradation() int {
	rt := g.route.Load()
	min := -1
	for _, in := range rt.insts {
		lvl := in.rt.DegradationLevel()
		if min < 0 || lvl < min {
			min = lvl
		}
	}
	return min
}

func (g *Registry) getFan(n int) [][]*event.Event {
	if v := g.fanPool.Get(); v != nil {
		s := v.([][]*event.Event)
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = s[i][:0]
			}
			return s
		}
	}
	return make([][]*event.Event, n)
}

func (g *Registry) putFan(s [][]*event.Event) {
	g.fanPool.Put(s[:cap(s)])
}

// OfferBatch fans a decoded batch out to every subscribed query: one
// route-table load covers the whole batch, each query receives its
// events as one batched OfferBatch handoff (order preserved per
// query), and per-(query, type) gates/floors are applied inline.
// Blocking semantics per query match runtime.OfferBatch: a query whose
// shard queues are full exerts backpressure on the caller; queries at
// LevelReject refuse their pairs without blocking anyone else.
func (g *Registry) OfferBatch(events []*event.Event) OfferResult {
	var res OfferResult
	res.Events = len(events)
	if len(events) == 0 {
		return res
	}
	rt := g.route.Load()
	if len(rt.insts) == 0 {
		res.Unrouted = len(events)
		g.unrouted.Add(uint64(len(events)))
		return res
	}
	fan := g.getFan(len(rt.insts))
	for _, e := range events {
		refs := rt.byType[e.Type]
		if len(refs) == 0 {
			res.Unrouted++
			g.unrouted.Add(1)
			continue
		}
		for _, ref := range refs {
			in := ref.inst
			if ts := in.typeStats[e.Type]; ts != nil {
				ts.offered.Add(1)
			}
			if in.hasFloor.Load() && e.Seq < in.floor.Load() {
				in.floorSkips.Add(1)
				res.FloorSkipped++
				continue
			}
			if in.gate.ShouldDrop(e.Type) {
				in.imposedDrops.Add(1)
				res.ArbiterShed++
				continue
			}
			fan[ref.idx] = append(fan[ref.idx], e)
		}
	}
	for idx, sub := range fan {
		if len(sub) == 0 {
			continue
		}
		n := rt.insts[idx].rt.OfferBatch(sub)
		res.Deliveries += n
		res.DoorRejected += len(sub) - n
	}
	g.putFan(fan)
	return res
}

// Offer routes a single event (the TCP per-line path). It returns
// false only when at least one subscribed query door-rejected the
// event and none accepted it — the signal a NACKing protocol wants.
func (g *Registry) Offer(e *event.Event) bool {
	res := g.OfferBatch([]*event.Event{e})
	return res.DoorRejected == 0 || res.Deliveries > 0
}

// Quarantine records an input rejected before routing (undecodable
// line) in the registry's edge dead-letter queue, persisted when
// durable.
func (g *Registry) Quarantine(reason, payload string) {
	if len(payload) > 160 {
		payload = payload[:160]
	}
	g.edgeMu.Lock()
	g.edgeTotal++
	g.edgeLetters = append(g.edgeLetters, runtime.DeadLetter{
		Shard:   -1,
		Reason:  reason,
		Payload: payload,
	})
	if len(g.edgeLetters) > edgeLetterCap {
		g.edgeLetters = g.edgeLetters[len(g.edgeLetters)-edgeLetterCap:]
	}
	st := g.edgeState()
	g.edgeMu.Unlock()
	if g.durable {
		if err := checkpoint.SaveDeadLetters(g.cfg.StateDir, edgeDLQOwner, st, g.dur.Fsync); err != nil {
			g.logf("registry: edge dead-letter checkpoint failed: %v", err)
		}
	}
}

func (g *Registry) edgeState() *checkpoint.DeadLetterState {
	st := &checkpoint.DeadLetterState{Total: g.edgeTotal}
	for _, dl := range g.edgeLetters {
		st.Letters = append(st.Letters, checkpoint.DeadLetterRecord{
			Shard:   dl.Shard,
			Seq:     dl.Seq,
			Type:    dl.Type,
			Reason:  dl.Reason,
			Payload: dl.Payload,
		})
	}
	return st
}

func (g *Registry) seedEdgeLetters(st *checkpoint.DeadLetterState) {
	g.edgeMu.Lock()
	defer g.edgeMu.Unlock()
	g.edgeTotal = st.Total
	for _, dl := range st.Letters {
		g.edgeLetters = append(g.edgeLetters, runtime.DeadLetter{
			Shard:   dl.Shard,
			Seq:     dl.Seq,
			Type:    dl.Type,
			Reason:  dl.Reason,
			Payload: dl.Payload,
		})
	}
}

// DeadLetters merges the registry-edge letters with every query's
// retained letters, each annotated with its owner.
func (g *Registry) DeadLetters() []DeadLetter {
	var out []DeadLetter
	g.edgeMu.Lock()
	for _, dl := range g.edgeLetters {
		out = append(out, DeadLetter{DeadLetter: dl})
	}
	g.edgeMu.Unlock()
	for _, in := range g.instances() {
		for _, dl := range in.rt.DeadLetters() {
			out = append(out, DeadLetter{
				Tenant:     in.spec.Tenant,
				Query:      in.spec.Name,
				DeadLetter: dl,
			})
		}
	}
	return out
}

// WaitRecovered blocks until every currently registered query is
// active (recovered and routed, or removed).
func (g *Registry) WaitRecovered() {
	for _, in := range g.instances() {
		<-in.readyCh
	}
}

// RecoveryInfo aggregates per-query recovery across the registry.
type RecoveryInfo struct {
	// Restored counts queries that recovered a sequence floor.
	Restored int `json:"restored_queries"`
	// MaxSeq/MaxTime are the highest restored input sequence/time over
	// all queries; a shared-stream producer resumes above MaxSeq.
	// MinFloorSeq is the LOWEST floor over restored queries: replaying
	// the shared stream from above MinFloorSeq reaches every query's gap
	// (per-query floors drop what an individual query already has).
	MaxSeq      uint64 `json:"max_seq"`
	MaxTime     int64  `json:"max_time"`
	MinFloorSeq uint64 `json:"min_floor_seq"`
	// WALReplayed/ColdStarts sum the per-query runtime counters.
	WALReplayed uint64 `json:"wal_replayed"`
	ColdStarts  uint64 `json:"cold_starts"`
}

// RecoveryInfo reports the aggregate floor; meaningful after
// WaitRecovered.
func (g *Registry) RecoveryInfo() RecoveryInfo {
	var info RecoveryInfo
	first := true
	for _, in := range g.instances() {
		ri := in.rt.RecoveryInfo()
		info.WALReplayed += ri.WALReplayed
		info.ColdStarts += ri.ColdStarts
		if !ri.Restored {
			// A query with nothing restored needs the stream from the
			// beginning.
			info.MinFloorSeq = 0
			first = false
			continue
		}
		info.Restored++
		if ri.MaxSeq > info.MaxSeq {
			info.MaxSeq = ri.MaxSeq
		}
		if ri.MaxTime > info.MaxTime {
			info.MaxTime = ri.MaxTime
		}
		if first || ri.MaxSeq+1 < info.MinFloorSeq {
			info.MinFloorSeq = ri.MaxSeq + 1
		}
		first = false
	}
	return info
}

// InstanceStatus is the per-query slice of a registry snapshot.
type InstanceStatus struct {
	Spec        QuerySpec          `json:"spec"`
	Fingerprint string             `json:"fingerprint"`
	Ready       bool               `json:"ready"`
	Types       []string           `json:"types"`
	// Imposed is the arbiter's current drop probability per event type
	// (absent types: zero).
	Imposed      map[string]float64 `json:"imposed,omitempty"`
	ImposedDrops uint64             `json:"imposed_drops"`
	FloorSkips   uint64             `json:"floor_skips"`
	Runtime      runtime.Snapshot   `json:"runtime"`
}

// Snapshot is the registry-wide point-in-time state.
type Snapshot struct {
	Queries []InstanceStatus `json:"queries"`
	Tenants []Tenant         `json:"tenants"`
	Arbiter ArbiterSnapshot  `json:"arbiter"`

	// Totals aggregated across queries (same fields as the runtime's).
	EventsIn          uint64 `json:"events_in"`
	EventsShed        uint64 `json:"events_shed"`
	EventsProcessed   uint64 `json:"events_processed"`
	Overflow          uint64 `json:"overflow_dropped"`
	Matches           uint64 `json:"matches"`
	LivePMs           int64  `json:"live_partial_matches"`
	Snapshots         uint64 `json:"snapshots"`
	WALReplayed       uint64 `json:"wal_replayed"`
	ColdStarts        uint64 `json:"cold_starts"`
	Restarts          uint64 `json:"restarts"`
	Quarantined       uint64 `json:"quarantined"`
	AdmissionRejected uint64 `json:"admission_rejected"`
	FailedShards      int    `json:"failed_shards"`
	WALErrors         uint64 `json:"wal_errors"`
	Recovering        bool   `json:"recovering"`

	// MaxDegradation/MinDegradation are the worst and best ladder level
	// across active queries: Max drives "degraded" health, Min drives
	// whole-server load rejection (429 only when EVERY query refuses).
	MaxDegradation int `json:"max_degradation"`
	MinDegradation int `json:"min_degradation"`

	// ImposedDrops counts arbiter-gate drops over all queries; Unrouted
	// counts events no query subscribed to; EdgeQuarantined counts
	// pre-routing quarantines (also included in Quarantined).
	ImposedDrops    uint64 `json:"imposed_drops"`
	Unrouted        uint64 `json:"unrouted"`
	EdgeQuarantined uint64 `json:"edge_quarantined"`
}

// Snapshot captures per-query snapshots plus registry aggregates. Safe
// from any goroutine; cost is proportional to total shard count.
func (g *Registry) Snapshot() Snapshot {
	var s Snapshot
	s.Tenants = g.Tenants()
	s.Arbiter = g.arb.snapshot()
	first := true
	for _, in := range g.instances() {
		rs := in.rt.Snapshot()
		st := InstanceStatus{
			Spec:         in.spec,
			Fingerprint:  fmt.Sprintf("%016x", in.fp),
			Ready:        in.ready.Load(),
			Types:        in.types,
			ImposedDrops: in.imposedDrops.Load(),
			FloorSkips:   in.floorSkips.Load(),
			Runtime:      rs,
		}
		if pm := in.gate.Probs(); len(pm) > 0 {
			st.Imposed = make(map[string]float64, len(pm))
			for typ, p := range pm {
				st.Imposed[typ] = p
			}
		}
		s.Queries = append(s.Queries, st)
		s.EventsIn += rs.EventsIn
		s.EventsShed += rs.EventsShed
		s.EventsProcessed += rs.EventsProcessed
		s.Overflow += rs.Overflow
		s.Matches += rs.Matches
		s.LivePMs += rs.LivePMs
		s.Snapshots += rs.Snapshots
		s.WALReplayed += rs.WALReplayed
		s.ColdStarts += rs.ColdStarts
		s.Restarts += rs.Restarts
		s.Quarantined += rs.Quarantined
		s.AdmissionRejected += rs.AdmissionRejected
		s.FailedShards += rs.FailedShards
		s.WALErrors += rs.WALErrors
		s.Recovering = s.Recovering || rs.Recovering
		s.ImposedDrops += st.ImposedDrops
		if in.ready.Load() && !in.spec.Paused {
			lvl := rs.DegradationLevel
			if first || lvl > s.MaxDegradation {
				s.MaxDegradation = lvl
			}
			if first || lvl < s.MinDegradation {
				s.MinDegradation = lvl
			}
			first = false
		}
	}
	g.edgeMu.Lock()
	s.EdgeQuarantined = g.edgeTotal
	g.edgeMu.Unlock()
	s.Quarantined += s.EdgeQuarantined
	s.Unrouted = g.unrouted.Load()
	return s
}

// Close stops the arbiter and drains every query gracefully (final
// snapshots included when durable). Idempotent.
func (g *Registry) Close() {
	g.shutdown(func(in *Instance) { in.rt.Close() })
}

// Kill simulates a whole-process crash for tests: every query's
// runtime is killed (buffered WAL tails abandoned, no final
// snapshots), leaving exactly the on-disk state a SIGKILL would.
func (g *Registry) Kill() {
	g.shutdown(func(in *Instance) { in.rt.Kill() })
}

func (g *Registry) shutdown(stop func(*Instance)) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	insts := make([]*Instance, 0, len(g.insts))
	for _, in := range g.insts {
		insts = append(insts, in)
	}
	g.route.Store(&routeTable{byType: map[string][]routeRef{}})
	g.mu.Unlock()
	g.arb.stopLoop()
	var wg sync.WaitGroup
	for _, in := range insts {
		wg.Add(1)
		go func(in *Instance) {
			defer wg.Done()
			stop(in)
		}(in)
	}
	wg.Wait()
}
