package registry

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"cepshed/internal/knapsack"
)

// The cross-query shedding arbiter. Each query's own degradation
// ladder and ρI/ρS strategies keep that query inside its latency bound
// — but they are blind to neighbors: a pathological Kleene query that
// saturates the process drives every co-located query's queues up, and
// each victim then sheds ITS OWN input to survive load it did not
// cause. The arbiter closes that gap with a global control loop:
//
//  1. Measure. Every tick it polls each query's runtime.LoadStats and
//     turns the busy-time delta into a utilization (CPU-seconds per
//     wall-second this query actually cost), EWMA-smoothed. Unlike the
//     latency EWMA — which includes queue wait and explodes under
//     overload — busy time is a true unit cost, usable as a knapsack
//     weight.
//
//  2. Entitle. When total utilization exceeds the capacity target, a
//     priority-weighted water-filling pass computes each tenant's fair
//     share: capacity is divided in proportion to tenant priority, and
//     slack from tenants using less than their entitlement is
//     redistributed to the rest. Tenants at or under their share are
//     never touched — that is the isolation guarantee: the overloading
//     tenant degrades itself, not its neighbors.
//
//  3. Select. Within each over-share tenant, the excess utilization
//     must be shed at minimum utility loss. This is the paper's
//     minimal-cost shedding-set problem lifted one level up: items are
//     (query, event type) classes — weight = the utilization that
//     class is responsible for, value = what shedding it forfeits
//     (query priority × the class's match-participation rate) — and
//     knapsack.MinCover picks the cheapest set covering the excess.
//
//  4. Impose. Selected classes get a fractional drop probability
//     (excess / selected weight, capped), clamped by the tenant's
//     ShedBudget, published as an immutable per-query gate table that
//     the fan-out path consults with one atomic load. When the
//     pressure clears, gates decay geometrically to zero instead of
//     snapping off, so the system does not oscillate between "shed
//     everything" and "admit everything" at the capacity boundary.
type ArbiterConfig struct {
	// Interval is the control period (default 250ms).
	Interval time.Duration
	// Capacity is the utilization target in CPU-seconds per second
	// (default 0.8 × GOMAXPROCS). Total measured busy time above this
	// triggers arbitration; the 20% headroom leaves room for the
	// decoder, the supervisors, and the GC.
	Capacity float64
	// Solver picks the shedding set (default greedy: the arbiter runs
	// on the control path every tick, and the DP's pseudo-polynomial
	// cost buys little on a handful of classes).
	Solver knapsack.Solver
	// MaxDrop caps any single class's imposed drop probability (default
	// 0.95): even a fully-shed class keeps a trickle flowing so its
	// cost and utility estimates stay live and release can be detected.
	MaxDrop float64
	// Smooth is the EWMA weight for utilization samples (default 0.5,
	// the paper's adaptation weight).
	Smooth float64
	// Disabled turns the arbiter off: per-query ladders still run,
	// cross-query isolation does not.
	Disabled bool
}

func (c ArbiterConfig) withDefaults() ArbiterConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 0.8 * float64(runtime.GOMAXPROCS(0))
	}
	if c.MaxDrop <= 0 || c.MaxDrop > 1 {
		c.MaxDrop = 0.95
	}
	if c.Smooth <= 0 || c.Smooth > 1 {
		c.Smooth = 0.5
	}
	return c
}

// gateDecay halves surviving drop probabilities each non-overloaded
// tick; gateFloor clears them entirely once negligible.
const (
	gateDecay = 0.5
	gateFloor = 0.02
)

// arbScratch is per-instance state owned exclusively by the arbiter
// goroutine between ticks.
type arbScratch struct {
	lastBusyNs  int64
	lastOffered map[string]uint64
	util        float64 // EWMA-smoothed utilization
	seeded      bool
}

// TenantLoad is one tenant's slice of an arbiter snapshot.
type TenantLoad struct {
	Tenant string `json:"tenant"`
	// Utilization is the tenant's smoothed CPU-seconds/second;
	// Share its current fair-share entitlement.
	Utilization float64 `json:"utilization"`
	Share       float64 `json:"share"`
	// ImposedDrop is the largest drop probability currently imposed on
	// any of the tenant's classes (0: untouched).
	ImposedDrop float64 `json:"imposed_drop"`
	// BudgetCapped reports that fairness asked for more shedding than
	// the tenant's ShedBudget allows — the tenant is trading latency
	// for fidelity.
	BudgetCapped bool `json:"budget_capped,omitempty"`
}

// ArbiterSnapshot is the arbiter's observable state for /stats.
type ArbiterSnapshot struct {
	Enabled     bool         `json:"enabled"`
	Capacity    float64      `json:"capacity"`
	Utilization float64      `json:"utilization"`
	Overloaded  bool         `json:"overloaded"`
	Ticks       uint64       `json:"ticks"`
	Tenants     []TenantLoad `json:"tenants,omitempty"`
}

type arbiter struct {
	g   *Registry
	cfg ArbiterConfig

	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	snap ArbiterSnapshot
}

func newArbiter(g *Registry, cfg ArbiterConfig) *arbiter {
	a := &arbiter{
		g:    g,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	a.snap.Enabled = !a.cfg.Disabled
	a.snap.Capacity = a.cfg.Capacity
	if a.cfg.Disabled {
		close(a.done)
		return a
	}
	go a.loop()
	return a
}

func (a *arbiter) stopLoop() {
	if a.cfg.Disabled {
		return
	}
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

func (a *arbiter) snapshot() ArbiterSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.snap
	s.Tenants = append([]TenantLoad(nil), a.snap.Tenants...)
	return s
}

func (a *arbiter) loop() {
	defer close(a.done)
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-a.stop:
			return
		case now := <-tick.C:
			wall := now.Sub(last)
			last = now
			if wall > 0 {
				a.tick(wall)
			}
		}
	}
}

// classItem is one (query, event type) shedding candidate.
type classItem struct {
	inst *Instance
	typ  string
	util float64 // utilization attributed to this class
}

// tick runs one control period; wall is the elapsed time since the
// previous tick.
func (a *arbiter) tick(wall time.Duration) {
	insts := a.g.instances()
	tenants := map[string]*TenantLoad{}
	specs := map[string]Tenant{}
	byTenant := map[string][]*Instance{}
	var total float64
	for _, in := range insts {
		if !in.ready.Load() {
			continue
		}
		st := in.rt.LoadStats()
		sc := &in.arb
		busyDelta := st.BusyNs - sc.lastBusyNs
		sc.lastBusyNs = st.BusyNs
		sample := float64(busyDelta) / float64(wall.Nanoseconds())
		if sample < 0 {
			sample = 0
		}
		if !sc.seeded {
			sc.util = sample
			sc.seeded = true
		} else {
			sc.util = a.cfg.Smooth*sample + (1-a.cfg.Smooth)*sc.util
		}
		total += sc.util
		t := in.spec.Tenant
		if _, ok := tenants[t]; !ok {
			tenants[t] = &TenantLoad{Tenant: t}
			specs[t] = a.g.tenant(t)
		}
		tenants[t].Utilization += sc.util
		byTenant[t] = append(byTenant[t], in)
	}

	overloaded := total > a.cfg.Capacity && len(tenants) > 0
	if overloaded {
		a.entitle(tenants, specs)
		for name, tl := range tenants {
			excess := tl.Utilization - tl.Share
			if excess <= 1e-9 {
				// At or under entitlement: isolation means this tenant's
				// gates only ever decay.
				a.relax(byTenant[name], tl)
				continue
			}
			a.impose(byTenant[name], tl, specs[name], excess)
		}
	} else {
		for name := range tenants {
			a.relax(byTenant[name], tenants[name])
		}
	}

	loads := make([]TenantLoad, 0, len(tenants))
	for _, tl := range tenants {
		loads = append(loads, *tl)
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].Tenant < loads[j].Tenant })
	a.mu.Lock()
	a.snap.Utilization = total
	a.snap.Overloaded = overloaded
	a.snap.Ticks++
	a.snap.Tenants = loads
	a.mu.Unlock()
}

// entitle computes priority-weighted fair shares by water-filling:
// every tenant is entitled to capacity × (priority / Σ priorities);
// tenants demanding less than their entitlement keep their demand, and
// their slack is redistributed among the still-unsatisfied tenants
// until shares stabilize. Work-conserving: Σ shares = min(capacity,
// Σ demands).
func (a *arbiter) entitle(tenants map[string]*TenantLoad, specs map[string]Tenant) {
	remaining := a.cfg.Capacity
	unsat := make([]string, 0, len(tenants))
	for name := range tenants {
		unsat = append(unsat, name)
	}
	sort.Strings(unsat) // deterministic iteration
	for len(unsat) > 0 {
		var prioSum float64
		for _, name := range unsat {
			prioSum += specs[name].Priority
		}
		if prioSum <= 0 {
			break
		}
		satisfied := false
		next := unsat[:0]
		for _, name := range unsat {
			ent := remaining * specs[name].Priority / prioSum
			if tenants[name].Utilization <= ent+1e-12 {
				// Under entitlement: give the tenant its demand, free the
				// rest for redistribution.
				tenants[name].Share = tenants[name].Utilization
				remaining -= tenants[name].Utilization
				satisfied = true
			} else {
				next = append(next, name)
			}
		}
		unsat = next
		if !satisfied {
			// No one newly satisfied: split what's left by priority.
			for _, name := range unsat {
				tenants[name].Share = remaining * specs[name].Priority / prioSum
			}
			break
		}
	}
}

// impose selects the tenant's cheapest shedding set and publishes drop
// gates on the selected classes.
func (a *arbiter) impose(insts []*Instance, tl *TenantLoad, spec Tenant, excess float64) {
	// ShedBudget caps the utilization fraction the arbiter may remove.
	if budget := spec.ShedBudget * tl.Utilization; excess > budget {
		excess = budget
		tl.BudgetCapped = true
	}
	if excess <= 0 {
		a.relax(insts, tl)
		return
	}

	// Build the class items: each query's utilization is split across
	// its event types by offered-event share (uniform when the window
	// saw no events), weighted so Σ class weights = tenant utilization.
	// Item IDs index the classes slice (knapsack IDs are ints).
	var items []knapsack.Item
	var classes []classItem
	for _, in := range insts {
		sc := &in.arb
		if sc.lastOffered == nil {
			sc.lastOffered = map[string]uint64{}
		}
		deltas := map[string]uint64{}
		var deltaSum uint64
		for _, typ := range in.types {
			cur := in.typeStats[typ].offered.Load()
			d := cur - sc.lastOffered[typ]
			sc.lastOffered[typ] = cur
			deltas[typ] = d
			deltaSum += d
		}
		prio := in.spec.Priority
		if prio <= 0 {
			prio = spec.Priority
		}
		for _, typ := range in.types {
			ts := in.typeStats[typ]
			share := 1 / float64(len(in.types))
			if deltaSum > 0 {
				share = float64(deltas[typ]) / float64(deltaSum)
			}
			w := sc.util * share
			if w <= 0 {
				continue
			}
			// Utility: the class's match-participation rate — how often an
			// offered event of this type ended up inside an emitted match.
			// +1 smoothing keeps unobserved classes from looking free.
			hitRate := float64(ts.hits.Load()+1) / float64(ts.offered.Load()+1)
			items = append(items, knapsack.Item{
				ID:     len(classes),
				Value:  prio * hitRate * share,
				Weight: w,
			})
			classes = append(classes, classItem{inst: in, typ: typ, util: w})
		}
	}
	if len(items) == 0 {
		a.relax(insts, tl)
		return
	}

	shedIDs := knapsack.MinCover(items, excess, a.cfg.Solver)
	var selWeight float64
	selected := make(map[int]bool, len(shedIDs))
	for _, id := range shedIDs {
		selected[id] = true
		selWeight += classes[id].util
	}
	p := 1.0
	if selWeight > excess && selWeight > 0 {
		p = excess / selWeight
	}
	p = math.Min(p, a.cfg.MaxDrop)

	// Publish one immutable gate table per query: selected classes get
	// p, unselected classes decay their previous imposition.
	for _, in := range insts {
		gates := map[string]float64{}
		for typ, prev := range in.gate.Probs() {
			if next := prev * gateDecay; next >= gateFloor {
				gates[typ] = next
			}
		}
		for id, ci := range classes {
			if ci.inst == in && selected[id] {
				gates[ci.typ] = p
			}
		}
		a.publish(in, gates, tl)
	}
}

// relax decays a tenant's gates toward zero and reports the residual.
func (a *arbiter) relax(insts []*Instance, tl *TenantLoad) {
	for _, in := range insts {
		old := in.gate.Probs()
		if old == nil {
			continue
		}
		gates := map[string]float64{}
		for typ, prev := range old {
			if next := prev * gateDecay; next >= gateFloor {
				gates[typ] = next
			}
		}
		a.publish(in, gates, tl)
	}
}

// publish stores the gate table (empty clears back to the zero-cost
// fast path) and folds its maximum into the tenant's snapshot line.
func (a *arbiter) publish(in *Instance, gates map[string]float64, tl *TenantLoad) {
	for _, p := range gates {
		if p > tl.ImposedDrop {
			tl.ImposedDrop = p
		}
	}
	in.gate.Set(gates)
}
