package registry

import (
	"fmt"

	"cepshed/internal/event"
)

// Placement hooks: the cluster router owns the decision of WHERE an
// (event, query) pair runs, so it needs the registry to expose the
// routing inputs (which queries subscribe to a type, which shard slot
// an event hashes to) and a direct per-slot offer that still applies
// the per-query accounting the normal fan-out path would (type stats,
// recovery floor, arbiter gate). Everything here stays lock-free on
// the hot path: route-table loads and atomics only.

// RouteEach calls visit for every active (ready, unpaused) instance
// subscribed to the event's type and returns the number visited. A
// zero return means the event is unrouted; the caller decides whether
// to count it (see NoteUnrouted) — the cluster ingest tier counts an
// event unrouted only on the node that owns none of its pairs.
func (g *Registry) RouteEach(e *event.Event, visit func(in *Instance)) int {
	refs := g.route.Load().byType[e.Type]
	for _, ref := range refs {
		visit(ref.inst)
	}
	return len(refs)
}

// NoteUnrouted adds n to the registry's unrouted-event counter on
// behalf of an external router that bypassed OfferBatch.
func (g *Registry) NoteUnrouted(n int) { g.unrouted.Add(uint64(n)) }

// ActiveInstances returns the current route table's active (ready,
// unpaused) instances, sorted by id. The slice is shared with the
// immutable table — callers must not mutate it.
func (g *Registry) ActiveInstances() []*Instance { return g.route.Load().insts }

// ShardSlot returns the shard slot the instance's runtime would route
// the event to. The result is authoritative: offering the same event
// through OfferSlot with this slot reproduces exactly what the
// runtime's own hash (or round-robin fallback) would have done,
// without advancing the fallback cursor twice.
func (in *Instance) ShardSlot(e *event.Event) int { return in.rt.ShardIndexFor(e) }

// NumSlots returns the instance's shard count — the size of the
// placement space the cluster distributes across nodes.
func (in *Instance) NumSlots() int { return in.rt.NumShards() }

// OfferSlot offers a batch to one specific shard slot, applying the
// same per-(event, query) accounting as Registry.OfferBatch: type
// stats, the recovery sequence floor, and the arbiter's imposed gate.
// Events must already be stamped (seq assigned by this node — the slot
// owner stamps, forwarded events arrive unstamped). The events slice
// is filtered in place; callers must own it.
func (in *Instance) OfferSlot(slot int, events []*event.Event) OfferResult {
	var res OfferResult
	res.Events = len(events)
	kept := events[:0]
	for _, e := range events {
		if ts := in.typeStats[e.Type]; ts != nil {
			ts.offered.Add(1)
		}
		if in.hasFloor.Load() && e.Seq < in.floor.Load() {
			in.floorSkips.Add(1)
			res.FloorSkipped++
			continue
		}
		if in.gate.ShouldDrop(e.Type) {
			in.imposedDrops.Add(1)
			res.ArbiterShed++
			continue
		}
		kept = append(kept, e)
	}
	if len(kept) > 0 {
		n := in.rt.OfferBatchToShard(slot, kept)
		res.Deliveries += n
		res.DoorRejected += len(kept) - n
	}
	return res
}

// StateDirName returns the per-query state subdirectory name
// ("q-<fingerprint>"). Fingerprints depend only on the spec, so every
// node that registered the same query uses the same name — a failover
// survivor locates a dead peer's shard files under the peer's state
// root with this, and writes the ceded tombstone back into it.
func (in *Instance) StateDirName() string { return fmt.Sprintf("q-%016x", in.fp) }
