package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openManifestFixture builds a registry with two queries in dir and
// closes it, leaving a current manifest plus the rotated previous
// generation (two saves happen: one per Add).
func openManifestFixture(t *testing.T, dir string) {
	t.Helper()
	g, err := Open(Config{StateDir: dir, Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	mustAdd(t, g, QuerySpec{Tenant: "t2", Name: "xy", Query: qxyText})
	g.Close()
}

// A truncated current manifest (crash mid-write would be caught by the
// tmp+rename protocol, but disk corruption can still hand us partial
// JSON) must fall back to the previous generation, not lose the
// membership.
func TestPartialManifestFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	openManifestFixture(t, dir)
	path := filepath.Join(dir, "registry.json")

	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, cur[:len(cur)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	g, err := Open(Config{StateDir: dir, Arbiter: ArbiterConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.WaitRecovered()
	// The .prev generation only has the first query — the second Add's
	// save rotated gen 1 (one query) to .prev. Membership must come from
	// there: at least one query, no failure.
	snap := g.Snapshot()
	if len(snap.Queries) != 1 {
		t.Fatalf("restored %d queries from .prev, want 1", len(snap.Queries))
	}
	if _, ok := g.Get("t1", "abc"); !ok {
		t.Fatal("query from the previous manifest generation not restored")
	}
}

// When every manifest generation is garbage, Open must still succeed —
// a cluster node that refuses to boot over one bad file takes down its
// share of every query — and the bad manifest must be preserved as
// .corrupt for the operator rather than silently overwritten.
func TestCorruptManifestStartsEmptyAndPreserved(t *testing.T) {
	dir := t.TempDir()
	openManifestFixture(t, dir)
	path := filepath.Join(dir, "registry.json")
	for _, p := range []string{path, path + ".prev"} {
		if err := os.WriteFile(p, []byte("{ not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var logged strings.Builder
	g, err := Open(Config{
		StateDir: dir,
		Arbiter:  ArbiterConfig{Disabled: true},
		Logf:     func(f string, a ...any) { logged.WriteString(f + "\n") },
	})
	if err != nil {
		t.Fatalf("Open failed on a corrupt manifest: %v", err)
	}
	defer g.Close()
	if n := len(g.Snapshot().Queries); n != 0 {
		t.Fatalf("corrupt manifest restored %d queries, want 0", n)
	}
	if !strings.Contains(logged.String(), "manifest unreadable") {
		t.Errorf("corrupt manifest not logged; log was:\n%s", logged.String())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt manifest not preserved as .corrupt: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt manifest still at the live path (err=%v)", err)
	}

	// The node must be able to rebuild membership and persist it again.
	mustAdd(t, g, QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
	if _, err := os.Stat(path); err != nil {
		t.Errorf("manifest not re-persisted after re-add: %v", err)
	}
}
