package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// NetChaos is an http.RoundTripper wrapper that injects network faults
// per destination host: full blocks (partitions), transient errors,
// latency, and the nastiest one — drop-after-send, where the request
// IS delivered but the response is discarded, so the caller cannot
// tell delivery from loss. Wrapping each node's HTTP client with its
// own NetChaos makes asymmetric partitions trivial: block A→B without
// touching B→A.
//
// Faults are keyed by req.URL.Host and driven by explicit per-link
// request counters plus a seeded RNG, never the wall clock, so a chaos
// run replays identically. Safe for concurrent use.
type NetChaos struct {
	next http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]*linkFaults

	// Injection counters, for test assertions.
	blockedCount atomic.Uint64
	erroredCount atomic.Uint64
	droppedCount atomic.Uint64
}

type linkFaults struct {
	blocked  bool          // partition: fail before the request is sent
	errNext  int           // fail the next N requests before sending
	dropNext int           // deliver the next N requests, discard responses
	failP    float64       // probabilistic pre-send failure
	latency  time.Duration // added before every request
	// flapUp/flapDown, when set, cycle the link by request count:
	// flapUp requests pass, then flapDown requests are blocked.
	flapUp, flapDown int
	reqs             int // per-link request counter driving the flap cycle
}

// ErrInjected marks every failure NetChaos fabricates, so tests can
// tell an injected fault from a real transport error.
var ErrInjected = errors.New("fault: injected network error")

// NewNetChaos wraps next (nil: http.DefaultTransport) with a
// fault-free injector; arm faults with the setters. The seed drives
// probabilistic failures only — counted faults need no randomness.
func NewNetChaos(seed int64, next http.RoundTripper) *NetChaos {
	if next == nil {
		next = http.DefaultTransport
	}
	return &NetChaos{
		next:  next,
		rng:   rand.New(rand.NewSource(seed)),
		links: map[string]*linkFaults{},
	}
}

func (c *NetChaos) link(host string) *linkFaults {
	lf := c.links[host]
	if lf == nil {
		lf = &linkFaults{}
		c.links[host] = lf
	}
	return lf
}

// Block partitions this side's link to each host: every request fails
// before it is sent, like a dropped route.
func (c *NetChaos) Block(hosts ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range hosts {
		c.link(h).blocked = true
	}
}

// Unblock heals the link to each host.
func (c *NetChaos) Unblock(hosts ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range hosts {
		c.link(h).blocked = false
	}
}

// FailNext makes the next n requests to host fail before sending —
// a transient network error the caller should retry.
func (c *NetChaos) FailNext(host string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.link(host).errNext = n
}

// DropAfterSend delivers the next n requests to host but discards
// their responses and reports an error — the ambiguous fault: the
// receiver processed the request, the sender cannot know. A retry
// without idempotence double-delivers; this is the fault the batch-ID
// dedup exists for.
func (c *NetChaos) DropAfterSend(host string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.link(host).dropNext = n
}

// SetLatency adds a fixed delay before every request to host.
func (c *NetChaos) SetLatency(host string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.link(host).latency = d
}

// SetFailP fails each request to host with probability p (seeded).
func (c *NetChaos) SetFailP(host string, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.link(host).failP = p
}

// Flap cycles the link to host deterministically by request count:
// `up` requests pass, then `down` requests are blocked, repeating.
// up+down <= 0 clears the flap schedule.
func (c *NetChaos) Flap(host string, up, down int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lf := c.link(host)
	if up <= 0 && down <= 0 {
		lf.flapUp, lf.flapDown = 0, 0
		return
	}
	lf.flapUp, lf.flapDown, lf.reqs = up, down, 0
}

// Heal clears every fault on every link.
func (c *NetChaos) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links = map[string]*linkFaults{}
}

// Counts reports how many requests were blocked/errored pre-send and
// how many were delivered with the response dropped.
func (c *NetChaos) Counts() (blocked, errored, dropped uint64) {
	return c.blockedCount.Load(), c.erroredCount.Load(), c.droppedCount.Load()
}

// RoundTrip applies the destination link's faults, then delegates.
func (c *NetChaos) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	lf := c.links[req.URL.Host]
	var (
		latency time.Duration
		verdict int // 0 pass, 1 blocked, 2 errored, 3 drop-after-send
	)
	if lf != nil {
		lf.reqs++
		latency = lf.latency
		switch {
		case lf.blocked:
			verdict = 1
		case lf.flapUp+lf.flapDown > 0 && (lf.reqs-1)%(lf.flapUp+lf.flapDown) >= lf.flapUp:
			verdict = 1
		case lf.errNext > 0:
			lf.errNext--
			verdict = 2
		case lf.failP > 0 && c.rng.Float64() < lf.failP:
			verdict = 2
		case lf.dropNext > 0:
			lf.dropNext--
			verdict = 3
		}
	}
	c.mu.Unlock()

	if latency > 0 {
		time.Sleep(latency)
	}
	switch verdict {
	case 1:
		c.blockedCount.Add(1)
		closeReqBody(req)
		return nil, fmt.Errorf("%w: %s unreachable (partition)", ErrInjected, req.URL.Host)
	case 2:
		c.erroredCount.Add(1)
		closeReqBody(req)
		return nil, fmt.Errorf("%w: connection to %s reset", ErrInjected, req.URL.Host)
	case 3:
		resp, err := c.next.RoundTrip(req)
		c.droppedCount.Add(1)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		return nil, fmt.Errorf("%w: response from %s dropped after send", ErrInjected, req.URL.Host)
	}
	return c.next.RoundTrip(req)
}

func closeReqBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}
