package fault

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"cepshed/internal/event"
)

func TestPanicIf(t *testing.T) {
	h := PanicIf(func(shard int, e *event.Event) bool { return e.Type == "POISON" }, "boom")
	h(0, event.New("A", 1, nil)) // must not panic
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recover() = %v, want boom", p)
		}
	}()
	h(0, event.New("POISON", 2, nil))
	t.Fatal("unreachable")
}

func TestPanicEveryLimit(t *testing.T) {
	h := PanicEvery(2, 1, "bang")
	fired := 0
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			h(0, nil)
		}()
	}
	if fired != 1 {
		t.Fatalf("fired %d panics, want exactly 1 (limit)", fired)
	}
}

func TestSwitchable(t *testing.T) {
	s := NewSwitchable(PanicIf(func(int, *event.Event) bool { return true }, "on"))
	s.Set(false)
	s.Hook(0, nil) // disabled: must not panic
	s.Set(true)
	defer func() {
		if recover() == nil {
			t.Fatal("enabled switchable did not fire")
		}
	}()
	s.Hook(0, nil)
}

func TestChainAndDelay(t *testing.T) {
	var order []string
	h := Chain(
		func(int, *event.Event) { order = append(order, "a") },
		Delay(time.Millisecond, nil),
		func(int, *event.Event) { order = append(order, "b") },
	)
	start := time.Now()
	h(0, nil)
	if d := time.Since(start); d < time.Millisecond {
		t.Errorf("chain took %s, want >= 1ms (delay hook skipped?)", d)
	}
	if strings.Join(order, "") != "ab" {
		t.Errorf("hook order = %v", order)
	}
}

// The corrupter must be deterministic for a fixed seed (chaos tests
// must replay) and must actually corrupt at rate ~P.
func TestCorrupterDeterministicAndEffective(t *testing.T) {
	line := []byte(`{"type":"A","time":1,"attrs":{"ID":5}}`)
	a, b := NewCorrupter(0.5, 42), NewCorrupter(0.5, 42)
	changed := 0
	for i := 0; i < 1000; i++ {
		ma, mb := a.Mangle(line), b.Mangle(line)
		if !bytes.Equal(ma, mb) {
			t.Fatalf("iteration %d: same seed diverged: %q vs %q", i, ma, mb)
		}
		if !bytes.Equal(ma, line) {
			changed++
		}
	}
	if changed < 300 || changed > 700 {
		t.Errorf("corrupted %d/1000 lines with P=0.5", changed)
	}
	if !bytes.Equal(line, []byte(`{"type":"A","time":1,"attrs":{"ID":5}}`)) {
		t.Error("Mangle modified its input in place")
	}
}

func TestStallReader(t *testing.T) {
	sr := NewStallReader(strings.NewReader("hello world"), 5)
	got, err := io.ReadAll(io.LimitReader(sr, 5))
	if err != nil || string(got) != "hello" {
		t.Fatalf("prefix read = %q, %v", got, err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sr.Read(make([]byte, 1))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("read past budget returned (%v) instead of stalling", err)
	case <-time.After(20 * time.Millisecond):
	}
	sr.Release()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("released read error = %v, want EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Release did not unblock the stalled read")
	}
}
