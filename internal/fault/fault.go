// Package fault provides deterministic, seeded fault injectors for
// chaos-testing the streaming runtime. The paper treats load shedding as
// controlled degradation under overload; this package supplies the
// complementary stressors — crashes, slowdowns, corrupt input, stalled
// consumers — so tests can assert that degradation stays controlled when
// things break, not just when things queue.
//
// Injectors are deliberately boring: every one is driven by an explicit
// seed or an explicit count, never by the global RNG or the wall clock,
// so a chaos test that fails replays identically. All injectors are safe
// for concurrent use from multiple shard goroutines.
package fault

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/event"
)

// Hook is the runtime's fault-injection point: it runs on the shard
// goroutine immediately before an admitted event is handed to the
// engine. A hook may panic (simulating an engine bug on a poison event)
// or sleep (simulating a slow event). The shard index is the *executing*
// shard, so a hook keyed on it stops firing after the supervisor fails
// that shard over — which is exactly how failover tests verify rerouting.
type Hook func(shard int, e *event.Event)

// Chain composes hooks; they run in order.
func Chain(hooks ...Hook) Hook {
	return func(shard int, e *event.Event) {
		for _, h := range hooks {
			h(shard, e)
		}
	}
}

// PanicIf panics with value msg whenever pred matches. The runtime
// quarantines the event it was processing, so a predicate on an
// attribute models a poison-pill event and a predicate on the shard
// index models a sick replica.
func PanicIf(pred func(shard int, e *event.Event) bool, msg string) Hook {
	return func(shard int, e *event.Event) {
		if pred(shard, e) {
			panic(msg)
		}
	}
}

// PanicEvery panics on every nth call, at most limit times (limit <= 0:
// unlimited). The counter is global across shards.
func PanicEvery(n int, limit int, msg string) Hook {
	if n < 1 {
		n = 1
	}
	var calls, fired atomic.Int64
	return func(int, *event.Event) {
		if limit > 0 && fired.Load() >= int64(limit) {
			return
		}
		if calls.Add(1)%int64(n) == 0 {
			fired.Add(1)
			panic(msg)
		}
	}
}

// FailStageOnce returns a checkpoint OnStage hook that panics the nth
// time (1-based) the named snapshot stage is reached, then never again —
// the "crash in the middle of writing a snapshot" fault. Paired with the
// stage names in internal/checkpoint (encoded, tmp-written, renamed,
// rotated), it lets a chaos test kill a shard at an exact point of the
// temp-write-rename protocol and assert recovery falls back to the
// previous good generation.
func FailStageOnce(stage string, nth int) func(shard int, stage string) {
	if nth < 1 {
		nth = 1
	}
	var seen atomic.Int64
	var fired atomic.Bool
	return func(_ int, st string) {
		if st != stage || fired.Load() {
			return
		}
		if seen.Add(1) == int64(nth) && fired.CompareAndSwap(false, true) {
			panic("fault: injected crash at snapshot stage " + stage)
		}
	}
}

// Delay sleeps d before every event matched by pred (nil pred: all
// events) — the "expensive event" fault that pushes wall-clock latency
// over the bound and exercises the degradation ladder.
func Delay(d time.Duration, pred func(shard int, e *event.Event) bool) Hook {
	return func(shard int, e *event.Event) {
		if pred == nil || pred(shard, e) {
			time.Sleep(d)
		}
	}
}

// Switchable gates an inner hook behind an atomic flag so a test can
// clear the fault mid-run ("the incident ends") and assert recovery.
type Switchable struct {
	inner Hook
	on    atomic.Bool
}

// NewSwitchable wraps hook, initially enabled.
func NewSwitchable(hook Hook) *Switchable {
	s := &Switchable{inner: hook}
	s.on.Store(true)
	return s
}

// Set enables or disables the wrapped hook.
func (s *Switchable) Set(on bool) { s.on.Store(on) }

// Hook is the pluggable function.
func (s *Switchable) Hook(shard int, e *event.Event) {
	if s.on.Load() {
		s.inner(shard, e)
	}
}

// Corrupter deterministically mangles NDJSON lines to model a buggy or
// malicious producer: truncation, byte flips, injected garbage, and
// not-quite-JSON literals (NaN, bare words). With probability 1-P the
// line passes through untouched.
type Corrupter struct {
	// P is the corruption probability per line.
	P float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCorrupter builds a corrupter with the given per-line probability
// and seed.
func NewCorrupter(p float64, seed int64) *Corrupter {
	return &Corrupter{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Mangle returns the line, possibly corrupted. The input is never
// modified in place.
func (c *Corrupter) Mangle(line []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.P {
		return line
	}
	out := append([]byte(nil), line...)
	switch c.rng.Intn(4) {
	case 0: // truncate mid-line
		if len(out) > 1 {
			out = out[:1+c.rng.Intn(len(out)-1)]
		}
	case 1: // flip a byte
		if len(out) > 0 {
			out[c.rng.Intn(len(out))] ^= 0x55
		}
	case 2: // splice in an invalid JSON literal
		out = append(out[:len(out)/2], append([]byte(`NaN`), out[len(out)/2:]...)...)
	default: // replace with garbage
		out = []byte(`{"type":`)
	}
	return out
}

// StallReader models a stalled producer: it serves the underlying reader
// for the first n bytes, then blocks every Read until Release (or
// forever). Wrap a TCP test connection with it — or just stop writing on
// a real one — to verify the server's read deadlines fire.
type StallReader struct {
	r       io.Reader
	left    int
	release chan struct{}
	once    sync.Once
}

// NewStallReader stalls r after n bytes.
func NewStallReader(r io.Reader, n int) *StallReader {
	return &StallReader{r: r, left: n, release: make(chan struct{})}
}

// Read serves bytes until the budget is exhausted, then blocks.
func (s *StallReader) Read(p []byte) (int, error) {
	if s.left <= 0 {
		<-s.release
		return 0, io.EOF
	}
	if len(p) > s.left {
		p = p[:s.left]
	}
	n, err := s.r.Read(p)
	s.left -= n
	return n, err
}

// Release unblocks all pending and future reads (they return EOF).
func (s *StallReader) Release() { s.once.Do(func() { close(s.release) }) }
