package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// Every NetChaos fault mode must be observable from both sides: the
// caller sees an injected error (or not), the server sees the request
// delivered (or not). Drop-after-send is the pair that matters — the
// server got it, the caller cannot tell.
func TestNetChaosFaultModes(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	nc := NewNetChaos(1, nil)
	client := &http.Client{Transport: nc}

	get := func() error {
		resp, err := client.Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return err
	}

	// Healthy baseline.
	if err := get(); err != nil {
		t.Fatalf("healthy link: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", hits.Load())
	}

	// Partition: error, never delivered.
	nc.Block(host)
	if err := get(); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("blocked link returned %v, want ErrInjected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("blocked request reached the server (hits=%d)", hits.Load())
	}
	nc.Unblock(host)
	if err := get(); err != nil {
		t.Fatalf("after unblock: %v", err)
	}

	// Transient errors: fail exactly n, then pass.
	nc.FailNext(host, 2)
	for i := 0; i < 2; i++ {
		if err := get(); !errors.Is(err, ErrInjected) {
			t.Fatalf("FailNext request %d: %v, want ErrInjected", i, err)
		}
	}
	if err := get(); err != nil {
		t.Fatalf("after FailNext budget: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("errored requests reached the server (hits=%d, want 3)", hits.Load())
	}

	// Drop-after-send: delivered AND errored.
	before := hits.Load()
	nc.DropAfterSend(host, 1)
	if err := get(); !errors.Is(err, ErrInjected) {
		t.Fatalf("DropAfterSend: %v, want ErrInjected", err)
	}
	if hits.Load() != before+1 {
		t.Fatalf("drop-after-send must deliver: hits=%d, want %d", hits.Load(), before+1)
	}
	blocked, errored, dropped := nc.Counts()
	if blocked != 1 || errored != 2 || dropped != 1 {
		t.Fatalf("Counts() = %d/%d/%d, want 1/2/1", blocked, errored, dropped)
	}
}

// The flap schedule is driven by request count, so the same call
// sequence always sees the same up/down pattern.
func TestNetChaosFlapDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	nc := NewNetChaos(7, nil)
	nc.Flap(host, 2, 3) // 2 pass, 3 blocked, repeat
	client := &http.Client{Transport: nc}

	var got []bool
	for i := 0; i < 10; i++ {
		resp, err := client.Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		got = append(got, err == nil)
	}
	want := []bool{true, true, false, false, false, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flap cycle diverged at request %d: got %v, want %v", i, got, want)
		}
	}
	nc.Flap(host, 0, 0) // clear
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("after clearing flap: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
