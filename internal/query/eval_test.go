package query

import (
	"testing"

	"cepshed/internal/event"
)

// fakeBinding implements Binding for evaluation tests.
type fakeBinding struct {
	singles map[int]*event.Event
	kleenes map[int][]*event.Event
	current *event.Event
}

func (b *fakeBinding) Single(pos int) *event.Event   { return b.singles[pos] }
func (b *fakeBinding) Kleene(pos int) []*event.Event { return b.kleenes[pos] }
func (b *fakeBinding) Current() *event.Event         { return b.current }

func ev(typ string, attrs map[string]event.Value) *event.Event {
	return event.New(typ, 0, attrs)
}

func TestEvalQ1Predicates(t *testing.T) {
	q := Q1("8ms")
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"ID": event.Int(3), "V": event.Int(2)}),
		1: ev("B", map[string]event.Value{"ID": event.Int(3), "V": event.Int(5)}),
		2: ev("C", map[string]event.Value{"ID": event.Int(3), "V": event.Int(7)}),
	}}
	for i, p := range q.Where {
		ok, err := EvalPredicate(p, b)
		if err != nil {
			t.Fatalf("predicate %d: %v", i, err)
		}
		if !ok {
			t.Errorf("predicate %d (%s) should hold", i, p)
		}
	}
	// Break the sum condition: a.V+b.V != c.V.
	b.singles[2] = ev("C", map[string]event.Value{"ID": event.Int(3), "V": event.Int(8)})
	ok, err := EvalPredicate(q.Where[2], b)
	if err != nil || ok {
		t.Errorf("sum predicate should fail: ok=%v err=%v", ok, err)
	}
}

func TestEvalIncrementalKleene(t *testing.T) {
	q := HotPaths("1h", 1, 0)
	// Incremental predicates: a[i+1].bike=a[i].bike, a[i+1].start=a[i].end.
	var inc []*Predicate
	for _, p := range q.Where {
		if p.Kind == AnchorIncremental {
			inc = append(inc, p)
		}
	}
	prev := ev("BikeTrip", map[string]event.Value{
		"bike": event.Int(9), "start": event.Int(1), "end": event.Int(2)})
	good := ev("BikeTrip", map[string]event.Value{
		"bike": event.Int(9), "start": event.Int(2), "end": event.Int(3)})
	bad := ev("BikeTrip", map[string]event.Value{
		"bike": event.Int(9), "start": event.Int(5), "end": event.Int(6)})

	b := &fakeBinding{kleenes: map[int][]*event.Event{0: {prev}}, current: good}
	for _, p := range inc {
		if ok, err := EvalPredicate(p, b); err != nil || !ok {
			t.Errorf("chained trip should satisfy %s: ok=%v err=%v", p, ok, err)
		}
	}
	b.current = bad
	okCount := 0
	for _, p := range inc {
		if ok, _ := EvalPredicate(p, b); ok {
			okCount++
		}
	}
	if okCount != 1 { // bike matches, start/end chain does not
		t.Errorf("disconnected trip satisfied %d incremental predicates, want 1", okCount)
	}
}

func TestEvalVacuousFirstRepetition(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A+ b[], B c) WHERE b[i+1].V >= b[i].V WITHIN 1ms`)
	b := &fakeBinding{
		kleenes: map[int][]*event.Event{0: nil}, // no previous repetition
		current: ev("A", map[string]event.Value{"V": event.Int(1)}),
	}
	_, err := EvalPredicate(q.Where[0], b)
	if !IsVacuous(err) {
		t.Fatalf("expected vacuous error, got %v", err)
	}
}

func TestEvalAggregateOverKleene(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE AVG(b[].V) > a.V WITHIN 1ms`)
	b := &fakeBinding{
		singles: map[int]*event.Event{0: ev("A", map[string]event.Value{"V": event.Int(3)})},
		kleenes: map[int][]*event.Event{1: {
			ev("A", map[string]event.Value{"V": event.Int(2)}),
			ev("A", map[string]event.Value{"V": event.Int(6)}),
		}},
	}
	// AVG(2,6) = 4 > 3.
	if ok, err := EvalPredicate(q.Where[0], b); err != nil || !ok {
		t.Errorf("avg predicate: ok=%v err=%v", ok, err)
	}
}

func TestEvalAggregateFunctions(t *testing.T) {
	mk := func(fn string) *Query {
		return MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE ` + fn + ` WITHIN 1ms`)
	}
	b := &fakeBinding{
		singles: map[int]*event.Event{0: ev("A", map[string]event.Value{"V": event.Int(1)})},
		kleenes: map[int][]*event.Event{1: {
			ev("A", map[string]event.Value{"V": event.Int(2)}),
			ev("A", map[string]event.Value{"V": event.Int(4)}),
			ev("A", map[string]event.Value{"V": event.Int(9)}),
		}},
	}
	cases := []struct {
		pred string
		want bool
	}{
		{`SUM(b[].V) = 15`, true},
		{`MIN(b[].V) = 2`, true},
		{`MAX(b[].V) = 9`, true},
		{`COUNT(b[].V) = 3`, true},
		{`AVG(b[].V) = 5`, true},
		{`SUM(b[].V) = 14`, false},
	}
	for _, c := range cases {
		q := mk(c.pred)
		ok, err := EvalPredicate(q.Where[0], b)
		if err != nil {
			t.Fatalf("%s: %v", c.pred, err)
		}
		if ok != c.want {
			t.Errorf("%s = %v, want %v", c.pred, ok, c.want)
		}
	}
}

func TestEvalQ3Aggregate(t *testing.T) {
	q := Q3("8ms")
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"ID": event.Int(1), "x": event.Float(3), "y": event.Float(4)}),
		1: ev("B", map[string]event.Value{"ID": event.Int(1), "x": event.Float(6), "y": event.Float(8), "v": event.Float(5)}),
		2: ev("C", map[string]event.Value{"ID": event.Int(1), "v": event.Float(5)}),
		3: ev("D", map[string]event.Value{"ID": event.Int(1), "v": event.Float(5)}),
	}}
	// AVG(5, 10) = 7.5 > c.v = 5.
	var aggPred *Predicate
	for _, p := range q.Where {
		if _, isCall := findCall(p.Expr); isCall {
			aggPred = p
		}
	}
	if aggPred == nil {
		t.Fatal("aggregate predicate not found")
	}
	if ok, err := EvalPredicate(aggPred, b); err != nil || !ok {
		t.Errorf("Q3 aggregate: ok=%v err=%v", ok, err)
	}
}

func findCall(e Expr) (*Call, bool) {
	var c *Call
	e.walk(func(x Expr) {
		if call, ok := x.(*Call); ok && c == nil {
			c = call
		}
	})
	return c, c != nil
}

func TestEvalNegationPredicate(t *testing.T) {
	q := Q4("8ms")
	neg := q.NegationPredicates(1)[0]
	b := &fakeBinding{
		singles: map[int]*event.Event{0: ev("A", map[string]event.Value{"ID": event.Int(7)})},
		current: ev("B", map[string]event.Value{"ID": event.Int(7)}),
	}
	if ok, err := EvalPredicate(neg, b); err != nil || !ok {
		t.Errorf("matching B should satisfy negation guard: ok=%v err=%v", ok, err)
	}
	b.current = ev("B", map[string]event.Value{"ID": event.Int(8)})
	if ok, _ := EvalPredicate(neg, b); ok {
		t.Error("non-matching B must not satisfy the guard")
	}
}

func TestEvalErrors(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, B b) WHERE a.V / b.V = 1 WITHIN 1ms`)
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"V": event.Int(4)}),
		1: ev("B", map[string]event.Value{"V": event.Int(0)}),
	}}
	if _, err := EvalPredicate(q.Where[0], b); err == nil {
		t.Error("division by zero should error")
	}
	// Missing attribute.
	b.singles[1] = ev("B", nil)
	if _, err := EvalPredicate(q.Where[0], b); err == nil {
		t.Error("missing attribute should error")
	}
	// Unbound variable.
	b.singles[1] = nil
	if _, err := EvalPredicate(q.Where[0], b); err == nil {
		t.Error("unbound variable should error")
	}
	// Arithmetic on strings.
	q2 := MustParse(`PATTERN SEQ(A a) WHERE a.S + 1 = 2 WITHIN 1ms`)
	b2 := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"S": event.Str("x")}),
	}}
	if _, err := EvalPredicate(q2.Where[0], b2); err == nil {
		t.Error("string arithmetic should error")
	}
	// SQRT of a negative value.
	q3 := MustParse(`PATTERN SEQ(A a) WHERE SQRT(a.V) = 2 WITHIN 1ms`)
	b3 := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"V": event.Int(-4)}),
	}}
	if _, err := EvalPredicate(q3.Where[0], b3); err == nil {
		t.Error("sqrt of negative should error")
	}
}

func TestEvalSqrtAbsPow(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a) WHERE SQRT(a.x^2 + a.y^2) = 5 AND ABS(a.z) = 2 WITHIN 1ms`)
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{
			"x": event.Float(3), "y": event.Float(4), "z": event.Float(-2)}),
	}}
	for i, p := range q.Where {
		if ok, err := EvalPredicate(p, b); err != nil || !ok {
			t.Errorf("predicate %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestEvalUnaryMinus(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a) WHERE -a.V = -3 WITHIN 1ms`)
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"V": event.Int(3)}),
	}}
	if ok, err := EvalPredicate(q.Where[0], b); err != nil || !ok {
		t.Errorf("unary minus: ok=%v err=%v", ok, err)
	}
}

func TestEvalStringMembership(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a) WHERE a.user IN ('member', 'staff') WITHIN 1ms`)
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"user": event.Str("member")}),
	}}
	if ok, err := EvalPredicate(q.Where[0], b); err != nil || !ok {
		t.Errorf("membership: ok=%v err=%v", ok, err)
	}
	b.singles[0] = ev("A", map[string]event.Value{"user": event.Str("casual")})
	if ok, _ := EvalPredicate(q.Where[0], b); ok {
		t.Error("casual should not be a member")
	}
}
