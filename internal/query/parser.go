package query

import (
	"fmt"
	"strconv"
	"strings"

	"cepshed/internal/event"
)

// Parse parses and analyzes a query text. Syntax (case-insensitive
// keywords):
//
//	PATTERN SEQ(A a, B+ b[]{2,5}, NOT C c, D d)
//	WHERE a.ID = b[i].ID AND b[i+1].V >= b[i].V AND d.end IN (7, 8, 9)
//	WITHIN 8ms            -- or: WITHIN 1000 EVENTS
//
// Kleene bounds {min,max} are optional ({min,} leaves max unbounded).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Raw = strings.Join(strings.Fields(src), " ")
	if err := analyze(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and fixed,
// known-good query constants.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind tokenKind) bool {
	if p.cur().kind == kind {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, fmt.Errorf("query: expected %s, got %s at offset %d", what, p.cur(), p.cur().pos)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("query: expected %s, got %s at offset %d", kw, p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("PATTERN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SEQ"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		c, err := p.parseComponent()
		if err != nil {
			return nil, err
		}
		c.Pos = len(q.Pattern)
		q.Pattern = append(q.Pattern, c)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.acceptKeyword("AND") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("WITHIN"); err != nil {
		return nil, err
	}
	w, err := p.parseWindow()
	if err != nil {
		return nil, err
	}
	q.Window = w
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at offset %d: %s", p.cur().pos, p.cur())
	}
	return q, nil
}

func (p *parser) parseComponent() (Component, error) {
	var c Component
	if p.acceptKeyword("NOT") {
		c.Negated = true
	}
	typ, err := p.expect(tokIdent, "event type")
	if err != nil {
		return c, err
	}
	c.Type = typ.text
	if p.accept(tokPlus) {
		c.Kleene = true
		c.MinReps = 1
	}
	if c.Kleene && c.Negated {
		return c, fmt.Errorf("query: component %s cannot be both negated and Kleene", c.Type)
	}
	v, err := p.expect(tokIdent, "variable name")
	if err != nil {
		return c, err
	}
	c.Var = v.text
	if p.accept(tokLBrack) {
		if !c.Kleene {
			return c, fmt.Errorf("query: variable %s is not Kleene but declared with []", c.Var)
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return c, err
		}
	} else if c.Kleene {
		return c, fmt.Errorf("query: Kleene variable %s must be declared as %s[]", c.Var, c.Var)
	}
	if c.Kleene && p.accept(tokLBrace) {
		min, err := p.expect(tokNumber, "minimum repetitions")
		if err != nil {
			return c, err
		}
		c.MinReps, _ = strconv.Atoi(min.text)
		if c.MinReps < 1 {
			return c, fmt.Errorf("query: Kleene minimum must be >= 1")
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return c, err
		}
		if p.cur().kind == tokNumber {
			max := p.next()
			c.MaxReps, _ = strconv.Atoi(max.text)
			if c.MaxReps < c.MinReps {
				return c, fmt.Errorf("query: Kleene maximum %d below minimum %d", c.MaxReps, c.MinReps)
			}
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return c, err
		}
	}
	return c, nil
}

func (p *parser) parseWindow() (Window, error) {
	num, err := p.expect(tokNumber, "window size")
	if err != nil {
		return Window{}, err
	}
	n, err := strconv.ParseFloat(num.text, 64)
	if err != nil || n <= 0 {
		return Window{}, fmt.Errorf("query: invalid window size %q", num.text)
	}
	unit, err := p.expect(tokIdent, "window unit")
	if err != nil {
		return Window{}, err
	}
	switch strings.ToLower(unit.text) {
	case "events", "event":
		return Window{Count: int(n)}, nil
	case "ns":
		return Window{Duration: event.Time(n)}, nil
	case "us", "µs":
		return Window{Duration: event.Time(n * float64(event.Microsecond))}, nil
	case "ms":
		return Window{Duration: event.Time(n * float64(event.Millisecond))}, nil
	case "s", "sec":
		return Window{Duration: event.Time(n * float64(event.Second))}, nil
	case "m", "min":
		return Window{Duration: event.Time(n * 60 * float64(event.Second))}, nil
	case "h":
		return Window{Duration: event.Time(n * 3600 * float64(event.Second))}, nil
	default:
		return Window{}, fmt.Errorf("query: unknown window unit %q", unit.text)
	}
}

func (p *parser) parsePredicate() (*Predicate, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.accept(tokIn) {
		vals, err := p.parseValueSet()
		if err != nil {
			return nil, err
		}
		return &Predicate{Expr: &Member{X: left, Values: vals}}, nil
	}
	var op CmpOp
	switch p.cur().kind {
	case tokEq:
		op = CmpEq
	case tokNe:
		op = CmpNe
	case tokLt:
		op = CmpLt
	case tokLe:
		op = CmpLe
	case tokGt:
		op = CmpGt
	case tokGe:
		op = CmpGe
	default:
		return nil, fmt.Errorf("query: expected comparison operator, got %s at offset %d", p.cur(), p.cur().pos)
	}
	p.pos++
	right, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &Predicate{Expr: &Compare{Op: op, L: left, R: right}}, nil
}

func (p *parser) parseValueSet() ([]event.Value, error) {
	var closer tokenKind
	switch {
	case p.accept(tokLParen):
		closer = tokRParen
	case p.accept(tokLBrace):
		closer = tokRBrace
	default:
		return nil, fmt.Errorf("query: expected '(' or '{' after IN at offset %d", p.cur().pos)
	}
	var vals []event.Value
	for {
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if !p.accept(closer) {
		return nil, fmt.Errorf("query: unterminated value set at offset %d", p.cur().pos)
	}
	return vals, nil
}

func (p *parser) parseLiteralValue() (event.Value, error) {
	neg := p.accept(tokMinus)
	switch p.cur().kind {
	case tokNumber:
		t := p.next()
		if strings.Contains(t.text, ".") {
			f, _ := strconv.ParseFloat(t.text, 64)
			if neg {
				f = -f
			}
			return event.Float(f), nil
		}
		i, _ := strconv.ParseInt(t.text, 10, 64)
		if neg {
			i = -i
		}
		return event.Int(i), nil
	case tokString:
		if neg {
			return event.Value{}, fmt.Errorf("query: cannot negate a string at offset %d", p.cur().pos)
		}
		return event.Str(p.next().text), nil
	default:
		return event.Value{}, fmt.Errorf("query: expected literal, got %s at offset %d", p.cur(), p.cur().pos)
	}
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.cur().kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parsePow()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.cur().kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parsePow()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parsePow() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.accept(tokCaret) {
		right, err := p.parsePow() // right-associative
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpPow, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpSub, L: &Literal{Val: event.Int(0)}, R: x}, nil
	}
	return p.parsePrimary()
}

var funcNames = map[string]Func{
	"SQRT": FnSqrt, "ABS": FnAbs, "AVG": FnAvg, "SUM": FnSum,
	"MIN": FnMin, "MAX": FnMax, "COUNT": FnCount,
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur().kind {
	case tokNumber, tokString:
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case tokLParen:
		p.pos++
		e, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := p.next().text
		if fn, ok := funcNames[strings.ToUpper(name)]; ok && p.cur().kind == tokLParen {
			return p.parseCall(fn)
		}
		return p.parseFieldRef(name)
	default:
		return nil, fmt.Errorf("query: unexpected token %s at offset %d", p.cur(), p.cur().pos)
	}
}

func (p *parser) parseCall(fn Func) (Expr, error) {
	p.pos++ // consume '('
	var args []Expr
	for {
		a, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.accept(tokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if (fn == FnSqrt || fn == FnAbs) && len(args) != 1 {
		return nil, fmt.Errorf("query: %s takes exactly one argument", fn)
	}
	return &Call{Fn: fn, Args: args}, nil
}

func (p *parser) parseFieldRef(varName string) (Expr, error) {
	ref := &FieldRef{Var: varName}
	if p.accept(tokLBrack) {
		switch {
		case p.accept(tokRBrack):
			ref.Index = IdxAll
		case p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "last"):
			p.pos++
			ref.Index = IdxLast
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
		case p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "first"):
			p.pos++
			ref.Index = IdxFirst
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
		case p.cur().kind == tokIdent && p.cur().text == "i":
			p.pos++
			ref.Index = IdxPrev // promoted to IdxCurrent during analysis
			if p.accept(tokPlus) {
				one, err := p.expect(tokNumber, "1")
				if err != nil {
					return nil, err
				}
				if one.text != "1" {
					return nil, fmt.Errorf("query: only [i+1] indexing is supported, got [i+%s]", one.text)
				}
				ref.Index = IdxCurrent
			}
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
		case p.cur().kind == tokNumber && p.cur().text == "1":
			p.pos++
			ref.Index = IdxFirst
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("query: invalid Kleene index %s at offset %d", p.cur(), p.cur().pos)
		}
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return nil, err
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return nil, err
	}
	ref.Attr = attr.text
	return ref, nil
}
