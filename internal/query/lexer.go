package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokLBrace // {
	tokRBrace // }
	tokComma  // ,
	tokDot    // .
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokSlash  // /
	tokCaret  // ^
	tokEq     // = or ==
	tokNe     // != or <>
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokIn     // IN or ∈
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the query text. It is permissive about unicode operators
// the paper uses (∈, ≥, ≤, ≠).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		switch {
		case unicode.IsSpace(r):
			l.pos += size
		case r == '-' && strings.HasPrefix(l.src[l.pos:], "--"):
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(r) || r == '_':
			l.lexIdent()
		case r >= '0' && r <= '9':
			// Only ASCII digits start numbers; other Unicode digits fall
			// through to the symbol handler and are rejected there.
			l.lexNumber()
		case r == '\'' || r == '"':
			if err := l.lexString(byte(r)); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(r, size); err != nil {
				return nil, err
			}
		}
	}
	l.emitAt(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emitAt(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	if strings.EqualFold(text, "IN") {
		l.emitAt(tokIn, text, start)
		return
	}
	l.emitAt(tokIdent, text, start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.emitAt(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("query: unterminated string at offset %d", start)
	}
	l.emitAt(tokString, l.src[start+1:l.pos], start)
	l.pos++ // closing quote
	return nil
}

func (l *lexer) lexSymbol(r rune, size int) error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "<=" || r == '≤':
		l.emitAt(tokLe, "<=", start)
	case two == ">=" || r == '≥':
		l.emitAt(tokGe, ">=", start)
	case two == "!=" || two == "<>" || r == '≠':
		l.emitAt(tokNe, "!=", start)
	case two == "==":
		l.emitAt(tokEq, "=", start)
	case r == '∈':
		l.emitAt(tokIn, "IN", start)
	default:
		var kind tokenKind
		switch r {
		case '(':
			kind = tokLParen
		case ')':
			kind = tokRParen
		case '[':
			kind = tokLBrack
		case ']':
			kind = tokRBrack
		case '{':
			kind = tokLBrace
		case '}':
			kind = tokRBrace
		case ',':
			kind = tokComma
		case '.':
			kind = tokDot
		case '+':
			kind = tokPlus
		case '-':
			kind = tokMinus
		case '*':
			kind = tokStar
		case '/':
			kind = tokSlash
		case '^':
			kind = tokCaret
		case '=':
			kind = tokEq
		case '<':
			kind = tokLt
		case '>':
			kind = tokGt
		default:
			return fmt.Errorf("query: unexpected character %q at offset %d", r, start)
		}
		l.emitAt(kind, string(r), start)
		l.pos += size
		return nil
	}
	// Multi-rune branches advance by their consumed width.
	if two == "<=" || two == ">=" || two == "!=" || two == "<>" || two == "==" {
		l.pos += 2
	} else {
		l.pos += size
	}
	return nil
}
