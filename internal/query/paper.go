package query

import "fmt"

// This file defines the queries of the paper's evaluation (§VI, Listings
// 1-3) as constructors. Window sizes and Kleene bounds are parameters
// where the evaluation sweeps them. Two queries are partially truncated in
// the available paper text and are reconstructed to preserve the behaviour
// the evaluation relies on; see DESIGN.md §4.

// Q1 is the three-step correlation query of Listing 2, run over DS1:
// SEQ(A a, B b, C c) with ID equality and a.V+b.V=c.V, default window 8ms.
func Q1(window string) *Query {
	return MustParse(fmt.Sprintf(`
		PATTERN SEQ(A a, B b, C c)
		WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V
		WITHIN %s`, window))
}

// Q2 is the Kleene query of Listing 2 over DS1. minReps/maxReps bound the
// Kleene closure; the paper's pattern-length experiment (Fig 9) varies the
// limit so total pattern length is 4-8 (a + reps + c + d).
func Q2(window string, minReps, maxReps int) *Query {
	bounds := ""
	if minReps > 1 || maxReps > 0 {
		if maxReps > 0 {
			bounds = fmt.Sprintf("{%d,%d}", minReps, maxReps)
		} else {
			bounds = fmt.Sprintf("{%d,}", minReps)
		}
	}
	return MustParse(fmt.Sprintf(`
		PATTERN SEQ(A a, A+ b[]%s, B c, C d)
		WHERE a.ID = b[i].ID AND a.ID = c.ID AND b[i].V = a.V AND a.V + c.V = d.V
		WITHIN %s`, bounds, window))
}

// Q3 is the resource-cost query of Listing 2 over DS2: range-correlated A
// and B events with an average-Euclidean-distance aggregate compared
// against C's value. The aggregate comparison is truncated in the
// available text; §VI-E describes it as "the average Euclidean distance to
// pairs of numeric values of A and B events, checking whether the result
// is larger than a value of C events", which is what this reconstruction
// implements.
func Q3(window string) *Query {
	return MustParse(fmt.Sprintf(`
		PATTERN SEQ(A a, B b, C c, D d)
		WHERE a.ID = b.ID
		AND a.x >= b.v / 2 AND a.x <= b.v
		AND a.y >= b.v / 2 AND a.y <= b.v
		AND b.ID = c.ID AND c.ID = d.ID AND b.v = d.v
		AND AVG(SQRT(a.x^2 + a.y^2), SQRT(b.x^2 + b.y^2)) > c.v
		WITHIN %s`, window))
}

// Q4 is the non-monotonic query of §VI-H, reconstructed (its listing is
// truncated): a SEQ with an interior negated event type B correlated by
// ID. Shedding B events can fabricate matches, producing false positives.
func Q4(window string) *Query {
	return MustParse(fmt.Sprintf(`
		PATTERN SEQ(A a, NOT B b, C c, D d)
		WHERE a.ID = b.ID AND a.ID = c.ID AND c.ID = d.ID
		WITHIN %s`, window))
}

// HotPaths is Listing 1: chains of trips of the same bike, consecutive
// trips connected end-to-start, ending at stations 7-9. minTrips sets the
// minimal Kleene length; the case study uses paths of at least five
// stations, i.e. minTrips = 4 (plus the final trip b). maxTrips bounds
// the Kleene (0 = unbounded); bounding it keeps the exhaustive
// skip-till-any-match semantics tractable on long burst chains.
func HotPaths(window string, minTrips, maxTrips int) *Query {
	bounds := ""
	switch {
	case maxTrips > 0:
		bounds = fmt.Sprintf("{%d,%d}", minTrips, maxTrips)
	case minTrips > 1:
		bounds = fmt.Sprintf("{%d,}", minTrips)
	}
	return MustParse(fmt.Sprintf(`
		PATTERN SEQ(BikeTrip+ a[]%s, BikeTrip b)
		WHERE a[i+1].bike = a[i].bike AND a[i+1].start = a[i].end
		AND a[last].bike = b.bike AND b.end IN (7, 8, 9)
		WITHIN %s`, bounds, window))
}

// ClusterTasks is Listing 3: a task submitted, scheduled and evicted on
// one machine, rescheduled and evicted on a second, and rescheduled on a
// third where it fails, within the window.
func ClusterTasks(window string) *Query {
	return MustParse(fmt.Sprintf(`
		PATTERN SEQ(Submit su, Schedule s1, Evict e1, Schedule s2, Evict e2, Schedule s3, Fail f)
		WHERE su.task = s1.task
		AND s1.task = e1.task AND s1.machine = e1.machine
		AND e1.task = s2.task AND s2.machine != s1.machine
		AND s2.task = e2.task AND s2.machine = e2.machine
		AND e2.task = s3.task AND s3.machine != s2.machine
		AND s3.task = f.task AND s3.machine = f.machine
		WITHIN %s`, window))
}
