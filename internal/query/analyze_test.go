package query

import "testing"

func TestAnchorsQ1(t *testing.T) {
	q := Q1("8ms")
	// a.ID=b.ID anchors at b (pos 1); a.ID=c.ID and a.V+b.V=c.V at c (pos 2).
	wantPos := []int{1, 2, 2}
	for i, p := range q.Where {
		if p.Kind != AnchorBind {
			t.Errorf("predicate %d kind = %v, want AnchorBind", i, p.Kind)
		}
		if p.AnchorPos != wantPos[i] {
			t.Errorf("predicate %d anchor = %d, want %d", i, p.AnchorPos, wantPos[i])
		}
	}
	bind, inc := q.PredicatesAt(2)
	if len(bind) != 2 || len(inc) != 0 {
		t.Errorf("PredicatesAt(2) = %d bind, %d incremental", len(bind), len(inc))
	}
}

func TestAnchorsIncremental(t *testing.T) {
	q := HotPaths("1h", 1, 0)
	var inc, bind, complete int
	for _, p := range q.Where {
		switch p.Kind {
		case AnchorIncremental:
			inc++
			if p.AnchorPos != 0 {
				t.Errorf("incremental anchor = %d", p.AnchorPos)
			}
		case AnchorBind:
			bind++
			if p.AnchorPos != 1 {
				t.Errorf("bind anchor = %d", p.AnchorPos)
			}
		case AnchorComplete:
			complete++
		}
	}
	// a[i+1].bike=a[i].bike and a[i+1].start=a[i].end are incremental;
	// a[last].bike=b.bike and b.end IN (...) bind at b.
	if inc != 2 || bind != 2 || complete != 0 {
		t.Errorf("inc=%d bind=%d complete=%d", inc, bind, complete)
	}
}

func TestAnchorPromotionOfLoneI(t *testing.T) {
	// b[i].V = a.V uses [i] without [i+1]: [i] refers to the repetition
	// being bound, so the predicate is incremental at the Kleene.
	q := MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE b[i].V = a.V WITHIN 1ms`)
	p := q.Where[0]
	if p.Kind != AnchorIncremental || p.AnchorPos != 1 {
		t.Fatalf("kind=%v anchor=%d", p.Kind, p.AnchorPos)
	}
	for _, r := range p.Refs {
		if r.Var == "b" && r.Index != IdxCurrent {
			t.Errorf("lone [i] not promoted to current: %v", r.Index)
		}
	}
}

func TestAnchorPairedIKeepsPrev(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A+ b[], B c) WHERE b[i+1].V >= b[i].V WITHIN 1ms`)
	p := q.Where[0]
	var kinds []IndexKind
	for _, r := range p.Refs {
		kinds = append(kinds, r.Index)
	}
	if len(kinds) != 2 || kinds[0] != IdxCurrent || kinds[1] != IdxPrev {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestAnchorComplete(t *testing.T) {
	// An aggregate over a Kleene that is the rightmost referenced
	// component checks at completion.
	q := MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE AVG(b[].V) > a.V WITHIN 1ms`)
	p := q.Where[0]
	if p.Kind != AnchorComplete {
		t.Fatalf("kind = %v, want AnchorComplete", p.Kind)
	}
	if len(q.CompletionPredicates()) != 1 {
		t.Error("CompletionPredicates missing the aggregate")
	}
	// But if a later variable is referenced, it can bind there.
	q = MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE AVG(b[].V) > c.V WITHIN 1ms`)
	if q.Where[0].Kind != AnchorBind || q.Where[0].AnchorPos != 2 {
		t.Errorf("aggregate with later var: kind=%v anchor=%d", q.Where[0].Kind, q.Where[0].AnchorPos)
	}
}

func TestAnchorNegation(t *testing.T) {
	q := Q4("8ms")
	var neg []*Predicate
	for _, p := range q.Where {
		if p.Kind == AnchorNegation {
			neg = append(neg, p)
		}
	}
	if len(neg) != 1 {
		t.Fatalf("negation predicates = %d, want 1", len(neg))
	}
	if neg[0].AnchorPos != 1 {
		t.Errorf("negation anchor = %d", neg[0].AnchorPos)
	}
	if got := q.NegationPredicates(1); len(got) != 1 {
		t.Errorf("NegationPredicates(1) = %d", len(got))
	}
}

func TestAnalyzeRejectsLaterRefs(t *testing.T) {
	bad := []string{
		// Incremental predicate referencing a later variable.
		`PATTERN SEQ(A+ b[], B c) WHERE b[i].V = c.V WITHIN 1ms`,
		// Negation predicate referencing a later variable.
		`PATTERN SEQ(A a, NOT B b, C c) WHERE b.V = c.V WITHIN 1ms`,
		// Indexed negated variable.
		`PATTERN SEQ(A a, NOT B b, C c) WHERE b[last].V = a.V WITHIN 1ms`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestAnalyzeRejectsTwoIncrementalVars(t *testing.T) {
	src := `PATTERN SEQ(A+ a[], B+ b[]) WHERE a[i].V = b[i].V WITHIN 1ms`
	if _, err := Parse(src); err == nil {
		t.Error("two incremental Kleene vars in one predicate should fail")
	}
}

func TestClusterTasksAnchors(t *testing.T) {
	q := ClusterTasks("1h")
	// Every predicate is a plain bind anchored at its later variable.
	for _, p := range q.Where {
		if p.Kind != AnchorBind {
			t.Errorf("predicate %s kind = %v", p, p.Kind)
		}
	}
}
